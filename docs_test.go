package repro

// Doc-drift gates: documentation that describes code the tests can see is
// checked against that code, so the docs cannot silently rot. Three
// contracts are pinned here: the README engine table tracks the engine
// registry, docs/PROTOCOL.md tracks the implemented protocol version, and
// every internal package carries real package documentation (with an
// `# Invariants` section where the package participates in the determinism
// story).

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/lint"
	"repro/internal/qsim"
)

// TestReadmeEngineTableMatchesRegistry parses the README's engine table and
// requires exactly the engines qsim.EngineKinds() registers, in
// presentation order, with the registered flag names — so landing an engine
// without updating the README (or vice versa) fails the build.
func TestReadmeEngineTableMatchesRegistry(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	// Rows look like: | `EngineFused` | `fused` | ... |
	rowRE := regexp.MustCompile("(?m)^\\| `(Engine[A-Za-z0-9]+)` \\| `([a-z0-9]+)` \\|")
	var gotNames, gotFlags []string
	for _, m := range rowRE.FindAllStringSubmatch(string(readme), -1) {
		gotNames = append(gotNames, m[1])
		gotFlags = append(gotFlags, m[2])
	}
	kinds := qsim.EngineKinds()
	if len(gotNames) != len(kinds) {
		t.Fatalf("README engine table has %d rows %v, registry has %d engines (%s)",
			len(gotNames), gotNames, len(kinds), qsim.EngineNames())
	}
	for i, k := range kinds {
		if gotFlags[i] != k.String() {
			t.Errorf("README engine table row %d: flag %q, registry says %q", i, gotFlags[i], k)
		}
		parsed, err := qsim.ParseEngine(gotFlags[i])
		if err != nil || parsed != k {
			t.Errorf("README engine table row %d: flag %q does not parse back to %v", i, gotFlags[i], k)
		}
	}
	// The flag synopsis must be the registry's canonical string, not a
	// hand-maintained copy.
	if !strings.Contains(string(readme), "`-engine "+qsim.EngineNames()+"`") {
		t.Errorf("README -engine synopsis drifted from qsim.EngineNames() = %q", qsim.EngineNames())
	}
}

// TestReadmeLinksDocs keeps the README pointing at the two normative
// documents; a quickstart that loses its deep links is how docs go unread.
func TestReadmeLinksDocs(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"docs/ARCHITECTURE.md", "docs/PROTOCOL.md"} {
		if !strings.Contains(string(readme), "("+doc+")") {
			t.Errorf("README does not link %s", doc)
		}
		if _, err := os.Stat(doc); err != nil {
			t.Errorf("linked document missing: %v", err)
		}
	}
}

// TestProtocolSpecMatchesProtoVersion fails when dist.ProtoVersion moves
// without docs/PROTOCOL.md following: the spec is normative, so a protocol
// change that skips the document is incomplete by definition.
func TestProtocolSpecMatchesProtoVersion(t *testing.T) {
	spec, err := os.ReadFile(filepath.Join("docs", "PROTOCOL.md"))
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^ProtoVersion: (\d+)$`).FindSubmatch(spec)
	if m == nil {
		t.Fatal("docs/PROTOCOL.md has no `ProtoVersion: N` marker line")
	}
	if got, want := string(m[1]), strconv.Itoa(int(dist.ProtoVersion)); got != want {
		t.Fatalf("docs/PROTOCOL.md declares ProtoVersion %s but internal/dist implements %s — "+
			"update the spec (frame layouts, version history) alongside the code", got, want)
	}
}

// TestLintSuiteDocumentedAndFixtured ties the analyzer registry to its two
// proof surfaces: every analyzer torq-lint ships must be named in the
// "Invariants → enforcement" table in docs/ARCHITECTURE.md, and must keep a
// broken-fixture package under internal/lint/testdata/src — deleting either
// (or landing an analyzer without them) fails the build.
func TestLintSuiteDocumentedAndFixtured(t *testing.T) {
	arch, err := os.ReadFile(filepath.Join("docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatal(err)
	}
	// The nolocktelemetry fixture is the two-package nolock/ tree; every
	// other analyzer's fixture directory carries its name.
	fixtureDir := map[string]string{"nolocktelemetry": "nolock"}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(string(arch), "`"+a.Name+"`") {
			t.Errorf("docs/ARCHITECTURE.md invariants table does not mention analyzer `%s`", a.Name)
		}
		rel := a.Name
		if d, ok := fixtureDir[a.Name]; ok {
			rel = d
		}
		dir := filepath.Join("internal", "lint", "testdata", "src", rel)
		goFiles := 0
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") {
				goFiles++
			}
			return nil
		})
		if err != nil || goFiles == 0 {
			t.Errorf("analyzer %s has no fixture under %s (err=%v) — each analyzer keeps a broken fixture proving it fires", a.Name, dir, err)
		}
	}
	// The bundled stock vet passes keep no fixtures of their own (upstream
	// owns those), but the architecture doc must still say they ship.
	for _, a := range lint.Stock() {
		if !strings.Contains(string(arch), "`"+a.Name+"`") {
			t.Errorf("docs/ARCHITECTURE.md does not mention bundled stock analyzer `%s`", a.Name)
		}
	}
}

// TestInternalPackagesDocumented walks every internal/ package and rejects
// ones without a package-level doc comment; the four packages that carry
// the determinism/telemetry contracts must additionally state them under
// an `# Invariants` heading.
func TestInternalPackagesDocumented(t *testing.T) {
	needInvariants := map[string]bool{"qsim": true, "dist": true, "par": true, "ftdc": true}
	dirs, err := filepath.Glob(filepath.Join("internal", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		var doc string
		for _, pkg := range pkgs { //torq:allow maprange -- longest-doc max reduction
			for _, f := range pkg.Files {
				if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
					doc = f.Doc.Text()
				}
			}
		}
		name := filepath.Base(dir)
		if strings.TrimSpace(doc) == "" {
			t.Errorf("internal/%s has no package doc comment — every internal package documents its role", name)
			continue
		}
		if needInvariants[name] && !strings.Contains(doc, "# Invariants") {
			t.Errorf("internal/%s package doc lacks an `# Invariants` section stating its determinism/telemetry contract", name)
		}
	}
}
