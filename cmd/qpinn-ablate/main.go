// Command qpinn-ablate runs the full ablation sweeps of Figs. 6–9: every
// ansatz × input-scaling × {with, without energy-conservation loss}
// combination, plus the three classical depths, for one of the paper's
// cases.
//
// Usage:
//
//	qpinn-ablate -case vacuum
//	qpinn-ablate -case dielectric -aggregate
//	qpinn-ablate -case vacuum -preset paper -seeds 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/qsim"
)

func main() {
	var (
		caseName  = flag.String("case", "vacuum", "vacuum | dielectric")
		aggregate = flag.Bool("aggregate", false, "print Fig 7/9 aggregates instead of the full table")
		preset    = flag.String("preset", "smoke", "smoke | paper")
		seeds     = flag.Int("seeds", 0, "replicate count (0 = preset default)")
		epochs    = flag.Int("epochs", 0, "training epochs (0 = preset default)")
		engine    = flag.String("engine", "fused", "circuit-execution engine: "+qsim.EngineNames())
	)
	flag.Parse()

	eng, err := qsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := experiments.Options{Preset: experiments.Smoke, Seeds: *seeds, Epochs: *epochs, Engine: eng, Out: os.Stdout}
	if *preset == "paper" {
		o.Preset = experiments.Paper
	}

	var name string
	switch {
	case *caseName == "vacuum" && !*aggregate:
		name = "fig6"
	case *caseName == "vacuum":
		name = "fig7"
	case *caseName == "dielectric" && !*aggregate:
		name = "fig8"
	case *caseName == "dielectric":
		name = "fig9"
	default:
		fmt.Fprintln(os.Stderr, "unknown case (vacuum | dielectric)")
		os.Exit(2)
	}
	r, _ := experiments.Lookup(name)
	start := time.Now()
	if err := r.Run(o); err != nil {
		fmt.Fprintf(os.Stderr, "ablation failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %s]\n", name, time.Since(start).Round(time.Millisecond))
}
