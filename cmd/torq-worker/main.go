// Command torq-worker is the dist-engine worker process: it executes circuit
// shards shipped by an EngineDist coordinator (see repro/internal/dist).
//
// With no flags it speaks the framed worker protocol on stdin/stdout — the
// mode a coordinator uses when spawning local subprocess workers:
//
//	qpinn-train -engine dist            # coordinator spawns torq-worker itself
//
// With -listen it serves remote coordinators over TCP, one independent
// session per connection:
//
//	torq-worker -listen :7421           # on each worker machine
//	TORQ_DIST_ADDRS=host1:7421,host2:7421 qpinn-train -engine dist
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
	"repro/internal/ftdc"
	"repro/internal/obs"
)

func main() {
	listen := flag.String("listen", "", "TCP address to serve remote coordinators on (empty: serve one session on stdio)")
	debugAddr := flag.String("debug-addr", "", "serve the live observability plane (/metrics, /trace, /ftdc, /healthz, /debug/pprof) on this address; span recording itself is switched by the coordinator's trace context, not locally")
	flag.Parse()

	if *debugAddr != "" {
		rec := ftdc.New(ftdc.Options{})
		ftdc.StandardSources(rec)
		rec.Start()
		defer rec.Stop()
		srv, err := obs.Start(*debugAddr, obs.Options{Recorder: rec})
		if err != nil {
			fmt.Fprintln(os.Stderr, "torq-worker:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "torq-worker: observability plane on http://%s\n", srv.Addr)
	}

	var err error
	if *listen != "" {
		err = dist.Listen(*listen)
	} else {
		err = dist.ServeStdio()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "torq-worker:", err)
		os.Exit(1)
	}
}
