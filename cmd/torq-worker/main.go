// Command torq-worker is the dist-engine worker process: it executes circuit
// shards shipped by an EngineDist coordinator (see repro/internal/dist).
//
// With no flags it speaks the framed worker protocol on stdin/stdout — the
// mode a coordinator uses when spawning local subprocess workers:
//
//	qpinn-train -engine dist            # coordinator spawns torq-worker itself
//
// With -listen it serves remote coordinators over TCP, one independent
// session per connection:
//
//	torq-worker -listen :7421           # on each worker machine
//	TORQ_DIST_ADDRS=host1:7421,host2:7421 qpinn-train -engine dist
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
)

func main() {
	listen := flag.String("listen", "", "TCP address to serve remote coordinators on (empty: serve one session on stdio)")
	flag.Parse()

	var err error
	if *listen != "" {
		err = dist.Listen(*listen)
	} else {
		err = dist.ServeStdio()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "torq-worker:", err)
		os.Exit(1)
	}
}
