// torq-lint statically enforces the repository's determinism,
// lock-free-telemetry, and zero-alloc invariants (see internal/lint).
//
// It speaks the `go vet` vettool protocol, so CI runs it as
//
//	go build -o torq-lint ./cmd/torq-lint
//	go vet -vettool=$PWD/torq-lint ./...
//
// and, as a convenience, invoking it directly with package patterns
// re-execs itself through go vet:
//
//	torq-lint ./...
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	if patterns := packagePatterns(os.Args[1:]); patterns != nil {
		os.Exit(runGoVet(patterns))
	}
	unitchecker.Main(lint.Analyzers()...)
}

// packagePatterns reports the arguments as package patterns when torq-lint
// is invoked standalone (torq-lint ./...), nil when it is being driven by
// go vet itself (-V=full handshake, -flags, or a unit *.cfg file).
func packagePatterns(args []string) []string {
	if len(args) == 0 {
		return nil
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
	}
	return args
}

func runGoVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "torq-lint:", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "torq-lint:", err)
		return 1
	}
	return 0
}
