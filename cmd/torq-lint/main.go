// torq-lint statically enforces the repository's determinism,
// lock-free-telemetry, zero-alloc, codec-symmetry, and merge-order
// invariants (see internal/lint), bundling the relevant stock vet analyzers
// (atomic, copylocks, lostcancel, unusedresult) so one required job runs
// everything.
//
// It speaks the `go vet` vettool protocol, so CI runs it as
//
//	go build -o torq-lint ./cmd/torq-lint
//	go vet -vettool=$PWD/torq-lint ./...
//
// and, as a convenience, invoking it directly with package patterns
// re-execs itself through go vet:
//
//	torq-lint ./...            # human-readable vet output
//	torq-lint -json ./...      # machine-readable findings (file/line/analyzer/message)
//	torq-lint -github ./...    # GitHub Actions ::error annotations, one per finding
//
// The -json and -github modes parse `go vet -json` output and exit 1 when
// any finding exists, 2 when the build itself fails.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	// A leading -json/-github selects annotation mode — but only when the
	// rest of the argv is package patterns. `go vet -json` forwards -json to
	// the vettool followed by a unit vet.cfg (the unitchecker protocol), and
	// that invocation must fall through to unitchecker.Main, or the re-exec
	// below would recurse into go vet with a cfg file as its pattern.
	if len(args) > 0 && (args[0] == "-json" || args[0] == "-github") {
		mode := strings.TrimPrefix(args[0], "-")
		rest := args[1:]
		if len(rest) == 0 {
			os.Exit(runAnnotated(mode, []string{"./..."}))
		}
		if patterns := packagePatterns(rest); patterns != nil {
			os.Exit(runAnnotated(mode, patterns))
		}
	} else if patterns := packagePatterns(args); patterns != nil {
		os.Exit(runGoVet(patterns))
	}
	unitchecker.Main(append(lint.Analyzers(), lint.Stock()...)...)
}

// packagePatterns reports the arguments as package patterns when torq-lint
// is invoked standalone (torq-lint ./...), nil when it is being driven by
// go vet itself (-V=full handshake, -flags, or a unit *.cfg file).
func packagePatterns(args []string) []string {
	if len(args) == 0 {
		return nil
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
	}
	return args
}

func runGoVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "torq-lint:", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "torq-lint:", err)
		return 1
	}
	return 0
}

// finding is one diagnostic in the machine-readable output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runAnnotated re-execs through `go vet -json -vettool=self`, parses the
// diagnostic stream, and emits it as flat JSON or GitHub Actions ::error
// annotations.
func runAnnotated(mode string, patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "torq-lint:", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-json", "-vettool=" + self}, patterns...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	runErr := cmd.Run()

	findings, parseErr := parseVetJSON(out.Bytes())
	if parseErr != nil || (runErr != nil && len(findings) == 0) {
		// The build itself failed (type error, bad pattern): relay raw output.
		os.Stderr.Write(out.Bytes())
		if parseErr != nil {
			fmt.Fprintln(os.Stderr, "torq-lint:", parseErr)
		}
		return 2
	}

	switch mode {
	case "json":
		encoded, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "torq-lint:", err)
			return 2
		}
		os.Stdout.Write(append(encoded, '\n'))
	case "github":
		for _, f := range findings {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=torq-lint(%s)::%s\n",
				f.File, f.Line, f.Col, f.Analyzer, githubEscape(f.Message))
		}
		fmt.Fprintf(os.Stderr, "torq-lint: %d finding(s)\n", len(findings))
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// parseVetJSON consumes `go vet -json` output: `# pkg` comment lines
// interleaved with JSON objects of shape
// {"pkgpath": {"analyzer": [{"posn": "file:line:col", "message": "..."}]}}.
func parseVetJSON(raw []byte) ([]finding, error) {
	var jsonBuf bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "#") {
			continue
		}
		jsonBuf.WriteString(sc.Text())
		jsonBuf.WriteByte('\n')
	}
	type vetDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	findings := []finding{} // non-nil: a clean run is [], not null
	cwd, _ := os.Getwd()
	dec := json.NewDecoder(&jsonBuf)
	for dec.More() {
		var unit map[string]map[string][]vetDiag
		if err := dec.Decode(&unit); err != nil {
			return nil, fmt.Errorf("parsing go vet -json output: %v", err)
		}
		//torq:allow maprange -- findings are sorted by position below
		for _, byAnalyzer := range unit {
			//torq:allow maprange -- findings are sorted by position below
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					f := finding{Analyzer: analyzer, Message: d.Message}
					f.File, f.Line, f.Col = splitPosn(d.Posn)
					if cwd != "" {
						if rel, err := filepath.Rel(cwd, f.File); err == nil && !strings.HasPrefix(rel, "..") {
							f.File = rel
						}
					}
					findings = append(findings, f)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// splitPosn parses "file:line:col" (column optional) from the right, so
// paths containing colons stay intact.
func splitPosn(posn string) (file string, line, col int) {
	rest := posn
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		if n, err := strconv.Atoi(rest[i+1:]); err == nil {
			col = n
			rest = rest[:i]
		}
	}
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		if n, err := strconv.Atoi(rest[i+1:]); err == nil {
			line = n
			rest = rest[:i]
		}
	}
	if line == 0 { // "file:line" without a column
		line, col = col, 0
	}
	return rest, line, col
}

// githubEscape applies the workflow-command data escaping rules.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
