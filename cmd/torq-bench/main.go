// Command torq-bench runs the Table 2 simulator comparison: the batched
// adjoint simulator (the TorQ analogue) against the naive per-sample and
// full-unitary baselines that stand in for PennyLane's default.qubit and
// operator-composition pipelines.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	preset := flag.String("preset", "smoke", "smoke | paper")
	flag.Parse()
	o := experiments.Options{Preset: experiments.Smoke, Out: os.Stdout}
	if *preset == "paper" {
		o.Preset = experiments.Paper
	}
	if err := experiments.Table2(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
