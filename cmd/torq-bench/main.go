// Command torq-bench runs the Table 2 simulator comparison: the batched
// adjoint simulator (the TorQ analogue) against the naive per-sample and
// full-unitary baselines that stand in for PennyLane's default.qubit and
// operator-composition pipelines. The -engine flag selects the execution
// engine for the batched rows, enabling fused-vs-legacy A/B runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/qsim"
)

func main() {
	preset := flag.String("preset", "smoke", "smoke | paper")
	engine := flag.String("engine", "fused", "circuit-execution engine for the batched simulator: fused (v3: three-qubit super-ops + commuted diagonals) | sharded (level-3 program as work-stealing sample shards, worker-count-independent gradients) | fused2 (PR-2 compiler) | fused1 (PR-1 compiler) | legacy | naive")
	flag.Parse()
	o := experiments.Options{Preset: experiments.Smoke, Out: os.Stdout}
	if *preset == "paper" {
		o.Preset = experiments.Paper
	}
	eng, err := qsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o.Engine = eng
	if err := experiments.Table2(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
