// Command torq-bench runs the Table 2 simulator comparison: the batched
// adjoint simulator (the TorQ analogue) against the naive per-sample and
// full-unitary baselines that stand in for PennyLane's default.qubit and
// operator-composition pipelines. The -engine flag selects the execution
// engine for the batched rows, enabling fused-vs-legacy A/B runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/ftdc"
	"repro/internal/obs"
	"repro/internal/qsim"
	"repro/internal/trace"
)

func main() {
	preset := flag.String("preset", "smoke", "smoke | paper")
	engine := flag.String("engine", "fused", "circuit-execution engine for the batched simulator ("+qsim.EngineNames()+"): fused runs the v3 compiler in process, sharded runs it as work-stealing sample shards with worker-count-independent gradients, dist ships the same shards to worker processes, fused2/fused1 are the PR-2/PR-1 compilers, legacy sweeps per gate, naive is the dense per-sample baseline")
	distWorkers := flag.Int("dist-workers", 0, "subprocess worker count for -engine dist (0 = TORQ_DIST_WORKERS or 2); remote workers come from TORQ_DIST_ADDRS")
	ftdcDump := flag.String("ftdc-dump", "", "record flight-data telemetry and write the capture here at exit (and on SIGUSR1)")
	ftdcEvery := flag.Duration("ftdc-interval", 0, "telemetry sampling period (0 = 100ms)")
	autotune := flag.Bool("autotune", os.Getenv("TORQ_AUTOTUNE") != "", "let the recorder re-size par chunk grouping from observed steal ratios (also TORQ_AUTOTUNE=1); gradients stay bit-identical for every setting")
	debugAddr := flag.String("debug-addr", "", "serve the live observability plane (/metrics, /trace, /ftdc, /healthz, /debug/pprof) on this address and enable span tracing; results stay bit-identical")
	flag.Parse()
	o := experiments.Options{Preset: experiments.Smoke, Out: os.Stdout}
	if *preset == "paper" {
		o.Preset = experiments.Paper
	}
	eng, err := qsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o.Engine = eng
	if *distWorkers > 0 {
		dist.Configure(dist.Options{Workers: *distWorkers})
		defer dist.Shutdown()
	}
	var rec *ftdc.Recorder
	if *ftdcDump != "" || *autotune || *debugAddr != "" {
		rec = ftdc.New(ftdc.Options{Interval: *ftdcEvery})
		ftdc.StandardSources(rec)
		if *autotune {
			rec.EnableAutoTune()
		}
		rec.Start()
		if *ftdcDump != "" {
			rec.DumpOnSignal(*ftdcDump)
			defer func() {
				rec.Stop()
				if err := rec.DumpFile(*ftdcDump); err != nil {
					fmt.Fprintf(os.Stderr, "ftdc: %v\n", err)
				}
			}()
		}
	}
	if *debugAddr != "" {
		trace.SetEnabled(true)
		srv, err := obs.Start(*debugAddr, obs.Options{Recorder: rec})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "torq-bench: observability plane on http://%s\n", srv.Addr)
	}
	if err := experiments.Table2(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
