// Command qpinn-train trains a single PINN/QPINN configuration and reports
// the training history, the final L2 error against the high-fidelity
// reference, and the black-hole index.
//
// Usage:
//
//	qpinn-train -case vacuum -arch qpinn -ansatz strongly -scale acos -energy
//	qpinn-train -case dielectric -arch regular -epochs 500
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ftdc"
	"repro/internal/maxwell"
	"repro/internal/obs"
	"repro/internal/qsim"
	"repro/internal/trace"
)

func main() {
	var (
		caseName   = flag.String("case", "vacuum", "vacuum | dielectric | asymmetric")
		archName   = flag.String("arch", "qpinn", "qpinn | regular | reduced | extra")
		ansatz     = flag.String("ansatz", "strongly", "basic|strongly|crossmesh|crossmesh2|crossmeshcnot|noent")
		scale      = flag.String("scale", "acos", "none|pi|bias|asin|acos")
		engine     = flag.String("engine", "fused", "circuit-execution engine: "+qsim.EngineNames())
		energy     = flag.Bool("energy", true, "include the energy-conservation loss")
		symmetry   = flag.Bool("symmetry", true, "include the symmetry loss (ignored for the asymmetric case)")
		epochs     = flag.Int("epochs", 300, "training epochs")
		grid       = flag.Int("grid", 10, "collocation points per coordinate")
		hidden     = flag.Int("hidden", 24, "hidden width (paper: 128)")
		rff        = flag.Int("rff", 12, "random Fourier features (paper: 128)")
		qubits     = flag.Int("qubits", 4, "qubits (paper: 7)")
		qlayers    = flag.Int("qlayers", 2, "ansatz layers (paper: 4)")
		seed       = flag.Int64("seed", 1, "random seed")
		logEvery   = flag.Int("log", 0, "epochs between log lines (0 = 10 lines total)")
		paperPulse = flag.Bool("paperpulse", false, "use the paper's narrow pulse instead of the smoke-scale widened one")
		savePath   = flag.String("save", "", "write a model checkpoint here after training")
		loadPath   = flag.String("load", "", "warm-start from a checkpoint (overrides architecture flags)")
		ftdcDump   = flag.String("ftdc-dump", "", "record flight-data telemetry and write the capture here at exit (and on SIGUSR1)")
		ftdcEvery  = flag.Duration("ftdc-interval", 0, "telemetry sampling period (0 = 100ms)")
		autotune   = flag.Bool("autotune", os.Getenv("TORQ_AUTOTUNE") != "", "let the recorder re-size par chunk grouping from observed steal ratios (also TORQ_AUTOTUNE=1); gradients stay bit-identical for every setting")
		debugAddr  = flag.String("debug-addr", "", "serve the live observability plane (/metrics, /trace, /ftdc, /healthz, /debug/pprof) on this address and enable span tracing; results stay bit-identical")
	)
	flag.Parse()

	var rec *ftdc.Recorder
	if *ftdcDump != "" || *autotune || *debugAddr != "" {
		rec = ftdc.New(ftdc.Options{Interval: *ftdcEvery})
		ftdc.StandardSources(rec)
		if *autotune {
			rec.EnableAutoTune()
		}
		rec.Start()
		if *ftdcDump != "" {
			rec.DumpOnSignal(*ftdcDump)
			defer func() {
				rec.Stop()
				if err := rec.DumpFile(*ftdcDump); err != nil {
					fmt.Fprintf(os.Stderr, "ftdc: %v\n", err)
				}
			}()
		}
	}
	if *debugAddr != "" {
		trace.SetEnabled(true)
		srv, err := obs.Start(*debugAddr, obs.Options{Recorder: rec})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "qpinn-train: observability plane on http://%s\n", srv.Addr)
	}

	var c maxwell.Case
	switch *caseName {
	case "vacuum":
		c = maxwell.VacuumCase
	case "dielectric":
		c = maxwell.DielectricCase
	case "asymmetric":
		c = maxwell.AsymmetricCase
	default:
		fmt.Fprintln(os.Stderr, "unknown case")
		os.Exit(2)
	}
	p := maxwell.NewSmokeProblem(c)
	if *paperPulse {
		p = maxwell.NewProblem(c)
	}

	archMap := map[string]core.Arch{
		"qpinn": core.QPINN, "regular": core.ClassicalRegular,
		"reduced": core.ClassicalReduced, "extra": core.ClassicalExtra,
	}
	arch, ok := archMap[*archName]
	if !ok {
		fmt.Fprintln(os.Stderr, "unknown arch")
		os.Exit(2)
	}
	ansatzMap := map[string]qsim.AnsatzKind{
		"basic": qsim.BasicEntangling, "strongly": qsim.StronglyEntangling,
		"crossmesh": qsim.CrossMesh, "crossmesh2": qsim.CrossMesh2Rot,
		"crossmeshcnot": qsim.CrossMeshCNOT, "noent": qsim.NoEntanglement,
	}
	scaleMap := map[string]qsim.ScalingKind{
		"none": qsim.ScaleNone, "pi": qsim.ScalePi, "bias": qsim.ScaleBias,
		"asin": qsim.ScaleAsin, "acos": qsim.ScaleAcos,
	}

	eng, err := qsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mcfg := core.ModelConfig{
		Arch: arch, Hidden: *hidden, RFFFeatures: *rff, RFFSigma: 1,
		NumQubits: *qubits, QLayers: *qlayers,
		Ansatz: ansatzMap[*ansatz], Scaling: scaleMap[*scale],
		Init: qsim.InitRegular, TimePeriod: 4, Seed: *seed,
		Engine: eng,
	}
	useSym := *symmetry && c != maxwell.AsymmetricCase
	tcfg := core.SmokeTrain(*epochs, maxwell.PaperConfig(*energy, useSym))
	tcfg.Grid = *grid
	tcfg.QuantumDiagnostics = arch == core.QPINN

	var model *core.Model
	if *loadPath != "" {
		var err error
		model, err = core.LoadFile(*loadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("warm start from %s (%v)\n", *loadPath, model.Cfg.Arch)
	} else {
		model = core.NewModel(mcfg)
	}
	cl, qu, tot := model.ParamCounts()
	fmt.Printf("case=%s arch=%v ansatz=%v scale=%v energy=%v\n", c, arch, mcfg.Ansatz, mcfg.Scaling, *energy)
	fmt.Printf("parameters: %d classical + %d quantum = %d total\n", cl, qu, tot)

	ref := core.NewReference(p, 16, []float64{0, p.TMax / 3, 2 * p.TMax / 3, p.TMax}, 64)
	every := *logEvery
	if every <= 0 {
		every = (*epochs + 9) / 10
	}

	start := time.Now()
	res := core.TrainModel(model, p, tcfg, ref)
	elapsed := time.Since(start)

	for i, h := range res.History {
		if i%every == 0 || i == len(res.History)-1 {
			l2 := "—"
			if !math.IsNaN(h.L2) {
				l2 = fmt.Sprintf("%.4f", h.L2)
			}
			fmt.Printf("epoch %5d  loss %10.3e  phys %9.3e  ic %9.3e  |grad| %9.3e  L2 %s\n",
				h.Epoch, h.Total, h.Phys, h.IC, h.GradNorm, l2)
		}
	}
	fmt.Printf("\ntrained %d epochs in %s (%.1f ms/epoch)\n", *epochs, elapsed.Round(time.Millisecond),
		elapsed.Seconds()*1000/float64(*epochs))
	fmt.Printf("final L2 error (eq. 32): %.5f\n", res.FinalL2)
	fmt.Printf("black-hole index I_BH (eq. 35): %.3f  collapsed=%v\n", res.FinalIBH, res.Collapsed)
	if *savePath != "" {
		if err := model.SaveFile(*savePath); err != nil {
			fmt.Fprintf(os.Stderr, "save checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *savePath)
	}
}
