// Command qpinn-bench regenerates individual tables and figures from the
// paper's evaluation. Run with -list to see every registered experiment.
//
// Usage:
//
//	qpinn-bench -exp table1
//	qpinn-bench -exp fig10 -preset smoke -seeds 2 -epochs 300
//	qpinn-bench -exp fig5 -figdir out/figs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/qsim"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment name (see -list)")
		list   = flag.Bool("list", false, "list experiments and exit")
		preset = flag.String("preset", "smoke", "smoke | paper")
		seeds  = flag.Int("seeds", 0, "replicate count (0 = preset default)")
		epochs = flag.Int("epochs", 0, "training epochs (0 = preset default)")
		figdir = flag.String("figdir", "", "directory for PGM/CSV artifacts")
		ansatz = flag.String("ansatz", "", "restrict sweep to comma-separated ansätze (basic|strongly|crossmesh|crossmesh2|crossmeshcnot|noent)")
		scale  = flag.String("scale", "", "restrict sweep to comma-separated scalings (none|pi|bias|asin|acos)")
		engine = flag.String("engine", "fused", "circuit-execution engine: "+qsim.EngineNames())
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Registered experiments:")
		for _, r := range experiments.Registry {
			fmt.Printf("  %-8s %s\n", r.Name, r.Doc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	r, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	eng, err := qsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := experiments.Options{
		Preset: experiments.Smoke,
		Seeds:  *seeds,
		Epochs: *epochs,
		Engine: eng,
		Out:    os.Stdout,
		FigDir: *figdir,
	}
	if *preset == "paper" {
		o.Preset = experiments.Paper
	}
	for _, name := range splitList(*ansatz) {
		if a, ok := parseAnsatz(name); ok {
			o.Ansatze = append(o.Ansatze, a)
		} else {
			fmt.Fprintf(os.Stderr, "unknown ansatz %q\n", name)
			os.Exit(2)
		}
	}
	for _, name := range splitList(*scale) {
		if sc, ok := parseScale(name); ok {
			o.Scalings = append(o.Scalings, sc)
		} else {
			fmt.Fprintf(os.Stderr, "unknown scale %q\n", name)
			os.Exit(2)
		}
	}

	start := time.Now()
	if err := r.Run(o); err != nil {
		fmt.Fprintf(os.Stderr, "experiment failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %s, preset=%s]\n", r.Name, time.Since(start).Round(time.Millisecond), *preset)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseAnsatz(s string) (qsim.AnsatzKind, bool) {
	switch s {
	case "basic":
		return qsim.BasicEntangling, true
	case "strongly":
		return qsim.StronglyEntangling, true
	case "crossmesh":
		return qsim.CrossMesh, true
	case "crossmesh2":
		return qsim.CrossMesh2Rot, true
	case "crossmeshcnot":
		return qsim.CrossMeshCNOT, true
	case "noent":
		return qsim.NoEntanglement, true
	}
	return 0, false
}

func parseScale(s string) (qsim.ScalingKind, bool) {
	switch s {
	case "none":
		return qsim.ScaleNone, true
	case "pi":
		return qsim.ScalePi, true
	case "bias":
		return qsim.ScaleBias, true
	case "asin":
		return qsim.ScaleAsin, true
	case "acos":
		return qsim.ScaleAcos, true
	}
	return 0, false
}
