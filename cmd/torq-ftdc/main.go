// torq-ftdc decodes flight-data-recorder captures written by torq-bench or
// qpinn-train (-ftdc-dump flag, SIGUSR1 while running, or the debug plane's
// /ftdc endpoint).
//
//	torq-ftdc -summary capture.ftdc   # digest + per-worker straggler check
//	torq-ftdc -json capture.ftdc      # the same digest, machine-readable
//	torq-ftdc -csv capture.ftdc       # full sample matrix for spreadsheets
//	torq-ftdc -series dist. capture.ftdc  # only series with a name prefix
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ftdc"
)

func main() {
	csvOut := flag.Bool("csv", false, "print every sample as CSV (time in unix ns, one column per series)")
	summary := flag.Bool("summary", false, "print the capture digest (default when no mode is given)")
	jsonOut := flag.Bool("json", false, "print the capture digest as JSON (sorted series, stable field order)")
	series := flag.String("series", "", "restrict CSV columns to series whose name has this prefix")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: torq-ftdc [-csv|-summary|-json] [-series prefix] <capture>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	samples, err := ftdc.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "torq-ftdc: %v\n", err)
		os.Exit(1)
	}
	if *csvOut {
		printCSV(samples, *series)
		return
	}
	if *jsonOut {
		printJSON(samples)
		return
	}
	_ = summary
	printSummary(samples)
}

// The JSON shapes mirror torq-lint's -json conventions: stable field order,
// sorted entries, non-nil empty arrays, two-space indentation.
type jsonMetric struct {
	Name  string `json:"name"`
	First int64  `json:"first"`
	Last  int64  `json:"last"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	Delta int64  `json:"delta"`
}

type jsonWorker struct {
	ID             int   `json:"id"`
	Shards         int64 `json:"shards"`
	Batches        int64 `json:"batches"`
	MeanShardLatNS int64 `json:"mean_shard_lat_ns"`
	Straggler      bool  `json:"straggler"`
}

type jsonSummary struct {
	Samples     int          `json:"samples"`
	StartUnixNS int64        `json:"start_unix_ns"`
	EndUnixNS   int64        `json:"end_unix_ns"`
	Metrics     []jsonMetric `json:"metrics"`
	Workers     []jsonWorker `json:"workers"`
}

func printJSON(samples []ftdc.Sample) {
	sum := ftdc.Summarize(samples)
	out := jsonSummary{
		Samples: sum.Samples,
		Metrics: []jsonMetric{},
		Workers: []jsonWorker{},
	}
	if sum.Samples > 0 {
		out.StartUnixNS = sum.Start.UnixNano()
		out.EndUnixNS = sum.End.UnixNano()
	}
	for _, m := range sum.Metrics { // already sorted by name
		out.Metrics = append(out.Metrics, jsonMetric{
			Name: m.Name, First: m.First, Last: m.Last, Min: m.Min, Max: m.Max, Delta: m.Delta(),
		})
	}
	for _, w := range sum.Workers { // already sorted by id
		out.Workers = append(out.Workers, jsonWorker{
			ID: w.ID, Shards: w.Shards, Batches: w.Batches,
			MeanShardLatNS: w.MeanShardLat.Nanoseconds(), Straggler: w.Straggler,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "torq-ftdc: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(b, '\n'))
}

func printCSV(samples []ftdc.Sample, prefix string) {
	cols := map[string]bool{}
	for _, s := range samples {
		for _, n := range s.Names {
			if strings.HasPrefix(n, prefix) {
				cols[n] = true
			}
		}
	}
	names := make([]string, 0, len(cols))
	for n := range cols {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("time_ns," + strings.Join(names, ","))
	row := make([]string, len(names)+1)
	for _, s := range samples {
		row[0] = strconv.FormatInt(s.T.UnixNano(), 10)
		for i, n := range names {
			if v, ok := s.Value(n); ok {
				row[i+1] = strconv.FormatInt(v, 10)
			} else {
				row[i+1] = ""
			}
		}
		fmt.Println(strings.Join(row, ","))
	}
}

func printSummary(samples []ftdc.Sample) {
	sum := ftdc.Summarize(samples)
	if sum.Samples == 0 {
		fmt.Println("empty capture")
		return
	}
	fmt.Printf("capture: %d samples, %s → %s (%s)\n",
		sum.Samples,
		sum.Start.Format("15:04:05.000"), sum.End.Format("15:04:05.000"),
		sum.End.Sub(sum.Start).Round(1e6))
	fmt.Printf("%-28s %14s %14s %14s\n", "series", "first", "last", "delta")
	var hist []string
	for _, m := range sum.Metrics {
		// Histogram buckets and per-worker series are folded into their own
		// sections below.
		if b, ok := strings.CutPrefix(m.Name, "dist.lat_b"); ok {
			if m.Last > 0 {
				k, _ := strconv.Atoi(b)
				lo := 0
				if k > 0 {
					lo = 1 << (k - 1)
				}
				hist = append(hist, fmt.Sprintf("[%dµs,%dµs): %d", lo, 1<<k, m.Last))
			}
			continue
		}
		if strings.HasPrefix(m.Name, "dist.w") && !strings.HasPrefix(m.Name, "dist.worker_") {
			continue
		}
		fmt.Printf("%-28s %14d %14d %14d\n", m.Name, m.First, m.Last, m.Delta())
	}
	if len(hist) > 0 {
		fmt.Printf("\nper-shard latency histogram: %s\n", strings.Join(hist, "  "))
	}
	if len(sum.Workers) > 0 {
		fmt.Printf("\n%-8s %10s %10s %16s %s\n", "worker", "shards", "batches", "mean shard lat", "")
		for _, w := range sum.Workers {
			flag := ""
			if w.Straggler {
				flag = "  ⚠ STRAGGLER (latency outlier vs fleet median)"
			}
			fmt.Printf("w%-7d %10d %10d %16s%s\n", w.ID, w.Shards, w.Batches, w.MeanShardLat.Round(1e3), flag)
		}
	}
}
