// Command bench-gate is the CI bench-trend regression gate: it compares a
// fresh `go test -bench` output against the committed BENCH_engine.json
// baseline and fails when a benchmark regresses beyond a tolerance band.
//
// CI runners and the machine that recorded the baseline differ in absolute
// speed, so the gate compares machine-independent RELATIVE costs: every
// benchmark is normalized by a reference benchmark measured in the same run
// (default TorqEpochLegacy, whose workload is fixed across PRs). For each
// benchmark present in both the baseline and the fresh output, the gate
// computes
//
//	drift = (fresh[b]/fresh[ref]) / (base[b]/base[ref])
//
// and fails when drift > 1 + tol: the benchmark got slower relative to the
// legacy yardstick than the baseline says it should be. A lost fusion pass
// or a de-optimized kernel shows up as drift ≥ 2 and trips the gate even on
// a noisy runner; -tol defaults to 0.5 so ordinary scheduling jitter does
// not. -warn-only downgrades failures to warnings for slow matrix runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	Benchmarks map[string]float64 `json:"benchmarks_ns_per_op"`
}

var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

func parseBench(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(data), -1) {
		if m := benchLine.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("bench-gate: bad ns/op in %q: %v", line, err)
			}
			// Keep the best (lowest) time when -count repeats a benchmark:
			// the minimum is the least noise-contaminated estimate.
			if prev, ok := out[m[1]]; !ok || v < prev {
				out[m[1]] = v
			}
		}
	}
	return out, nil
}

func main() {
	basePath := flag.String("baseline", "BENCH_engine.json", "committed baseline JSON")
	benchPath := flag.String("bench", "bench-smoke.txt", "fresh `go test -bench` output")
	ref := flag.String("ref", "TorqEpochLegacy", "reference benchmark used to normalize machine speed")
	tol := flag.Float64("tol", 0.5, "allowed relative-cost drift before failing (0.5 = +50%)")
	warnOnly := flag.Bool("warn-only", false, "report regressions without failing (slow matrix runners)")
	require := flag.String("require", "", "comma-separated substrings that must each match a benchmark present in BOTH the baseline and the fresh output (e.g. \"Sharded\") — a variant that silently stops being measured fails the gate instead of being skipped")
	flag.Parse()

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(2)
	}
	fresh, err := parseBench(*benchPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(2)
	}
	baseRef, okB := base.Benchmarks[*ref]
	freshRef, okF := fresh[*ref]
	if !okB || !okF || baseRef <= 0 || freshRef <= 0 {
		fmt.Fprintf(os.Stderr, "bench-gate: reference %q missing from baseline or fresh output\n", *ref)
		os.Exit(2)
	}

	// Required variants must be covered on BOTH sides: the per-baseline check
	// below only catches benchmarks that vanish from the fresh output, not a
	// whole family (e.g. the sharded engine) that was never added to the
	// committed baseline in the first place.
	for _, req := range strings.Split(*require, ",") {
		req = strings.TrimSpace(req)
		if req == "" {
			continue
		}
		matches := func(m map[string]float64) bool {
			//torq:allow maprange -- existence scan, any order finds the same answer
			for name := range m {
				if strings.Contains(name, req) {
					return true
				}
			}
			return false
		}
		if !matches(base.Benchmarks) {
			fmt.Fprintf(os.Stderr, "bench-gate: required variant %q missing from baseline %s\n", req, *basePath)
			os.Exit(2)
		}
		if !matches(fresh) {
			fmt.Fprintf(os.Stderr, "bench-gate: required variant %q missing from fresh output %s\n", req, *benchPath)
			os.Exit(2)
		}
	}

	// Every baseline benchmark must appear in the fresh output: a unit that
	// silently stops running (bench-regex drift, a rename without a baseline
	// update) would otherwise pass the gate while losing coverage.
	baseNames := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	var names, missing []string
	for _, name := range baseNames {
		if name == *ref {
			continue
		}
		if _, ok := fresh[name]; ok {
			names = append(names, name)
		} else {
			missing = append(missing, name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "bench-gate: no overlapping benchmarks to compare")
		os.Exit(2)
	}

	failed := false
	for _, name := range missing {
		fmt.Printf("%-36s MISSING from fresh output\n", name)
		failed = true
	}
	fmt.Printf("%-36s %12s %12s %8s\n", "benchmark", "base rel", "fresh rel", "drift")
	for _, name := range names {
		baseRel := base.Benchmarks[name] / baseRef
		freshRel := fresh[name] / freshRef
		drift := freshRel / baseRel
		status := "ok"
		if drift > 1+*tol {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-36s %12.4f %12.4f %7.3fx %s\n", name, baseRel, freshRel, drift, status)
	}
	if failed {
		if *warnOnly {
			fmt.Println("bench-gate: regressions found (warn-only mode, not failing)")
			return
		}
		fmt.Println("bench-gate: FAIL — relative cost drifted beyond the tolerance band")
		os.Exit(1)
	}
	fmt.Println("bench-gate: PASS")
}
