// Command maxwell-ref generates high-fidelity reference solutions of the
// 2-D TEz Maxwell problems: the exact spectral solution (vacuum), the
// 4th-order Padé compact scheme (any medium) and the Yee FDTD cross-check.
// Snapshots are written as PGM images and a CSV of total energy vs time.
//
// Usage:
//
//	maxwell-ref -case vacuum -grid 128 -times 0,0.5,1.0,1.5 -out refs/
//	maxwell-ref -case dielectric -solver pade -grid 96
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/maxwell"
	"repro/internal/refsol"
	"repro/internal/report"
)

func main() {
	var (
		caseName = flag.String("case", "vacuum", "vacuum | dielectric | asymmetric")
		solver   = flag.String("solver", "", "spectral | pade | fdtd (default: case-appropriate)")
		grid     = flag.Int("grid", 128, "grid resolution per axis")
		timesArg = flag.String("times", "", "comma-separated snapshot times (default: case-appropriate)")
		out      = flag.String("out", "refs", "output directory")
	)
	flag.Parse()

	var c maxwell.Case
	switch *caseName {
	case "vacuum":
		c = maxwell.VacuumCase
	case "dielectric":
		c = maxwell.DielectricCase
	case "asymmetric":
		c = maxwell.AsymmetricCase
	default:
		fmt.Fprintln(os.Stderr, "unknown case")
		os.Exit(2)
	}
	p := maxwell.NewProblem(c)

	times := []float64{0, p.TMax / 3, 2 * p.TMax / 3, p.TMax}
	if *timesArg != "" {
		times = times[:0]
		for _, s := range strings.Split(*timesArg, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad time %q: %v\n", s, err)
				os.Exit(2)
			}
			times = append(times, v)
		}
	}

	sol := *solver
	if sol == "" {
		if c == maxwell.DielectricCase {
			sol = "pade"
		} else {
			sol = "spectral"
		}
	}

	init := p.Pulse.InitFields(*grid)
	var snaps []*refsol.Fields
	switch sol {
	case "spectral":
		if c == maxwell.DielectricCase {
			fmt.Fprintln(os.Stderr, "spectral solver is vacuum-only")
			os.Exit(2)
		}
		snaps = refsol.NewSpectral(init).Series(times)
	case "pade":
		med := p.Medium
		if c == maxwell.DielectricCase {
			med = refsol.SmoothSlab(2 * refsol.L / float64(*grid))
		}
		snaps = refsol.NewPade(*grid, med).Solve(init, times)
	case "fdtd":
		med := p.Medium
		if c == maxwell.DielectricCase {
			med = refsol.SmoothSlab(2 * refsol.L / float64(*grid))
		}
		snaps = refsol.NewFDTD(*grid, med).Solve(init, times)
	default:
		fmt.Fprintln(os.Stderr, "unknown solver")
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	energies := make([]float64, len(times))
	for i, f := range snaps {
		energies[i] = refsol.TotalEnergy(f, p.Medium)
		name := filepath.Join(*out, fmt.Sprintf("%s_%s_ez_t%.3f.pgm", *caseName, sol, times[i]))
		fh, err := os.Create(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.PGM(fh, f.Ez, *grid, 0)
		fh.Close()
		fmt.Printf("wrote %s (energy %.6f)\n", name, energies[i])
	}
	csvName := filepath.Join(*out, fmt.Sprintf("%s_%s_energy.csv", *caseName, sol))
	fh, err := os.Create(csvName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.CSV(fh, []string{"t", "total_energy"}, times, energies)
	fh.Close()
	fmt.Printf("wrote %s\n", csvName)
}
