module repro

go 1.23

// Vendored (see vendor/): the go/analysis framework backing internal/lint and
// cmd/torq-lint. Pinned to the exact revision the Go 1.24 toolchain ships.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
