// Quickstart: train a small hybrid quantum–classical PINN on the paper's
// vacuum test case and report the relative L2 error against the exact
// spectral reference. This is the minimal end-to-end tour of the public
// surface: problem → model → training → evaluation.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/maxwell"
	"repro/internal/qsim"
)

func main() {
	// The paper's case 1: a Gaussian Ez pulse in periodic vacuum, t ∈ [0, 1.5].
	problem := maxwell.NewSmokeProblem(maxwell.VacuumCase)

	// A QPINN with the paper's best vacuum combination (§4.1): the Strongly
	// Entangling ansatz with the arccos input scaling, at laptop scale.
	model := core.SmokeModel(core.QPINN, qsim.StronglyEntangling, qsim.ScaleAcos)
	model.Seed = 42

	// The eq. 26 loss with the energy-conservation term — the ingredient
	// that prevents the "black hole" collapse in this case.
	loss := maxwell.PaperConfig(true, true)
	train := core.SmokeTrain(400, loss)
	train.Grid = 10

	// Reference: the exact spectral solution probed on a 16² grid × 4 times.
	ref := core.NewReference(problem, 16, []float64{0, 0.5, 1.0, 1.5}, 64)

	fmt.Println("training QPINN (Strongly Entangling + scale_acos + energy loss)...")
	res := core.Train(problem, model, train, ref)

	cl, qu, tot := res.Model.ParamCounts()
	fmt.Printf("parameters: %d classical + %d quantum = %d\n", cl, qu, tot)
	fmt.Printf("final loss: %.3e\n", res.History[len(res.History)-1].Total)
	fmt.Printf("relative L2 error vs exact solution (eq. 32): %.4f\n", res.FinalL2)
	fmt.Printf("black-hole index I_BH (eq. 35): %.3f (collapse threshold 0.9)\n", res.FinalIBH)
}
