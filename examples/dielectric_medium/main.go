// Dielectric medium: the paper's case 2 — the pulse interacting with an
// ε_r = 4 slab. Demonstrates the two physics-loss weightings of §5.1: the
// region-weighted eq. 14 loss (vacuum and dielectric partitions weighted
// equally) that keeps training stable without the energy term, versus the
// "intuitive" pointwise eq. 37 loss. The reference is the 4th-order Padé
// compact scheme.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/maxwell"
	"repro/internal/qsim"
	"repro/internal/report"
)

func main() {
	problem := maxwell.NewSmokeProblem(maxwell.DielectricCase)
	ref := core.NewReference(problem, 16, []float64{0, 0.23, 0.47, 0.7}, 64)

	const epochs = 500
	run := func(name string, intuitive, energy bool) *core.RunResult {
		m := core.SmokeModel(core.QPINN, qsim.NoEntanglement, qsim.ScaleAsin) // the paper's best dielectric combo
		m.Seed = 23
		cfg := maxwell.PaperConfig(energy, true)
		cfg.UseIntuitive = intuitive
		t := core.SmokeTrain(epochs, cfg)
		t.Grid = 10
		fmt.Printf("training %s ...\n", name)
		return core.Train(problem, m, t, ref)
	}

	region := run("QPINN, eq.14 region-weighted loss, no energy term", false, false)
	intuit := run("QPINN, eq.37 intuitive loss, no energy term", true, false)
	intuitE := run("QPINN, eq.37 intuitive loss + energy term", true, true)

	t := report.NewTable("Dielectric case (vs Padé reference)",
		"Physics loss", "Energy loss", "L2", "I_BH", "Collapsed")
	t.Row("eq. 14 region-weighted", false, region.FinalL2, region.FinalIBH, region.Collapsed)
	t.Row("eq. 37 intuitive", false, intuit.FinalL2, intuit.FinalIBH, intuit.Collapsed)
	t.Row("eq. 37 intuitive", true, intuitE.FinalL2, intuitE.FinalIBH, intuitE.Collapsed)
	t.Render(os.Stdout)
	fmt.Println("\nPaper shape (§5.1): the region-weighted loss avoids the black-hole")
	fmt.Println("attractor without needing the energy term; the intuitive loss needs it.")
}
