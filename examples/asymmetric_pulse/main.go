// Asymmetric pulse: the appendix-A test case — an off-center Gaussian
// stretched by (0.85, 0.65), which breaks both mirror symmetries, so the
// symmetry loss is disabled. Shows that the energy-conservation finding
// carries over: the QPINN needs the energy term, the classical PINN is
// better off without it.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/maxwell"
	"repro/internal/qsim"
	"repro/internal/refsol"
	"repro/internal/report"
)

func main() {
	problem := maxwell.NewSmokeProblem(maxwell.AsymmetricCase)

	// The initial condition of Fig. 13a.
	ic := refsol.AsymmetricPulse()
	fmt.Printf("initial pulse: center (%.2f, %.2f), stretch (%.2f, %.2f), peak %.3f\n",
		ic.X0, ic.Y0, ic.SX, ic.SY, ic.At(ic.X0, ic.Y0))

	ref := core.NewReference(problem, 16, []float64{0, 0.5, 0.8, 1.5}, 64)

	const epochs = 400
	run := func(arch core.Arch, energy bool) *core.RunResult {
		m := core.SmokeModel(arch, qsim.StronglyEntangling, qsim.ScaleAcos)
		m.Seed = 31
		t := core.SmokeTrain(epochs, maxwell.PaperConfig(energy, false)) // no symmetry loss
		t.Grid = 10
		return core.Train(problem, m, t, ref)
	}

	fmt.Println("training 4 configurations (QPINN/classical × ±energy)...")
	qe := run(core.QPINN, true)
	qn := run(core.QPINN, false)
	ce := run(core.ClassicalRegular, true)
	cn := run(core.ClassicalRegular, false)

	t := report.NewTable("Asymmetric pulse (Fig. 14b analogue)",
		"Model", "Energy loss", "L2", "I_BH", "Collapsed")
	t.Row("QPINN (Strongly Entangling + acos)", true, qe.FinalL2, qe.FinalIBH, qe.Collapsed)
	t.Row("QPINN (Strongly Entangling + acos)", false, qn.FinalL2, qn.FinalIBH, qn.Collapsed)
	t.Row("Classical PINN (regular)", true, ce.FinalL2, ce.FinalIBH, ce.Collapsed)
	t.Row("Classical PINN (regular)", false, cn.FinalL2, cn.FinalIBH, cn.Collapsed)
	t.Render(os.Stdout)
}
