// Schrödinger: a PINN for the 1-D free time-dependent Schrödinger equation
// built directly from the library's layer and autodiff primitives, showing
// that the substrate generalizes beyond the Maxwell system (and covering
// the "quantum physics-informed" reading of the paper's title: PINNs for
// quantum physics, cf. Raissi et al.'s original Schrödinger benchmark).
//
//	i ψ_t = −½ ψ_xx,   ψ = u + iv,   x ∈ [−1, 1) periodic
//
// The library's forward-tangent channels carry first derivatives only, so
// the second-order equation is recast as a first-order system with
// auxiliary outputs p = u_x and q = v_x:
//
//	res1 = u_t + ½ q_x      res3 = p − u_x
//	res2 = v_t − ½ p_x      res4 = q − v_x
//
// plus a probability-conservation residual (the analogue of the paper's
// Poynting energy term): ∂t|ψ|²/2 + ½ ∂x(u q − v p) = 0, expressible as
// u·u_t + v·v_t + ½(u·q_x − v·p_x).
package main

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"os"

	"repro/internal/ad"
	"repro/internal/dual"
	"repro/internal/fft"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/report"
)

const (
	domainL = 2.0
	tMax    = 0.5
	sigma   = 0.15                      // wave-packet width
	k0      = 2 * math.Pi * 2 / domainL // carrier momentum (mode 2)
)

// psi0 is the initial wave packet (periodized Gaussian × plane wave).
func psi0(x float64) complex128 {
	var acc complex128
	for img := -2; img <= 2; img++ { // periodic images
		xx := x + float64(img)*domainL
		env := math.Exp(-xx * xx / (2 * sigma * sigma))
		acc += complex(env, 0) * cmplx.Exp(complex(0, k0*xx))
	}
	return acc
}

// exactSolution evolves the initial condition spectrally:
// ψ̂(k, t) = ψ̂(k, 0)·e^{−i k² t / 2}.
type exactSolution struct {
	n    int
	hat0 []complex128
}

func newExact(n int) *exactSolution {
	hat := make([]complex128, n)
	for i := 0; i < n; i++ {
		hat[i] = psi0(-1 + domainL*float64(i)/float64(n))
	}
	fft.NewPlan(n).Forward(hat)
	return &exactSolution{n: n, hat0: hat}
}

func (e *exactSolution) at(x, t float64) complex128 {
	var acc complex128
	for b := 0; b < e.n; b++ {
		k := 2 * math.Pi * float64(fft.FreqIndex(b, e.n)) / domainL
		phase := k*(x+1) - k*k*t/2
		acc += e.hat0[b] * cmplx.Exp(complex(0, phase))
	}
	return acc / complex(float64(e.n), 0)
}

// model is a periodic-feature MLP with 4 outputs (u, v, p, q).
type model struct {
	reg    *nn.Registry
	layers []nn.Layer
}

func newModel(seed int64) *model {
	rng := rand.New(rand.NewSource(seed))
	reg := &nn.Registry{}
	m := &model{reg: reg}
	// Periodic embedding reuses the Maxwell layer with a dummy y column.
	m.layers = append(m.layers, nn.NewPeriodic(reg, domainL, domainL, 2.0))
	m.layers = append(m.layers, nn.NewRFF(rng, 6, 16, 1.0))
	m.layers = append(m.layers, nn.NewDense(reg, rng, "h1", 32, 48, true))
	m.layers = append(m.layers, nn.NewDense(reg, rng, "h2", 48, 48, true))
	m.layers = append(m.layers, nn.NewDense(reg, rng, "out", 48, 4, false))
	return m
}

func (m *model) forward(tp *ad.Tape, coords []float64, n int, tangents bool) dual.D {
	x := dual.FromValue(tp.Leaf(n, 3, coords, false))
	if tangents {
		for _, k := range []int{0, 2} { // ∂/∂x and ∂/∂t only
			tan := make([]float64, n*3)
			for i := 0; i < n; i++ {
				tan[i*3+k] = 1
			}
			x.T[k] = tp.Const(n, 3, tan)
		}
	}
	for _, l := range m.layers {
		x = l.Forward(tp, x)
	}
	return x
}

func main() {
	const (
		gridX, gridT = 24, 16
		epochs       = 600
	)
	m := newModel(7)

	// Collocation grid over (x, t); y is a zero dummy column.
	n := gridX * gridT
	coords := make([]float64, n*3)
	i := 0
	for it := 0; it < gridT; it++ {
		t := tMax * float64(it) / float64(gridT-1)
		for ix := 0; ix < gridX; ix++ {
			coords[i*3+0] = -1 + domainL*float64(ix)/float64(gridX)
			coords[i*3+2] = t
			i++
		}
	}
	// IC batch.
	icN := gridX
	icCoords := make([]float64, icN*3)
	icU := make([]float64, icN)
	icV := make([]float64, icN)
	for ix := 0; ix < gridX; ix++ {
		x := -1 + domainL*float64(ix)/float64(gridX)
		icCoords[ix*3] = x
		c := psi0(x)
		icU[ix] = real(c)
		icV[ix] = imag(c)
	}

	adam := opt.NewAdam(2e-3, m.reg.Buffers(), m.reg.Grads)
	tp := ad.NewTape()
	var lossHist []float64
	for epoch := 0; epoch < epochs; epoch++ {
		tp.Reset()
		m.reg.Bind(tp, true)
		out := m.forward(tp, coords, n, true)
		u := dual.Col(tp, out, 0)
		v := dual.Col(tp, out, 1)
		p := dual.Col(tp, out, 2)
		q := dual.Col(tp, out, 3)

		res1 := tp.Add(u.T[2], tp.Scale(q.T[0], 0.5))
		res2 := tp.Sub(v.T[2], tp.Scale(p.T[0], 0.5))
		res3 := tp.Sub(p.V, u.T[0])
		res4 := tp.Sub(q.V, v.T[0])
		// Probability-conservation residual (the energy-term analogue).
		cons := tp.Add(
			tp.Add(tp.Mul(u.V, u.T[2]), tp.Mul(v.V, v.T[2])),
			tp.Scale(tp.Sub(tp.Mul(u.V, q.T[0]), tp.Mul(v.V, p.T[0])), 0.5),
		)
		phys := tp.AddScalars(tp.MSE(res1), tp.MSE(res2), tp.MSE(res3), tp.MSE(res4))

		outIC := m.forward(tp, icCoords, icN, false)
		icLoss := tp.Add(
			tp.MSE(tp.Sub(dual.Col(tp, outIC, 0).V, tp.Const(icN, 1, icU))),
			tp.MSE(tp.Sub(dual.Col(tp, outIC, 1).V, tp.Const(icN, 1, icV))),
		)
		total := tp.AddScalars(phys, tp.Scale(icLoss, 10), tp.Scale(tp.MSE(cons), 10))
		tp.Backward(total)
		m.reg.PullGrads()
		adam.Step()
		lossHist = append(lossHist, total.Scalar())
	}

	// Evaluate |ψ| against the exact spectral solution.
	exact := newExact(128)
	evalN := 48
	var num, den float64
	for it := 0; it <= 4; it++ {
		t := tMax * float64(it) / 4
		evalCoords := make([]float64, evalN*3)
		for ix := 0; ix < evalN; ix++ {
			evalCoords[ix*3] = -1 + domainL*float64(ix)/float64(evalN)
			evalCoords[ix*3+2] = t
		}
		tp2 := ad.NewTape()
		m.reg.Bind(tp2, false)
		out := m.forward(tp2, evalCoords, evalN, false)
		uD := dual.Col(tp2, out, 0).V.Data()
		vD := dual.Col(tp2, out, 1).V.Data()
		for ix := 0; ix < evalN; ix++ {
			x := evalCoords[ix*3]
			want := exact.at(x, t)
			du := uD[ix] - real(want)
			dv := vD[ix] - imag(want)
			num += du*du + dv*dv
			den += real(want)*real(want) + imag(want)*imag(want)
		}
	}
	l2 := math.Sqrt(num / den)

	fmt.Printf("1-D free Schrödinger PINN (first-order system, %d params)\n", m.reg.Count())
	fmt.Printf("loss: %.3e → %.3e over %d epochs\n", lossHist[0], lossHist[len(lossHist)-1], epochs)
	fmt.Printf("relative L2 error of ψ vs exact spectral solution: %.4f\n", l2)
	report.LinePlot(os.Stdout, "training loss (log scale)", 72, 12, true,
		map[string][]float64{"loss": lossHist})
}
