// Vacuum pulse: the paper's case 1 head-to-head — a QPINN trained with and
// without the Poynting energy-conservation loss, against the classical
// PINN baseline. Demonstrates the "black hole" failure mode (§5) and its
// mitigation: without the energy term the quantum model slides toward the
// trivial solution (fields ≈ 0 for t > 0, I_BH → 1); with it, training
// converges to the physical solution.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/maxwell"
	"repro/internal/qsim"
	"repro/internal/report"
)

func main() {
	problem := maxwell.NewSmokeProblem(maxwell.VacuumCase)
	ref := core.NewReference(problem, 16, []float64{0, 0.375, 0.75, 1.125, 1.5}, 64)

	const epochs = 500
	run := func(name string, arch core.Arch, energy bool) *core.RunResult {
		m := core.SmokeModel(arch, qsim.StronglyEntangling, qsim.ScaleAcos)
		m.Seed = 17
		t := core.SmokeTrain(epochs, maxwell.PaperConfig(energy, true))
		t.Grid = 10
		fmt.Printf("training %s ...\n", name)
		return core.Train(problem, m, t, ref)
	}

	qe := run("QPINN + energy loss", core.QPINN, true)
	qn := run("QPINN without energy loss", core.QPINN, false)
	cl := run("classical PINN (regular depth)", core.ClassicalRegular, false)

	t := report.NewTable("Vacuum case summary (eq. 32 L2, eq. 35 I_BH)",
		"Model", "Energy loss", "L2", "I_BH", "Collapsed")
	t.Row("QPINN (Strongly Entangling + acos)", true, qe.FinalL2, qe.FinalIBH, qe.Collapsed)
	t.Row("QPINN (Strongly Entangling + acos)", false, qn.FinalL2, qn.FinalIBH, qn.Collapsed)
	t.Row("Classical PINN (regular)", false, cl.FinalL2, cl.FinalIBH, cl.Collapsed)
	t.Render(os.Stdout)

	curves := map[string][]float64{}
	for _, e := range []struct {
		name string
		r    *core.RunResult
	}{
		{"QPINN+energy", qe}, {"QPINN no-energy", qn}, {"classical", cl},
	} {
		c := make([]float64, len(e.r.History))
		for i, h := range e.r.History {
			c[i] = h.Total
		}
		curves[e.name] = c
	}
	fmt.Println()
	report.LinePlot(os.Stdout, "Training loss (log scale)", 72, 16, true, curves)
}
