package dist

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Transport telemetry. The coordinator holds its own mutex for the entire
// duration of a pass, so the ftdc recorder can never sample through
// coordinator state — every counter here lives outside it, updated with
// plain atomics at the instrumentation points (one add per batch or per
// pass, never per amplitude) and snapshotted lock-free by Collect. The
// torq-lint nolocktelemetry analyzer holds the sampling surface to that
// claim: observeBatch, Collect, and ResetTelemetry are //torq:nolock, so
// anything needing a lock, a map, or an allocation (series-name formatting
// included) must happen at worker registration instead.

// latBuckets is the size of the log2 per-shard latency histogram: bucket k
// counts shards whose per-shard latency fell in [2^(k-1), 2^k) microseconds
// (bucket 0: under 1µs), covering up to ~2^26 µs ≈ 67s — past the default
// shard timeout.
const latBuckets = 28

var xstats struct {
	passes, fwdPasses, bwdPasses atomic.Int64
	shardsDone, batches          atomic.Int64
	redispatched                 atomic.Int64
	affRouted, affMissed         atomic.Int64
	queueDepth                   atomic.Int64 // gauge: shards sent, not yet answered
	bytesOut, bytesIn            atomic.Int64
	handshakes, workerKills      atomic.Int64
	lat                          [latBuckets]atomic.Int64
	latSumNS                     atomic.Int64 // total per-shard latency, the histogram's exact sum
}

// latNames precomputes the histogram series names so Collect never formats.
var latNames = func() (a [latBuckets]string) {
	for b := range a {
		a[b] = fmt.Sprintf("dist.lat_b%02d", b)
	}
	return
}()

// workerStats accumulates one worker's per-shard service telemetry. Batch
// round-trip latency is attributed evenly across the batch's shards; with
// pipelining the measurement includes queue wait, which is exactly what a
// straggler check wants — a slow worker backs its own queue up. Series
// names are baked in at registration, the one place allowed to allocate.
type workerStats struct {
	shards  atomic.Int64
	latNS   atomic.Int64
	batches atomic.Int64
	dead    atomic.Bool

	nameShards, nameLatNS, nameBatches string
}

// maxWorkerSlots bounds the per-worker slot array. Worker ids are monotonic
// and never reused, so the index doubles as a spawn counter; a run that
// churns through more than this many workers keeps exact aggregate counters
// and just stops opening new per-worker series.
const maxWorkerSlots = 512

var wslots struct {
	slots [maxWorkerSlots]atomic.Pointer[workerStats]
	maxID atomic.Int64
}

// registerWorkerStats opens the per-worker telemetry slot for a newly
// spawned or dialed worker. It runs on the coordinator's spawn path, where
// allocating and formatting are fine; the sampling functions below only
// ever load what is published here.
func registerWorkerStats(id int) {
	if id <= 0 || id >= maxWorkerSlots || wslots.slots[id].Load() != nil {
		return
	}
	ws := &workerStats{
		nameShards:  fmt.Sprintf("dist.w%d.shards", id),
		nameLatNS:   fmt.Sprintf("dist.w%d.lat_ns", id),
		nameBatches: fmt.Sprintf("dist.w%d.batches", id),
	}
	wslots.slots[id].CompareAndSwap(nil, ws)
	for {
		cur := wslots.maxID.Load()
		if int64(id) <= cur || wslots.maxID.CompareAndSwap(cur, int64(id)) {
			return
		}
	}
}

// observeBatch records one answered batch: n shards in latNS nanoseconds of
// round-trip time, served by worker id.
//
//torq:nolock
func observeBatch(id, n int, latNS int64) {
	if n <= 0 {
		return
	}
	xstats.shardsDone.Add(int64(n))
	xstats.batches.Add(1)
	perShard := latNS / int64(n)
	b := bits.Len64(uint64(perShard / 1000)) // log2 bucket in µs
	if b >= latBuckets {
		b = latBuckets - 1
	}
	xstats.lat[b].Add(int64(n))
	xstats.latSumNS.Add(latNS)
	if id <= 0 || id >= maxWorkerSlots {
		return
	}
	if ws := wslots.slots[id].Load(); ws != nil {
		ws.shards.Add(int64(n))
		ws.latNS.Add(latNS)
		ws.batches.Add(1)
	}
}

// markWorkerDead flags a worker's telemetry slot when the coordinator tears
// its transport down — the liveness bit behind WorkersHealth. Worker ids are
// never reused, so a respawned worker opens a fresh, live slot.
//
//torq:nolock
func markWorkerDead(id int) {
	if id <= 0 || id >= maxWorkerSlots {
		return
	}
	if ws := wslots.slots[id].Load(); ws != nil {
		ws.dead.Store(true)
	}
}

// WorkerHealth is one worker's liveness/service snapshot, the unit of the
// debug plane's /healthz exposition.
type WorkerHealth struct {
	ID             int   `json:"id"`
	Alive          bool  `json:"alive"`
	Shards         int64 `json:"shards"`
	Batches        int64 `json:"batches"`
	MeanShardLatNS int64 `json:"mean_shard_lat_ns"`
	Straggler      bool  `json:"straggler"`
}

// Straggler flagging mirrors the ftdc capture summary's rule: a worker is
// flagged when its mean per-shard latency exceeds three times the pool's
// lower-median mean, with a floor that keeps microsecond-scale noise from
// flagging anything. Kept numerically identical so the live /healthz view
// and the post-mortem dump summary never disagree about the same run.
const (
	healthStragglerFactor  = 3
	healthStragglerFloorNS = 2_000_000 // 2ms
)

// WorkersHealth snapshots every registered worker in id order. Cold path —
// it allocates and sorts; the debug HTTP plane calls it, never the sampling
// goroutine.
func WorkersHealth() []WorkerHealth {
	max := wslots.maxID.Load()
	out := make([]WorkerHealth, 0, max)
	var lats []int64
	for id := int64(1); id <= max && id < maxWorkerSlots; id++ {
		ws := wslots.slots[id].Load()
		if ws == nil {
			continue
		}
		h := WorkerHealth{
			ID:      int(id),
			Alive:   !ws.dead.Load(),
			Shards:  ws.shards.Load(),
			Batches: ws.batches.Load(),
		}
		if h.Shards > 0 {
			h.MeanShardLatNS = ws.latNS.Load() / h.Shards
			lats = append(lats, h.MeanShardLatNS)
		}
		out = append(out, h)
	}
	if len(lats) >= 2 {
		sorted := append([]int64(nil), lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		median := sorted[(len(sorted)-1)/2]
		for i := range out {
			m := out[i].MeanShardLatNS
			out[i].Straggler = out[i].Shards > 0 &&
				m > healthStragglerFactor*median && m > healthStragglerFloorNS
		}
	}
	return out
}

// Collect emits the transport counters in the flat name → int64 form the
// ftdc recorder samples. Per-worker series are named dist.w<id>.*; worker
// ids are never reused, so a respawned worker starts fresh series (the
// recorder's schema-on-change encoding absorbs the set change). Slots are
// walked in id order, so emission order is deterministic.
//
//torq:nolock
func Collect(emit func(name string, value int64)) {
	emit("dist.passes", xstats.passes.Load())
	emit("dist.fwd_passes", xstats.fwdPasses.Load())
	emit("dist.bwd_passes", xstats.bwdPasses.Load())
	emit("dist.shards_done", xstats.shardsDone.Load())
	emit("dist.batches", xstats.batches.Load())
	emit("dist.redispatched", xstats.redispatched.Load())
	emit("dist.aff_routed", xstats.affRouted.Load())
	emit("dist.aff_missed", xstats.affMissed.Load())
	emit("dist.queue_depth", xstats.queueDepth.Load())
	emit("dist.bytes_out", xstats.bytesOut.Load())
	emit("dist.bytes_in", xstats.bytesIn.Load())
	emit("dist.handshakes", xstats.handshakes.Load())
	emit("dist.worker_kills", xstats.workerKills.Load())
	emit("dist.lat_sum_ns", xstats.latSumNS.Load())
	for b := 0; b < latBuckets; b++ {
		emit(latNames[b], xstats.lat[b].Load())
	}
	max := wslots.maxID.Load()
	for id := int64(1); id <= max && id < maxWorkerSlots; id++ {
		ws := wslots.slots[id].Load()
		if ws == nil {
			continue
		}
		emit(ws.nameShards, ws.shards.Load())
		emit(ws.nameLatNS, ws.latNS.Load())
		emit(ws.nameBatches, ws.batches.Load())
	}
}

// ResetTelemetry zeroes every transport counter and drops the per-worker
// series (tests and A/B runs).
//
//torq:nolock
func ResetTelemetry() {
	xstats.passes.Store(0)
	xstats.fwdPasses.Store(0)
	xstats.bwdPasses.Store(0)
	xstats.shardsDone.Store(0)
	xstats.batches.Store(0)
	xstats.redispatched.Store(0)
	xstats.affRouted.Store(0)
	xstats.affMissed.Store(0)
	xstats.queueDepth.Store(0)
	xstats.bytesOut.Store(0)
	xstats.bytesIn.Store(0)
	xstats.handshakes.Store(0)
	xstats.workerKills.Store(0)
	xstats.latSumNS.Store(0)
	for b := range xstats.lat {
		xstats.lat[b].Store(0)
	}
	max := wslots.maxID.Load()
	for id := int64(1); id <= max && id < maxWorkerSlots; id++ {
		wslots.slots[id].Store(nil)
	}
	wslots.maxID.Store(0)
}
