package dist

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Transport telemetry. The coordinator holds its own mutex for the entire
// duration of a pass, so the ftdc recorder can never sample through
// coordinator state — every counter here lives outside it, updated with
// plain atomics at the instrumentation points (one add per batch or per
// pass, never per amplitude) and snapshotted lock-free by Collect.

// latBuckets is the size of the log2 per-shard latency histogram: bucket k
// counts shards whose per-shard latency fell in [2^(k-1), 2^k) microseconds
// (bucket 0: under 1µs), covering up to ~2^26 µs ≈ 67s — past the default
// shard timeout.
const latBuckets = 28

var xstats struct {
	passes, fwdPasses, bwdPasses atomic.Int64
	shardsDone, batches          atomic.Int64
	redispatched                 atomic.Int64
	affRouted, affMissed         atomic.Int64
	queueDepth                   atomic.Int64 // gauge: shards sent, not yet answered
	bytesOut, bytesIn            atomic.Int64
	handshakes, workerKills      atomic.Int64
	lat                          [latBuckets]atomic.Int64
}

// workerStats accumulates one worker's per-shard service telemetry. Batch
// round-trip latency is attributed evenly across the batch's shards; with
// pipelining the measurement includes queue wait, which is exactly what a
// straggler check wants — a slow worker backs its own queue up.
type workerStats struct {
	shards  atomic.Int64
	latNS   atomic.Int64
	batches atomic.Int64
}

var wstats struct {
	mu sync.Mutex
	m  map[int]*workerStats
}

func workerStatsFor(id int) *workerStats {
	wstats.mu.Lock()
	defer wstats.mu.Unlock()
	if wstats.m == nil {
		wstats.m = make(map[int]*workerStats)
	}
	ws := wstats.m[id]
	if ws == nil {
		ws = &workerStats{}
		wstats.m[id] = ws
	}
	return ws
}

// observeBatch records one answered batch: n shards in latNS nanoseconds of
// round-trip time, served by worker id.
func observeBatch(id, n int, latNS int64) {
	if n <= 0 {
		return
	}
	xstats.shardsDone.Add(int64(n))
	xstats.batches.Add(1)
	perShard := latNS / int64(n)
	b := bits.Len64(uint64(perShard / 1000)) // log2 bucket in µs
	if b >= latBuckets {
		b = latBuckets - 1
	}
	xstats.lat[b].Add(int64(n))
	ws := workerStatsFor(id)
	ws.shards.Add(int64(n))
	ws.latNS.Add(latNS)
	ws.batches.Add(1)
}

// Collect emits the transport counters in the flat name → int64 form the
// ftdc recorder samples. Per-worker series are named dist.w<id>.*; worker
// ids are never reused, so a respawned worker starts fresh series (the
// recorder's schema-on-change encoding absorbs the set change).
func Collect(emit func(name string, value int64)) {
	emit("dist.passes", xstats.passes.Load())
	emit("dist.fwd_passes", xstats.fwdPasses.Load())
	emit("dist.bwd_passes", xstats.bwdPasses.Load())
	emit("dist.shards_done", xstats.shardsDone.Load())
	emit("dist.batches", xstats.batches.Load())
	emit("dist.redispatched", xstats.redispatched.Load())
	emit("dist.aff_routed", xstats.affRouted.Load())
	emit("dist.aff_missed", xstats.affMissed.Load())
	emit("dist.queue_depth", xstats.queueDepth.Load())
	emit("dist.bytes_out", xstats.bytesOut.Load())
	emit("dist.bytes_in", xstats.bytesIn.Load())
	emit("dist.handshakes", xstats.handshakes.Load())
	emit("dist.worker_kills", xstats.workerKills.Load())
	for b := 0; b < latBuckets; b++ {
		emit(fmt.Sprintf("dist.lat_b%02d", b), xstats.lat[b].Load())
	}
	wstats.mu.Lock()
	ids := make([]int, 0, len(wstats.m))
	for id := range wstats.m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ws := wstats.m[id]
		emit(fmt.Sprintf("dist.w%d.shards", id), ws.shards.Load())
		emit(fmt.Sprintf("dist.w%d.lat_ns", id), ws.latNS.Load())
		emit(fmt.Sprintf("dist.w%d.batches", id), ws.batches.Load())
	}
	wstats.mu.Unlock()
}

// ResetTelemetry zeroes every transport counter and drops the per-worker
// series (tests and A/B runs).
func ResetTelemetry() {
	xstats.passes.Store(0)
	xstats.fwdPasses.Store(0)
	xstats.bwdPasses.Store(0)
	xstats.shardsDone.Store(0)
	xstats.batches.Store(0)
	xstats.redispatched.Store(0)
	xstats.affRouted.Store(0)
	xstats.affMissed.Store(0)
	xstats.queueDepth.Store(0)
	xstats.bytesOut.Store(0)
	xstats.bytesIn.Store(0)
	xstats.handshakes.Store(0)
	xstats.workerKills.Store(0)
	for b := range xstats.lat {
		xstats.lat[b].Store(0)
	}
	wstats.mu.Lock()
	wstats.m = nil
	wstats.mu.Unlock()
}
