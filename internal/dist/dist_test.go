// Package dist_test exercises the multi-process executor end to end with
// real subprocess workers: the coordinator self-execs this test binary
// (package dist's init intercepts TORQ_DIST_WORKER=stdio), so every parity
// run below ships shards over actual pipes to actual worker processes.
//
// It lives outside package dist so it can pull in core/nn for the training
// recovery test — those packages link dist themselves, which would be an
// import cycle for an internal test package.
package dist_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/qsim"
)

// passResult bundles everything one engine produces for a forward+backward
// pass.
type passResult struct {
	z, dAngles, dTheta []float64
	ztans, dTans       [][]float64
}

func randRows(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// runPass executes one forward+backward pass of circ on the given engine.
func runPass(kind qsim.EngineKind, circ *qsim.Circuit, n int, angles []float64, tans [][]float64,
	theta, gz []float64, gztans [][]float64) passResult {
	nq := circ.NumQubits
	pqc := &qsim.PQC{Circ: circ, Eng: kind}
	ws := qsim.NewWorkspace(n, nq)
	z, ztans := pqc.Forward(ws, angles, tans, theta)
	res := passResult{
		z:       z,
		ztans:   ztans,
		dAngles: make([]float64, n*nq),
		dTheta:  make([]float64, circ.NumParams),
		dTans:   make([][]float64, qsim.MaxTangents),
	}
	for k := range tans {
		if tans[k] != nil {
			res.dTans[k] = make([]float64, n*nq)
		}
	}
	pqc.Backward(ws, gz, gztans, res.dAngles, res.dTans, res.dTheta)
	return res
}

// requireBitIdentical fails unless a and b are bitwise equal floats.
func requireBitIdentical(t *testing.T, ctx, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %s length %d vs %d", ctx, name, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: %s[%d] differs: %v vs %v (bit patterns %016x vs %016x)",
				ctx, name, i, want[i], got[i], math.Float64bits(want[i]), math.Float64bits(got[i]))
		}
	}
}

func comparePass(t *testing.T, ctx string, want, got passResult) {
	t.Helper()
	requireBitIdentical(t, ctx, "z", want.z, got.z)
	requireBitIdentical(t, ctx, "dAngles", want.dAngles, got.dAngles)
	requireBitIdentical(t, ctx, "dTheta", want.dTheta, got.dTheta)
	for k := 0; k < qsim.MaxTangents; k++ {
		if want.ztans[k] != nil {
			requireBitIdentical(t, ctx, "ztans", want.ztans[k], got.ztans[k])
			requireBitIdentical(t, ctx, "dTans", want.dTans[k], got.dTans[k])
		} else if got.ztans[k] != nil {
			t.Fatalf("%s: tangent channel %d unexpectedly present", ctx, k)
		}
	}
}

// distTransportConfigs are the transport variants every parity matrix runs
// under: the default pipelined/batched/affinity transport, and the knobs
// forced to the serial single-shard stateless protocol — bit-identity must
// hold for both, which proves batching, pipelining, and forward-state
// affinity are pure transport concerns that never touch the numerics.
var distTransportConfigs = []struct {
	name string
	opts dist.Options
}{
	{"batched", dist.Options{}},
	{"unbatched", dist.Options{BatchShards: 1, Pipeline: 1, Affinity: -1}},
}

// TestDistBitIdenticalToSharded is the acceptance check: EngineDist with 1,
// 2, and 4 subprocess workers must produce bit-identical z rows and
// gradients to the in-process EngineSharded on every ansatz, with and
// without data re-uploading, with shard batching and forward-state affinity
// both enabled and disabled. The batch is sized to split into several
// shards so multi-worker runs genuinely interleave and re-order shard
// completion — bit-identity then proves the shard-order merge.
func TestDistBitIdenticalToSharded(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(4242))
	const n, nq = 48, 4

	type workload struct {
		circ *qsim.Circuit
		ctx  string
		in   []([]float64) // angles, theta, gz
		tans [][]float64
		gzt  [][]float64
		want passResult
	}
	var loads []workload
	for _, a := range qsim.AllAnsatze {
		for _, reup := range []bool{false, true} {
			circ := a.Build(nq, 2)
			if reup {
				circ = circ.WithReupload()
			}
			angles := randRows(rng, n*nq)
			theta := randRows(rng, circ.NumParams)
			tans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
			gz := randRows(rng, n*nq)
			gztans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
			loads = append(loads, workload{
				circ: circ,
				ctx:  circ.Name,
				in:   [][]float64{angles, theta, gz},
				tans: tans, gzt: gztans,
				want: runPass(qsim.EngineSharded, circ, n, angles, tans, theta, gz, gztans),
			})
		}
	}

	for _, cfg := range distTransportConfigs {
		for _, workers := range []int{1, 2, 4} {
			opts := cfg.opts
			opts.Workers = workers
			dist.Configure(opts)
			for _, w := range loads {
				got := runPass(qsim.EngineDist, w.circ, n, w.in[0], w.tans, w.in[1], w.in[2], w.gzt)
				comparePass(t, fmt.Sprintf("%s/%s/workers=%d", w.ctx, cfg.name, workers), w.want, got)
			}
		}
	}
}

// TestDistBitIdenticalLargeBatch covers the 7-qubit shape the benchmarks
// use, where a pass splits into dozens of shards and the fused-diagonal
// accumulators (Cross-Mesh's opDiagN) must merge in shard order across
// worker processes.
func TestDistBitIdenticalLargeBatch(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(99))
	const n, nq = 96, 7
	circ := qsim.CrossMesh.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	tans := [][]float64{randRows(rng, n*nq), randRows(rng, n*nq), randRows(rng, n*nq)}
	gz := randRows(rng, n*nq)
	gztans := [][]float64{randRows(rng, n*nq), randRows(rng, n*nq), randRows(rng, n*nq)}
	want := runPass(qsim.EngineSharded, circ, n, angles, tans, theta, gz, gztans)

	for _, cfg := range distTransportConfigs {
		opts := cfg.opts
		opts.Workers = 2
		dist.Configure(opts)
		got := runPass(qsim.EngineDist, circ, n, angles, tans, theta, gz, gztans)
		comparePass(t, "crossmesh-7q/"+cfg.name, want, got)
	}
}

// TestDistNoTangentsNilGrad covers the pure value path (no tangent channels,
// nil angle-gradient buffers) the barren-plateau probe drives the layer
// with.
func TestDistNoTangentsNilGrad(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(7))
	const n, nq = 33, 4
	circ := qsim.StronglyEntangling.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	gz := randRows(rng, n*nq)

	run := func(kind qsim.EngineKind) ([]float64, []float64, []float64) {
		pqc := &qsim.PQC{Circ: circ, Eng: kind}
		ws := qsim.NewWorkspace(n, nq)
		z, _ := pqc.Forward(ws, angles, nil, theta)
		dA := make([]float64, n*nq)
		dTheta := make([]float64, circ.NumParams)
		pqc.Backward(ws, gz, nil, dA, nil, dTheta)
		return z, dA, dTheta
	}
	zS, daS, dtS := run(qsim.EngineSharded)
	dist.Configure(dist.Options{Workers: 2})
	zD, daD, dtD := run(qsim.EngineDist)
	requireBitIdentical(t, "no-tangents", "z", zS, zD)
	requireBitIdentical(t, "no-tangents", "dAngles", daS, daD)
	requireBitIdentical(t, "no-tangents", "dTheta", dtS, dtD)
}

// TestDistNilValueGradient covers a nil gz with live tangent upstream
// gradients (only the tangent outputs feed the loss), so the optional-array
// wire encoding of an absent gz is exercised against the in-process result.
func TestDistNilValueGradient(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(13))
	const n, nq = 29, 4
	circ := qsim.CrossMesh2Rot.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	tans := [][]float64{randRows(rng, n*nq), nil, nil}
	gztans := [][]float64{randRows(rng, n*nq), nil, nil}

	want := runPass(qsim.EngineSharded, circ, n, angles, tans, theta, nil, gztans)
	dist.Configure(dist.Options{Workers: 2})
	got := runPass(qsim.EngineDist, circ, n, angles, tans, theta, nil, gztans)
	comparePass(t, "nil-gz", want, got)
}
