package dist_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/maxwell"
	"repro/internal/opt"
	"repro/internal/qsim"
)

// TestDistRedispatchOnWorkerDeath arms one of two workers to die
// deterministically mid-pass (after serving its first shard) and checks the
// coordinator finishes the pass on the survivor with results bit-identical
// to an undisturbed run — re-dispatch must be invisible because shard
// results do not depend on which worker computed them.
func TestDistRedispatchOnWorkerDeath(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(555))
	const n, nq = 96, 7
	circ := qsim.StronglyEntangling.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	tans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
	gz := randRows(rng, n*nq)
	gztans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}

	dist.Configure(dist.Options{Workers: 2})
	want := runPass(qsim.EngineDist, circ, n, angles, tans, theta, gz, gztans)
	if live := dist.LiveWorkersForTest(); live != 2 {
		t.Fatalf("expected 2 live workers after the clean pass, have %d", live)
	}

	// Fresh pool with one sabotaged worker: it exits upon receiving its
	// second shard assignment, mid-pass and before replying. The forward
	// pass finishes on the survivor; the subsequent backward pass then
	// respawns the replacement (with a clean environment), so the pool is
	// whole again by the time runPass returns.
	dist.Configure(dist.Options{Workers: 2})
	dist.SetTestSpawnEnv(dist.FailAfterEnv + "=1")
	got := runPass(qsim.EngineDist, circ, n, angles, tans, theta, gz, gztans)
	comparePass(t, "after worker death", want, got)
	if live := dist.LiveWorkersForTest(); live != 2 {
		t.Fatalf("expected the pool healed to 2 live workers after the sabotaged pass, have %d", live)
	}

	// And the healed pool keeps producing identical results.
	got = runPass(qsim.EngineDist, circ, n, angles, tans, theta, gz, gztans)
	comparePass(t, "after respawn", want, got)
}

// TestDistSurvivesExternalKill kills a live worker's process outright (as a
// crash or OOM kill would) and checks the next pass still completes and the
// pool heals.
func TestDistSurvivesExternalKill(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(77))
	const n, nq = 40, 4
	circ := qsim.BasicEntangling.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	gz := randRows(rng, n*nq)

	dist.Configure(dist.Options{Workers: 2})
	want := runPass(qsim.EngineDist, circ, n, angles, nil, theta, gz, nil)
	if !dist.KillOneWorkerForTest() {
		t.Fatal("no live worker to kill")
	}
	got := runPass(qsim.EngineDist, circ, n, angles, nil, theta, gz, nil)
	comparePass(t, "after external kill", want, got)
	if live := dist.LiveWorkersForTest(); live != 2 {
		t.Fatalf("expected the pool respawned to 2 live workers, have %d", live)
	}
}

// TestDistAffinityCacheServesBackward proves forward-state affinity
// actually engages end to end: with a single worker and the worker-side
// require-cached hook armed, every backward shard must be answered from the
// retained forward states — a stateless recompute (affinity broken, pairing
// lost, snapshot validation failing) kills the worker and fails the pass.
// Two rounds with fresh inputs and theta check that each backward pairs
// with its own round's forward rather than replaying stale states (the
// worker validates cached inputs bit-for-bit before trusting a snapshot).
func TestDistAffinityCacheServesBackward(t *testing.T) {
	defer dist.Shutdown()
	t.Setenv(dist.RequireCachedEnv, "1")
	rng := rand.New(rand.NewSource(31337))
	const n, nq = 96, 7
	circ := qsim.CrossMesh.Build(nq, 2)

	// One worker: with several, work stealing legitimately routes shards
	// away from their forward owner and the hook would misfire.
	dist.Configure(dist.Options{Workers: 1})
	for round := 0; round < 2; round++ {
		angles := randRows(rng, n*nq)
		theta := randRows(rng, circ.NumParams)
		tans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
		gz := randRows(rng, n*nq)
		gztans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
		want := runPass(qsim.EngineSharded, circ, n, angles, tans, theta, gz, gztans)
		got := runPass(qsim.EngineDist, circ, n, angles, tans, theta, gz, gztans)
		comparePass(t, fmt.Sprintf("require-cached round %d", round), want, got)
	}
	if live := dist.LiveWorkersForTest(); live != 1 {
		t.Fatalf("expected 1 live worker (no cache miss ever killed it), have %d", live)
	}
}

// TestDistAffinityInvalidationOnWorkerDeath kills workers holding cached
// forward states between a pass's forward and backward halves. The
// backward must fall back to the stateless recompute on the survivors (or a
// freshly respawned pool when every state-holder died) and stay
// bit-identical to the in-process sharded engine — affinity is a fast path,
// never a correctness dependency.
func TestDistAffinityInvalidationOnWorkerDeath(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(909))
	const n, nq = 96, 7
	circ := qsim.StronglyEntangling.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	tans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
	gz := randRows(rng, n*nq)
	gztans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
	want := runPass(qsim.EngineSharded, circ, n, angles, tans, theta, gz, gztans)

	// splitPass runs forward, kills `kills` live workers while they hold
	// the forward states, then runs the paired backward.
	splitPass := func(kills int) passResult {
		pqc := &qsim.PQC{Circ: circ, Eng: qsim.EngineDist}
		ws := qsim.NewWorkspace(n, nq)
		z, ztans := pqc.Forward(ws, angles, tans, theta)
		for i := 0; i < kills; i++ {
			if !dist.KillOneWorkerForTest() {
				t.Fatal("no live worker to kill")
			}
		}
		res := passResult{
			z: z, ztans: ztans,
			dAngles: make([]float64, n*nq),
			dTheta:  make([]float64, circ.NumParams),
			dTans:   make([][]float64, qsim.MaxTangents),
		}
		for k := range tans {
			if tans[k] != nil {
				res.dTans[k] = make([]float64, n*nq)
			}
		}
		pqc.Backward(ws, gz, gztans, res.dAngles, res.dTans, res.dTheta)
		return res
	}

	dist.Configure(dist.Options{Workers: 2})
	comparePass(t, "clean affinity pass", want, splitPass(0))
	// One state-holder dies: its shards re-dispatch to the survivor, which
	// recomputes them statelessly next to its own cached shards.
	comparePass(t, "one state-holder killed", want, splitPass(1))
	// Every state-holder dies: the pool respawns mid-step and the whole
	// backward runs stateless on workers that never saw the forward.
	comparePass(t, "all state-holders killed", want, splitPass(2))
	if live := dist.LiveWorkersForTest(); live != 2 {
		t.Fatalf("expected the pool healed to 2 live workers, have %d", live)
	}
}

// trainEpochs runs a smoke-scale QPINN training for the given number of
// epochs on the selected engine and returns the final loss.
func trainEpochs(t *testing.T, engine qsim.EngineKind, epochs int) float64 {
	t.Helper()
	prob := maxwell.NewProblem(maxwell.VacuumCase)
	mcfg := core.SmokeModel(core.QPINN, qsim.StronglyEntangling, qsim.ScaleAcos)
	mcfg.Engine = engine
	model := core.NewModel(mcfg)
	coll := maxwell.NewCollocation(prob, 6, 5)
	cfg := maxwell.PaperConfig(true, true)
	adam := opt.NewAdam(1e-3, model.Reg.Buffers(), model.Reg.Grads)
	tape := ad.NewTape()
	var loss float64
	for e := 0; e < epochs; e++ {
		tape.Reset()
		model.Reg.Bind(tape, true)
		terms := maxwell.Build(tape, model.Forward, prob, coll, cfg)
		tape.Backward(terms.Total)
		model.Reg.PullGrads()
		adam.Step()
		loss = terms.Total.Scalar()
	}
	return loss
}

// TestDistTrainingEpochSurvivesWorkerDeath is the acceptance scenario: a
// full training epoch on EngineDist with a worker dying mid-pass must
// complete and produce the bit-identical loss trajectory of an undisturbed
// dist run (worker death only re-routes shards, never changes results), and
// stay consistent with the in-process sharded engine.
func TestDistTrainingEpochSurvivesWorkerDeath(t *testing.T) {
	defer dist.Shutdown()

	shardedLoss := trainEpochs(t, qsim.EngineSharded, 2)

	dist.Configure(dist.Options{Workers: 2})
	cleanLoss := trainEpochs(t, qsim.EngineDist, 2)

	dist.Configure(dist.Options{Workers: 2})
	dist.SetTestSpawnEnv(dist.FailAfterEnv + "=3")
	killedLoss := trainEpochs(t, qsim.EngineDist, 2)

	if math.IsNaN(killedLoss) || math.IsInf(killedLoss, 0) {
		t.Fatalf("training with a killed worker produced loss %v", killedLoss)
	}
	if math.Float64bits(cleanLoss) != math.Float64bits(killedLoss) {
		t.Errorf("worker death changed the training trajectory: clean %v vs killed %v", cleanLoss, killedLoss)
	}
	// Across engines the shard partials are identical; the only difference
	// is where per-sample gradients re-enter pre-populated tape buffers, so
	// the trajectories agree to reassociation-level precision.
	if d := math.Abs(cleanLoss - shardedLoss); d > 1e-9*math.Max(1, math.Abs(shardedLoss)) {
		t.Errorf("dist training diverged from sharded: %v vs %v (|Δ|=%v)", cleanLoss, shardedLoss, d)
	}
}
