package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/qsim"
	"repro/internal/trace"
)

// The wire format is length-prefixed binary frames, little-endian throughout:
//
//	u32 length | u8 type | payload (length−1 bytes)
//
// Float64 payloads are raw IEEE-754 bit patterns, so shard inputs and
// results cross the process boundary bit-exactly — the transport can never
// perturb the bit-identity guarantee.
//
// A session opens with a versioned handshake (fHello/fHelloAck) that carries
// the ansatz circuit and the compiled-program digest once; each pass then
// broadcasts the coefficient vector (fPass) and streams shard assignments
// (fShardBatch, or single-shard fShard) against it. Every frame type is
// self-describing — optional arrays carry presence bytes — so the codec
// round-trips without session state.
//
// The steady-state data path is allocation-free on both sides: frames read
// into reusable payload buffers (readFrameInto), encoders append into
// caller-owned backing arrays (the *Into variants), and decoded float arrays
// come from a bump arena (f64Arena) whose reset is tied to the lifetime the
// caller already guarantees for the decoded message.

// ProtoVersion is the frame-protocol version. A worker that receives a
// handshake with any other version refuses the session.
// Version 2: passMsg gained FwdPass/Retain (forward-state affinity) and the
// batch frames fShardBatch/fResultBatch joined the protocol.
// Version 3: trace context — passMsg gained Trace/Span, shard batches carry
// a batch-span id, and result batches return the worker's span records.
const ProtoVersion uint16 = 3

// maxFrame bounds a frame's wire size; anything larger is a corrupt stream.
const maxFrame = 1 << 30

// Frame types.
const (
	fHello       byte = 1 // coordinator → worker: version, circuit, program digest
	fHelloAck    byte = 2 // worker → coordinator: version + digest echo
	fPass        byte = 3 // coordinator → worker: per-pass broadcast (theta, channels)
	fShard       byte = 4 // coordinator → worker: one shard's input rows
	fResult      byte = 5 // worker → coordinator: one shard's outputs
	fError       byte = 6 // worker → coordinator: fatal session error text
	fShardBatch  byte = 7 // coordinator → worker: several shards' input rows
	fResultBatch byte = 8 // worker → coordinator: the matching outputs, in order
)

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var buf []byte
	return readFrameInto(r, &buf)
}

// readFrameInto reads one frame reusing *buf as the storage for both the
// length header and the payload, growing it only when a frame exceeds its
// capacity. (A stack header scratch would escape through the io.Reader
// interface and cost one heap allocation per frame.) The returned payload
// aliases *buf and is valid until the next call with the same buffer — the
// per-session read path holds exactly one frame at a time, so one buffer per
// session makes the steady-state read allocation-free.
//
//torq:hotpath
func readFrameInto(r io.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	if cap(*buf) < 8 {
		//torq:allow hotalloc -- first-use buffer creation, amortized across the session
		*buf = make([]byte, 1<<12)
	}
	hdr := (*buf)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n < 1 || n > maxFrame {
		//torq:allow hotalloc -- malformed-frame error path; the connection is torn down
		return 0, nil, fmt.Errorf("dist: bad frame length %d", n)
	}
	if uint32(cap(*buf)) < n {
		//torq:allow hotalloc -- buffer growth to the session's max frame size, amortized
		*buf = make([]byte, n)
	}
	b := (*buf)[:cap(*buf)]
	*buf = b
	b = b[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return 0, nil, err
	}
	return b[0], b[1:], nil
}

// enc builds a payload.
type enc struct{ b []byte }

//torq:hotpath
func (e *enc) u8(v byte) { e.b = append(e.b, v) }

//torq:hotpath
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

//torq:hotpath
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }

//torq:hotpath
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

//torq:hotpath
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

//torq:hotpath
func (e *enc) int(v int) { e.u64(uint64(int64(v))) }

//torq:hotpath
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

//torq:hotpath
func (e *enc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, f := range v {
		e.u64(math.Float64bits(f))
	}
}

// optF64s encodes a nil-able array: presence byte, then the array when set.
//
//torq:hotpath
func (e *enc) optF64s(v []float64) {
	if v == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.f64s(v)
}

// emptyF64 is the canonical zero-length decoded array: non-nil (presence
// survives the round trip) without costing the arena or the GC anything.
var emptyF64 = []float64{}

// f64Arena is a bump allocator for decoded float arrays. One decode's arrays
// all share the arena's current chunk, so a steady-state session performs
// zero per-array allocations; the chunk doubles when a decode outgrows it,
// converging on the session's working-set size. reset recycles the whole
// arena at once — callers reset only at points where every array handed out
// since the previous reset is provably dead (the worker resets per request
// frame, the coordinator per pass).
type f64Arena struct {
	buf []float64
	off int
}

//torq:hotpath
func (a *f64Arena) alloc(n int) []float64 {
	if n == 0 {
		return emptyF64
	}
	if a.off+n > len(a.buf) {
		sz := 2 * len(a.buf)
		if sz < n {
			sz = n
		}
		if sz < 1<<12 {
			sz = 1 << 12
		}
		//torq:allow hotalloc -- arena chunk doubling, amortized to zero per decode
		a.buf = make([]float64, sz)
		a.off = 0
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

//torq:hotpath
func (a *f64Arena) reset() { a.off = 0 }

// dec consumes a payload; the first malformed field latches err and turns
// every subsequent read into a zero value. With an arena attached, decoded
// float arrays borrow arena memory instead of allocating.
type dec struct {
	b     []byte
	off   int
	err   error
	arena *f64Arena
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("dist: "+format, args...)
	}
}

//torq:hotpath
func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated payload (want %d bytes at offset %d of %d)", n, d.off, len(d.b))
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

//torq:hotpath
func (d *dec) u8() byte {
	if s := d.take(1); s != nil {
		return s[0]
	}
	return 0
}

//torq:hotpath
func (d *dec) bool() bool { return d.u8() != 0 }

//torq:hotpath
func (d *dec) u16() uint16 {
	if s := d.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

//torq:hotpath
func (d *dec) u32() uint32 {
	if s := d.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

//torq:hotpath
func (d *dec) u64() uint64 {
	if s := d.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

//torq:hotpath
func (d *dec) int() int { return int(int64(d.u64())) }
func (d *dec) str() string {
	n := d.u32()
	return string(d.take(int(n)))
}

//torq:hotpath
func (d *dec) f64s() []float64 {
	n := int(d.u32())
	if n > maxFrame/8 {
		d.fail("array length %d exceeds frame bound", n)
		return nil
	}
	s := d.take(8 * n)
	if s == nil {
		return nil
	}
	var out []float64
	if d.arena != nil {
		out = d.arena.alloc(n)
	} else {
		//torq:allow hotalloc -- arena-less decode is the cold handshake path
		out = make([]float64, n)
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(s[8*i:]))
	}
	return out
}

//torq:hotpath
func (d *dec) optF64s() []float64 {
	if d.u8() == 0 {
		return nil
	}
	return d.f64s()
}

// done checks the payload was consumed exactly.
//
//torq:hotpath
func (d *dec) done() error {
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	return d.err
}

// helloMsg carries the session handshake: the ansatz circuit (from which the
// worker deterministically recompiles the level-3 program) and the
// coordinator's program digest, which the worker must reproduce exactly.
type helloMsg struct {
	Version     uint16
	Name        string
	NumQubits   int
	Layers      int
	Reupload    bool
	NumParams   int
	Gates       []qsim.Gate
	LayerStarts []int
	Digest      qsim.ProgramDigest
}

func encodeDigest(e *enc, g qsim.ProgramDigest) {
	e.int(g.Level)
	e.int(g.Instructions)
	e.int(g.Coeffs)
	e.int(g.DerivCoeffs)
	e.int(g.DiagAccums)
	e.u64(g.Hash)
}

func decodeDigest(d *dec) qsim.ProgramDigest {
	return qsim.ProgramDigest{
		Level:        d.int(),
		Instructions: d.int(),
		Coeffs:       d.int(),
		DerivCoeffs:  d.int(),
		DiagAccums:   d.int(),
		Hash:         d.u64(),
	}
}

func encodeHello(m helloMsg) []byte {
	var e enc
	e.u16(m.Version)
	e.str(m.Name)
	e.int(m.NumQubits)
	e.int(m.Layers)
	e.bool(m.Reupload)
	e.int(m.NumParams)
	e.u32(uint32(len(m.Gates)))
	for _, g := range m.Gates {
		e.u8(byte(g.Kind))
		e.int(g.Q)
		e.int(g.C)
		e.int(g.P)
	}
	e.u32(uint32(len(m.LayerStarts)))
	for _, s := range m.LayerStarts {
		e.int(s)
	}
	encodeDigest(&e, m.Digest)
	return e.b
}

func decodeHello(b []byte) (helloMsg, error) {
	d := dec{b: b}
	m := helloMsg{
		Version:   d.u16(),
		Name:      d.str(),
		NumQubits: d.int(),
		Layers:    d.int(),
		Reupload:  d.bool(),
		NumParams: d.int(),
	}
	ng := int(d.u32())
	if ng > maxFrame/8 {
		d.fail("gate count %d exceeds frame bound", ng)
	}
	for i := 0; i < ng && d.err == nil; i++ {
		m.Gates = append(m.Gates, qsim.Gate{
			Kind: qsim.GateKind(d.u8()), Q: d.int(), C: d.int(), P: d.int(),
		})
	}
	nl := int(d.u32())
	if nl > maxFrame/8 {
		d.fail("layer count %d exceeds frame bound", nl)
	}
	for i := 0; i < nl && d.err == nil; i++ {
		m.LayerStarts = append(m.LayerStarts, d.int())
	}
	m.Digest = decodeDigest(&d)
	return m, d.done()
}

type helloAckMsg struct {
	Version uint16
	Digest  qsim.ProgramDigest
}

func encodeHelloAck(m helloAckMsg) []byte {
	var e enc
	e.u16(m.Version)
	encodeDigest(&e, m.Digest)
	return e.b
}

func decodeHelloAck(b []byte) (helloAckMsg, error) {
	d := dec{b: b}
	m := helloAckMsg{Version: d.u16(), Digest: decodeDigest(&d)}
	return m, d.done()
}

// passMsg is the per-pass broadcast: the pass id every subsequent shard
// frame references, the pass direction, the active tangent channels, and the
// ansatz coefficient vector theta. The affinity fields steer the worker's
// forward-state cache: Retain asks a forward pass to snapshot its shard
// states, and FwdPass names the forward pass a backward pass pairs with
// (zero when unpaired — the worker then drops any cached states).
// The trace-context fields piggyback on the broadcast: Trace is the
// coordinator's trace context id (nonzero exactly when the pass is traced —
// the worker gates its per-shard span recording on it, so a traced
// coordinator traces its whole fleet regardless of worker environments), and
// Span is the coordinator's pass-root span id, the parent under which the
// worker's spans are stitched when no batch span applies. Both are zero on
// untraced passes.
type passMsg struct {
	Pass     uint64
	FwdPass  uint64
	Trace    uint64
	Span     uint64
	Backward bool
	Retain   bool
	Active   [qsim.MaxTangents]bool
	Theta    []float64
}

func encodePass(m passMsg) []byte {
	var e enc
	e.u64(m.Pass)
	e.u64(m.FwdPass)
	e.u64(m.Trace)
	e.u64(m.Span)
	e.bool(m.Backward)
	e.bool(m.Retain)
	var mask byte
	for k := 0; k < qsim.MaxTangents; k++ {
		if m.Active[k] {
			mask |= 1 << k
		}
	}
	e.u8(mask)
	e.f64s(m.Theta)
	return e.b
}

func decodePass(b []byte) (passMsg, error) {
	d := dec{b: b}
	m := passMsg{Pass: d.u64(), FwdPass: d.u64(), Trace: d.u64(), Span: d.u64(), Backward: d.bool(), Retain: d.bool()}
	mask := d.u8()
	for k := 0; k < qsim.MaxTangents; k++ {
		m.Active[k] = mask&(1<<k) != 0
	}
	m.Theta = d.f64s()
	return m, d.done()
}

// shardMsg assigns one shard: the pass it belongs to, its index, and the
// shard's input rows (the worker is offset-agnostic — a shard computes the
// same rows wherever it sat in the batch, which is what makes re-dispatch
// free). Optional arrays follow the pass direction: tangent rows for active
// channels, upstream gradients on backward passes.
type shardMsg struct {
	Pass      uint64
	Shard     uint32
	Angles    []float64
	AngleTans [qsim.MaxTangents][]float64
	GZ        []float64
	GZTans    [qsim.MaxTangents][]float64
}

func encodeShard(m shardMsg) []byte {
	var e enc
	e.u64(m.Pass)
	e.u32(m.Shard)
	e.f64s(m.Angles)
	for k := 0; k < qsim.MaxTangents; k++ {
		e.optF64s(m.AngleTans[k])
	}
	e.optF64s(m.GZ)
	for k := 0; k < qsim.MaxTangents; k++ {
		e.optF64s(m.GZTans[k])
	}
	return e.b
}

func decodeShard(b []byte) (shardMsg, error) {
	d := dec{b: b}
	m := shardMsg{Pass: d.u64(), Shard: d.u32(), Angles: d.f64s()}
	for k := 0; k < qsim.MaxTangents; k++ {
		m.AngleTans[k] = d.optF64s()
	}
	m.GZ = d.optF64s()
	for k := 0; k < qsim.MaxTangents; k++ {
		m.GZTans[k] = d.optF64s()
	}
	return m, d.done()
}

// resultMsg returns one shard's outputs (see qsim.ShardResult).
type resultMsg struct {
	Pass       uint64
	Shard      uint32
	Backward   bool
	Z          []float64
	ZTans      [qsim.MaxTangents][]float64
	DAngles    []float64
	DAngleTans [qsim.MaxTangents][]float64
	DTheta     []float64
	DiagT      []float64
}

func encodeResult(m resultMsg) []byte {
	var e enc
	e.u64(m.Pass)
	e.u32(m.Shard)
	e.bool(m.Backward)
	e.optF64s(m.Z)
	for k := 0; k < qsim.MaxTangents; k++ {
		e.optF64s(m.ZTans[k])
	}
	e.optF64s(m.DAngles)
	for k := 0; k < qsim.MaxTangents; k++ {
		e.optF64s(m.DAngleTans[k])
	}
	e.optF64s(m.DTheta)
	e.optF64s(m.DiagT)
	return e.b
}

func decodeResult(b []byte) (resultMsg, error) {
	d := dec{b: b}
	m := resultMsg{Pass: d.u64(), Shard: d.u32(), Backward: d.bool(), Z: d.optF64s()}
	for k := 0; k < qsim.MaxTangents; k++ {
		m.ZTans[k] = d.optF64s()
	}
	m.DAngles = d.optF64s()
	for k := 0; k < qsim.MaxTangents; k++ {
		m.DAngleTans[k] = d.optF64s()
	}
	m.DTheta = d.optF64s()
	m.DiagT = d.optF64s()
	return m, d.done()
}

// Batch frames carry several shard assignments (and their results) per
// round trip. Entries repeat the shardMsg/resultMsg layout minus the
// per-message header — the batch header states the pass (and, for results,
// the direction) once; decode stamps it back into every entry so batch
// entries flow through the exact same per-shard code as single frames. The
// *Into codecs append into caller-owned backing and borrow arena memory, so
// the steady-state batch path allocates nothing.
//
// Unlike the payload-only codecs above, the batch encoders emit a complete
// frame — header included — built in the same caller-owned buffer, so a
// sender issues exactly one Write with no header scratch (a stack header
// would escape through the io.Writer interface and cost one heap allocation
// per frame, which is what retired writeFrame from this path).

// beginFrame reserves the 5-byte frame header at the start of the encode
// buffer; finishFrame fills in the length prefix and frame type once the
// payload length is known.
//
//torq:hotpath
func (e *enc) beginFrame() { e.b = append(e.b, 0, 0, 0, 0, 0) }

//torq:hotpath
func finishFrame(b []byte, typ byte) []byte {
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	b[4] = typ
	return b
}

// frameBody strips the frame header from an encodeShardBatchFrame /
// encodeResultBatchFrame result, yielding the payload a decoder consumes.
//
//torq:hotpath
func frameBody(frame []byte) []byte { return frame[5:] }

// span is the coordinator's batch-span id (0 untraced): the parent the
// worker's per-shard spans hang under, so a batch's shard spans stitch into
// the coordinator's tree at the round trip that carried them.
//
//torq:hotpath
func encodeShardBatchFrame(buf []byte, pass, span uint64, shards []shardMsg) []byte {
	e := enc{b: buf[:0]}
	e.beginFrame()
	e.u64(pass)
	e.u64(span)
	e.u32(uint32(len(shards)))
	for i := range shards {
		m := &shards[i]
		e.u32(m.Shard)
		e.f64s(m.Angles)
		for k := 0; k < qsim.MaxTangents; k++ {
			e.optF64s(m.AngleTans[k])
		}
		e.optF64s(m.GZ)
		for k := 0; k < qsim.MaxTangents; k++ {
			e.optF64s(m.GZTans[k])
		}
	}
	return finishFrame(e.b, fShardBatch)
}

//torq:hotpath
func decodeShardBatchInto(b []byte, a *f64Arena, dst []shardMsg) ([]shardMsg, uint64, error) {
	d := dec{b: b, arena: a}
	pass := d.u64()
	span := d.u64()
	n := int(d.u32())
	if n > maxFrame/16 {
		d.fail("batch size %d exceeds frame bound", n)
	}
	dst = dst[:0]
	for i := 0; i < n && d.err == nil; i++ {
		m := shardMsg{Pass: pass, Shard: d.u32(), Angles: d.f64s()}
		for k := 0; k < qsim.MaxTangents; k++ {
			m.AngleTans[k] = d.optF64s()
		}
		m.GZ = d.optF64s()
		for k := 0; k < qsim.MaxTangents; k++ {
			m.GZTans[k] = d.optF64s()
		}
		dst = append(dst, m)
	}
	return dst, span, d.done()
}

// encodeSpan/decodeSpan carry one completed worker span back to the
// coordinator inside a result batch's span section. Worker is deliberately
// not on the wire: workers do not know their coordinator-side ids, so the
// coordinator stamps it at ingest.
func encodeSpan(e *enc, r *trace.SpanRec) {
	e.u64(r.ID)
	e.u64(r.Parent)
	e.u8(byte(r.Kind))
	e.u32(uint32(r.Shard))
	e.int(int(r.Start))
	e.int(int(r.End))
}

func decodeSpan(d *dec, r *trace.SpanRec) {
	r.ID = d.u64()
	r.Parent = d.u64()
	r.Kind = trace.Kind(d.u8())
	r.Shard = int32(d.u32())
	r.Start = int64(d.int())
	r.End = int64(d.int())
}

// appendSpanSection closes a result batch with the worker's span records
// for the batch — always present, empty (count 0) on untraced passes, so
// the frame layout is direction- and trace-independent.
//
//torq:hotpath
func appendSpanSection(e *enc, spans []trace.SpanRec) {
	e.u32(uint32(len(spans)))
	for i := range spans {
		encodeSpan(e, &spans[i])
	}
}

// beginResultBatchFrame / appendResultEntry / finishFrame stream a result
// batch entry by entry. The worker MUST serialize each result before
// computing the next shard: ShardRunner results alias its reusable
// workspace buffers, so holding resultMsg values across shard executions
// would leave every entry pointing at the last shard's numbers.
//
//torq:hotpath
func beginResultBatchFrame(buf []byte, pass uint64, backward bool, count int) enc {
	e := enc{b: buf[:0]}
	e.beginFrame()
	e.u64(pass)
	e.bool(backward)
	e.u32(uint32(count))
	return e
}

//torq:hotpath
func appendResultEntry(e *enc, m *resultMsg) {
	e.u32(m.Shard)
	e.optF64s(m.Z)
	for k := 0; k < qsim.MaxTangents; k++ {
		e.optF64s(m.ZTans[k])
	}
	e.optF64s(m.DAngles)
	for k := 0; k < qsim.MaxTangents; k++ {
		e.optF64s(m.DAngleTans[k])
	}
	e.optF64s(m.DTheta)
	e.optF64s(m.DiagT)
}

//torq:hotpath
func encodeResultBatchFrame(buf []byte, pass uint64, backward bool, results []resultMsg, spans []trace.SpanRec) []byte {
	e := beginResultBatchFrame(buf, pass, backward, len(results))
	for i := range results {
		appendResultEntry(&e, &results[i])
	}
	appendSpanSection(&e, spans)
	return finishFrame(e.b, fResultBatch)
}

//torq:hotpath
func decodeResultBatchInto(b []byte, a *f64Arena, dst []resultMsg, sdst []trace.SpanRec) ([]resultMsg, []trace.SpanRec, error) {
	d := dec{b: b, arena: a}
	pass := d.u64()
	backward := d.bool()
	n := int(d.u32())
	if n > maxFrame/16 {
		d.fail("batch size %d exceeds frame bound", n)
	}
	dst = dst[:0]
	for i := 0; i < n && d.err == nil; i++ {
		m := resultMsg{Pass: pass, Backward: backward, Shard: d.u32(), Z: d.optF64s()}
		for k := 0; k < qsim.MaxTangents; k++ {
			m.ZTans[k] = d.optF64s()
		}
		m.DAngles = d.optF64s()
		for k := 0; k < qsim.MaxTangents; k++ {
			m.DAngleTans[k] = d.optF64s()
		}
		m.DTheta = d.optF64s()
		m.DiagT = d.optF64s()
		dst = append(dst, m)
	}
	ns := int(d.u32())
	if ns > maxFrame/32 {
		d.fail("span count %d exceeds frame bound", ns)
	}
	sdst = sdst[:0]
	for i := 0; i < ns && d.err == nil; i++ {
		var r trace.SpanRec
		decodeSpan(&d, &r)
		sdst = append(sdst, r)
	}
	return dst, sdst, d.done()
}

type errorMsg struct{ Msg string }

func encodeError(m errorMsg) []byte {
	var e enc
	e.str(m.Msg)
	return e.b
}

func decodeError(b []byte) (errorMsg, error) {
	d := dec{b: b}
	m := errorMsg{Msg: d.str()}
	return m, d.done()
}
