// Package dist is the multi-process shard executor behind qsim's EngineDist:
// a coordinator that partitions each circuit pass into the same fixed
// cache-block sample shards as the in-process sharded engine, ships them to
// worker processes over a length-prefixed, versioned binary frame protocol,
// and merges (z rows, gradient partials) in shard order — so results are
// bit-identical to EngineSharded for any worker count.
//
// A session opens with one handshake carrying the ansatz circuit and the
// compiled program's digest (workers recompile deterministically and must
// agree); each pass then broadcasts the coefficient vector once and streams
// shard assignments. Shards are stateless — a backward shard recomputes its
// forward states — which is what lets the coordinator re-dispatch a dead
// worker's outstanding shards to the survivors and finish the pass.
//
// Workers come in two transports: local subprocesses speaking frames over
// stdio (spawned from TORQ_DIST_WORKER_BIN, or by re-executing the current
// binary — this package's init intercepts TORQ_DIST_WORKER=stdio before
// main runs), and remote `torq-worker -listen` instances dialed over TCP
// (TORQ_DIST_ADDRS or Options.Addrs).
//
// Importing the package registers the coordinator as qsim's dist backend;
// nothing starts until the first EngineDist pass runs.
//
// # Invariants
//
// Shard results are a pure function of (program, theta, shard inputs):
// which worker computes a shard, in what order, after how many deaths and
// re-dispatches, never changes the merged result — the coordinator merges
// per-shard partials in ascending shard order, bit-identical to the
// in-process sharded engine. The wire protocol is versioned (ProtoVersion,
// specified normatively in docs/PROTOCOL.md) and handshake-checked, and
// forward-state affinity is a fast path only: workers validate cached
// forward states bit-for-bit against the backward shard's inputs and fall
// back to the stateless recompute on any mismatch.
package dist

import (
	"fmt"
	"os"

	"repro/internal/qsim"
)

// workerModeEnv turns any binary that links this package into a worker: when
// set to "stdio" the process serves the worker protocol on stdin/stdout from
// init and never reaches main. This is how the coordinator self-execs a
// worker pool out of binaries (including test binaries) that have no worker
// entry point of their own.
const workerModeEnv = "TORQ_DIST_WORKER"

func init() {
	if os.Getenv(workerModeEnv) == "stdio" {
		if err := ServeStdio(); err != nil {
			fmt.Fprintf(os.Stderr, "torq-worker (self-exec): %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	qsim.RegisterDistBackend(backend{})
}
