package dist

// Test hooks shared with the external dist_test package.

// SetTestSpawnEnv arms the NEXT spawned subprocess worker with extra
// environment variables (consumed by the first spawn). The recovery tests
// use it with FailAfterEnv to make exactly one worker die deterministically
// mid-pass.
func SetTestSpawnEnv(env ...string) {
	coord.mu.Lock()
	defer coord.mu.Unlock()
	coord.spawnEnv = env
}

// FailAfterEnv is the worker-side chaos hook environment variable.
const FailAfterEnv = failAfterEnv

// RequireCachedEnv makes workers refuse stateless backward recomputes; a
// pass that succeeds under it proves every backward shard was served from
// the forward-state affinity cache.
const RequireCachedEnv = requireCachedEnv

// StallEnv makes a worker sleep the given number of milliseconds per shard —
// a deterministic straggler for the telemetry tests.
const StallEnv = stallEnv

// KillOneWorkerForTest kills the first live worker's process/connection,
// simulating an external crash between (or during) passes. It reports
// whether a live worker was found.
func KillOneWorkerForTest() bool {
	coord.mu.Lock()
	defer coord.mu.Unlock()
	for _, w := range coord.workers {
		if !w.dead.Load() {
			w.kill()
			return true
		}
	}
	return false
}

// LiveWorkersForTest counts workers that have not been declared dead.
func LiveWorkersForTest() int {
	coord.mu.Lock()
	defer coord.mu.Unlock()
	n := 0
	for _, w := range coord.workers {
		if !w.dead.Load() {
			n++
		}
	}
	return n
}
