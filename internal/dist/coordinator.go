package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qsim"
)

// Options configures the coordinator's worker set. Every zero-valued field
// falls back to its environment default — TORQ_DIST_WORKERS subprocess
// workers (2 when unset and no remote addresses are given),
// TORQ_DIST_WORKER_BIN as the worker binary (self-exec when unset),
// TORQ_DIST_ADDRS remote workers, TORQ_DIST_SHARD_TIMEOUT per-shard timeout
// — so e.g. `torq-bench -dist-workers 4` composes with a TORQ_DIST_ADDRS /
// TORQ_DIST_WORKER_BIN environment instead of silently discarding it.
type Options struct {
	// Workers is the number of local subprocess workers to spawn.
	Workers int
	// WorkerBin is the worker executable (normally a torq-worker build).
	// Empty re-executes the current binary with TORQ_DIST_WORKER=stdio set,
	// which this package's init intercepts — any binary that links the dist
	// subsystem can therefore act as its own worker pool.
	WorkerBin string
	// Addrs lists remote `torq-worker -listen` endpoints to dial, used in
	// addition to the subprocess workers.
	Addrs []string
	// ShardTimeout bounds one shard's round trip; a worker that blows it is
	// declared dead and its shard re-dispatched. Zero means 60s.
	ShardTimeout time.Duration
}

func (o Options) timeout() time.Duration {
	if o.ShardTimeout > 0 {
		return o.ShardTimeout
	}
	return 60 * time.Second
}

func envOptions() Options {
	var o Options
	if v, err := strconv.Atoi(os.Getenv("TORQ_DIST_WORKERS")); err == nil && v >= 0 {
		o.Workers = v
	}
	o.WorkerBin = os.Getenv("TORQ_DIST_WORKER_BIN")
	if v := os.Getenv("TORQ_DIST_ADDRS"); v != "" {
		for _, a := range strings.Split(v, ",") {
			if a = strings.TrimSpace(a); a != "" {
				o.Addrs = append(o.Addrs, a)
			}
		}
	}
	if v, err := time.ParseDuration(os.Getenv("TORQ_DIST_SHARD_TIMEOUT")); err == nil && v > 0 {
		o.ShardTimeout = v
	}
	return o
}

// worker is one coordinator-side worker handle: a framed transport plus the
// process or connection behind it. A worker is owned by exactly one
// goroutine during a pass; only the dead flag and the kill path are shared.
type worker struct {
	id   int
	addr string // non-empty for remote (TCP) workers
	r    *bufio.Reader
	w    *bufio.Writer
	raw  io.Closer
	cmd  *exec.Cmd

	circ     *qsim.Circuit // circuit of the last successful handshake
	dead     atomic.Bool
	killOnce sync.Once
}

// kill tears the transport down (idempotent, safe from timeout callbacks):
// closing the stdin pipe/conn unblocks any in-flight write, and for
// subprocess workers the async Wait both reaps the child and closes the
// parent side of the stdout pipe (unblocking any in-flight read) — without
// it every dead worker would leak one pipe fd until a GC finalizer ran.
func (w *worker) kill() {
	w.dead.Store(true)
	w.killOnce.Do(func() {
		if w.raw != nil {
			w.raw.Close()
		}
		if w.cmd != nil {
			w.cmd.Process.Kill()
			go w.cmd.Wait() // reap + release pipes without blocking callers
		}
	})
}

func (w *worker) send(typ byte, payload []byte) error {
	if err := writeFrame(w.w, typ, payload); err != nil {
		return err
	}
	return w.w.Flush()
}

// guard arms the worker-death timeout around a blocking frame exchange and
// returns its stop function. Pipes and TCP conns carry no write deadlines
// here, so BOTH directions must run under the timer: a wedged worker (or a
// black-holed network peer) can block the coordinator in send — a full TCP
// window or pipe buffer — just as it can block the reply read; killing the
// transport is what unblocks either side.
func (c *coordinator) guard(w *worker) func() bool {
	return time.AfterFunc(c.options().timeout(), w.kill).Stop
}

// coordinator owns the worker pool behind the EngineDist backend. One pass
// runs at a time (mu); worker goroutines within a pass touch only their own
// worker plus the shared shard queue and result slots.
type coordinator struct {
	mu      sync.Mutex
	opts    Options
	optsSet bool
	started bool
	workers []*worker
	nextID  int
	passID  uint64

	// spawnEnv is appended to the next spawned subprocess's environment and
	// then cleared — the hook the kill-a-worker recovery tests use to arm
	// exactly one worker with a deterministic mid-pass death.
	spawnEnv []string
}

var coord coordinator

// Configure replaces the coordinator's options (zero-valued fields keep
// their environment defaults), shutting down any running workers so the
// next pass starts a fresh pool.
func Configure(o Options) {
	base := envOptions()
	if o.Workers != 0 {
		base.Workers = o.Workers
	}
	if o.WorkerBin != "" {
		base.WorkerBin = o.WorkerBin
	}
	if len(o.Addrs) > 0 {
		base.Addrs = o.Addrs
	}
	if o.ShardTimeout > 0 {
		base.ShardTimeout = o.ShardTimeout
	}
	coord.mu.Lock()
	defer coord.mu.Unlock()
	coord.shutdownLocked()
	coord.opts, coord.optsSet = base, true
}

// Shutdown kills every worker process and drops every connection. The next
// pass respawns the pool; safe to call at any quiesced point.
func Shutdown() {
	coord.mu.Lock()
	defer coord.mu.Unlock()
	coord.shutdownLocked()
}

func (c *coordinator) shutdownLocked() {
	for _, w := range c.workers {
		w.kill()
	}
	c.workers, c.started = nil, false
}

func (c *coordinator) options() Options {
	if !c.optsSet {
		c.opts, c.optsSet = envOptions(), true
	}
	return c.opts
}

// spawnProc starts one subprocess worker on a stdio transport.
func (c *coordinator) spawnProc() (*worker, error) {
	o := c.options()
	bin := o.WorkerBin
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: cannot self-exec a worker: %w", err)
		}
		bin = exe
	}
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(), workerModeEnv+"=stdio")
	cmd.Env = append(cmd.Env, c.spawnEnv...)
	c.spawnEnv = nil
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawning worker %q: %w", bin, err)
	}
	c.nextID++
	return &worker{
		id:  c.nextID,
		r:   bufio.NewReaderSize(stdout, 1<<16),
		w:   bufio.NewWriterSize(stdin, 1<<16),
		raw: stdin,
		cmd: cmd,
	}, nil
}

// dialWorker connects one remote worker.
func (c *coordinator) dialWorker(addr string) (*worker, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing worker %s: %w", addr, err)
	}
	c.nextID++
	return &worker{
		id:   c.nextID,
		addr: addr,
		r:    bufio.NewReaderSize(conn, 1<<16),
		w:    bufio.NewWriterSize(conn, 1<<16),
		raw:  conn,
	}, nil
}

// ensureWorkersLocked brings the pool to its configured shape, respawning or
// redialing workers that died in earlier passes.
func (c *coordinator) ensureWorkersLocked() error {
	o := c.options()
	if !c.started {
		for _, addr := range o.Addrs {
			w, err := c.dialWorker(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dist: %v (continuing without it)\n", err)
				continue
			}
			c.workers = append(c.workers, w)
		}
		n := o.Workers
		if n == 0 && len(o.Addrs) == 0 {
			n = 2
		}
		for i := 0; i < n; i++ {
			w, err := c.spawnProc()
			if err != nil {
				// Tear the partial pool down rather than dropping live
				// handles: the next attempt re-enters this branch, and
				// orphaned subprocesses would linger on their stdin pipes.
				c.shutdownLocked()
				return err
			}
			c.workers = append(c.workers, w)
		}
		c.started = true
	} else {
		for i, w := range c.workers {
			if !w.dead.Load() {
				continue
			}
			var nw *worker
			var err error
			if w.addr != "" {
				nw, err = c.dialWorker(w.addr)
			} else {
				nw, err = c.spawnProc()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "dist: replacing dead worker %d: %v\n", w.id, err)
				continue
			}
			c.workers[i] = nw
		}
	}
	for _, w := range c.workers {
		if !w.dead.Load() {
			return nil
		}
	}
	return errors.New("dist: no live workers")
}

// handshake pins one worker to the pass's circuit and compiled program.
func (c *coordinator) handshake(w *worker, spec *qsim.PassSpec) error {
	circ := spec.Circ
	hm := helloMsg{
		Version:     ProtoVersion,
		Name:        circ.Name,
		NumQubits:   circ.NumQubits,
		Layers:      circ.Layers,
		Reupload:    circ.Reupload,
		NumParams:   circ.NumParams,
		Gates:       circ.Gates,
		LayerStarts: circ.LayerStarts(),
		Digest:      spec.Prog.Digest(),
	}
	defer c.guard(w)()
	if err := w.send(fHello, encodeHello(hm)); err != nil {
		return err
	}
	typ, body, err := w.recv()
	if err != nil {
		return err
	}
	switch typ {
	case fHelloAck:
		ack, err := decodeHelloAck(body)
		if err != nil {
			return err
		}
		if ack.Version != ProtoVersion {
			return fmt.Errorf("dist: worker protocol version %d, coordinator speaks %d", ack.Version, ProtoVersion)
		}
		if ack.Digest != hm.Digest {
			return fmt.Errorf("dist: worker compiled a different program: %+v vs %+v", ack.Digest, hm.Digest)
		}
		w.circ = circ
		return nil
	case fError:
		em, _ := decodeError(body)
		return fmt.Errorf("dist: worker refused handshake: %s", em.Msg)
	}
	return fmt.Errorf("dist: unexpected handshake reply type %d", typ)
}

func (w *worker) recv() (byte, []byte, error) {
	return readFrame(w.r)
}

// backend implements qsim.DistBackend on the package coordinator.
type backend struct{}

// RunPass partitions the pass into shards, fans them out over the live
// workers, and collects one result per shard. Shard assignment is dynamic —
// each worker goroutine pulls the next unclaimed shard — and a worker that
// dies (transport error, timeout, mismatched reply) has its in-flight shard
// pushed back for the survivors. The pass fails only when every worker is
// gone with shards outstanding.
func (backend) RunPass(spec *qsim.PassSpec) ([]qsim.ShardResult, error) {
	c := &coord
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureWorkersLocked(); err != nil {
		return nil, err
	}
	c.passID++
	pass := c.passID

	// Handshake lazily: only workers whose session is pinned to a different
	// circuit (or fresh workers) pay it, once per circuit change.
	var live []*worker
	var hsErr error
	for _, w := range c.workers {
		if w.dead.Load() {
			continue
		}
		if w.circ != spec.Circ {
			if err := c.handshake(w, spec); err != nil {
				// Surface every refusal: a version/digest-skewed remote node
				// would otherwise be silently re-dialed and re-refused on
				// each pass while the pool runs at reduced capacity.
				fmt.Fprintf(os.Stderr, "dist: worker %d handshake failed: %v (removed from pool this pass)\n", w.id, err)
				hsErr = err
				w.kill()
				continue
			}
		}
		live = append(live, w)
	}
	if len(live) == 0 {
		if hsErr != nil {
			return nil, hsErr
		}
		return nil, errors.New("dist: no live workers")
	}

	ns := spec.NumShards()
	results := make([]qsim.ShardResult, ns)
	if ns == 0 {
		// An empty batch has nothing to dispatch; without this return the
		// worker loops would block forever on a done channel that only a
		// shard completion closes.
		return results, nil
	}
	todo := make(chan int, ns)
	for s := 0; s < ns; s++ {
		todo <- s
	}
	pending := int32(ns)
	done := make(chan struct{})
	pm := encodePass(passMsg{Pass: pass, Backward: spec.Backward, Active: spec.Active, Theta: spec.Theta})

	var wg sync.WaitGroup
	for _, w := range live {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.workerLoop(w, spec, pass, pm, todo, results, &pending, done)
		}(w)
	}
	wg.Wait()
	if atomic.LoadInt32(&pending) != 0 {
		return nil, fmt.Errorf("dist: pass %d lost all workers with %d shards outstanding", pass, atomic.LoadInt32(&pending))
	}
	return results, nil
}

func (c *coordinator) workerLoop(w *worker, spec *qsim.PassSpec, pass uint64, pm []byte, todo chan int, results []qsim.ShardResult, pending *int32, done chan struct{}) {
	stop := c.guard(w)
	err := w.send(fPass, pm)
	stop()
	if err != nil {
		w.kill()
		return
	}
	for {
		select {
		case <-done:
			return
		case s := <-todo:
			if err := c.runShard(w, spec, pass, s, results); err != nil {
				fmt.Fprintf(os.Stderr, "dist: worker %d lost on shard %d of pass %d (%v); re-dispatching\n", w.id, s, pass, err)
				w.kill()
				todo <- s // capacity ns: the slot this shard vacated is free
				return
			}
			if atomic.AddInt32(pending, -1) == 0 {
				close(done)
				return
			}
		}
	}
}

// runShard ships shard s to w and records its result.
func (c *coordinator) runShard(w *worker, spec *qsim.PassSpec, pass uint64, s int, results []qsim.ShardResult) error {
	lo, hi := spec.Shard(s)
	nq := spec.NQ
	sm := shardMsg{Pass: pass, Shard: uint32(s), Angles: spec.Angles[lo*nq : hi*nq]}
	for k := 0; k < qsim.MaxTangents; k++ {
		if spec.AngleTans[k] != nil {
			sm.AngleTans[k] = spec.AngleTans[k][lo*nq : hi*nq]
		}
	}
	if spec.Backward {
		if spec.GZ != nil {
			sm.GZ = spec.GZ[lo*nq : hi*nq]
		}
		for k := 0; k < qsim.MaxTangents; k++ {
			if spec.GZTans[k] != nil {
				sm.GZTans[k] = spec.GZTans[k][lo*nq : hi*nq]
			}
		}
	}
	// One timeout covers the whole round trip — see guard for why the send
	// side needs it as much as the reply read.
	defer c.guard(w)()
	if err := w.send(fShard, encodeShard(sm)); err != nil {
		return err
	}
	typ, body, err := w.recv()
	if err != nil {
		return err
	}
	switch typ {
	case fError:
		em, _ := decodeError(body)
		return fmt.Errorf("worker error: %s", em.Msg)
	case fResult:
	default:
		return fmt.Errorf("unexpected reply type %d", typ)
	}
	rm, err := decodeResult(body)
	if err != nil {
		return err
	}
	if rm.Pass != pass || int(rm.Shard) != s || rm.Backward != spec.Backward {
		return fmt.Errorf("result for pass %d shard %d (backward=%v), want pass %d shard %d (backward=%v)",
			rm.Pass, rm.Shard, rm.Backward, pass, s, spec.Backward)
	}
	return validateResult(spec, s, rm, &results[s])
}

// validateResult checks the result arrays have the pass's expected shapes
// before accepting them — a worker that disagrees about sizes is broken, and
// catching it here turns silent corruption into a re-dispatch.
func validateResult(spec *qsim.PassSpec, s int, rm resultMsg, out *qsim.ShardResult) error {
	lo, hi := spec.Shard(s)
	rows := (hi - lo) * spec.NQ
	checkRows := func(name string, got []float64, want int) error {
		if len(got) != want {
			return fmt.Errorf("shard %d: %s has %d values, want %d", s, name, len(got), want)
		}
		return nil
	}
	if !spec.Backward {
		if err := checkRows("z", rm.Z, rows); err != nil {
			return err
		}
		for k := 0; k < qsim.MaxTangents; k++ {
			want := 0
			if spec.Active[k] {
				want = rows
			}
			if err := checkRows("ztan", rm.ZTans[k], want); err != nil {
				return err
			}
		}
		out.Z = rm.Z
		out.ZTans = rm.ZTans
		return nil
	}
	if err := checkRows("dAngles", rm.DAngles, rows); err != nil {
		return err
	}
	for k := 0; k < qsim.MaxTangents; k++ {
		want := 0
		if spec.Active[k] {
			want = rows
		}
		if err := checkRows("dAngleTan", rm.DAngleTans[k], want); err != nil {
			return err
		}
	}
	if err := checkRows("dTheta", rm.DTheta, spec.Circ.NumParams); err != nil {
		return err
	}
	if err := checkRows("diagT", rm.DiagT, spec.Prog.NumDiagAccums()*(1<<spec.NQ)); err != nil {
		return err
	}
	out.DAngles = rm.DAngles
	out.DAngleTans = rm.DAngleTans
	out.DTheta = rm.DTheta
	out.DiagT = rm.DiagT
	return nil
}
