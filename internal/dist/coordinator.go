package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qsim"
	"repro/internal/trace"
)

// Options configures the coordinator's worker set. Every zero-valued field
// falls back to its environment default — TORQ_DIST_WORKERS subprocess
// workers (2 when unset and no remote addresses are given),
// TORQ_DIST_WORKER_BIN as the worker binary (self-exec when unset),
// TORQ_DIST_ADDRS remote workers, TORQ_DIST_SHARD_TIMEOUT per-shard timeout,
// TORQ_DIST_BATCH_SHARDS / TORQ_DIST_PIPELINE / TORQ_DIST_AFFINITY for the
// transport's batching, pipelining, and forward-state affinity knobs
// — so e.g. `torq-bench -dist-workers 4` composes with a TORQ_DIST_ADDRS /
// TORQ_DIST_WORKER_BIN environment instead of silently discarding it.
type Options struct {
	// Workers is the number of local subprocess workers to spawn.
	Workers int
	// WorkerBin is the worker executable (normally a torq-worker build).
	// Empty re-executes the current binary with TORQ_DIST_WORKER=stdio set,
	// which this package's init intercepts — any binary that links the dist
	// subsystem can therefore act as its own worker pool.
	WorkerBin string
	// Addrs lists remote `torq-worker -listen` endpoints to dial, used in
	// addition to the subprocess workers.
	Addrs []string
	// ShardTimeout bounds one shard's round trip; an exchange covering a
	// batch of shards gets the per-shard timeout times the batch size. A
	// worker that blows its (scaled) timeout is declared dead and its
	// outstanding shards re-dispatched. Zero means 60s per shard.
	ShardTimeout time.Duration
	// BatchShards caps how many shards ride one assignment frame. The
	// scheduler only reaches the cap while plenty of work remains — batches
	// shrink toward single shards near a pass's tail, so late rebalancing
	// and dead-worker re-dispatch keep single-shard granularity. Zero means
	// 16; 1 disables batching.
	BatchShards int
	// Pipeline is how many batches beyond the one in service stay queued to
	// each worker, hiding frame-transport latency under shard compute. Zero
	// means 2; 1 approximates the unpipelined round-trip protocol.
	Pipeline int
	// Affinity controls forward-state affinity: workers retain each forward
	// shard's end states and the coordinator routes the matching backward
	// shard back to the worker that holds them, skipping the backward
	// pass's forward recompute. Zero or positive enables (the default);
	// negative disables. Recovery semantics do not depend on this knob —
	// workers validate cached states against the backward shard's exact
	// inputs and silently fall back to the stateless recompute, which is
	// bit-identical by construction.
	Affinity int
}

func (o Options) timeout() time.Duration {
	if o.ShardTimeout > 0 {
		return o.ShardTimeout
	}
	return 60 * time.Second
}

func (o Options) batchShards() int {
	if o.BatchShards > 0 {
		return o.BatchShards
	}
	return 16
}

func (o Options) pipelineDepth() int {
	if o.Pipeline > 0 {
		return o.Pipeline
	}
	return 2
}

func (o Options) affinity() bool { return o.Affinity >= 0 }

func envOptions() Options {
	var o Options
	if v, err := strconv.Atoi(os.Getenv("TORQ_DIST_WORKERS")); err == nil && v >= 0 {
		o.Workers = v
	}
	o.WorkerBin = os.Getenv("TORQ_DIST_WORKER_BIN")
	if v := os.Getenv("TORQ_DIST_ADDRS"); v != "" {
		for _, a := range strings.Split(v, ",") {
			if a = strings.TrimSpace(a); a != "" {
				o.Addrs = append(o.Addrs, a)
			}
		}
	}
	if v, err := time.ParseDuration(os.Getenv("TORQ_DIST_SHARD_TIMEOUT")); err == nil && v > 0 {
		o.ShardTimeout = v
	}
	if v, err := strconv.Atoi(os.Getenv("TORQ_DIST_BATCH_SHARDS")); err == nil && v > 0 {
		o.BatchShards = v
	}
	if v, err := strconv.Atoi(os.Getenv("TORQ_DIST_PIPELINE")); err == nil && v > 0 {
		o.Pipeline = v
	}
	switch strings.ToLower(os.Getenv("TORQ_DIST_AFFINITY")) {
	case "":
	case "0", "off", "false", "no":
		o.Affinity = -1
	default:
		o.Affinity = 1
	}
	return o
}

// worker is one coordinator-side worker handle: a framed transport plus the
// process or connection behind it. During a pass a worker is driven by one
// sender and one receiver goroutine: the sender owns the write half (w,
// ebuf, smBuf), the receiver the read half (r, rbuf, arena, rmBuf); only
// the dead flag, the in-flight counter, and the kill path are shared.
type worker struct {
	id   int
	addr string // non-empty for remote (TCP) workers
	r    *bufio.Reader
	w    *bufio.Writer
	raw  io.Closer
	cmd  *exec.Cmd

	circ     *qsim.Circuit // circuit of the last successful handshake
	dead     atomic.Bool
	killOnce sync.Once

	// inflight counts shards sent but not yet answered — the receive
	// timeout scales with it, since the reply to the oldest batch can
	// legitimately wait behind every queued shard's compute.
	inflight atomic.Int32

	// Steady-state transport scratch: frames encode into and read into
	// per-worker buffers, and decoded result arrays borrow the per-worker
	// arena, which resets at pass start — so a pass's results stay valid
	// until the next RunPass (the engine merges them before returning) and
	// the hot path performs no per-frame allocation.
	ebuf  []byte
	rbuf  []byte
	arena f64Arena
	smBuf []shardMsg
	rmBuf []resultMsg
	spBuf []trace.SpanRec
}

// kill tears the transport down (idempotent, safe from timeout callbacks):
// closing the stdin pipe/conn unblocks any in-flight write, and for
// subprocess workers the async Wait both reaps the child and closes the
// parent side of the stdout pipe (unblocking any in-flight read) — without
// it every dead worker would leak one pipe fd until a GC finalizer ran.
func (w *worker) kill() {
	w.dead.Store(true)
	w.killOnce.Do(func() {
		xstats.workerKills.Add(1)
		markWorkerDead(w.id)
		if w.raw != nil {
			w.raw.Close()
		}
		if w.cmd != nil {
			w.cmd.Process.Kill()
			go w.cmd.Wait() // reap + release pipes without blocking callers
		}
	})
}

func (w *worker) send(typ byte, payload []byte) error {
	if err := writeFrame(w.w, typ, payload); err != nil {
		return err
	}
	return w.w.Flush()
}

// guard arms the worker-death timeout around a blocking frame exchange and
// returns its stop function. Pipes and TCP conns carry no write deadlines
// here, so BOTH directions must run under the timer: a wedged worker (or a
// black-holed network peer) can block the coordinator in send — a full TCP
// window or pipe buffer — just as it can block the reply read; killing the
// transport is what unblocks either side.
func (c *coordinator) guard(w *worker) func() bool {
	return c.guardN(w, 1)
}

// guardN is guard with the timeout scaled to an exchange covering `shards`
// shards: the configured ShardTimeout stays a per-shard liveness bound no
// matter how coarse the batching or how deep the pipeline.
func (c *coordinator) guardN(w *worker, shards int) func() bool {
	t := c.options().timeout()
	if shards > 1 {
		t *= time.Duration(shards)
	}
	return time.AfterFunc(t, w.kill).Stop
}

// coordinator owns the worker pool behind the EngineDist backend. One pass
// runs at a time (mu); worker goroutines within a pass touch only their own
// worker plus the shared shard queue and result slots.
type coordinator struct {
	mu      sync.Mutex
	opts    Options
	optsSet bool
	started bool
	workers []*worker
	nextID  int
	passID  uint64

	// lastFwd describes the most recent retained forward pass; the next
	// backward pass pairs with it when shapes match, routing each backward
	// shard to the worker holding that shard's cached forward states.
	lastFwd *fwdPassInfo

	// spawnEnv is appended to the next spawned subprocess's environment and
	// then cleared — the hook the kill-a-worker recovery tests use to arm
	// exactly one worker with a deterministic mid-pass death.
	spawnEnv []string
}

// fwdPassInfo records which worker ran each shard of a retained forward
// pass, plus the shape fields a backward pass must match to pair with it —
// the pairing is a routing hint only; workers re-validate cached states
// against the backward shard's exact inputs before replaying them.
type fwdPassInfo struct {
	pass   uint64
	circ   *qsim.Circuit
	n      int
	block  int
	active [qsim.MaxTangents]bool
	owner  []int32 // shard index → worker id (-1: not completed/unknown)
}

var coord coordinator

// Configure replaces the coordinator's options (zero-valued fields keep
// their environment defaults), shutting down any running workers so the
// next pass starts a fresh pool.
func Configure(o Options) {
	base := envOptions()
	if o.Workers != 0 {
		base.Workers = o.Workers
	}
	if o.WorkerBin != "" {
		base.WorkerBin = o.WorkerBin
	}
	if len(o.Addrs) > 0 {
		base.Addrs = o.Addrs
	}
	if o.ShardTimeout > 0 {
		base.ShardTimeout = o.ShardTimeout
	}
	if o.BatchShards != 0 {
		base.BatchShards = o.BatchShards
	}
	if o.Pipeline != 0 {
		base.Pipeline = o.Pipeline
	}
	if o.Affinity != 0 {
		base.Affinity = o.Affinity
	}
	coord.mu.Lock()
	defer coord.mu.Unlock()
	coord.shutdownLocked()
	coord.opts, coord.optsSet = base, true
}

// Shutdown kills every worker process and drops every connection. The next
// pass respawns the pool; safe to call at any quiesced point.
func Shutdown() {
	coord.mu.Lock()
	defer coord.mu.Unlock()
	coord.shutdownLocked()
}

func (c *coordinator) shutdownLocked() {
	for _, w := range c.workers {
		w.kill()
	}
	c.workers, c.started, c.lastFwd = nil, false, nil
}

func (c *coordinator) options() Options {
	if !c.optsSet {
		c.opts, c.optsSet = envOptions(), true
	}
	return c.opts
}

// spawnProc starts one subprocess worker on a stdio transport.
func (c *coordinator) spawnProc() (*worker, error) {
	o := c.options()
	bin := o.WorkerBin
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: cannot self-exec a worker: %w", err)
		}
		bin = exe
	}
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(), workerModeEnv+"=stdio")
	cmd.Env = append(cmd.Env, c.spawnEnv...)
	c.spawnEnv = nil
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawning worker %q: %w", bin, err)
	}
	c.nextID++
	registerWorkerStats(c.nextID)
	return &worker{
		id:  c.nextID,
		r:   bufio.NewReaderSize(stdout, 1<<16),
		w:   bufio.NewWriterSize(stdin, 1<<16),
		raw: stdin,
		cmd: cmd,
	}, nil
}

// dialWorker connects one remote worker.
func (c *coordinator) dialWorker(addr string) (*worker, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing worker %s: %w", addr, err)
	}
	c.nextID++
	registerWorkerStats(c.nextID)
	return &worker{
		id:   c.nextID,
		addr: addr,
		r:    bufio.NewReaderSize(conn, 1<<16),
		w:    bufio.NewWriterSize(conn, 1<<16),
		raw:  conn,
	}, nil
}

// ensureWorkersLocked brings the pool to its configured shape, respawning or
// redialing workers that died in earlier passes.
func (c *coordinator) ensureWorkersLocked() error {
	o := c.options()
	if !c.started {
		for _, addr := range o.Addrs {
			w, err := c.dialWorker(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dist: %v (continuing without it)\n", err)
				continue
			}
			c.workers = append(c.workers, w)
		}
		n := o.Workers
		if n == 0 && len(o.Addrs) == 0 {
			n = 2
		}
		for i := 0; i < n; i++ {
			w, err := c.spawnProc()
			if err != nil {
				// Tear the partial pool down rather than dropping live
				// handles: the next attempt re-enters this branch, and
				// orphaned subprocesses would linger on their stdin pipes.
				c.shutdownLocked()
				return err
			}
			c.workers = append(c.workers, w)
		}
		c.started = true
	} else {
		for i, w := range c.workers {
			if !w.dead.Load() {
				continue
			}
			var nw *worker
			var err error
			if w.addr != "" {
				nw, err = c.dialWorker(w.addr)
			} else {
				nw, err = c.spawnProc()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "dist: replacing dead worker %d: %v\n", w.id, err)
				continue
			}
			c.workers[i] = nw
		}
	}
	for _, w := range c.workers {
		if !w.dead.Load() {
			return nil
		}
	}
	return errors.New("dist: no live workers")
}

// handshake pins one worker to the pass's circuit and compiled program.
func (c *coordinator) handshake(w *worker, spec *qsim.PassSpec) error {
	circ := spec.Circ
	hm := helloMsg{
		Version:     ProtoVersion,
		Name:        circ.Name,
		NumQubits:   circ.NumQubits,
		Layers:      circ.Layers,
		Reupload:    circ.Reupload,
		NumParams:   circ.NumParams,
		Gates:       circ.Gates,
		LayerStarts: circ.LayerStarts(),
		Digest:      spec.Prog.Digest(),
	}
	xstats.handshakes.Add(1)
	defer c.guard(w)()
	if err := w.send(fHello, encodeHello(hm)); err != nil {
		return err
	}
	typ, body, err := w.recv()
	if err != nil {
		return err
	}
	switch typ {
	case fHelloAck:
		ack, err := decodeHelloAck(body)
		if err != nil {
			return err
		}
		if ack.Version != ProtoVersion {
			return fmt.Errorf("dist: worker protocol version %d, coordinator speaks %d", ack.Version, ProtoVersion)
		}
		if ack.Digest != hm.Digest {
			return fmt.Errorf("dist: worker compiled a different program: %+v vs %+v", ack.Digest, hm.Digest)
		}
		w.circ = circ
		return nil
	case fError:
		em, _ := decodeError(body)
		return fmt.Errorf("dist: worker refused handshake: %s", em.Msg)
	}
	return fmt.Errorf("dist: unexpected handshake reply type %d", typ)
}

func (w *worker) recv() (byte, []byte, error) {
	return readFrame(w.r)
}

// backend implements qsim.DistBackend on the package coordinator.
type backend struct{}

// passSched hands out shard batches to worker senders. Assignment is
// dynamic: a grab takes a batch sized to the work remaining — coarse
// batches while the pool is deep, single shards near the tail, so late
// rebalancing and dead-worker re-dispatch keep single-shard granularity —
// preferring shards whose forward states the worker holds, then unowned
// shards, then stealing hinted shards from slower workers. Shards come back
// via giveBack when a worker dies with them in flight; the pass is complete
// when every shard's result has been accepted.
type passSched struct {
	mu         sync.Mutex
	cond       sync.Cond
	prefer     map[int][]int // worker id → shards whose forward states it holds
	global     []int         // unowned shards, popped from the end
	unassigned int
	remaining  int
	batchCap   int
	workers    int
	paired     bool // pass carries affinity routing (owner map was supplied)
}

// newPassSched routes shard i to prefer[owner[i]] when that worker is in
// the pass's live set, and to the global pool otherwise (owner may be nil —
// no affinity pairing). Lists are built in descending shard order so the
// pop-from-the-end grab path dispatches ascending.
func newPassSched(ns, batchCap int, live []*worker, owner []int32) *passSched {
	s := &passSched{
		prefer:     make(map[int][]int, len(live)),
		unassigned: ns,
		remaining:  ns,
		batchCap:   batchCap,
		workers:    len(live),
		paired:     owner != nil,
	}
	s.cond.L = &s.mu
	alive := make(map[int]bool, len(live))
	for _, w := range live {
		alive[w.id] = true
	}
	for i := ns - 1; i >= 0; i-- {
		if owner != nil && owner[i] >= 0 && alive[int(owner[i])] {
			id := int(owner[i])
			s.prefer[id] = append(s.prefer[id], i)
		} else {
			s.global = append(s.global, i)
		}
	}
	return s
}

// grab blocks until work is available (a dying worker may give shards back)
// and returns the next batch for w, or nil when the pass has completed or w
// itself has died.
func (s *passSched) grab(w *worker) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.remaining == 0 || w.dead.Load() {
			return nil
		}
		if s.unassigned > 0 {
			break
		}
		s.cond.Wait()
	}
	chunk := s.unassigned / (2 * s.workers)
	if chunk > s.batchCap {
		chunk = s.batchCap
	}
	if chunk < 1 {
		chunk = 1
	}
	out := make([]int, 0, chunk)
	own := s.prefer[w.id]
	for len(out) < chunk && len(own) > 0 {
		out = append(out, own[len(own)-1])
		own = own[:len(own)-1]
	}
	s.prefer[w.id] = own
	routed := len(out)
	for len(out) < chunk && len(s.global) > 0 {
		out = append(out, s.global[len(s.global)-1])
		s.global = s.global[:len(s.global)-1]
	}
	for len(out) < chunk {
		// Steal from the worker hoarding the most preferred shards, from
		// the far end of its list — losing the affinity hint only costs the
		// victim's cached forward state a recompute on another worker.
		// Lowest id wins ties so the victim choice is map-order-independent.
		vid, max := 0, 0
		//torq:allow maprange -- max-by-length with lowest-id tie-break; order-insensitive
		for id, l := range s.prefer {
			if len(l) > max || (len(l) == max && max > 0 && id < vid) {
				vid, max = id, len(l)
			}
		}
		if max == 0 {
			break
		}
		victim := s.prefer[vid]
		out = append(out, victim[0])
		s.prefer[vid] = victim[1:]
	}
	s.unassigned -= len(out)
	// Affinity accounting (paired backward passes only): a shard grabbed
	// from the worker's own prefer list rides its cached forward states; a
	// shard grabbed from the global pool or stolen from another owner will
	// recompute on a cold worker.
	if s.paired {
		xstats.affRouted.Add(int64(routed))
		xstats.affMissed.Add(int64(len(out) - routed))
	}
	return out
}

// giveBack returns a dead worker's in-flight shards to the global pool (its
// cached forward states died with it) and wakes idle senders.
func (s *passSched) giveBack(shards []int) {
	if len(shards) == 0 {
		return
	}
	xstats.redispatched.Add(int64(len(shards)))
	s.mu.Lock()
	s.global = append(s.global, shards...)
	s.unassigned += len(shards)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// complete retires accepted shards; the final one wakes every blocked grab.
func (s *passSched) complete(n int) {
	s.mu.Lock()
	s.remaining -= n
	rem := s.remaining
	s.mu.Unlock()
	if rem == 0 {
		s.cond.Broadcast()
	}
}

func (s *passSched) outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remaining
}

// wake unblocks grabs so a sender notices its worker died.
func (s *passSched) wake() { s.cond.Broadcast() }

// RunPass partitions the pass into shards and fans them out over the live
// workers in pipelined batches. A worker that dies (transport error,
// timeout, mismatched reply) has its in-flight shards pushed back for the
// survivors, which recompute them statelessly. The pass fails only when
// every worker is gone with shards outstanding.
func (backend) RunPass(spec *qsim.PassSpec) ([]qsim.ShardResult, error) {
	c := &coord
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureWorkersLocked(); err != nil {
		return nil, err
	}
	o := c.options()
	c.passID++
	pass := c.passID
	xstats.passes.Add(1)
	if spec.Backward {
		xstats.bwdPasses.Add(1)
	} else {
		xstats.fwdPasses.Add(1)
	}

	// Handshake lazily: only workers whose session is pinned to a different
	// circuit (or fresh workers) pay it, once per circuit change.
	var live []*worker
	var hsErr error
	for _, w := range c.workers {
		if w.dead.Load() {
			continue
		}
		if w.circ != spec.Circ {
			if err := c.handshake(w, spec); err != nil {
				// Surface every refusal: a version/digest-skewed remote node
				// would otherwise be silently re-dialed and re-refused on
				// each pass while the pool runs at reduced capacity.
				fmt.Fprintf(os.Stderr, "dist: worker %d handshake failed: %v (removed from pool this pass)\n", w.id, err)
				hsErr = err
				w.kill()
				continue
			}
		}
		live = append(live, w)
	}
	if len(live) == 0 {
		if hsErr != nil {
			return nil, hsErr
		}
		return nil, errors.New("dist: no live workers")
	}

	ns := spec.NumShards()
	results := make([]qsim.ShardResult, ns)
	if ns == 0 {
		// An empty batch has nothing to dispatch; without this return the
		// worker loops would block forever waiting for a completion that
		// only a shard result delivers.
		c.lastFwd = nil
		return results, nil
	}

	// Pair a backward pass with the retained forward whose shape it
	// matches; its owner map seeds the scheduler's affinity routing. The
	// pairing is consumed either way — the workers' caches roll over at the
	// next forward pass.
	var fwdPass uint64
	var owner []int32
	if spec.Backward {
		if lf := c.lastFwd; o.affinity() && lf != nil && lf.circ == spec.Circ &&
			lf.n == spec.N && lf.block == spec.Block && lf.active == spec.Active &&
			len(lf.owner) == ns {
			fwdPass, owner = lf.pass, lf.owner
		}
		c.lastFwd = nil
	}
	retain := o.affinity() && !spec.Backward
	var fwd *fwdPassInfo
	if retain {
		fwd = &fwdPassInfo{
			pass: pass, circ: spec.Circ, n: spec.N, block: spec.Block,
			active: spec.Active, owner: make([]int32, ns),
		}
		for i := range fwd.owner {
			fwd.owner[i] = -1
		}
		c.lastFwd = fwd
	}

	// With fewer shards than workers, the surplus workers get neither
	// shards nor the theta broadcast. On a paired backward pass the workers
	// holding the most forward states participate first, keeping the
	// affinity routing intact through the trim.
	if ns < len(live) {
		if owner != nil {
			counts := make(map[int]int, len(live))
			for _, id := range owner {
				if id >= 0 {
					counts[int(id)]++
				}
			}
			sort.SliceStable(live, func(i, j int) bool {
				return counts[live[i].id] > counts[live[j].id]
			})
		}
		live = live[:ns]
	}

	// The previous pass's decoded results die here: per-worker arenas recycle
	// at pass start, which is why ShardResult arrays are documented as valid
	// only until the next RunPass.
	for _, w := range live {
		w.arena.reset()
		w.inflight.Store(0)
	}

	sched := newPassSched(ns, o.batchShards(), live, owner)
	// Trace context rides the broadcast: the engine's pass-root span (opened
	// by qsim around this RunPass) parents the transport spans here, and its
	// id crosses the wire so worker-side shard spans stitch under the same
	// tree. Both are zero when tracing is off.
	traceCtx := trace.ContextID()
	var passSpan uint64
	if traceCtx != 0 {
		passSpan = trace.CurrentPass()
	}
	pm := encodePass(passMsg{
		Pass: pass, FwdPass: fwdPass, Trace: traceCtx, Span: passSpan,
		Backward: spec.Backward, Retain: retain,
		Active: spec.Active, Theta: spec.Theta,
	})

	var wg sync.WaitGroup
	for _, w := range live {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.workerRun(w, o, spec, pass, passSpan, pm, sched, results, fwd)
		}(w)
	}
	wg.Wait()
	if n := sched.outstanding(); n != 0 {
		c.lastFwd = nil
		return nil, fmt.Errorf("dist: pass %d lost all workers with %d shards outstanding", pass, n)
	}
	return results, nil
}

// workerRun drives one worker through a pass with a sender/receiver pair:
// the sender grabs shard batches and writes assignment frames, the receiver
// collects the replies in FIFO order. Splitting the directions is what
// makes pipelining deadlock-free — with both batch and reply frames larger
// than a pipe buffer, a single goroutine writing batch k+1 while the worker
// blocks writing reply k would wedge; here the receiver keeps draining. The
// flights channel carries each in-flight batch from sender to receiver and
// its capacity bounds the pipeline depth.
func (c *coordinator) workerRun(w *worker, o Options, spec *qsim.PassSpec, pass, passSpan uint64, pm []byte, sched *passSched, results []qsim.ShardResult, fwd *fwdPassInfo) {
	bcast := trace.Begin(trace.KBroadcast, passSpan)
	bcast.Worker = int32(w.id)
	stop := c.guard(w)
	err := w.send(fPass, pm)
	stop()
	bcast.End()
	if err != nil {
		w.kill()
		sched.wake()
		return
	}
	// A flight is one in-service batch; the send timestamp turns the
	// receiver's FIFO drain into a per-batch round-trip latency measurement
	// (queue wait included — a straggler backs its own pipeline up, which is
	// exactly the signal the dump's outlier check keys on). The batch span
	// covers the same interval, ended by the receiver when the reply lands.
	type flight struct {
		shards []int
		sent   time.Time
		span   trace.Span
	}
	flights := make(chan flight, o.pipelineDepth())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		failed := false
		for f := range flights {
			shards := f.shards
			if failed {
				xstats.queueDepth.Add(int64(-len(shards)))
				sched.giveBack(shards)
				continue
			}
			if err := c.recvBatch(w, spec, pass, shards, results); err != nil {
				fmt.Fprintf(os.Stderr, "dist: worker %d lost on pass %d (%v); re-dispatching %d shards\n", w.id, pass, err, len(shards))
				w.kill()
				failed = true
				xstats.queueDepth.Add(int64(-len(shards)))
				sched.giveBack(shards)
				sched.wake()
				continue
			}
			observeBatch(w.id, len(shards), time.Since(f.sent).Nanoseconds())
			f.span.End()
			if fwd != nil {
				// Each shard completes exactly once per pass, so these
				// writes never contend across receivers.
				for _, s := range shards {
					fwd.owner[s] = int32(w.id)
				}
			}
			w.inflight.Add(int32(-len(shards)))
			xstats.queueDepth.Add(int64(-len(shards)))
			sched.complete(len(shards))
		}
	}()
	for {
		shards := sched.grab(w)
		if shards == nil {
			break
		}
		w.inflight.Add(int32(len(shards)))
		xstats.queueDepth.Add(int64(len(shards)))
		bsp := trace.Begin(trace.KBatch, passSpan)
		bsp.Worker = int32(w.id)
		if err := c.sendBatch(w, spec, pass, bsp.ID, shards); err != nil {
			w.kill()
			xstats.queueDepth.Add(int64(-len(shards)))
			sched.giveBack(shards)
			sched.wake()
			break
		}
		flights <- flight{shards: shards, sent: time.Now(), span: bsp}
	}
	close(flights)
	wg.Wait()
}

// sendBatch encodes the shards' input rows into the worker's frame buffer
// and ships them as one fShardBatch frame. Row arrays alias the pass spec —
// nothing is copied until the encoder serializes it.
func (c *coordinator) sendBatch(w *worker, spec *qsim.PassSpec, pass, span uint64, shards []int) error {
	nq := spec.NQ
	sms := w.smBuf[:0]
	for _, s := range shards {
		lo, hi := spec.Shard(s)
		sm := shardMsg{Pass: pass, Shard: uint32(s), Angles: spec.Angles[lo*nq : hi*nq]}
		for k := 0; k < qsim.MaxTangents; k++ {
			if spec.AngleTans[k] != nil {
				sm.AngleTans[k] = spec.AngleTans[k][lo*nq : hi*nq]
			}
		}
		if spec.Backward {
			if spec.GZ != nil {
				sm.GZ = spec.GZ[lo*nq : hi*nq]
			}
			for k := 0; k < qsim.MaxTangents; k++ {
				if spec.GZTans[k] != nil {
					sm.GZTans[k] = spec.GZTans[k][lo*nq : hi*nq]
				}
			}
		}
		sms = append(sms, sm)
	}
	w.smBuf = sms
	w.ebuf = encodeShardBatchFrame(w.ebuf, pass, span, sms)
	// The timeout covers the send too — a full pipe buffer against a wedged
	// worker blocks the write exactly like a withheld reply blocks the read.
	xstats.bytesOut.Add(int64(len(w.ebuf)))
	defer c.guardN(w, len(shards))()
	if _, err := w.w.Write(w.ebuf); err != nil {
		return err
	}
	return w.w.Flush()
}

// recvBatch reads one fResultBatch frame and validates and records each
// entry against the batch it answers: same pass, same direction, shards in
// assignment order, every array shaped exactly as the pass demands.
func (c *coordinator) recvBatch(w *worker, spec *qsim.PassSpec, pass uint64, shards []int, results []qsim.ShardResult) error {
	defer c.guardN(w, int(w.inflight.Load()))()
	typ, body, err := readFrameInto(w.r, &w.rbuf)
	if err != nil {
		return err
	}
	xstats.bytesIn.Add(int64(len(body)) + 5) // body + u32 length + type byte
	switch typ {
	case fError:
		em, _ := decodeError(body)
		return fmt.Errorf("worker error: %s", em.Msg)
	case fResultBatch:
	default:
		return fmt.Errorf("unexpected reply type %d", typ)
	}
	w.rmBuf, w.spBuf, err = decodeResultBatchInto(body, &w.arena, w.rmBuf[:0], w.spBuf[:0])
	if err != nil {
		return err
	}
	if len(w.rmBuf) != len(shards) {
		return fmt.Errorf("result batch has %d entries, want %d", len(w.rmBuf), len(shards))
	}
	for i, s := range shards {
		rm := w.rmBuf[i]
		if rm.Pass != pass || int(rm.Shard) != s || rm.Backward != spec.Backward {
			return fmt.Errorf("result for pass %d shard %d (backward=%v), want pass %d shard %d (backward=%v)",
				rm.Pass, rm.Shard, rm.Backward, pass, s, spec.Backward)
		}
		if err := validateResult(spec, s, rm, &results[s]); err != nil {
			return err
		}
	}
	// Stitch the worker's spans into the local ring: the worker cannot know
	// its coordinator-side id, so it is stamped here. Empty on untraced
	// passes — the loop is free.
	for i := range w.spBuf {
		r := w.spBuf[i]
		r.Worker = int32(w.id)
		trace.Ingest(r)
	}
	return nil
}

// validateResult checks the result arrays have the pass's expected shapes
// before accepting them — a worker that disagrees about sizes is broken, and
// catching it here turns silent corruption into a re-dispatch.
func validateResult(spec *qsim.PassSpec, s int, rm resultMsg, out *qsim.ShardResult) error {
	lo, hi := spec.Shard(s)
	rows := (hi - lo) * spec.NQ
	checkRows := func(name string, got []float64, want int) error {
		if len(got) != want {
			return fmt.Errorf("shard %d: %s has %d values, want %d", s, name, len(got), want)
		}
		return nil
	}
	if !spec.Backward {
		if err := checkRows("z", rm.Z, rows); err != nil {
			return err
		}
		for k := 0; k < qsim.MaxTangents; k++ {
			want := 0
			if spec.Active[k] {
				want = rows
			}
			if err := checkRows("ztan", rm.ZTans[k], want); err != nil {
				return err
			}
		}
		out.Z = rm.Z
		out.ZTans = rm.ZTans
		return nil
	}
	if err := checkRows("dAngles", rm.DAngles, rows); err != nil {
		return err
	}
	for k := 0; k < qsim.MaxTangents; k++ {
		want := 0
		if spec.Active[k] {
			want = rows
		}
		if err := checkRows("dAngleTan", rm.DAngleTans[k], want); err != nil {
			return err
		}
	}
	if err := checkRows("dTheta", rm.DTheta, spec.Circ.NumParams); err != nil {
		return err
	}
	if err := checkRows("diagT", rm.DiagT, spec.Prog.NumDiagAccums()*(1<<spec.NQ)); err != nil {
		return err
	}
	out.DAngles = rm.DAngles
	out.DAngleTans = rm.DAngleTans
	out.DTheta = rm.DTheta
	out.DiagT = rm.DiagT
	return nil
}
