package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"time"

	"repro/internal/qsim"
	"repro/internal/trace"
)

// failAfterEnv is a test/chaos hook: when set to n > 0, the worker process
// exits (code 3) upon receiving its (n+1)-th shard assignment — counted per
// shard, not per frame, so a batched assignment dies mid-batch — before
// replying; a deterministic stand-in for a worker dying mid-pass, used by
// the coordinator's re-dispatch recovery tests.
const failAfterEnv = "TORQ_DIST_FAIL_AFTER_SHARDS"

// requireCachedEnv is a test hook: when set, a paired backward shard that
// misses the forward-state cache (or a backward pass that was never paired)
// is an error instead of a silent stateless recompute. Only meaningful in
// single-worker tests — with several workers, work stealing makes
// legitimate misses part of normal operation.
const requireCachedEnv = "TORQ_DIST_REQUIRE_CACHED"

// stallEnv is a test/chaos hook: when set to a positive integer, the worker
// sleeps that many milliseconds before executing each shard — a
// deterministic straggler for exercising the coordinator's latency telemetry
// and the ftdc dump's outlier flagging. The work still completes and stays
// bit-identical; only the timing changes.
const stallEnv = "TORQ_DIST_STALL_MS"

// session is one coordinator connection's worker-side state.
type session struct {
	r *bufio.Reader
	w *bufio.Writer

	runner   *qsim.ShardRunner
	pass     passMsg
	havePass bool

	served        int
	failAfter     int
	requireCached bool
	stall         time.Duration

	// Steady-state transport scratch: frames read into and encode into
	// session-owned buffers, and decoded batch arrays borrow the arena
	// (reset per assignment frame — safe because the runner copies every
	// input it keeps), so serving a batch allocates nothing.
	rbuf  []byte
	ebuf  []byte
	arena f64Arena
	smBuf []shardMsg
	spans []trace.SpanRec
}

// ServeConn speaks the worker side of the dist protocol over (r, w) until
// the coordinator closes the stream. Protocol errors that leave the framing
// intact are reported as fError frames and the session continues; a broken
// frame stream is unrecoverable and returns an error.
func ServeConn(r io.Reader, w io.Writer) error {
	s := &session{r: bufio.NewReaderSize(r, 1<<16), w: bufio.NewWriterSize(w, 1<<16)}
	if v := os.Getenv(failAfterEnv); v != "" {
		s.failAfter, _ = strconv.Atoi(v)
	}
	s.requireCached = os.Getenv(requireCachedEnv) != ""
	if v, err := strconv.Atoi(os.Getenv(stallEnv)); err == nil && v > 0 {
		s.stall = time.Duration(v) * time.Millisecond
	}
	for {
		typ, body, err := readFrameInto(s.r, &s.rbuf)
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := s.handle(typ, body); err != nil {
			if sendErr := s.send(fError, encodeError(errorMsg{Msg: err.Error()})); sendErr != nil {
				return sendErr
			}
		}
	}
}

func (s *session) send(typ byte, payload []byte) error {
	if err := writeFrame(s.w, typ, payload); err != nil {
		return err
	}
	return s.w.Flush()
}

func (s *session) handle(typ byte, body []byte) error {
	switch typ {
	case fHello:
		return s.hello(body)
	case fPass:
		pm, err := decodePass(body)
		if err != nil {
			return err
		}
		s.pass, s.havePass = pm, true
		if s.runner != nil {
			// Align the runner's forward-state cache with the pass: a
			// forward pass opens its own cache generation, a backward pass
			// replays its paired forward's (FwdPass zero = unpaired, which
			// rolls the generation and drops any stale states).
			if pm.Backward {
				s.runner.SetForwardPass(pm.FwdPass)
			} else {
				s.runner.SetForwardPass(pm.Pass)
			}
		}
		return nil
	case fShard:
		return s.shard(body)
	case fShardBatch:
		return s.shardBatch(body)
	case fError:
		// Coordinator-side failure notice; nothing to do on this side.
		return nil
	}
	return fmt.Errorf("unexpected frame type %d", typ)
}

// Sanity bounds on handshake payloads, enforced BEFORE compiling anything:
// compilation allocates 2^nq-sized tables, so an absurd circuit from a
// confused (or hostile — the TCP listener is unauthenticated) peer must be
// refused with an error frame rather than OOM-killing the worker.
const (
	maxWorkerQubits = 24
	maxWorkerGates  = 1 << 20
)

func (s *session) hello(body []byte) error {
	hm, err := decodeHello(body)
	if err != nil {
		return err
	}
	if hm.Version != ProtoVersion {
		return fmt.Errorf("protocol version mismatch: worker speaks %d, coordinator sent %d", ProtoVersion, hm.Version)
	}
	if hm.NumQubits < 1 || hm.NumQubits > maxWorkerQubits {
		return fmt.Errorf("refusing circuit with %d qubits (worker bound: %d)", hm.NumQubits, maxWorkerQubits)
	}
	if len(hm.Gates) > maxWorkerGates {
		return fmt.Errorf("refusing circuit with %d gates (worker bound: %d)", len(hm.Gates), maxWorkerGates)
	}
	for _, g := range hm.Gates {
		if g.Q < 0 || g.Q >= hm.NumQubits || g.C >= hm.NumQubits || g.P >= hm.NumParams {
			return fmt.Errorf("refusing gate %+v outside circuit bounds (nq=%d, params=%d)", g, hm.NumQubits, hm.NumParams)
		}
	}
	circ := qsim.NewCircuitFromSpec(hm.Name, hm.NumQubits, hm.Layers, hm.Gates, hm.NumParams, hm.Reupload, hm.LayerStarts)
	runner := qsim.NewShardRunner(circ)
	if got := runner.Digest(); got != hm.Digest {
		return fmt.Errorf("compiled program digest mismatch: worker %+v, coordinator %+v", got, hm.Digest)
	}
	s.runner, s.havePass = runner, false
	return s.send(fHelloAck, encodeHelloAck(helloAckMsg{Version: ProtoVersion, Digest: hm.Digest}))
}

func (s *session) shard(body []byte) error {
	sm, err := decodeShard(body)
	if err != nil {
		return err
	}
	var rm resultMsg
	if err := s.runShard(&sm, &rm); err != nil {
		return err
	}
	return s.send(fResult, encodeResult(rm))
}

// shardBatch serves one fShardBatch frame: decode into session scratch, run
// every shard through the same core as the single-shard path, answer with
// one fResultBatch. The whole exchange reuses session buffers and the arena
// (previous batch's decoded arrays are dead once its reply flushed), so the
// steady-state data path allocates nothing. An error on any shard fails the
// whole batch — the coordinator re-dispatches it as a unit.
func (s *session) shardBatch(body []byte) error {
	s.arena.reset()
	var err error
	var batchSpan uint64
	s.smBuf, batchSpan, err = decodeShardBatchInto(body, &s.arena, s.smBuf[:0])
	if err != nil {
		return err
	}
	if len(s.smBuf) == 0 {
		return errors.New("empty shard batch")
	}
	// Per-shard spans, gated on the coordinator's trace context rather than
	// this process's own TORQ_TRACE: a traced coordinator traces its whole
	// fleet. Each span parents under the batch span that carried the shard
	// (falling back to the pass-root span), records locally — a worker's own
	// -debug-addr /trace sees it — and rides the reply's span section back
	// for coordinator-side stitching.
	traced := s.pass.Trace != 0
	parent := batchSpan
	if parent == 0 {
		parent = s.pass.Span
	}
	s.spans = s.spans[:0]
	// Each entry serializes immediately after its shard runs — the runner's
	// result arrays alias workspace buffers the next shard will overwrite.
	e := beginResultBatchFrame(s.ebuf, s.pass.Pass, s.pass.Backward, len(s.smBuf))
	for i := range s.smBuf {
		var rm resultMsg
		var sp trace.Span
		if traced {
			sp = trace.BeginForced(trace.KShard, parent)
			sp.Shard = int32(s.smBuf[i].Shard)
		}
		err := s.runShard(&s.smBuf[i], &rm)
		if err != nil {
			s.ebuf = e.b
			return err
		}
		if traced {
			s.spans = append(s.spans, sp.Finish())
		}
		appendResultEntry(&e, &rm)
	}
	appendSpanSection(&e, s.spans)
	s.ebuf = finishFrame(e.b, fResultBatch)
	if _, err := s.w.Write(s.ebuf); err != nil {
		return err
	}
	return s.w.Flush()
}

// runShard validates and executes one shard assignment, filling rm.
func (s *session) runShard(sm *shardMsg, rm *resultMsg) error {
	if s.runner == nil || !s.havePass {
		return errors.New("shard before handshake/pass broadcast")
	}
	if sm.Pass != s.pass.Pass {
		return fmt.Errorf("shard for pass %d, current pass is %d", sm.Pass, s.pass.Pass)
	}
	if s.failAfter > 0 && s.served >= s.failAfter {
		os.Exit(3)
	}
	if s.stall > 0 {
		time.Sleep(s.stall)
	}
	s.served++

	nq := s.runner.Circuit().NumQubits
	if nq <= 0 || len(sm.Angles)%nq != 0 || len(sm.Angles) == 0 {
		return fmt.Errorf("shard angles length %d not a multiple of nq=%d", len(sm.Angles), nq)
	}
	n := len(sm.Angles) / nq
	// Every optional row array must match the shard's sample count (and the
	// active-channel mask), else the kernels would index out of range; a
	// mismatched coordinator gets an error frame, not a worker panic.
	checkRows := func(name string, k int, rows []float64, wantPresent bool) error {
		if !wantPresent {
			if rows != nil {
				return fmt.Errorf("shard %s[%d] present for inactive channel", name, k)
			}
			return nil
		}
		if rows != nil && len(rows) != n*nq {
			return fmt.Errorf("shard %s[%d] has %d values, want %d", name, k, len(rows), n*nq)
		}
		return nil
	}
	for k := 0; k < qsim.MaxTangents; k++ {
		if err := checkRows("angleTans", k, sm.AngleTans[k], s.pass.Active[k]); err != nil {
			return err
		}
		if s.pass.Active[k] && sm.AngleTans[k] == nil {
			return fmt.Errorf("shard angleTans[%d] missing for active channel", k)
		}
		if err := checkRows("gzTans", k, sm.GZTans[k], s.pass.Active[k] && s.pass.Backward); err != nil {
			return err
		}
	}
	if sm.GZ != nil && len(sm.GZ) != n*nq {
		return fmt.Errorf("shard gz has %d values, want %d", len(sm.GZ), n*nq)
	}
	rm.Pass, rm.Shard, rm.Backward = sm.Pass, sm.Shard, s.pass.Backward
	switch {
	case s.pass.Backward:
		if s.pass.FwdPass != 0 {
			if da, dat, dth, diagT, ok := s.runner.BackwardShardCached(sm.Shard, n, s.pass.Active, sm.Angles, sm.AngleTans, s.pass.Theta, sm.GZ, sm.GZTans); ok {
				rm.DAngles, rm.DAngleTans, rm.DTheta, rm.DiagT = da, dat, dth, diagT
				return nil
			}
		}
		if s.requireCached {
			return fmt.Errorf("backward shard %d missed the forward-state cache (fwdPass=%d)", sm.Shard, s.pass.FwdPass)
		}
		da, dat, dth, diagT := s.runner.BackwardShard(n, s.pass.Active, sm.Angles, sm.AngleTans, s.pass.Theta, sm.GZ, sm.GZTans)
		rm.DAngles, rm.DAngleTans, rm.DTheta, rm.DiagT = da, dat, dth, diagT
	case s.pass.Retain:
		rm.Z, rm.ZTans = s.runner.ForwardShardRetain(sm.Shard, n, s.pass.Active, sm.Angles, sm.AngleTans, s.pass.Theta)
	default:
		rm.Z, rm.ZTans = s.runner.ForwardShard(n, s.pass.Active, sm.Angles, sm.AngleTans, s.pass.Theta)
	}
	return nil
}

// ServeStdio runs the worker loop on stdin/stdout — the transport a
// coordinator-spawned subprocess worker uses.
func ServeStdio() error { return ServeConn(os.Stdin, os.Stdout) }

// Listen serves remote workers: it accepts TCP connections on addr and runs
// one independent worker session per connection (so several coordinators can
// share one torq-worker instance). It blocks until the listener fails.
func Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "torq-worker: listening on %s\n", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := ServeConn(conn, conn); err != nil {
				fmt.Fprintf(os.Stderr, "torq-worker: session ended: %v\n", err)
			}
		}()
	}
}
