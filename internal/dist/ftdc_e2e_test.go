package dist_test

// The flight-data-recorder acceptance scenarios, end to end against real
// subprocess workers: a capture taken across a genuine EngineDist training
// run must decode with live steal/latency/affinity series, and a
// deliberately stalled worker must come out of Summarize flagged as a
// straggler. This file lives in dist_test so it can import ftdc (which
// imports dist — an import cycle for an internal test package).

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/ftdc"
	"repro/internal/par"
	"repro/internal/qsim"
)

// TestFTDCCapturesDistTrainingEpoch records a capture around a real dist
// training run (live recorder, subprocess workers, default transport) and
// asserts the decoded dump carries the series the tentpole promises:
// nonzero steals, per-shard latency, affinity hits, and per-worker service
// records.
func TestFTDCCapturesDistTrainingEpoch(t *testing.T) {
	defer dist.Shutdown()
	defer par.SetMaxWorkers(0)
	dist.ResetTelemetry()
	par.ResetStats()
	qsim.ResetEngineStats()

	rec := ftdc.New(ftdc.Options{Interval: 2 * time.Millisecond})
	ftdc.StandardSources(rec)
	rec.Start()

	dist.Configure(dist.Options{Workers: 2})
	trainEpochs(t, qsim.EngineDist, 2)

	// With two workers, affinity hits race against work stealing (a fast
	// worker may legitimately take every paired shard before its owner
	// grabs), so pin the affinity-hit series with a single-worker pass:
	// one worker owns every cached forward state, and each paired backward
	// shard must route to it.
	rng := rand.New(rand.NewSource(99))
	const an, anq = 40, 4
	acirc := qsim.BasicEntangling.Build(anq, 2)
	dist.Configure(dist.Options{Workers: 1})
	runPass(qsim.EngineDist, acirc, an,
		randRows(rng, an*anq), nil, randRows(rng, acirc.NumParams), randRows(rng, an*anq), nil)

	// The coordinator-side scheduler may legitimately see zero steals on a
	// single-core host (the dist compute happens in the workers), so force
	// a stealing region the way the par suite does: a stalled owner whose
	// chunks the other workers must take.
	par.SetMaxWorkers(4)
	par.RunChunk(16, 1, func(_, lo, _ int) {
		if lo == 0 {
			time.Sleep(20 * time.Millisecond)
		}
	})

	rec.Stop()
	path := filepath.Join(t.TempDir(), "capture.ftdc")
	if err := rec.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	samples, err := ftdc.ReadFile(path)
	if err != nil {
		t.Fatalf("decoding the capture: %v", err)
	}
	if len(samples) < 2 {
		t.Fatalf("capture holds %d samples, want a real series", len(samples))
	}
	last := samples[len(samples)-1]
	mustPositive := func(name string) int64 {
		t.Helper()
		v, ok := last.Value(name)
		if !ok {
			t.Fatalf("capture has no %s series", name)
		}
		if v <= 0 {
			t.Fatalf("%s = %d, want > 0", name, v)
		}
		return v
	}
	mustPositive("par.steals")
	mustPositive("dist.shards_done")
	mustPositive("dist.bwd_passes")
	mustPositive("dist.aff_routed") // paired backward shards rode cached forward states
	mustPositive("qsim.bwd_passes")
	mustPositive("qsim.bwd_ns")

	// Per-shard latency: the histogram and at least one per-worker series
	// must have fired.
	sum := ftdc.Summarize(samples)
	var histN int64
	for _, m := range sum.Metrics {
		if len(m.Name) > 10 && m.Name[:10] == "dist.lat_b" {
			histN += m.Last
		}
	}
	if histN == 0 {
		t.Fatal("per-shard latency histogram is empty")
	}
	if len(sum.Workers) == 0 {
		t.Fatal("capture has no per-worker service series")
	}
	for _, w := range sum.Workers {
		if w.Shards > 0 && w.MeanShardLat <= 0 {
			t.Errorf("worker %d served %d shards with no recorded latency", w.ID, w.Shards)
		}
	}
}

// TestDistStragglerFlaggedInDump arms one of two workers with a 200ms
// per-shard stall and checks the capture's summary flags exactly that
// worker as the latency outlier — while the results stay bit-identical to
// an undisturbed run (a straggler is slow, not wrong).
func TestDistStragglerFlaggedInDump(t *testing.T) {
	defer dist.Shutdown()
	dist.ResetTelemetry()
	rng := rand.New(rand.NewSource(1234))
	const n, nq = 96, 7
	circ := qsim.StronglyEntangling.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	gz := randRows(rng, n*nq)

	dist.Configure(dist.Options{Workers: 2})
	want := runPass(qsim.EngineDist, circ, n, angles, nil, theta, gz, nil)

	// Fresh pool with the first-spawned worker stalled; the spawn-env hook
	// arms exactly one worker, mirroring the kill-recovery tests.
	dist.Configure(dist.Options{Workers: 2})
	dist.SetTestSpawnEnv(dist.StallEnv + "=200")
	dist.ResetTelemetry()

	rec := ftdc.New(ftdc.Options{})
	rec.AddSource(dist.Collect)
	rec.SampleNow()
	got := runPass(qsim.EngineDist, circ, n, angles, nil, theta, gz, nil)
	rec.SampleNow()
	comparePass(t, "stalled-worker pass", want, got)

	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ftdc.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sum := ftdc.Summarize(samples)
	if len(sum.Workers) != 2 {
		t.Fatalf("summary shows %d workers, want 2 (%+v)", len(sum.Workers), sum.Workers)
	}
	slow, fast := sum.Workers[0], sum.Workers[1]
	if fast.MeanShardLat > slow.MeanShardLat {
		slow, fast = fast, slow
	}
	if !slow.Straggler {
		t.Errorf("stalled worker %d (mean %v vs fleet %v) not flagged as straggler",
			slow.ID, slow.MeanShardLat, fast.MeanShardLat)
	}
	if fast.Straggler {
		t.Errorf("healthy worker %d (mean %v) wrongly flagged", fast.ID, fast.MeanShardLat)
	}
}
