package dist_test

// Traced parity: the ISSUE acceptance that span recording is bit-invisible
// to the numerics. The full parity matrix (worker counts × ansatze ×
// transport configs) and the kill-recovery path re-run with tracing forced
// on, compared bit for bit against untraced in-process baselines — any
// conditional the trace fields smuggle into the numeric path fails here.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/qsim"
	"repro/internal/trace"
)

// TestDistTracedBitIdentical re-runs the bit-identity acceptance matrix of
// TestDistBitIdenticalToSharded with span recording enabled on the
// coordinator (which forces it on in every worker through the pass frame's
// trace context). The baselines are computed UNtraced, so the comparison
// also proves tracing does not perturb the in-process engines.
func TestDistTracedBitIdentical(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(4242)) // same seed/shape as the untraced matrix
	const n, nq = 48, 4

	type workload struct {
		circ *qsim.Circuit
		ctx  string
		in   []([]float64) // angles, theta, gz
		tans [][]float64
		gzt  [][]float64
		want passResult
	}
	var loads []workload
	for _, a := range qsim.AllAnsatze {
		for _, reup := range []bool{false, true} {
			circ := a.Build(nq, 2)
			if reup {
				circ = circ.WithReupload()
			}
			angles := randRows(rng, n*nq)
			theta := randRows(rng, circ.NumParams)
			tans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
			gz := randRows(rng, n*nq)
			gztans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
			loads = append(loads, workload{
				circ: circ,
				ctx:  circ.Name,
				in:   [][]float64{angles, theta, gz},
				tans: tans, gzt: gztans,
				want: runPass(qsim.EngineSharded, circ, n, angles, tans, theta, gz, gztans),
			})
		}
	}

	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	for _, cfg := range distTransportConfigs {
		for _, workers := range []int{1, 2, 4} {
			opts := cfg.opts
			opts.Workers = workers
			dist.Configure(opts)
			for _, w := range loads {
				got := runPass(qsim.EngineDist, w.circ, n, w.in[0], w.tans, w.in[1], w.in[2], w.gzt)
				comparePass(t, fmt.Sprintf("traced/%s/%s/workers=%d", w.ctx, cfg.name, workers), w.want, got)
			}
		}
	}
}

// TestDistTracedKillRecovery re-runs the worker-death re-dispatch check with
// tracing on: a sabotaged worker dies mid-pass, the survivor finishes, and
// the results stay bit-identical to an undisturbed untraced run.
func TestDistTracedKillRecovery(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(555))
	const n, nq = 96, 7
	circ := qsim.StronglyEntangling.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	tans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}
	gz := randRows(rng, n*nq)
	gztans := [][]float64{randRows(rng, n*nq), nil, randRows(rng, n*nq)}

	dist.Configure(dist.Options{Workers: 2})
	want := runPass(qsim.EngineDist, circ, n, angles, tans, theta, gz, gztans)

	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	dist.Configure(dist.Options{Workers: 2})
	dist.SetTestSpawnEnv(dist.FailAfterEnv + "=1")
	got := runPass(qsim.EngineDist, circ, n, angles, tans, theta, gz, gztans)
	comparePass(t, "traced worker death", want, got)
	if live := dist.LiveWorkersForTest(); live != 2 {
		t.Fatalf("expected the pool healed to 2 live workers, have %d", live)
	}
	got = runPass(qsim.EngineDist, circ, n, angles, tans, theta, gz, gztans)
	comparePass(t, "traced after respawn", want, got)
}

// TestDistTracedSpanTree checks the observability payload itself: after a
// traced dist pass, the coordinator's span ring must hold the stitched tree —
// pass roots, compile, per-worker broadcasts, batch round trips, worker-side
// KShard spans (stamped with a coordinator-side worker id and parented under
// a coordinator batch or pass span), and the ordered merges.
func TestDistTracedSpanTree(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(31))
	const n, nq = 48, 4
	circ := qsim.StronglyEntangling.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	gz := randRows(rng, n*nq)

	dist.Configure(dist.Options{Workers: 2})
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	trace.Reset()
	runPass(qsim.EngineDist, circ, n, angles, nil, theta, gz, nil)

	spans := trace.Snapshot()
	byID := make(map[uint64]trace.SpanRec, len(spans))
	count := map[trace.Kind]int{}
	for _, s := range spans {
		byID[s.ID] = s
		count[s.Kind]++
		if s.Start == 0 || s.End < s.Start {
			t.Errorf("span %+v has a broken time range", s)
		}
	}
	for _, k := range []trace.Kind{trace.KCompile, trace.KForward, trace.KBackward, trace.KBroadcast, trace.KBatch, trace.KShard, trace.KMerge} {
		if count[k] == 0 {
			t.Errorf("no %v span recorded (kinds seen: %v)", k, count)
		}
	}
	if count[trace.KShard] < 2 {
		t.Errorf("expected several worker KShard spans, got %d", count[trace.KShard])
	}
	for _, s := range spans {
		if s.Kind != trace.KShard {
			continue
		}
		if s.Worker <= 0 {
			t.Errorf("KShard span %x not stamped with a worker id: %+v", s.ID, s)
		}
		if s.Shard < 0 {
			t.Errorf("KShard span %x has no shard index", s.ID)
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("KShard span %x parent %x not in the ring — worker spans not stitched", s.ID, s.Parent)
			continue
		}
		if p.Kind != trace.KBatch && p.Kind != trace.KForward && p.Kind != trace.KBackward {
			t.Errorf("KShard span %x parented under a %v span, want batch or pass root", s.ID, p.Kind)
		}
	}
	// Batch and broadcast spans must hang off a pass root.
	for _, s := range spans {
		if s.Kind != trace.KBatch && s.Kind != trace.KBroadcast {
			continue
		}
		if p, ok := byID[s.Parent]; !ok || (p.Kind != trace.KForward && p.Kind != trace.KBackward) {
			t.Errorf("%v span %x not parented under a pass root (parent %x, found %v)", s.Kind, s.ID, s.Parent, ok)
		}
	}
}

// TestDistUntracedCarriesNoSpans pins the wire cost of the always-present
// span section at zero when tracing is off: a pass run with the gate
// disarmed must record nothing and ship no span records.
func TestDistUntracedCarriesNoSpans(t *testing.T) {
	defer dist.Shutdown()
	rng := rand.New(rand.NewSource(32))
	const n, nq = 33, 4
	circ := qsim.BasicEntangling.Build(nq, 2)
	angles := randRows(rng, n*nq)
	theta := randRows(rng, circ.NumParams)
	gz := randRows(rng, n*nq)

	trace.SetEnabled(false)
	trace.Reset()
	dist.Configure(dist.Options{Workers: 2})
	runPass(qsim.EngineDist, circ, n, angles, nil, theta, gz, nil)
	if spans := trace.Snapshot(); len(spans) != 0 {
		t.Fatalf("untraced pass recorded %d spans, want 0: %+v", len(spans), spans[0])
	}
}
