package dist

import (
	"bytes"
	"encoding/hex"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/qsim"
	"repro/internal/trace"
)

// TestFrameRoundTrip checks the length-prefixed framing itself.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1, 2, 3}, bytes.Repeat([]byte{0xAB}, 1<<16)}
	for i, p := range payloads {
		if err := writeFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, body, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(body, p) {
			t.Fatalf("frame %d: type %d len %d, want type %d len %d", i, typ, len(body), i+1, len(p))
		}
	}
	if _, _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
	// A zero-length frame (no type byte) is a corrupt stream, not a frame.
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func randFloats(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func randOptTans(rng *rand.Rand, n int) (out [qsim.MaxTangents][]float64) {
	for k := range out {
		if rng.Intn(2) == 1 {
			out[k] = randFloats(rng, n)
		}
	}
	return out
}

// TestCodecRoundTripProperty fuzzes every message type through its encoder
// and decoder: randomized shapes (including empty and absent arrays, NaN and
// denormal floats) must survive exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	for trial := 0; trial < 200; trial++ {
		ng := rng.Intn(12)
		hm := helloMsg{
			Version:   uint16(rng.Intn(1 << 16)),
			Name:      strings.Repeat("q", rng.Intn(8)),
			NumQubits: rng.Intn(10),
			Layers:    rng.Intn(5),
			Reupload:  rng.Intn(2) == 1,
			NumParams: rng.Intn(200),
			Digest: qsim.ProgramDigest{
				Level: 3, Instructions: rng.Intn(500), Coeffs: rng.Intn(5000),
				DerivCoeffs: rng.Intn(5000), DiagAccums: rng.Intn(8),
				Hash: rng.Uint64(),
			},
		}
		for i := 0; i < ng; i++ {
			hm.Gates = append(hm.Gates, qsim.Gate{
				Kind: qsim.GateKind(rng.Intn(5)), Q: rng.Intn(8), C: rng.Intn(8) - 1, P: rng.Intn(20) - 1,
			})
		}
		for i := 0; i < rng.Intn(4); i++ {
			hm.LayerStarts = append(hm.LayerStarts, rng.Intn(100))
		}
		got, err := decodeHello(encodeHello(hm))
		if err != nil || !reflect.DeepEqual(got, hm) {
			t.Fatalf("hello round trip: err %v\n got %+v\nwant %+v", err, got, hm)
		}

		am := helloAckMsg{Version: uint16(rng.Intn(1 << 16)), Digest: hm.Digest}
		gotA, err := decodeHelloAck(encodeHelloAck(am))
		if err != nil || gotA != am {
			t.Fatalf("helloAck round trip: err %v got %+v want %+v", err, gotA, am)
		}

		pm := passMsg{
			Pass: rng.Uint64(), FwdPass: rng.Uint64(),
			Trace: rng.Uint64(), Span: rng.Uint64(),
			Backward: rng.Intn(2) == 1, Retain: rng.Intn(2) == 1,
			Theta: randFloats(rng, rng.Intn(40)),
		}
		pm.Theta = append(pm.Theta, math.NaN(), math.Inf(1), 5e-324)
		for k := range pm.Active {
			pm.Active[k] = rng.Intn(2) == 1
		}
		gotP, err := decodePass(encodePass(pm))
		if err != nil {
			t.Fatalf("pass decode: %v", err)
		}
		// NaN breaks DeepEqual on purpose; compare bit patterns instead.
		if gotP.Pass != pm.Pass || gotP.FwdPass != pm.FwdPass || gotP.Backward != pm.Backward ||
			gotP.Trace != pm.Trace || gotP.Span != pm.Span ||
			gotP.Retain != pm.Retain || gotP.Active != pm.Active || !bitsEqual(gotP.Theta, pm.Theta) {
			t.Fatalf("pass round trip: got %+v want %+v", gotP, pm)
		}

		rows := rng.Intn(30)
		sm := shardMsg{
			Pass: rng.Uint64(), Shard: rng.Uint32(),
			Angles: randFloats(rng, rows), AngleTans: randOptTans(rng, rows),
			GZTans: randOptTans(rng, rows),
		}
		if rng.Intn(2) == 1 {
			sm.GZ = randFloats(rng, rows)
		}
		gotS, err := decodeShard(encodeShard(sm))
		if err != nil || !reflect.DeepEqual(gotS, sm) {
			t.Fatalf("shard round trip: err %v\n got %+v\nwant %+v", err, gotS, sm)
		}

		rm := resultMsg{
			Pass: rng.Uint64(), Shard: rng.Uint32(), Backward: rng.Intn(2) == 1,
			Z: randFloats(rng, rows), ZTans: randOptTans(rng, rows),
			DAngles: randFloats(rng, rows), DAngleTans: randOptTans(rng, rows),
			DTheta: randFloats(rng, rng.Intn(20)), DiagT: randFloats(rng, rng.Intn(64)),
		}
		gotR, err := decodeResult(encodeResult(rm))
		if err != nil || !reflect.DeepEqual(gotR, rm) {
			t.Fatalf("result round trip: err %v\n got %+v\nwant %+v", err, gotR, rm)
		}

		em := errorMsg{Msg: strings.Repeat("x", rng.Intn(50))}
		gotE, err := decodeError(encodeError(em))
		if err != nil || gotE != em {
			t.Fatalf("error round trip: err %v got %+v want %+v", err, gotE, em)
		}
	}
}

// TestBatchCodecRoundTrip fuzzes the batch frames: every entry must survive
// exactly (the batch header's pass/direction stamped back into each entry),
// with and without an arena attached — arena-borrowed arrays must decode to
// the same bits as freshly allocated ones.
func TestBatchCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	var arena f64Arena
	var encBuf []byte
	for trial := 0; trial < 100; trial++ {
		pass := rng.Uint64()
		backward := rng.Intn(2) == 1
		rows := rng.Intn(24)
		nb := rng.Intn(5)
		var shards []shardMsg
		var results []resultMsg
		for i := 0; i < nb; i++ {
			sm := shardMsg{
				Pass: pass, Shard: rng.Uint32(),
				Angles: randFloats(rng, rows), AngleTans: randOptTans(rng, rows),
				GZTans: randOptTans(rng, rows),
			}
			if rng.Intn(2) == 1 {
				sm.GZ = randFloats(rng, rows)
			}
			shards = append(shards, sm)
			results = append(results, resultMsg{
				Pass: pass, Shard: sm.Shard, Backward: backward,
				Z: randFloats(rng, rows), ZTans: randOptTans(rng, rows),
				DAngles: randFloats(rng, rows), DAngleTans: randOptTans(rng, rows),
				DTheta: randFloats(rng, rng.Intn(20)), DiagT: randFloats(rng, rng.Intn(64)),
			})
		}

		span := rng.Uint64()
		encBuf = encodeShardBatchFrame(encBuf, pass, span, shards)
		for _, a := range []*f64Arena{nil, &arena} {
			if a != nil {
				a.reset()
			}
			got, gotSpan, err := decodeShardBatchInto(frameBody(encBuf), a, nil)
			if err != nil || gotSpan != span || !reflect.DeepEqual(got, shards) {
				t.Fatalf("shard batch round trip (arena=%v): err %v span %x want %x\n got %+v\nwant %+v", a != nil, err, gotSpan, span, got, shards)
			}
		}

		// Worker is not on the wire (the coordinator stamps it at ingest), so
		// the fixture spans leave it zero.
		var spans []trace.SpanRec
		for i := 0; i < rng.Intn(4); i++ {
			spans = append(spans, trace.SpanRec{
				ID: rng.Uint64(), Parent: rng.Uint64(), Kind: trace.Kind(rng.Intn(8)),
				Shard: int32(rng.Intn(100) - 1), Start: rng.Int63(), End: rng.Int63(),
			})
		}
		encBuf = encodeResultBatchFrame(encBuf, pass, backward, results, spans)
		for _, a := range []*f64Arena{nil, &arena} {
			if a != nil {
				a.reset()
			}
			got, gotSpans, err := decodeResultBatchInto(frameBody(encBuf), a, nil, nil)
			if err != nil || !reflect.DeepEqual(got, results) {
				t.Fatalf("result batch round trip (arena=%v): err %v\n got %+v\nwant %+v", a != nil, err, got, results)
			}
			if len(gotSpans) != len(spans) {
				t.Fatalf("result batch spans: got %d want %d", len(gotSpans), len(spans))
			}
			for i := range spans {
				if gotSpans[i] != spans[i] {
					t.Fatalf("span %d round trip: got %+v want %+v", i, gotSpans[i], spans[i])
				}
			}
		}
	}

	// Truncation must fail cleanly at every cut.
	full := frameBody(encodeShardBatchFrame(nil, 9, 0, []shardMsg{
		{Pass: 9, Shard: 1, Angles: []float64{1, 2}},
		{Pass: 9, Shard: 2, Angles: []float64{3}},
	}))
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := decodeShardBatchInto(full[:cut], nil, nil); err == nil {
			t.Fatalf("batch truncation at %d of %d accepted", cut, len(full))
		}
	}
	// The result batch's trailing span section must truncate cleanly too.
	fullR := frameBody(encodeResultBatchFrame(nil, 9, true,
		[]resultMsg{{Pass: 9, Shard: 1, Backward: true, DAngles: []float64{1}}},
		[]trace.SpanRec{{ID: 3, Parent: 2, Kind: trace.KShard, Shard: 1, Start: 10, End: 20}}))
	for cut := 0; cut < len(fullR); cut++ {
		if _, _, err := decodeResultBatchInto(fullR[:cut], nil, nil, nil); err == nil {
			t.Fatalf("result batch truncation at %d of %d accepted", cut, len(fullR))
		}
	}
}

// TestFrameCodecSteadyStateAllocs pins the zero-alloc frame path: once the
// session buffers are warm, a full encode → frame-write → frame-read →
// decode cycle of a shard batch and its result batch performs zero heap
// allocations.
func TestFrameCodecSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const rows = 64
	var shards []shardMsg
	for i := 0; i < 8; i++ {
		shards = append(shards, shardMsg{
			Pass: 3, Shard: uint32(i),
			Angles:    randFloats(rng, rows),
			AngleTans: [qsim.MaxTangents][]float64{randFloats(rng, rows), nil, randFloats(rng, rows)},
			GZ:        randFloats(rng, rows),
		})
	}

	var results []resultMsg
	var spans []trace.SpanRec
	for i := 0; i < 8; i++ {
		results = append(results, resultMsg{
			Pass: 3, Shard: uint32(i), Backward: true,
			DAngles: randFloats(rng, rows),
			DTheta:  randFloats(rng, 12),
		})
		spans = append(spans, trace.SpanRec{
			ID: uint64(100 + i), Parent: 7, Kind: trace.KShard,
			Shard: int32(i), Start: int64(i * 1000), End: int64(i*1000 + 500),
		})
	}

	var (
		encBuf   []byte
		rdBuf    []byte
		arena    f64Arena
		decoded  []shardMsg
		rdecoded []resultMsg
		sdecoded []trace.SpanRec
		rarena   f64Arena
		wire     bytes.Buffer
		reader   bytes.Reader
	)
	cycle := func() {
		encBuf = encodeShardBatchFrame(encBuf, 3, 7, shards)
		wire.Reset()
		if _, err := wire.Write(encBuf); err != nil {
			t.Fatal(err)
		}
		reader.Reset(wire.Bytes())
		typ, body, err := readFrameInto(&reader, &rdBuf)
		if err != nil || typ != fShardBatch {
			t.Fatalf("read frame: type %d err %v", typ, err)
		}
		arena.reset()
		decoded, _, err = decodeShardBatchInto(body, &arena, decoded[:0])
		if err != nil || len(decoded) != len(shards) {
			t.Fatalf("decode: %d entries err %v", len(decoded), err)
		}

		encBuf = encodeResultBatchFrame(encBuf, 3, true, results, spans)
		wire.Reset()
		if _, err := wire.Write(encBuf); err != nil {
			t.Fatal(err)
		}
		reader.Reset(wire.Bytes())
		typ, body, err = readFrameInto(&reader, &rdBuf)
		if err != nil || typ != fResultBatch {
			t.Fatalf("read result frame: type %d err %v", typ, err)
		}
		rarena.reset()
		rdecoded, sdecoded, err = decodeResultBatchInto(body, &rarena, rdecoded[:0], sdecoded[:0])
		if err != nil || len(rdecoded) != len(results) || len(sdecoded) != len(spans) {
			t.Fatalf("decode result: %d entries %d spans err %v", len(rdecoded), len(sdecoded), err)
		}
	}
	cycle() // warm every buffer to steady state
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Errorf("steady-state frame cycle allocates %v times per run, want 0", allocs)
	}
}

// BenchmarkFrameBatchRoundTrip measures the steady-state frame hot path —
// the per-batch transport constant the dist engine pays on top of compute —
// and reports allocs/op, which the zero-alloc design pins at 0.
func BenchmarkFrameBatchRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	const rows = 64
	var shards []shardMsg
	for i := 0; i < 8; i++ {
		shards = append(shards, shardMsg{
			Pass: 3, Shard: uint32(i),
			Angles:    randFloats(rng, rows),
			AngleTans: [qsim.MaxTangents][]float64{randFloats(rng, rows), nil, randFloats(rng, rows)},
			GZ:        randFloats(rng, rows),
		})
	}
	var (
		encBuf  []byte
		rdBuf   []byte
		arena   f64Arena
		decoded []shardMsg
		wire    bytes.Buffer
		reader  bytes.Reader
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		encBuf = encodeShardBatchFrame(encBuf, 3, 7, shards)
		wire.Reset()
		if _, err := wire.Write(encBuf); err != nil {
			b.Fatal(err)
		}
		reader.Reset(wire.Bytes())
		_, body, err := readFrameInto(&reader, &rdBuf)
		if err != nil {
			b.Fatal(err)
		}
		arena.reset()
		decoded, _, err = decodeShardBatchInto(body, &arena, decoded[:0])
		if err != nil || len(decoded) != len(shards) {
			b.Fatalf("decode: %d entries err %v", len(decoded), err)
		}
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCodecTruncationRejected checks the decoders fail cleanly (no panics,
// no silent zero values) on truncated and oversized payloads.
func TestCodecTruncationRejected(t *testing.T) {
	full := encodeShard(shardMsg{Pass: 7, Shard: 3, Angles: []float64{1, 2, 3}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeShard(full[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
	// Trailing garbage must be rejected too: a frame is exactly one message.
	if _, err := decodeShard(append(append([]byte{}, full...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestCodecGoldenBytes pins the wire encoding byte for byte: a change to the
// layout must bump ProtoVersion, and this fixture is what forces that
// conversation.
func TestCodecGoldenBytes(t *testing.T) {
	pass := passMsg{
		Pass:     0x0102030405060708,
		FwdPass:  0x1112131415161718,
		Trace:    0x2122232425262728,
		Span:     0x3132333435363738,
		Backward: true,
		Retain:   true,
		Active:   [qsim.MaxTangents]bool{true, false, true},
		Theta:    []float64{1, -0.5},
	}
	shard := shardMsg{
		Pass:   2,
		Shard:  1,
		Angles: []float64{0.25, 0.75},
		AngleTans: [qsim.MaxTangents][]float64{
			{1.5}, nil, {},
		},
		GZ: []float64{-2},
	}
	batch := encodeShardBatchFrame(nil, 2, 0x4142434445464748, []shardMsg{
		{Pass: 2, Shard: 1, Angles: []float64{0.25}},
		{Pass: 2, Shard: 3, Angles: []float64{0.75}, GZ: []float64{-2}},
	})
	rbatch := encodeResultBatchFrame(nil, 2, true,
		[]resultMsg{{Pass: 2, Shard: 1, Backward: true, DAngles: []float64{0.25}, DTheta: []float64{1}}},
		[]trace.SpanRec{{ID: 0x5152535455565758, Parent: 0x6162636465666768,
			Kind: trace.KShard, Shard: 1, Start: 0x0A0B0C0D, End: 0x0A0B0C0E}})
	cases := []struct {
		name string
		got  []byte
		want string
	}{
		{"pass", encodePass(pass),
			"080706050403020118171615141312112827262524232221383736353433323101010502000000000000000000f03f000000000000e0bf"},
		{"shard", encodeShard(shard),
			"02000000000000000100000002000000000000000000d03f000000000000e83f0101000000000000000000f83f000100000000010100000000000000000000c0000000"},
		// The batch encoder emits a complete frame: u32 length (type byte +
		// 78-byte payload = 0x4f) and the fShardBatch type lead the bytes; the
		// batch-span id sits between the pass id and the entry count.
		{"shardBatch", batch,
			"4f00000007" +
				"0200000000000000" + "4847464544434241" + "02000000" +
				"0100000001000000000000000000d03f00000000000000" +
				"0300000001000000000000000000e83f000000010100000000000000000000c0000000"},
		// The result batch carries the worker's span section after the entries:
		// u32 count then ID, Parent, Kind, Shard, Start, End per span.
		{"resultBatch", rbatch,
			"5d00000008" +
				"0200000000000000" + "01" + "01000000" +
				"0100000000000000" + "0101000000000000000000d03f" + "000000" + "0101000000000000000000f03f" + "00" +
				"01000000" +
				"5857565554535251" + "6867666564636261" + "06" + "01000000" +
				"0d0c0b0a00000000" + "0e0c0b0a00000000"},
	}
	for _, c := range cases {
		if got := hex.EncodeToString(c.got); got != c.want {
			t.Errorf("%s golden bytes drifted:\n got %s\nwant %s\n(an intentional layout change must bump ProtoVersion)", c.name, got, c.want)
		}
	}
}

// TestVersionMismatchRejected drives a worker session in memory and checks a
// handshake with a foreign protocol version is refused with an error frame.
func TestVersionMismatchRejected(t *testing.T) {
	circ := qsim.NoEntanglement.Build(2, 1)
	prog := qsim.CompileProgram(circ)
	toWorkerR, toWorkerW := io.Pipe()
	fromWorkerR, fromWorkerW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- ServeConn(toWorkerR, fromWorkerW)
	}()
	hm := helloMsg{
		Version: ProtoVersion + 41, Name: circ.Name, NumQubits: circ.NumQubits,
		Layers: circ.Layers, NumParams: circ.NumParams, Gates: circ.Gates,
		LayerStarts: circ.LayerStarts(), Digest: prog.Digest(),
	}
	if err := writeFrame(toWorkerW, fHello, encodeHello(hm)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(fromWorkerR)
	if err != nil {
		t.Fatal(err)
	}
	if typ != fError {
		t.Fatalf("worker replied frame type %d to a mismatched version, want fError", typ)
	}
	em, err := decodeError(body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(em.Msg, "version mismatch") {
		t.Fatalf("error %q does not name the version mismatch", em.Msg)
	}
	// A correct-version handshake on the same session must still succeed:
	// the refusal is per-handshake, not a poisoned session.
	hm.Version = ProtoVersion
	if err := writeFrame(toWorkerW, fHello, encodeHello(hm)); err != nil {
		t.Fatal(err)
	}
	typ, body, err = readFrame(fromWorkerR)
	if err != nil {
		t.Fatal(err)
	}
	if typ != fHelloAck {
		t.Fatalf("worker replied frame type %d to a valid handshake, want fHelloAck", typ)
	}
	ack, err := decodeHelloAck(body)
	if err != nil || ack.Digest != prog.Digest() {
		t.Fatalf("bad ack %+v (err %v)", ack, err)
	}
	toWorkerW.Close()
	if err := <-done; err != nil {
		t.Fatalf("worker session ended with error: %v", err)
	}
}
