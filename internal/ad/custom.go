package ad

// Custom registers an externally computed operation on the tape. The caller
// supplies the already-computed output value (rows×cols, ownership passes to
// the tape via copy) and a backward closure invoked during the reverse sweep.
// Inside the closure, use Value.Grad on the output handle to read the
// upstream gradient and accumulate into input gradients via their handles.
//
// This is the entry point for the parametrized quantum circuit layer, whose
// adjoint (unitary-recompute) backward pass cannot be expressed as a
// composition of tape primitives without materializing every intermediate
// statevector.
func (t *Tape) Custom(rows, cols int, out []float64, needsGrad bool, backward func(outGrad []float64)) Value {
	v, n := t.newNode(OpCustom, -1, -1, rows, cols, needsGrad)
	copy(n.val, out)
	if needsGrad && backward != nil {
		grad := n.grad
		n.backward = func() { backward(grad) }
	}
	return v
}

// CustomInPlace is Custom without the copy: the tape takes ownership of out,
// which must have been sized rows*cols by the caller. The buffer is recycled
// into the tape pool on Reset, so callers must not retain it.
func (t *Tape) CustomInPlace(rows, cols int, out []float64, needsGrad bool, backward func(outGrad []float64)) Value {
	if len(out) != rows*cols {
		panic("ad: CustomInPlace buffer size mismatch")
	}
	t.nodes = append(t.nodes, node{op: OpCustom, a: -1, b: -1, rows: int32(rows), cols: int32(cols), val: out})
	i := int32(len(t.nodes) - 1)
	n := &t.nodes[i]
	if needsGrad {
		n.grad = t.alloc(rows * cols)
		grad := n.grad
		n.backward = func() { backward(grad) }
	}
	return Value{t, i}
}
