package ad

import (
	"fmt"

	"repro/internal/par"
)

// SelectCols gathers columns idx from a[n×c], returning [n×len(idx)].
// Indices may repeat; the backward pass scatter-adds per row, which is safe
// because parallelism splits over rows.
func (t *Tape) SelectCols(a Value, idx []int) Value {
	na := &t.nodes[a.i]
	for _, j := range idx {
		if j < 0 || j >= int(na.cols) {
			panic(fmt.Sprintf("ad: SelectCols index %d out of %d", j, na.cols))
		}
	}
	v, n := t.newNode(OpSelectCols, a.i, -1, int(na.rows), len(idx), t.needsGrad(a.i))
	n.idx = idx
	av, out := na.val, n.val
	cols, w := int(na.cols), len(idx)
	par.For(int(na.rows), func(s, e int) {
		for r := s; r < e; r++ {
			src := av[r*cols:]
			dst := out[r*w : (r+1)*w]
			for j, k := range idx {
				dst[j] = src[k]
			}
		}
	})
	return v
}

// Col extracts a single column as [n×1].
func (t *Tape) Col(a Value, j int) Value { return t.SelectCols(a, []int{j}) }

// PlaceCols scatters a[n×len(idx)] into a zero matrix of width c, placing
// column j of a at column idx[j]. Indices must be distinct.
func (t *Tape) PlaceCols(a Value, idx []int, c int) Value {
	na := &t.nodes[a.i]
	if len(idx) != int(na.cols) {
		panic("ad: PlaceCols index count mismatch")
	}
	seen := make(map[int]bool, len(idx))
	for _, j := range idx {
		if j < 0 || j >= c || seen[j] {
			panic(fmt.Sprintf("ad: PlaceCols bad index %d (width %d)", j, c))
		}
		seen[j] = true
	}
	v, n := t.newNode(OpPlaceCols, a.i, -1, int(na.rows), c, t.needsGrad(a.i))
	n.idx = idx
	av, out := na.val, n.val
	w := len(idx)
	par.For(int(na.rows), func(s, e int) {
		for r := s; r < e; r++ {
			src := av[r*w : (r+1)*w]
			dst := out[r*c:]
			for j, k := range idx {
				dst[k] = src[j]
			}
		}
	})
	return v
}

// SelectRows gathers rows idx from a, returning [len(idx)×c]. Indices must
// be distinct (they partition collocation sets), which keeps the backward
// scatter race-free.
func (t *Tape) SelectRows(a Value, idx []int) Value {
	na := &t.nodes[a.i]
	for _, r := range idx {
		if r < 0 || r >= int(na.rows) {
			panic(fmt.Sprintf("ad: SelectRows index %d out of %d", r, na.rows))
		}
	}
	v, n := t.newNode(OpSelectRows, a.i, -1, len(idx), int(na.cols), t.needsGrad(a.i))
	n.idx = idx
	av, out := na.val, n.val
	c := int(na.cols)
	par.For(len(idx), func(s, e int) {
		for j := s; j < e; j++ {
			copy(out[j*c:(j+1)*c], av[idx[j]*c:(idx[j]+1)*c])
		}
	})
	return v
}

// ConcatCols returns [a | b] for matrices with equal row counts.
func (t *Tape) ConcatCols(a, b Value) Value {
	na, nb := &t.nodes[a.i], &t.nodes[b.i]
	if na.rows != nb.rows {
		panic(fmt.Sprintf("ad: ConcatCols rows %d vs %d", na.rows, nb.rows))
	}
	ng := t.needsGrad(a.i) || t.needsGrad(b.i)
	ca, cb := int(na.cols), int(nb.cols)
	v, n := t.newNode(OpConcatCols, a.i, b.i, int(na.rows), ca+cb, ng)
	av, bv, out := na.val, nb.val, n.val
	w := ca + cb
	par.For(int(na.rows), func(s, e int) {
		for r := s; r < e; r++ {
			copy(out[r*w:r*w+ca], av[r*ca:(r+1)*ca])
			copy(out[r*w+ca:(r+1)*w], bv[r*cb:(r+1)*cb])
		}
	})
	return v
}
