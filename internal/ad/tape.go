// Package ad implements the reverse-mode automatic differentiation substrate
// that replaces PyTorch's autograd in this reproduction. It is a
// define-by-run tape over batched, row-major float64 matrices: every
// operation eagerly computes its value when the graph is built, and a single
// reverse sweep (Backward) accumulates exact gradients into every node that
// requires them.
//
// The tape is rebuilt every training step. To keep the allocator out of the
// hot loop, buffers are recycled through a size-classed free list that
// persists across Reset calls — the CPU analogue of the arena reuse that
// made the paper's TorQ simulator fit an 87³ collocation grid in GPU memory.
package ad

import "fmt"

// Op enumerates the primitive operations the tape understands. Anything not
// expressible as a composition of these (the parametrized quantum circuit)
// enters the graph through a Custom node carrying its own backward closure.
type Op uint8

const (
	OpLeaf Op = iota // parameter or input; value storage owned by the caller
	OpConst
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpScale // value * scalar constant
	OpShift // value + scalar constant
	OpNeg
	OpSin
	OpCos
	OpTanh
	OpExp
	OpSquare
	OpSqrt
	OpAsin
	OpAcos
	OpClamp    // clamp to [-c, c]
	OpMatMul   // [n×k]·[k×m], both differentiable
	OpMatMulC  // [n×k]·const[k×m]
	OpAddBias  // [n×m] + bias[1×m], broadcast over rows
	OpRowScale // [n×c] ⊙ s[n×1], broadcast over columns
	OpScaleVar // [n×c] * s[1×1]
	OpSelectCols
	OpPlaceCols
	OpSelectRows
	OpConcatCols
	OpSumAll
	OpMeanAll
	OpSumSq // Σ x² → [1×1]
	OpCustom
)

// node is one tape entry. Buffers val and grad are len rows*cols; grad is nil
// for nodes that do not require gradients.
type node struct {
	op         Op
	a, b       int32
	rows, cols int32
	c          float64   // scalar payload (Scale, Shift, Clamp)
	idx        []int     // index payload (Select/Place)
	cm         []float64 // constant-matrix payload (MatMulC)
	cmCols     int32
	val        []float64
	grad       []float64
	backward   func() // Custom nodes only
}

// Value is a handle to a tape node. The zero Value is invalid; use Valid.
type Value struct {
	t *Tape
	i int32
}

// Valid reports whether v refers to a tape node.
func (v Value) Valid() bool { return v.t != nil }

// Rows returns the row count of the node's matrix.
func (v Value) Rows() int { return int(v.t.nodes[v.i].rows) }

// Cols returns the column count of the node's matrix.
func (v Value) Cols() int { return int(v.t.nodes[v.i].cols) }

// Data returns the node's value buffer (live view, not a copy).
func (v Value) Data() []float64 { return v.t.nodes[v.i].val }

// Grad returns the node's gradient buffer after Backward, or nil if the node
// does not require gradients.
func (v Value) Grad() []float64 { return v.t.nodes[v.i].grad }

// NeedsGrad reports whether gradients flow into this node.
func (v Value) NeedsGrad() bool { return v.t.nodes[v.i].grad != nil }

// Scalar returns the single element of a 1×1 node.
func (v Value) Scalar() float64 {
	n := &v.t.nodes[v.i]
	if n.rows != 1 || n.cols != 1 {
		panic(fmt.Sprintf("ad: Scalar on %d×%d node", n.rows, n.cols))
	}
	return n.val[0]
}

// Tape is the gradient tape. It is not safe for concurrent graph building;
// the kernels inside individual operations parallelize internally.
type Tape struct {
	nodes   []node
	pool    pool
	onReset []func()
}

// OnReset registers fn to run at the start of the next Reset, after which it
// is forgotten. Owners of Custom nodes use it to reclaim resources their
// backward closure would normally release — a tape that is reset without
// Backward ever running (an inference-only probe on a trainable graph, an
// abandoned step) otherwise strands them.
func (t *Tape) OnReset(fn func()) { t.onReset = append(t.onReset, fn) }

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len reports the number of nodes currently on the tape.
func (t *Tape) Len() int { return len(t.nodes) }

// Reset clears the tape for the next step, recycling all buffers it owns.
// Leaf and Const value buffers are owned (and often retained across steps)
// by the caller and must never enter the pool: recycling them would zero
// live caller data on the next allocation.
func (t *Tape) Reset() {
	for _, fn := range t.onReset {
		fn()
	}
	t.onReset = t.onReset[:0]
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.op != OpLeaf && n.op != OpConst && n.val != nil {
			t.pool.put(n.val)
		}
		if n.grad != nil {
			t.pool.put(n.grad)
		}
		n.val, n.grad, n.idx, n.cm, n.backward = nil, nil, nil, nil, nil
	}
	t.nodes = t.nodes[:0]
}

// alloc returns a zeroed buffer of length n from the pool.
func (t *Tape) alloc(n int) []float64 { return t.pool.get(n) }

// newNode appends a node, allocating its value buffer (len rows*cols) and,
// when needsGrad is set, a zeroed gradient buffer.
func (t *Tape) newNode(op Op, a, b int32, rows, cols int, needsGrad bool) (Value, *node) {
	t.nodes = append(t.nodes, node{op: op, a: a, b: b, rows: int32(rows), cols: int32(cols)})
	i := int32(len(t.nodes) - 1)
	n := &t.nodes[i]
	n.val = t.alloc(rows * cols)
	if needsGrad {
		n.grad = t.alloc(rows * cols)
	}
	return Value{t, i}, n
}

func (t *Tape) needsGrad(idx int32) bool {
	return idx >= 0 && t.nodes[idx].grad != nil
}

// Leaf registers an externally owned buffer (parameter or input batch) as a
// tape node. data must have length rows*cols and remains aliased: parameter
// updates mutate it in place between steps. When needsGrad is set, Backward
// accumulates into the node's gradient buffer, readable via Value.Grad.
func (t *Tape) Leaf(rows, cols int, data []float64, needsGrad bool) Value {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("ad: Leaf buffer length %d ≠ %d×%d", len(data), rows, cols))
	}
	t.nodes = append(t.nodes, node{op: OpLeaf, a: -1, b: -1, rows: int32(rows), cols: int32(cols), val: data})
	i := int32(len(t.nodes) - 1)
	if needsGrad {
		t.nodes[i].grad = t.alloc(rows * cols)
	}
	return Value{t, i}
}

// Const registers a constant matrix. The data is aliased, never written.
func (t *Tape) Const(rows, cols int, data []float64) Value {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("ad: Const buffer length %d ≠ %d×%d", len(data), rows, cols))
	}
	t.nodes = append(t.nodes, node{op: OpConst, a: -1, b: -1, rows: int32(rows), cols: int32(cols), val: data})
	return Value{t, int32(len(t.nodes) - 1)}
}

// ConstScalar registers a 1×1 constant.
func (t *Tape) ConstScalar(c float64) Value {
	return t.Const(1, 1, []float64{c})
}

func sameShape(a, b *node) bool { return a.rows == b.rows && a.cols == b.cols }

// pool is a size-classed free list. Buffers are grouped by exact length;
// training steps rebuild an identical graph, so hit rates are ~100% after
// the first step.
type pool struct {
	byLen map[int][][]float64
}

func (p *pool) get(n int) []float64 {
	if n == 0 {
		return nil
	}
	if p.byLen != nil {
		if bufs := p.byLen[n]; len(bufs) > 0 {
			buf := bufs[len(bufs)-1]
			p.byLen[n] = bufs[:len(bufs)-1]
			for i := range buf {
				buf[i] = 0
			}
			return buf
		}
	}
	return make([]float64, n)
}

func (p *pool) put(buf []float64) {
	if buf == nil {
		return
	}
	if p.byLen == nil {
		p.byLen = make(map[int][][]float64)
	}
	p.byLen[len(buf)] = append(p.byLen[len(buf)], buf)
}
