package ad

import (
	"fmt"

	"repro/internal/par"
)

// mmAcc computes C += A(n×k)·B(k×m) in row-major order, parallel over rows
// of A. The ikj loop order keeps the inner loop streaming over contiguous
// memory in both B and C.
func mmAcc(c, a, b []float64, n, k, m int) {
	par.ForGrain(n, k*m, func(s, e int) {
		for i := s; i < e; i++ {
			ci := c[i*m : (i+1)*m]
			ai := a[i*k : (i+1)*k]
			for l, av := range ai {
				if av == 0 {
					continue
				}
				bl := b[l*m : (l+1)*m]
				for j, bv := range bl {
					ci[j] += av * bv
				}
			}
		}
	})
}

// mmNTAcc computes C += A(n×m)·Bᵀ where B is k×m, giving C of shape n×k.
// This is the dA = dC·Wᵀ step of the MatMul backward. Dot-product form,
// parallel over rows of A.
func mmNTAcc(c, a, b []float64, n, m, k int) {
	par.ForGrain(n, k*m, func(s, e int) {
		for i := s; i < e; i++ {
			ai := a[i*m : (i+1)*m]
			ci := c[i*k : (i+1)*k]
			for j := 0; j < k; j++ {
				bj := b[j*m : (j+1)*m]
				var sum float64
				for l, av := range ai {
					sum += av * bj[l]
				}
				ci[j] += sum
			}
		}
	})
}

// mmTNAcc computes C += Aᵀ·B where A is n×k and B is n×m, giving C of shape
// k×m. This is the dW = Xᵀ·dC step. Parallelizing over rows of A would race
// on C, so the loop splits over the k dimension instead.
func mmTNAcc(c, a, b []float64, n, k, m int) {
	par.ForGrain(k, n*m/max(k, 1), func(s, e int) {
		for l := s; l < e; l++ {
			cl := c[l*m : (l+1)*m]
			for i := 0; i < n; i++ {
				av := a[i*k+l]
				if av == 0 {
					continue
				}
				bi := b[i*m : (i+1)*m]
				for j, bv := range bi {
					cl[j] += av * bv
				}
			}
		}
	})
}

// MatMul returns a·b for a[n×k] and b[k×m]; both operands participate in
// gradient flow. b is typically a weight matrix leaf.
func (t *Tape) MatMul(a, b Value) Value {
	na, nb := &t.nodes[a.i], &t.nodes[b.i]
	if na.cols != nb.rows {
		panic(fmt.Sprintf("ad: MatMul %d×%d · %d×%d", na.rows, na.cols, nb.rows, nb.cols))
	}
	ng := t.needsGrad(a.i) || t.needsGrad(b.i)
	v, n := t.newNode(OpMatMul, a.i, b.i, int(na.rows), int(nb.cols), ng)
	mmAcc(n.val, na.val, nb.val, int(na.rows), int(na.cols), int(nb.cols))
	return v
}

// MatMulC returns a·M for a constant matrix M (k×m, row-major). The constant
// never receives gradients; only dA = dC·Mᵀ flows back.
func (t *Tape) MatMulC(a Value, m []float64, mCols int) Value {
	na := &t.nodes[a.i]
	k := int(na.cols)
	if len(m) != k*mCols {
		panic(fmt.Sprintf("ad: MatMulC const %d ≠ %d×%d", len(m), k, mCols))
	}
	v, n := t.newNode(OpMatMulC, a.i, -1, int(na.rows), mCols, t.needsGrad(a.i))
	n.cm = m
	n.cmCols = int32(mCols)
	mmAcc(n.val, na.val, m, int(na.rows), k, mCols)
	return v
}
