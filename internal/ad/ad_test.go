package ad

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gradCheck compares the tape gradient of a scalar-valued graph against
// central finite differences with respect to every entry of every input.
// build receives a fresh tape and the leaf handles and must return the loss.
func gradCheck(t *testing.T, name string, inputs [][]float64, shapes [][2]int, build func(tp *Tape, leaves []Value) Value) {
	t.Helper()
	const h = 1e-6
	const tol = 1e-4

	eval := func() float64 {
		tp := NewTape()
		leaves := make([]Value, len(inputs))
		for i, data := range inputs {
			leaves[i] = tp.Leaf(shapes[i][0], shapes[i][1], data, true)
		}
		return build(tp, leaves).Scalar()
	}

	tp := NewTape()
	leaves := make([]Value, len(inputs))
	for i, data := range inputs {
		leaves[i] = tp.Leaf(shapes[i][0], shapes[i][1], data, true)
	}
	loss := build(tp, leaves)
	tp.Backward(loss)

	for li, data := range inputs {
		grad := leaves[li].Grad()
		for j := range data {
			orig := data[j]
			data[j] = orig + h
			fp := eval()
			data[j] = orig - h
			fm := eval()
			data[j] = orig
			num := (fp - fm) / (2 * h)
			got := grad[j]
			if math.Abs(got-num) > tol*(1+math.Abs(num)) {
				t.Errorf("%s: input %d[%d]: grad %.8f, finite-diff %.8f", name, li, j, got, num)
			}
		}
	}
}

func randSlice(rng *rand.Rand, n int, lo, hi float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = lo + (hi-lo)*rng.Float64()
	}
	return s
}

func TestElementwiseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randSlice(rng, 12, -1.5, 1.5)
	b := randSlice(rng, 12, 0.5, 2.0) // positive: used as divisor and sqrt arg
	sh := [][2]int{{3, 4}, {3, 4}}

	cases := []struct {
		name  string
		build func(tp *Tape, l []Value) Value
	}{
		{"Add", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Add(l[0], l[1])) }},
		{"Sub", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Sub(l[0], l[1])) }},
		{"Mul", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Mul(l[0], l[1])) }},
		{"Div", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Div(l[0], l[1])) }},
		{"Scale", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Scale(l[0], -2.5)) }},
		{"Shift", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Shift(l[0], 0.7)) }},
		{"Neg", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Neg(l[0])) }},
		{"Sin", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Sin(l[0])) }},
		{"Cos", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Cos(l[0])) }},
		{"Tanh", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Tanh(l[0])) }},
		{"Exp", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Exp(l[0])) }},
		{"Square", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Square(l[0])) }},
		{"Sqrt", func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Sqrt(l[1])) }},
		{"MeanAll", func(tp *Tape, l []Value) Value { return tp.Square(tp.MeanAll(l[0])) }},
		{"SumAll", func(tp *Tape, l []Value) Value { return tp.Square(tp.Scale(tp.SumAll(l[0]), 0.1)) }},
		{"MSE", func(tp *Tape, l []Value) Value { return tp.MSE(l[0]) }},
	}
	for _, c := range cases {
		ai := append([]float64(nil), a...)
		bi := append([]float64(nil), b...)
		gradCheck(t, c.name, [][]float64{ai, bi}, sh, c.build)
	}
}

func TestAsinAcosGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randSlice(rng, 12, -0.9, 0.9)
	sh := [][2]int{{3, 4}}
	gradCheck(t, "Asin", [][]float64{a}, sh, func(tp *Tape, l []Value) Value {
		return tp.SumSq(tp.Asin(l[0]))
	})
	a2 := randSlice(rng, 12, -0.9, 0.9)
	gradCheck(t, "Acos", [][]float64{a2}, sh, func(tp *Tape, l []Value) Value {
		return tp.SumSq(tp.Acos(l[0]))
	})
}

func TestMatMulGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSlice(rng, 3*4, -1, 1)
	w := randSlice(rng, 4*2, -1, 1)
	gradCheck(t, "MatMul", [][]float64{a, w}, [][2]int{{3, 4}, {4, 2}},
		func(tp *Tape, l []Value) Value { return tp.SumSq(tp.MatMul(l[0], l[1])) })

	cm := randSlice(rng, 4*5, -1, 1)
	a2 := randSlice(rng, 3*4, -1, 1)
	gradCheck(t, "MatMulC", [][]float64{a2}, [][2]int{{3, 4}},
		func(tp *Tape, l []Value) Value { return tp.SumSq(tp.MatMulC(l[0], cm, 5)) })
}

func TestBroadcastGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSlice(rng, 3*4, -1, 1)
	bias := randSlice(rng, 4, -1, 1)
	gradCheck(t, "AddBias", [][]float64{a, bias}, [][2]int{{3, 4}, {1, 4}},
		func(tp *Tape, l []Value) Value { return tp.SumSq(tp.AddBias(l[0], l[1])) })

	a2 := randSlice(rng, 3*4, -1, 1)
	s := randSlice(rng, 3, 0.5, 1.5)
	gradCheck(t, "RowScale", [][]float64{a2, s}, [][2]int{{3, 4}, {3, 1}},
		func(tp *Tape, l []Value) Value { return tp.SumSq(tp.RowScale(l[0], l[1])) })

	a3 := randSlice(rng, 3*4, -1, 1)
	sc := []float64{1.3}
	gradCheck(t, "ScaleVar", [][]float64{a3, sc}, [][2]int{{3, 4}, {1, 1}},
		func(tp *Tape, l []Value) Value { return tp.SumSq(tp.ScaleVar(l[0], l[1])) })
}

func TestShapeOpGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSlice(rng, 3*5, -1, 1)
	gradCheck(t, "SelectCols", [][]float64{a}, [][2]int{{3, 5}},
		func(tp *Tape, l []Value) Value {
			// Repeated index exercises scatter-add.
			return tp.SumSq(tp.SelectCols(l[0], []int{0, 2, 2, 4}))
		})

	a2 := randSlice(rng, 3*2, -1, 1)
	gradCheck(t, "PlaceCols", [][]float64{a2}, [][2]int{{3, 2}},
		func(tp *Tape, l []Value) Value {
			return tp.SumSq(tp.PlaceCols(l[0], []int{3, 1}, 5))
		})

	a3 := randSlice(rng, 5*3, -1, 1)
	gradCheck(t, "SelectRows", [][]float64{a3}, [][2]int{{5, 3}},
		func(tp *Tape, l []Value) Value {
			return tp.SumSq(tp.SelectRows(l[0], []int{4, 0, 2}))
		})

	a4 := randSlice(rng, 3*2, -1, 1)
	b4 := randSlice(rng, 3*3, -1, 1)
	gradCheck(t, "ConcatCols", [][]float64{a4, b4}, [][2]int{{3, 2}, {3, 3}},
		func(tp *Tape, l []Value) Value {
			return tp.SumSq(tp.ConcatCols(l[0], l[1]))
		})
}

func TestClampGradient(t *testing.T) {
	// Away from the clamp boundary the op is the identity.
	a := []float64{-0.5, 0.3, 0.7, -0.2}
	gradCheck(t, "Clamp", [][]float64{a}, [][2]int{{1, 4}},
		func(tp *Tape, l []Value) Value { return tp.SumSq(tp.Clamp(l[0], 0.95)) })
}

// TestMLPGradient is an integration check: a two-layer tanh network with a
// quadratic loss must match finite differences for weights and biases.
func TestMLPGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randSlice(rng, 8*3, -1, 1)
	w1 := randSlice(rng, 3*6, -0.7, 0.7)
	b1 := randSlice(rng, 6, -0.2, 0.2)
	w2 := randSlice(rng, 6*2, -0.7, 0.7)
	b2 := randSlice(rng, 2, -0.2, 0.2)
	gradCheck(t, "MLP",
		[][]float64{x, w1, b1, w2, b2},
		[][2]int{{8, 3}, {3, 6}, {1, 6}, {6, 2}, {1, 2}},
		func(tp *Tape, l []Value) Value {
			h := tp.Tanh(tp.AddBias(tp.MatMul(l[0], l[1]), l[2]))
			y := tp.AddBias(tp.MatMul(h, l[3]), l[4])
			return tp.MSE(y)
		})
}

func TestCustomOpBackward(t *testing.T) {
	// A custom op computing y = 3x with analytic backward must round-trip.
	x := []float64{1, 2, 3}
	tp := NewTape()
	xv := tp.Leaf(1, 3, x, true)
	out := []float64{3, 6, 9}
	y := tp.Custom(1, 3, out, true, func(g []float64) {
		dx := xv.Grad()
		for i := range g {
			dx[i] += 3 * g[i]
		}
	})
	loss := tp.SumAll(y)
	tp.Backward(loss)
	for i, g := range xv.Grad() {
		if math.Abs(g-3) > 1e-12 {
			t.Errorf("custom grad[%d] = %v, want 3", i, g)
		}
	}
}

func TestTapeResetReuse(t *testing.T) {
	tp := NewTape()
	x := []float64{1, 2, 3, 4}
	for step := 0; step < 3; step++ {
		xv := tp.Leaf(2, 2, x, true)
		loss := tp.MSE(tp.Tanh(xv))
		tp.Backward(loss)
		if loss.Scalar() <= 0 {
			t.Fatal("loss must be positive")
		}
		g := xv.Grad()
		for i, want := range []float64{1, 2, 3, 4} {
			_ = want
			if g[i] == 0 {
				t.Fatalf("step %d: zero gradient at %d", step, i)
			}
		}
		tp.Reset()
		if tp.Len() != 0 {
			t.Fatal("reset did not clear tape")
		}
	}
}

func TestNoGradSkipsAllocation(t *testing.T) {
	tp := NewTape()
	x := tp.Leaf(2, 2, []float64{1, 2, 3, 4}, false)
	y := tp.Tanh(x)
	if y.NeedsGrad() {
		t.Fatal("gradient tracking must not propagate from non-grad leaves")
	}
	loss := tp.MSE(y)
	tp.Backward(loss) // must be a no-op, not a panic
}

// Property: for random vectors, gradient of MeanAll(Square(x)) is 2x/n.
func TestQuickMSEGradientClosedForm(t *testing.T) {
	f := func(raw [6]float64) bool {
		x := make([]float64, 6)
		for i, v := range raw {
			x[i] = math.Mod(v, 3) // keep finite and modest
			if math.IsNaN(x[i]) {
				x[i] = 0.5
			}
		}
		tp := NewTape()
		xv := tp.Leaf(2, 3, x, true)
		loss := tp.MSE(xv)
		tp.Backward(loss)
		g := xv.Grad()
		for i := range x {
			want := 2 * x[i] / 6
			if math.Abs(g[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: linearity of the backward pass — grad of SumAll(a·x) is aᵀ·1.
func TestQuickMatMulGradLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m := 2+r.Intn(4), 1+r.Intn(4), 1+r.Intn(3)
		a := randSlice(r, n*k, -1, 1)
		w := randSlice(r, k*m, -1, 1)
		tp := NewTape()
		av := tp.Leaf(n, k, a, true)
		wv := tp.Leaf(k, m, w, true)
		loss := tp.SumAll(tp.MatMul(av, wv))
		tp.Backward(loss)
		// d/dA sum(AW) = row vector of row-sums of W, same for every row of A.
		ga := av.Grad()
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				var want float64
				for c := 0; c < m; c++ {
					want += w[j*m+c]
				}
				if math.Abs(ga[i*k+j]-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < 50; i++ {
		if !f(rng.Int63()) {
			t.Fatalf("matmul gradient linearity violated")
		}
	}
}

// TestResetPreservesConstData is the regression test for a recycling bug:
// Const nodes alias caller-owned data (IC targets, ε vectors) that persists
// across steps, so Reset must never feed their buffers to the pool where a
// later allocation would zero them.
func TestResetPreservesConstData(t *testing.T) {
	tp := NewTape()
	persistent := []float64{1, 2, 3, 4}
	for step := 0; step < 3; step++ {
		c := tp.Const(2, 2, persistent)
		x := tp.Leaf(2, 2, []float64{5, 6, 7, 8}, true)
		loss := tp.MSE(tp.Mul(c, x))
		tp.Backward(loss)
		tp.Reset()
		// Allocate aggressively from the pool; if the const buffer leaked in,
		// it would be zeroed here.
		for i := 0; i < 8; i++ {
			v := tp.Leaf(2, 2, make([]float64, 4), true)
			tp.Backward(tp.MSE(tp.Tanh(v)))
			tp.Reset()
		}
		for i, want := range []float64{1, 2, 3, 4} {
			if math.Float64bits(persistent[i]) != math.Float64bits(want) {
				t.Fatalf("step %d: const data corrupted: %v", step, persistent)
			}
		}
	}
}
