package ad

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// binary creates an elementwise binary node after shape checking.
func (t *Tape) binary(op Op, a, b Value, fw func(x, y float64) float64) Value {
	na, nb := &t.nodes[a.i], &t.nodes[b.i]
	if !sameShape(na, nb) {
		panic(fmt.Sprintf("ad: shape mismatch %d×%d vs %d×%d (op %d)", na.rows, na.cols, nb.rows, nb.cols, op))
	}
	ng := t.needsGrad(a.i) || t.needsGrad(b.i)
	v, n := t.newNode(op, a.i, b.i, int(na.rows), int(na.cols), ng)
	av, bv, out := na.val, nb.val, n.val
	par.For(len(out), func(s, e int) {
		for i := s; i < e; i++ {
			out[i] = fw(av[i], bv[i])
		}
	})
	return v
}

// unary creates an elementwise unary node.
func (t *Tape) unary(op Op, a Value, c float64, fw func(x float64) float64) Value {
	na := &t.nodes[a.i]
	v, n := t.newNode(op, a.i, -1, int(na.rows), int(na.cols), t.needsGrad(a.i))
	n.c = c
	av, out := na.val, n.val
	par.For(len(out), func(s, e int) {
		for i := s; i < e; i++ {
			out[i] = fw(av[i])
		}
	})
	return v
}

// Add returns a + b elementwise.
func (t *Tape) Add(a, b Value) Value {
	return t.binary(OpAdd, a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns a − b elementwise.
func (t *Tape) Sub(a, b Value) Value {
	return t.binary(OpSub, a, b, func(x, y float64) float64 { return x - y })
}

// Mul returns a ⊙ b elementwise.
func (t *Tape) Mul(a, b Value) Value {
	return t.binary(OpMul, a, b, func(x, y float64) float64 { return x * y })
}

// Div returns a ⊘ b elementwise.
func (t *Tape) Div(a, b Value) Value {
	return t.binary(OpDiv, a, b, func(x, y float64) float64 { return x / y })
}

// Scale returns a * c for a scalar constant c.
func (t *Tape) Scale(a Value, c float64) Value {
	return t.unary(OpScale, a, c, func(x float64) float64 { return x * c })
}

// Shift returns a + c for a scalar constant c.
func (t *Tape) Shift(a Value, c float64) Value {
	return t.unary(OpShift, a, c, func(x float64) float64 { return x + c })
}

// Neg returns −a.
func (t *Tape) Neg(a Value) Value {
	return t.unary(OpNeg, a, 0, func(x float64) float64 { return -x })
}

// Sin returns sin(a) elementwise.
func (t *Tape) Sin(a Value) Value { return t.unary(OpSin, a, 0, math.Sin) }

// Cos returns cos(a) elementwise.
func (t *Tape) Cos(a Value) Value { return t.unary(OpCos, a, 0, math.Cos) }

// Tanh returns tanh(a) elementwise.
func (t *Tape) Tanh(a Value) Value { return t.unary(OpTanh, a, 0, math.Tanh) }

// Exp returns exp(a) elementwise.
func (t *Tape) Exp(a Value) Value { return t.unary(OpExp, a, 0, math.Exp) }

// Square returns a² elementwise.
func (t *Tape) Square(a Value) Value {
	return t.unary(OpSquare, a, 0, func(x float64) float64 { return x * x })
}

// Sqrt returns √a elementwise.
func (t *Tape) Sqrt(a Value) Value { return t.unary(OpSqrt, a, 0, math.Sqrt) }

// asinEps guards the arcsine/arccosine derivative 1/√(1−x²) against the
// open-interval boundary: tanh activations approach ±1 but never reach it,
// so the clamp only matters for pathological inputs.
const asinEps = 1e-12

// Asin returns arcsin(a) elementwise (inputs clamped to [−1, 1]).
func (t *Tape) Asin(a Value) Value {
	return t.unary(OpAsin, a, 0, func(x float64) float64 {
		return math.Asin(clamp1(x))
	})
}

// Acos returns arccos(a) elementwise (inputs clamped to [−1, 1]).
func (t *Tape) Acos(a Value) Value {
	return t.unary(OpAcos, a, 0, func(x float64) float64 {
		return math.Acos(clamp1(x))
	})
}

// Clamp returns a clamped elementwise to [−c, c].
func (t *Tape) Clamp(a Value, c float64) Value {
	return t.unary(OpClamp, a, c, func(x float64) float64 {
		if x > c {
			return c
		}
		if x < -c {
			return -c
		}
		return x
	})
}

func clamp1(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

// AddBias returns a[n×m] + bias[1×m], broadcasting the bias over rows.
func (t *Tape) AddBias(a, bias Value) Value {
	na, nb := &t.nodes[a.i], &t.nodes[bias.i]
	if nb.rows != 1 || nb.cols != na.cols {
		panic(fmt.Sprintf("ad: AddBias shape %d×%d + %d×%d", na.rows, na.cols, nb.rows, nb.cols))
	}
	ng := t.needsGrad(a.i) || t.needsGrad(bias.i)
	v, n := t.newNode(OpAddBias, a.i, bias.i, int(na.rows), int(na.cols), ng)
	av, bv, out := na.val, nb.val, n.val
	cols := int(na.cols)
	par.For(int(na.rows), func(s, e int) {
		for r := s; r < e; r++ {
			row := av[r*cols : (r+1)*cols]
			dst := out[r*cols : (r+1)*cols]
			for j, x := range row {
				dst[j] = x + bv[j]
			}
		}
	})
	return v
}

// RowScale returns a[n×c] scaled per row by s[n×1]: out[i,j] = a[i,j]*s[i].
func (t *Tape) RowScale(a, s Value) Value {
	na, ns := &t.nodes[a.i], &t.nodes[s.i]
	if ns.cols != 1 || ns.rows != na.rows {
		panic(fmt.Sprintf("ad: RowScale shape %d×%d by %d×%d", na.rows, na.cols, ns.rows, ns.cols))
	}
	ng := t.needsGrad(a.i) || t.needsGrad(s.i)
	v, n := t.newNode(OpRowScale, a.i, s.i, int(na.rows), int(na.cols), ng)
	av, sv, out := na.val, ns.val, n.val
	cols := int(na.cols)
	par.For(int(na.rows), func(st, e int) {
		for r := st; r < e; r++ {
			f := sv[r]
			row := av[r*cols : (r+1)*cols]
			dst := out[r*cols : (r+1)*cols]
			for j, x := range row {
				dst[j] = x * f
			}
		}
	})
	return v
}

// ScaleVar returns a * s for a differentiable 1×1 scalar s.
func (t *Tape) ScaleVar(a, s Value) Value {
	na, ns := &t.nodes[a.i], &t.nodes[s.i]
	if ns.rows != 1 || ns.cols != 1 {
		panic("ad: ScaleVar scalar must be 1×1")
	}
	ng := t.needsGrad(a.i) || t.needsGrad(s.i)
	v, n := t.newNode(OpScaleVar, a.i, s.i, int(na.rows), int(na.cols), ng)
	av, out := na.val, n.val
	f := ns.val[0]
	par.For(len(out), func(st, e int) {
		for i := st; i < e; i++ {
			out[i] = av[i] * f
		}
	})
	return v
}
