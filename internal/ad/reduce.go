package ad

// SumAll reduces a to its scalar sum, returned as a 1×1 node.
func (t *Tape) SumAll(a Value) Value {
	na := &t.nodes[a.i]
	v, n := t.newNode(OpSumAll, a.i, -1, 1, 1, t.needsGrad(a.i))
	var s float64
	for _, x := range na.val {
		s += x
	}
	n.val[0] = s
	return v
}

// MeanAll reduces a to its scalar mean, returned as a 1×1 node.
func (t *Tape) MeanAll(a Value) Value {
	na := &t.nodes[a.i]
	v, n := t.newNode(OpMeanAll, a.i, -1, 1, 1, t.needsGrad(a.i))
	var s float64
	for _, x := range na.val {
		s += x
	}
	n.val[0] = s / float64(len(na.val))
	return v
}

// SumSq reduces a to Σ a², returned as a 1×1 node. MSE(a) is
// Scale(SumSq(a), 1/len); the fused op halves the buffers on the residual
// hot path.
func (t *Tape) SumSq(a Value) Value {
	na := &t.nodes[a.i]
	v, n := t.newNode(OpSumSq, a.i, -1, 1, 1, t.needsGrad(a.i))
	var s float64
	for _, x := range na.val {
		s += x * x
	}
	n.val[0] = s
	return v
}

// MSE returns mean(a²) as a 1×1 node — the paper's MSE functional (eq. 15).
func (t *Tape) MSE(a Value) Value {
	na := &t.nodes[a.i]
	return t.Scale(t.SumSq(a), 1/float64(len(na.val)))
}

// AddScalars sums a list of 1×1 nodes (loss aggregation).
func (t *Tape) AddScalars(vals ...Value) Value {
	if len(vals) == 0 {
		panic("ad: AddScalars with no operands")
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = t.Add(acc, v)
	}
	return acc
}
