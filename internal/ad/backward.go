package ad

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Backward runs the reverse sweep from a scalar loss node, accumulating
// gradients into every node that requires them. It may be called once per
// tape build; leaf gradient buffers are zeroed at allocation, so parameter
// gradients read after Backward are exact (not accumulated across steps).
func (t *Tape) Backward(loss Value) {
	ln := &t.nodes[loss.i]
	if ln.rows != 1 || ln.cols != 1 {
		panic(fmt.Sprintf("ad: Backward on non-scalar %d×%d node", ln.rows, ln.cols))
	}
	if ln.grad == nil {
		return // loss independent of any differentiable input
	}
	ln.grad[0] = 1
	for i := int32(len(t.nodes)) - 1; i >= 0; i-- {
		n := &t.nodes[i]
		if n.grad == nil || n.op == OpLeaf || n.op == OpConst {
			continue
		}
		t.backprop(n)
	}
}

// gradOf returns the gradient buffer of node idx, or nil if it does not
// require gradients (accumulation into it is skipped).
func (t *Tape) gradOf(idx int32) []float64 {
	if idx < 0 {
		return nil
	}
	return t.nodes[idx].grad
}

func (t *Tape) backprop(n *node) {
	g := n.grad
	switch n.op {
	case OpAdd:
		if da := t.gradOf(n.a); da != nil {
			axpy(da, g, 1)
		}
		if db := t.gradOf(n.b); db != nil {
			axpy(db, g, 1)
		}
	case OpSub:
		if da := t.gradOf(n.a); da != nil {
			axpy(da, g, 1)
		}
		if db := t.gradOf(n.b); db != nil {
			axpy(db, g, -1)
		}
	case OpMul:
		av, bv := t.nodes[n.a].val, t.nodes[n.b].val
		if da := t.gradOf(n.a); da != nil {
			par.For(len(g), func(s, e int) {
				for i := s; i < e; i++ {
					da[i] += g[i] * bv[i]
				}
			})
		}
		if db := t.gradOf(n.b); db != nil {
			par.For(len(g), func(s, e int) {
				for i := s; i < e; i++ {
					db[i] += g[i] * av[i]
				}
			})
		}
	case OpDiv:
		av, bv := t.nodes[n.a].val, t.nodes[n.b].val
		if da := t.gradOf(n.a); da != nil {
			par.For(len(g), func(s, e int) {
				for i := s; i < e; i++ {
					da[i] += g[i] / bv[i]
				}
			})
		}
		if db := t.gradOf(n.b); db != nil {
			par.For(len(g), func(s, e int) {
				for i := s; i < e; i++ {
					db[i] -= g[i] * av[i] / (bv[i] * bv[i])
				}
			})
		}
	case OpScale:
		if da := t.gradOf(n.a); da != nil {
			axpy(da, g, n.c)
		}
	case OpShift:
		if da := t.gradOf(n.a); da != nil {
			axpy(da, g, 1)
		}
	case OpNeg:
		if da := t.gradOf(n.a); da != nil {
			axpy(da, g, -1)
		}
	case OpSin:
		t.unaryBack(n, func(x, y float64) float64 { return math.Cos(x) })
	case OpCos:
		t.unaryBack(n, func(x, y float64) float64 { return -math.Sin(x) })
	case OpTanh:
		t.unaryBack(n, func(x, y float64) float64 { return 1 - y*y })
	case OpExp:
		t.unaryBack(n, func(x, y float64) float64 { return y })
	case OpSquare:
		t.unaryBack(n, func(x, y float64) float64 { return 2 * x })
	case OpSqrt:
		t.unaryBack(n, func(x, y float64) float64 { return 0.5 / y })
	case OpAsin:
		t.unaryBack(n, func(x, y float64) float64 {
			return 1 / math.Sqrt(math.Max(1-x*x, asinEps))
		})
	case OpAcos:
		t.unaryBack(n, func(x, y float64) float64 {
			return -1 / math.Sqrt(math.Max(1-x*x, asinEps))
		})
	case OpClamp:
		av := t.nodes[n.a].val
		if da := t.gradOf(n.a); da != nil {
			c := n.c
			par.For(len(g), func(s, e int) {
				for i := s; i < e; i++ {
					if av[i] > -c && av[i] < c {
						da[i] += g[i]
					}
				}
			})
		}
	case OpMatMul:
		na, nb := &t.nodes[n.a], &t.nodes[n.b]
		rows, k, m := int(na.rows), int(na.cols), int(nb.cols)
		if da := t.gradOf(n.a); da != nil {
			mmNTAcc(da, g, nb.val, rows, m, k)
		}
		if db := t.gradOf(n.b); db != nil {
			mmTNAcc(db, na.val, g, rows, k, m)
		}
	case OpMatMulC:
		na := &t.nodes[n.a]
		if da := t.gradOf(n.a); da != nil {
			mmNTAcc(da, g, n.cm, int(na.rows), int(n.cmCols), int(na.cols))
		}
	case OpAddBias:
		if da := t.gradOf(n.a); da != nil {
			axpy(da, g, 1)
		}
		if db := t.gradOf(n.b); db != nil {
			cols := int(n.cols)
			for r := 0; r < int(n.rows); r++ {
				gr := g[r*cols : (r+1)*cols]
				for j, x := range gr {
					db[j] += x
				}
			}
		}
	case OpRowScale:
		na, ns := &t.nodes[n.a], &t.nodes[n.b]
		cols := int(n.cols)
		da, ds := t.gradOf(n.a), t.gradOf(n.b)
		par.For(int(n.rows), func(s, e int) {
			for r := s; r < e; r++ {
				gr := g[r*cols : (r+1)*cols]
				if da != nil {
					f := ns.val[r]
					dr := da[r*cols : (r+1)*cols]
					for j, x := range gr {
						dr[j] += x * f
					}
				}
				if ds != nil {
					ar := na.val[r*cols : (r+1)*cols]
					var sum float64
					for j, x := range gr {
						sum += x * ar[j]
					}
					ds[r] += sum
				}
			}
		})
	case OpScaleVar:
		na, ns := &t.nodes[n.a], &t.nodes[n.b]
		if da := t.gradOf(n.a); da != nil {
			axpy(da, g, ns.val[0])
		}
		if ds := t.gradOf(n.b); ds != nil {
			var sum float64
			for i, x := range g {
				sum += x * na.val[i]
			}
			ds[0] += sum
		}
	case OpSelectCols:
		if da := t.gradOf(n.a); da != nil {
			cols := int(t.nodes[n.a].cols)
			w := int(n.cols)
			idx := n.idx
			par.For(int(n.rows), func(s, e int) {
				for r := s; r < e; r++ {
					gr := g[r*w : (r+1)*w]
					dr := da[r*cols:]
					for j, k := range idx {
						dr[k] += gr[j]
					}
				}
			})
		}
	case OpPlaceCols:
		if da := t.gradOf(n.a); da != nil {
			c := int(n.cols)
			w := int(t.nodes[n.a].cols)
			idx := n.idx
			par.For(int(n.rows), func(s, e int) {
				for r := s; r < e; r++ {
					gr := g[r*c:]
					dr := da[r*w : (r+1)*w]
					for j, k := range idx {
						dr[j] += gr[k]
					}
				}
			})
		}
	case OpSelectRows:
		if da := t.gradOf(n.a); da != nil {
			c := int(n.cols)
			idx := n.idx
			par.For(len(idx), func(s, e int) {
				for j := s; j < e; j++ {
					gr := g[j*c : (j+1)*c]
					dr := da[idx[j]*c : (idx[j]+1)*c]
					for i, x := range gr {
						dr[i] += x
					}
				}
			})
		}
	case OpConcatCols:
		na, nb := &t.nodes[n.a], &t.nodes[n.b]
		ca, cb := int(na.cols), int(nb.cols)
		w := ca + cb
		da, db := t.gradOf(n.a), t.gradOf(n.b)
		par.For(int(n.rows), func(s, e int) {
			for r := s; r < e; r++ {
				if da != nil {
					gr := g[r*w : r*w+ca]
					dr := da[r*ca : (r+1)*ca]
					for i, x := range gr {
						dr[i] += x
					}
				}
				if db != nil {
					gr := g[r*w+ca : (r+1)*w]
					dr := db[r*cb : (r+1)*cb]
					for i, x := range gr {
						dr[i] += x
					}
				}
			}
		})
	case OpSumAll:
		if da := t.gradOf(n.a); da != nil {
			g0 := g[0]
			par.For(len(da), func(s, e int) {
				for i := s; i < e; i++ {
					da[i] += g0
				}
			})
		}
	case OpMeanAll:
		if da := t.gradOf(n.a); da != nil {
			g0 := g[0] / float64(len(da))
			par.For(len(da), func(s, e int) {
				for i := s; i < e; i++ {
					da[i] += g0
				}
			})
		}
	case OpSumSq:
		if da := t.gradOf(n.a); da != nil {
			av := t.nodes[n.a].val
			g0 := 2 * g[0]
			par.For(len(da), func(s, e int) {
				for i := s; i < e; i++ {
					da[i] += g0 * av[i]
				}
			})
		}
	case OpCustom:
		if n.backward != nil {
			n.backward()
		}
	default:
		panic(fmt.Sprintf("ad: backprop for op %d not implemented", n.op))
	}
}

// unaryBack applies da += g ⊙ d(x,y) where d receives the input value x and
// output value y of the unary op.
func (t *Tape) unaryBack(n *node, d func(x, y float64) float64) {
	da := t.gradOf(n.a)
	if da == nil {
		return
	}
	av := t.nodes[n.a].val
	g, y := n.grad, n.val
	par.For(len(g), func(s, e int) {
		for i := s; i < e; i++ {
			da[i] += g[i] * d(av[i], y[i])
		}
	})
}

// axpy computes dst += c * src.
func axpy(dst, src []float64, c float64) {
	par.For(len(dst), func(s, e int) {
		for i := s; i < e; i++ {
			dst[i] += c * src[i]
		}
	})
}
