// Package par provides the parallel-execution substrate used throughout the
// repository. It is the CPU stand-in for the GPU parallelism of the paper's
// TorQ simulator: batched tensor kernels are expressed as parallel loops over
// contiguous row blocks, which the runtime fans out across cores.
//
// All entry points dispatch onto a persistent worker pool, so a parallel
// region costs one synchronization rather than one goroutine spawn per
// block. For/ForGrain are the per-kernel loops; Run is the region API used
// by the fused circuit-execution engine to pay a single fork/join for an
// entire compiled program instead of one per gate.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// grain is the minimum number of items a goroutine must receive before the
// loop is worth splitting. Below this, scheduling overhead dominates.
const grain = 2048

// maxWorkers bounds concurrency to the number of usable CPUs. It is read on
// every loop entry — possibly from inside pool workers while a benchmark
// goroutine toggles the bound — so access is atomic.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers overrides the worker bound (primarily for tests and
// benchmarks that measure serial baselines). n < 1 resets to GOMAXPROCS.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers.Store(int64(n))
}

// MaxWorkers reports the current worker bound.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// pool is the persistent worker set. The job channel is unbuffered: a send
// succeeds only when a worker is parked and ready to run the job now, so a
// job can never sit queued behind workers that are blocked inside a nested
// region's join — submission either hands off to an idle worker or falls
// back to a fresh goroutine, and nested parallel regions cannot deadlock.
var pool struct {
	once sync.Once
	jobs chan func()
}

func ensurePool() {
	pool.once.Do(func() {
		n := runtime.GOMAXPROCS(0)
		pool.jobs = make(chan func())
		for i := 0; i < n; i++ {
			go func() {
				for f := range pool.jobs {
					f()
				}
			}()
		}
	})
}

// dispatch hands f to an idle persistent worker, spawning a fresh goroutine
// when none is ready.
func dispatch(f func()) {
	ensurePool()
	select {
	case pool.jobs <- f:
	default:
		go f()
	}
}

// forBlocks splits [0,n) into `workers` contiguous blocks, runs all but the
// last on the pool and the last inline on the caller, and waits for all.
func forBlocks(n, workers int, fn func(worker, lo, hi int)) {
	block := (n + workers - 1) / workers
	var wg sync.WaitGroup
	worker := 0
	for start := 0; start < n; start += block {
		end := start + block
		if end > n {
			end = n
		}
		if end == n {
			fn(worker, start, end)
			break
		}
		wg.Add(1)
		w, s, e := worker, start, end
		dispatch(func() {
			defer wg.Done()
			fn(w, s, e)
		})
		worker++
	}
	wg.Wait()
}

// For runs fn over [0,n) split into contiguous blocks, one block per worker.
// fn must be safe to run concurrently on disjoint index ranges. For small n
// the loop runs inline on the calling goroutine.
func For(n int, fn func(start, end int)) {
	ForGrain(n, 1, fn)
}

// ForGrain is For with a caller-chosen grain, for kernels whose per-item cost
// is far from the elementwise default (e.g. a row of a wide matmul).
func ForGrain(n, itemCost int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if itemCost < 1 {
		itemCost = 1
	}
	workers := MaxWorkers()
	if w := n * itemCost / grain; w < workers {
		workers = w
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	forBlocks(n, workers, func(_, lo, hi int) { fn(lo, hi) })
}

// Run is the region API: it splits [0,n) into at most MaxWorkers()
// contiguous chunks and executes fn(worker, lo, hi) for each on the
// persistent pool, with a single fork/join for the whole region. Unlike
// For/ForGrain it applies no grain heuristic — callers use it for regions
// whose per-item work is substantial (e.g. streaming a whole compiled
// circuit program over a sample range). Worker indices are dense, unique
// within one call, and always in [0, MaxWorkers()), so fn may accumulate
// into MaxWorkers()-sized per-worker slots without atomics.
func Run(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	forBlocks(n, workers, fn)
}
