// Package par provides the parallel-execution substrate used throughout the
// repository. It is the CPU stand-in for the GPU parallelism of the paper's
// TorQ simulator: batched tensor kernels are expressed as parallel loops over
// contiguous row blocks, which the runtime fans out across cores.
package par

import (
	"runtime"
	"sync"
)

// grain is the minimum number of items a goroutine must receive before the
// loop is worth splitting. Below this, scheduling overhead dominates.
const grain = 2048

// maxWorkers bounds concurrency to the number of usable CPUs.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the worker bound (primarily for tests and
// benchmarks that measure serial baselines). n < 1 resets to GOMAXPROCS.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
}

// MaxWorkers reports the current worker bound.
func MaxWorkers() int { return maxWorkers }

// For runs fn over [0,n) split into contiguous blocks, one block per worker.
// fn must be safe to run concurrently on disjoint index ranges. For small n
// the loop runs inline on the calling goroutine.
func For(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if w := n / grain; w < workers {
		workers = w
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	block := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += block {
		end := start + block
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// ForGrain is For with a caller-chosen grain, for kernels whose per-item cost
// is far from the elementwise default (e.g. a row of a wide matmul).
func ForGrain(n, itemCost int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if itemCost < 1 {
		itemCost = 1
	}
	workers := maxWorkers
	if w := n * itemCost / grain; w < workers {
		workers = w
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	block := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += block {
		end := start + block
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}
