// Package par provides the parallel-execution substrate used throughout the
// repository. It is the CPU stand-in for the GPU parallelism of the paper's
// TorQ simulator: batched tensor kernels are expressed as parallel loops over
// contiguous row blocks, which the runtime fans out across cores.
//
// All entry points dispatch onto a persistent worker pool, so a parallel
// region costs one synchronization rather than one goroutine spawn per
// block. For/ForGrain are the per-kernel loops; Run and RunChunk are the
// region APIs used by the fused and sharded circuit-execution engines to pay
// a single fork/join for an entire compiled program instead of one per gate.
//
// Regions are scheduled by a chunked work-stealing scheduler: the range is
// split into chunks, each worker owns a deque seeded with a contiguous span
// of them, and a worker whose deque runs dry steals the top half of a
// victim's remaining span. Uniform workloads execute exactly as the old
// static split did (every chunk is consumed by its seeded owner); irregular
// workloads — noise trajectories, mixed fused/legacy comparators — no longer
// idle the pool behind the slowest block. SetScheduler(SchedStatic) restores
// the fixed PR-1 split for A/B measurements.
//
// # Invariants
//
// RunChunk's partition of [0, n) depends only on (n, chunk): fn is invoked
// exactly once per chunk, every chunk starts at a multiple of chunk, and
// neither the worker bound, the scheduler, nor the chunk-group multiplier
// (SetChunkGroup) changes which [lo, hi) ranges fn sees. Grouping and
// stealing only move whole chunks between workers; they never split, merge,
// or reorder the per-chunk accumulator slots callers key off lo/chunk. This
// is the foundation the sharded engine's bit-identical merge order is built
// on: any floating-point reduction keyed per chunk is invariant across
// worker counts, scheduler choice, and any runtime re-tuning.
//
// Scheduler telemetry (Stats) is exported through plain atomic counters so
// the ftdc recorder can snapshot it off the hot path; counter increments are
// the only cost the telemetry adds to a region.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// grain is the minimum number of items a goroutine must receive before the
// loop is worth splitting. Below this, scheduling overhead dominates.
const grain = 2048

// stealSpread is how many chunks per worker Run carves a region into when
// the caller does not pick a chunk size: enough slack for stealing to
// rebalance, coarse enough that deque traffic stays negligible.
const stealSpread = 8

// maxWorkers bounds concurrency to the number of usable CPUs. It is read on
// every loop entry — possibly from inside pool workers while a benchmark
// goroutine toggles the bound — so access is atomic.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers overrides the worker bound (primarily for tests and
// benchmarks that measure serial baselines). n < 1 resets to GOMAXPROCS.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers.Store(int64(n))
}

// MaxWorkers reports the current worker bound.
//
//torq:nolock
func MaxWorkers() int { return int(maxWorkers.Load()) }

// Scheduler selects how region APIs distribute chunks across workers.
type Scheduler uint8

const (
	// SchedSteal is the default: per-worker deques with chunked stealing.
	SchedSteal Scheduler = iota
	// SchedStatic is the PR-1 fixed contiguous split, kept selectable as the
	// A/B baseline for the stealing scheduler.
	SchedStatic
)

func (s Scheduler) String() string {
	if s == SchedStatic {
		return "static"
	}
	return "steal"
}

// SchedStats is a snapshot of the region scheduler's cumulative telemetry:
// how many regions ran, how many chunks they executed, how many scheduling
// units (chunk groups) those chunks were bound into, and how many steals
// rebalanced units between workers. The steals/units ratio is the signal the
// auto-tuner sizes granularity from: steals far below the unit count mean
// the load is uniform and the fine units are pure scheduling overhead —
// coarsen the grouping; steals rivaling the unit count mean the pool is
// rebalancing constantly off an irregular load — refine the grouping so
// thieves can grab closer-to-even shares.
type SchedStats struct {
	Regions uint64 // region entries (Run/RunChunk/For families, serial fast paths included)
	Chunks  uint64 // chunk executions (a serial fast-path region counts as one chunk)
	Groups  uint64 // scheduling units: chunks/ChunkGroup per region, the deques' currency
	Steals  uint64 // successful steal operations (each moves ≥1 unit)
}

var statRegions, statChunks, statGroups, statSteals atomic.Uint64

// Stats returns the cumulative scheduler telemetry since process start or
// the last ResetStats. The counters are updated atomically but read
// individually, so a snapshot taken while regions are in flight is
// approximate — quiesce first for exact accounting.
//
//torq:nolock
func Stats() SchedStats {
	return SchedStats{
		Regions: statRegions.Load(),
		Chunks:  statChunks.Load(),
		Groups:  statGroups.Load(),
		Steals:  statSteals.Load(),
	}
}

// ResetStats zeroes the scheduler telemetry counters.
//
//torq:nolock
func ResetStats() {
	statRegions.Store(0)
	statChunks.Store(0)
	statGroups.Store(0)
	statSteals.Store(0)
}

// maxChunkGroup bounds the group multiplier: beyond this, grouping has long
// since flattened deque traffic and only erodes parallelism (a region with
// fewer groups than workers caps its own worker count).
const maxChunkGroup = 64

// chunkGroup is the number of consecutive chunks a stealing region binds
// into one scheduling unit. It tunes only how much work moves per deque
// operation: within a unit the chunks still execute one fn call each, in
// ascending order, against the same lo/chunk-keyed accumulator slots, so
// every setting produces bit-identical results (see the package invariants).
// Written by the ftdc auto-tuner between samples, read at region entry.
var chunkGroup atomic.Int64

func init() { chunkGroup.Store(1) }

// SetChunkGroup sets how many consecutive chunks stealing regions schedule
// as one unit. m ≤ 1 restores per-chunk scheduling; values above the
// internal cap are clamped. Safe to call while regions are in flight — a
// region reads the multiplier once at entry.
func SetChunkGroup(m int) {
	if m < 1 {
		m = 1
	}
	if m > maxChunkGroup {
		m = maxChunkGroup
	}
	chunkGroup.Store(int64(m))
}

// ChunkGroup reports the current chunk-group multiplier.
//
//torq:nolock
func ChunkGroup() int { return int(chunkGroup.Load()) }

// schedMode holds the current Scheduler. Like maxWorkers it may be toggled
// by a benchmark goroutine while regions are in flight, so access is atomic.
var schedMode atomic.Int64

// SetScheduler selects the region scheduling strategy.
func SetScheduler(s Scheduler) { schedMode.Store(int64(s)) }

// CurrentScheduler reports the active region scheduling strategy.
func CurrentScheduler() Scheduler { return Scheduler(schedMode.Load()) }

// pool is the persistent worker set. The job channel is unbuffered: a send
// succeeds only when a worker is parked and ready to run the job now, so a
// job can never sit queued behind workers that are blocked inside a nested
// region's join — submission either hands off to an idle worker or falls
// back to a fresh goroutine, and nested parallel regions cannot deadlock.
var pool struct {
	once sync.Once
	jobs chan func()
}

func ensurePool() {
	pool.once.Do(func() {
		n := runtime.GOMAXPROCS(0)
		pool.jobs = make(chan func())
		for i := 0; i < n; i++ {
			go func() {
				for f := range pool.jobs {
					f()
				}
			}()
		}
	})
}

// dispatch hands f to an idle persistent worker, spawning a fresh goroutine
// when none is ready.
func dispatch(f func()) {
	ensurePool()
	select {
	case pool.jobs <- f:
	default:
		go f()
	}
}

// chunkDeque is one worker's share of a region: a contiguous range of
// scheduling-unit indices [lo, hi). The owner pops single units from the
// bottom; thieves remove the top half of the remaining range in one
// operation (chunked stealing), so a steal costs one lock acquisition
// regardless of how much work it transfers. A plain mutex suffices at this
// granularity — each unit is one or more whole sample blocks streamed
// through a compiled program, so deque operations are orders of magnitude
// rarer than amplitude updates.
type chunkDeque struct {
	mu     sync.Mutex
	lo, hi int
}

// paddedDeque keeps each worker's deque on its own cache lines. The deques
// of a region used to share an unpadded array, so every owner pop bounced
// the same lines between the cores polling their neighbours for steals.
type paddedDeque struct {
	chunkDeque
	_ [128 - unsafe.Sizeof(chunkDeque{})%128]byte
}

// dequePool recycles deque arrays across regions. Reuse matters twice over:
// it removes the per-region allocation from the epoch hot path, and it keeps
// each worker's deque on the pages the worker already touched — on NUMA
// machines first-touch placement makes a recycled deque local to the socket
// that has been using it, where a fresh allocation lands wherever the
// region-entering goroutine happens to run. A pool (rather than one global
// array) is required because regions nest: an inner region on a pool worker
// must not scribble over its enclosing region's live deques.
var dequePool sync.Pool

func getDeques(workers int) []paddedDeque {
	if v := dequePool.Get(); v != nil {
		if d := v.([]paddedDeque); cap(d) >= workers {
			return d[:workers]
		}
	}
	return make([]paddedDeque, workers)
}

func putDeques(d []paddedDeque) { dequePool.Put(d[:cap(d)]) }

// pop removes the bottom chunk for the owning worker.
func (d *chunkDeque) pop() (int, bool) {
	d.mu.Lock()
	if d.lo >= d.hi {
		d.mu.Unlock()
		return 0, false
	}
	c := d.lo
	d.lo++
	d.mu.Unlock()
	return c, true
}

// stealHalf removes the top half (rounded up) of the victim's remaining
// chunks and returns the stolen index range.
func (d *chunkDeque) stealHalf() (lo, hi int, ok bool) {
	d.mu.Lock()
	rem := d.hi - d.lo
	if rem <= 0 {
		d.mu.Unlock()
		return 0, 0, false
	}
	take := (rem + 1) / 2
	lo, hi = d.hi-take, d.hi
	d.hi = lo
	d.mu.Unlock()
	return lo, hi, true
}

// refill publishes a stolen chunk range as the (empty) deque's new content.
func (d *chunkDeque) refill(lo, hi int) {
	d.mu.Lock()
	d.lo, d.hi = lo, hi
	d.mu.Unlock()
}

// region executes fn once per chunk of [0, n) on `workers` goroutines with
// dense worker ids. Chunk c covers [c*chunk, min((c+1)*chunk, n)). When
// steal is set, consecutive chunks are bound into groups of ChunkGroup() and
// the groups become the scheduling unit: deques are seeded with contiguous
// group spans split as evenly as possible, and a worker that drains its own
// deque takes half of a victim's remaining span and continues. Executing a
// group calls fn once per member chunk in ascending order, so grouping is
// invisible to callers beyond which worker runs which chunk. Work is never
// orphaned: groups live in exactly one deque until popped, a thief
// immediately republishes what it stole into its own (empty) deque, and a
// worker only exits with an empty deque after a full scan finds every other
// deque empty — any groups that appear after that scan belong to a
// still-live worker that drains its own deque before exiting.
//
// Deque seeding doubles as the NUMA placement policy: worker w's seeded span
// is the same contiguous range of chunks every time a region of the same
// shape runs, so across the repeated passes of a training loop each worker
// keeps touching the same slice of the sample arrays and first-touch pages
// stay local. Stealing only migrates span tails, and only when the load is
// actually imbalanced.
func region(n, chunk, workers int, steal bool, fn func(worker, lo, hi int)) {
	nch := (n + chunk - 1) / chunk
	group := 1
	if steal {
		if g := int(chunkGroup.Load()); g > 1 {
			group = g
		}
	}
	ngr := (nch + group - 1) / group
	statRegions.Add(1)
	statChunks.Add(uint64(nch))
	statGroups.Add(uint64(ngr))
	if workers > ngr {
		workers = ngr
	}
	if workers <= 1 {
		for lo := 0; lo < n; lo += chunk {
			fn(0, lo, min(lo+chunk, n))
		}
		return
	}
	deques := getDeques(workers)
	per, extra := ngr/workers, ngr%workers
	start := 0
	for w := 0; w < workers; w++ {
		cnt := per
		if w < extra {
			cnt++
		}
		deques[w].lo, deques[w].hi = start, start+cnt
		start += cnt
	}
	body := func(w int) {
		self := &deques[w].chunkDeque
		for {
			if g, ok := self.pop(); ok {
				last := min((g+1)*group, nch)
				for c := g * group; c < last; c++ {
					fn(w, c*chunk, min((c+1)*chunk, n))
				}
				continue
			}
			if !steal {
				return
			}
			stolen := false
			for i := 1; i < workers; i++ {
				if lo, hi, ok := deques[(w+i)%workers].stealHalf(); ok {
					self.refill(lo, hi)
					statSteals.Add(1)
					stolen = true
					break
				}
			}
			if !stolen {
				return
			}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		w := w
		dispatch(func() {
			defer wg.Done()
			body(w)
		})
	}
	body(workers - 1)
	wg.Wait()
	putDeques(deques)
}

// forBlocks splits [0,n) into `workers` contiguous blocks, one fn call per
// worker — the static split used by the elementwise loops and by
// SchedStatic regions.
func forBlocks(n, workers int, fn func(worker, lo, hi int)) {
	region(n, (n+workers-1)/workers, workers, false, fn)
}

// For runs fn over [0,n) split into contiguous blocks, one block per worker.
// fn must be safe to run concurrently on disjoint index ranges. For small n
// the loop runs inline on the calling goroutine.
func For(n int, fn func(start, end int)) {
	ForGrain(n, 1, fn)
}

// ForGrain is For with a caller-chosen grain, for kernels whose per-item cost
// is far from the elementwise default (e.g. a row of a wide matmul). The
// elementwise loops keep the static split: their per-item cost is uniform by
// construction, so stealing could only add deque traffic.
func ForGrain(n, itemCost int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if itemCost < 1 {
		itemCost = 1
	}
	workers := MaxWorkers()
	if w := n * itemCost / grain; w < workers {
		workers = w
	}
	if workers <= 1 {
		statRegions.Add(1)
		statChunks.Add(1)
		statGroups.Add(1)
		fn(0, n)
		return
	}
	forBlocks(n, workers, func(_, lo, hi int) { fn(lo, hi) })
}

// Run is the region API: it executes fn(worker, lo, hi) over [0,n) on the
// persistent pool with a single fork/join for the whole region, and no grain
// heuristic — callers use it for regions whose per-item work is substantial
// (e.g. streaming a whole compiled circuit program over a sample range).
// Worker indices are dense, unique per concurrent goroutine, and always in
// [0, MaxWorkers()), so fn may accumulate into MaxWorkers()-sized per-worker
// slots without atomics. Under the default stealing scheduler the region is
// carved into several chunks per worker and fn may be invoked multiple times
// per worker (contiguous [lo, hi) each time); under SchedStatic each worker
// receives exactly one contiguous block, as in PR 1. Callers needing
// worker-count-independent reduction order should use RunChunk and
// accumulate per chunk instead of per worker.
func Run(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		statRegions.Add(1)
		statChunks.Add(1)
		statGroups.Add(1)
		fn(0, 0, n)
		return
	}
	if CurrentScheduler() == SchedStatic {
		forBlocks(n, workers, fn)
		return
	}
	chunk := (n + workers*stealSpread - 1) / (workers * stealSpread)
	region(n, chunk, workers, true, fn)
}

// RunChunk is Run with a caller-chosen chunk size and a hard guarantee the
// sharded engine's determinism is built on: fn is invoked exactly once per
// chunk, every chunk starts at a multiple of `chunk`, and the partition
// depends only on (n, chunk) — never on the worker bound or the scheduler.
// lo/chunk therefore indexes a stable per-chunk accumulator slot. The chunk
// size is also the unit of stealing, so callers pick it to match their
// cache-blocked inner loops.
func RunChunk(n, chunk int, fn func(worker, lo, hi int)) {
	RunChunkBounded(n, chunk, MaxWorkers(), fn)
}

// RunChunkBounded is RunChunk with an explicit cap on the worker count in
// addition to the live bound. Callers that size per-worker accumulator slots
// from their own MaxWorkers() read pass that same value here: the region
// otherwise re-reads the bound at entry, and a concurrent SetMaxWorkers
// increase between the two reads could hand fn a worker id past their slots.
func RunChunkBounded(n, chunk, bound int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	workers := MaxWorkers()
	if bound < workers {
		workers = bound
	}
	if workers < 1 {
		workers = 1
	}
	region(n, chunk, workers, CurrentScheduler() != SchedStatic, fn)
}
