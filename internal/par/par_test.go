package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestForCoversRangeExactlyOnce: every index is visited exactly once, for
// sizes spanning the serial and parallel regimes.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, grain - 1, grain, grain + 1, 10 * grain} {
		visits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestForGrainProperty: arbitrary sizes and item costs still partition the
// range exactly.
func TestForGrainProperty(t *testing.T) {
	f := func(rawN uint16, rawCost uint8) bool {
		n := int(rawN) % 5000
		var total int64
		ForGrain(n, int(rawCost), func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBlocksAreContiguousAndOrderedWithinBlock: callers rely on [lo, hi)
// semantics for race-free writes to disjoint slices.
func TestBlocksAreContiguousAndOrderedWithinBlock(t *testing.T) {
	n := 4 * grain
	out := make([]int, n)
	For(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad block [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			out[i] = i
		}
	})
	for i, v := range out {
		if v != i {
			t.Fatalf("index %d got %d", i, v)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(1)
	if MaxWorkers() != 1 {
		t.Fatal("worker bound not applied")
	}
	// Serial mode still covers the range.
	var count int
	For(3*grain, func(lo, hi int) { count += hi - lo })
	if count != 3*grain {
		t.Fatalf("serial coverage %d", count)
	}
	SetMaxWorkers(0)
	if MaxWorkers() < 1 {
		t.Fatal("reset failed")
	}
}
