package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestForCoversRangeExactlyOnce: every index is visited exactly once, for
// sizes spanning the serial and parallel regimes.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, grain - 1, grain, grain + 1, 10 * grain} {
		visits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestForGrainProperty: arbitrary sizes and item costs still partition the
// range exactly.
func TestForGrainProperty(t *testing.T) {
	f := func(rawN uint16, rawCost uint8) bool {
		n := int(rawN) % 5000
		var total int64
		ForGrain(n, int(rawCost), func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBlocksAreContiguousAndOrderedWithinBlock: callers rely on [lo, hi)
// semantics for race-free writes to disjoint slices.
func TestBlocksAreContiguousAndOrderedWithinBlock(t *testing.T) {
	n := 4 * grain
	out := make([]int, n)
	For(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad block [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			out[i] = i
		}
	})
	for i, v := range out {
		if v != i {
			t.Fatalf("index %d got %d", i, v)
		}
	}
}

// TestRunCoversRangeWithDenseWorkerIDs: Run partitions [0,n) exactly and
// hands out worker indices usable as per-worker accumulator slots.
func TestRunCoversRangeWithDenseWorkerIDs(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100, 100000} {
		visits := make([]int32, n)
		partials := make([]int64, MaxWorkers())
		var mu sync.Mutex
		seen := map[int]bool{}
		Run(n, func(worker, lo, hi int) {
			if worker < 0 || worker >= MaxWorkers() {
				t.Errorf("worker %d out of range [0, %d)", worker, MaxWorkers())
			}
			mu.Lock()
			if seen[worker] {
				t.Errorf("worker id %d reused within one region", worker)
			}
			seen[worker] = true
			mu.Unlock()
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
			partials[worker] += int64(hi - lo)
		})
		var total int64
		for _, p := range partials {
			total += p
		}
		if total != int64(n) {
			t.Fatalf("n=%d: per-worker partials sum to %d", n, total)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestRunNested: a Run region launched from inside a pool worker must not
// deadlock (submission falls back to fresh goroutines when the pool is busy).
func TestRunNested(t *testing.T) {
	var total int64
	Run(64, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			Run(8, func(_, l, h int) {
				atomic.AddInt64(&total, int64(h-l))
			})
		}
	})
	if total != 64*8 {
		t.Fatalf("nested coverage %d", total)
	}
}

// TestSetMaxWorkersConcurrent hammers the worker bound from one goroutine
// while parallel regions are in flight on another — the exact interleaving
// the CI race job sees when benchmarks toggle the bound. Run under -race
// this pins that the bound is accessed atomically; the coverage invariant
// (every region still visits its whole range) must hold for every bound the
// regions observe.
func TestSetMaxWorkersConcurrent(t *testing.T) {
	defer SetMaxWorkers(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			SetMaxWorkers(i%4 + 1)
		}
	}()
	for i := 0; i < 200; i++ {
		var total int64
		Run(64, func(_, lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != 64 {
			t.Fatalf("iteration %d: coverage %d", i, total)
		}
		var count int64
		ForGrain(3*grain, 1, func(lo, hi int) {
			atomic.AddInt64(&count, int64(hi-lo))
		})
		if count != int64(3*grain) {
			t.Fatalf("iteration %d: grain coverage %d", i, count)
		}
	}
	<-done
}

func TestSetMaxWorkers(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(1)
	if MaxWorkers() != 1 {
		t.Fatal("worker bound not applied")
	}
	// Serial mode still covers the range.
	var count int
	For(3*grain, func(lo, hi int) { count += hi - lo })
	if count != 3*grain {
		t.Fatalf("serial coverage %d", count)
	}
	SetMaxWorkers(0)
	if MaxWorkers() < 1 {
		t.Fatal("reset failed")
	}
}
