package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestForCoversRangeExactlyOnce: every index is visited exactly once, for
// sizes spanning the serial and parallel regimes.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, grain - 1, grain, grain + 1, 10 * grain} {
		visits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestForGrainProperty: arbitrary sizes and item costs still partition the
// range exactly.
func TestForGrainProperty(t *testing.T) {
	f := func(rawN uint16, rawCost uint8) bool {
		n := int(rawN) % 5000
		var total int64
		ForGrain(n, int(rawCost), func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBlocksAreContiguousAndOrderedWithinBlock: callers rely on [lo, hi)
// semantics for race-free writes to disjoint slices.
func TestBlocksAreContiguousAndOrderedWithinBlock(t *testing.T) {
	n := 4 * grain
	out := make([]int, n)
	For(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad block [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			out[i] = i
		}
	})
	for i, v := range out {
		if v != i {
			t.Fatalf("index %d got %d", i, v)
		}
	}
}

// TestRunCoversRangeWithDenseWorkerIDs: under both schedulers Run partitions
// [0,n) exactly and hands out worker indices usable as per-worker accumulator
// slots. Under the stealing scheduler a worker may receive several contiguous
// ranges; under the static one each worker is called exactly once.
func TestRunCoversRangeWithDenseWorkerIDs(t *testing.T) {
	defer SetScheduler(SchedSteal)
	for _, sched := range []Scheduler{SchedSteal, SchedStatic} {
		SetScheduler(sched)
		for _, n := range []int{0, 1, 3, 100, 100000} {
			visits := make([]int32, n)
			partials := make([]int64, MaxWorkers())
			var mu sync.Mutex
			calls := map[int]int{}
			Run(n, func(worker, lo, hi int) {
				if worker < 0 || worker >= MaxWorkers() {
					t.Errorf("worker %d out of range [0, %d)", worker, MaxWorkers())
				}
				mu.Lock()
				calls[worker]++
				mu.Unlock()
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
				partials[worker] += int64(hi - lo)
			})
			if sched == SchedStatic {
				//torq:allow maprange -- independent per-worker assertions
				for w, c := range calls {
					if c > 1 {
						t.Errorf("static: worker id %d called %d times within one region", w, c)
					}
				}
			}
			var total int64
			for _, p := range partials {
				total += p
			}
			if total != int64(n) {
				t.Fatalf("%v n=%d: per-worker partials sum to %d", sched, n, total)
			}
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("%v n=%d: index %d visited %d times", sched, n, i, v)
				}
			}
		}
	}
}

// TestRunChunkPartitionStable pins the contract the sharded engine's
// determinism rests on: RunChunk invokes fn exactly once per chunk, chunk
// boundaries depend only on (n, chunk), and the partition is identical for
// every worker bound and scheduler.
func TestRunChunkPartitionStable(t *testing.T) {
	defer SetMaxWorkers(0)
	defer SetScheduler(SchedSteal)
	cases := []struct{ n, chunk int }{{1, 1}, {7, 3}, {64, 8}, {100, 7}, {512, 5}}
	for _, c := range cases {
		want := map[int]int{} // lo → hi from the serial run
		SetMaxWorkers(1)
		RunChunk(c.n, c.chunk, func(_, lo, hi int) {
			if lo%c.chunk != 0 {
				t.Errorf("n=%d chunk=%d: lo %d not a chunk multiple", c.n, c.chunk, lo)
			}
			want[lo] = hi
		})
		for _, workers := range []int{3, 8} {
			for _, sched := range []Scheduler{SchedSteal, SchedStatic} {
				SetScheduler(sched)
				SetMaxWorkers(workers)
				var mu sync.Mutex
				got := map[int]int{}
				RunChunk(c.n, c.chunk, func(_, lo, hi int) {
					mu.Lock()
					if _, dup := got[lo]; dup {
						t.Errorf("n=%d chunk=%d workers=%d: chunk at %d visited twice", c.n, c.chunk, workers, lo)
					}
					got[lo] = hi
					mu.Unlock()
				})
				if len(got) != len(want) {
					t.Fatalf("n=%d chunk=%d workers=%d %v: %d chunks, want %d", c.n, c.chunk, workers, sched, len(got), len(want))
				}
				//torq:allow maprange -- independent per-chunk assertions
				for lo, hi := range want {
					if got[lo] != hi {
						t.Fatalf("n=%d chunk=%d workers=%d %v: chunk [%d,%d) became [%d,%d)", c.n, c.chunk, workers, sched, lo, hi, lo, got[lo])
					}
				}
			}
		}
	}
}

// TestRunStealUnevenCosts forces a steeply skewed per-chunk workload (the
// shape noise trajectories and mixed comparators produce) through a forced
// multi-worker stealing region: coverage must stay exact while idle workers
// drain the expensive head of the range. Run under -race this exercises the
// deque pop/steal/refill interleavings.
func TestRunStealUnevenCosts(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	n := 256
	visits := make([]int32, n)
	sink := make([]float64, 8)
	Run(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
			// The first chunks carry ~1000× the work of the tail.
			work := 20
			if i < n/8 {
				work = 20000
			}
			s := 0.0
			for k := 0; k < work; k++ {
				s += float64(k ^ i)
			}
			sink[worker] += s
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

// TestSchedulerToggleConcurrent toggles the scheduler kind while regions are
// in flight (mirroring A/B benchmarks switching modes between measurements);
// coverage must hold for whichever mode each region observes, and under
// -race the mode word must be clean.
func TestSchedulerToggleConcurrent(t *testing.T) {
	defer SetScheduler(SchedSteal)
	defer SetMaxWorkers(0)
	SetMaxWorkers(4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			SetScheduler(Scheduler(i % 2))
		}
	}()
	for i := 0; i < 200; i++ {
		var total int64
		Run(64, func(_, lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != 64 {
			t.Fatalf("iteration %d: Run coverage %d", i, total)
		}
		total = 0
		RunChunk(100, 7, func(_, lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != 100 {
			t.Fatalf("iteration %d: RunChunk coverage %d", i, total)
		}
	}
	<-done
}

// TestRunNested: a Run region launched from inside a pool worker must not
// deadlock (submission falls back to fresh goroutines when the pool is busy).
func TestRunNested(t *testing.T) {
	var total int64
	Run(64, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			Run(8, func(_, l, h int) {
				atomic.AddInt64(&total, int64(h-l))
			})
		}
	})
	if total != 64*8 {
		t.Fatalf("nested coverage %d", total)
	}
}

// TestSetMaxWorkersConcurrent hammers the worker bound from one goroutine
// while parallel regions are in flight on another — the exact interleaving
// the CI race job sees when benchmarks toggle the bound. Run under -race
// this pins that the bound is accessed atomically; the coverage invariant
// (every region still visits its whole range) must hold for every bound the
// regions observe.
func TestSetMaxWorkersConcurrent(t *testing.T) {
	defer SetMaxWorkers(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			SetMaxWorkers(i%4 + 1)
		}
	}()
	for i := 0; i < 200; i++ {
		var total int64
		Run(64, func(_, lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != 64 {
			t.Fatalf("iteration %d: coverage %d", i, total)
		}
		var count int64
		ForGrain(3*grain, 1, func(lo, hi int) {
			atomic.AddInt64(&count, int64(hi-lo))
		})
		if count != int64(3*grain) {
			t.Fatalf("iteration %d: grain coverage %d", i, count)
		}
	}
	<-done
}

func TestSetMaxWorkers(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(1)
	if MaxWorkers() != 1 {
		t.Fatal("worker bound not applied")
	}
	// Serial mode still covers the range.
	var count int
	For(3*grain, func(lo, hi int) { count += hi - lo })
	if count != 3*grain {
		t.Fatalf("serial coverage %d", count)
	}
	SetMaxWorkers(0)
	if MaxWorkers() < 1 {
		t.Fatal("reset failed")
	}
}

// TestStatsRecordsSteals pins the scheduler telemetry: a forced-parallel
// region whose first chunk stalls its owning worker must drain the other
// deques and rebalance the stalled owner's remaining chunks by stealing —
// and Stats must see it. This is the signal the ROADMAP follow-up uses to
// size shard/chunk granularity.
func TestStatsRecordsSteals(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(4)
	ResetStats()
	// 16 single-index chunks over 4 workers: worker 0 pops chunk 0 and
	// stalls with three chunks still in its deque; workers 1-3 finish their
	// own spans long before the stall clears and must steal to proceed.
	RunChunk(16, 1, func(_, lo, _ int) {
		if lo == 0 {
			time.Sleep(100 * time.Millisecond)
		}
	})
	s := Stats()
	if s.Regions < 1 {
		t.Fatalf("no region recorded: %+v", s)
	}
	if s.Chunks < 16 {
		t.Fatalf("expected ≥16 chunks recorded, have %+v", s)
	}
	if s.Steals == 0 {
		t.Fatalf("forced-parallel region with a stalled worker recorded no steals: %+v", s)
	}
	ResetStats()
	if s := Stats(); s != (SchedStats{}) {
		t.Fatalf("ResetStats left %+v", s)
	}
}
