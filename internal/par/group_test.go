package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChunkGroupPartitionInvariance pins RunChunk's determinism contract
// against the group multiplier: for every group setting, fn runs exactly
// once per chunk with exactly the (n, chunk)-derived bounds — grouping may
// only change which worker runs a chunk, never the partition.
func TestChunkGroupPartitionInvariance(t *testing.T) {
	defer SetMaxWorkers(0)
	defer SetChunkGroup(1)
	const n, chunk = 103, 7 // deliberately non-divisible: partial tail chunk
	nch := (n + chunk - 1) / chunk
	for _, workers := range []int{1, 3, 8} {
		for _, group := range []int{1, 2, 5, 64, 1 << 20} {
			SetMaxWorkers(workers)
			SetChunkGroup(group)
			var mu sync.Mutex
			seen := make(map[int][2]int)
			RunChunk(n, chunk, func(_, lo, hi int) {
				mu.Lock()
				if prev, dup := seen[lo]; dup {
					t.Fatalf("workers=%d group=%d: chunk at lo=%d executed twice (%v)", workers, group, lo, prev)
				}
				seen[lo] = [2]int{lo, hi}
				mu.Unlock()
			})
			if len(seen) != nch {
				t.Fatalf("workers=%d group=%d: %d chunks executed, want %d", workers, group, len(seen), nch)
			}
			for c := 0; c < nch; c++ {
				lo := c * chunk
				hi := min(lo+chunk, n)
				got, ok := seen[lo]
				if !ok || got != [2]int{lo, hi} {
					t.Fatalf("workers=%d group=%d: chunk %d got %v, want [%d %d]", workers, group, c, got, lo, hi)
				}
			}
		}
	}
}

// TestChunkGroupClamped pins SetChunkGroup's bounds so a runaway tuner
// cannot park the scheduler on a degenerate setting.
func TestChunkGroupClamped(t *testing.T) {
	defer SetChunkGroup(1)
	SetChunkGroup(0)
	if g := ChunkGroup(); g != 1 {
		t.Fatalf("SetChunkGroup(0) left %d, want 1", g)
	}
	SetChunkGroup(-5)
	if g := ChunkGroup(); g != 1 {
		t.Fatalf("SetChunkGroup(-5) left %d, want 1", g)
	}
	SetChunkGroup(1 << 30)
	if g := ChunkGroup(); g != maxChunkGroup {
		t.Fatalf("SetChunkGroup(1<<30) left %d, want the %d cap", g, maxChunkGroup)
	}
}

// TestStatsSampledWhileStealing is the ftdc consumer contract run under
// -race: one goroutine samples Stats() on a tight loop (as the recorder
// does) while stealing regions execute with a stalled owner forcing real
// steals, and another goroutine flips the chunk-group knob (as the
// auto-tuner does). Snapshots must be monotonic — the counters only ever
// increase — and the final quiesced snapshot must account for every chunk.
func TestStatsSampledWhileStealing(t *testing.T) {
	defer SetMaxWorkers(0)
	defer SetChunkGroup(1)
	SetMaxWorkers(4)
	ResetStats()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the recorder
		defer wg.Done()
		var last SchedStats
		for {
			s := Stats()
			if s.Regions < last.Regions || s.Chunks < last.Chunks ||
				s.Groups < last.Groups || s.Steals < last.Steals {
				t.Errorf("counters went backwards: %+v after %+v", s, last)
				return
			}
			last = s
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	go func() { // the auto-tuner
		defer wg.Done()
		g := 1
		for {
			SetChunkGroup(g%4 + 1)
			g++
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Microsecond):
			}
		}
	}()

	const regions, chunksPer = 40, 16
	var executed atomic.Int64
	for r := 0; r < regions; r++ {
		RunChunk(chunksPer, 1, func(_, lo, _ int) {
			executed.Add(1)
			if lo == 0 {
				time.Sleep(2 * time.Millisecond) // stall the owner: the rest must steal
			}
		})
	}
	close(stop)
	wg.Wait()

	if got := executed.Load(); got != regions*chunksPer {
		t.Fatalf("executed %d chunks, want %d", got, regions*chunksPer)
	}
	s := Stats()
	if s.Regions < regions || s.Chunks < regions*chunksPer {
		t.Fatalf("quiesced stats undercount: %+v", s)
	}
	if s.Groups == 0 || s.Groups > s.Chunks {
		t.Fatalf("group count out of range: %+v", s)
	}
	if s.Steals == 0 {
		t.Fatalf("stalled-owner regions recorded no steals: %+v", s)
	}
}
