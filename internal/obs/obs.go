// Package obs is the live observability plane: an HTTP debug server the
// long-running commands expose behind their -debug-addr flag, serving
//
//   - /metrics  — Prometheus text exposition of every ftdc collector,
//     including the dist per-shard latency log2 buckets re-shaped into a
//     cumulative Prometheus histogram
//   - /trace    — the span recorder's current window as Chrome trace-event
//     JSON (loadable in Perfetto / chrome://tracing), worker spans stitched
//     under their coordinator parents
//   - /ftdc     — the live flight-data capture, downloadable mid-run in the
//     same format DumpFile writes
//   - /healthz  — per-worker liveness and straggler flags as JSON
//   - /debug/pprof/* — the standard Go profiler endpoints
//
// Everything here is a cold read path: handlers snapshot lock-free counters
// and the span ring, never touching coordinator or engine state, so scraping
// a live training run cannot perturb it. The package registers nothing on
// http.DefaultServeMux — each Server owns a private mux, so linking obs into
// a binary that serves its own HTTP cannot leak debug endpoints.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/ftdc"
	"repro/internal/qsim"
	"repro/internal/trace"
)

// Options configures a debug server.
type Options struct {
	// Recorder backs /ftdc (live capture download) when non-nil; /ftdc
	// answers 503 otherwise.
	Recorder *ftdc.Recorder
	// Sources are the collectors /metrics scrapes. Nil means the standard
	// set (par scheduler, qsim engine timers, dist transport) — the same
	// collectors ftdc.StandardSources attaches.
	Sources []ftdc.Collector
}

func (o Options) sources() []ftdc.Collector {
	if o.Sources != nil {
		return o.Sources
	}
	return []ftdc.Collector{ftdc.CollectPar, qsim.CollectTelemetry, dist.Collect}
}

// Server is a running debug HTTP server.
type Server struct {
	// Addr is the bound listen address (useful with ":0" in tests).
	Addr string
	ln   net.Listener
}

// Start listens on addr and serves the debug plane until Close. The listener
// is bound synchronously — a bad address fails here, not in the background.
func Start(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln}
	go http.Serve(ln, Handler(o)) //nolint:errcheck // closes with the listener
	return s, nil
}

// Close stops the server's listener.
func (s *Server) Close() error { return s.ln.Close() }

// Handler builds the debug mux — exposed separately so tests (or an embedder
// with its own server) can mount the plane without a listener.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, o.sources())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeChromeTrace(w, trace.Snapshot())
	})
	mux.HandleFunc("/ftdc", func(w http.ResponseWriter, r *http.Request) {
		if o.Recorder == nil {
			http.Error(w, "no ftdc recorder running (start with -ftdc-dump or -debug-addr)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="live.ftdc"`)
		o.Recorder.WriteTo(w) //nolint:errcheck // client disconnects are fine
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var samples uint64
		if o.Recorder != nil {
			samples = o.Recorder.Samples()
		}
		writeJSON(w, healthReply{
			Tracing:      trace.Enabled(),
			FTDCSamples:  samples,
			Workers:      dist.WorkersHealth(),
			GeneratedUTC: time.Now().UTC().Format(time.RFC3339Nano),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

type healthReply struct {
	Tracing      bool                `json:"tracing"`
	FTDCSamples  uint64              `json:"ftdc_samples"`
	Workers      []dist.WorkerHealth `json:"workers"`
	GeneratedUTC string              `json:"generated_utc"`
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}

// metricLine is one converted sample: a Prometheus family name, optional
// label pairs (already formatted), and the value.
type metricLine struct {
	family string
	labels string
	value  int64
}

// writeMetrics scrapes the collectors live and converts the flat
// name → int64 series to Prometheus text exposition:
//
//   - dots become underscores under a torq_ prefix
//     (dist.shards_done → torq_dist_shards_done)
//   - per-worker series fold into one family with a worker label
//     (dist.w3.shards → torq_dist_worker_shards{worker="3"})
//   - the dist.lat_bNN log2 buckets re-shape into a cumulative
//     torq_dist_shard_latency_seconds histogram with le bounds of 2^N µs,
//     with dist.lat_sum_ns providing the exact _sum
//
// Families are emitted sorted so lines of one family stay grouped, as the
// exposition format requires.
func writeMetrics(w http.ResponseWriter, sources []ftdc.Collector) {
	var lines []metricLine
	var latBuckets [64]int64
	latSeen := false
	var latSumNS int64
	emit := func(name string, v int64) {
		if b, ok := bucketIndex(name); ok && b < len(latBuckets) {
			latBuckets[b] += v
			latSeen = true
			return
		}
		if name == "dist.lat_sum_ns" {
			latSumNS = v
			return
		}
		if id, suffix, ok := workerSeries(name); ok {
			lines = append(lines, metricLine{
				family: "torq_dist_worker_" + flatten(suffix),
				labels: `{worker="` + strconv.Itoa(id) + `"}`,
				value:  v,
			})
			return
		}
		lines = append(lines, metricLine{family: "torq_" + flatten(name), value: v})
	}
	for _, c := range sources {
		c(emit)
	}
	sort.SliceStable(lines, func(i, j int) bool {
		if lines[i].family != lines[j].family {
			return lines[i].family < lines[j].family
		}
		return lines[i].labels < lines[j].labels
	})
	for _, l := range lines {
		fmt.Fprintf(w, "%s%s %d\n", l.family, l.labels, l.value)
	}
	if latSeen {
		writeLatencyHistogram(w, &latBuckets, latSumNS)
	}
}

// writeLatencyHistogram converts the log2 per-shard latency buckets (bucket
// k counts shards in [2^(k-1), 2^k) µs) into the cumulative form Prometheus
// expects: bucket k's upper bound is 2^k µs, expressed in seconds.
func writeLatencyHistogram(w http.ResponseWriter, buckets *[64]int64, sumNS int64) {
	max := 0
	for b, v := range buckets {
		if v != 0 {
			max = b
		}
	}
	fmt.Fprintf(w, "# TYPE torq_dist_shard_latency_seconds histogram\n")
	var cum int64
	for b := 0; b <= max; b++ {
		cum += buckets[b]
		le := strconv.FormatFloat(float64(uint64(1)<<uint(b))/1e6, 'g', -1, 64)
		fmt.Fprintf(w, "torq_dist_shard_latency_seconds_bucket{le=%q} %d\n", le, cum)
	}
	fmt.Fprintf(w, "torq_dist_shard_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "torq_dist_shard_latency_seconds_sum %s\n",
		strconv.FormatFloat(float64(sumNS)/1e9, 'g', -1, 64))
	fmt.Fprintf(w, "torq_dist_shard_latency_seconds_count %d\n", cum)
}

func flatten(name string) string { return strings.ReplaceAll(name, ".", "_") }

// bucketIndex parses the "dist.lat_bNN" histogram series names.
func bucketIndex(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "dist.lat_b")
	if !ok {
		return 0, false
	}
	b, err := strconv.Atoi(rest)
	if err != nil || b < 0 {
		return 0, false
	}
	return b, true
}

// workerSeries parses "dist.w<id>.<suffix>" per-worker series names.
func workerSeries(name string) (id int, suffix string, ok bool) {
	rest, ok := strings.CutPrefix(name, "dist.w")
	if !ok {
		return 0, "", false
	}
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return 0, "", false
	}
	id, err := strconv.Atoi(rest[:dot])
	if err != nil {
		return 0, "", false
	}
	return id, rest[dot+1:], true
}

// chromeEvent is one Chrome trace-event record ("X" complete events for
// spans, "M" metadata events naming the process rows).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// writeChromeTrace renders the span window as Chrome trace-event JSON. Each
// process row is one worker (pid 0 = the coordinator/local process); within
// a row, shard spans land on a tid per shard index so concurrent shards
// stack visibly, and everything else shares tid 0. Span and parent ids ride
// in args, which is how the stitched tree stays navigable in Perfetto.
func writeChromeTrace(w http.ResponseWriter, spans []trace.SpanRec) {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	procs := map[int32]bool{}
	for _, s := range spans {
		tid := int32(0)
		if s.Kind == trace.KShard && s.Shard >= 0 {
			tid = s.Shard + 1
		}
		args := map[string]any{
			"span":   fmt.Sprintf("%016x", s.ID),
			"parent": fmt.Sprintf("%016x", s.Parent),
		}
		if s.Shard >= 0 {
			args["shard"] = s.Shard
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Kind.String(),
			Cat:  "torq",
			Ph:   "X",
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			PID:  s.Worker,
			TID:  tid,
			Args: args,
		})
		procs[s.Worker] = true
	}
	var pids []int32
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		name := "coordinator"
		if pid != 0 {
			name = "worker " + strconv.Itoa(int(pid))
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
	}
	writeJSON(w, out)
}
