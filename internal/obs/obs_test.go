package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ftdc"
	"repro/internal/trace"
)

// fakeSource emits a fixed series set shaped like the real collectors:
// plain counters, per-worker series, and the log2 latency buckets.
func fakeSource(emit func(name string, value int64)) {
	emit("par.steals", 11)
	emit("dist.passes", 42)
	emit("dist.w2.shards", 7)
	emit("dist.w1.shards", 9)
	emit("dist.w1.lat_ns", 1_000_000)
	emit("dist.lat_b00", 3) // < 1µs
	emit("dist.lat_b03", 5) // [4µs, 8µs)
	emit("dist.lat_sum_ns", 45_000)
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestMetricsExposition(t *testing.T) {
	h := Handler(Options{Sources: []ftdc.Collector{fakeSource}})
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	wants := []string{
		"torq_par_steals 11\n",
		"torq_dist_passes 42\n",
		`torq_dist_worker_shards{worker="1"} 9` + "\n",
		`torq_dist_worker_shards{worker="2"} 7` + "\n",
		`torq_dist_worker_lat_ns{worker="1"} 1000000` + "\n",
		"# TYPE torq_dist_shard_latency_seconds histogram\n",
		`torq_dist_shard_latency_seconds_bucket{le="1e-06"} 3` + "\n",
		`torq_dist_shard_latency_seconds_bucket{le="8e-06"} 8` + "\n",
		`torq_dist_shard_latency_seconds_bucket{le="+Inf"} 8` + "\n",
		"torq_dist_shard_latency_seconds_sum 4.5e-05\n",
		"torq_dist_shard_latency_seconds_count 8\n",
	}
	for _, want := range wants {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
	// Worker series of one family must be grouped and sorted by label.
	if i, j := strings.Index(body, `worker="1"} 9`), strings.Index(body, `worker="2"}`); i < 0 || j < 0 || i > j {
		t.Errorf("worker series unsorted or missing (positions %d, %d)\n%s", i, j, body)
	}
	// Raw bucket/sum series must not leak beside the histogram.
	for _, leak := range []string{"torq_dist_lat_b", "torq_dist_lat_sum_ns"} {
		if strings.Contains(body, leak) {
			t.Errorf("raw series %q leaked into exposition\n%s", leak, body)
		}
	}
}

// TestMetricsEmptyBuckets checks a run with no dist activity (Collect still
// emits the all-zero bucket series) produces an all-zero histogram rather
// than dropping the family or omitting the +Inf bucket.
func TestMetricsEmptyBuckets(t *testing.T) {
	empty := func(emit func(string, int64)) {
		emit("dist.lat_b00", 0)
		emit("dist.lat_sum_ns", 0)
	}
	_, body := get(t, Handler(Options{Sources: []ftdc.Collector{empty}}), "/metrics")
	for _, want := range []string{
		`torq_dist_shard_latency_seconds_bucket{le="+Inf"} 0` + "\n",
		"torq_dist_shard_latency_seconds_count 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("empty histogram missing %q\n%s", want, body)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	trace.Reset()
	defer trace.Reset()

	root := trace.BeginPass(trace.KForward)
	child := trace.Begin(trace.KBatch, root.ID)
	child.Worker = 3
	child.End()
	root.End()
	// A worker-origin shard span arriving through Ingest.
	trace.Ingest(trace.SpanRec{ID: 99, Parent: child.ID, Kind: trace.KShard,
		Worker: 3, Shard: 5, Start: 1000, End: 2000})

	code, body := get(t, Handler(Options{}), "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int32          `json:"pid"`
			TID  int32          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/trace is not JSON: %v\n%s", err, body)
	}
	kinds := map[string]int{}
	var sawShard, sawWorkerProc bool
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			kinds[e.Name]++
			if e.Name == "shard" {
				sawShard = true
				if e.PID != 3 {
					t.Errorf("shard event pid %d, want worker 3", e.PID)
				}
				if e.TID != 6 { // shard 5 → tid 6 (shard+1)
					t.Errorf("shard event tid %d, want 6", e.TID)
				}
			}
		case "M":
			if name, _ := e.Args["name"].(string); name == "worker 3" {
				sawWorkerProc = true
			}
		}
	}
	if kinds["forward"] != 1 || kinds["batch"] != 1 || !sawShard {
		t.Errorf("trace events incomplete: %v", kinds)
	}
	if !sawWorkerProc {
		t.Error("no process_name metadata for worker 3")
	}
}

func TestFTDCEndpoint(t *testing.T) {
	// Without a recorder the endpoint must refuse, not panic.
	if code, _ := get(t, Handler(Options{}), "/ftdc"); code != http.StatusServiceUnavailable {
		t.Fatalf("/ftdc without recorder: status %d, want 503", code)
	}

	rec := ftdc.New(ftdc.Options{})
	rec.AddSource(fakeSource)
	for i := 0; i < 5; i++ {
		rec.SampleNow()
	}
	code, body := get(t, Handler(Options{Recorder: rec}), "/ftdc")
	if code != http.StatusOK {
		t.Fatalf("/ftdc status %d", code)
	}
	samples, err := ftdc.Decode([]byte(body))
	if err != nil {
		t.Fatalf("live capture does not decode: %v", err)
	}
	if len(samples) != 5 {
		t.Fatalf("live capture holds %d samples, want 5", len(samples))
	}
	if v, ok := samples[4].Value("dist.passes"); !ok || v != 42 {
		t.Fatalf("sample value dist.passes = %d, %v", v, ok)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	rec := ftdc.New(ftdc.Options{})
	rec.AddSource(fakeSource)
	rec.SampleNow()
	code, body := get(t, Handler(Options{Recorder: rec}), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var h struct {
		Tracing     bool            `json:"tracing"`
		FTDCSamples uint64          `json:"ftdc_samples"`
		Workers     json.RawMessage `json:"workers"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if !h.Tracing {
		t.Error("healthz does not report tracing enabled")
	}
	if h.FTDCSamples != 1 {
		t.Errorf("healthz reports %d ftdc samples, want 1", h.FTDCSamples)
	}
}

// TestStartServes boots a real listener on an ephemeral port and exercises
// the plane over actual HTTP, including a pprof endpoint.
func TestStartServes(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, path := range []string{"/metrics", "/trace", "/healthz", "/debug/pprof/cmdline"} {
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d\n%s", path, resp.StatusCode, b)
		}
	}
	if _, err := Start(s.Addr, Options{}); err == nil {
		t.Error("second Start on a bound address did not fail")
	}
}
