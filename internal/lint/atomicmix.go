package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// AtomicMix flags mixed atomic/plain access: any variable (usually a struct
// counter field) that is passed by address to a sync/atomic function anywhere
// in the package may not also be read or written plainly. A torn or stale
// plain access does not fail parity — it silently corrupts the FTDC series
// and scheduler statistics built on those counters — so the mix is a build
// error. Typed atomic.Int64-family fields are immune by construction (the
// value is unexported; the bundled copylocks analyzer catches copies), which
// is why the repository's own telemetry uses them; this analyzer guards the
// function-style holdouts and anything a refactor regresses to.
//
// Test files are exempt: the join-then-inspect pattern (atomic updates while
// goroutines run, plain reads after Wait) is legitimate there and proven by
// the race-detector CI job instead.
var AtomicMix = &analysis.Analyzer{
	Name:     "atomicmix",
	Doc:      "flag plain reads/writes of variables that are updated through sync/atomic elsewhere in the package",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Flags:    newPackagesFlag("atomicmix", "repro"),
	Run:      runAtomicMix,
}

func runAtomicMix(pass *analysis.Pass) (interface{}, error) {
	if !pkgMatch(pass.Pkg.Path(), packagesFlag(pass)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildAllowIndex(pass.Fset, pass.Files)
	isTest := func(pos token.Pos) bool {
		return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
	}

	// Pass 1: every &v handed to a sync/atomic Add/Load/Store/Swap/CAS marks
	// v atomic; the idents inside those call arguments are exempt from pass 2.
	atomicVars := make(map[*types.Var]token.Pos) // first atomic site, for the message
	exempt := make(map[token.Pos]bool)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		if !atomicAddrFunc(fn.Name()) || len(call.Args) == 0 || isTest(call.Pos()) {
			return
		}
		ast.Inspect(call.Args[0], func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok {
				exempt[id.Pos()] = true
			}
			return true
		})
		if v := atomicTarget(pass.TypesInfo, call.Args[0]); v != nil {
			if _, seen := atomicVars[v]; !seen {
				atomicVars[v] = call.Pos()
			}
		}
	})
	if len(atomicVars) == 0 {
		allow.reportStale(pass, "atomicmix", true)
		return nil, nil
	}

	// Pass 2: any other use of an atomic variable is a plain access.
	ins.Preorder([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node) {
		id := n.(*ast.Ident)
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || exempt[id.Pos()] || isTest(id.Pos()) {
			return
		}
		first, isAtomic := atomicVars[v]
		if !isAtomic {
			return
		}
		if allow.allowed(pass.Fset, id.Pos(), "atomicmix") {
			return
		}
		pass.Reportf(id.Pos(), "%s is accessed through sync/atomic (first at %s) but read/written plainly here: a torn access corrupts the value without failing parity — use atomic ops, a typed atomic.*, or //torq:allow atomicmix -- reason",
			v.Name(), pass.Fset.Position(first))
	})
	allow.reportStale(pass, "atomicmix", true)
	return nil, nil
}

// atomicAddrFunc reports whether the sync/atomic function's first parameter
// is the address of the word it operates on.
func atomicAddrFunc(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok && rest != "" {
			return true
		}
	}
	return false
}

// atomicTarget resolves &expr to the variable whose address feeds the atomic
// op, looking through parens and index expressions (&counts[i] marks counts).
func atomicTarget(info *types.Info, arg ast.Expr) *types.Var {
	ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	x := ast.Unparen(ue.X)
	for {
		ix, ok := x.(*ast.IndexExpr)
		if !ok {
			break
		}
		x = ast.Unparen(ix.X)
	}
	switch x := x.(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}
