package lint

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// FloatBits forbids == and != on floating-point or complex operands: in a
// codebase whose load-bearing guarantee is bit-identical trajectories,
// equality on computed floats is either a bit-identity assertion (belongs on
// math.Float64bits, which is total — it distinguishes NaN payloads and
// signed zeros instead of lying about them) or a parity assertion (belongs
// on a tolerance). Comparisons against constants (skip-zero guards, exact
// sentinel checks) and the x != x NaN idiom are allowed; anything else
// needs a //torq:allow floateq with a reason.
var FloatBits = &analysis.Analyzer{
	Name:     "floatbits",
	Doc:      "forbid ==/!= on float/complex operands outside constant comparisons and the NaN idiom",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Flags:    newPackagesFlag("floatbits", "repro"),
	Run:      runFloatBits,
}

// newPackagesFlag builds the shared `packages` scoping flag: comma-separated
// import-path prefixes the analyzer applies to, "*" for everything.
func newPackagesFlag(analyzer, def string) flag.FlagSet {
	fs := flag.NewFlagSet(analyzer, flag.ExitOnError)
	fs.String("packages", def, "comma-separated import-path prefixes to check (\"*\" for all)")
	return *fs
}

func packagesFlag(pass *analysis.Pass) string {
	return pass.Analyzer.Flags.Lookup("packages").Value.String()
}

func runFloatBits(pass *analysis.Pass) (interface{}, error) {
	if !pkgMatch(pass.Pkg.Path(), packagesFlag(pass)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildAllowIndex(pass.Fset, pass.Files)
	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		if !hasFloatComponent(pass.TypesInfo.TypeOf(be.X)) && !hasFloatComponent(pass.TypesInfo.TypeOf(be.Y)) {
			return
		}
		// Constant on either side: deliberate exact semantics (skip-zero
		// guards, sentinel checks) — the hazard is computed-vs-computed.
		if pass.TypesInfo.Types[be.X].Value != nil || pass.TypesInfo.Types[be.Y].Value != nil {
			return
		}
		// x != x / x == x is the NaN self-test idiom, bit-safe by definition.
		if types.ExprString(be.X) == types.ExprString(be.Y) {
			return
		}
		if allow.allowed(pass.Fset, be.OpPos, "floateq") {
			return
		}
		pass.Reportf(be.OpPos, "%s on floating-point operands: use math.Float64bits for bit-identity, a tolerance for parity, or //torq:allow floateq -- reason", be.Op)
	})
	allow.reportStale(pass, "floateq", false)
	return nil, nil
}

// hasFloatComponent reports whether == on t compares floating-point or
// complex values anywhere: basic float/complex kinds, and arrays or structs
// with such components (Go compares them elementwise).
func hasFloatComponent(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Array:
		return hasFloatComponent(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasFloatComponent(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}
