// Package linttest is a self-contained driver for exercising the torq-lint
// analyzers against fixture packages under testdata/src. It is a small
// stand-in for golang.org/x/tools/go/analysis/analysistest, which needs the
// go/packages loader (and therefore a module-aware build environment); this
// harness parses and typechecks fixtures directly with go/parser + go/types,
// resolving stdlib imports through the compiler's source importer and
// fixture-local imports through the packages it already built, so the same
// tests run identically offline, in CI, and under `go test ./...`.
//
// Contract (the analysistest subset the fixtures use):
//
//   - A fixture line trailing-commented `// want "re"` must produce exactly
//     one diagnostic on that line matching the regexp; multiple quoted
//     regexps expect that many diagnostics in order of appearance.
//   - Diagnostics on lines without a want comment fail the test, as do want
//     comments that nothing matched.
//   - Facts exported while analyzing one fixture package are visible to the
//     analysis of packages listed after it, keyed by the shared type-checker
//     objects — the cross-package half of nolocktelemetry is tested this way.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
)

// Runner drives one or more analyzer runs over fixture packages, carrying
// typechecked packages and exported facts across runs.
type Runner struct {
	t        *testing.T
	fset     *token.FileSet
	srcDir   string // testdata/src root
	imported map[string]*pkgUnit
	objFacts map[types.Object][]analysis.Fact
	pkgFacts map[*types.Package][]analysis.Fact
}

type pkgUnit struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// NewRunner returns a Runner rooted at dir (usually "testdata/src").
func NewRunner(t *testing.T, dir string) *Runner {
	return &Runner{
		t:        t,
		fset:     token.NewFileSet(),
		srcDir:   dir,
		imported: make(map[string]*pkgUnit),
		objFacts: make(map[types.Object][]analysis.Fact),
		pkgFacts: make(map[*types.Package][]analysis.Fact),
	}
}

// FixturePath returns the absolute path of a file inside the fixture tree,
// for analyzer flags that point at on-disk specs (codecpair's LAYOUTS.md).
func (r *Runner) FixturePath(rel string) string {
	r.t.Helper()
	abs, err := filepath.Abs(filepath.Join(r.srcDir, rel))
	if err != nil {
		r.t.Fatal(err)
	}
	return abs
}

// SetFlag sets an analyzer flag for the duration of the test.
func SetFlag(t *testing.T, a *analysis.Analyzer, name, value string) {
	t.Helper()
	f := a.Flags.Lookup(name)
	if f == nil {
		t.Fatalf("analyzer %s has no -%s flag", a.Name, name)
	}
	old := f.Value.String()
	if err := f.Value.Set(value); err != nil {
		t.Fatalf("setting %s -%s=%s: %v", a.Name, name, value, err)
	}
	t.Cleanup(func() { _ = f.Value.Set(old) })
}

// load parses and typechecks the fixture package whose sources live in
// srcDir/<rel>, registering it under import path <importPath>.
func (r *Runner) load(importPath, rel string) *pkgUnit {
	r.t.Helper()
	if u, ok := r.imported[importPath]; ok {
		return u
	}
	dir := filepath.Join(r.srcDir, rel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		r.t.Fatalf("fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			r.t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		r.t.Fatalf("no fixture files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return r.fset.Position(files[i].Pos()).Filename < r.fset.Position(files[j].Pos()).Filename
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: &fixtureImporter{r: r}}
	pkg, err := conf.Check(importPath, r.fset, files, info)
	if err != nil {
		r.t.Fatalf("typechecking fixture %s: %v", importPath, err)
	}
	u := &pkgUnit{pkg: pkg, files: files, info: info}
	r.imported[importPath] = u
	return u
}

// fixtureImporter serves fixture-local packages from the Runner and
// everything else (the stdlib) from the toolchain's source importer.
type fixtureImporter struct {
	r   *Runner
	std types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if u, ok := fi.r.imported[path]; ok {
		return u.pkg, nil
	}
	// Fixture-relative import: resolve under srcDir by path suffix.
	if rel, ok := strings.CutPrefix(path, "repro/lintfixture/"); ok {
		return fi.r.load(path, rel).pkg, nil
	}
	if fi.std == nil {
		fi.std = importer.ForCompiler(fi.r.fset, "source", nil)
	}
	return fi.std.Import(path)
}

// Run analyzes the fixture package at srcDir/<rel> (import path
// "repro/lintfixture/<rel>" unless importPath overrides it) with a and
// checks its diagnostics against the fixture's // want comments.
func (r *Runner) Run(a *analysis.Analyzer, rel string, importPath ...string) {
	r.t.Helper()
	path := "repro/lintfixture/" + rel
	if len(importPath) > 0 {
		path = importPath[0]
	}
	u := r.load(path, rel)
	diags := r.analyze(a, u)
	r.checkWants(u, diags)
}

// RunExpectClean analyzes the package and fails on any diagnostic,
// regardless of want comments — the shape of the "annotated code passes"
// half of each analyzer test.
func (r *Runner) RunExpectClean(a *analysis.Analyzer, rel string, importPath ...string) {
	r.t.Helper()
	path := "repro/lintfixture/" + rel
	if len(importPath) > 0 {
		path = importPath[0]
	}
	u := r.load(path, rel)
	for _, d := range r.analyze(a, u) {
		r.t.Errorf("%s: unexpected diagnostic: %s", r.fset.Position(d.Pos), d.Message)
	}
}

func (r *Runner) analyze(a *analysis.Analyzer, u *pkgUnit) []analysis.Diagnostic {
	r.t.Helper()
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]interface{})
	for _, dep := range a.Requires {
		if dep != inspect.Analyzer {
			r.t.Fatalf("harness supports only the inspect dependency, %s requires %s", a.Name, dep.Name)
		}
		res, err := dep.Run(r.newPass(dep, u, nil, nil))
		if err != nil {
			r.t.Fatalf("%s: %v", dep.Name, err)
		}
		results[dep] = res
	}
	pass := r.newPass(a, u, results, func(d analysis.Diagnostic) { diags = append(diags, d) })
	if _, err := a.Run(pass); err != nil {
		r.t.Fatalf("%s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

func (r *Runner) newPass(a *analysis.Analyzer, u *pkgUnit, results map[*analysis.Analyzer]interface{}, report func(analysis.Diagnostic)) *analysis.Pass {
	if report == nil {
		report = func(analysis.Diagnostic) {}
	}
	return &analysis.Pass{
		Analyzer:   a,
		Fset:       r.fset,
		Files:      u.files,
		Pkg:        u.pkg,
		TypesInfo:  u.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   results,
		Report:     report,
		ReadFile:   os.ReadFile,
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			for _, f := range r.objFacts[obj] {
				if reflect.TypeOf(f) == reflect.TypeOf(fact) {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
					return true
				}
			}
			return false
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			r.objFacts[obj] = append(r.objFacts[obj], fact)
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			for _, f := range r.pkgFacts[pkg] {
				if reflect.TypeOf(f) == reflect.TypeOf(fact) {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
					return true
				}
			}
			return false
		},
		ExportPackageFact: func(fact analysis.Fact) {
			r.pkgFacts[u.pkg] = append(r.pkgFacts[u.pkg], fact)
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			//torq:allow maprange -- fact sets, callers treat them as unordered
			for obj, fs := range r.objFacts {
				for _, f := range fs {
					out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
				}
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			//torq:allow maprange -- fact sets, callers treat them as unordered
			for pkg, fs := range r.pkgFacts {
				for _, f := range fs {
					out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
				}
			}
			return out
		},
	}
}

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// checkWants compares diagnostics against // want comments, both keyed by
// (file, line).
func (r *Runner) checkWants(u *pkgUnit, diags []analysis.Diagnostic) {
	r.t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range u.files {
		name := r.fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			r.t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				pat, err := regexp.Compile(arg[1])
				if err != nil {
					r.t.Fatalf("%s:%d: bad want regexp: %v", name, i+1, err)
				}
				k := key{name, i + 1}
				wants[k] = append(wants[k], pat)
			}
		}
	}
	for _, d := range diags {
		p := r.fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		ws := wants[k]
		if len(ws) == 0 {
			r.t.Errorf("%s: unexpected diagnostic: %s", fmt.Sprintf("%s:%d", p.Filename, p.Line), d.Message)
			continue
		}
		if !ws[0].MatchString(d.Message) {
			r.t.Errorf("%s:%d: diagnostic %q does not match want %q", p.Filename, p.Line, d.Message, ws[0])
		}
		if len(ws) == 1 {
			delete(wants, k)
		} else {
			wants[k] = ws[1:]
		}
	}
	//torq:allow maprange -- leftover-want errors, any order fails the test
	for k, ws := range wants {
		for _, w := range ws {
			r.t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, w)
		}
	}
}
