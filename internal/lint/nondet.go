package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// NonDet forbids ambient nondeterminism inside the numeric packages, where
// it would leak into training trajectories: wall-clock reads (time.Now and
// friends), the process-global math/rand source (seeded from entropy —
// rand.New with an explicit source is fine), and machine-shape reads
// (runtime.GOMAXPROCS/NumCPU, par.MaxWorkers) whose value must never steer
// a numeric branch. Telemetry-only timing carries //torq:allow nondet with
// a reason; test files are exempt (benchmarks time things legitimately).
var NonDet = &analysis.Analyzer{
	Name:     "nondet",
	Doc:      "forbid wall-clock, global-rand, and machine-shape reads in numeric packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Flags: newPackagesFlag("nondet",
		"repro/internal/qsim,repro/internal/ad,repro/internal/opt,repro/internal/maxwell"),
	Run: runNonDet,
}

// nondetFuncs maps package path → forbidden package-level functions. An
// empty set forbids every package-level function of that package except the
// listed constructors.
var nondetFuncs = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Tick": true,
		"After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
	},
	"runtime":            {"GOMAXPROCS": true, "NumCPU": true, "NumGoroutine": true},
	"repro/internal/par": {"MaxWorkers": true},
}

// nondetRandOK are the math/rand{,/v2} package-level constructors that take
// explicit sources/seeds and therefore stay deterministic.
var nondetRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runNonDet(pass *analysis.Pass) (interface{}, error) {
	if !pkgMatch(pass.Pkg.Path(), packagesFlag(pass)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildAllowIndex(pass.Fset, pass.Files)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if fn.Signature().Recv() != nil {
			return // methods (e.g. on a caller-seeded *rand.Rand) are fine
		}
		path := fn.Pkg().Path()
		forbidden := false
		switch {
		case path == "math/rand" || path == "math/rand/v2":
			forbidden = !nondetRandOK[fn.Name()]
		default:
			forbidden = nondetFuncs[path][fn.Name()]
		}
		if !forbidden {
			return
		}
		pos := pass.Fset.Position(call.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			return
		}
		if allow.allowed(pass.Fset, call.Pos(), "nondet") {
			return
		}
		pass.Reportf(call.Pos(), "%s.%s in a numeric package leaks nondeterminism into trajectories: thread a seeded source/explicit value through, or //torq:allow nondet -- reason", path, fn.Name())
	})
	allow.reportStale(pass, "nondet", true)
	return nil, nil
}

// calleeFunc resolves the called function when the call is static (direct
// function or method call), nil for dynamic calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
