package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// The //torq: directive namespace. Three function directives mark contract
// surfaces, and one line directive grants audited exceptions:
//
//	//torq:hotpath              (doc comment) function must be allocation-free
//	//torq:nolock               (doc comment) function must be atomics-only
//	//torq:ordered-merge        (doc comment) function must merge in index order
//	//torq:allow <rule> -- why  (on or above a line) suppress one rule there
//
// Directive comments follow the Go convention: no space after //, so plain
// prose mentioning "torq:" is never parsed as a directive.
const (
	dirHotpath      = "hotpath"
	dirNolock       = "nolock"
	dirOrderedMerge = "ordered-merge"
	dirAllow        = "allow"
)

// allowRules are the rule names //torq:allow may name. Each corresponds to
// the analyzer that honors the exception.
var allowRules = map[string]bool{
	"floateq":    true, // floatbits
	"maprange":   true, // detrange
	"nondet":     true, // nondet
	"hotalloc":   true, // hotalloc
	"nolock":     true, // nolocktelemetry
	"codecpair":  true, // codecpair
	"atomicmix":  true, // atomicmix
	"mergeorder": true, // mergeorder
}

// directive is one parsed //torq: comment.
type directive struct {
	pos  token.Pos
	name string // "hotpath", "nolock", "ordered-merge", "allow", or unrecognized text
	arg  string // first argument (the rule name, for allow)
	rest string // anything after the argument
}

// parseDirective parses c as a //torq: directive, reporting ok=false for
// ordinary comments.
func parseDirective(c *ast.Comment) (d directive, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//torq:")
	if !found {
		return d, false
	}
	d.pos = c.Slash
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return d, true // bare "//torq:" — invalid, caught by torqdirective
	}
	d.name = fields[0]
	if len(fields) > 1 {
		d.arg = fields[1]
		d.rest = strings.Join(fields[2:], " ")
	}
	return d, true
}

// hasFuncDirective reports whether decl's doc comment carries the named
// function directive.
func hasFuncDirective(decl *ast.FuncDecl, name string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if d, ok := parseDirective(c); ok && d.name == name {
			return true
		}
	}
	return false
}

// allowIndex records, per rule, the source lines where a //torq:allow
// comment suppresses findings: the directive's own line (trailing comment)
// and the line after it (comment-above idiom). Each directive is one
// allowEntry shared by both line keys, so a suppression through either key
// marks the directive used — the stale-allow check reports the rest.
type allowIndex map[string]map[allowKey]*allowEntry

type allowKey struct {
	file string
	line int
}

type allowEntry struct {
	pos  token.Pos
	used bool
}

// buildAllowIndex scans every comment in files for //torq:allow directives.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok || d.name != dirAllow || !allowRules[d.arg] {
					continue
				}
				p := fset.Position(d.pos)
				m := idx[d.arg]
				if m == nil {
					m = make(map[allowKey]*allowEntry)
					idx[d.arg] = m
				}
				e := &allowEntry{pos: d.pos}
				m[allowKey{p.Filename, p.Line}] = e
				m[allowKey{p.Filename, p.Line + 1}] = e
			}
		}
	}
	return idx
}

// allowed reports whether rule findings at pos are suppressed, marking the
// suppressing directive as used.
func (idx allowIndex) allowed(fset *token.FileSet, pos token.Pos, rule string) bool {
	m := idx[rule]
	if m == nil {
		return false
	}
	p := fset.Position(pos)
	e := m[allowKey{p.Filename, p.Line}]
	if e == nil {
		return false
	}
	e.used = true
	return true
}

// reportStale flags every //torq:allow directive for rule that suppressed
// nothing during this pass: a refactor that fixed the finding must also drop
// the waiver, or the annotation rots into misdocumentation. Each analyzer
// calls this for the rules it owns, after its own traversal consulted
// allowed() for every candidate finding. Analyzers that exempt _test.go
// files never consult allows there, so they pass skipTestFiles.
func (idx allowIndex) reportStale(pass *analysis.Pass, rule string, skipTestFiles bool) {
	seen := make(map[token.Pos]bool)
	var stale []token.Pos
	//torq:allow maprange -- positions are sorted below before reporting
	for _, e := range idx[rule] {
		if e.used || seen[e.pos] {
			continue
		}
		seen[e.pos] = true
		if skipTestFiles && strings.HasSuffix(pass.Fset.Position(e.pos).Filename, "_test.go") {
			continue
		}
		stale = append(stale, e.pos)
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, pos := range stale {
		pass.Reportf(pos, "stale //torq:allow %s: no %s diagnostic is suppressed here — the finding is gone, drop the waiver", rule, rule)
	}
}

// TorqDirective validates the //torq: namespace: unknown directives,
// misplaced function directives, and allow comments naming nonexistent
// rules are all errors, so a typo cannot silently disable enforcement.
var TorqDirective = &analysis.Analyzer{
	Name: "torqdirective",
	Doc:  "check that //torq: directives are well-formed, known, and correctly placed",
	Run:  runTorqDirective,
}

func runTorqDirective(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		// Function directives are only honored in FuncDecl doc comments;
		// collect those comment groups so strays can be flagged.
		funcDocs := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				switch d.name {
				case dirHotpath, dirNolock, dirOrderedMerge:
					if !funcDocs[cg] {
						pass.Reportf(d.pos, "//torq:%s must be in a function's doc comment", d.name)
					} else if d.arg != "" {
						pass.Reportf(d.pos, "//torq:%s takes no arguments (got %q)", d.name, d.arg)
					}
				case dirAllow:
					switch {
					case d.arg == "":
						pass.Reportf(d.pos, "//torq:allow needs a rule name (one of %s)", allowRuleList())
					case !allowRules[d.arg]:
						pass.Reportf(d.pos, "//torq:allow %s: unknown rule (one of %s)", d.arg, allowRuleList())
					case d.rest != "" && !strings.HasPrefix(d.rest, "--"):
						pass.Reportf(d.pos, "//torq:allow %s: reason must follow a -- separator", d.arg)
					}
				case "":
					pass.Reportf(d.pos, "bare //torq: directive")
				default:
					pass.Reportf(d.pos, "unknown //torq: directive %q (known: hotpath, nolock, ordered-merge, allow)", d.name)
				}
			}
		}
	}
	return nil, nil
}

func allowRuleList() string {
	names := make([]string, 0, len(allowRules))
	for r := range allowRules {
		names = append(names, r)
	}
	// Deterministic order for diagnostics (and for detrange's own rule).
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ", ")
}

// pkgMatch reports whether pkgPath falls under any comma-separated prefix in
// list ("*" matches everything). Analyzers use it to scope rules to the
// repository's packages (default prefix "repro") while fixtures opt in by
// flag.
func pkgMatch(pkgPath, list string) bool {
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if p == "*" || pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}
