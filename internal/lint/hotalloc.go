package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotAlloc gives the 0-allocs/op benchmarks compile-time teeth: a function
// annotated //torq:hotpath (frame codec, ShardRunner shard loop,
// per-sample-range kernels) may not contain the constructs that put a heap
// allocation on every call:
//
//   - heap-escaping composite literals (&T{...}, slice or map literals)
//   - make / new
//   - fmt calls
//   - growing appends — any append whose result is not assigned back to
//     its own first argument, i.e. anything but the x = append(x, ...)
//     reuse idiom the steady-state buffers depend on
//   - closures capturing enclosing variables (captures force a heap box)
//   - allocating conversions (string ↔ []byte / []rune) and non-constant
//     string concatenation
//   - go statements
//
// The check is body-local by design: helpers a hot function calls are
// annotated (and checked) themselves, or pinned by AllocsPerRun tests.
// Amortized growth paths inside a hot body carry //torq:allow hotalloc
// with a reason.
var HotAlloc = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "forbid per-call heap allocation constructs in //torq:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildAllowIndex(pass.Fset, pass.Files)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !allow.allowed(pass.Fset, pos, "hotalloc") {
			pass.Reportf(pos, "//torq:hotpath function: "+format, args...)
		}
	}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || !hasFuncDirective(decl, dirHotpath) {
			return
		}
		checkHotBody(pass, decl, report)
	})
	allow.reportStale(pass, "hotalloc", false)
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, decl *ast.FuncDecl, report func(token.Pos, string, ...interface{})) {
	info := pass.TypesInfo
	selfAppends := selfAppendCalls(decl.Body)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if caps := captures(info, decl, n); len(caps) > 0 {
				report(n.Pos(), "closure captures %s from the enclosing function (heap box per call)", strings.Join(caps, ", "))
			}
			return false // the closure body is the closure's own contract
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "heap-escaping composite literal &T{...}")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) && info.Types[n].Value == nil {
				report(n.OpPos, "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, selfAppends, report)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, report func(token.Pos, string, ...interface{})) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if !selfAppends[call] {
					report(call.Pos(), "growing append: only the x = append(x, ...) reuse idiom keeps capacity amortized")
				}
			}
			return
		}
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s allocates (interface boxing of every operand)", fn.Name())
		return
	}
	// Allocating conversions: string([]byte), []byte(string), []rune(string).
	if len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			to, from := tv.Type, info.TypeOf(call.Args[0])
			if allocatingConversion(to, from) {
				report(call.Pos(), "%s(%s) conversion copies and allocates",
					types.ExprString(call.Fun), types.TypeString(from, nil))
			}
		}
	}
}

// selfAppendCalls collects the append calls written as the amortizing reuse
// idiom `x = append(x, ...)` (single-assign, result back into the first
// argument). Every other append in a hot body is a finding.
func selfAppendCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	ok := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !isCall || len(call.Args) == 0 {
			return true
		}
		if fn, isIdent := ast.Unparen(call.Fun).(*ast.Ident); !isIdent || fn.Name != "append" {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			ok[call] = true
		}
		return true
	})
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func allocatingConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if isStringType(to) {
		if fs, ok := from.Underlying().(*types.Slice); ok {
			if b, ok := fs.Elem().Underlying().(*types.Basic); ok {
				return b.Kind() == types.Byte || b.Kind() == types.Rune
			}
		}
		return false
	}
	if ts, ok := to.Underlying().(*types.Slice); ok && isStringType(from) {
		if b, ok := ts.Elem().Underlying().(*types.Basic); ok {
			return b.Kind() == types.Byte || b.Kind() == types.Rune
		}
	}
	return false
}

// captures lists the enclosing-function variables a func literal references:
// declared inside the enclosing function, outside the literal. Package-level
// variables and the literal's own locals/parameters are not captures.
func captures(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := map[string]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v.Name()] {
			return true
		}
		if v.Pos() >= enclosing.Pos() && v.Pos() < enclosing.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}
