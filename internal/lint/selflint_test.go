package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfLint builds the torq-lint vettool and runs it over the whole
// module — the same invocation CI's lint job uses. The repo must stay clean
// under its own analyzers: any new finding either gets fixed or carries a
// reasoned //torq:allow, never lands silently.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-module self-lint")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "torq-lint")

	build := exec.Command("go", "build", "-o", bin, "./cmd/torq-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building torq-lint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("torq-lint found issues:\n%s", out)
	}
}

// TestCodecPairDoctoredProtocol proves the spec side of the drift gate: a
// PROTOCOL.md copy with one layout token doctored must fail the vettool run
// over internal/dist, so the machine-readable block cannot rot while the
// code moves on (or vice versa).
func TestCodecPairDoctoredProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping vettool build")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "torq-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/torq-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building torq-lint: %v\n%s", err, out)
	}

	spec, err := os.ReadFile(filepath.Join(root, "docs", "PROTOCOL.md"))
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(spec),
		"pass: u64 u64 u64 u64 bool bool u8 f64s",
		"pass: u64 u64 u64 u64 bool bool u16 f64s", 1)
	if doctored == string(spec) {
		t.Fatal("pass frame row not found in docs/PROTOCOL.md — update this test's doctored string")
	}
	path := filepath.Join(t.TempDir(), "PROTOCOL.md")
	if err := os.WriteFile(path, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "-codecpair.protocol="+path, "./internal/dist")
	vet.Dir = root
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("doctored frame-layouts row was not detected:\n%s", out)
	}
	if !strings.Contains(string(out), "disagrees with") {
		t.Fatalf("expected a codecpair spec-drift finding, got:\n%s", out)
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestFixtureCoverage is the docs-gate for the analyzer suite: every
// analyzer torq-lint ships must keep a fixture package under testdata/src,
// so deleting a fixture (and with it the regression proof that the analyzer
// still fires) fails the build.
func TestFixtureCoverage(t *testing.T) {
	fixtures := map[string]string{
		"detrange":        "detrange",
		"floatbits":       "floatbits",
		"nondet":          "nondet",
		"hotalloc":        "hotalloc",
		"nolocktelemetry": "nolock/collect",
		"torqdirective":   "torqdirective",
		"codecpair":       "codecpair/bad",
		"atomicmix":       "atomicmix",
		"mergeorder":      "mergeorder",
	}
	//torq:allow maprange -- independent per-analyzer assertions, order-insensitive
	for name, rel := range fixtures {
		dir := filepath.Join("testdata", "src", rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %s has no fixture dir %s: %v", name, dir, err)
			continue
		}
		hasGo := false
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
			}
		}
		if !hasGo {
			t.Errorf("analyzer %s fixture dir %s has no .go files", name, dir)
		}
	}
}
