package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// NoLockTelemetry proves that //torq:nolock functions — the telemetry
// collectors the ftdc recorder samples from its own goroutine — are
// atomics-only, transitively. A sampler that takes a mutex can stall behind
// a pass holding it; one that allocates perturbs the GC it is measuring; a
// channel op can deadlock the recorder outright. So a nolock function and
// everything it reaches may not:
//
//   - call into package sync (sync/atomic is the point and is allowed)
//   - send, receive, close, select, or range over channels; start goroutines
//   - read, write, delete, or range over maps
//   - allocate: make/new/append, slice or map literals, &T{...}, capturing
//     closures
//
// Reachability crosses package boundaries through analysis facts: a clean
// exported function gets a fact, and callers in other repro packages trust
// it (ftdc.CollectPar → par.Stats). Stdlib leaf packages that are known
// lock- and alloc-free — sync/atomic, math, math/bits, time's clock reads —
// are allowlisted. Dynamic calls are permitted only through function-typed
// parameters of the function under check (the emit callback pattern): the
// caller supplies the sink and owns its discipline.
var NoLockTelemetry = &analysis.Analyzer{
	Name:      "nolocktelemetry",
	Doc:       "prove //torq:nolock telemetry functions are transitively atomics-only and allocation-free",
	Flags:     newPackagesFlag("nolocktelemetry", "repro"),
	Run:       runNoLock,
	FactTypes: []analysis.Fact{new(nolockFact)},
}

// nolockFact marks a function proven atomics-only; importers trust it in
// place of re-analyzing the callee's package.
type nolockFact struct{}

func (*nolockFact) AFact()         {}
func (*nolockFact) String() string { return "nolock" }

// nolockStdlib are stdlib packages whose exported functions and methods are
// known to take no locks and allocate nothing on the paths collectors use.
var nolockStdlib = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"time":        true, // monotonic clock reads; collectors never build timers here
}

type nlViolation struct {
	pos token.Pos
	msg string
}

type nolockChecker struct {
	pass  *analysis.Pass
	allow allowIndex
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func][]nlViolation
	busy  map[*types.Func]bool
}

func runNoLock(pass *analysis.Pass) (interface{}, error) {
	if !pkgMatch(pass.Pkg.Path(), packagesFlag(pass)) {
		return nil, nil
	}
	c := &nolockChecker{
		pass:  pass,
		allow: buildAllowIndex(pass.Fset, pass.Files),
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func][]nlViolation),
		busy:  make(map[*types.Func]bool),
	}
	var order []*types.Func // source order, so diagnostics come out sorted
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
				order = append(order, fn)
			}
		}
	}
	// Prove every function in the package, exporting facts for the clean
	// ones so downstream packages can call them from nolock context; report
	// only on the annotated ones.
	for _, fn := range order {
		fd := c.decls[fn]
		v := c.check(fn)
		if len(v) == 0 {
			c.pass.ExportObjectFact(fn, &nolockFact{})
		}
		if hasFuncDirective(fd, dirNolock) {
			for _, viol := range v {
				pass.Reportf(viol.pos, "//torq:nolock function %s %s", fn.Name(), viol.msg)
			}
		}
	}
	c.allow.reportStale(pass, "nolock", false)
	return nil, nil
}

// check returns fn's violations, memoized; recursion cycles are treated as
// clean optimistically (the cycle's real ops are found on its own frames).
func (c *nolockChecker) check(fn *types.Func) []nlViolation {
	if v, ok := c.memo[fn]; ok {
		return v
	}
	if c.busy[fn] {
		return nil
	}
	c.busy[fn] = true
	v := c.scan(fn, c.decls[fn])
	c.busy[fn] = false
	c.memo[fn] = v
	return v
}

func (c *nolockChecker) scan(fn *types.Func, decl *ast.FuncDecl) []nlViolation {
	if decl == nil {
		return nil
	}
	info := c.pass.TypesInfo
	var out []nlViolation
	add := func(pos token.Pos, format string, args ...interface{}) {
		if !c.allow.allowed(c.pass.Fset, pos, "nolock") {
			out = append(out, nlViolation{pos, fmt.Sprintf(format, args...)})
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			add(n.Pos(), "starts a goroutine")
		case *ast.SendStmt:
			add(n.Pos(), "sends on a channel")
		case *ast.SelectStmt:
			add(n.Pos(), "selects on channels")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(n.Pos(), "receives from a channel")
			} else if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "allocates (&composite literal)")
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					add(n.For, "ranges over a map")
				case *types.Chan:
					add(n.For, "ranges over a channel")
				}
			}
		case *ast.IndexExpr:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					add(n.Pos(), "accesses a map")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "allocates (slice literal)")
				case *types.Map:
					add(n.Pos(), "allocates (map literal)")
				}
			}
		case *ast.FuncLit:
			if caps := captures(info, decl, n); len(caps) > 0 {
				add(n.Pos(), "allocates (closure capturing "+strings.Join(caps, ", ")+")")
			}
		case *ast.CallExpr:
			c.scanCall(fn, decl, n, add)
		}
		return true
	})
	return out
}

func (c *nolockChecker) scanCall(fn *types.Func, decl *ast.FuncDecl, call *ast.CallExpr, add func(token.Pos, string, ...interface{})) {
	info := c.pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				add(call.Pos(), "allocates (%s)", b.Name())
			case "delete":
				add(call.Pos(), "deletes from a map")
			case "close":
				add(call.Pos(), "closes a channel")
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && allocatingConversion(tv.Type, info.TypeOf(call.Args[0])) {
			add(call.Pos(), "allocates (string/byte-slice conversion)")
		}
		return // other conversions are free
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		// Dynamic call: only function-typed parameters of the function under
		// check are trusted (the emit callback pattern).
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && isParamOf(fn, v) {
				return
			}
		}
		add(call.Pos(), "makes a dynamic call through %s (only function parameters are trusted)", types.ExprString(call.Fun))
		return
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return // error.Error and friends from the universe scope
	}
	if pkg == c.pass.Pkg {
		if sub := c.check(callee); len(sub) > 0 {
			add(call.Pos(), "calls %s, which %s", callee.Name(), sub[0].msg)
		}
		return
	}
	if nolockStdlib[pkg.Path()] {
		return
	}
	if c.pass.ImportObjectFact(callee, &nolockFact{}) {
		return
	}
	add(call.Pos(), "calls %s.%s, which is not proven atomics-only", pkg.Path(), callee.Name())
}

// isParamOf reports whether v is one of fn's declared parameters.
func isParamOf(fn *types.Func, v *types.Var) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == v {
			return true
		}
	}
	return false
}
