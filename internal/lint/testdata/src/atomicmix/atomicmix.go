// Package atomicmix is the torq-lint fixture for the atomicmix analyzer:
// variables touched through sync/atomic anywhere in the package may not also
// be read or written plainly.
package atomicmix

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	safe   atomic.Int64 // typed atomic: immune by construction
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.misses, 1)
	s.safe.Add(1)
}

func (s *stats) plainRead() int64 {
	return s.hits // want "hits is accessed through sync/atomic"
}

func (s *stats) plainWrite() {
	s.misses = 0 // want "misses is accessed through sync/atomic"
}

func (s *stats) atomicRead() int64 {
	return atomic.LoadInt64(&s.hits) // atomic everywhere: clean
}

func (s *stats) typedRead() int64 {
	return s.safe.Load() // typed atomic: clean
}

var total uint64

func addTotal(n uint64) {
	atomic.AddUint64(&total, n)
}

func snapshotTotal() uint64 {
	//torq:allow atomicmix -- fixture: all writers joined before the snapshot
	return total
}

var slots [4]int64

func bumpSlot(i int) {
	atomic.AddInt64(&slots[i], 1) // index through the array: marks slots
}

func readSlot(i int) int64 {
	return slots[i] // want "slots is accessed through sync/atomic"
}

var lone int64

func loneAtomic() int64 {
	return atomic.LoadInt64(&lone)
}

func staleWaiver() int64 {
	//torq:allow atomicmix -- obsolete: this read became atomic // want "stale //torq:allow atomicmix"
	return atomic.LoadInt64(&lone)
}
