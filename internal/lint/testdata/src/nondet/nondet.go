// Package nondet is the torq-lint fixture for the nondet analyzer; the test
// scopes the analyzer to this package via its -packages flag.
package nondet

import (
	"math/rand"
	"runtime"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a numeric package"
}

func noise() float64 {
	return rand.Float64() // want "math/rand.Float64 in a numeric package"
}

func shape() int {
	return runtime.NumCPU() // want "runtime.NumCPU in a numeric package"
}

func seeded() float64 {
	r := rand.New(rand.NewSource(42)) // explicit source: deterministic
	return r.Float64()                // method on a caller-seeded source: fine
}

func allowed() time.Duration {
	start := time.Now()      //torq:allow nondet -- telemetry timing only
	return time.Since(start) //torq:allow nondet -- telemetry timing only
}
