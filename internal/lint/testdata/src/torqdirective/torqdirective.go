// Package torqdirective is the torq-lint fixture for directive hygiene.
package torqdirective

//torq:bogus directive // want "unknown //torq: directive"
var x int

//torq:hotpath
func hot() {
	_ = x
}

//torq:nolock
func cold() {
	_ = x
}

//torq:hotpath extra // want "takes no arguments"
func hotExtra() {
	_ = x
}

func misplaced() {
	//torq:hotpath // want "must be in a function's doc comment"
	_ = x
}

//torq:ordered-merge
func merge() {
	_ = x
}

func misplacedMerge() {
	//torq:ordered-merge // want "must be in a function's doc comment"
	_ = x
}

func badAllow(a, b float64) bool {
	//torq:allow nosuchrule -- reason // want "unknown rule"
	//torq:allow floateq missing separator // want "reason must follow a -- separator"
	return a < b
}
