// Package codecbad is the broken half of the codecpair fixture: a seeded
// encoder/decoder field-order mismatch, an orphaned encoder, a pair that
// drifted from its LAYOUTS.md row, a ghost layout row, plus the audited and
// stale //torq:allow cases.
package codecbad // want "frame-layouts row \"ghost\" matches no encode/decode pair"

import "encoding/binary"

type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) str(s string) { e.u16(uint16(len(s))); e.b = append(e.b, s...) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type dec struct {
	b   []byte
	off int
}

func (d *dec) u8() byte { v := d.b[d.off]; d.off++; return v }
func (d *dec) u16() uint16 {
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}
func (d *dec) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *dec) str() string {
	n := int(d.u16())
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
func (d *dec) bool() bool { return d.u8() != 0 }

// Seeded field-order mismatch: the encoder writes u16 then str, the decoder
// reads them swapped.
func encodeThing(v uint16, s string) []byte {
	var e enc
	e.u16(v)
	e.str(s)
	return e.b
}

func decodeThing(b []byte) (uint16, string) {
	d := dec{b: b}
	s := d.str() // want "codec asymmetry in frame \"thing\": encodeThing writes u16 at step 1 but decodeThing reads str"
	v := d.u16()
	return v, s
}

// Orphaned encoder: no decodeOrphan anywhere.
func encodeOrphan(v byte) []byte { // want "encodeOrphan has no matching decodeOrphan"
	var e enc
	e.u8(v)
	return e.b
}

// Symmetric pair whose width drifted from the LAYOUTS.md row (spec says u16).
func encodeCount(n uint32) []byte { // want "encodeCount disagrees with docs/PROTOCOL.md layout \"count\" at step 1: code writes u32, layout says u16"
	var e enc
	e.u32(n)
	return e.b
}

func decodeCount(b []byte) uint32 {
	d := dec{b: b}
	return d.u32()
}

// Length mismatch: the decoder stops one field short.
func encodeTail(a, b byte) []byte {
	var e enc
	e.u8(a)
	e.u8(b)
	return e.b
}

func decodeTail(b []byte) byte { // want "codec asymmetry in frame \"tail\": encodeTail writes 2 fields but decodeTail reads 1"
	d := dec{b: b}
	return d.u8()
}

// Audited asymmetry: the waiver on the mismatching read suppresses it.
func encodeMasked(v byte) []byte {
	var e enc
	e.u8(v)
	return e.b
}

func decodeMasked(b []byte) bool {
	d := dec{b: b}
	return d.bool() //torq:allow codecpair -- audited: bool reads the same u8 the encoder wrote
}

// Clean pair carrying a waiver nothing needs anymore.
func encodeClean(v uint16) []byte {
	var e enc
	e.u16(v)
	return e.b
}

func decodeClean(b []byte) uint16 {
	d := dec{b: b}
	//torq:allow codecpair -- obsolete waiver, nothing fires below // want "stale //torq:allow codecpair"
	return d.u16()
}
