// Package codecgood is the clean half of the codecpair fixture: every
// encodeX/decodeX pair is symmetric and matches the LAYOUTS.md rows, so the
// analyzer must stay silent (the test runs it with RunExpectClean).
package codecgood

import "encoding/binary"

type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) int(v int)    { e.u64(uint64(int64(v))) }
func (e *enc) str(s string) { e.u16(uint16(len(s))); e.b = append(e.b, s...) }

type dec struct {
	b   []byte
	off int
}

func (d *dec) u8() byte { v := d.b[d.off]; d.off++; return v }
func (d *dec) u16() uint16 {
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}
func (d *dec) u64() uint64 {
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *dec) int() int { return int(int64(d.u64())) }
func (d *dec) str() string {
	n := int(d.u16())
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

type point struct{ X, Y int }

type header struct {
	Version uint16
	Name    string
	Spans   []int
	Origin  point
	Tag     uint64
}

func encodePoint(e *enc, p point) {
	e.int(p.X)
	e.int(p.Y)
}

func decodePoint(d *dec) point {
	return point{X: d.int(), Y: d.int()}
}

func encodeHeader(m header) []byte {
	var e enc
	e.u16(m.Version)
	e.str(m.Name)
	e.u8(byte(len(m.Spans)))
	for _, s := range m.Spans {
		e.int(s)
	}
	encodePoint(&e, m.Origin)
	e.u64(m.Tag)
	return e.b
}

func decodeHeader(b []byte) header {
	d := dec{b: b}
	m := header{Version: d.u16(), Name: d.str()}
	n := int(d.u8())
	for i := 0; i < n; i++ {
		m.Spans = append(m.Spans, d.int())
	}
	m.Origin = decodePoint(&d)
	m.Tag = d.u64()
	return m
}
