// Package detrange is the torq-lint fixture for the detrange analyzer: each
// want comment pins a diagnostic, everything else must stay clean.
package detrange

import "sort"

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map has nondeterministic iteration order"
		total += v
	}
	return total
}

func sortedSum(m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort idiom: no finding
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func drain(m map[string]int) {
	for k := range m { // whole-map drain idiom: no finding
		delete(m, k)
	}
}

func allowed(m map[string]int) int {
	n := 0
	//torq:allow maprange -- pure count, order cannot matter
	for range m {
		n++
	}
	return n
}

func staleWaiver(xs []int) int {
	n := 0
	//torq:allow maprange -- obsolete: the range below is over a slice now // want "stale //torq:allow maprange"
	for range xs {
		n++
	}
	return n
}
