// Package floatbits is the torq-lint fixture for the floatbits analyzer.
package floatbits

import "math"

type point struct{ x, y float64 }

func bad(a, b float64) bool {
	return a == b // want "== on floating-point operands"
}

func badNeq(a, b []float64) bool {
	return a[0] != b[1] // want "!= on floating-point operands"
}

func structBad(a, b point) bool {
	return a == b // want "== on floating-point operands"
}

func complexBad(a, b complex128) bool {
	return a == b // want "== on floating-point operands"
}

func constOK(x float64) bool {
	return x == 0 // constant comparison: deliberate exact semantics
}

func nanIdiom(x float64) bool {
	return x != x // NaN self-test, bit-safe by definition
}

func bits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) // uint64 compare
}

func allowedEq(a, b float64) bool {
	//torq:allow floateq -- fixture exercising the allow path
	return a == b
}
