// Package stats is the exporting half of the nolocktelemetry fact fixture:
// Hits is proven atomics-only (and gets a fact), Grow allocates (no fact).
// Neither is annotated, so this package itself produces no diagnostics.
package stats

import "sync/atomic"

var counter atomic.Int64

// Hits is atomics-only; the analyzer exports a nolock fact for it.
func Hits() int64 {
	return counter.Load()
}

// Grow allocates, so no fact is exported and nolock callers are flagged.
func Grow(xs []int64) []int64 {
	return append(xs, counter.Load())
}
