// Package collect is the importing half of the nolocktelemetry fact fixture:
// cross-package calls are judged by the facts stats exported.
package collect

import (
	"sync"

	"repro/lintfixture/nolock/stats"
)

var (
	mu   sync.Mutex
	buf  []int64
	m    = map[string]int64{}
	ch   = make(chan int64, 1)
	sink func(int64)
)

//torq:nolock
func Collect(emit func(name string, value int64)) {
	emit("hits", stats.Hits()) // fact-proven callee + emit callback: clean
}

//torq:nolock
func BadLock() {
	mu.Lock()   // want "calls sync.Lock, which is not proven atomics-only"
	mu.Unlock() // want "calls sync.Unlock, which is not proven atomics-only"
}

//torq:nolock
func BadGrow() {
	buf = append(buf, stats.Hits()) // want "allocates .append."
}

//torq:nolock
func BadCross() {
	buf = stats.Grow(buf) // want "calls repro/lintfixture/nolock/stats.Grow, which is not proven atomics-only"
}

//torq:nolock
func BadTransitive() {
	viaHelper() // want "calls viaHelper, which sends on a channel"
}

func viaHelper() {
	ch <- 1
}

//torq:nolock
func BadMap() int64 {
	return m["x"] // want "accesses a map"
}

//torq:nolock
func BadDynamic() {
	sink(1) // want "makes a dynamic call through sink"
}
