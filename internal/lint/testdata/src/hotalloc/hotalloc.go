// Package hotalloc is the torq-lint fixture for the hotalloc analyzer. Only
// //torq:hotpath functions are checked; coldPath shows the default-off side.
package hotalloc

import "fmt"

type vec struct{ xs []float64 }

//torq:hotpath
func axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

//torq:hotpath
func badMake(n int) []float64 {
	return make([]float64, n) // want "make allocates"
}

//torq:hotpath
func badLit() []int {
	return []int{1, 2, 3} // want "slice literal allocates its backing array"
}

//torq:hotpath
func badPtr() *vec {
	return &vec{} // want "heap-escaping composite literal"
}

//torq:hotpath
func badFmt(x float64) {
	fmt.Println(x) // want "fmt.Println allocates"
}

//torq:hotpath
func badAppend(dst, src []float64) []float64 {
	out := dst
	out = append(out, src...)    // x = append(x, ...) reuse idiom: no finding
	grown := append(dst, 1.0)    // want "growing append"
	return append(grown, out...) // want "growing append"
}

//torq:hotpath
func badClosure(xs []float64) func() {
	total := 0.0
	return func() { // want "closure captures total, xs"
		total += xs[0]
	}
}

//torq:hotpath
func badConv(s string) []byte {
	return []byte(s) // want "conversion copies and allocates"
}

//torq:hotpath
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//torq:hotpath
func badGo(f func()) {
	go f() // want "go statement allocates a goroutine"
}

//torq:hotpath
func amortized(buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n) //torq:allow hotalloc -- amortized growth path
	}
	return buf[:n]
}

//torq:hotpath
func staleWaiver(x, y []float64) {
	//torq:allow hotalloc -- obsolete: the copy below no longer allocates // want "stale //torq:allow hotalloc"
	copy(y, x)
}

func coldPath(n int) []float64 {
	return make([]float64, n) // not annotated: no finding
}
