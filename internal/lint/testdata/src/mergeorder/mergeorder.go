// Package mergeorder is the torq-lint fixture for the mergeorder analyzer:
// //torq:ordered-merge functions must accumulate in shard/chunk-index order,
// never map-range, channel-arrival, or goroutine-interleaved order.
package mergeorder

// mergeGood accumulates strictly in shard-index order: clean.
//
//torq:ordered-merge
func mergeGood(parts [][]float64, out []float64) {
	for s := 0; s < len(parts); s++ {
		for i, v := range parts[s] {
			out[i] += v
		}
	}
}

//torq:ordered-merge
func mergeFromMap(parts map[int][]float64, out []float64) {
	for _, p := range parts { // want "ranges over a map"
		for i, v := range p {
			out[i] += v
		}
	}
}

//torq:ordered-merge
func mergeFromChan(ch chan []float64, out []float64, n int) {
	for j := 0; j < n; j++ {
		p := <-ch // want "receives from a channel"
		for i, v := range p {
			out[i] += v
		}
	}
}

//torq:ordered-merge
func mergeRangeChan(ch chan []float64, out []float64) {
	for p := range ch { // want "ranges over a channel"
		for i, v := range p {
			out[i] += v
		}
	}
}

//torq:ordered-merge
func mergeSelect(a, b chan float64) float64 {
	select { // want "selects on channels"
	case v := <-a: // want "receives from a channel"
		return v
	case v := <-b: // want "receives from a channel"
		return v
	}
}

//torq:ordered-merge
func mergeSpawns(parts [][]float64, out []float64) {
	done := make(chan struct{})
	go func() { // want "starts a goroutine"
		for i, v := range parts[0] {
			out[i] += v
		}
		close(done)
	}()
	<-done // want "receives from a channel"
}

// mergeWaived carries an audited exception.
//
//torq:ordered-merge
func mergeWaived(parts map[int][]float64, out []float64) {
	//torq:allow mergeorder -- fixture: values are disjoint row blocks, order vacuous
	for _, p := range parts {
		for i, v := range p {
			out[i] += v
		}
	}
}

// mergeStale fixed its map range but kept the waiver.
//
//torq:ordered-merge
func mergeStale(parts [][]float64, out []float64) {
	//torq:allow mergeorder -- obsolete: the loop is index-ordered now // want "stale //torq:allow mergeorder"
	for s := range parts {
		for i, v := range parts[s] {
			out[i] += v
		}
	}
}

// unannotated functions may merge however they like.
func unannotated(parts map[int][]float64, out []float64) {
	for _, p := range parts {
		for i, v := range p {
			out[i] += v
		}
	}
}
