package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MergeOrder makes the bit-identity family's merge-order invariant a
// vet-time property: a function annotated //torq:ordered-merge (the
// dist/sharded dTheta/diagT/z merges) must accumulate shard or chunk results
// only via loops indexed by shard/chunk id — float addition does not
// commute bitwise, so merging in arrival order silently breaks "same seed ⇒
// bit-identical gradients for every worker count". Inside an annotated body:
//
//   - no range over a map (iteration order is randomized)
//   - no range over a channel, channel receive, or select (arrival order)
//   - no go statements (the merge loop itself must stay sequential;
//     the parallel compute phase belongs before the annotated merge)
//
// The check is body-local like hotalloc: the annotation marks exactly the
// code whose loop structure is the proof. Deliberate exceptions carry
// //torq:allow mergeorder -- reason.
var MergeOrder = &analysis.Analyzer{
	Name:     "mergeorder",
	Doc:      "check //torq:ordered-merge functions accumulate in shard/chunk-index order, never arrival order",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMergeOrder,
}

func runMergeOrder(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildAllowIndex(pass.Fset, pass.Files)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !allow.allowed(pass.Fset, pos, "mergeorder") {
			pass.Reportf(pos, "//torq:ordered-merge function: "+format, args...)
		}
	}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || !hasFuncDirective(decl, dirOrderedMerge) {
			return
		}
		checkMergeBody(pass, decl, report)
	})
	allow.reportStale(pass, "mergeorder", false)
	return nil, nil
}

func checkMergeBody(pass *analysis.Pass, decl *ast.FuncDecl, report func(token.Pos, string, ...interface{})) {
	info := pass.TypesInfo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					report(n.For, "ranges over a map — iteration order is randomized; index results by shard/chunk id and loop in id order")
				case *types.Chan:
					report(n.For, "ranges over a channel — that is arrival order; collect into an id-indexed slice first, then merge by index")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "receives from a channel — merge input must come from an id-indexed structure, not arrival order")
			}
		case *ast.SelectStmt:
			report(n.Select, "selects on channels — selection order is nondeterministic")
		case *ast.GoStmt:
			report(n.Pos(), "starts a goroutine — the merge itself must stay sequential in shard/chunk-id order (parallelize the compute phase, not the merge)")
		}
		return true
	})
}
