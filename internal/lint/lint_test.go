package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer is run against its broken fixture under testdata/src; the
// fixture's want comments pin both the findings and the idioms/annotations
// that must stay clean. Deleting a want, or a fixture diagnostic appearing
// on an unmarked line, fails the test.

func TestDetRange(t *testing.T) {
	linttest.NewRunner(t, "testdata/src").Run(lint.DetRange, "detrange")
}

func TestFloatBits(t *testing.T) {
	linttest.NewRunner(t, "testdata/src").Run(lint.FloatBits, "floatbits")
}

func TestNonDet(t *testing.T) {
	linttest.SetFlag(t, lint.NonDet, "packages", "repro/lintfixture/nondet")
	linttest.NewRunner(t, "testdata/src").Run(lint.NonDet, "nondet")
}

func TestHotAlloc(t *testing.T) {
	linttest.NewRunner(t, "testdata/src").Run(lint.HotAlloc, "hotalloc")
}

// TestNoLockTelemetry analyzes the two-package fixture in dependency order:
// stats exports nolock facts for its clean functions, and collect's
// diagnostics prove the facts (not re-analysis) decide cross-package calls.
func TestNoLockTelemetry(t *testing.T) {
	r := linttest.NewRunner(t, "testdata/src")
	r.Run(lint.NoLockTelemetry, "nolock/stats")
	r.Run(lint.NoLockTelemetry, "nolock/collect")
}

func TestTorqDirective(t *testing.T) {
	linttest.NewRunner(t, "testdata/src").Run(lint.TorqDirective, "torqdirective")
}

// TestPackagesFlagScoping re-runs detrange with its -packages flag pointed
// away from the fixture's import path: every finding must disappear.
func TestPackagesFlagScoping(t *testing.T) {
	linttest.SetFlag(t, lint.DetRange, "packages", "repro/internal/qsim")
	linttest.NewRunner(t, "testdata/src").RunExpectClean(lint.DetRange, "detrange")
}

// TestAnalyzersWellFormed checks the multichecker surface: six analyzers,
// unique names, documented, and every allow-rule owner present.
func TestAnalyzersWellFormed(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 6 {
		t.Fatalf("Analyzers() returned %d analyzers, want 6", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"torqdirective", "detrange", "floatbits", "nondet", "nolocktelemetry", "hotalloc"} {
		if !seen[name] {
			t.Errorf("Analyzers() is missing %q", name)
		}
	}
}
