package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer is run against its broken fixture under testdata/src; the
// fixture's want comments pin both the findings and the idioms/annotations
// that must stay clean. Deleting a want, or a fixture diagnostic appearing
// on an unmarked line, fails the test.

func TestDetRange(t *testing.T) {
	linttest.NewRunner(t, "testdata/src").Run(lint.DetRange, "detrange")
}

func TestFloatBits(t *testing.T) {
	linttest.NewRunner(t, "testdata/src").Run(lint.FloatBits, "floatbits")
}

func TestNonDet(t *testing.T) {
	linttest.SetFlag(t, lint.NonDet, "packages", "repro/lintfixture/nondet")
	linttest.NewRunner(t, "testdata/src").Run(lint.NonDet, "nondet")
}

func TestHotAlloc(t *testing.T) {
	linttest.NewRunner(t, "testdata/src").Run(lint.HotAlloc, "hotalloc")
}

// TestNoLockTelemetry analyzes the two-package fixture in dependency order:
// stats exports nolock facts for its clean functions, and collect's
// diagnostics prove the facts (not re-analysis) decide cross-package calls.
func TestNoLockTelemetry(t *testing.T) {
	r := linttest.NewRunner(t, "testdata/src")
	r.Run(lint.NoLockTelemetry, "nolock/stats")
	r.Run(lint.NoLockTelemetry, "nolock/collect")
}

func TestTorqDirective(t *testing.T) {
	linttest.NewRunner(t, "testdata/src").Run(lint.TorqDirective, "torqdirective")
}

// TestCodecPairGood proves the symmetric fixture — including the inlined
// helper pair and the loop group — clean against its own LAYOUTS.md spec.
func TestCodecPairGood(t *testing.T) {
	r := linttest.NewRunner(t, "testdata/src")
	linttest.SetFlag(t, lint.CodecPair, "packages", "repro/lintfixture/codecpair/good")
	linttest.SetFlag(t, lint.CodecPair, "protocol", r.FixturePath("codecpair/good/LAYOUTS.md"))
	r.RunExpectClean(lint.CodecPair, "codecpair/good")
}

// TestCodecPairBad pins every codecpair finding class: the seeded
// encoder/decoder field-order mismatch, an orphaned encoder, code/spec width
// drift, a decoder stopping short, a ghost spec row, and the audited and
// stale //torq:allow paths.
func TestCodecPairBad(t *testing.T) {
	r := linttest.NewRunner(t, "testdata/src")
	linttest.SetFlag(t, lint.CodecPair, "packages", "repro/lintfixture/codecpair/bad")
	linttest.SetFlag(t, lint.CodecPair, "protocol", r.FixturePath("codecpair/bad/LAYOUTS.md"))
	r.Run(lint.CodecPair, "codecpair/bad")
}

func TestAtomicMix(t *testing.T) {
	linttest.SetFlag(t, lint.AtomicMix, "packages", "repro/lintfixture/atomicmix")
	linttest.NewRunner(t, "testdata/src").Run(lint.AtomicMix, "atomicmix")
}

func TestMergeOrder(t *testing.T) {
	linttest.NewRunner(t, "testdata/src").Run(lint.MergeOrder, "mergeorder")
}

// TestPackagesFlagScoping re-runs detrange with its -packages flag pointed
// away from the fixture's import path: every finding must disappear.
func TestPackagesFlagScoping(t *testing.T) {
	linttest.SetFlag(t, lint.DetRange, "packages", "repro/internal/qsim")
	linttest.NewRunner(t, "testdata/src").RunExpectClean(lint.DetRange, "detrange")
}

// TestAnalyzersWellFormed checks the multichecker surface: nine torq
// analyzers plus the bundled stock vet passes, unique names, documented, and
// every allow-rule owner present.
func TestAnalyzersWellFormed(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 9 {
		t.Fatalf("Analyzers() returned %d analyzers, want 9", len(as))
	}
	seen := map[string]bool{}
	for _, a := range append(lint.Analyzers(), lint.Stock()...) {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"torqdirective", "detrange", "floatbits", "nondet", "nolocktelemetry", "hotalloc", "codecpair", "atomicmix", "mergeorder"} {
		if !seen[name] {
			t.Errorf("Analyzers() is missing %q", name)
		}
	}
	for _, name := range []string{"atomic", "copylocks", "lostcancel", "unusedresult"} {
		if !seen[name] {
			t.Errorf("Stock() is missing %q", name)
		}
	}
}
