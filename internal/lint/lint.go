// Package lint is the torq-lint analyzer suite; see doc.go for the
// invariant each analyzer enforces.
package lint

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
)

// Analyzers returns the full torq-lint suite in the order diagnostics are
// grouped: directive hygiene first (a typo there silently disables the
// rest), then the determinism rules, then the protocol/concurrency deep
// checks, then the performance contracts.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		TorqDirective,
		DetRange,
		FloatBits,
		NonDet,
		CodecPair,
		AtomicMix,
		MergeOrder,
		NoLockTelemetry,
		HotAlloc,
	}
}

// Stock returns the stock go/analysis passes bundled into the torq-lint
// vettool so one required CI job runs everything relevant to the
// repository's invariants: atomic (sloppy x = atomic.AddT(&x, ...)
// self-assignments), copylocks (a copied atomic.Int64 or mutex is a silent
// fork of the counter), lostcancel, and unusedresult. They ship with the Go
// toolchain, so — unlike Analyzers() — they keep no fixtures or invariant
// rows here.
func Stock() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomic.Analyzer,
		copylock.Analyzer,
		lostcancel.Analyzer,
		unusedresult.Analyzer,
	}
}
