// Package lint is the torq-lint analyzer suite; see doc.go for the
// invariant each analyzer enforces.
package lint

import "golang.org/x/tools/go/analysis"

// Analyzers returns the full torq-lint suite in the order diagnostics are
// grouped: directive hygiene first (a typo there silently disables the
// rest), then the determinism rules, then the performance contracts.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		TorqDirective,
		DetRange,
		FloatBits,
		NonDet,
		NoLockTelemetry,
		HotAlloc,
	}
}
