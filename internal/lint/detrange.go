package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DetRange flags `range` over a map: iteration order is deliberately
// randomized by the runtime, so any map-ordered work — gradient/diagT
// merges, checkpoint save/load, report and experiment output — silently
// breaks the bit-identity family (or just diffs across runs). Two
// order-insensitive idioms pass without annotation:
//
//	for k := range m { keys = append(keys, k) }   // collect, sort after
//	for k := range m { delete(m, k) }             // drain the whole map
//
// Anything else must sort keys first or carry //torq:allow maprange with a
// reason stating why order cannot matter.
var DetRange = &analysis.Analyzer{
	Name:     "detrange",
	Doc:      "flag range over a map unless the loop is an order-insensitive idiom",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Flags:    newPackagesFlag("detrange", "repro"),
	Run:      runDetRange,
}

func runDetRange(pass *analysis.Pass) (interface{}, error) {
	if !pkgMatch(pass.Pkg.Path(), packagesFlag(pass)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := buildAllowIndex(pass.Fset, pass.Files)
	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if keyCollectionLoop(rs) || drainLoop(rs) {
			return
		}
		if allow.allowed(pass.Fset, rs.For, "maprange") {
			return
		}
		pass.Reportf(rs.For, "range over map has nondeterministic iteration order: sort the keys first, or //torq:allow maprange -- reason")
	})
	allow.reportStale(pass, "maprange", false)
	return nil, nil
}

// keyCollectionLoop matches `for k := range m { s = append(s, k) }`: the only
// map-ordered effect is the order of a slice the caller is expected to sort
// (the sortedKeys idiom). The value variable must be unused.
func keyCollectionLoop(rs *ast.RangeStmt) bool {
	k, ok := rangeKeyIdent(rs)
	if !ok || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == k &&
		types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0])
}

// drainLoop matches `for k := range m { delete(m, k) }` — whole-map deletion
// is order-insensitive (and blessed by the spec).
func drainLoop(rs *ast.RangeStmt) bool {
	k, ok := rangeKeyIdent(rs)
	if !ok || len(rs.Body.List) != 1 {
		return false
	}
	es, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "delete" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == k &&
		types.ExprString(call.Args[0]) == types.ExprString(rs.X)
}

// rangeKeyIdent returns the loop's key identifier when the value slot is
// absent or blank.
func rangeKeyIdent(rs *ast.RangeStmt) (string, bool) {
	k, ok := rs.Key.(*ast.Ident)
	if !ok || k.Name == "_" {
		return "", false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return "", false
		}
	}
	return k.Name, true
}
