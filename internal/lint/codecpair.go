package lint

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// CodecPair proves the wire codec symmetric: for every encodeX/decodeX pair
// (the frame codecs in internal/dist/frame.go) it extracts the ordered
// sequence of primitive codec calls — u8/bool/u16/u32/u64/int/str/f64s/
// optF64s, with loops preserved as loop(...) groups and same-package helpers
// like encodeDigest inlined — from both functions and diffs the two
// sequences. A decoder that reads fields in a different order, with a
// different width, or skips one is a build error long before the golden-byte
// tests run.
//
// The same sequences are cross-checked against the machine-readable
// `frame-layouts` block in docs/PROTOCOL.md, drift-gated both ways: a codec
// pair without a layout row, a layout row without a codec pair, and any
// disagreement between code and spec are all findings. The spec location
// defaults to <module root>/docs/PROTOCOL.md and is overridden with
// -codecpair.protocol (the fixtures do).
var CodecPair = &analysis.Analyzer{
	Name:  "codecpair",
	Doc:   "check encodeX/decodeX pairs read exactly the fields written, in order, matching the PROTOCOL.md frame layouts",
	Flags: newCodecPairFlags(),
	Run:   runCodecPair,
}

func newCodecPairFlags() flag.FlagSet {
	fs := flag.NewFlagSet("codecpair", flag.ExitOnError)
	fs.String("packages", "repro/internal/dist", "comma-separated import-path prefixes to check (\"*\" for all)")
	fs.String("protocol", "", "path to the frame-layouts spec (default: <module root>/docs/PROTOCOL.md)")
	return *fs
}

// codecPrims are the primitive read/write methods whose call order is the
// wire layout. Matching is by method name on a same-package receiver, so the
// encoder's enc methods and the decoder's dec methods align by name.
var codecPrims = map[string]bool{
	"u8": true, "bool": true, "u16": true, "u32": true, "u64": true,
	"int": true, "str": true, "f64s": true, "optF64s": true,
}

// seqTok is one element of an extracted layout sequence: a primitive name or
// a structural marker ("loop(", "if(", "|", ")").
type seqTok struct {
	name string
	pos  token.Pos
}

func runCodecPair(pass *analysis.Pass) (interface{}, error) {
	if !pkgMatch(pass.Pkg.Path(), packagesFlag(pass)) {
		return nil, nil
	}
	allow := buildAllowIndex(pass.Fset, pass.Files)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !allow.allowed(pass.Fset, pos, "codecpair") {
			pass.Reportf(pos, format, args...)
		}
	}

	x := &codecExtractor{
		info:  pass.TypesInfo,
		pkg:   pass.Pkg,
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func][]seqTok),
		busy:  make(map[*types.Func]bool),
	}
	// The codec surface is production code; _test.go helpers (round-trip
	// drivers, fuzz shims) are not frame definitions.
	encoders := make(map[string]*ast.FuncDecl)
	decoders := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				x.decls[fn] = fd
			}
			if name, ok := codecName(fd.Name.Name, "encode", "Frame"); ok {
				encoders[name] = fd
			} else if name, ok := codecName(fd.Name.Name, "decode", "Into"); ok {
				decoders[name] = fd
			}
		}
	}
	names := make([]string, 0, len(encoders))
	for n := range encoders {
		names = append(names, n)
	}
	//torq:allow maprange -- names are sorted before use
	for n := range decoders {
		if _, dup := encoders[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var pairs []string
	for _, n := range names {
		e, d := encoders[n], decoders[n]
		switch {
		case e == nil:
			report(d.Name.Pos(), "decode%s has no matching encode%s: every frame codec is a pair", n, n)
		case d == nil:
			report(e.Name.Pos(), "encode%s has no matching decode%s: every frame codec is a pair", n, n)
		default:
			pairs = append(pairs, n)
			x.comparePair(pass, n, e, d, report)
		}
	}
	if len(pairs) > 0 {
		checkProtocolLayouts(pass, x, pairs, encoders, decoders, report)
	}
	allow.reportStale(pass, "codecpair", false)
	return nil, nil
}

// codecName strips prefix (and, when present, the trailing suffix — the
// whole-frame encoders are encodeXFrame, the zero-alloc decoders decodeXInto)
// from a function name, returning the frame type's CamelCase name.
func codecName(fn, prefix, suffix string) (string, bool) {
	rest, ok := strings.CutPrefix(fn, prefix)
	if !ok || rest == "" || rest[0] < 'A' || rest[0] > 'Z' {
		return "", false
	}
	if trimmed := strings.TrimSuffix(rest, suffix); trimmed != "" {
		rest = trimmed
	}
	return rest, true
}

// frameSnakeName converts the CamelCase frame type to the snake_case name
// the protocol document uses (HelloAck → hello_ack).
func frameSnakeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

func (x *codecExtractor) comparePair(pass *analysis.Pass, name string, e, d *ast.FuncDecl, report func(token.Pos, string, ...interface{})) {
	es := x.declSeq(pass, e)
	ds := x.declSeq(pass, d)
	for i := 0; i < len(es) && i < len(ds); i++ {
		if es[i].name == ds[i].name {
			continue
		}
		report(ds[i].pos, "codec asymmetry in frame %q: %s writes %s at step %d but %s reads %s — the decoder must consume exactly the encoder's field sequence",
			frameSnakeName(name), e.Name.Name, es[i].name, i+1, d.Name.Name, ds[i].name)
		return
	}
	if len(es) != len(ds) {
		report(d.Name.Pos(), "codec asymmetry in frame %q: %s writes %d fields but %s reads %d",
			frameSnakeName(name), e.Name.Name, len(es), d.Name.Name, len(ds))
	}
}

// checkProtocolLayouts cross-checks every codec pair against the
// frame-layouts block: both directions are drift-gated.
func checkProtocolLayouts(pass *analysis.Pass, x *codecExtractor, pairs []string, encoders, decoders map[string]*ast.FuncDecl, report func(token.Pos, string, ...interface{})) {
	pkgPos := pass.Files[0].Name.Pos()
	path := protocolPath(pass)
	if path == "" {
		report(pkgPos, "cannot locate docs/PROTOCOL.md above this package; point -codecpair.protocol at the spec")
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		report(pkgPos, "cannot read frame-layouts spec: %v", err)
		return
	}
	rows, err := parseFrameLayouts(data)
	if err != nil {
		report(pkgPos, "%s: %v", path, err)
		return
	}

	// Rows referenced from other rows (digest inside hello) are layout
	// fragments, not frames; they still must name a codec pair or be
	// referenced — anything else is spec drift.
	referenced := make(map[string]bool)
	//torq:allow maprange -- builds the referenced set, order-insensitive
	for _, toks := range rows {
		for _, t := range toks {
			if _, isRow := rows[t]; isRow {
				referenced[t] = true
			}
		}
	}
	matched := make(map[string]bool)
	for _, name := range pairs {
		frame := frameSnakeName(name)
		if _, ok := rows[frame]; !ok {
			report(encoders[name].Name.Pos(), "docs/PROTOCOL.md frame-layouts block has no row %q for codec pair encode%s/decode%s", frame, name, name)
			continue
		}
		matched[frame] = true
		exp, err := expandLayout(frame, rows, make(map[string]bool))
		if err != nil {
			report(encoders[name].Name.Pos(), "frame-layouts row %q: %v", frame, err)
			continue
		}
		got := x.declSeq(pass, encoders[name])
		compareLayout(frame, name, exp, got, encoders[name], report)
	}
	rowNames := make([]string, 0, len(rows))
	for n := range rows {
		rowNames = append(rowNames, n)
	}
	sort.Strings(rowNames)
	for _, n := range rowNames {
		if !matched[n] && !referenced[n] {
			report(pkgPos, "frame-layouts row %q matches no encode/decode pair in this package — stale spec rows hide real drift", n)
		}
	}
}

func compareLayout(frame, name string, exp []string, got []seqTok, enc *ast.FuncDecl, report func(token.Pos, string, ...interface{})) {
	n := len(exp)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if exp[i] != got[i].name {
			report(enc.Name.Pos(), "encode%s disagrees with docs/PROTOCOL.md layout %q at step %d: code writes %s, layout says %s",
				name, frame, i+1, got[i].name, exp[i])
			return
		}
	}
	if len(exp) != len(got) {
		report(enc.Name.Pos(), "encode%s disagrees with docs/PROTOCOL.md layout %q: code has %d steps, layout has %d",
			name, frame, len(got), len(exp))
	}
}

// protocolPath resolves the spec location: the -codecpair.protocol flag, or
// docs/PROTOCOL.md under the module root found by walking up from the
// package's own source files (works both under `go test` and as a vettool,
// whose working directory is the build cache).
func protocolPath(pass *analysis.Pass) string {
	if v := pass.Analyzer.Flags.Lookup("protocol").Value.String(); v != "" {
		return v
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "docs", "PROTOCOL.md")
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// parseFrameLayouts extracts the ```frame-layouts fenced block: one
// `name: tokens` row per line, tokens being primitives, loop(...) groups,
// and references to other rows.
func parseFrameLayouts(data []byte) (map[string][]string, error) {
	rows := make(map[string][]string)
	in := false
	for _, line := range strings.Split(string(data), "\n") {
		t := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(t, "```"):
			if in {
				in = false
			} else if strings.TrimSpace(strings.TrimPrefix(t, "```")) == "frame-layouts" {
				in = true
			}
		case in && t != "" && !strings.HasPrefix(t, "#"):
			name, rest, ok := strings.Cut(t, ":")
			if !ok {
				return nil, fmt.Errorf("frame-layouts row %q is not `name: tokens`", t)
			}
			rows[strings.TrimSpace(name)] = tokenizeLayout(rest)
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no ```frame-layouts block found — codecpair needs the machine-readable per-frame layout rows")
	}
	return rows, nil
}

func tokenizeLayout(s string) []string {
	s = strings.ReplaceAll(s, "(", "( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	var out []string
	for _, f := range strings.Fields(s) {
		if f == "(" && len(out) > 0 {
			out[len(out)-1] += "("
			continue
		}
		out = append(out, f)
	}
	return out
}

// expandLayout resolves row references (hello ends in digest) into a flat
// token sequence comparable to an extracted codec sequence.
func expandLayout(name string, rows map[string][]string, busy map[string]bool) ([]string, error) {
	if busy[name] {
		return nil, fmt.Errorf("layout reference cycle through %q", name)
	}
	busy[name] = true
	defer delete(busy, name)
	toks, ok := rows[name]
	if !ok {
		return nil, fmt.Errorf("layout row %q is not defined", name)
	}
	var out []string
	for _, t := range toks {
		if codecPrims[t] || t == ")" || t == "|" || strings.HasSuffix(t, "(") {
			out = append(out, t)
			continue
		}
		sub, err := expandLayout(t, rows, busy)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// codecExtractor walks codec bodies collecting primitive-call sequences,
// inlining same-package helper calls (encodeDigest, appendResultEntry) and
// preserving loops as loop(...) groups; memoized per function.
type codecExtractor struct {
	info  *types.Info
	pkg   *types.Package
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func][]seqTok
	busy  map[*types.Func]bool
}

func (x *codecExtractor) declSeq(pass *analysis.Pass, fd *ast.FuncDecl) []seqTok {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	return x.funcSeq(fn)
}

func (x *codecExtractor) funcSeq(fn *types.Func) []seqTok {
	if s, ok := x.memo[fn]; ok {
		return s
	}
	if x.busy[fn] {
		return nil // recursion: the cycle's primitives are found on its own frame
	}
	x.busy[fn] = true
	var out []seqTok
	if decl := x.decls[fn]; decl != nil && decl.Body != nil {
		x.walk(decl.Body, &out)
	}
	x.busy[fn] = false
	x.memo[fn] = out
	return out
}

// walk appends n's primitive sequence to out. Loops and branches group their
// bodies in markers; calls either emit a primitive token, inline a
// same-package callee, or contribute nothing.
func (x *codecExtractor) walk(n ast.Node, out *[]seqTok) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		if n.Init != nil {
			x.walk(n.Init, out)
		}
		if n.Cond != nil {
			x.walk(n.Cond, out)
		}
		var body []seqTok
		x.walk(n.Body, &body)
		if n.Post != nil {
			x.walk(n.Post, &body)
		}
		x.group("loop(", n.For, body, out)
		return
	case *ast.RangeStmt:
		x.walk(n.X, out)
		var body []seqTok
		x.walk(n.Body, &body)
		x.group("loop(", n.For, body, out)
		return
	case *ast.IfStmt:
		if n.Init != nil {
			x.walk(n.Init, out)
		}
		x.walk(n.Cond, out)
		var thenSeq, elseSeq []seqTok
		x.walk(n.Body, &thenSeq)
		if n.Else != nil {
			x.walk(n.Else, &elseSeq)
		}
		if len(thenSeq)+len(elseSeq) == 0 {
			return
		}
		*out = append(*out, seqTok{"if(", n.If})
		*out = append(*out, thenSeq...)
		*out = append(*out, seqTok{"|", n.If})
		*out = append(*out, elseSeq...)
		*out = append(*out, seqTok{")", n.If})
		return
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Data-dependent dispatch: keep the primitives, grouped, so a
		// symmetric switch on both sides still matches.
		var body []seqTok
		x.walkChildren(n, &body)
		x.group("switch(", n.Pos(), body, out)
		return
	case *ast.FuncLit:
		return // runs elsewhere, if at all
	case *ast.CallExpr:
		x.call(n, out)
		return
	}
	x.walkChildren(n, out)
}

// walkChildren visits n's children in source order, re-dispatching structural
// nodes through walk.
func (x *codecExtractor) walkChildren(root ast.Node, out *[]seqTok) {
	ast.Inspect(root, func(c ast.Node) bool {
		if c == nil || c == root {
			return true
		}
		switch c.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.IfStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit, *ast.CallExpr:
			x.walk(c, out)
			return false
		}
		return true
	})
}

func (x *codecExtractor) group(open string, pos token.Pos, body []seqTok, out *[]seqTok) {
	if len(body) == 0 {
		return
	}
	*out = append(*out, seqTok{open, pos})
	*out = append(*out, body...)
	*out = append(*out, seqTok{")", pos})
}

func (x *codecExtractor) call(c *ast.CallExpr, out *[]seqTok) {
	x.walk(c.Fun, out)
	for _, a := range c.Args {
		x.walk(a, out)
	}
	fn := calleeFunc(x.info, c)
	if fn == nil {
		return
	}
	// Primitive methods first: enc.bool wraps u8 internally, dec.str wraps
	// u32+take — the wire layout is the primitive named, not its plumbing.
	if codecPrims[fn.Name()] && fn.Signature().Recv() != nil {
		*out = append(*out, seqTok{fn.Name(), c.Pos()})
		return
	}
	if fn.Pkg() != nil && fn.Pkg() == x.pkg {
		if sub := x.funcSeq(fn); len(sub) > 0 {
			*out = append(*out, sub...)
		}
	}
}
