// Package lint is the repository's static-analysis suite: a set of
// golang.org/x/tools/go/analysis analyzers that turn the determinism,
// lock-free-telemetry, and zero-allocation contracts documented in the
// `# Invariants` sections of qsim/par/dist/ftdc from "a runtime test
// noticed" into "the build refuses". cmd/torq-lint packages the suite as a
// `go vet -vettool` multichecker; CI runs it as a required job, and the
// fixtures under testdata/ pin each rule's failure mode.
//
// The analyzers:
//
//   - detrange: flags `range` over a map in repository packages unless the
//     loop is a recognized order-insensitive idiom (key collection for
//     sorting, whole-map delete) — map iteration order silently breaks the
//     bit-identity family (gradient/diagT merges, checkpoint round-trips,
//     report output).
//   - nolocktelemetry: proves functions annotated //torq:nolock are
//     atomics-only — no mutexes, channels, map operations, or allocations
//     reachable through same-package calls, with cross-package calls
//     verified by exported facts — so ftdc sampling can never block or
//     perturb the computation it observes.
//   - hotalloc: functions annotated //torq:hotpath (frame codec,
//     ShardRunner shard loop, per-sample-range kernels) may not contain
//     heap-escaping composite literals, fmt calls, closures capturing by
//     reference, growing appends, or allocating conversions — compile-time
//     teeth for the 0-allocs/op benchmarks.
//   - floatbits: forbids ==/!= on floating-point or complex operands unless
//     one side is a constant or the comparison is the x != x NaN idiom,
//     steering bit-identity assertions to math.Float64bits and parity
//     assertions to tolerances.
//   - nondet: forbids wall-clock reads, the global math/rand source, and
//     GOMAXPROCS/NumCPU-shaped branching inside the numeric packages
//     (qsim/ad/opt/maxwell) where they would leak into trajectories.
//   - torqdirective: validates the //torq: directive namespace itself —
//     unknown or misplaced directives are errors, so an annotation typo
//     cannot silently disable a rule.
//   - codecpair: proves every encodeX/decodeX frame codec in internal/dist
//     symmetric by extracting and diffing the two primitive-call sequences
//     (loops preserved as groups, same-package helpers inlined), and
//     cross-checks both against the machine-readable frame-layouts block in
//     docs/PROTOCOL.md — a codec pair without a spec row, a spec row without
//     a codec pair, and any code/spec disagreement are all findings.
//   - atomicmix: a variable passed to sync/atomic anywhere in a package may
//     not also be read or written plainly — a torn access corrupts counters
//     without failing parity. Test files are exempt (join-then-inspect is
//     proven by the race job); typed atomic.* values are immune by
//     construction.
//   - mergeorder: functions annotated //torq:ordered-merge (the dist and
//     sharded dTheta/diagT/z merges, curriculum bin residuals) must
//     accumulate via index-ordered loops only — map ranges, channel
//     receives/ranges, select, and go statements are errors, because float
//     addition in arrival order breaks worker-count bit-identity.
//
// Stock() additionally bundles the standard vet passes atomic, copylocks,
// lostcancel, and unusedresult into the vettool; they ship without fixtures
// or invariant rows (upstream owns their tests), but copylocks is what backs
// atomicmix's typed-atomic exemption.
//
// # Invariants
//
// Every deliberate exception is visible in the source: a rule is only
// silenced by a `//torq:allow <rule>` comment on (or immediately above) the
// offending line, and torqdirective rejects allow comments for rules that
// do not exist. An allow that suppresses nothing is itself a finding
// ("stale allow"), so waivers cannot outlive the code they excused. The
// suite must run clean on this repository — CI enforces
// `go vet -vettool=torq-lint ./...` and surfaces findings as GitHub
// annotations via `torq-lint -github` (`-json` emits the same list as a
// machine-readable array) — and each analyzer must keep a
// deliberately-broken fixture under testdata/src/<analyzer>/ (the fixture
// gate fails if one is deleted), so the rules are pinned from both sides.
package lint
