// Package lint is the repository's static-analysis suite: a set of
// golang.org/x/tools/go/analysis analyzers that turn the determinism,
// lock-free-telemetry, and zero-allocation contracts documented in the
// `# Invariants` sections of qsim/par/dist/ftdc from "a runtime test
// noticed" into "the build refuses". cmd/torq-lint packages the suite as a
// `go vet -vettool` multichecker; CI runs it as a required job, and the
// fixtures under testdata/ pin each rule's failure mode.
//
// The analyzers:
//
//   - detrange: flags `range` over a map in repository packages unless the
//     loop is a recognized order-insensitive idiom (key collection for
//     sorting, whole-map delete) — map iteration order silently breaks the
//     bit-identity family (gradient/diagT merges, checkpoint round-trips,
//     report output).
//   - nolocktelemetry: proves functions annotated //torq:nolock are
//     atomics-only — no mutexes, channels, map operations, or allocations
//     reachable through same-package calls, with cross-package calls
//     verified by exported facts — so ftdc sampling can never block or
//     perturb the computation it observes.
//   - hotalloc: functions annotated //torq:hotpath (frame codec,
//     ShardRunner shard loop, per-sample-range kernels) may not contain
//     heap-escaping composite literals, fmt calls, closures capturing by
//     reference, growing appends, or allocating conversions — compile-time
//     teeth for the 0-allocs/op benchmarks.
//   - floatbits: forbids ==/!= on floating-point or complex operands unless
//     one side is a constant or the comparison is the x != x NaN idiom,
//     steering bit-identity assertions to math.Float64bits and parity
//     assertions to tolerances.
//   - nondet: forbids wall-clock reads, the global math/rand source, and
//     GOMAXPROCS/NumCPU-shaped branching inside the numeric packages
//     (qsim/ad/opt/maxwell) where they would leak into trajectories.
//   - torqdirective: validates the //torq: directive namespace itself —
//     unknown or misplaced directives are errors, so an annotation typo
//     cannot silently disable a rule.
//
// # Invariants
//
// Every deliberate exception is visible in the source: a rule is only
// silenced by a `//torq:allow <rule>` comment on (or immediately above) the
// offending line, and torqdirective rejects allow comments for rules that
// do not exist. The suite must run clean on this repository — CI enforces
// `go vet -vettool=torq-lint ./...` — and each analyzer must keep a
// deliberately-broken fixture under testdata/src/<analyzer>/ (the fixture
// gate fails if one is deleted), so the rules are pinned from both sides.
package lint
