package ftdc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"
)

// Sample is one decoded telemetry snapshot. Names is the sample's schema in
// sorted order (shared across samples of the same generation — do not
// mutate); Vals is parallel to it.
type Sample struct {
	T     time.Time
	Names []string
	Vals  []int64
}

// Value returns the sample's value for a metric name.
func (s Sample) Value(name string) (int64, bool) {
	i := sort.SearchStrings(s.Names, name)
	if i < len(s.Names) && s.Names[i] == name {
		return s.Vals[i], true
	}
	return 0, false
}

// Decode parses a dump produced by Recorder.WriteTo back into samples in
// capture order.
func Decode(data []byte) ([]Sample, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, errors.New("ftdc: not a torqftdc1 dump")
	}
	data = data[len(magic):]
	uvar := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, errors.New("ftdc: truncated uvarint")
		}
		data = data[n:]
		return v, nil
	}
	schemas := map[uint64][]string{}
	var out []Sample
	for len(data) > 0 {
		tag := data[0]
		data = data[1:]
		switch tag {
		case 'S':
			gen, err := uvar()
			if err != nil {
				return nil, err
			}
			cnt, err := uvar()
			if err != nil {
				return nil, err
			}
			names := make([]string, 0, cnt)
			for i := uint64(0); i < cnt; i++ {
				l, err := uvar()
				if err != nil {
					return nil, err
				}
				if uint64(len(data)) < l {
					return nil, errors.New("ftdc: truncated schema name")
				}
				names = append(names, string(data[:l]))
				data = data[l:]
			}
			schemas[gen] = names
		case 'C':
			gen, err := uvar()
			if err != nil {
				return nil, err
			}
			cnt, err := uvar()
			if err != nil {
				return nil, err
			}
			blen, err := uvar()
			if err != nil {
				return nil, err
			}
			if uint64(len(data)) < blen {
				return nil, errors.New("ftdc: truncated chunk body")
			}
			names, ok := schemas[gen]
			if !ok {
				return nil, fmt.Errorf("ftdc: chunk references unknown schema generation %d", gen)
			}
			body := data[:blen]
			data = data[blen:]
			samples, err := decodeChunk(body, int(cnt), names)
			if err != nil {
				return nil, err
			}
			out = append(out, samples...)
		default:
			return nil, fmt.Errorf("ftdc: unknown record tag %q", tag)
		}
	}
	return out, nil
}

func decodeChunk(body []byte, count int, names []string) ([]Sample, error) {
	vvar := func() (int64, error) {
		v, n := binary.Varint(body)
		if n <= 0 {
			return 0, errors.New("ftdc: truncated sample varint")
		}
		body = body[n:]
		return v, nil
	}
	out := make([]Sample, 0, count)
	var t int64
	prev := make([]int64, len(names))
	for i := 0; i < count; i++ {
		dt, err := vvar()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			t = dt
		} else {
			t += dt
		}
		vals := make([]int64, len(names))
		for j := range vals {
			dv, err := vvar()
			if err != nil {
				return nil, err
			}
			if i == 0 {
				vals[j] = dv
			} else {
				vals[j] = prev[j] + dv
			}
			prev[j] = vals[j]
		}
		out = append(out, Sample{T: time.Unix(0, t), Names: names, Vals: vals})
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("ftdc: %d trailing bytes after chunk samples", len(body))
	}
	return out, nil
}

// ReadFile decodes the dump at path.
func ReadFile(path string) ([]Sample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
