package ftdc

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"
	"time"

	"repro/internal/par"
	"repro/internal/qsim"
)

// fixedSource is a deterministic collector for encoding tests.
type fixedSource struct {
	names []string
	vals  []int64
}

func (f *fixedSource) collect(emit func(string, int64)) {
	for i, n := range f.names {
		emit(n, f.vals[i])
	}
}

func at(i int) time.Time { return time.Unix(1700000000, int64(i)*50_000_000) }

// TestRoundTripGolden is the encode → dump → decode determinism pin: fixed
// inputs must produce these exact dump bytes (schema-on-change layout,
// absolute first sample, signed-varint deltas), and decoding must
// reconstruct every sample exactly.
func TestRoundTripGolden(t *testing.T) {
	r := New(Options{})
	src := &fixedSource{names: []string{"b.chunks", "a.steals"}, vals: []int64{100, 0}}
	r.AddSource(src.collect)

	for i := 0; i < 4; i++ {
		r.sampleAt(at(i))
		src.vals[0] += 7   // steady counter: 1-byte deltas
		src.vals[1] += 300 // 2-byte deltas
	}

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = "746f727166746463310a" + // magic "torqftdc1\n"
		"53010208612e737465616c7308622e6368756e6b73" + // S gen=1 ["a.steals","b.chunks"]
		"430104218080d0e2c6bfce972f00c801" + // C gen=1 count=4; absolute t, 0, 100
		"80c2d72fd8040e" + // Δt=50ms, Δsteals=300, Δchunks=7
		"80c2d72fd8040e" +
		"80c2d72fd8040e"
	if got := hex.EncodeToString(buf.Bytes()); got != golden {
		t.Fatalf("dump bytes drifted from golden:\n got %s\nwant %s", got, golden)
	}

	samples, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("decoded %d samples, want 4", len(samples))
	}
	for i, s := range samples {
		if !s.T.Equal(at(i)) {
			t.Errorf("sample %d time %v, want %v", i, s.T, at(i))
		}
		wantSteals, wantChunks := int64(i)*300, int64(100+7*i)
		if v, ok := s.Value("a.steals"); !ok || v != wantSteals {
			t.Errorf("sample %d a.steals = %d (ok=%v), want %d", i, v, ok, wantSteals)
		}
		if v, ok := s.Value("b.chunks"); !ok || v != wantChunks {
			t.Errorf("sample %d b.chunks = %d (ok=%v), want %d", i, v, ok, wantChunks)
		}
	}
}

// countRecords walks a dump's record stream and tallies schema and chunk
// records — the schema-on-change check needs the raw record structure, not
// the decoded samples.
func countRecords(t *testing.T, dump []byte) (schemas, chunks int) {
	t.Helper()
	data := dump[len(magic):]
	uvar := func() uint64 {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			t.Fatal("truncated uvarint in record walk")
		}
		data = data[n:]
		return v
	}
	for len(data) > 0 {
		tag := data[0]
		data = data[1:]
		switch tag {
		case 'S':
			schemas++
			uvar()
			cnt := uvar()
			for i := uint64(0); i < cnt; i++ {
				l := uvar()
				data = data[l:]
			}
		case 'C':
			chunks++
			uvar()
			uvar()
			data = data[uvar():]
		default:
			t.Fatalf("unknown tag %q", tag)
		}
	}
	return
}

// TestSchemaOnChange pins the headline property: a stable metric set pays
// for its schema exactly once no matter how many samples and chunks follow,
// and only a genuine set change (a worker series appearing) emits a new one.
func TestSchemaOnChange(t *testing.T) {
	r := New(Options{})
	src := &fixedSource{names: []string{"m.a"}, vals: []int64{0}}
	r.AddSource(src.collect)

	n := 0
	tick := func() { r.sampleAt(at(n)); n++; src.vals[0]++ }
	for i := 0; i < 3*chunkSamples; i++ { // several closed chunks, one schema
		tick()
	}
	var buf bytes.Buffer
	r.WriteTo(&buf)
	if s, c := countRecords(t, buf.Bytes()); s != 1 || c < 3 {
		t.Fatalf("stable set: %d schema records across %d chunks, want exactly 1 across ≥3", s, c)
	}

	src.names = append(src.names, "m.b") // the set changes → one new schema
	src.vals = append(src.vals, 42)
	tick()
	tick()
	buf.Reset()
	r.WriteTo(&buf)
	if s, _ := countRecords(t, buf.Bytes()); s != 2 {
		t.Fatalf("after set change: %d schema records, want 2", s)
	}

	samples, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	last := samples[len(samples)-1]
	if v, ok := last.Value("m.b"); !ok || v != 42 {
		t.Fatalf("post-change sample missing m.b=42 (got %d, ok=%v)", v, ok)
	}
	if v, ok := last.Value("m.a"); !ok || v != int64(n-1) {
		t.Fatalf("post-change sample m.a = %d (ok=%v), want %d", v, ok, n-1)
	}
}

// TestRingEviction bounds the capture: with a tiny MaxBytes the oldest
// chunks must fall out while the retained tail still decodes exactly.
func TestRingEviction(t *testing.T) {
	r := New(Options{MaxBytes: 512})
	src := &fixedSource{names: []string{"m.x"}, vals: []int64{0}}
	r.AddSource(src.collect)
	const total = 40 * chunkSamples
	for i := 0; i < total; i++ {
		r.sampleAt(at(i))
		src.vals[0] = int64(i) * 11
	}
	var buf bytes.Buffer
	r.WriteTo(&buf)
	if buf.Len() > 2048 {
		t.Fatalf("dump is %d bytes; eviction did not bound the ring", buf.Len())
	}
	samples, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 || len(samples) >= total {
		t.Fatalf("retained %d samples of %d; want a proper evicted suffix", len(samples), total)
	}
	// The retained suffix must be exact: sample recorded at tick i carries
	// the value written by tick i-1 (the source updates after sampling).
	first := total - len(samples)
	for j, s := range samples {
		i := first + j
		want := int64(i-1) * 11
		if i == 0 {
			want = 0
		}
		if v, _ := s.Value("m.x"); v != want || !s.T.Equal(at(i)) {
			t.Fatalf("retained sample %d (tick %d): value %d time %v, want %d %v", j, i, v, s.T, want, at(i))
		}
	}
}

// TestSummarizeFlagsStraggler drives the outlier rule directly: three
// workers, one an order of magnitude slower per shard, must be flagged —
// and only it.
func TestSummarizeFlagsStraggler(t *testing.T) {
	names := []string{
		"dist.w1.lat_ns", "dist.w1.shards",
		"dist.w2.lat_ns", "dist.w2.shards",
		"dist.w3.lat_ns", "dist.w3.shards",
	}
	mk := func(vals ...int64) Sample {
		return Sample{T: at(0), Names: names, Vals: vals}
	}
	samples := []Sample{
		mk(0, 0, 0, 0, 0, 0),
		// w1/w2: 100 shards at ~1ms; w3: 100 shards at ~30ms.
		mk(100e6, 100, 110e6, 100, 3000e6, 100),
	}
	sum := Summarize(samples)
	if len(sum.Workers) != 3 {
		t.Fatalf("summarized %d workers, want 3", len(sum.Workers))
	}
	for _, w := range sum.Workers {
		want := w.ID == 3
		if w.Straggler != want {
			t.Errorf("worker %d straggler=%v, want %v (mean %v)", w.ID, w.Straggler, want, w.MeanShardLat)
		}
	}
	// Sub-floor fleets never flag: scale everything down to microseconds.
	fast := []Sample{
		mk(0, 0, 0, 0, 0, 0),
		mk(100e3, 100, 110e3, 100, 3000e3, 100),
	}
	for _, w := range Summarize(fast).Workers {
		if w.Straggler {
			t.Errorf("worker %d flagged below the absolute floor (mean %v)", w.ID, w.MeanShardLat)
		}
	}
}

// TestAutoTunerPolicy pins the control mapping on synthetic counter deltas:
// steals ≪ units coarsens, steals ≈ units refines, the dead band and the
// evidence threshold hold, and the group never leaves [1, tuneMaxGroup].
func TestAutoTunerPolicy(t *testing.T) {
	defer par.SetChunkGroup(1)
	par.SetChunkGroup(1)
	tuner := &AutoTuner{}
	s := par.SchedStats{}

	// Uniform load: thousands of units, no steals → coarsen (double).
	s.Groups += 1000
	tuner.observe(s)
	if g := par.ChunkGroup(); g != 2 {
		t.Fatalf("steal-free window: group %d, want 2", g)
	}
	// Dead band: modest stealing holds the setting.
	s.Groups += 1000
	s.Steals += 100 // ratio 0.1
	tuner.observe(s)
	if g := par.ChunkGroup(); g != 2 {
		t.Fatalf("dead-band window moved the group to %d", g)
	}
	// Heavy stealing: refine (halve).
	s.Groups += 1000
	s.Steals += 500 // ratio 0.5
	tuner.observe(s)
	if g := par.ChunkGroup(); g != 1 {
		t.Fatalf("steal-heavy window: group %d, want 1", g)
	}
	// Refinement saturates at 1.
	s.Groups += 1000
	s.Steals += 500
	tuner.observe(s)
	if g := par.ChunkGroup(); g != 1 {
		t.Fatalf("refine at floor: group %d, want 1", g)
	}
	// Coarsening saturates at tuneMaxGroup.
	for i := 0; i < 20; i++ {
		s.Groups += 1000
		tuner.observe(s)
	}
	if g := par.ChunkGroup(); g != tuneMaxGroup {
		t.Fatalf("coarsen ceiling: group %d, want %d", g, tuneMaxGroup)
	}
	// Below the evidence threshold nothing moves, even at extreme ratios.
	par.SetChunkGroup(4)
	prev := tuner.prev
	s.Groups += tuneMinUnits - 1
	s.Steals += 1000
	tuner.observe(s)
	if g := par.ChunkGroup(); g != 4 || tuner.prev != prev {
		t.Fatalf("sub-threshold window acted: group %d, prev advanced %v", g, tuner.prev != prev)
	}
}

// TestCaptureUnderLoad runs the full standard-source recorder at a tight
// interval while real sharded passes and stealing regions execute — the
// sample-while-stealing race check (meaningful under -race), and an
// end-to-end decode of a live capture.
func TestCaptureUnderLoad(t *testing.T) {
	defer par.SetMaxWorkers(0)
	par.SetMaxWorkers(4)
	r := New(Options{Interval: time.Millisecond})
	StandardSources(r)
	r.Start()

	circ := qsim.StronglyEntangling.Build(4, 2)
	n, nq := 64, 4
	angles := make([]float64, n*nq)
	theta := make([]float64, circ.NumParams)
	for i := range angles {
		angles[i] = float64(i%7) * 0.3
	}
	gz := make([]float64, n*nq)
	for i := range gz {
		gz[i] = 0.1
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		pqc := &qsim.PQC{Circ: circ, Eng: qsim.EngineSharded}
		ws := qsim.NewWorkspace(n, nq)
		pqc.Forward(ws, angles, nil, theta)
		pqc.Backward(ws, gz, nil, make([]float64, n*nq), make([][]float64, qsim.MaxTangents), make([]float64, circ.NumParams))
	}
	r.Stop()

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 {
		t.Fatalf("live capture decoded only %d samples", len(samples))
	}
	last := samples[len(samples)-1]
	if v, ok := last.Value("par.chunks"); !ok || v == 0 {
		t.Fatalf("live capture shows no par.chunks activity (v=%d ok=%v)", v, ok)
	}
	if v, ok := last.Value("qsim.bwd_passes"); !ok || v == 0 {
		t.Fatalf("live capture shows no backward passes (v=%d ok=%v)", v, ok)
	}
}
