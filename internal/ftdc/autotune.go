package ftdc

import "repro/internal/par"

// AutoTuner closes the first telemetry→control loop: it watches the
// scheduler's steal rate relative to its scheduling-unit throughput and
// re-sizes par's chunk grouping between samples. Steals far below the unit
// count mean the load is uniform and per-chunk scheduling is pure deque
// overhead — coarsen; steals rivaling the unit count mean the pool is
// rebalancing constantly off an irregular load — refine so thieves can grab
// closer-to-even shares.
//
// Safety: grouping only changes how many consecutive chunks move per deque
// operation. RunChunk's partition (and therefore every per-chunk
// accumulator slot and the sharded engines' merge order) is invariant
// across settings, so the tuner can flip the knob mid-training without
// disturbing a single gradient bit — pinned by the qsim determinism test.
type AutoTuner struct {
	prev par.SchedStats
}

const (
	// tuneMinUnits is the evidence threshold: no decision until this many
	// scheduling units have run since the last one.
	tuneMinUnits = 64
	// coarsenBelow/refineAbove bracket the steals-per-unit dead band.
	coarsenBelow = 0.02
	refineAbove  = 0.25
	// tuneMaxGroup caps how far the tuner coarsens — past this, groups
	// rival per-worker spans and further coarsening only costs parallelism.
	tuneMaxGroup = 32
)

// NewAutoTuner starts a tuner from the scheduler's current counters.
func NewAutoTuner() *AutoTuner {
	return &AutoTuner{prev: par.Stats()}
}

// Step observes the scheduler delta since the previous decision and adjusts
// par.SetChunkGroup by at most one doubling/halving — a slow outer loop
// riding the recorder's sampling cadence (AddTicker), deliberately damped
// so one noisy window cannot swing the granularity.
func (t *AutoTuner) Step() { t.observe(par.Stats()) }

// observe is Step on an explicit snapshot (separated so the policy tests
// can drive it with synthetic counter deltas).
func (t *AutoTuner) observe(s par.SchedStats) {
	dUnits := s.Groups - t.prev.Groups
	if dUnits < tuneMinUnits {
		return
	}
	dSteals := s.Steals - t.prev.Steals
	t.prev = s
	ratio := float64(dSteals) / float64(dUnits)
	g := par.ChunkGroup()
	switch {
	case ratio < coarsenBelow && g < tuneMaxGroup:
		par.SetChunkGroup(g * 2)
	case ratio > refineAbove && g > 1:
		par.SetChunkGroup(g / 2)
	}
}
