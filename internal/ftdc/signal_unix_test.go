//go:build unix

package ftdc

import (
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// signalChildEnv tells a re-executed test binary to act as the long-running
// process under test: start a recorder, arm DumpOnSignal, and block.
const signalChildEnv = "TORQ_FTDC_SIGNAL_CHILD"

// TestDumpOnSignal exercises the SIGUSR1 dump path end to end with a real
// signal to a real process: the test re-executes itself as a child that
// records and arms DumpOnSignal, sends it SIGUSR1, and checks the dump file
// appears and decodes to a nonzero number of samples.
func TestDumpOnSignal(t *testing.T) {
	if path := os.Getenv(signalChildEnv); path != "" {
		runSignalChild(path)
		return // unreachable; runSignalChild blocks until killed
	}

	dump := filepath.Join(t.TempDir(), "sig.ftdc")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestDumpOnSignal$")
	cmd.Env = append(os.Environ(), signalChildEnv+"="+dump)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The child touches <dump>.ready once the signal handler is armed — a
	// SIGUSR1 before signal.Notify would kill it (default disposition).
	ready := dump + ".ready"
	waitFor(t, 10*time.Second, "child never armed its signal handler", func() bool {
		_, err := os.Stat(ready)
		return err == nil
	})

	if err := cmd.Process.Signal(syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	var samples int
	waitFor(t, 10*time.Second, "no decodable dump with samples appeared", func() bool {
		s, err := ReadFile(dump)
		if err != nil || len(s) == 0 {
			return false
		}
		if _, ok := s[len(s)-1].Value("child.ticks"); !ok {
			return false
		}
		samples = len(s)
		return true
	})
	if samples == 0 {
		t.Fatal("dump decoded to zero samples")
	}

	// A second signal must overwrite with a fresh (equal or larger) capture.
	if err := cmd.Process.Signal(syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "second SIGUSR1 produced no dump", func() bool {
		s, err := ReadFile(dump)
		return err == nil && len(s) >= samples
	})
}

// runSignalChild is the re-executed child: sample fast, arm the handler,
// signal readiness, block until the parent kills the process.
func runSignalChild(path string) {
	r := New(Options{Interval: 2 * time.Millisecond})
	r.AddSource(func(emit func(string, int64)) { emit("child.ticks", 1) })
	r.Start()
	r.DumpOnSignal(path)
	if f, err := os.Create(path + ".ready"); err == nil {
		f.Close()
	}
	select {}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(msg)
}
