// Package ftdc is the repository's flight-data recorder: an always-on,
// low-overhead telemetry capture in the spirit of full-time diagnostic data
// capture (FTDC) systems. A Recorder periodically snapshots registered
// collectors — the par scheduler's steal/chunk/region counters, the dist
// coordinator's per-worker latency and queue-depth series, the qsim engines'
// pass and epoch wall times — into a bounded in-memory ring of compact
// binary chunks, dumpable on demand (SIGUSR1 or a -ftdc-dump flag) and
// decodable offline by cmd/torq-ftdc.
//
// The encoding is schema-on-change: samples are flat sorted (name, int64)
// sets; a schema record naming the metrics is emitted only when the set
// changes (a new dist worker appearing, say), and within a chunk the first
// sample is absolute while the rest are signed-varint deltas against their
// predecessor — monotonic counters sampled on a steady interval delta down
// to a byte or two per series. Each chunk restarts from an absolute sample,
// so a ring that has evicted old chunks still decodes exactly.
//
// # Invariants
//
// Recording observes and must never perturb results: collectors read
// atomics and take no locks shared with compute hot paths, sampling runs on
// its own goroutine, and the one control loop that feeds back into
// execution — the opt-in AutoTuner re-sizing par's chunk grouping — only
// moves whole chunks between workers, which par.RunChunk's partition
// determinism and the sharded engines' fixed merge order make bit-invisible
// in every gradient (see the par and qsim package docs).
package ftdc

import (
	"encoding/binary"
	"io"
	"os"
	"slices"
	"sync"
	"time"
)

// Collector emits one subsystem's current counter values. Collectors are
// called on the sampling goroutine at every tick; they must be cheap
// (atomic loads) and must not block on locks shared with compute paths.
type Collector func(emit func(name string, value int64))

// Options configures a Recorder. Zero values select the defaults.
type Options struct {
	// Interval is the sampling period. Default 100ms — coarse enough that a
	// full day of capture is a few MB of deltas, fine enough to catch a
	// straggling worker within a pass.
	Interval time.Duration
	// MaxBytes bounds the retained capture across closed chunks; the oldest
	// chunks are evicted first. Default 1 MiB.
	MaxBytes int
}

func (o Options) interval() time.Duration {
	if o.Interval > 0 {
		return o.Interval
	}
	return 100 * time.Millisecond
}

func (o Options) maxBytes() int {
	if o.MaxBytes > 0 {
		return o.MaxBytes
	}
	return 1 << 20
}

// chunkSamples is how many samples a chunk holds before it is closed into
// the ring. Each closed chunk decodes independently (its first sample is
// absolute), so eviction granularity and re-sync granularity coincide.
const chunkSamples = 64

// magic heads every dump; the trailing digit is the dump format version.
const magic = "torqftdc1\n"

type schemaRec struct {
	gen   uint64
	names []string
}

type chunk struct {
	gen   uint64
	count int
	b     []byte
}

// Recorder samples registered collectors into a bounded chunk ring. All
// methods are safe for concurrent use; the zero value is not usable — call
// New.
type Recorder struct {
	opts Options

	mu      sync.Mutex
	sources []Collector
	tickers []func()
	schema  []string // current metric names, sorted
	gen     uint64   // current schema generation (0 = none yet)
	schemas []schemaRec
	prev    []int64 // previous sample's values, schema order
	prevT   int64   // previous sample's unix-ns timestamp
	cur     chunk
	ring    []chunk
	ringB   int // bytes across ring chunks
	samples uint64
	scratch map[string]int64
	free    [][]byte // recycled chunk buffers

	started bool
	stop    chan struct{}
	done    chan struct{}
}

// New creates a Recorder with no collectors attached; see AddSource and
// StandardSources.
func New(o Options) *Recorder {
	return &Recorder{opts: o, scratch: make(map[string]int64)}
}

// AddSource registers a collector. Adding a source while the recorder runs
// takes effect at the next tick (the schema change is recorded as such).
func (r *Recorder) AddSource(c Collector) {
	r.mu.Lock()
	r.sources = append(r.sources, c)
	r.mu.Unlock()
}

// AddTicker registers a function run on the sampling goroutine after every
// sample — the hook the auto-tuner uses to piggyback its control step on
// the capture cadence without its own timer.
func (r *Recorder) AddTicker(f func()) {
	r.mu.Lock()
	r.tickers = append(r.tickers, f)
	r.mu.Unlock()
}

// Start launches the sampling goroutine. Start after Stop begins a new
// capture epoch in the same ring; Start on a running recorder is a no-op.
func (r *Recorder) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return
	}
	r.started = true
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.loop(r.stop, r.done)
}

func (r *Recorder) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(r.opts.interval())
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			r.sampleAt(now)
		}
	}
}

// Stop halts sampling and records one final sample, so captures bracketing
// short runs still hold the end-state counters. Safe to call when stopped.
func (r *Recorder) Stop() {
	r.mu.Lock()
	if !r.started {
		r.mu.Unlock()
		return
	}
	r.started = false
	stop, done := r.stop, r.done
	r.mu.Unlock()
	close(stop)
	<-done
	r.SampleNow()
}

// SampleNow records one sample immediately, regardless of the ticker. Used
// by Stop, by tests that need deterministic capture points, and by dump
// paths that want the freshest counters in the file.
func (r *Recorder) SampleNow() { r.sampleAt(time.Now()) }

// Samples reports how many samples the recorder has taken since New.
func (r *Recorder) Samples() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

func (r *Recorder) sampleAt(now time.Time) {
	r.mu.Lock()
	// Collect into scratch.
	clear(r.scratch)
	for _, c := range r.sources {
		c(r.emitScratch)
	}
	// Schema-on-change: a new generation only when the metric set differs.
	changed := r.gen == 0 || len(r.scratch) != len(r.schema)
	if !changed {
		for _, n := range r.schema {
			if _, ok := r.scratch[n]; !ok {
				changed = true
				break
			}
		}
	}
	if changed {
		r.closeChunkLocked()
		r.gen++
		r.schema = r.schema[:0]
		for n := range r.scratch {
			r.schema = append(r.schema, n)
		}
		slices.Sort(r.schema)
		r.schemas = append(r.schemas, schemaRec{gen: r.gen, names: slices.Clone(r.schema)})
		r.prev = slices.Grow(r.prev[:0], len(r.schema))[:len(r.schema)]
	}
	// Encode: absolute first sample per chunk, deltas after.
	t := now.UnixNano()
	if r.cur.count == 0 {
		r.cur.gen = r.gen
		r.cur.b = binary.AppendVarint(r.cur.b, t)
		for i, n := range r.schema {
			v := r.scratch[n]
			r.cur.b = binary.AppendVarint(r.cur.b, v)
			r.prev[i] = v
		}
	} else {
		r.cur.b = binary.AppendVarint(r.cur.b, t-r.prevT)
		for i, n := range r.schema {
			v := r.scratch[n]
			r.cur.b = binary.AppendVarint(r.cur.b, v-r.prev[i])
			r.prev[i] = v
		}
	}
	r.prevT = t
	r.cur.count++
	r.samples++
	if r.cur.count >= chunkSamples {
		r.closeChunkLocked()
	}
	tickers := r.tickers
	r.mu.Unlock()
	// Control hooks run outside the recorder lock: they may call back into
	// par/dist/qsim, and nothing they touch needs r's state.
	for _, f := range tickers {
		f()
	}
}

// emitScratch is the bound method handed to collectors, hoisted so the
// per-tick closure allocation disappears.
func (r *Recorder) emitScratch(name string, v int64) { r.scratch[name] = v }

func (r *Recorder) closeChunkLocked() {
	if r.cur.count == 0 {
		return
	}
	r.ring = append(r.ring, r.cur)
	r.ringB += len(r.cur.b)
	var buf []byte
	if n := len(r.free); n > 0 {
		buf, r.free = r.free[n-1][:0], r.free[:n-1]
	}
	r.cur = chunk{b: buf}
	for len(r.ring) > 0 && r.ringB > r.opts.maxBytes() {
		r.ringB -= len(r.ring[0].b)
		r.free = append(r.free, r.ring[0].b)
		r.ring = r.ring[1:]
	}
}

func (r *Recorder) schemaForLocked(gen uint64) []string {
	for i := len(r.schemas) - 1; i >= 0; i-- {
		if r.schemas[i].gen == gen {
			return r.schemas[i].names
		}
	}
	return nil
}

// WriteTo serializes the retained capture — evicted-oldest-first chunks plus
// the open chunk — emitting each schema only where the generation changes.
// The recorder keeps running; the capture is a snapshot under the lock.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	buf := make([]byte, 0, r.ringB+len(r.cur.b)+256)
	buf = append(buf, magic...)
	var lastGen uint64
	emit := func(c *chunk) {
		if c.count == 0 {
			return
		}
		if c.gen != lastGen {
			names := r.schemaForLocked(c.gen)
			buf = append(buf, 'S')
			buf = binary.AppendUvarint(buf, c.gen)
			buf = binary.AppendUvarint(buf, uint64(len(names)))
			for _, n := range names {
				buf = binary.AppendUvarint(buf, uint64(len(n)))
				buf = append(buf, n...)
			}
			lastGen = c.gen
		}
		buf = append(buf, 'C')
		buf = binary.AppendUvarint(buf, c.gen)
		buf = binary.AppendUvarint(buf, uint64(c.count))
		buf = binary.AppendUvarint(buf, uint64(len(c.b)))
		buf = append(buf, c.b...)
	}
	for i := range r.ring {
		emit(&r.ring[i])
	}
	emit(&r.cur)
	r.mu.Unlock()
	n, err := w.Write(buf)
	return int64(n), err
}

// DumpFile writes the capture to path (truncating any previous dump).
func (r *Recorder) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := r.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
