package ftdc

import (
	"repro/internal/dist"
	"repro/internal/par"
	"repro/internal/qsim"
)

// StandardSources attaches the repository's built-in collectors: the par
// scheduler, the qsim engine pass/epoch timers, and the dist transport.
// ftdc depends on those packages and not vice versa — subsystems export
// plain counter snapshots and stay ignorant of the recorder.
func StandardSources(r *Recorder) {
	r.AddSource(CollectPar)
	r.AddSource(qsim.CollectTelemetry)
	r.AddSource(dist.Collect)
}

// CollectPar emits the work-stealing scheduler's counters plus the live
// chunk-group setting (so a capture shows the auto-tuner acting).
//
//torq:nolock
func CollectPar(emit func(name string, value int64)) {
	s := par.Stats()
	emit("par.regions", int64(s.Regions))
	emit("par.chunks", int64(s.Chunks))
	emit("par.groups", int64(s.Groups))
	emit("par.steals", int64(s.Steals))
	emit("par.chunk_group", int64(par.ChunkGroup()))
	emit("par.max_workers", int64(par.MaxWorkers()))
}

// EnableAutoTune arms the steal-driven chunk-group controller on the
// recorder's sampling cadence. Opt-in: callers gate it behind their
// -autotune flag / TORQ_AUTOTUNE env knob.
func (r *Recorder) EnableAutoTune() {
	r.AddTicker(NewAutoTuner().Step)
}
