//go:build unix

package ftdc

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// DumpOnSignal arranges for every SIGUSR1 to write the recorder's current
// capture to path (truncating the previous dump), so a long training run
// can be inspected without stopping it:
//
//	kill -USR1 <pid> && torq-ftdc -summary <path>
func (r *Recorder) DumpOnSignal(path string) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		for range ch {
			if err := r.DumpFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "ftdc: dump failed: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "ftdc: capture written to %s\n", path)
		}
	}()
}
