package ftdc

import (
	"bytes"
	"testing"
)

// TestWriteToIncludesOpenChunk pins the partial-chunk case: a capture whose
// samples never filled one chunk (count < chunkSamples, so nothing was ever
// rotated into the ring) must still serialize completely — WriteTo emits the
// open chunk after the ring, and a capture downloaded mid-chunk from the
// debug plane's /ftdc endpoint decodes to every sample taken so far.
func TestWriteToIncludesOpenChunk(t *testing.T) {
	r := New(Options{})
	tick := int64(0)
	r.AddSource(func(emit func(string, int64)) {
		emit("t.count", tick)
		tick++
	})
	const n = 5 // far below chunkSamples: the ring stays empty
	for i := 0; i < n; i++ {
		r.SampleNow()
	}

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("partial-chunk capture does not decode: %v", err)
	}
	if len(samples) != n {
		t.Fatalf("partial-chunk capture holds %d samples, want %d", len(samples), n)
	}
	for i, s := range samples {
		if v, ok := s.Value("t.count"); !ok || v != int64(i) {
			t.Fatalf("sample %d: t.count = %d, %v; want %d", i, v, ok, i)
		}
	}

	// WriteTo must be a snapshot, not a drain: the open chunk keeps filling
	// and a second capture sees both the old and the new samples.
	r.SampleNow()
	buf.Reset()
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if samples, err = Decode(buf.Bytes()); err != nil || len(samples) != n+1 {
		t.Fatalf("second capture: %d samples, err %v; want %d", len(samples), err, n+1)
	}
}
