package ftdc

import (
	"sort"
	"strconv"
	"strings"
	"time"
)

// MetricSummary condenses one metric's trajectory across a capture. Most
// series are monotonic counters, so Last−First is the activity the capture
// window saw.
type MetricSummary struct {
	Name                  string
	First, Last, Min, Max int64
}

// Delta is the metric's net change over the capture.
func (m MetricSummary) Delta() int64 { return m.Last - m.First }

// WorkerSummary condenses one dist worker's service record, derived from
// its dist.w<id>.* series.
type WorkerSummary struct {
	ID           int
	Shards       int64
	Batches      int64
	MeanShardLat time.Duration // batch round-trip time attributed per shard
	Straggler    bool
}

// Summary is the digest cmd/torq-ftdc prints and the straggler tests assert
// against.
type Summary struct {
	Start, End time.Time
	Samples    int
	Metrics    []MetricSummary // sorted by name
	Workers    []WorkerSummary // sorted by id
}

// stragglerFactor flags a worker whose mean per-shard latency exceeds this
// multiple of the fleet's (lower-)median; stragglerFloor suppresses flags
// when even the outlier is fast in absolute terms.
const (
	stragglerFactor = 3
	stragglerFloor  = 2 * time.Millisecond
)

// Summarize digests decoded samples: per-metric first/last/min/max plus the
// per-worker service summary with latency-outlier straggler flags. Workers
// are compared on mean per-shard latency against the fleet's lower median —
// the lower median keeps a 2-worker fleet's slow half from hiding behind an
// average it dominates.
func Summarize(samples []Sample) *Summary {
	s := &Summary{Samples: len(samples)}
	if len(samples) == 0 {
		return s
	}
	s.Start, s.End = samples[0].T, samples[len(samples)-1].T
	byName := map[string]*MetricSummary{}
	for _, sm := range samples {
		for i, n := range sm.Names {
			v := sm.Vals[i]
			m := byName[n]
			if m == nil {
				m = &MetricSummary{Name: n, First: v, Min: v, Max: v}
				byName[n] = m
			}
			m.Last = v
			if v < m.Min {
				m.Min = v
			}
			if v > m.Max {
				m.Max = v
			}
		}
	}
	//torq:allow maprange -- collected into s.Metrics and sorted by name below
	for _, m := range byName {
		s.Metrics = append(s.Metrics, *m)
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	s.Workers = workerSummaries(byName)
	return s
}

func workerSummaries(byName map[string]*MetricSummary) []WorkerSummary {
	var out []WorkerSummary
	//torq:allow maprange -- one summary per worker id, sorted by id below
	for name, m := range byName {
		id, ok := workerMetricID(name, ".shards")
		if !ok || m.Last == 0 {
			continue
		}
		w := WorkerSummary{ID: id, Shards: m.Last}
		if lat := byName["dist.w"+strconv.Itoa(id)+".lat_ns"]; lat != nil {
			w.MeanShardLat = time.Duration(lat.Last / m.Last)
		}
		if b := byName["dist.w"+strconv.Itoa(id)+".batches"]; b != nil {
			w.Batches = b.Last
		}
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(out) >= 2 {
		lats := make([]time.Duration, len(out))
		for i, w := range out {
			lats[i] = w.MeanShardLat
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		median := lats[(len(lats)-1)/2]
		for i := range out {
			l := out[i].MeanShardLat
			out[i].Straggler = l > stragglerFloor && l > stragglerFactor*median
		}
	}
	return out
}

// workerMetricID parses "dist.w<id><suffix>" names.
func workerMetricID(name, suffix string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "dist.w")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, suffix)
	if !ok {
		return 0, false
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return id, true
}
