//go:build !unix

package ftdc

// DumpOnSignal is a no-op where SIGUSR1 does not exist; use the program's
// -ftdc-dump exit-time dump instead.
func (r *Recorder) DumpOnSignal(path string) {}
