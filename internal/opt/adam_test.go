package opt

import (
	"math"
	"testing"
)

// TestAdamConvergesOnQuadratic: minimize ‖x − c‖² — Adam must reach the
// optimum on a smooth convex problem.
func TestAdamConvergesOnQuadratic(t *testing.T) {
	x := []float64{5, -3, 2}
	c := []float64{1, 2, -0.5}
	g := make([]float64, 3)
	a := NewAdam(0.05, [][]float64{x}, func(i int) []float64 { return g })
	for it := 0; it < 2000; it++ {
		for j := range x {
			g[j] = 2 * (x[j] - c[j])
		}
		a.Step()
	}
	for j := range x {
		if math.Abs(x[j]-c[j]) > 1e-3 {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], c[j])
		}
	}
	if a.StepCount() != 2000 {
		t.Fatalf("step count %d", a.StepCount())
	}
}

// TestAdamBiasCorrection: the very first step moves by ≈ lr in the gradient
// direction regardless of gradient magnitude (the m̂/√v̂ ≈ sign property).
func TestAdamBiasCorrection(t *testing.T) {
	for _, scale := range []float64{1e-4, 1, 1e4} {
		x := []float64{0}
		g := []float64{scale}
		a := NewAdam(0.01, [][]float64{x}, func(i int) []float64 { return g })
		a.Step()
		if math.Abs(x[0]+0.01) > 1e-6 {
			t.Fatalf("scale %g: first step %v, want ≈ −0.01", scale, x[0])
		}
	}
}

// TestAdamMultipleBanks: each parameter bank keeps independent moments.
func TestAdamMultipleBanks(t *testing.T) {
	x1 := []float64{1}
	x2 := []float64{1, 1}
	g1 := []float64{1}
	g2 := []float64{0, 0}
	grads := [][]float64{g1, g2}
	a := NewAdam(0.1, [][]float64{x1, x2}, func(i int) []float64 { return grads[i] })
	a.Step()
	if x1[0] >= 1 {
		t.Fatal("bank 1 did not move against its gradient")
	}
	if x2[0] != 1 || x2[1] != 1 {
		t.Fatal("zero-gradient bank must not move")
	}
}

func TestExpDecaySchedule(t *testing.T) {
	d := PaperSchedule()
	if got := d.At(0); got != 1e-3 {
		t.Fatalf("lr(0) = %v", got)
	}
	if got := d.At(1999); got != 1e-3 {
		t.Fatalf("lr(1999) = %v, want no decay yet", got)
	}
	if got := d.At(2000); math.Abs(got-0.85e-3) > 1e-12 {
		t.Fatalf("lr(2000) = %v, want 0.85e-3", got)
	}
	if got := d.At(4000); math.Abs(got-0.85*0.85e-3) > 1e-12 {
		t.Fatalf("lr(4000) = %v", got)
	}
	// Zero Every means constant.
	if got := (ExpDecay{LR0: 0.5}).At(12345); got != 0.5 {
		t.Fatalf("constant schedule broken: %v", got)
	}
}
