// Package opt provides the optimizers used for PINN/QPINN training: Adam
// with bias correction (Kingma & Ba) and the paper's exponential
// learning-rate schedule (decay ×0.85 every 2000 epochs).
package opt

import "math"

// Adam holds first/second-moment state for a set of parameter buffers.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	step    int
	m, v    [][]float64
	banks   [][]float64 // parameter buffers, aliased
	gradsOf func(i int) []float64
}

// NewAdam creates an optimizer over the given parameter buffers. grads(i)
// must return the current gradient buffer for params[i] at step time.
func NewAdam(lr float64, params [][]float64, grads func(i int) []float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, banks: params, gradsOf: grads}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p))
		a.v[i] = make([]float64, len(p))
	}
	return a
}

// Step applies one Adam update using the gradients currently exposed by the
// grads accessor.
func (a *Adam) Step() {
	a.step++
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.banks {
		g := a.gradsOf(i)
		m, v := a.m[i], a.v[i]
		for j := range p {
			gj := g[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gj
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gj*gj
			mh := m[j] / b1c
			vh := v[j] / b2c
			p[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// StepCount reports the number of updates applied.
func (a *Adam) StepCount() int { return a.step }

// ExpDecay is the paper's LR schedule: lr0 · factor^⌊epoch/every⌋.
type ExpDecay struct {
	LR0    float64
	Factor float64
	Every  int
}

// At returns the learning rate for the given epoch.
func (d ExpDecay) At(epoch int) float64 {
	if d.Every <= 0 {
		return d.LR0
	}
	return d.LR0 * math.Pow(d.Factor, float64(epoch/d.Every))
}

// PaperSchedule is the schedule used in §2.2: 1e-3 decayed ×0.85 / 2000.
func PaperSchedule() ExpDecay { return ExpDecay{LR0: 1e-3, Factor: 0.85, Every: 2000} }
