// Package opt provides the optimizers used for PINN/QPINN training: Adam
// with bias correction (Kingma & Ba) and the paper's exponential
// learning-rate schedule (decay ×0.85 every 2000 epochs).
package opt

import (
	"fmt"
	"math"
)

// Adam holds first/second-moment state for a set of parameter buffers.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	step    int
	m, v    [][]float64
	banks   [][]float64 // parameter buffers, aliased
	gradsOf func(i int) []float64
}

// NewAdam creates an optimizer over the given parameter buffers. grads(i)
// must return the current gradient buffer for params[i] at step time.
func NewAdam(lr float64, params [][]float64, grads func(i int) []float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, banks: params, gradsOf: grads}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p))
		a.v[i] = make([]float64, len(p))
	}
	return a
}

// Step applies one Adam update using the gradients currently exposed by the
// grads accessor.
func (a *Adam) Step() {
	a.step++
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.banks {
		g := a.gradsOf(i)
		m, v := a.m[i], a.v[i]
		for j := range p {
			gj := g[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gj
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gj*gj
			mh := m[j] / b1c
			vh := v[j] / b2c
			p[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// StepCount reports the number of updates applied.
func (a *Adam) StepCount() int { return a.step }

// AdamState is a portable deep copy of the optimizer's mutable state —
// first/second moments in parameter order plus the step count — so
// checkpointing can survive warm restarts without resetting bias correction.
type AdamState struct {
	Step int
	M, V [][]float64
}

// Export snapshots the optimizer state. The returned buffers are copies and
// stay valid across further Step calls.
func (a *Adam) Export() AdamState {
	s := AdamState{Step: a.step, M: make([][]float64, len(a.m)), V: make([][]float64, len(a.v))}
	for i := range a.m {
		s.M[i] = append([]float64(nil), a.m[i]...)
		s.V[i] = append([]float64(nil), a.v[i]...)
	}
	return s
}

// Restore replaces the optimizer state with a previously exported snapshot.
// The snapshot must have been taken over parameter buffers of identical
// shape (same count, same lengths, same order).
func (a *Adam) Restore(s AdamState) error {
	if len(s.M) != len(a.m) || len(s.V) != len(a.v) {
		return fmt.Errorf("opt: snapshot covers %d/%d buffers, optimizer has %d", len(s.M), len(s.V), len(a.m))
	}
	for i := range a.m {
		if len(s.M[i]) != len(a.m[i]) || len(s.V[i]) != len(a.v[i]) {
			return fmt.Errorf("opt: snapshot buffer %d has %d/%d values, optimizer expects %d", i, len(s.M[i]), len(s.V[i]), len(a.m[i]))
		}
	}
	a.step = s.Step
	for i := range a.m {
		copy(a.m[i], s.M[i])
		copy(a.v[i], s.V[i])
	}
	return nil
}

// ExpDecay is the paper's LR schedule: lr0 · factor^⌊epoch/every⌋.
type ExpDecay struct {
	LR0    float64
	Factor float64
	Every  int
}

// At returns the learning rate for the given epoch.
func (d ExpDecay) At(epoch int) float64 {
	if d.Every <= 0 {
		return d.LR0
	}
	return d.LR0 * math.Pow(d.Factor, float64(epoch/d.Every))
}

// PaperSchedule is the schedule used in §2.2: 1e-3 decayed ×0.85 / 2000.
func PaperSchedule() ExpDecay { return ExpDecay{LR0: 1e-3, Factor: 0.85, Every: 2000} }
