package refsol

import "repro/internal/par"

// This file implements the paper's high-fidelity comparator: a 4th-order
// Padé (compact) finite-difference scheme for the spatial derivatives,
//
//	¼ f'_{i−1} + f'_i + ¼ f'_{i+1} = (3/2)·(f_{i+1} − f_{i−1})/(2h),
//
// solved on the periodic grid with a cyclic Thomas algorithm
// (Sherman–Morrison), combined with classical RK4 time stepping of the
// TEz system with spatially varying ε.

// cyclicTri solves the constant-coefficient periodic tridiagonal system
// (b on the diagonal, a on both off-diagonals and the two corners) for many
// right-hand sides. The factorization is precomputed once.
type cyclicTri struct {
	n    int
	a, b float64
	// Thomas factorization of the non-cyclic core (diagonal modified at the
	// two ends per Sherman–Morrison) and the precomputed correction vector z.
	cp    []float64 // forward-eliminated upper coefficients
	denom []float64 // forward-elimination denominators
	z     []float64 // A'⁻¹·u for the rank-one update
	gamma float64
	vz    float64 // 1 + vᵀz normalizer
	// modified end diagonals
	b0, bn float64
}

func newCyclicTri(n int, a, b float64) *cyclicTri {
	t := &cyclicTri{n: n, a: a, b: b}
	gamma := -b
	t.b0 = b - gamma
	t.bn = b - a*a/gamma
	t.cp = make([]float64, n)
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = b
	}
	diag[0] = t.b0
	diag[n-1] = t.bn
	// Forward elimination coefficients for the core matrix.
	t.cp[0] = a / diag[0]
	den := make([]float64, n)
	den[0] = diag[0]
	for i := 1; i < n; i++ {
		den[i] = diag[i] - a*t.cp[i-1]
		if i < n-1 {
			t.cp[i] = a / den[i]
		}
	}
	t.denom = den
	// Correction vector u = (γ, 0, …, 0, a)ᵀ; z = A'⁻¹u.
	u := make([]float64, n)
	u[0] = gamma
	u[n-1] = a
	t.z = make([]float64, n)
	t.solveCore(u, t.z)
	// v = (1, 0, …, 0, a/γ); precompute 1 + vᵀz.
	t.vz = 1 + t.z[0] + (a/gamma)*t.z[n-1]
	t.gamma = gamma
	return t
}

// solveCore solves the non-cyclic Thomas system into out.
func (t *cyclicTri) solveCore(rhs, out []float64) {
	n := t.n
	out[0] = rhs[0] / t.denom[0]
	for i := 1; i < n; i++ {
		out[i] = (rhs[i] - t.a*out[i-1]) / t.denom[i]
	}
	for i := n - 2; i >= 0; i-- {
		out[i] -= t.cp[i] * out[i+1]
	}
}

// Solve solves the cyclic system in place using scratch y (len n).
func (t *cyclicTri) Solve(rhs, y []float64) {
	n := t.n
	t.solveCore(rhs, y)
	factor := (y[0] + (t.a/t.gamma)*y[n-1]) / t.vz
	for i := 0; i < n; i++ {
		rhs[i] = y[i] - factor*t.z[i]
	}
}

// Pade is the compact-scheme Maxwell solver for arbitrary media.
type Pade struct {
	N   int
	eps []float64
	tri *cyclicTri
	h   float64
}

// NewPade builds the solver on an n×n grid for medium m.
func NewPade(n int, m Medium) *Pade {
	return &Pade{
		N:   n,
		eps: sampleEps(m, n),
		tri: newCyclicTri(n, 0.25, 1.0),
		h:   L / float64(n),
	}
}

// ddx writes ∂f/∂x into out using the compact scheme, row by row.
func (p *Pade) ddx(f, out []float64) {
	n := p.N
	scale := 1.5 / (2 * p.h)
	par.ForGrain(n, 4*n, func(lo, hi int) {
		rhs := make([]float64, n)
		scratch := make([]float64, n)
		for iy := lo; iy < hi; iy++ {
			row := f[iy*n : (iy+1)*n]
			for ix := 0; ix < n; ix++ {
				ip := ix + 1
				if ip == n {
					ip = 0
				}
				im := ix - 1
				if im < 0 {
					im = n - 1
				}
				rhs[ix] = scale * (row[ip] - row[im])
			}
			p.tri.Solve(rhs, scratch)
			copy(out[iy*n:(iy+1)*n], rhs)
		}
	})
}

// ddy writes ∂f/∂y into out, column by column.
func (p *Pade) ddy(f, out []float64) {
	n := p.N
	scale := 1.5 / (2 * p.h)
	par.ForGrain(n, 4*n, func(lo, hi int) {
		rhs := make([]float64, n)
		scratch := make([]float64, n)
		for ix := lo; ix < hi; ix++ {
			for iy := 0; iy < n; iy++ {
				ip := iy + 1
				if ip == n {
					ip = 0
				}
				im := iy - 1
				if im < 0 {
					im = n - 1
				}
				rhs[iy] = scale * (f[ip*n+ix] - f[im*n+ix])
			}
			p.tri.Solve(rhs, scratch)
			for iy := 0; iy < n; iy++ {
				out[iy*n+ix] = rhs[iy]
			}
		}
	})
}

// rhs evaluates the TEz right-hand side (eq. 7 with ε(x, y)):
// ∂Ez/∂t = (1/ε)(∂Hy/∂x − ∂Hx/∂y), ∂Hx/∂t = −∂Ez/∂y, ∂Hy/∂t = ∂Ez/∂x.
func (p *Pade) rhs(f *Fields, out *Fields, scratch *Fields) {
	n := p.N
	p.ddx(f.Hy, out.Ez)     // ∂Hy/∂x
	p.ddy(f.Hx, scratch.Ez) // ∂Hx/∂y
	p.ddy(f.Ez, out.Hx)     // ∂Ez/∂y
	p.ddx(f.Ez, out.Hy)     // ∂Ez/∂x
	for i := 0; i < n*n; i++ {
		out.Ez[i] = (out.Ez[i] - scratch.Ez[i]) / p.eps[i]
		out.Hx[i] = -out.Hx[i]
	}
}

// Step advances the fields by dt with classical RK4.
func (p *Pade) Step(f *Fields, dt float64) {
	n := p.N
	k1 := NewFields(n)
	k2 := NewFields(n)
	k3 := NewFields(n)
	k4 := NewFields(n)
	tmp := NewFields(n)
	scr := NewFields(n)

	p.rhs(f, k1, scr)
	addScaled(tmp, f, k1, dt/2)
	p.rhs(tmp, k2, scr)
	addScaled(tmp, f, k2, dt/2)
	p.rhs(tmp, k3, scr)
	addScaled(tmp, f, k3, dt)
	p.rhs(tmp, k4, scr)
	for i := 0; i < n*n; i++ {
		f.Ez[i] += dt / 6 * (k1.Ez[i] + 2*k2.Ez[i] + 2*k3.Ez[i] + k4.Ez[i])
		f.Hx[i] += dt / 6 * (k1.Hx[i] + 2*k2.Hx[i] + 2*k3.Hx[i] + k4.Hx[i])
		f.Hy[i] += dt / 6 * (k1.Hy[i] + 2*k2.Hy[i] + 2*k3.Hy[i] + k4.Hy[i])
	}
}

func addScaled(dst, f, k *Fields, c float64) {
	for i := range dst.Ez {
		dst.Ez[i] = f.Ez[i] + c*k.Ez[i]
		dst.Hx[i] = f.Hx[i] + c*k.Hx[i]
		dst.Hy[i] = f.Hy[i] + c*k.Hy[i]
	}
}

// Solve integrates from the initial condition to each requested time
// (times must be ascending) with a CFL-limited step.
func (p *Pade) Solve(init *Fields, times []float64) []*Fields {
	f := init.Copy()
	dt := 0.4 * p.h // c = 1; conservative CFL for the compact scheme
	out := make([]*Fields, len(times))
	now := 0.0
	for i, target := range times {
		for now < target-1e-12 {
			step := dt
			if now+step > target {
				step = target - now
			}
			p.Step(f, step)
			now += step
		}
		out[i] = f.Copy()
	}
	return out
}
