package refsol

import (
	"math"
	"testing"
)

// TestSpectralSatisfiesMaxwell: the exact solution's residuals, evaluated
// with spectral accuracy via small finite differences in t and high-order
// central differences in space, must vanish.
func TestSpectralSatisfiesMaxwell(t *testing.T) {
	n := 64
	sp := NewSpectral(CenteredPulse().InitFields(n))
	t0 := 0.4
	const ht = 1e-5
	fp := sp.At(t0 + ht)
	fm := sp.At(t0 - ht)
	f := sp.At(t0)
	// Spatial derivatives via the 4th-order compact operators, which this
	// test cross-validates against the exact solution at the same time.
	p := NewPade(n, Vacuum{})
	dHydx := make([]float64, n*n)
	dHxdy := make([]float64, n*n)
	p.ddx(f.Hy, dHydx)
	p.ddy(f.Hx, dHxdy)
	maxRes := 0.0
	for i := 0; i < n*n; i++ {
		dEzdt := (fp.Ez[i] - fm.Ez[i]) / (2 * ht)
		res := dEzdt - (dHydx[i] - dHxdy[i])
		if math.Abs(res) > maxRes {
			maxRes = math.Abs(res)
		}
	}
	if maxRes > 5e-3 {
		t.Fatalf("max residual %v", maxRes)
	}
}

// TestSpectralConservesEnergy: the vacuum solution conserves total
// electromagnetic energy to near machine precision (Poynting theorem,
// eq. 21 with J = 0 and periodic boundaries).
func TestSpectralConservesEnergy(t *testing.T) {
	n := 64
	init := CenteredPulse().InitFields(n)
	sp := NewSpectral(init)
	u0 := TotalEnergy(sp.At(0), Vacuum{})
	for _, tt := range []float64{0.3, 0.7, 1.1, 1.5} {
		u := TotalEnergy(sp.At(tt), Vacuum{})
		if math.Abs(u-u0) > 1e-8*u0 {
			t.Errorf("energy at t=%v: %v vs %v", tt, u, u0)
		}
	}
}

// TestSpectralInitialCondition: At(0) returns the initial condition exactly.
func TestSpectralInitialCondition(t *testing.T) {
	n := 32
	init := CenteredPulse().InitFields(n)
	f := NewSpectral(init).At(0)
	for i := range init.Ez {
		if math.Abs(f.Ez[i]-init.Ez[i]) > 1e-10 {
			t.Fatalf("Ez(0) mismatch at %d", i)
		}
		if math.Abs(f.Hx[i]) > 1e-10 || math.Abs(f.Hy[i]) > 1e-10 {
			t.Fatalf("H(0) ≠ 0 at %d", i)
		}
	}
}

// TestPadeMatchesSpectralVacuum: the compact scheme must track the exact
// solution closely on a moderate grid.
func TestPadeMatchesSpectralVacuum(t *testing.T) {
	n := 64
	init := CenteredPulse().InitFields(n)
	times := []float64{0.25, 0.5}
	exact := NewSpectral(init).Series(times)
	pade := NewPade(n, Vacuum{}).Solve(init, times)
	if err := L2Error(pade, exact); err > 5e-3 {
		t.Fatalf("Padé vs spectral L2 = %v", err)
	}
}

// TestFDTDMatchesSpectralVacuum: Yee solver cross-check (2nd order, looser).
func TestFDTDMatchesSpectralVacuum(t *testing.T) {
	n := 64
	init := CenteredPulse().InitFields(n)
	times := []float64{0.25, 0.5}
	exact := NewSpectral(init).Series(times)
	fdtd := NewFDTD(n, Vacuum{}).Solve(init, times)
	if err := L2Error(fdtd, exact); err > 0.08 {
		t.Fatalf("FDTD vs spectral L2 = %v", err)
	}
}

// TestPadeDielectricAgainstFDTD: with no exact solution available in the
// heterogeneous medium, the two independent discretizations must agree.
func TestPadeDielectricAgainstFDTD(t *testing.T) {
	n := 64
	med := SmoothSlab(0.08)
	init := CenteredPulse().InitFields(n)
	times := []float64{0.3, 0.6}
	pade := NewPade(n, med).Solve(init, times)
	fdtd := NewFDTD(n, med).Solve(init, times)
	if err := L2Error(fdtd, pade); err > 0.12 {
		t.Fatalf("Padé vs FDTD (dielectric) L2 = %v", err)
	}
}

// TestPadeConservesEnergy: lossless medium ⇒ energy constant (to the
// scheme's discretization error).
func TestPadeConservesEnergy(t *testing.T) {
	n := 48
	med := SmoothSlab(0.08)
	init := CenteredPulse().InitFields(n)
	sol := NewPade(n, med).Solve(init, []float64{0.0, 0.35, 0.7})
	u0 := TotalEnergy(sol[0], med)
	for i, f := range sol {
		u := TotalEnergy(f, med)
		if math.Abs(u-u0) > 2e-3*u0 {
			t.Errorf("snapshot %d: energy %v vs %v", i, u, u0)
		}
	}
}

// TestCyclicTridiagSolver: verify against direct multiplication.
func TestCyclicTridiagSolver(t *testing.T) {
	n := 17
	a, b := 0.25, 1.0
	tri := newCyclicTri(n, a, b)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(3*i)) + 0.2*float64(i%5)
	}
	// rhs = A x with A cyclic tridiagonal.
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = b*x[i] + a*x[(i+1)%n] + a*x[(i-1+n)%n]
	}
	scratch := make([]float64, n)
	tri.Solve(rhs, scratch)
	for i := range x {
		if math.Abs(rhs[i]-x[i]) > 1e-10 {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, rhs[i], x[i])
		}
	}
}

// TestPadeDerivativeOrder: the compact ∂/∂x of sin(πx) has error ≪ the
// 2nd-order scheme (4th-order convergence sanity check).
func TestPadeDerivativeOrder(t *testing.T) {
	errAt := func(n int) float64 {
		p := NewPade(n, Vacuum{})
		f := make([]float64, n*n)
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				f[iy*n+ix] = math.Sin(math.Pi * Coord(ix, n))
			}
		}
		out := make([]float64, n*n)
		p.ddx(f, out)
		var maxErr float64
		for ix := 0; ix < n; ix++ {
			want := math.Pi * math.Cos(math.Pi*Coord(ix, n))
			if e := math.Abs(out[ix] - want); e > maxErr {
				maxErr = e
			}
		}
		return maxErr
	}
	e16, e32 := errAt(16), errAt(32)
	order := math.Log2(e16 / e32)
	if order < 3.5 {
		t.Fatalf("compact scheme order %v (e16=%v e32=%v), want ≈4", order, e16, e32)
	}
}

// TestL2ErrorMetric: identical fields give 0; a scaled field gives the
// closed-form relative error.
func TestL2ErrorMetric(t *testing.T) {
	n := 8
	f := CenteredPulse().InitFields(n)
	if e := L2Error([]*Fields{f}, []*Fields{f}); e != 0 {
		t.Fatalf("self error %v", e)
	}
	g := f.Copy()
	for i := range g.Ez {
		g.Ez[i] *= 1.1
	}
	if e := L2Error([]*Fields{g}, []*Fields{f}); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("scaled error %v, want 0.1", e)
	}
}

// TestSlabGeometry: the dielectric breaks x-symmetry, preserves y-symmetry.
func TestSlabGeometry(t *testing.T) {
	s := PaperSlab()
	if s.EpsAt(0.5, 0.2) != 4 || s.EpsAt(-0.5, 0.2) != 1 {
		t.Fatal("slab eps misplaced")
	}
	if math.Float64bits(s.EpsAt(0.5, 0.7)) != math.Float64bits(s.EpsAt(0.5, -0.7)) {
		t.Fatal("slab must be y-symmetric")
	}
	if math.Float64bits(s.EpsAt(0.5, 0)) == math.Float64bits(s.EpsAt(-0.5, 0)) {
		t.Fatal("slab must break x-symmetry")
	}
	sm := SmoothSlab(0.05)
	if sm.EpsAt(-1, 0) > 1.01 || sm.EpsAt(1, 0) < 3.99 {
		t.Fatal("smooth slab endpoints wrong")
	}
}

// TestEzAtMatchesGrid: pointwise Fourier synthesis agrees with the FFT grid.
func TestEzAtMatchesGrid(t *testing.T) {
	n := 16
	sp := NewSpectral(CenteredPulse().InitFields(n))
	f := sp.At(0.3)
	for _, probe := range [][2]int{{0, 0}, {3, 7}, {9, 12}} {
		iy, ix := probe[0], probe[1]
		got := sp.EzAt(Coord(ix, n), Coord(iy, n), 0.3)
		want := f.Ez[iy*n+ix]
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("EzAt(%d,%d) %v vs grid %v", iy, ix, got, want)
		}
	}
}
