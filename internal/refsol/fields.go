// Package refsol provides the high-fidelity reference solutions for the 2-D
// TEz Maxwell problems: an exact spectral solution for the homogeneous
// (vacuum) case, the paper's 4th-order Padé compact scheme with RK4 time
// stepping for general ε(x, y), and a Yee FDTD cross-check. All solvers
// use the normalized system of eq. 7 (ε₀ = µ₀ = 1) on the periodic square
// [−1, 1]².
package refsol

import "math"

// Domain bounds of both test cases.
const (
	XMin = -1.0
	XMax = 1.0
	L    = XMax - XMin
)

// Fields holds the three TEz field components on an n×n periodic grid with
// nodes x_i = −1 + i·(2/n) (the right/top boundary is the periodic image of
// the left/bottom). Storage is row-major with y as the slow index:
// F[iy*n+ix].
type Fields struct {
	N          int
	Ez, Hx, Hy []float64
}

// NewFields allocates zeroed fields.
func NewFields(n int) *Fields {
	return &Fields{N: n, Ez: make([]float64, n*n), Hx: make([]float64, n*n), Hy: make([]float64, n*n)}
}

// Copy returns a deep copy.
func (f *Fields) Copy() *Fields {
	g := NewFields(f.N)
	copy(g.Ez, f.Ez)
	copy(g.Hx, f.Hx)
	copy(g.Hy, f.Hy)
	return g
}

// Coord returns the physical coordinate of grid index i.
func Coord(i, n int) float64 { return XMin + L*float64(i)/float64(n) }

// Pulse describes a Gaussian initial condition for Ez (magnetic fields start
// at zero, eqs. 16–18). The paper's base case is the centered unit pulse
// exp(−25(x²+y²)); the appendix-A case is off-center and stretched.
type Pulse struct {
	X0, Y0 float64
	SX, SY float64 // axis stretch factors; 1 = isotropic
}

// CenteredPulse is the eq. 16 initial condition.
func CenteredPulse() Pulse { return Pulse{SX: 1, SY: 1} }

// AsymmetricPulse is the appendix-A initial condition: centered at
// (0.4, 0.3) and stretched by (0.85, 0.65).
func AsymmetricPulse() Pulse { return Pulse{X0: 0.4, Y0: 0.3, SX: 0.85, SY: 0.65} }

// At evaluates the pulse at a point.
func (p Pulse) At(x, y float64) float64 {
	dx := (x - p.X0) / p.SX
	dy := (y - p.Y0) / p.SY
	return math.Exp(-25 * (dx*dx + dy*dy))
}

// InitFields samples the pulse onto an n×n grid.
func (p Pulse) InitFields(n int) *Fields {
	f := NewFields(n)
	for iy := 0; iy < n; iy++ {
		y := Coord(iy, n)
		for ix := 0; ix < n; ix++ {
			f.Ez[iy*n+ix] = p.At(Coord(ix, n), y)
		}
	}
	return f
}

// Medium is a relative-permittivity field ε_r(x, y) (µ = 1 everywhere).
type Medium interface {
	EpsAt(x, y float64) float64
}

// Vacuum is ε_r ≡ 1.
type Vacuum struct{}

// EpsAt implements Medium.
func (Vacuum) EpsAt(x, y float64) float64 { return 1 }

// Slab is the dielectric medium of case 2: ε_r = EpsR for x ≥ X0, with a
// tanh-smoothed interface of width W for the compact-scheme reference
// (W = 0 gives the sharp interface used for collocation labeling). The slab
// spans all y, breaking the x-mirror symmetry while preserving the y-mirror
// symmetry, consistent with §2.2's symmetry-loss discussion.
type Slab struct {
	X0   float64
	EpsR float64
	W    float64
}

// PaperSlab returns the ε_r = 4 slab at x ≥ 0.35 used throughout the
// dielectric experiments (the paper does not specify the geometry; see
// DESIGN.md for the substitution note).
func PaperSlab() Slab { return Slab{X0: 0.35, EpsR: 4, W: 0} }

// SmoothSlab is PaperSlab with a smoothed interface for finite-difference
// reference solvers.
func SmoothSlab(width float64) Slab { s := PaperSlab(); s.W = width; return s }

// EpsAt implements Medium.
func (s Slab) EpsAt(x, y float64) float64 {
	if s.W <= 0 {
		if x >= s.X0 {
			return s.EpsR
		}
		return 1
	}
	t := 0.5 * (1 + math.Tanh((x-s.X0)/s.W))
	return 1 + (s.EpsR-1)*t
}

// IsDielectric reports whether a point lies in the ε_r > 1 region (sharp
// classification for collocation-point bookkeeping).
func (s Slab) IsDielectric(x, y float64) bool { return x >= s.X0 }

// sampleEps evaluates ε on the solver grid.
func sampleEps(m Medium, n int) []float64 {
	eps := make([]float64, n*n)
	for iy := 0; iy < n; iy++ {
		y := Coord(iy, n)
		for ix := 0; ix < n; ix++ {
			eps[iy*n+ix] = m.EpsAt(Coord(ix, n), y)
		}
	}
	return eps
}

// TotalEnergy integrates the electromagnetic energy density (eq. 22)
// u = ½(ε Ez² + Hx² + Hy²) over the grid (cell-area weighted).
func TotalEnergy(f *Fields, m Medium) float64 {
	n := f.N
	cell := (L / float64(n)) * (L / float64(n))
	var u float64
	for iy := 0; iy < n; iy++ {
		y := Coord(iy, n)
		for ix := 0; ix < n; ix++ {
			eps := m.EpsAt(Coord(ix, n), y)
			i := iy*n + ix
			u += 0.5 * (eps*f.Ez[i]*f.Ez[i] + f.Hx[i]*f.Hx[i] + f.Hy[i]*f.Hy[i])
		}
	}
	return u * cell
}

// L2Error computes the paper's metric (eq. 32): the relative L2 norm of the
// Ez prediction error accumulated over a set of snapshots.
func L2Error(pred, ref []*Fields) float64 {
	var num, den float64
	for s := range ref {
		for i := range ref[s].Ez {
			d := pred[s].Ez[i] - ref[s].Ez[i]
			num += d * d
			den += ref[s].Ez[i] * ref[s].Ez[i]
		}
	}
	if den == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}
