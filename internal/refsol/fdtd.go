package refsol

// FDTD is a standard Yee-grid leapfrog solver for the TEz system, used as
// an independent cross-check of the spectral and compact-scheme references.
// Ez lives on integer nodes, Hx on (i, j+½), Hy on (i+½, j); periodic wrap.
type FDTD struct {
	N   int
	eps []float64
	h   float64
}

// NewFDTD builds the solver on an n×n grid for medium m.
func NewFDTD(n int, m Medium) *FDTD {
	return &FDTD{N: n, eps: sampleEps(m, n), h: L / float64(n)}
}

// Solve integrates the initial condition to each requested ascending time.
// The half-step staggering of H is initialized with a forward Euler half
// step, giving first-order error at t=0 that is O(dt) — acceptable for a
// cross-check tolerance.
func (s *FDTD) Solve(init *Fields, times []float64) []*Fields {
	f := init.Copy()
	dt := 0.35 * s.h // CFL < 1/√2 for 2-D Yee
	// Advance H a half step to establish staggering.
	s.stepH(f, dt/2)
	now := 0.0
	out := make([]*Fields, len(times))
	for i, target := range times {
		for now < target-1e-12 {
			step := dt
			if now+step > target {
				step = target - now
				// Partial step: advance E by step with H at mid-level, then
				// restagger H by the matching half-steps.
				s.stepE(f, step)
				s.stepH(f, step)
				now += step
				continue
			}
			s.stepE(f, step)
			s.stepH(f, step)
			now += step
		}
		snap := f.Copy()
		// Undo the half-step lead of H for the snapshot (average back).
		s.stepH(snap, -dt/2)
		out[i] = snap
	}
	return out
}

func (s *FDTD) stepE(f *Fields, dt float64) {
	n := s.N
	for iy := 0; iy < n; iy++ {
		iym := (iy - 1 + n) % n
		for ix := 0; ix < n; ix++ {
			ixm := (ix - 1 + n) % n
			curl := (f.Hy[iy*n+ix]-f.Hy[iy*n+ixm])/s.h - (f.Hx[iy*n+ix]-f.Hx[iym*n+ix])/s.h
			f.Ez[iy*n+ix] += dt / s.eps[iy*n+ix] * curl
		}
	}
}

func (s *FDTD) stepH(f *Fields, dt float64) {
	n := s.N
	for iy := 0; iy < n; iy++ {
		iyp := (iy + 1) % n
		for ix := 0; ix < n; ix++ {
			ixp := (ix + 1) % n
			f.Hx[iy*n+ix] -= dt / s.h * (f.Ez[iyp*n+ix] - f.Ez[iy*n+ix])
			f.Hy[iy*n+ix] += dt / s.h * (f.Ez[iy*n+ixp] - f.Ez[iy*n+ix])
		}
	}
}
