package refsol

import (
	"math"

	"repro/internal/fft"
)

// Spectral is the exact solution of the vacuum TEz system on the periodic
// square: each Fourier mode of the eq. 7 system evolves in closed form.
// With Ĥ(0) = 0 and ω = |k|,
//
//	Êz(k,t) = Êz(k,0)·cos(ωt)
//	Ĥx(k,t) = −i·k_y·Êz(k,0)·sin(ωt)/ω
//	Ĥy(k,t) = +i·k_x·Êz(k,0)·sin(ωt)/ω
//
// (the DC mode is constant). This is exact up to the spatial truncation of
// the initial condition, making it the gold reference against which the
// Padé compact scheme and the FDTD solver are themselves validated.
type Spectral struct {
	N   int
	ez0 []complex128 // FFT of the initial Ez
}

// NewSpectral prepares the exact solver from an initial condition grid.
// n must be a power of two.
func NewSpectral(init *Fields) *Spectral {
	n := init.N
	ez0 := make([]complex128, n*n)
	for i, v := range init.Ez {
		ez0[i] = complex(v, 0)
	}
	fft.Forward2D(ez0, n)
	return &Spectral{N: n, ez0: ez0}
}

// At evaluates the exact fields at time t.
func (s *Spectral) At(t float64) *Fields {
	n := s.N
	ez := make([]complex128, n*n)
	hx := make([]complex128, n*n)
	hy := make([]complex128, n*n)
	for by := 0; by < n; by++ {
		ky := math.Pi * float64(fft.FreqIndex(by, n)) // 2π/L with L = 2
		for bx := 0; bx < n; bx++ {
			kx := math.Pi * float64(fft.FreqIndex(bx, n))
			e0 := s.ez0[by*n+bx]
			w := math.Hypot(kx, ky)
			idx := by*n + bx
			if w == 0 {
				ez[idx] = e0
				continue
			}
			c, sn := math.Cos(w*t), math.Sin(w*t)
			ez[idx] = e0 * complex(c, 0)
			f := e0 * complex(0, sn/w)
			hx[idx] = -complex(ky, 0) * f
			hy[idx] = complex(kx, 0) * f
		}
	}
	fft.Inverse2D(ez, n)
	fft.Inverse2D(hx, n)
	fft.Inverse2D(hy, n)
	out := NewFields(n)
	for i := 0; i < n*n; i++ {
		out.Ez[i] = real(ez[i])
		out.Hx[i] = real(hx[i])
		out.Hy[i] = real(hy[i])
	}
	return out
}

// Series evaluates the exact fields at each requested time.
func (s *Spectral) Series(times []float64) []*Fields {
	out := make([]*Fields, len(times))
	for i, t := range times {
		out[i] = s.At(t)
	}
	return out
}

// EzAt evaluates only Ez at an arbitrary point (x, y, t) by direct Fourier
// synthesis — used to build reference values on the PINN evaluation grid
// without interpolation error.
func (s *Spectral) EzAt(x, y, t float64) float64 {
	n := s.N
	var acc complex128
	for by := 0; by < n; by++ {
		ky := math.Pi * float64(fft.FreqIndex(by, n))
		for bx := 0; bx < n; bx++ {
			kx := math.Pi * float64(fft.FreqIndex(bx, n))
			e0 := s.ez0[by*n+bx]
			if e0 == 0 {
				continue
			}
			w := math.Hypot(kx, ky)
			phase := kx*(x-XMin) + ky*(y-XMin)
			basis := complex(math.Cos(phase), math.Sin(phase))
			acc += e0 * complex(math.Cos(w*t), 0) * basis
		}
	}
	return real(acc) / float64(n*n)
}

// PointDerivs holds one field component's value and (x, y, t) derivatives.
type PointDerivs struct {
	V          float64
	Dx, Dy, Dt float64
}

// EvalPoint synthesizes all three exact fields and their first derivatives
// at an arbitrary point. Used to validate the PINN loss terms: feeding these
// values into the residuals must produce (near) zero.
func (s *Spectral) EvalPoint(x, y, t float64) (ez, hx, hy PointDerivs) {
	n := s.N
	norm := 1 / float64(n*n)
	for by := 0; by < n; by++ {
		ky := math.Pi * float64(fft.FreqIndex(by, n))
		for bx := 0; bx < n; bx++ {
			kx := math.Pi * float64(fft.FreqIndex(bx, n))
			e0 := s.ez0[by*n+bx]
			if e0 == 0 {
				continue
			}
			w := math.Hypot(kx, ky)
			phase := kx*(x-XMin) + ky*(y-XMin)
			basis := complex(math.Cos(phase), math.Sin(phase))
			ikx := complex(0, kx)
			iky := complex(0, ky)

			var ezC, hxC, hyC, ezT, hxT, hyT complex128
			if w == 0 {
				ezC = e0
			} else {
				c, sn := math.Cos(w*t), math.Sin(w*t)
				ezC = e0 * complex(c, 0)
				hxC = -complex(ky, 0) * e0 * complex(0, sn/w)
				hyC = complex(kx, 0) * e0 * complex(0, sn/w)
				ezT = e0 * complex(-w*sn, 0)
				hxT = -complex(ky, 0) * e0 * complex(0, c)
				hyT = complex(kx, 0) * e0 * complex(0, c)
			}
			add := func(p *PointDerivs, v, vt complex128) {
				p.V += real(v * basis * complex(norm, 0))
				p.Dx += real(v * ikx * basis * complex(norm, 0))
				p.Dy += real(v * iky * basis * complex(norm, 0))
				p.Dt += real(vt * basis * complex(norm, 0))
			}
			add(&ez, ezC, ezT)
			add(&hx, hxC, hxT)
			add(&hy, hyC, hyT)
		}
	}
	return
}
