package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// progNetMatrix composes the dense net unitary of a compiled program's
// non-embedding instructions via the naive-oracle instrMatrix expansion.
func progNetMatrix(p *Program, coeff []float64) cmat {
	dim := 1 << p.circ.NumQubits
	u := eye(dim)
	for _, in := range p.ins {
		if in.op == opEmbed || in.op == opEmbedAll {
			continue
		}
		u = p.instrMatrix(in, coeff).mul(u)
	}
	return u
}

// TestProgramNetUnitaryOracle is the compiler-level parity oracle: at both
// fusion levels, the composed dense matrix of the compiled instruction
// stream must equal the gate-by-gate dense product of the source circuit.
// This pins every fusion pass — single-qubit runs, diagonal merges, 4×4
// entangler blocks, full-register diagonals — independently of the
// execution kernels.
func TestProgramNetUnitaryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, a := range AllAnsatze {
		circ := a.Build(4, 2)
		theta := randTheta(rng, circ.NumParams)
		dim := 1 << circ.NumQubits
		ref := eye(dim)
		for _, g := range circ.Gates {
			ref = expand(g, theta, circ.NumQubits).mul(ref)
		}
		for _, level := range []int{1, 2} {
			prog := CompileProgramLevel(circ, level)
			coeff := make([]float64, prog.NumCoeffs())
			prog.FillCoeffs(theta, coeff)
			got := progNetMatrix(prog, coeff)
			var maxd float64
			for i := range ref.data {
				if d := cmplx.Abs(got.data[i] - ref.data[i]); d > maxd {
					maxd = d
				}
			}
			if maxd > 1e-12 {
				t.Errorf("%v level=%d: net unitary diverges from gate product by %v", a, level, maxd)
			}
		}
	}
}

// TestProgramDerivCoeffsOracle checks the fused-block derivative matrices
// against central finite differences of the forward coefficients: for every
// fused unitary instruction, dU/dθ_p from FillDerivCoeffs must match
// (U(θ+ε) − U(θ−ε)) / 2ε.
func TestProgramDerivCoeffsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const eps = 1e-6
	for _, a := range []AnsatzKind{StronglyEntangling, CrossMesh2Rot, CrossMeshCNOT} {
		circ := a.Build(4, 2)
		theta := randTheta(rng, circ.NumParams)
		prog := CompileProgram(circ)
		deriv := make([]float64, prog.nderiv)
		plus := make([]float64, prog.ncoef)
		minus := make([]float64, prog.ncoef)
		prog.FillDerivCoeffs(theta, deriv)
		tweak := append([]float64(nil), theta...)
		for _, in := range prog.ins {
			var width int
			switch in.op {
			case opU2:
				width = 8
			case opU4:
				width = 32
			default:
				continue
			}
			for pi, p := range in.params {
				tweak[p] = theta[p] + eps
				prog.FillCoeffs(tweak, plus)
				tweak[p] = theta[p] - eps
				prog.FillCoeffs(tweak, minus)
				tweak[p] = theta[p]
				for i := 0; i < width; i++ {
					fd := (plus[in.slot+i] - minus[in.slot+i]) / (2 * eps)
					an := deriv[in.dslot+width*pi+i]
					if math.Abs(fd-an) > 1e-8 {
						t.Fatalf("%v op=%d param %d coeff %d: analytic %v vs finite-diff %v", a, in.op, p, i, an, fd)
					}
				}
			}
		}
	}
}

// TestProgramDiagNSigns pins the structure of the full-register diagonal
// sign tables: a CRZ contributes 0 on its control-unset half and ∓1 with
// the target bit on the control-set half.
func TestProgramDiagNSigns(t *testing.T) {
	circ := CrossMesh.Build(3, 1)
	prog := CompileProgram(circ)
	var dn *instr
	for i := range prog.ins {
		if prog.ins[i].op == opDiagN {
			dn = &prog.ins[i]
			break
		}
	}
	if dn == nil {
		t.Fatal("CrossMesh program has no fused diagonal instruction")
	}
	dim := 1 << circ.NumQubits
	if len(dn.params) != 6 || len(dn.signs) != 6*dim {
		t.Fatalf("fused diagonal: %d params, %d signs", len(dn.params), len(dn.signs))
	}
	pi := 0
	for _, g := range dn.gates {
		row := dn.signs[pi*dim : (pi+1)*dim]
		for j := 0; j < dim; j++ {
			want := int8(0)
			if j&(1<<g.C) != 0 {
				if j&(1<<g.Q) == 0 {
					want = 1
				} else {
					want = -1
				}
			}
			if row[j] != want {
				t.Fatalf("gate CRZ(c=%d,t=%d) basis %d: sign %d, want %d", g.C, g.Q, j, row[j], want)
			}
		}
		pi++
	}
}
