package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// progNetMatrix composes the dense net unitary of a compiled program's
// non-embedding instructions via the naive-oracle instrMatrix expansion.
func progNetMatrix(p *Program, coeff []float64) cmat {
	dim := 1 << p.circ.NumQubits
	u := eye(dim)
	for _, in := range p.ins {
		if in.op == opEmbed || in.op == opEmbedAll {
			continue
		}
		u = p.instrMatrix(in, coeff).mul(u)
	}
	return u
}

// TestProgramNetUnitaryOracle is the compiler-level parity oracle: at every
// fusion level, the composed dense matrix of the compiled instruction
// stream must equal the gate-by-gate dense product of the source circuit.
// This pins every fusion pass — single-qubit runs, diagonal merges, 4×4/8×8
// entangler blocks, grouped triples, full-register diagonals — independently
// of the execution kernels.
func TestProgramNetUnitaryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, a := range AllAnsatze {
		circ := a.Build(4, 2)
		theta := randTheta(rng, circ.NumParams)
		dim := 1 << circ.NumQubits
		ref := eye(dim)
		for _, g := range circ.Gates {
			ref = expand(g, theta, circ.NumQubits).mul(ref)
		}
		for _, level := range []int{1, 2, 3} {
			prog := CompileProgramLevel(circ, level)
			coeff := make([]float64, prog.NumCoeffs())
			prog.FillCoeffs(theta, coeff)
			got := progNetMatrix(prog, coeff)
			var maxd float64
			for i := range ref.data {
				if d := cmplx.Abs(got.data[i] - ref.data[i]); d > maxd {
					maxd = d
				}
			}
			if maxd > 1e-12 {
				t.Errorf("%v level=%d: net unitary diverges from gate product by %v", a, level, maxd)
			}
		}
	}
}

// TestProgramDerivCoeffsOracle checks the fused-block derivative matrices
// against central finite differences of the forward coefficients: for every
// fused unitary instruction, dU/dθ_p from FillDerivCoeffs must match
// (U(θ+ε) − U(θ−ε)) / 2ε. For the Kronecker-structured triples only the
// parameter's own 2×2 factor moves, so the comparison targets that factor's
// slot window. Runs at both fused compile levels so the 4×4-only and the
// 8×8/triple instruction mixes are each exercised.
func TestProgramDerivCoeffsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const eps = 1e-6
	for _, a := range []AnsatzKind{StronglyEntangling, CrossMesh2Rot, CrossMeshCNOT} {
		for _, level := range []int{2, 3} {
			circ := a.Build(4, 2)
			theta := randTheta(rng, circ.NumParams)
			prog := CompileProgramLevel(circ, level)
			deriv := make([]float64, prog.nderiv)
			plus := make([]float64, prog.ncoef)
			minus := make([]float64, prog.ncoef)
			prog.FillDerivCoeffs(theta, deriv)
			tweak := append([]float64(nil), theta...)
			for _, in := range prog.ins {
				if in.op == opU2x3 && in.logDeriv {
					continue // no derivative slots: the adjoint reads the states
				}
				var width int
				switch in.op {
				case opU2, opU2x3:
					width = 8
				case opU4:
					width = 32
				case opU8:
					width = 128
				default:
					continue
				}
				// Factor slot offset per parameter: zero except for triples,
				// where each parameter differentiates its own factor.
				offs := make([]int, len(in.params))
				if in.op == opU2x3 {
					pi := 0
					for _, g := range in.gates {
						if g.P >= 0 {
							offs[pi] = 8 * localBit3(g.Q, in.q, in.c, in.q2)
							pi++
						}
					}
				}
				for pi, p := range in.params {
					tweak[p] = theta[p] + eps
					prog.FillCoeffs(tweak, plus)
					tweak[p] = theta[p] - eps
					prog.FillCoeffs(tweak, minus)
					tweak[p] = theta[p]
					for i := 0; i < width; i++ {
						fd := (plus[in.slot+offs[pi]+i] - minus[in.slot+offs[pi]+i]) / (2 * eps)
						an := deriv[in.dslot+width*pi+i]
						if math.Abs(fd-an) > 1e-8 {
							t.Fatalf("%v level=%d op=%d param %d coeff %d: analytic %v vs finite-diff %v", a, level, in.op, p, i, an, fd)
						}
					}
				}
			}
		}
	}
}

// TestProgramDiagCommutationAbsorb pins the level-3 commutation-aware
// diagonal absorption: diagonal instructions separated by blocks with
// disjoint support merge into one full-register diagonal (the level-2 pass
// only fuses consecutive runs), while a blocker touching the diagonal's
// support keeps it out of the group. Both the instruction shapes and full
// numerical parity against the legacy engine are checked.
func TestProgramDiagCommutationAbsorb(t *testing.T) {
	// CRZ(0→1), CNOT(2→3), RZ(0), CRZ(0→1): the CNOT's support {2,3} is
	// disjoint from every diagonal's support, so all three diagonals commute
	// into one group.
	circ := &Circuit{
		Name:      "diag-commute",
		NumQubits: 4,
		Gates: []Gate{
			{CRZ, 1, 0, 0},
			{CNOT, 3, 2, -1},
			{RZ, 0, -1, 1},
			{CRZ, 1, 0, 2},
		},
		NumParams: 3,
	}
	prog := CompileProgram(circ)
	if got := prog.NumInstructions(); got != 3 { // embed + diagN + CNOT
		t.Fatalf("commuting diagonals: %d instructions, want 3", got)
	}
	var dn *instr
	for i := range prog.ins {
		if prog.ins[i].op == opDiagN {
			dn = &prog.ins[i]
		}
	}
	if dn == nil || len(dn.params) != 3 {
		t.Fatalf("expected one fused diagonal absorbing all 3 parameters, got %+v", dn)
	}
	if v2 := CompileProgramV2(circ).NumInstructions(); v2 != 4 {
		t.Fatalf("level-2 baseline: %d instructions, want 4 (no non-adjacent fusion)", v2)
	}

	// RZ(0), CNOT(0→1), RZ(0): the CNOT touches qubit 0, so the diagonals
	// must NOT commute past it into one group — instead pair fusion absorbs
	// all three into a single two-qubit block.
	blocked := &Circuit{
		Name:      "diag-blocked",
		NumQubits: 2,
		Gates: []Gate{
			{RZ, 0, -1, 0},
			{CNOT, 1, 0, -1},
			{RZ, 0, -1, 1},
		},
		NumParams: 2,
	}
	bprog := CompileProgram(blocked)
	for i := range bprog.ins {
		if bprog.ins[i].op == opDiagN {
			t.Fatalf("blocked diagonals fused across a non-commuting CNOT")
		}
	}

	// Numerical parity on both shapes, all engines.
	rng := rand.New(rand.NewSource(321))
	for _, c := range []*Circuit{circ, blocked} {
		n, nq := 3, c.NumQubits
		angles := randAngles(rng, n, nq)
		theta := randTheta(rng, c.NumParams)
		tans := [][]float64{randAngles(rng, n, nq), nil, nil}
		gz := randAngles(rng, n, nq)
		gztans := [][]float64{randAngles(rng, n, nq), nil, nil}
		ref := runEngine(EngineLegacy, c, n, angles, tans, theta, gz, gztans)
		for _, kind := range []EngineKind{EngineFused, EngineFusedV2, EngineNaive} {
			got := runEngine(kind, c, n, angles, tans, theta, gz, gztans)
			//torq:allow maprange -- independent per-series assertions
			for name, pair := range map[string][2][]float64{
				"z": {ref.z, got.z}, "dAngles": {ref.dAngles, got.dAngles},
				"dTheta": {ref.dTheta, got.dTheta},
			} {
				if d := maxAbsDiff(pair[0], pair[1]); d > 1e-10 {
					t.Errorf("%s engine=%v: %s diverges by %v", c.Name, kind, name, d)
				}
			}
		}
	}
}

// denseTripleCircuit builds a rotation-dense three-qubit block: two full
// rotation walls around a CNOT make the couple-then-grow step pass the
// u8FuseCost gate, so the whole sequence collapses into one dense 8×8
// super-op. Used to pin the opU8 path now that the cost model keeps the
// standard ansätze on cheaper forms (pair blocks, permutations, triples).
func denseTripleCircuit() *Circuit {
	var gates []Gate
	p := 0
	rot := func(q int) {
		gates = append(gates,
			Gate{RZ, q, -1, p}, Gate{RY, q, -1, p + 1}, Gate{RZ, q, -1, p + 2})
		p += 3
	}
	rot(0)
	rot(1)
	gates = append(gates, Gate{CNOT, 1, 0, -1})
	rot(0)
	rot(1)
	gates = append(gates, Gate{CNOT, 2, 1, -1})
	rot(2)
	gates = append(gates, Gate{CRZ, 2, 0, p})
	p++
	return &Circuit{Name: "dense-triple", NumQubits: 3, Gates: gates, NumParams: p}
}

// TestProgramDenseTripleBlock pins the dense 8×8 super-op: the
// rotation-dense probe circuit must compile into a single opU8 whose
// net unitary matches the gate product, whose derivative slots match
// finite differences, and whose execution agrees with every other engine.
func TestProgramDenseTripleBlock(t *testing.T) {
	circ := denseTripleCircuit()
	prog := CompileProgram(circ)
	nU8 := 0
	for i := range prog.ins {
		if prog.ins[i].op == opU8 {
			nU8++
		}
	}
	if nU8 != 1 || prog.NumInstructions() != 2 { // embed + one dense block
		t.Fatalf("dense triple: %d instructions, %d opU8 (want 2, 1)", prog.NumInstructions(), nU8)
	}

	rng := rand.New(rand.NewSource(77))
	theta := randTheta(rng, circ.NumParams)

	// Net-unitary oracle.
	dim := 1 << circ.NumQubits
	ref := eye(dim)
	for _, g := range circ.Gates {
		ref = expand(g, theta, circ.NumQubits).mul(ref)
	}
	coeff := make([]float64, prog.NumCoeffs())
	prog.FillCoeffs(theta, coeff)
	got := progNetMatrix(prog, coeff)
	for i := range ref.data {
		if cmplx.Abs(got.data[i]-ref.data[i]) > 1e-12 {
			t.Fatalf("dense triple net unitary diverges at %d", i)
		}
	}

	// Derivative-slot oracle against central finite differences.
	const eps = 1e-6
	deriv := make([]float64, prog.nderiv)
	prog.FillDerivCoeffs(theta, deriv)
	plus := make([]float64, prog.ncoef)
	minus := make([]float64, prog.ncoef)
	tweak := append([]float64(nil), theta...)
	for _, in := range prog.ins {
		if in.op != opU8 {
			continue
		}
		for pi, p := range in.params {
			tweak[p] = theta[p] + eps
			prog.FillCoeffs(tweak, plus)
			tweak[p] = theta[p] - eps
			prog.FillCoeffs(tweak, minus)
			tweak[p] = theta[p]
			for i := 0; i < 128; i++ {
				fd := (plus[in.slot+i] - minus[in.slot+i]) / (2 * eps)
				if math.Abs(fd-deriv[in.dslot+128*pi+i]) > 1e-8 {
					t.Fatalf("opU8 param %d coeff %d: analytic %v vs finite-diff %v",
						p, i, deriv[in.dslot+128*pi+i], fd)
				}
			}
		}
	}

	// Full engine parity (forward, tangents, adjoint gradients).
	n, nq := 4, 3
	angles := randAngles(rng, n, nq)
	tans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}
	gz := randAngles(rng, n, nq)
	gztans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}
	refRes := runEngine(EngineLegacy, circ, n, angles, tans, theta, gz, gztans)
	for _, kind := range []EngineKind{EngineFused, EngineFusedV2, EngineNaive} {
		gotRes := runEngine(kind, circ, n, angles, tans, theta, gz, gztans)
		//torq:allow maprange -- independent per-series assertions
		for name, pair := range map[string][2][]float64{
			"z": {refRes.z, gotRes.z}, "dAngles": {refRes.dAngles, gotRes.dAngles},
			"dTheta": {refRes.dTheta, gotRes.dTheta},
		} {
			if d := maxAbsDiff(pair[0], pair[1]); d > 1e-10 {
				t.Errorf("engine=%v: %s diverges by %v", kind, name, d)
			}
		}
	}
}

// TestProgramDiagNSigns pins the structure of the full-register diagonal
// sign tables: a CRZ contributes 0 on its control-unset half and ∓1 with
// the target bit on the control-set half.
func TestProgramDiagNSigns(t *testing.T) {
	circ := CrossMesh.Build(3, 1)
	prog := CompileProgram(circ)
	var dn *instr
	for i := range prog.ins {
		if prog.ins[i].op == opDiagN {
			dn = &prog.ins[i]
			break
		}
	}
	if dn == nil {
		t.Fatal("CrossMesh program has no fused diagonal instruction")
	}
	dim := 1 << circ.NumQubits
	if len(dn.params) != 6 || len(dn.signs) != 6*dim {
		t.Fatalf("fused diagonal: %d params, %d signs", len(dn.params), len(dn.signs))
	}
	pi := 0
	for _, g := range dn.gates {
		row := dn.signs[pi*dim : (pi+1)*dim]
		for j := 0; j < dim; j++ {
			want := int8(0)
			if j&(1<<g.C) != 0 {
				if j&(1<<g.Q) == 0 {
					want = 1
				} else {
					want = -1
				}
			}
			if row[j] != want {
				t.Fatalf("gate CRZ(c=%d,t=%d) basis %d: sign %d, want %d", g.C, g.Q, j, row[j], want)
			}
		}
		pi++
	}
}
