package qsim

import (
	"fmt"
	"math"
)

// GateKind enumerates the elementary gates used by the paper's ansätze.
type GateKind uint8

const (
	RX GateKind = iota
	RY
	RZ
	CNOT
	CRZ
)

func (k GateKind) String() string {
	switch k {
	case RX:
		return "RX"
	case RY:
		return "RY"
	case RZ:
		return "RZ"
	case CNOT:
		return "CNOT"
	case CRZ:
		return "CRZ"
	}
	return "?"
}

// Gate is one circuit element. Q is the target qubit; C the control (−1 for
// single-qubit gates); P the trainable-parameter index (−1 for CNOT).
type Gate struct {
	Kind GateKind
	Q    int
	C    int
	P    int
}

// Circuit is an ansatz: a gate sequence over NumQubits qubits with NumParams
// trainable rotation angles. The data-encoding layer (one RX per qubit whose
// angle is a scaled network activation) is applied before Gates by the
// runner and is not part of the sequence.
type Circuit struct {
	Name      string
	NumQubits int
	Layers    int
	Gates     []Gate
	NumParams int
	// Reupload enables the data re-uploading extension (§6.2(c)): the angle
	// embedding repeats before every ansatz layer instead of running once.
	Reupload bool
	// layerBounds[l] is the index in Gates where layer l begins.
	layerBounds []int
}

// LayerStarts returns a copy of the per-layer start indices into Gates —
// the only unexported piece of circuit structure, exposed so a circuit can
// be serialized to a worker process and reconstructed with
// NewCircuitFromSpec.
func (c *Circuit) LayerStarts() []int {
	return append([]int(nil), c.layerBounds...)
}

// NewCircuitFromSpec reconstructs a circuit from its serialized fields (see
// LayerStarts). The result compiles to the identical program as the
// original: CompileProgramLevel depends only on the fields restored here.
func NewCircuitFromSpec(name string, numQubits, layers int, gates []Gate, numParams int, reupload bool, layerStarts []int) *Circuit {
	return &Circuit{
		Name:        name,
		NumQubits:   numQubits,
		Layers:      layers,
		Gates:       gates,
		NumParams:   numParams,
		Reupload:    reupload,
		layerBounds: layerStarts,
	}
}

// LayerSlice returns the gates of ansatz layer l.
func (c *Circuit) LayerSlice(l int) []Gate {
	start := c.layerBounds[l]
	end := len(c.Gates)
	if l+1 < len(c.layerBounds) {
		end = c.layerBounds[l+1]
	}
	return c.Gates[start:end]
}

// WithReupload returns a copy of the circuit with data re-uploading enabled.
func (c *Circuit) WithReupload() *Circuit {
	cp := *c
	cp.Name = c.Name + " (re-uploading)"
	cp.Reupload = true
	return &cp
}

// AnsatzKind selects one of the six ansätze of the paper's ablation (Fig. 4).
type AnsatzKind int

const (
	BasicEntangling AnsatzKind = iota
	StronglyEntangling
	CrossMesh
	CrossMesh2Rot
	CrossMeshCNOT
	NoEntanglement
)

// AllAnsatze lists the ablation order used in Figs. 6–9.
var AllAnsatze = []AnsatzKind{
	CrossMesh, CrossMesh2Rot, CrossMeshCNOT,
	NoEntanglement, BasicEntangling, StronglyEntangling,
}

func (a AnsatzKind) String() string {
	switch a {
	case BasicEntangling:
		return "Basic Entangling Layers"
	case StronglyEntangling:
		return "Strongly Entangling Layers"
	case CrossMesh:
		return "Cross-Mesh"
	case CrossMesh2Rot:
		return "Cross-Mesh-2-Rotations"
	case CrossMeshCNOT:
		return "Cross-Mesh-CNOT"
	case NoEntanglement:
		return "No Entanglement Ansatz"
	}
	return "unknown"
}

// Build constructs the ansatz circuit for nq qubits and the given number of
// layers. Parameter counts match the paper's Table 1 exactly for nq=7, L=4:
// 84 for the Rot-based ansätze, 196 for Cross-Mesh, 224 for
// Cross-Mesh-2-Rotations.
func (a AnsatzKind) Build(nq, layers int) *Circuit {
	c := &Circuit{Name: a.String(), NumQubits: nq, Layers: layers}
	p := 0
	rot := func(q int) {
		// Rot(α,β,γ) = RZ(γ)·RY(β)·RZ(α): applied as RZ(α) then RY(β) then RZ(γ).
		c.Gates = append(c.Gates,
			Gate{RZ, q, -1, p}, Gate{RY, q, -1, p + 1}, Gate{RZ, q, -1, p + 2})
		p += 3
	}
	for l := 0; l < layers; l++ {
		c.layerBounds = append(c.layerBounds, len(c.Gates))
		switch a {
		case BasicEntangling:
			for q := 0; q < nq; q++ {
				rot(q)
			}
			// Cyclic nearest-neighbour CNOT chain.
			for q := 0; q < nq; q++ {
				c.Gates = append(c.Gates, Gate{CNOT, (q + 1) % nq, q, -1})
			}
		case StronglyEntangling:
			for q := 0; q < nq; q++ {
				rot(q)
			}
			// Control-target gap grows with the layer index (PennyLane's
			// StronglyEntanglingLayers range pattern).
			gap := l%(nq-1) + 1
			for q := 0; q < nq; q++ {
				c.Gates = append(c.Gates, Gate{CNOT, (q + gap) % nq, q, -1})
			}
		case CrossMesh:
			for q := 0; q < nq; q++ {
				c.Gates = append(c.Gates, Gate{RX, q, -1, p})
				p++
			}
			for i := 0; i < nq; i++ {
				for j := 0; j < nq; j++ {
					if j == i {
						continue
					}
					c.Gates = append(c.Gates, Gate{CRZ, j, i, p})
					p++
				}
			}
		case CrossMesh2Rot:
			for q := 0; q < nq; q++ {
				c.Gates = append(c.Gates,
					Gate{RX, q, -1, p}, Gate{RZ, q, -1, p + 1})
				p += 2
			}
			for i := 0; i < nq; i++ {
				for j := 0; j < nq; j++ {
					if j == i {
						continue
					}
					c.Gates = append(c.Gates, Gate{CRZ, j, i, p})
					p++
				}
			}
		case CrossMeshCNOT:
			for q := 0; q < nq; q++ {
				rot(q)
			}
			for i := 0; i < nq; i++ {
				for j := 0; j < nq; j++ {
					if j == i {
						continue
					}
					c.Gates = append(c.Gates, Gate{CNOT, j, i, -1})
				}
			}
		case NoEntanglement:
			for q := 0; q < nq; q++ {
				rot(q)
			}
		default:
			panic(fmt.Sprintf("qsim: unknown ansatz %d", a))
		}
	}
	c.NumParams = p
	return c
}

// apply runs gate g (forward) on state s with parameters theta.
func (g Gate) apply(s *State, theta []float64) {
	switch g.Kind {
	case RX:
		t := theta[g.P]
		s.ApplyIX(g.Q, cosHalf(t), sinHalf(t))
	case RY:
		t := theta[g.P]
		s.ApplyY(g.Q, cosHalf(t), sinHalf(t))
	case RZ:
		t := theta[g.P]
		c, sn := cosHalf(t), sinHalf(t)
		s.ApplyDiag(g.Q, c, -sn, c, sn)
	case CNOT:
		s.ApplyCNOT(g.C, g.Q)
	case CRZ:
		t := theta[g.P]
		c, sn := cosHalf(t), sinHalf(t)
		s.ApplyCtrlDiag(g.C, g.Q, c, -sn, c, sn)
	}
}

// applyInverse runs g† on s (rotation with negated angle; CNOT self-inverse).
func (g Gate) applyInverse(s *State, theta []float64) {
	switch g.Kind {
	case RX:
		t := theta[g.P]
		s.ApplyIX(g.Q, cosHalf(t), -sinHalf(t))
	case RY:
		t := theta[g.P]
		s.ApplyY(g.Q, cosHalf(t), -sinHalf(t))
	case RZ:
		t := theta[g.P]
		c, sn := cosHalf(t), sinHalf(t)
		s.ApplyDiag(g.Q, c, sn, c, -sn)
	case CNOT:
		s.ApplyCNOT(g.C, g.Q)
	case CRZ:
		t := theta[g.P]
		c, sn := cosHalf(t), sinHalf(t)
		s.ApplyCtrlDiag(g.C, g.Q, c, sn, c, -sn)
	}
}

// applyDeriv runs dU/dθ on s (destructive; s becomes the derivative image).
// CNOT has no parameter; calling applyDeriv on it panics.
func (g Gate) applyDeriv(s *State, theta []float64) {
	switch g.Kind {
	case RX:
		t := theta[g.P]
		s.ApplyIX(g.Q, -sinHalf(t)/2, cosHalf(t)/2)
	case RY:
		t := theta[g.P]
		s.ApplyY(g.Q, -sinHalf(t)/2, cosHalf(t)/2)
	case RZ:
		t := theta[g.P]
		c, sn := cosHalf(t), sinHalf(t)
		// d/dθ diag(e^{−iθ/2}, e^{iθ/2}) = diag(−(s+ic)/2, (−s+ic)/2)
		s.ApplyDiag(g.Q, -sn/2, -c/2, -sn/2, c/2)
	case CRZ:
		t := theta[g.P]
		c, sn := cosHalf(t), sinHalf(t)
		s.ApplyCtrlDiag(g.C, g.Q, -sn/2, -c/2, -sn/2, c/2)
		s.ZeroOutDerivCtrl(g.C)
	default:
		panic("qsim: derivative of non-parametrized gate")
	}
}

func cosHalf(t float64) float64 { return math.Cos(t / 2) }
func sinHalf(t float64) float64 { return math.Sin(t / 2) }
