package qsim

import (
	"math"
	"math/rand"
	"testing"
)

// TestShardRunnerForwardStateCache pins the affinity cache's contract: a
// cached backward replay is bit-identical to the stateless recompute, the
// cache validates the backward shard's inputs before use (any mismatch
// degrades to a recompute, never a wrong gradient), and moving the forward
// pass id drops every snapshot so stale-pass states cannot be replayed.
func TestShardRunnerForwardStateCache(t *testing.T) {
	rng := rand.New(rand.NewSource(60606))
	circ := StronglyEntangling.Build(4, 2)
	r := NewShardRunner(circ)
	const n, nq = 5, 4
	active := [MaxTangents]bool{true, false, true}
	rows := func() []float64 { return randAngles(rng, n, nq) }
	angles, gz := rows(), rows()
	var angleTans, gztans [MaxTangents][]float64
	for k := 0; k < MaxTangents; k++ {
		if active[k] {
			angleTans[k], gztans[k] = rows(), rows()
		}
	}
	theta := randTheta(rng, circ.NumParams)

	r.SetForwardPass(1)
	zRet, _ := r.ForwardShardRetain(3, n, active, angles, angleTans, theta)
	zRetCopy := append([]float64(nil), zRet...)
	if got := r.CachedForwardShards(); got != 1 {
		t.Fatalf("cache holds %d snapshots after one retained forward, want 1", got)
	}
	zPlain, _ := r.ForwardShard(n, active, angles, angleTans, theta)
	for i := range zPlain {
		if math.Float64bits(zPlain[i]) != math.Float64bits(zRetCopy[i]) {
			t.Fatalf("ForwardShardRetain z[%d] = %v differs from ForwardShard's %v", i, zRetCopy[i], zPlain[i])
		}
	}

	// Stateless reference gradients, deep-copied before the cached call
	// reuses the runner's buffers.
	da, dat, dth, diagT := r.BackwardShard(n, active, angles, angleTans, theta, gz, gztans)
	wantDA := append([]float64(nil), da...)
	wantDTh := append([]float64(nil), dth...)
	wantDiag := append([]float64(nil), diagT...)
	var wantDAT [MaxTangents][]float64
	for k := 0; k < MaxTangents; k++ {
		wantDAT[k] = append([]float64(nil), dat[k]...)
	}

	reject := func(ctx string, shard uint32, th []float64) {
		t.Helper()
		if _, _, _, _, ok := r.BackwardShardCached(shard, n, active, angles, angleTans, th, gz, gztans); ok {
			t.Fatalf("%s: cache validated a snapshot it should have rejected", ctx)
		}
	}
	reject("unknown shard index", 4, theta)
	bumped := append([]float64(nil), theta...)
	bumped[0] = math.Nextafter(bumped[0], math.Inf(1))
	reject("perturbed theta", 3, bumped)

	da2, dat2, dth2, diag2, ok := r.BackwardShardCached(3, n, active, angles, angleTans, theta, gz, gztans)
	if !ok {
		t.Fatal("valid snapshot rejected")
	}
	bitEq := func(name string, want, got []float64) {
		t.Helper()
		if len(want) != len(got) {
			t.Fatalf("%s length %d vs %d", name, len(want), len(got))
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("%s[%d]: cached %v vs stateless %v", name, i, got[i], want[i])
			}
		}
	}
	bitEq("dAngles", wantDA, da2)
	bitEq("dTheta", wantDTh, dth2)
	bitEq("diagT", wantDiag, diag2)
	for k := 0; k < MaxTangents; k++ {
		bitEq("dAngleTans", wantDAT[k], dat2[k])
	}

	// Pass rollover invalidates everything, including replays of the exact
	// same inputs.
	r.SetForwardPass(2)
	if got := r.CachedForwardShards(); got != 0 {
		t.Fatalf("cache holds %d snapshots after pass rollover, want 0", got)
	}
	reject("stale pass", 3, theta)
}

// TestShardRunnerSteadyStateAllocs pins the shard loop's zero-alloc
// contract (the //torq:hotpath annotations on ForwardShard / BackwardShard /
// runAdjoint): once the per-size state is warm, repeated shard executions
// must not allocate — the view headers (tanSlices, outputs, the adjoint's
// dat) are reused runner buffers, not per-call makes.
func TestShardRunnerSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(70707))
	circ := StronglyEntangling.Build(4, 2)
	r := NewShardRunner(circ)
	const n, nq = 5, 4
	active := [MaxTangents]bool{true, false, true}
	rows := func() []float64 { return randAngles(rng, n, nq) }
	angles, gz := rows(), rows()
	var angleTans, gztans [MaxTangents][]float64
	for k := 0; k < MaxTangents; k++ {
		if active[k] {
			angleTans[k], gztans[k] = rows(), rows()
		}
	}
	theta := randTheta(rng, circ.NumParams)

	// Warm the per-size state and both coefficient tables.
	r.ForwardShard(n, active, angles, angleTans, theta)
	r.BackwardShard(n, active, angles, angleTans, theta, gz, gztans)

	if avg := testing.AllocsPerRun(20, func() {
		r.ForwardShard(n, active, angles, angleTans, theta)
	}); avg != 0 {
		t.Errorf("warm ForwardShard allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		r.BackwardShard(n, active, angles, angleTans, theta, gz, gztans)
	}); avg != 0 {
		t.Errorf("warm BackwardShard allocates %.1f objects per call, want 0", avg)
	}
}
