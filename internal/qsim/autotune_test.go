package qsim

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/par"
)

// TestShardedBitIdenticalAcrossChunkGroups pins the guarantee the ftdc
// auto-tuner rests on: par's chunk-group multiplier only changes how many
// consecutive shards move per scheduling operation, never which shards
// exist or the order their partials merge in — so the sharded engine's
// outputs and gradients stay BIT-identical for every group setting, every
// worker count, and even when the setting flips between a pass's forward
// and backward halves (exactly what the runtime controller does
// mid-training).
func TestShardedBitIdenticalAcrossChunkGroups(t *testing.T) {
	defer par.SetMaxWorkers(0)
	defer par.SetChunkGroup(1)
	rng := rand.New(rand.NewSource(777))
	circ := CrossMesh.Build(5, 3)
	n, nq := 41, 5 // odd batch: a partial tail shard
	angles := randAngles(rng, n, nq)
	theta := randTheta(rng, circ.NumParams)
	tans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}
	gz := randAngles(rng, n, nq)
	gztans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}

	par.SetMaxWorkers(1)
	par.SetChunkGroup(1)
	ref := runEngine(EngineSharded, circ, n, angles, tans, theta, gz, gztans)

	check := func(ctx string, got engineResult) {
		t.Helper()
		//torq:allow maprange -- independent per-series assertions
		for name, pair := range map[string][2][]float64{
			"z": {ref.z, got.z}, "dAngles": {ref.dAngles, got.dAngles},
			"dTheta": {ref.dTheta, got.dTheta},
		} {
			if d := maxAbsDiff(pair[0], pair[1]); d != 0 {
				t.Errorf("%s: %s not bit-identical to the fixed-chunk serial run (diff %v)", ctx, name, d)
			}
		}
		for k := 0; k < MaxTangents; k++ {
			if ref.ztans[k] == nil {
				continue
			}
			if d := maxAbsDiff(ref.ztans[k], got.ztans[k]); d != 0 {
				t.Errorf("%s: ztans[%d] not bit-identical (diff %v)", ctx, k, d)
			}
			if d := maxAbsDiff(ref.dTans[k], got.dTans[k]); d != 0 {
				t.Errorf("%s: dTans[%d] not bit-identical (diff %v)", ctx, k, d)
			}
		}
	}

	for _, workers := range []int{1, 2, 4, 16} {
		for _, group := range []int{1, 2, 3, 8, 64} {
			par.SetMaxWorkers(workers)
			par.SetChunkGroup(group)
			check(
				// Static runs of every (workers, group) cell.
				"workers="+strconv.Itoa(workers)+" group="+strconv.Itoa(group),
				runEngine(EngineSharded, circ, n, angles, tans, theta, gz, gztans),
			)
		}
	}

	// Runtime flip between a pass's halves: forward at group 1, backward at
	// group 8 (and the reverse) — the controller may re-tune at any sample
	// boundary, so the halves of one pass legitimately run under different
	// settings.
	for _, flip := range [][2]int{{1, 8}, {8, 1}} {
		par.SetMaxWorkers(4)
		pqc := &PQC{Circ: circ, Eng: EngineSharded}
		ws := NewWorkspace(n, nq)
		par.SetChunkGroup(flip[0])
		z, ztans := pqc.Forward(ws, angles, tans, theta)
		par.SetChunkGroup(flip[1])
		got := engineResult{
			z: z, ztans: ztans,
			dAngles: make([]float64, n*nq),
			dTheta:  make([]float64, circ.NumParams),
			dTans:   make([][]float64, MaxTangents),
		}
		for k := range tans {
			if tans[k] != nil {
				got.dTans[k] = make([]float64, n*nq)
			}
		}
		pqc.Backward(ws, gz, gztans, got.dAngles, got.dTans, got.dTheta)
		check("mid-pass flip "+strconv.Itoa(flip[0])+"→"+strconv.Itoa(flip[1]), got)
	}
}
