// Package qsim is the Go analogue of the paper's TorQ library (Tensor
// Operations for Research in Quantum systems): a batched statevector
// simulator with analytic (shot-free) Pauli-Z expectations and an adjoint
// differentiation path that recomputes intermediate states through gate
// inverses instead of storing them. The batching and the O(1)-state adjoint
// are exactly the two architectural choices that give TorQ its >50× speed
// and >6× memory advantage over per-sample simulators in the paper's
// Table 2; the naive comparators in this package reproduce the losing
// architectures.
//
// Execution is split into a compile and an execute stage. CompileProgram
// lowers a Circuit plus its RX angle embedding into a flat instruction
// stream, fusing runs of adjacent single-qubit gates on the same qubit into
// one 2×2 unitary and merging consecutive diagonal gates into one phase
// pair. Programs run behind the Engine interface: the default fused engine
// streams the whole program — forward, tangent channels, and the adjoint
// backward — through one sample block at a time inside a single parallel
// region, so a batch pays one fork/join per pass and each sample's 2^nq
// amplitudes stay cache-resident across every instruction. The legacy
// engine preserves the original one-parallel-sweep-per-gate execution and
// the naive engine applies dense 2^nq×2^nq matrices per gate; both serve as
// comparators and parity references.
//
// The batchwide Apply* methods on State are thin wrappers that parallelize
// the per-sample-range kernels the fused executor calls directly.
package qsim

import (
	"math"

	"repro/internal/par"
)

// State is a batch of pure statevectors: n samples over nq qubits, stored
// row-major as separate real and imaginary planes of length n·2^nq.
// Basis-state bit q of the flattened index addresses qubit q (little-endian).
type State struct {
	N   int // batch size
	NQ  int // qubit count
	Dim int // 2^NQ
	Re  []float64
	Im  []float64
}

// NewState allocates a batch initialized to |0…0⟩ for every sample.
func NewState(n, nq int) *State {
	dim := 1 << nq
	s := &State{N: n, NQ: nq, Dim: dim, Re: make([]float64, n*dim), Im: make([]float64, n*dim)}
	for i := 0; i < n; i++ {
		s.Re[i*dim] = 1
	}
	return s
}

// NewZeroState allocates an all-zero batch (used for tangent channels).
func NewZeroState(n, nq int) *State {
	dim := 1 << nq
	return &State{N: n, NQ: nq, Dim: dim, Re: make([]float64, n*dim), Im: make([]float64, n*dim)}
}

// Reset restores |0…0⟩ (zero=false) or the zero vector (zero=true).
func (s *State) Reset(zero bool) {
	s.resetRange(0, s.N, zero)
}

// resetRange is Reset restricted to samples [lo, hi).
func (s *State) resetRange(lo, hi int, zero bool) {
	dim := s.Dim
	for i := lo * dim; i < hi*dim; i++ {
		s.Re[i] = 0
		s.Im[i] = 0
	}
	if !zero {
		for i := lo; i < hi; i++ {
			s.Re[i*dim] = 1
		}
	}
}

// CopyFrom copies src into s (shapes must match).
func (s *State) CopyFrom(src *State) {
	copy(s.Re, src.Re)
	copy(s.Im, src.Im)
}

// copyRange copies samples [lo, hi) of src into s.
func (s *State) copyRange(src *State, lo, hi int) {
	dim := s.Dim
	copy(s.Re[lo*dim:hi*dim], src.Re[lo*dim:hi*dim])
	copy(s.Im[lo*dim:hi*dim], src.Im[lo*dim:hi*dim])
}

// Norm2 returns the squared norm of each sample's statevector.
func (s *State) Norm2() []float64 {
	out := make([]float64, s.N)
	for i := 0; i < s.N; i++ {
		var sum float64
		for j := i * s.Dim; j < (i+1)*s.Dim; j++ {
			sum += s.Re[j]*s.Re[j] + s.Im[j]*s.Im[j]
		}
		out[i] = sum
	}
	return out
}

// gateCost approximates per-sample work for parallel grain decisions.
func (s *State) gateCost() int { return s.Dim }

// ApplyIX applies the matrix a·I − i·b·X on qubit q with uniform
// coefficients: covers RX(θ) (a=cos θ/2, b=sin θ/2), its θ-derivative
// (a=−sin(θ/2)/2, b=cos(θ/2)/2) and its adjoint (b negated).
func (s *State) ApplyIX(q int, a, b float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyIXRange(lo, hi, q, a, b)
	})
}

func (s *State) applyIXRange(lo, hi, q int, a, b float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
				// a0' = a·a0 − i b·a1 ; a1' = −i b·a0 + a·a1
				re[j] = a*r0 + b*i1
				im[j] = a*i0 - b*r1
				re[k] = b*i0 + a*r1
				im[k] = -b*r0 + a*i1
			}
		}
	}
}

// ApplyIXPerSample is ApplyIX with per-sample coefficients (the angle
// embedding layer, whose rotation angle is a network activation).
func (s *State) ApplyIXPerSample(q int, a, b []float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyIXPerSampleRange(lo, hi, q, a, b)
	})
}

func (s *State) applyIXPerSampleRange(lo, hi, q int, a, b []float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		av, bv := a[smp], b[smp]
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
				re[j] = av*r0 + bv*i1
				im[j] = av*i0 - bv*r1
				re[k] = bv*i0 + av*r1
				im[k] = -bv*r0 + av*i1
			}
		}
	}
}

// ApplyY applies the real matrix [[a, −b], [b, a]] on qubit q: covers RY(θ)
// (a=cos θ/2, b=sin θ/2), its derivative (a=−s/2, b=c/2) and inverse (−b).
func (s *State) ApplyY(q int, a, b float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyYRange(lo, hi, q, a, b)
	})
}

func (s *State) applyYRange(lo, hi, q int, a, b float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
				re[j] = a*r0 - b*r1
				im[j] = a*i0 - b*i1
				re[k] = b*r0 + a*r1
				im[k] = b*i0 + a*i1
			}
		}
	}
}

// ApplyU2 applies an arbitrary 2×2 unitary on qubit q, given row-major as
// interleaved re/im pairs u = [u00r, u00i, u01r, u01i, u10r, u10i, u11r,
// u11i] — the kernel behind fused runs of single-qubit gates.
func (s *State) ApplyU2(q int, u *[8]float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyU2Range(lo, hi, q, u)
	})
}

func (s *State) applyU2Range(lo, hi, q int, u *[8]float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	ar, ai, br, bi := u[0], u[1], u[2], u[3]
	cr, ci, dr, di := u[4], u[5], u[6], u[7]
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
				re[j] = ar*r0 - ai*i0 + br*r1 - bi*i1
				im[j] = ar*i0 + ai*r0 + br*i1 + bi*r1
				re[k] = cr*r0 - ci*i0 + dr*r1 - di*i1
				im[k] = cr*i0 + ci*r0 + dr*i1 + di*r1
			}
		}
	}
}

// ApplyU4 applies an arbitrary 4×4 unitary on the qubit pair (qa, qb),
// qa < qb, given row-major as interleaved re/im pairs with qa as bit 0 of
// the local basis index — the kernel behind fused entangler blocks.
func (s *State) ApplyU4(qa, qb int, u *[32]float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyU4Range(lo, hi, qa, qb, u)
	})
}

func (s *State) applyU4Range(lo, hi, qa, qb int, u *[32]float64) {
	sa, sb := 1<<qa, 1<<qb
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for b1 := 0; b1 < dim; b1 += sb << 1 {
			for b2 := b1; b2 < b1+sb; b2 += sa << 1 {
				for j := b2; j < b2+sa; j++ {
					i0 := off + j
					i1, i2, i3 := i0+sa, i0+sb, i0+sa+sb
					x0r, x0i := re[i0], im[i0]
					x1r, x1i := re[i1], im[i1]
					x2r, x2i := re[i2], im[i2]
					x3r, x3i := re[i3], im[i3]
					re[i0] = u[0]*x0r - u[1]*x0i + u[2]*x1r - u[3]*x1i + u[4]*x2r - u[5]*x2i + u[6]*x3r - u[7]*x3i
					im[i0] = u[0]*x0i + u[1]*x0r + u[2]*x1i + u[3]*x1r + u[4]*x2i + u[5]*x2r + u[6]*x3i + u[7]*x3r
					re[i1] = u[8]*x0r - u[9]*x0i + u[10]*x1r - u[11]*x1i + u[12]*x2r - u[13]*x2i + u[14]*x3r - u[15]*x3i
					im[i1] = u[8]*x0i + u[9]*x0r + u[10]*x1i + u[11]*x1r + u[12]*x2i + u[13]*x2r + u[14]*x3i + u[15]*x3r
					re[i2] = u[16]*x0r - u[17]*x0i + u[18]*x1r - u[19]*x1i + u[20]*x2r - u[21]*x2i + u[22]*x3r - u[23]*x3i
					im[i2] = u[16]*x0i + u[17]*x0r + u[18]*x1i + u[19]*x1r + u[20]*x2i + u[21]*x2r + u[22]*x3i + u[23]*x3r
					re[i3] = u[24]*x0r - u[25]*x0i + u[26]*x1r - u[27]*x1i + u[28]*x2r - u[29]*x2i + u[30]*x3r - u[31]*x3i
					im[i3] = u[24]*x0i + u[25]*x0r + u[26]*x1i + u[27]*x1r + u[28]*x2i + u[29]*x2r + u[30]*x3i + u[31]*x3r
				}
			}
		}
	}
}

// ApplyDiagN applies a full-register diagonal with per-basis complex phases
// ph (interleaved re/im, length 2·Dim) — the kernel behind fused diagonal
// chains (CRZ meshes).
func (s *State) ApplyDiagN(ph []float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyDiagNRange(lo, hi, ph)
	})
}

func (s *State) applyDiagNRange(lo, hi int, ph []float64) {
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for j := 0; j < dim; j++ {
			pr, pi := ph[2*j], ph[2*j+1]
			r, i := re[off+j], im[off+j]
			re[off+j] = pr*r - pi*i
			im[off+j] = pr*i + pi*r
		}
	}
}

// ApplyDiag applies diag(p0, p1) on qubit q with complex phases given as
// (p0r + i·p0i, p1r + i·p1i): covers RZ(θ) with p0 = e^{−iθ/2},
// p1 = e^{+iθ/2}, its derivative, and its inverse.
func (s *State) ApplyDiag(q int, p0r, p0i, p1r, p1i float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyDiagRange(lo, hi, q, p0r, p0i, p1r, p1i)
	})
}

func (s *State) applyDiagRange(lo, hi, q int, p0r, p0i, p1r, p1i float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0 := re[j], im[j]
				re[j] = p0r*r0 - p0i*i0
				im[j] = p0r*i0 + p0i*r0
				r1, i1 := re[k], im[k]
				re[k] = p1r*r1 - p1i*i1
				im[k] = p1r*i1 + p1i*r1
			}
		}
	}
}

// ApplyCNOT applies CNOT(control=c, target=t): amplitudes with the control
// bit set have their target pair swapped.
func (s *State) ApplyCNOT(c, t int) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyCNOTRange(lo, hi, c, t)
	})
}

func (s *State) applyCNOTRange(lo, hi, c, t int) {
	strideT := 1 << t
	stepT := strideT << 1
	cMask := 1 << c
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += stepT {
			for j := blk; j < blk+strideT; j++ {
				if j&cMask == 0 {
					continue
				}
				a, b := off+j, off+j+strideT
				re[a], re[b] = re[b], re[a]
				im[a], im[b] = im[b], im[a]
			}
		}
	}
}

// ApplyCtrlDiag applies diag(p0, p1) on the target qubit restricted to the
// control-set subspace: CRZ and its derivative/inverse.
func (s *State) ApplyCtrlDiag(c, t int, p0r, p0i, p1r, p1i float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyCtrlDiagRange(lo, hi, c, t, p0r, p0i, p1r, p1i)
	})
}

func (s *State) applyCtrlDiagRange(lo, hi, c, t int, p0r, p0i, p1r, p1i float64) {
	strideT := 1 << t
	stepT := strideT << 1
	cMask := 1 << c
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += stepT {
			for j := blk; j < blk+strideT; j++ {
				if j&cMask == 0 {
					continue
				}
				a, b := off+j, off+j+strideT
				r0, i0 := re[a], im[a]
				re[a] = p0r*r0 - p0i*i0
				im[a] = p0r*i0 + p0i*r0
				r1, i1 := re[b], im[b]
				re[b] = p1r*r1 - p1i*i1
				im[b] = p1r*i1 + p1i*r1
			}
		}
	}
}

// ZeroOutDerivCtrl zeroes the control-unset subspace in place. The CRZ
// θ-derivative acts as d(RZ)/dθ on the control-set subspace and as the zero
// operator elsewhere, so derivative application is ApplyCtrlDiag followed by
// this mask.
func (s *State) ZeroOutDerivCtrl(c int) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.zeroOutDerivCtrlRange(lo, hi, c)
	})
}

func (s *State) zeroOutDerivCtrlRange(lo, hi, c int) {
	cMask := 1 << c
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for j := 0; j < dim; j++ {
			if j&cMask == 0 {
				re[off+j] = 0
				im[off+j] = 0
			}
		}
	}
}

// ExpZ writes per-qubit Pauli-Z expectations into out (n×nq, row-major):
// ⟨Z_q⟩ = Σ_j sign_q(j)·|ψ_j|², sign −1 when bit q of j is set.
func (s *State) ExpZ(out []float64) {
	par.ForGrain(s.N, s.Dim*s.NQ, func(lo, hi int) {
		s.expZRange(lo, hi, out)
	})
}

func (s *State) expZRange(lo, hi int, out []float64) {
	dim, nq := s.Dim, s.NQ
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		zrow := out[smp*nq : (smp+1)*nq]
		for q := range zrow {
			zrow[q] = 0
		}
		for j := 0; j < dim; j++ {
			p := re[off+j]*re[off+j] + im[off+j]*im[off+j]
			for q := 0; q < nq; q++ {
				if j&(1<<q) == 0 {
					zrow[q] += p
				} else {
					zrow[q] -= p
				}
			}
		}
	}
}

// CrossZ writes the per-qubit cross terms 2·Σ_j sign_q(j)·Re(v_j*·w_j) into
// out (n×nq): the directional derivative of ⟨Z_q⟩ when the state moves from
// v in direction w (tangent-channel readout).
func CrossZ(v, w *State, out []float64) {
	par.ForGrain(v.N, v.Dim*v.NQ, func(lo, hi int) {
		crossZRange(v, w, out, lo, hi)
	})
}

func crossZRange(v, w *State, out []float64, lo, hi int) {
	dim, nq := v.Dim, v.NQ
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		zrow := out[smp*nq : (smp+1)*nq]
		for q := range zrow {
			zrow[q] = 0
		}
		for j := 0; j < dim; j++ {
			p := 2 * (v.Re[off+j]*w.Re[off+j] + v.Im[off+j]*w.Im[off+j])
			for q := 0; q < nq; q++ {
				if j&(1<<q) == 0 {
					zrow[q] += p
				} else {
					zrow[q] -= p
				}
			}
		}
	}
}

// innerRe writes per-sample Re⟨a|b⟩ into out (length n).
func innerRe(a, b *State, out []float64) {
	par.ForGrain(a.N, a.Dim, func(lo, hi int) {
		innerReRange(a, b, out, lo, hi)
	})
}

func innerReRange(a, b *State, out []float64, lo, hi int) {
	dim := a.Dim
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		var sum float64
		for j := off; j < off+dim; j++ {
			sum += a.Re[j]*b.Re[j] + a.Im[j]*b.Im[j]
		}
		out[smp] = sum
	}
}

// axpyState computes dst += c ⊙ src with a per-sample coefficient c.
func axpyState(dst, src *State, c []float64) {
	par.ForGrain(dst.N, dst.Dim, func(lo, hi int) {
		axpyRange(dst, src, c, lo, hi)
	})
}

func axpyRange(dst, src *State, c []float64, lo, hi int) {
	dim := dst.Dim
	for smp := lo; smp < hi; smp++ {
		f := c[smp]
		if f == 0 {
			continue
		}
		off := smp * dim
		for j := off; j < off+dim; j++ {
			dst.Re[j] += f * src.Re[j]
			dst.Im[j] += f * src.Im[j]
		}
	}
}

// applyIXSample applies a·I − i·b·X on qubit q to one sample — the scalar
// building block of the fused embedding kernels, which walk sample-major so
// one sample's amplitudes stay register/cache-hot across the whole
// per-qubit embedding sequence.
func (s *State) applyIXSample(smp, q int, a, b float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	off := smp * dim
	for blk := 0; blk < dim; blk += step {
		base := off + blk
		for j := base; j < base+stride; j++ {
			k := j + stride
			r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
			re[j] = a*r0 + b*i1
			im[j] = a*i0 - b*r1
			re[k] = b*i0 + a*r1
			im[k] = -b*r0 + a*i1
		}
	}
}

// copySample copies one sample of src into s.
func (s *State) copySample(src *State, smp int) {
	dim := s.Dim
	copy(s.Re[smp*dim:(smp+1)*dim], src.Re[smp*dim:(smp+1)*dim])
	copy(s.Im[smp*dim:(smp+1)*dim], src.Im[smp*dim:(smp+1)*dim])
}

// innerReSample returns Re⟨a|b⟩ for one sample.
func innerReSample(a, b *State, smp int) float64 {
	dim := a.Dim
	var sum float64
	for j := smp * dim; j < (smp+1)*dim; j++ {
		sum += a.Re[j]*b.Re[j] + a.Im[j]*b.Im[j]
	}
	return sum
}

// axpySample computes dst += c·src on one sample.
func axpySample(dst, src *State, c float64, smp int) {
	if c == 0 {
		return
	}
	dim := dst.Dim
	for j := smp * dim; j < (smp+1)*dim; j++ {
		dst.Re[j] += c * src.Re[j]
		dst.Im[j] += c * src.Im[j]
	}
}

// halfAngles fills c, s with cos(θ/2), sin(θ/2) per sample.
func halfAngles(theta, c, s []float64) {
	for i, t := range theta {
		c[i] = math.Cos(t / 2)
		s[i] = math.Sin(t / 2)
	}
}
