// Package qsim is the Go analogue of the paper's TorQ library (Tensor
// Operations for Research in Quantum systems): a batched statevector
// simulator with analytic (shot-free) Pauli-Z expectations and an adjoint
// differentiation path that recomputes intermediate states through gate
// inverses instead of storing them. The batching and the O(1)-state adjoint
// are exactly the two architectural choices that give TorQ its >50× speed
// and >6× memory advantage over per-sample simulators in the paper's
// Table 2; the naive comparators in this package reproduce the losing
// architectures.
//
// Execution is split into a compile and an execute stage. CompileProgram
// lowers a Circuit plus its RX angle embedding into a flat instruction
// stream, fusing runs of adjacent single-qubit gates on the same qubit into
// one 2×2 unitary and merging consecutive diagonal gates into one phase
// pair. Programs run behind the Engine interface: the default fused engine
// streams the whole program — forward, tangent channels, and the adjoint
// backward — through one sample block at a time inside a single parallel
// region, so a batch pays one fork/join per pass and each sample's 2^nq
// amplitudes stay cache-resident across every instruction. The legacy
// engine preserves the original one-parallel-sweep-per-gate execution and
// the naive engine applies dense 2^nq×2^nq matrices per gate; both serve as
// comparators and parity references.
//
// The batchwide Apply* methods on State are thin wrappers that parallelize
// the per-sample-range kernels the fused executor calls directly.
//
// # Invariants
//
// Every engine agrees with every other to 1e-10 relative tolerance on z,
// tangents, and all gradients (pinned by the engine-parity tests); the
// fused/sharded/dist family agrees bit-for-bit among itself. The sharded
// and dist engines partition a batch into fixed cache-block shards keyed by
// lo/blockSamples, accumulate gradients per shard, and merge in ascending
// shard order — so their results are bit-identical for any worker count,
// scheduler, chunk-group setting, or process placement. These guarantees
// rest on par.RunChunk's partition determinism (see the par package doc)
// and must survive any scheduler or transport change.
package qsim

import (
	"math"

	"repro/internal/par"
)

// State is a batch of pure statevectors: n samples over nq qubits, stored
// row-major as separate real and imaginary planes of length n·2^nq.
// Basis-state bit q of the flattened index addresses qubit q (little-endian).
type State struct {
	N   int // batch size
	NQ  int // qubit count
	Dim int // 2^NQ
	Re  []float64
	Im  []float64
}

// NewState allocates a batch initialized to |0…0⟩ for every sample.
func NewState(n, nq int) *State {
	dim := 1 << nq
	s := &State{N: n, NQ: nq, Dim: dim, Re: make([]float64, n*dim), Im: make([]float64, n*dim)}
	for i := 0; i < n; i++ {
		s.Re[i*dim] = 1
	}
	return s
}

// NewZeroState allocates an all-zero batch (used for tangent channels).
func NewZeroState(n, nq int) *State {
	dim := 1 << nq
	return &State{N: n, NQ: nq, Dim: dim, Re: make([]float64, n*dim), Im: make([]float64, n*dim)}
}

// Reset restores |0…0⟩ (zero=false) or the zero vector (zero=true).
func (s *State) Reset(zero bool) {
	s.resetRange(0, s.N, zero)
}

// resetRange is Reset restricted to samples [lo, hi).
func (s *State) resetRange(lo, hi int, zero bool) {
	dim := s.Dim
	for i := lo * dim; i < hi*dim; i++ {
		s.Re[i] = 0
		s.Im[i] = 0
	}
	if !zero {
		for i := lo; i < hi; i++ {
			s.Re[i*dim] = 1
		}
	}
}

// CopyFrom copies src into s (shapes must match).
func (s *State) CopyFrom(src *State) {
	copy(s.Re, src.Re)
	copy(s.Im, src.Im)
}

// copyRange copies samples [lo, hi) of src into s.
func (s *State) copyRange(src *State, lo, hi int) {
	dim := s.Dim
	copy(s.Re[lo*dim:hi*dim], src.Re[lo*dim:hi*dim])
	copy(s.Im[lo*dim:hi*dim], src.Im[lo*dim:hi*dim])
}

// Norm2 returns the squared norm of each sample's statevector.
func (s *State) Norm2() []float64 {
	out := make([]float64, s.N)
	for i := 0; i < s.N; i++ {
		var sum float64
		for j := i * s.Dim; j < (i+1)*s.Dim; j++ {
			sum += s.Re[j]*s.Re[j] + s.Im[j]*s.Im[j]
		}
		out[i] = sum
	}
	return out
}

// gateCost approximates per-sample work for parallel grain decisions.
func (s *State) gateCost() int { return s.Dim }

// ApplyIX applies the matrix a·I − i·b·X on qubit q with uniform
// coefficients: covers RX(θ) (a=cos θ/2, b=sin θ/2), its θ-derivative
// (a=−sin(θ/2)/2, b=cos(θ/2)/2) and its adjoint (b negated).
func (s *State) ApplyIX(q int, a, b float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyIXRange(lo, hi, q, a, b)
	})
}

//torq:hotpath
func (s *State) applyIXRange(lo, hi, q int, a, b float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
				// a0' = a·a0 − i b·a1 ; a1' = −i b·a0 + a·a1
				re[j] = a*r0 + b*i1
				im[j] = a*i0 - b*r1
				re[k] = b*i0 + a*r1
				im[k] = -b*r0 + a*i1
			}
		}
	}
}

// ApplyIXPerSample is ApplyIX with per-sample coefficients (the angle
// embedding layer, whose rotation angle is a network activation).
func (s *State) ApplyIXPerSample(q int, a, b []float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyIXPerSampleRange(lo, hi, q, a, b)
	})
}

//torq:hotpath
func (s *State) applyIXPerSampleRange(lo, hi, q int, a, b []float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		av, bv := a[smp], b[smp]
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
				re[j] = av*r0 + bv*i1
				im[j] = av*i0 - bv*r1
				re[k] = bv*i0 + av*r1
				im[k] = -bv*r0 + av*i1
			}
		}
	}
}

// ApplyY applies the real matrix [[a, −b], [b, a]] on qubit q: covers RY(θ)
// (a=cos θ/2, b=sin θ/2), its derivative (a=−s/2, b=c/2) and inverse (−b).
func (s *State) ApplyY(q int, a, b float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyYRange(lo, hi, q, a, b)
	})
}

//torq:hotpath
func (s *State) applyYRange(lo, hi, q int, a, b float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
				re[j] = a*r0 - b*r1
				im[j] = a*i0 - b*i1
				re[k] = b*r0 + a*r1
				im[k] = b*i0 + a*i1
			}
		}
	}
}

// ApplyU2 applies an arbitrary 2×2 unitary on qubit q, given row-major as
// interleaved re/im pairs u = [u00r, u00i, u01r, u01i, u10r, u10i, u11r,
// u11i] — the kernel behind fused runs of single-qubit gates.
func (s *State) ApplyU2(q int, u *[8]float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyU2Range(lo, hi, q, u)
	})
}

//torq:hotpath
func (s *State) applyU2Range(lo, hi, q int, u *[8]float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	ar, ai, br, bi := u[0], u[1], u[2], u[3]
	cr, ci, dr, di := u[4], u[5], u[6], u[7]
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
				re[j] = ar*r0 - ai*i0 + br*r1 - bi*i1
				im[j] = ar*i0 + ai*r0 + br*i1 + bi*r1
				re[k] = cr*r0 - ci*i0 + dr*r1 - di*i1
				im[k] = cr*i0 + ci*r0 + dr*i1 + di*r1
			}
		}
	}
}

// ApplyU4 applies an arbitrary 4×4 unitary on the qubit pair (qa, qb),
// qa < qb, given row-major as interleaved re/im pairs with qa as bit 0 of
// the local basis index — the kernel behind fused entangler blocks.
func (s *State) ApplyU4(qa, qb int, u *[32]float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyU4Range(lo, hi, qa, qb, u)
	})
}

//torq:hotpath
func (s *State) applyU4Range(lo, hi, qa, qb int, u *[32]float64) {
	sa, sb := 1<<qa, 1<<qb
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for b1 := 0; b1 < dim; b1 += sb << 1 {
			for b2 := b1; b2 < b1+sb; b2 += sa << 1 {
				for j := b2; j < b2+sa; j++ {
					i0 := off + j
					i1, i2, i3 := i0+sa, i0+sb, i0+sa+sb
					x0r, x0i := re[i0], im[i0]
					x1r, x1i := re[i1], im[i1]
					x2r, x2i := re[i2], im[i2]
					x3r, x3i := re[i3], im[i3]
					re[i0] = u[0]*x0r - u[1]*x0i + u[2]*x1r - u[3]*x1i + u[4]*x2r - u[5]*x2i + u[6]*x3r - u[7]*x3i
					im[i0] = u[0]*x0i + u[1]*x0r + u[2]*x1i + u[3]*x1r + u[4]*x2i + u[5]*x2r + u[6]*x3i + u[7]*x3r
					re[i1] = u[8]*x0r - u[9]*x0i + u[10]*x1r - u[11]*x1i + u[12]*x2r - u[13]*x2i + u[14]*x3r - u[15]*x3i
					im[i1] = u[8]*x0i + u[9]*x0r + u[10]*x1i + u[11]*x1r + u[12]*x2i + u[13]*x2r + u[14]*x3i + u[15]*x3r
					re[i2] = u[16]*x0r - u[17]*x0i + u[18]*x1r - u[19]*x1i + u[20]*x2r - u[21]*x2i + u[22]*x3r - u[23]*x3i
					im[i2] = u[16]*x0i + u[17]*x0r + u[18]*x1i + u[19]*x1r + u[20]*x2i + u[21]*x2r + u[22]*x3i + u[23]*x3r
					re[i3] = u[24]*x0r - u[25]*x0i + u[26]*x1r - u[27]*x1i + u[28]*x2r - u[29]*x2i + u[30]*x3r - u[31]*x3i
					im[i3] = u[24]*x0i + u[25]*x0r + u[26]*x1i + u[27]*x1r + u[28]*x2i + u[29]*x2r + u[30]*x3i + u[31]*x3r
				}
			}
		}
	}
}

// applyU8Range applies an arbitrary 8×8 unitary on the qubit triple
// (qa, qb, qc), qa < qb < qc, given row-major as interleaved re/im pairs
// with qa as bit 0 of the local basis index — the kernel behind fused
// three-qubit entangler blocks.
//
//torq:hotpath
func (s *State) applyU8Range(lo, hi, qa, qb, qc int, u *[128]float64) {
	sa, sb, sc := 1<<qa, 1<<qb, 1<<qc
	dim := s.Dim
	re, im := s.Re, s.Im
	var idx [8]int
	var xr, xi [8]float64
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for b1 := 0; b1 < dim; b1 += sc << 1 {
			for b2 := b1; b2 < b1+sc; b2 += sb << 1 {
				for b3 := b2; b3 < b2+sb; b3 += sa << 1 {
					for j := b3; j < b3+sa; j++ {
						i0 := off + j
						idx[0] = i0
						idx[1] = i0 + sa
						idx[2] = i0 + sb
						idx[3] = i0 + sa + sb
						idx[4] = i0 + sc
						idx[5] = i0 + sa + sc
						idx[6] = i0 + sb + sc
						idx[7] = i0 + sa + sb + sc
						for t := 0; t < 8; t++ {
							xr[t], xi[t] = re[idx[t]], im[idx[t]]
						}
						for r := 0; r < 8; r++ {
							var sumR, sumI float64
							row := u[r*16 : r*16+16]
							for k := 0; k < 8; k++ {
								ur, ui := row[2*k], row[2*k+1]
								sumR += ur*xr[k] - ui*xi[k]
								sumI += ur*xi[k] + ui*xr[k]
							}
							re[idx[r]], im[idx[r]] = sumR, sumI
						}
					}
				}
			}
		}
	}
}

// applyU2x3Range applies three independent 2×2 unitaries on the distinct
// qubits (qa, qb, qc), qa < qb < qc, in one pass over each 8-amplitude
// group: u holds the factors as three interleaved-re/im 2×2 blocks in
// ascending-qubit order. Arithmetic is identical to three separate
// single-qubit applications; the win is one memory traversal instead of
// three. The factor stages are unrolled over the group's pair structure so
// the whole group lives in registers between load and store.
//
//torq:hotpath
func (s *State) applyU2x3Range(lo, hi, qa, qb, qc int, u *[24]float64) {
	sa, sb, sc := 1<<qa, 1<<qb, 1<<qc
	dim := s.Dim
	re, im := s.Re, s.Im
	aar, aai := u[0], u[0+1]
	abr, abi := u[0+2], u[0+3]
	acr, aci := u[0+4], u[0+5]
	adr, adi := u[0+6], u[0+7]
	bar, bai := u[8], u[8+1]
	bbr, bbi := u[8+2], u[8+3]
	bcr, bci := u[8+4], u[8+5]
	bdr, bdi := u[8+6], u[8+7]
	car, cai := u[16], u[16+1]
	cbr, cbi := u[16+2], u[16+3]
	ccr, cci := u[16+4], u[16+5]
	cdr, cdi := u[16+6], u[16+7]
	var t0r, t0i, t1r, t1i float64
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for b1 := 0; b1 < dim; b1 += sc << 1 {
			for b2 := b1; b2 < b1+sc; b2 += sb << 1 {
				for b3 := b2; b3 < b2+sb; b3 += sa << 1 {
					for j := b3; j < b3+sa; j++ {
						i0 := off + j
						i1 := i0 + sa
						i2 := i0 + sb
						i3 := i2 + sa
						i4 := i0 + sc
						i5 := i4 + sa
						i6 := i4 + sb
						i7 := i6 + sa
						x0r, x0i := re[i0], im[i0]
						x1r, x1i := re[i1], im[i1]
						x2r, x2i := re[i2], im[i2]
						x3r, x3i := re[i3], im[i3]
						x4r, x4i := re[i4], im[i4]
						x5r, x5i := re[i5], im[i5]
						x6r, x6i := re[i6], im[i6]
						x7r, x7i := re[i7], im[i7]
						t0r = aar*x0r - aai*x0i + abr*x1r - abi*x1i
						t0i = aar*x0i + aai*x0r + abr*x1i + abi*x1r
						t1r = acr*x0r - aci*x0i + adr*x1r - adi*x1i
						t1i = acr*x0i + aci*x0r + adr*x1i + adi*x1r
						x0r, x0i, x1r, x1i = t0r, t0i, t1r, t1i
						t0r = aar*x2r - aai*x2i + abr*x3r - abi*x3i
						t0i = aar*x2i + aai*x2r + abr*x3i + abi*x3r
						t1r = acr*x2r - aci*x2i + adr*x3r - adi*x3i
						t1i = acr*x2i + aci*x2r + adr*x3i + adi*x3r
						x2r, x2i, x3r, x3i = t0r, t0i, t1r, t1i
						t0r = aar*x4r - aai*x4i + abr*x5r - abi*x5i
						t0i = aar*x4i + aai*x4r + abr*x5i + abi*x5r
						t1r = acr*x4r - aci*x4i + adr*x5r - adi*x5i
						t1i = acr*x4i + aci*x4r + adr*x5i + adi*x5r
						x4r, x4i, x5r, x5i = t0r, t0i, t1r, t1i
						t0r = aar*x6r - aai*x6i + abr*x7r - abi*x7i
						t0i = aar*x6i + aai*x6r + abr*x7i + abi*x7r
						t1r = acr*x6r - aci*x6i + adr*x7r - adi*x7i
						t1i = acr*x6i + aci*x6r + adr*x7i + adi*x7r
						x6r, x6i, x7r, x7i = t0r, t0i, t1r, t1i
						t0r = bar*x0r - bai*x0i + bbr*x2r - bbi*x2i
						t0i = bar*x0i + bai*x0r + bbr*x2i + bbi*x2r
						t1r = bcr*x0r - bci*x0i + bdr*x2r - bdi*x2i
						t1i = bcr*x0i + bci*x0r + bdr*x2i + bdi*x2r
						x0r, x0i, x2r, x2i = t0r, t0i, t1r, t1i
						t0r = bar*x1r - bai*x1i + bbr*x3r - bbi*x3i
						t0i = bar*x1i + bai*x1r + bbr*x3i + bbi*x3r
						t1r = bcr*x1r - bci*x1i + bdr*x3r - bdi*x3i
						t1i = bcr*x1i + bci*x1r + bdr*x3i + bdi*x3r
						x1r, x1i, x3r, x3i = t0r, t0i, t1r, t1i
						t0r = bar*x4r - bai*x4i + bbr*x6r - bbi*x6i
						t0i = bar*x4i + bai*x4r + bbr*x6i + bbi*x6r
						t1r = bcr*x4r - bci*x4i + bdr*x6r - bdi*x6i
						t1i = bcr*x4i + bci*x4r + bdr*x6i + bdi*x6r
						x4r, x4i, x6r, x6i = t0r, t0i, t1r, t1i
						t0r = bar*x5r - bai*x5i + bbr*x7r - bbi*x7i
						t0i = bar*x5i + bai*x5r + bbr*x7i + bbi*x7r
						t1r = bcr*x5r - bci*x5i + bdr*x7r - bdi*x7i
						t1i = bcr*x5i + bci*x5r + bdr*x7i + bdi*x7r
						x5r, x5i, x7r, x7i = t0r, t0i, t1r, t1i
						t0r = car*x0r - cai*x0i + cbr*x4r - cbi*x4i
						t0i = car*x0i + cai*x0r + cbr*x4i + cbi*x4r
						t1r = ccr*x0r - cci*x0i + cdr*x4r - cdi*x4i
						t1i = ccr*x0i + cci*x0r + cdr*x4i + cdi*x4r
						x0r, x0i, x4r, x4i = t0r, t0i, t1r, t1i
						t0r = car*x1r - cai*x1i + cbr*x5r - cbi*x5i
						t0i = car*x1i + cai*x1r + cbr*x5i + cbi*x5r
						t1r = ccr*x1r - cci*x1i + cdr*x5r - cdi*x5i
						t1i = ccr*x1i + cci*x1r + cdr*x5i + cdi*x5r
						x1r, x1i, x5r, x5i = t0r, t0i, t1r, t1i
						t0r = car*x2r - cai*x2i + cbr*x6r - cbi*x6i
						t0i = car*x2i + cai*x2r + cbr*x6i + cbi*x6r
						t1r = ccr*x2r - cci*x2i + cdr*x6r - cdi*x6i
						t1i = ccr*x2i + cci*x2r + cdr*x6i + cdi*x6r
						x2r, x2i, x6r, x6i = t0r, t0i, t1r, t1i
						t0r = car*x3r - cai*x3i + cbr*x7r - cbi*x7i
						t0i = car*x3i + cai*x3r + cbr*x7i + cbi*x7r
						t1r = ccr*x3r - cci*x3i + cdr*x7r - cdi*x7i
						t1i = ccr*x3i + cci*x3r + cdr*x7i + cdi*x7r
						x3r, x3i, x7r, x7i = t0r, t0i, t1r, t1i
						re[i0], im[i0] = x0r, x0i
						re[i1], im[i1] = x1r, x1i
						re[i2], im[i2] = x2r, x2i
						re[i3], im[i3] = x3r, x3i
						re[i4], im[i4] = x4r, x4i
						re[i5], im[i5] = x5r, x5i
						re[i6], im[i6] = x6r, x6i
						re[i7], im[i7] = x7r, x7i
					}
				}
			}
		}
	}
}

// applyPerm8Range applies a local basis permutation on the qubit triple
// (qa, qb, qc), qa < qb < qc, given as its non-trivial cycle decomposition
// (see permCycles) — the kernel behind fused CNOT-only blocks: one
// zero-arithmetic pass replacing one swap pass per source CNOT, touching
// only the amplitudes that actually move.
//
//torq:hotpath
func (s *State) applyPerm8Range(lo, hi, qa, qb, qc int, cycles [][]uint8) {
	sa, sb, sc := 1<<qa, 1<<qb, 1<<qc
	var offs [8]int
	for t := 0; t < 8; t++ {
		offs[t] = (t&1)*sa + ((t>>1)&1)*sb + ((t>>2)&1)*sc
	}
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for b1 := 0; b1 < dim; b1 += sc << 1 {
			for b2 := b1; b2 < b1+sc; b2 += sb << 1 {
				for b3 := b2; b3 < b2+sb; b3 += sa << 1 {
					for j := b3; j < b3+sa; j++ {
						base := off + j
						for _, cyc := range cycles {
							if len(cyc) == 2 {
								a, b := base+offs[cyc[0]], base+offs[cyc[1]]
								re[a], re[b] = re[b], re[a]
								im[a], im[b] = im[b], im[a]
								continue
							}
							// Rotate: new[c_i] = old[c_{i-1}], wrapping at 0.
							last := base + offs[cyc[len(cyc)-1]]
							tr, ti := re[last], im[last]
							for i := len(cyc) - 1; i >= 1; i-- {
								dst := base + offs[cyc[i]]
								src := base + offs[cyc[i-1]]
								re[dst], im[dst] = re[src], im[src]
							}
							first := base + offs[cyc[0]]
							re[first], im[first] = tr, ti
						}
					}
				}
			}
		}
	}
}

// ApplyDiagN applies a full-register diagonal with per-basis complex phases
// ph (interleaved re/im, length 2·Dim) — the kernel behind fused diagonal
// chains (CRZ meshes).
func (s *State) ApplyDiagN(ph []float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyDiagNRange(lo, hi, ph)
	})
}

//torq:hotpath
func (s *State) applyDiagNRange(lo, hi int, ph []float64) {
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for j := 0; j < dim; j++ {
			pr, pi := ph[2*j], ph[2*j+1]
			r, i := re[off+j], im[off+j]
			re[off+j] = pr*r - pi*i
			im[off+j] = pr*i + pi*r
		}
	}
}

// ApplyDiag applies diag(p0, p1) on qubit q with complex phases given as
// (p0r + i·p0i, p1r + i·p1i): covers RZ(θ) with p0 = e^{−iθ/2},
// p1 = e^{+iθ/2}, its derivative, and its inverse.
func (s *State) ApplyDiag(q int, p0r, p0i, p1r, p1i float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyDiagRange(lo, hi, q, p0r, p0i, p1r, p1i)
	})
}

//torq:hotpath
func (s *State) applyDiagRange(lo, hi, q int, p0r, p0i, p1r, p1i float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += step {
			base := off + blk
			for j := base; j < base+stride; j++ {
				k := j + stride
				r0, i0 := re[j], im[j]
				re[j] = p0r*r0 - p0i*i0
				im[j] = p0r*i0 + p0i*r0
				r1, i1 := re[k], im[k]
				re[k] = p1r*r1 - p1i*i1
				im[k] = p1r*i1 + p1i*r1
			}
		}
	}
}

// ApplyCNOT applies CNOT(control=c, target=t): amplitudes with the control
// bit set have their target pair swapped.
func (s *State) ApplyCNOT(c, t int) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyCNOTRange(lo, hi, c, t)
	})
}

//torq:hotpath
func (s *State) applyCNOTRange(lo, hi, c, t int) {
	strideT := 1 << t
	stepT := strideT << 1
	cMask := 1 << c
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += stepT {
			for j := blk; j < blk+strideT; j++ {
				if j&cMask == 0 {
					continue
				}
				a, b := off+j, off+j+strideT
				re[a], re[b] = re[b], re[a]
				im[a], im[b] = im[b], im[a]
			}
		}
	}
}

// ApplyCtrlDiag applies diag(p0, p1) on the target qubit restricted to the
// control-set subspace: CRZ and its derivative/inverse.
func (s *State) ApplyCtrlDiag(c, t int, p0r, p0i, p1r, p1i float64) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.applyCtrlDiagRange(lo, hi, c, t, p0r, p0i, p1r, p1i)
	})
}

//torq:hotpath
func (s *State) applyCtrlDiagRange(lo, hi, c, t int, p0r, p0i, p1r, p1i float64) {
	strideT := 1 << t
	stepT := strideT << 1
	cMask := 1 << c
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for blk := 0; blk < dim; blk += stepT {
			for j := blk; j < blk+strideT; j++ {
				if j&cMask == 0 {
					continue
				}
				a, b := off+j, off+j+strideT
				r0, i0 := re[a], im[a]
				re[a] = p0r*r0 - p0i*i0
				im[a] = p0r*i0 + p0i*r0
				r1, i1 := re[b], im[b]
				re[b] = p1r*r1 - p1i*i1
				im[b] = p1r*i1 + p1i*r1
			}
		}
	}
}

// ZeroOutDerivCtrl zeroes the control-unset subspace in place. The CRZ
// θ-derivative acts as d(RZ)/dθ on the control-set subspace and as the zero
// operator elsewhere, so derivative application is ApplyCtrlDiag followed by
// this mask.
func (s *State) ZeroOutDerivCtrl(c int) {
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		s.zeroOutDerivCtrlRange(lo, hi, c)
	})
}

//torq:hotpath
func (s *State) zeroOutDerivCtrlRange(lo, hi, c int) {
	cMask := 1 << c
	dim := s.Dim
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		for j := 0; j < dim; j++ {
			if j&cMask == 0 {
				re[off+j] = 0
				im[off+j] = 0
			}
		}
	}
}

// ExpZ writes per-qubit Pauli-Z expectations into out (n×nq, row-major):
// ⟨Z_q⟩ = Σ_j sign_q(j)·|ψ_j|², sign −1 when bit q of j is set.
func (s *State) ExpZ(out []float64) {
	par.ForGrain(s.N, s.Dim*s.NQ, func(lo, hi int) {
		s.expZRange(lo, hi, out)
	})
}

//torq:hotpath
func (s *State) expZRange(lo, hi int, out []float64) {
	dim, nq := s.Dim, s.NQ
	re, im := s.Re, s.Im
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		zrow := out[smp*nq : (smp+1)*nq]
		for q := range zrow {
			zrow[q] = 0
		}
		for j := 0; j < dim; j++ {
			p := re[off+j]*re[off+j] + im[off+j]*im[off+j]
			for q := 0; q < nq; q++ {
				if j&(1<<q) == 0 {
					zrow[q] += p
				} else {
					zrow[q] -= p
				}
			}
		}
	}
}

// CrossZ writes the per-qubit cross terms 2·Σ_j sign_q(j)·Re(v_j*·w_j) into
// out (n×nq): the directional derivative of ⟨Z_q⟩ when the state moves from
// v in direction w (tangent-channel readout).
func CrossZ(v, w *State, out []float64) {
	par.ForGrain(v.N, v.Dim*v.NQ, func(lo, hi int) {
		crossZRange(v, w, out, lo, hi)
	})
}

//torq:hotpath
func crossZRange(v, w *State, out []float64, lo, hi int) {
	dim, nq := v.Dim, v.NQ
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		zrow := out[smp*nq : (smp+1)*nq]
		for q := range zrow {
			zrow[q] = 0
		}
		for j := 0; j < dim; j++ {
			p := 2 * (v.Re[off+j]*w.Re[off+j] + v.Im[off+j]*w.Im[off+j])
			for q := 0; q < nq; q++ {
				if j&(1<<q) == 0 {
					zrow[q] += p
				} else {
					zrow[q] -= p
				}
			}
		}
	}
}

// innerRe writes per-sample Re⟨a|b⟩ into out (length n).
func innerRe(a, b *State, out []float64) {
	par.ForGrain(a.N, a.Dim, func(lo, hi int) {
		innerReRange(a, b, out, lo, hi)
	})
}

//torq:hotpath
func innerReRange(a, b *State, out []float64, lo, hi int) {
	dim := a.Dim
	for smp := lo; smp < hi; smp++ {
		off := smp * dim
		var sum float64
		for j := off; j < off+dim; j++ {
			sum += a.Re[j]*b.Re[j] + a.Im[j]*b.Im[j]
		}
		out[smp] = sum
	}
}

// axpyState computes dst += c ⊙ src with a per-sample coefficient c.
func axpyState(dst, src *State, c []float64) {
	par.ForGrain(dst.N, dst.Dim, func(lo, hi int) {
		axpyRange(dst, src, c, lo, hi)
	})
}

//torq:hotpath
func axpyRange(dst, src *State, c []float64, lo, hi int) {
	dim := dst.Dim
	for smp := lo; smp < hi; smp++ {
		f := c[smp]
		if f == 0 {
			continue
		}
		off := smp * dim
		for j := off; j < off+dim; j++ {
			dst.Re[j] += f * src.Re[j]
			dst.Im[j] += f * src.Im[j]
		}
	}
}

// applyIXSample applies a·I − i·b·X on qubit q to one sample — the scalar
// building block of the fused embedding kernels, which walk sample-major so
// one sample's amplitudes stay register/cache-hot across the whole
// per-qubit embedding sequence.
func (s *State) applyIXSample(smp, q int, a, b float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	off := smp * dim
	for blk := 0; blk < dim; blk += step {
		base := off + blk
		for j := base; j < base+stride; j++ {
			k := j + stride
			r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
			re[j] = a*r0 + b*i1
			im[j] = a*i0 - b*r1
			re[k] = b*i0 + a*r1
			im[k] = -b*r0 + a*i1
		}
	}
}

// copySample copies one sample of src into s.
func (s *State) copySample(src *State, smp int) {
	dim := s.Dim
	copy(s.Re[smp*dim:(smp+1)*dim], src.Re[smp*dim:(smp+1)*dim])
	copy(s.Im[smp*dim:(smp+1)*dim], src.Im[smp*dim:(smp+1)*dim])
}

// innerReSample returns Re⟨a|b⟩ for one sample.
func innerReSample(a, b *State, smp int) float64 {
	dim := a.Dim
	var sum float64
	for j := smp * dim; j < (smp+1)*dim; j++ {
		sum += a.Re[j]*b.Re[j] + a.Im[j]*b.Im[j]
	}
	return sum
}

// axpySample computes dst += c·src on one sample.
func axpySample(dst, src *State, c float64, smp int) {
	if c == 0 {
		return
	}
	dim := dst.Dim
	for j := smp * dim; j < (smp+1)*dim; j++ {
		dst.Re[j] += c * src.Re[j]
		dst.Im[j] += c * src.Im[j]
	}
}

// halfAngles fills c, s with cos(θ/2), sin(θ/2) per sample.
func halfAngles(theta, c, s []float64) {
	for i, t := range theta {
		c[i] = math.Cos(t / 2)
		s[i] = math.Sin(t / 2)
	}
}
