// Package qsim is the Go analogue of the paper's TorQ library (Tensor
// Operations for Research in Quantum systems): a batched statevector
// simulator whose gate kernels operate on an entire collocation batch at
// once, with analytic (shot-free) Pauli-Z expectations and an adjoint
// differentiation path that recomputes intermediate states through gate
// inverses instead of storing them. The batching and the O(1)-state adjoint
// are exactly the two architectural choices that give TorQ its >50× speed
// and >6× memory advantage over per-sample simulators in the paper's
// Table 2; the naive comparators in this package reproduce the losing
// architectures.
package qsim

import (
	"math"

	"repro/internal/par"
)

// State is a batch of pure statevectors: n samples over nq qubits, stored
// row-major as separate real and imaginary planes of length n·2^nq.
// Basis-state bit q of the flattened index addresses qubit q (little-endian).
type State struct {
	N   int // batch size
	NQ  int // qubit count
	Dim int // 2^NQ
	Re  []float64
	Im  []float64
}

// NewState allocates a batch initialized to |0…0⟩ for every sample.
func NewState(n, nq int) *State {
	dim := 1 << nq
	s := &State{N: n, NQ: nq, Dim: dim, Re: make([]float64, n*dim), Im: make([]float64, n*dim)}
	for i := 0; i < n; i++ {
		s.Re[i*dim] = 1
	}
	return s
}

// NewZeroState allocates an all-zero batch (used for tangent channels).
func NewZeroState(n, nq int) *State {
	dim := 1 << nq
	return &State{N: n, NQ: nq, Dim: dim, Re: make([]float64, n*dim), Im: make([]float64, n*dim)}
}

// Reset restores |0…0⟩ (zero=false) or the zero vector (zero=true).
func (s *State) Reset(zero bool) {
	for i := range s.Re {
		s.Re[i] = 0
		s.Im[i] = 0
	}
	if !zero {
		for i := 0; i < s.N; i++ {
			s.Re[i*s.Dim] = 1
		}
	}
}

// CopyFrom copies src into s (shapes must match).
func (s *State) CopyFrom(src *State) {
	copy(s.Re, src.Re)
	copy(s.Im, src.Im)
}

// Norm2 returns the squared norm of each sample's statevector.
func (s *State) Norm2() []float64 {
	out := make([]float64, s.N)
	for i := 0; i < s.N; i++ {
		var sum float64
		for j := i * s.Dim; j < (i+1)*s.Dim; j++ {
			sum += s.Re[j]*s.Re[j] + s.Im[j]*s.Im[j]
		}
		out[i] = sum
	}
	return out
}

// gateCost approximates per-sample work for parallel grain decisions.
func (s *State) gateCost() int { return s.Dim }

// ApplyIX applies the matrix a·I − i·b·X on qubit q with uniform
// coefficients: covers RX(θ) (a=cos θ/2, b=sin θ/2), its θ-derivative
// (a=−sin(θ/2)/2, b=cos(θ/2)/2) and its adjoint (b negated).
func (s *State) ApplyIX(q int, a, b float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
					// a0' = a·a0 − i b·a1 ; a1' = −i b·a0 + a·a1
					re[j] = a*r0 + b*i1
					im[j] = a*i0 - b*r1
					re[k] = b*i0 + a*r1
					im[k] = -b*r0 + a*i1
				}
			}
		}
	})
}

// ApplyIXPerSample is ApplyIX with per-sample coefficients (the angle
// embedding layer, whose rotation angle is a network activation).
func (s *State) ApplyIXPerSample(q int, a, b []float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			av, bv := a[smp], b[smp]
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
					re[j] = av*r0 + bv*i1
					im[j] = av*i0 - bv*r1
					re[k] = bv*i0 + av*r1
					im[k] = -bv*r0 + av*i1
				}
			}
		}
	})
}

// ApplyY applies the real matrix [[a, −b], [b, a]] on qubit q: covers RY(θ)
// (a=cos θ/2, b=sin θ/2), its derivative (a=−s/2, b=c/2) and inverse (−b).
func (s *State) ApplyY(q int, a, b float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0, r1, i1 := re[j], im[j], re[k], im[k]
					re[j] = a*r0 - b*r1
					im[j] = a*i0 - b*i1
					re[k] = b*r0 + a*r1
					im[k] = b*i0 + a*i1
				}
			}
		}
	})
}

// ApplyDiag applies diag(p0, p1) on qubit q with complex phases given as
// (p0r + i·p0i, p1r + i·p1i): covers RZ(θ) with p0 = e^{−iθ/2},
// p1 = e^{+iθ/2}, its derivative, and its inverse.
func (s *State) ApplyDiag(q int, p0r, p0i, p1r, p1i float64) {
	stride := 1 << q
	step := stride << 1
	dim := s.Dim
	re, im := s.Re, s.Im
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0 := re[j], im[j]
					re[j] = p0r*r0 - p0i*i0
					im[j] = p0r*i0 + p0i*r0
					r1, i1 := re[k], im[k]
					re[k] = p1r*r1 - p1i*i1
					im[k] = p1r*i1 + p1i*r1
				}
			}
		}
	})
}

// ApplyCNOT applies CNOT(control=c, target=t): amplitudes with the control
// bit set have their target pair swapped.
func (s *State) ApplyCNOT(c, t int) {
	strideT := 1 << t
	stepT := strideT << 1
	cMask := 1 << c
	dim := s.Dim
	re, im := s.Re, s.Im
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += stepT {
				for j := blk; j < blk+strideT; j++ {
					if j&cMask == 0 {
						continue
					}
					a, b := off+j, off+j+strideT
					re[a], re[b] = re[b], re[a]
					im[a], im[b] = im[b], im[a]
				}
			}
		}
	})
}

// ApplyCtrlDiag applies diag(p0, p1) on the target qubit restricted to the
// control-set subspace: CRZ and its derivative/inverse.
func (s *State) ApplyCtrlDiag(c, t int, p0r, p0i, p1r, p1i float64) {
	strideT := 1 << t
	stepT := strideT << 1
	cMask := 1 << c
	dim := s.Dim
	re, im := s.Re, s.Im
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += stepT {
				for j := blk; j < blk+strideT; j++ {
					if j&cMask == 0 {
						continue
					}
					a, b := off+j, off+j+strideT
					r0, i0 := re[a], im[a]
					re[a] = p0r*r0 - p0i*i0
					im[a] = p0r*i0 + p0i*r0
					r1, i1 := re[b], im[b]
					re[b] = p1r*r1 - p1i*i1
					im[b] = p1r*i1 + p1i*r1
				}
			}
		}
	})
}

// ZeroOutDerivCtrl zeroes the control-unset subspace in place. The CRZ
// θ-derivative acts as d(RZ)/dθ on the control-set subspace and as the zero
// operator elsewhere, so derivative application is ApplyCtrlDiag followed by
// this mask.
func (s *State) ZeroOutDerivCtrl(c int) {
	cMask := 1 << c
	dim := s.Dim
	re, im := s.Re, s.Im
	par.ForGrain(s.N, s.gateCost(), func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for j := 0; j < dim; j++ {
				if j&cMask == 0 {
					re[off+j] = 0
					im[off+j] = 0
				}
			}
		}
	})
}

// ExpZ writes per-qubit Pauli-Z expectations into out (n×nq, row-major):
// ⟨Z_q⟩ = Σ_j sign_q(j)·|ψ_j|², sign −1 when bit q of j is set.
func (s *State) ExpZ(out []float64) {
	dim, nq := s.Dim, s.NQ
	re, im := s.Re, s.Im
	par.ForGrain(s.N, dim*nq, func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			zrow := out[smp*nq : (smp+1)*nq]
			for q := range zrow {
				zrow[q] = 0
			}
			for j := 0; j < dim; j++ {
				p := re[off+j]*re[off+j] + im[off+j]*im[off+j]
				for q := 0; q < nq; q++ {
					if j&(1<<q) == 0 {
						zrow[q] += p
					} else {
						zrow[q] -= p
					}
				}
			}
		}
	})
}

// CrossZ writes the per-qubit cross terms 2·Σ_j sign_q(j)·Re(v_j*·w_j) into
// out (n×nq): the directional derivative of ⟨Z_q⟩ when the state moves from
// v in direction w (tangent-channel readout).
func CrossZ(v, w *State, out []float64) {
	dim, nq := v.Dim, v.NQ
	par.ForGrain(v.N, dim*nq, func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			zrow := out[smp*nq : (smp+1)*nq]
			for q := range zrow {
				zrow[q] = 0
			}
			for j := 0; j < dim; j++ {
				p := 2 * (v.Re[off+j]*w.Re[off+j] + v.Im[off+j]*w.Im[off+j])
				for q := 0; q < nq; q++ {
					if j&(1<<q) == 0 {
						zrow[q] += p
					} else {
						zrow[q] -= p
					}
				}
			}
		}
	})
}

// innerRe writes per-sample Re⟨a|b⟩ into out (length n).
func innerRe(a, b *State, out []float64) {
	dim := a.Dim
	par.ForGrain(a.N, dim, func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			var sum float64
			for j := off; j < off+dim; j++ {
				sum += a.Re[j]*b.Re[j] + a.Im[j]*b.Im[j]
			}
			out[smp] = sum
		}
	})
}

// axpyState computes dst += c ⊙ src with a per-sample coefficient c.
func axpyState(dst, src *State, c []float64) {
	dim := dst.Dim
	par.ForGrain(dst.N, dim, func(lo, hi int) {
		for smp := lo; smp < hi; smp++ {
			f := c[smp]
			if f == 0 {
				continue
			}
			off := smp * dim
			for j := off; j < off+dim; j++ {
				dst.Re[j] += f * src.Re[j]
				dst.Im[j] += f * src.Im[j]
			}
		}
	})
}

// halfAngles fills c, s with cos(θ/2), sin(θ/2) per sample.
func halfAngles(theta, c, s []float64) {
	for i, t := range theta {
		c[i] = math.Cos(t / 2)
		s[i] = math.Sin(t / 2)
	}
}
