package qsim

import "math/rand"

// This file implements the noise-injection extension the paper names as
// future work (§6.3: "incorporate noise into the quantum circuits and
// investigate the impact of noise mitigation"). Noise is modeled as a
// depolarizing channel after every gate, simulated by stochastic Pauli
// insertion (Monte-Carlo wave-function / quantum-trajectory method): each
// trajectory applies a uniformly random Pauli on the gate's target with
// probability p, and expectations are averaged over trajectories.

// NoiseModel configures the depolarizing strength.
type NoiseModel struct {
	P            float64 // per-gate depolarizing probability
	Trajectories int     // Monte-Carlo samples
}

// applyRandomPauli applies a uniformly random Pauli (X, Y or Z) on qubit q.
func applyRandomPauli(st *State, q int, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0: // X = (0)·I − i·(−1)·? — use the IX kernel with (a=0, b=1): −iX; the
		// global phase −i is unobservable in expectations.
		st.ApplyIX(q, 0, 1)
	case 1: // Y via the real rotation kernel with (a=0, b=1): [[0,−1],[1,0]] = −iY.
		st.ApplyY(q, 0, 1)
	case 2: // Z = diag(1, −1).
		st.ApplyDiag(q, 1, 0, -1, 0)
	}
}

// NoisyEvalZ runs the circuit under the depolarizing model and returns
// trajectory-averaged per-qubit ⟨Z⟩ (n×nq). With nm.P = 0 it reduces to
// EvalZ exactly.
func NoisyEvalZ(circ *Circuit, angles, theta []float64, n int, nm NoiseModel, rng *rand.Rand) []float64 {
	if nm.P <= 0 || nm.Trajectories <= 0 {
		return EvalZ(circ, angles, theta, n)
	}
	nq := circ.NumQubits
	acc := make([]float64, n*nq)
	z := make([]float64, n*nq)
	c := make([]float64, n)
	s := make([]float64, n)
	for traj := 0; traj < nm.Trajectories; traj++ {
		st := NewState(n, nq)
		for q := 0; q < nq; q++ {
			for i := 0; i < n; i++ {
				c[i] = cosHalf(angles[i*nq+q])
				s[i] = sinHalf(angles[i*nq+q])
			}
			st.ApplyIXPerSample(q, c, s)
			if rng.Float64() < nm.P {
				applyRandomPauli(st, q, rng)
			}
		}
		for _, g := range circ.Gates {
			g.apply(st, theta)
			if rng.Float64() < nm.P {
				applyRandomPauli(st, g.Q, rng)
			}
		}
		st.ExpZ(z)
		for i := range acc {
			acc[i] += z[i]
		}
	}
	inv := 1 / float64(nm.Trajectories)
	for i := range acc {
		acc[i] *= inv
	}
	return acc
}
