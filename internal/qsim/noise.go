package qsim

import "math/rand"

// This file implements the noise-injection extension the paper names as
// future work (§6.3: "incorporate noise into the quantum circuits and
// investigate the impact of noise mitigation"). Noise is modeled as a
// depolarizing channel after every gate, simulated by stochastic Pauli
// insertion (Monte-Carlo wave-function / quantum-trajectory method): with
// probability p each trajectory applies a uniformly random Pauli on a
// single-qubit gate's target, or a uniformly random non-identity two-qubit
// Pauli on both qubits of an entangling gate, and expectations are averaged
// over trajectories.

// NoiseModel configures the depolarizing strength.
type NoiseModel struct {
	P            float64 // per-gate depolarizing probability
	Trajectories int     // Monte-Carlo samples
}

// applyPauli applies Pauli code 1=X, 2=Y, 3=Z on qubit q (0 is the identity
// and must not reach here).
func applyPauli(st *State, q, code int) {
	switch code {
	case 1: // X via the IX kernel with (a=0, b=1): −iX; the global phase −i is
		// unobservable in expectations.
		st.ApplyIX(q, 0, 1)
	case 2: // Y via the real rotation kernel with (a=0, b=1): [[0,−1],[1,0]] = −iY.
		st.ApplyY(q, 0, 1)
	case 3: // Z = diag(1, −1).
		st.ApplyDiag(q, 1, 0, -1, 0)
	}
}

// applyRandomPauli applies a uniformly random Pauli (X, Y or Z) on qubit q —
// the single-qubit depolarizing trajectory branch.
func applyRandomPauli(st *State, q int, rng *rand.Rand) {
	applyPauli(st, q, 1+rng.Intn(3))
}

// applyRandomPauli2 applies a uniformly random non-identity two-qubit Pauli
// P_a⊗P_b on the qubit pair (a, b) — one of the 15 error operators of the
// two-qubit depolarizing channel. A two-qubit gate's noise must cover both
// of its qubits: drawing only single-qubit Paulis on the target would leave
// the control error-free and is not a depolarizing channel on the pair.
func applyRandomPauli2(st *State, a, b int, rng *rand.Rand) {
	idx := 1 + rng.Intn(15) // (pa, pb) ≠ (I, I)
	if pa := idx & 3; pa != 0 {
		applyPauli(st, a, pa)
	}
	if pb := idx >> 2; pb != 0 {
		applyPauli(st, b, pb)
	}
}

// NoisyEvalZ runs the circuit under the depolarizing model and returns
// trajectory-averaged per-qubit ⟨Z⟩ (n×nq). With nm.P = 0 it reduces to
// EvalZ exactly.
func NoisyEvalZ(circ *Circuit, angles, theta []float64, n int, nm NoiseModel, rng *rand.Rand) []float64 {
	if nm.P <= 0 || nm.Trajectories <= 0 {
		return EvalZ(circ, angles, theta, n)
	}
	nq := circ.NumQubits
	acc := make([]float64, n*nq)
	z := make([]float64, n*nq)
	c := make([]float64, n)
	s := make([]float64, n)
	for traj := 0; traj < nm.Trajectories; traj++ {
		st := NewState(n, nq)
		for q := 0; q < nq; q++ {
			for i := 0; i < n; i++ {
				c[i] = cosHalf(angles[i*nq+q])
				s[i] = sinHalf(angles[i*nq+q])
			}
			st.ApplyIXPerSample(q, c, s)
			if rng.Float64() < nm.P {
				applyRandomPauli(st, q, rng)
			}
		}
		for _, g := range circ.Gates {
			g.apply(st, theta)
			if rng.Float64() < nm.P {
				if g.C >= 0 {
					applyRandomPauli2(st, g.C, g.Q, rng)
				} else {
					applyRandomPauli(st, g.Q, rng)
				}
			}
		}
		st.ExpZ(z)
		for i := range acc {
			acc[i] += z[i]
		}
	}
	inv := 1 / float64(nm.Trajectories)
	for i := range acc {
		acc[i] *= inv
	}
	return acc
}
