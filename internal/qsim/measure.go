package qsim

import (
	"math"
	"math/rand"
)

// EvalZ is the plain (no-gradient) execution path: embedding + ansatz +
// per-qubit ⟨Z⟩ for a batch of n samples. Used by the parameter-shift rule,
// diagnostics, and the Fig. 12 initialization study.
func EvalZ(circ *Circuit, angles, theta []float64, n int) []float64 {
	st := NewState(n, circ.NumQubits)
	nq := circ.NumQubits
	c := make([]float64, n)
	s := make([]float64, n)
	for q := 0; q < nq; q++ {
		for i := 0; i < n; i++ {
			c[i] = math.Cos(angles[i*nq+q] / 2)
			s[i] = math.Sin(angles[i*nq+q] / 2)
		}
		st.ApplyIXPerSample(q, c, s)
	}
	for _, g := range circ.Gates {
		g.apply(st, theta)
	}
	out := make([]float64, n*nq)
	st.ExpZ(out)
	return out
}

// FinalState runs the circuit and returns the batch statevector (for
// entanglement diagnostics).
func FinalState(circ *Circuit, angles, theta []float64, n int) *State {
	st := NewState(n, circ.NumQubits)
	nq := circ.NumQubits
	c := make([]float64, n)
	s := make([]float64, n)
	for q := 0; q < nq; q++ {
		for i := 0; i < n; i++ {
			c[i] = math.Cos(angles[i*nq+q] / 2)
			s[i] = math.Sin(angles[i*nq+q] / 2)
		}
		st.ApplyIXPerSample(q, c, s)
	}
	for _, g := range circ.Gates {
		g.apply(st, theta)
	}
	return st
}

// ParameterShiftGrad computes d⟨Z⟩/dθ_p for every ansatz parameter via the
// hardware-compatible parameter-shift rule (shift ±π/2, valid for all gates
// in the set: RX/RY/RZ/CRZ have eigenvalue spectrum ±1/2). The result is
// indexed [p][i*nq+q]. This is the differentiation method the paper notes
// would replace backpropagation on real quantum hardware (§2.3).
func ParameterShiftGrad(circ *Circuit, angles, theta []float64, n int) [][]float64 {
	grads := make([][]float64, circ.NumParams)
	shifted := append([]float64(nil), theta...)
	for p := 0; p < circ.NumParams; p++ {
		shifted[p] = theta[p] + math.Pi/2
		zp := EvalZ(circ, angles, shifted, n)
		shifted[p] = theta[p] - math.Pi/2
		zm := EvalZ(circ, angles, shifted, n)
		shifted[p] = theta[p]
		g := make([]float64, len(zp))
		for i := range g {
			g[i] = (zp[i] - zm[i]) / 2
		}
		grads[p] = g
	}
	return grads
}

// SampleZ estimates per-qubit ⟨Z⟩ from a finite number of measurement shots
// drawn from the final state's Born distribution — the execution model on
// real hardware, as opposed to the analytic expectations used throughout
// the paper's simulator runs.
func SampleZ(circ *Circuit, angles, theta []float64, n, shots int, rng *rand.Rand) []float64 {
	st := FinalState(circ, angles, theta, n)
	nq, dim := st.NQ, st.Dim
	out := make([]float64, n*nq)
	probs := make([]float64, dim)
	for i := 0; i < n; i++ {
		off := i * dim
		var total float64
		for j := 0; j < dim; j++ {
			probs[j] = st.Re[off+j]*st.Re[off+j] + st.Im[off+j]*st.Im[off+j]
			total += probs[j]
		}
		counts := make([]int, dim)
		for s := 0; s < shots; s++ {
			r := rng.Float64() * total
			acc := 0.0
			k := 0
			for ; k < dim-1; k++ {
				acc += probs[k]
				if r < acc {
					break
				}
			}
			counts[k]++
		}
		for q := 0; q < nq; q++ {
			var z float64
			for j, cnt := range counts {
				if cnt == 0 {
					continue
				}
				if j&(1<<q) == 0 {
					z += float64(cnt)
				} else {
					z -= float64(cnt)
				}
			}
			out[i*nq+q] = z / float64(shots)
		}
	}
	return out
}

// MeyerWallach returns the Meyer–Wallach global entanglement measure
// Q = 2(1 − (1/n)Σ_q Tr ρ_q²) averaged over the batch — the quantity the
// paper tracks in Fig. 10e to show the black-hole collapse is not an
// entanglement phenomenon. Q = 0 for product states, → 1 with increasing
// global entanglement.
func MeyerWallach(st *State) float64 {
	nq, dim := st.NQ, st.Dim
	var acc float64
	for i := 0; i < st.N; i++ {
		off := i * dim
		var sumPurity float64
		for q := 0; q < nq; q++ {
			mask := 1 << q
			var r00, r11 float64
			var r01re, r01im float64
			for j := 0; j < dim; j++ {
				if j&mask != 0 {
					continue
				}
				k := j | mask
				a0r, a0i := st.Re[off+j], st.Im[off+j]
				a1r, a1i := st.Re[off+k], st.Im[off+k]
				r00 += a0r*a0r + a0i*a0i
				r11 += a1r*a1r + a1i*a1i
				// ρ01 = Σ a0 · conj(a1)
				r01re += a0r*a1r + a0i*a1i
				r01im += a0i*a1r - a0r*a1i
			}
			sumPurity += r00*r00 + r11*r11 + 2*(r01re*r01re+r01im*r01im)
		}
		acc += 2 * (1 - sumPurity/float64(nq))
	}
	return acc / float64(st.N)
}
