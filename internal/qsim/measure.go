package qsim

import (
	"math"
	"math/rand"
	"sort"
)

// EvalZ is the plain (no-gradient) execution path: embedding + ansatz +
// per-qubit ⟨Z⟩ for a batch of n samples. Used by the parameter-shift rule,
// diagnostics, and the Fig. 12 initialization study.
func EvalZ(circ *Circuit, angles, theta []float64, n int) []float64 {
	st := NewState(n, circ.NumQubits)
	nq := circ.NumQubits
	c := make([]float64, n)
	s := make([]float64, n)
	for q := 0; q < nq; q++ {
		for i := 0; i < n; i++ {
			c[i] = math.Cos(angles[i*nq+q] / 2)
			s[i] = math.Sin(angles[i*nq+q] / 2)
		}
		st.ApplyIXPerSample(q, c, s)
	}
	for _, g := range circ.Gates {
		g.apply(st, theta)
	}
	out := make([]float64, n*nq)
	st.ExpZ(out)
	return out
}

// FinalState runs the circuit and returns the batch statevector (for
// entanglement diagnostics).
func FinalState(circ *Circuit, angles, theta []float64, n int) *State {
	st := NewState(n, circ.NumQubits)
	nq := circ.NumQubits
	c := make([]float64, n)
	s := make([]float64, n)
	for q := 0; q < nq; q++ {
		for i := 0; i < n; i++ {
			c[i] = math.Cos(angles[i*nq+q] / 2)
			s[i] = math.Sin(angles[i*nq+q] / 2)
		}
		st.ApplyIXPerSample(q, c, s)
	}
	for _, g := range circ.Gates {
		g.apply(st, theta)
	}
	return st
}

// ParameterShiftGrad computes d⟨Z⟩/dθ_p for every ansatz parameter via the
// hardware-compatible parameter-shift rule. The result is indexed
// [p][i*nq+q]. This is the differentiation method the paper notes would
// replace backpropagation on real quantum hardware (§2.3).
//
// Single-qubit rotations have generator spectrum ±1/2 (one frequency), so
// the two-term ±π/2 rule is exact. A controlled rotation's generator
// |1⟩⟨1|⊗Z/2 has spectrum {0, ±1/2} — two frequencies {1/2, 1} — for which
// the two-term rule is NOT valid; CRZ parameters use the exact four-term
// rule with shifts ±π/2, ±3π/2 and coefficients (√2±1)/(4√2).
func ParameterShiftGrad(circ *Circuit, angles, theta []float64, n int) [][]float64 {
	kinds := make([]GateKind, circ.NumParams)
	for _, g := range circ.Gates {
		if g.P >= 0 {
			kinds[g.P] = g.Kind
		}
	}
	grads := make([][]float64, circ.NumParams)
	shifted := append([]float64(nil), theta...)
	for p := 0; p < circ.NumParams; p++ {
		evalAt := func(d float64) []float64 {
			shifted[p] = theta[p] + d
			z := EvalZ(circ, angles, shifted, n)
			shifted[p] = theta[p]
			return z
		}
		var g []float64
		if kinds[p] == CRZ {
			zp1, zm1 := evalAt(math.Pi/2), evalAt(-math.Pi/2)
			zp3, zm3 := evalAt(3*math.Pi/2), evalAt(-3*math.Pi/2)
			cPlus := (math.Sqrt2 + 1) / (4 * math.Sqrt2)
			cMinus := (math.Sqrt2 - 1) / (4 * math.Sqrt2)
			g = make([]float64, len(zp1))
			for i := range g {
				g[i] = cPlus*(zp1[i]-zm1[i]) - cMinus*(zp3[i]-zm3[i])
			}
		} else {
			zp, zm := evalAt(math.Pi/2), evalAt(-math.Pi/2)
			g = make([]float64, len(zp))
			for i := range g {
				g[i] = (zp[i] - zm[i]) / 2
			}
		}
		grads[p] = g
	}
	return grads
}

// SampleZ estimates per-qubit ⟨Z⟩ from a finite number of measurement shots
// drawn from the final state's Born distribution — the execution model on
// real hardware, as opposed to the analytic expectations used throughout
// the paper's simulator runs. Each sample builds its cumulative distribution
// once and draws shots by binary search, so the per-shot cost is O(log dim)
// rather than the O(dim) linear scan that made large shot counts quadratic
// in practice.
func SampleZ(circ *Circuit, angles, theta []float64, n, shots int, rng *rand.Rand) []float64 {
	st := FinalState(circ, angles, theta, n)
	nq, dim := st.NQ, st.Dim
	out := make([]float64, n*nq)
	cdf := make([]float64, dim)
	for i := 0; i < n; i++ {
		off := i * dim
		var total float64
		for j := 0; j < dim; j++ {
			total += st.Re[off+j]*st.Re[off+j] + st.Im[off+j]*st.Im[off+j]
			cdf[j] = total
		}
		counts := make([]int, dim)
		for s := 0; s < shots; s++ {
			r := rng.Float64() * total
			k := sort.Search(dim, func(j int) bool { return cdf[j] > r })
			if k == dim { // r landed on the rounding tail of the last bin
				k = dim - 1
			}
			counts[k]++
		}
		for q := 0; q < nq; q++ {
			var z float64
			for j, cnt := range counts {
				if cnt == 0 {
					continue
				}
				if j&(1<<q) == 0 {
					z += float64(cnt)
				} else {
					z -= float64(cnt)
				}
			}
			out[i*nq+q] = z / float64(shots)
		}
	}
	return out
}

// MeyerWallach returns the Meyer–Wallach global entanglement measure
// Q = 2(1 − (1/n)Σ_q Tr ρ_q²) averaged over the batch — the quantity the
// paper tracks in Fig. 10e to show the black-hole collapse is not an
// entanglement phenomenon. Q = 0 for product states, → 1 with increasing
// global entanglement.
func MeyerWallach(st *State) float64 {
	nq, dim := st.NQ, st.Dim
	var acc float64
	for i := 0; i < st.N; i++ {
		off := i * dim
		var sumPurity float64
		for q := 0; q < nq; q++ {
			mask := 1 << q
			var r00, r11 float64
			var r01re, r01im float64
			for j := 0; j < dim; j++ {
				if j&mask != 0 {
					continue
				}
				k := j | mask
				a0r, a0i := st.Re[off+j], st.Im[off+j]
				a1r, a1i := st.Re[off+k], st.Im[off+k]
				r00 += a0r*a0r + a0i*a0i
				r11 += a1r*a1r + a1i*a1i
				// ρ01 = Σ a0 · conj(a1)
				r01re += a0r*a1r + a0i*a1i
				r01im += a0i*a1r - a0r*a1i
			}
			sumPurity += r00*r00 + r11*r11 + 2*(r01re*r01re+r01im*r01im)
		}
		acc += 2 * (1 - sumPurity/float64(nq))
	}
	return acc / float64(st.N)
}
