package qsim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randAngles(rng *rand.Rand, n, nq int) []float64 {
	a := make([]float64, n*nq)
	for i := range a {
		a[i] = rng.Float64()*2 - 1
	}
	return a
}

func randTheta(rng *rand.Rand, p int) []float64 {
	t := make([]float64, p)
	for i := range t {
		t[i] = rng.Float64() * 2 * math.Pi
	}
	return t
}

// TestParamCountsMatchTable1 pins the quantum parameter counts reported in
// the paper's Table 1 for 7 qubits, 4 layers.
func TestParamCountsMatchTable1(t *testing.T) {
	want := map[AnsatzKind]int{
		BasicEntangling:    84,
		StronglyEntangling: 84,
		CrossMesh:          196,
		CrossMesh2Rot:      224,
		CrossMeshCNOT:      84,
		NoEntanglement:     84,
	}
	//torq:allow maprange -- independent per-ansatz assertions
	for a, w := range want {
		c := a.Build(7, 4)
		if c.NumParams != w {
			t.Errorf("%v: %d params, want %d", a, c.NumParams, w)
		}
	}
}

// TestFastMatchesNaive verifies the batched kernel simulator against the
// dense Kronecker-product reference for every ansatz.
func TestFastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, a := range AllAnsatze {
		circ := a.Build(4, 2)
		n := 3
		angles := randAngles(rng, n, 4)
		theta := randTheta(rng, circ.NumParams)
		fast := EvalZ(circ, angles, theta, n)
		naive := (&NaiveSimulator{circ}).Run(angles, theta, n)
		kron := (&KronSimulator{circ}).Run(angles, theta, n)
		for i := range fast {
			if math.Abs(fast[i]-naive[i]) > 1e-10 {
				t.Errorf("%v: fast %v vs naive %v at %d", a, fast[i], naive[i], i)
				break
			}
			if math.Abs(fast[i]-kron[i]) > 1e-10 {
				t.Errorf("%v: fast %v vs kron %v at %d", a, fast[i], kron[i], i)
				break
			}
		}
	}
}

// TestPQCForwardMatchesEvalZ: the differentiable runner's value channel must
// agree with the plain execution path.
func TestPQCForwardMatchesEvalZ(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, a := range AllAnsatze {
		circ := a.Build(4, 2)
		n := 5
		angles := randAngles(rng, n, 4)
		theta := randTheta(rng, circ.NumParams)
		ws := NewWorkspace(n, 4)
		z, _ := (&PQC{Circ: circ}).Forward(ws, angles, nil, theta)
		ref := EvalZ(circ, angles, theta, n)
		for i := range z {
			if math.Abs(z[i]-ref[i]) > 1e-12 {
				t.Fatalf("%v: PQC forward %v vs EvalZ %v at %d", a, z[i], ref[i], i)
			}
		}
	}
}

// TestPQCTangentsMatchFD: the tangent channels must equal the directional
// derivative of z with respect to the embedding angles.
func TestPQCTangentsMatchFD(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, a := range []AnsatzKind{StronglyEntangling, CrossMesh, NoEntanglement} {
		circ := a.Build(3, 2)
		nq, n := 3, 4
		angles := randAngles(rng, n, nq)
		theta := randTheta(rng, circ.NumParams)
		// Random tangent directions per channel.
		tans := make([][]float64, 2)
		for k := range tans {
			tans[k] = randAngles(rng, n, nq)
		}
		ws := NewWorkspace(n, nq)
		_, ztans := (&PQC{Circ: circ}).Forward(ws, angles, tans, theta)

		const h = 1e-6
		for k := range tans {
			// FD along the direction: z(angles + h·dir) − z(angles − h·dir).
			ap := make([]float64, len(angles))
			am := make([]float64, len(angles))
			for i := range angles {
				ap[i] = angles[i] + h*tans[k][i]
				am[i] = angles[i] - h*tans[k][i]
			}
			zp := EvalZ(circ, ap, theta, n)
			zm := EvalZ(circ, am, theta, n)
			for i := range zp {
				num := (zp[i] - zm[i]) / (2 * h)
				if math.Abs(ztans[k][i]-num) > 1e-5*(1+math.Abs(num)) {
					t.Errorf("%v tan %d[%d]: %v vs fd %v", a, k, i, ztans[k][i], num)
				}
			}
		}
	}
}

// pqcLoss is a deterministic scalar functional of all PQC outputs (values
// and tangents), used to exercise every gradient path in Backward.
func pqcLoss(z []float64, ztans [][]float64, wz []float64, wt [][]float64) float64 {
	var L float64
	for i := range z {
		L += wz[i] * z[i]
	}
	for k, zt := range ztans {
		if zt == nil {
			continue
		}
		for i := range zt {
			L += wt[k][i] * zt[i]
		}
	}
	return L
}

// TestPQCBackwardMatchesFD is the decisive correctness check for the adjoint
// backward pass: gradients with respect to embedding angles, angle tangents
// and ansatz parameters must all match finite differences of a loss that
// mixes value and tangent outputs (the same structure as the PINN loss).
func TestPQCBackwardMatchesFD(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, a := range []AnsatzKind{StronglyEntangling, BasicEntangling, CrossMesh, CrossMesh2Rot, CrossMeshCNOT, NoEntanglement} {
		circ := a.Build(3, 2)
		nq, n := 3, 3
		angles := randAngles(rng, n, nq)
		theta := randTheta(rng, circ.NumParams)
		tans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}

		wz := randAngles(rng, n, nq)
		wt := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}

		eval := func() float64 {
			ws := NewWorkspace(n, nq)
			z, ztans := (&PQC{Circ: circ}).Forward(ws, angles, tans, theta)
			return pqcLoss(z, ztans, wz, wt)
		}

		ws := NewWorkspace(n, nq)
		z, ztans := (&PQC{Circ: circ}).Forward(ws, angles, tans, theta)
		gz := wz
		gztans := make([][]float64, MaxTangents)
		for k := range ztans {
			if ztans[k] != nil {
				gztans[k] = wt[k]
			}
		}
		dAngles := make([]float64, n*nq)
		dTans := [][]float64{make([]float64, n*nq), nil, make([]float64, n*nq)}
		dTheta := make([]float64, circ.NumParams)
		(&PQC{Circ: circ}).Backward(ws, gz, gztans, dAngles, dTans, dTheta)
		_ = z

		const h = 1e-6
		const tol = 2e-5
		check := func(name string, buf []float64, grad []float64) {
			for i := range buf {
				orig := buf[i]
				buf[i] = orig + h
				fp := eval()
				buf[i] = orig - h
				fm := eval()
				buf[i] = orig
				num := (fp - fm) / (2 * h)
				if math.Abs(grad[i]-num) > tol*(1+math.Abs(num)) {
					t.Errorf("%v %s[%d]: grad %v vs fd %v", a, name, i, grad[i], num)
				}
			}
		}
		check("angles", angles, dAngles)
		check("theta", theta, dTheta)
		check("tan0", tans[0], dTans[0])
		check("tan2", tans[2], dTans[2])
	}
}

// TestParameterShiftMatchesAdjoint: the hardware-compatible parameter-shift
// gradient must equal the adjoint gradient for the value readout on EVERY
// ansatz — in particular the CRZ-bearing ones (Cross-Mesh and
// Cross-Mesh-2-Rotations), whose controlled rotations have generator
// spectrum {0, ±1/2} and therefore require the four-term shift rule: the
// two-term rule applied to a CRZ parameter is simply a wrong gradient, which
// this parity pins at 1e-8 against the adjoint engine.
func TestParameterShiftMatchesAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, a := range AllAnsatze {
		circ := a.Build(4, 2)
		n, nq := 2, 4
		angles := randAngles(rng, n, nq)
		theta := randTheta(rng, circ.NumParams)

		shift := ParameterShiftGrad(circ, angles, theta, n)

		// Adjoint gradient of L = Σ z via Backward with unit upstream weights.
		ws := NewWorkspace(n, nq)
		(&PQC{Circ: circ}).Forward(ws, angles, nil, theta)
		gz := make([]float64, n*nq)
		for i := range gz {
			gz[i] = 1
		}
		dAngles := make([]float64, n*nq)
		dTheta := make([]float64, circ.NumParams)
		(&PQC{Circ: circ}).Backward(ws, gz, nil, dAngles, nil, dTheta)

		for p := 0; p < circ.NumParams; p++ {
			var want float64
			for i := range shift[p] {
				want += shift[p][i]
			}
			if math.Abs(dTheta[p]-want) > 1e-8*(1+math.Abs(want)) {
				t.Errorf("%v param %d: adjoint %v vs shift %v", a, p, dTheta[p], want)
			}
		}
	}
}

// TestNormPreservation: property test — all circuits are unitary, so the
// state norm stays 1 for arbitrary angles and parameters.
func TestNormPreservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := AllAnsatze[rng.Intn(len(AllAnsatze))]
		circ := a.Build(4, 1+rng.Intn(3))
		n := 1 + rng.Intn(4)
		angles := randAngles(rng, n, 4)
		theta := randTheta(rng, circ.NumParams)
		st := FinalState(circ, angles, theta, n)
		for _, norm := range st.Norm2() {
			if math.Abs(norm-1) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExpZBounds: property test — Pauli-Z expectations live in [−1, 1].
func TestExpZBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		circ := AllAnsatze[rng.Intn(len(AllAnsatze))].Build(5, 2)
		n := 1 + rng.Intn(3)
		angles := randAngles(rng, n, 5)
		theta := randTheta(rng, circ.NumParams)
		for _, z := range EvalZ(circ, angles, theta, n) {
			if z < -1-1e-12 || z > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGateInversesRoundTrip: applying U then U† restores the state.
func TestGateInversesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	circ := StronglyEntangling.Build(4, 3)
	n := 2
	angles := randAngles(rng, n, 4)
	theta := randTheta(rng, circ.NumParams)
	st := FinalState(circ, angles, theta, n)
	ref := NewZeroState(n, 4)
	ref.CopyFrom(st)
	for gi := len(circ.Gates) - 1; gi >= 0; gi-- {
		circ.Gates[gi].applyInverse(st, theta)
	}
	for _, g := range circ.Gates {
		g.apply(st, theta)
	}
	for i := range st.Re {
		if math.Abs(st.Re[i]-ref.Re[i]) > 1e-10 || math.Abs(st.Im[i]-ref.Im[i]) > 1e-10 {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

// TestMeyerWallach: closed-form anchors — product states have Q = 0, a Bell
// pair embedded in 2 qubits has Q = 1.
func TestMeyerWallach(t *testing.T) {
	// Product state: |00⟩.
	st := NewState(1, 2)
	if q := MeyerWallach(st); math.Abs(q) > 1e-12 {
		t.Errorf("product state Q = %v, want 0", q)
	}
	// Bell state (|00⟩+|11⟩)/√2.
	bell := NewZeroState(1, 2)
	bell.Re[0] = 1 / math.Sqrt2
	bell.Re[3] = 1 / math.Sqrt2
	if q := MeyerWallach(bell); math.Abs(q-1) > 1e-12 {
		t.Errorf("Bell state Q = %v, want 1", q)
	}
	// No-entanglement ansatz keeps Q = 0 from |0…0⟩.
	circ := NoEntanglement.Build(4, 3)
	rng := rand.New(rand.NewSource(28))
	angles := randAngles(rng, 3, 4)
	theta := randTheta(rng, circ.NumParams)
	if q := MeyerWallach(FinalState(circ, angles, theta, 3)); math.Abs(q) > 1e-10 {
		t.Errorf("no-entanglement ansatz Q = %v, want 0", q)
	}
}

// TestScalingEndpoints pins the closed-form behaviour shown in the paper's
// Fig. 3a: with ⟨Z⟩ = cos(θ) after an RX embedding, scale_acos is the
// identity on the input and scale_asin is a sign flip.
func TestScalingEndpoints(t *testing.T) {
	circ := NoEntanglement.Build(1, 0) // embedding only
	for _, a := range []float64{-0.9, -0.4, 0, 0.3, 0.8} {
		zAcos := EvalZ(circ, []float64{ScaleAcos.Apply(a)}, nil, 1)[0]
		if math.Abs(zAcos-a) > 1e-12 {
			t.Errorf("scale_acos: ⟨Z⟩ = %v, want %v", zAcos, a)
		}
		zAsin := EvalZ(circ, []float64{ScaleAsin.Apply(a)}, nil, 1)[0]
		if math.Abs(zAsin+a) > 1e-12 {
			t.Errorf("scale_asin: ⟨Z⟩ = %v, want %v", zAsin, -a)
		}
	}
	// scale_bias maps [−1,1] to [0,π]: ⟨Z⟩ = cos((a+1)π/2), so a=0 → 0.
	if z := EvalZ(circ, []float64{ScaleBias.Apply(0)}, nil, 1)[0]; math.Abs(z) > 1e-12 {
		t.Errorf("scale_bias(0): ⟨Z⟩ = %v, want 0", z)
	}
}

// TestSampleZConvergesToAnalytic: shot-based estimation approaches the
// analytic expectation as shots grow.
func TestSampleZConvergesToAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	circ := BasicEntangling.Build(3, 2)
	angles := randAngles(rng, 2, 3)
	theta := randTheta(rng, circ.NumParams)
	exact := EvalZ(circ, angles, theta, 2)
	est := SampleZ(circ, angles, theta, 2, 200000, rng)
	for i := range exact {
		if math.Abs(exact[i]-est[i]) > 0.02 {
			t.Errorf("shots estimate %v vs exact %v at %d", est[i], exact[i], i)
		}
	}
}

// TestStronglyEntanglingGapPattern: layer ℓ uses control-target gap ℓ+1.
func TestStronglyEntanglingGapPattern(t *testing.T) {
	c := StronglyEntangling.Build(7, 4)
	var cnots []Gate
	for _, g := range c.Gates {
		if g.Kind == CNOT {
			cnots = append(cnots, g)
		}
	}
	if len(cnots) != 28 {
		t.Fatalf("expected 28 CNOTs, got %d", len(cnots))
	}
	for l := 0; l < 4; l++ {
		gap := l%6 + 1
		for q := 0; q < 7; q++ {
			g := cnots[l*7+q]
			if g.C != q || g.Q != (q+gap)%7 {
				t.Errorf("layer %d: CNOT(%d→%d), want (%d→%d)", l, g.C, g.Q, q, (q+gap)%7)
			}
		}
	}
}

// TestNoisyEvalZ: p=0 reduces exactly to the noiseless path; strong noise
// pulls expectations toward the maximally mixed value 0; weak noise stays
// close to noiseless.
func TestNoisyEvalZ(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	circ := BasicEntangling.Build(3, 2)
	n := 3
	angles := randAngles(rng, n, 3)
	theta := randTheta(rng, circ.NumParams)
	exact := EvalZ(circ, angles, theta, n)

	zero := NoisyEvalZ(circ, angles, theta, n, NoiseModel{P: 0, Trajectories: 10}, rng)
	for i := range exact {
		if math.Float64bits(zero[i]) != math.Float64bits(exact[i]) {
			t.Fatalf("p=0 path diverged at %d", i)
		}
	}

	var exactMag, noisyMag float64
	noisy := NoisyEvalZ(circ, angles, theta, n, NoiseModel{P: 0.5, Trajectories: 400}, rng)
	for i := range exact {
		exactMag += math.Abs(exact[i])
		noisyMag += math.Abs(noisy[i])
	}
	if noisyMag > 0.8*exactMag {
		t.Fatalf("strong depolarizing noise did not shrink |⟨Z⟩|: %v vs %v", noisyMag, exactMag)
	}

	weak := NoisyEvalZ(circ, angles, theta, n, NoiseModel{P: 0.005, Trajectories: 400}, rng)
	var maxDiff float64
	for i := range exact {
		if d := math.Abs(weak[i] - exact[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.2 {
		t.Fatalf("weak noise shifted expectations too much: %v", maxDiff)
	}
}

// TestNoisyEvalZTwoQubitChannel pins the two-qubit depolarizing fix: noise
// after an entangling gate must act on BOTH of its qubits. The probe circuit
// entangles and then leaves qubit 0 (every CNOT's control) untouched by any
// single-qubit gate, so under the old target-only insertion qubit 0 could
// never receive an error and its ⟨Z⟩ survived arbitrary noise unshrunk.
func TestNoisyEvalZTwoQubitChannel(t *testing.T) {
	circ := &Circuit{
		Name:      "control-noise-probe",
		NumQubits: 2,
		Gates: []Gate{
			{CNOT, 1, 0, -1},
			{CNOT, 1, 0, -1},
			{CNOT, 1, 0, -1},
			{CNOT, 1, 0, -1},
		},
		NumParams: 0,
	}
	n := 1
	angles := make([]float64, 2) // zero angles: state stays |00⟩, ⟨Z_0⟩ = 1
	rng := rand.New(rand.NewSource(88))
	exact := EvalZ(circ, angles, nil, n)
	if math.Abs(exact[0]-1) > 1e-12 {
		t.Fatalf("noiseless control ⟨Z⟩ = %v, want 1", exact[0])
	}

	// p = 0 path must remain bit-exact.
	zero := NoisyEvalZ(circ, angles, nil, n, NoiseModel{P: 0, Trajectories: 50}, rng)
	for i := range exact {
		if math.Float64bits(zero[i]) != math.Float64bits(exact[i]) {
			t.Fatalf("p=0 path diverged at %d", i)
		}
	}

	// Strong noise must damp the control qubit too: a depolarizing channel
	// on the pair hits qubit 0 with X or Y in 8 of 15 branches.
	noisy := NoisyEvalZ(circ, angles, nil, n, NoiseModel{P: 0.9, Trajectories: 600}, rng)
	if noisy[0] > 0.75 {
		t.Errorf("control qubit saw no depolarizing noise: ⟨Z_0⟩ = %v", noisy[0])
	}

	// Trajectory averages converge back to the analytic value as P → 0.
	prev := math.Inf(1)
	for _, p := range []float64{0.2, 0.02, 0.002} {
		got := NoisyEvalZ(circ, angles, nil, n, NoiseModel{P: p, Trajectories: 800}, rng)
		var dev float64
		for i := range exact {
			dev = math.Max(dev, math.Abs(got[i]-exact[i]))
		}
		if dev > prev+0.05 { // allow shot-level wiggle, require the trend
			t.Errorf("P=%v: deviation %v did not shrink (prev %v)", p, dev, prev)
		}
		prev = dev
	}
	if prev > 0.05 {
		t.Errorf("P=0.002 deviation %v too large", prev)
	}
}

// TestSampleZShotNoiseScaling is the seeded statistical check for the
// CDF/binary-search sampler: the shot estimate converges to the analytic
// expectation within a few standard errors, and tightens as shots grow.
func TestSampleZShotNoiseScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	circ := StronglyEntangling.Build(4, 2)
	n, nq := 2, 4
	angles := randAngles(rng, n, nq)
	theta := randTheta(rng, circ.NumParams)
	exact := EvalZ(circ, angles, theta, n)
	for _, shots := range []int{2000, 200000} {
		est := SampleZ(circ, angles, theta, n, shots, rng)
		// Var(⟨Z⟩_est) ≤ 1/shots, so 5σ = 5/√shots bounds every qubit with
		// large margin for a fixed seed.
		tol := 5 / math.Sqrt(float64(shots))
		for i := range exact {
			if math.Abs(est[i]-exact[i]) > tol {
				t.Errorf("shots=%d qubit %d: |%v − %v| > %v", shots, i, est[i], exact[i], tol)
			}
		}
	}
}

// TestDrawContainsAllGates: the Fig. 4 renderer mentions every qubit,
// parameter index and the measurement column.
func TestDrawContainsAllGates(t *testing.T) {
	var sb strings.Builder
	circ := CrossMesh.Build(3, 1)
	Draw(&sb, circ)
	out := sb.String()
	for q := 0; q < 3; q++ {
		if !strings.Contains(out, fmt.Sprintf("q%d:", q)) {
			t.Fatalf("missing qubit %d:\n%s", q, out)
		}
	}
	if !strings.Contains(out, "⟨Z⟩") || !strings.Contains(out, "RX(x0)") {
		t.Fatalf("missing readout or embedding:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("θ%d", circ.NumParams-1)) {
		t.Fatalf("missing last parameter:\n%s", out)
	}
}

// TestMemoryPerPointOrdering: the Table 2 memory model must rank
// adjoint < naive < kron once the dense gate matrix (dim²) outgrows the
// handful of statevectors the adjoint method keeps (nq ≥ 4).
func TestMemoryPerPointOrdering(t *testing.T) {
	for nq := 4; nq <= 10; nq++ {
		adj, naive, kron := MemoryPerPoint(nq, 4)
		if !(adj < naive && naive < kron) {
			t.Fatalf("nq=%d: adjoint %d, naive %d, kron %d", nq, adj, naive, kron)
		}
	}
}

// reuploadRef computes the re-uploading forward pass the obvious way:
// (embedding, layer) repeated, on the plain simulator.
func reuploadRef(circ *Circuit, angles, theta []float64, n int) []float64 {
	nq := circ.NumQubits
	st := NewState(n, nq)
	c := make([]float64, n)
	s := make([]float64, n)
	embed := func() {
		for q := 0; q < nq; q++ {
			for i := 0; i < n; i++ {
				c[i] = math.Cos(angles[i*nq+q] / 2)
				s[i] = math.Sin(angles[i*nq+q] / 2)
			}
			st.ApplyIXPerSample(q, c, s)
		}
	}
	for l := 0; l < circ.Layers; l++ {
		embed()
		for _, g := range circ.LayerSlice(l) {
			g.apply(st, theta)
		}
	}
	out := make([]float64, n*nq)
	st.ExpZ(out)
	return out
}

// TestReuploadForwardMatchesReference: the PQC runner with Reupload set
// reproduces the obvious (embedding, layer)* composition.
func TestReuploadForwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, a := range []AnsatzKind{StronglyEntangling, CrossMesh, NoEntanglement} {
		circ := a.Build(3, 3).WithReupload()
		n := 4
		angles := randAngles(rng, n, 3)
		theta := randTheta(rng, circ.NumParams)
		ws := NewWorkspace(n, 3)
		z, _ := (&PQC{Circ: circ}).Forward(ws, angles, nil, theta)
		ref := reuploadRef(circ, angles, theta, n)
		for i := range z {
			if math.Abs(z[i]-ref[i]) > 1e-12 {
				t.Fatalf("%v: reupload forward %v vs ref %v at %d", a, z[i], ref[i], i)
			}
		}
	}
}

// TestReuploadBackwardMatchesFD: the full adjoint gradient (angles, angle
// tangents, ansatz parameters) with data re-uploading enabled must match
// finite differences — every embedding repetition contributes coupling and
// second-derivative terms.
func TestReuploadBackwardMatchesFD(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, a := range []AnsatzKind{StronglyEntangling, CrossMesh2Rot, NoEntanglement} {
		circ := a.Build(3, 2).WithReupload()
		nq, n := 3, 3
		angles := randAngles(rng, n, nq)
		theta := randTheta(rng, circ.NumParams)
		tans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}
		wz := randAngles(rng, n, nq)
		wt := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}

		eval := func() float64 {
			ws := NewWorkspace(n, nq)
			z, ztans := (&PQC{Circ: circ}).Forward(ws, angles, tans, theta)
			return pqcLoss(z, ztans, wz, wt)
		}

		ws := NewWorkspace(n, nq)
		_, ztans := (&PQC{Circ: circ}).Forward(ws, angles, tans, theta)
		gztans := make([][]float64, MaxTangents)
		for k := range ztans {
			if ztans[k] != nil {
				gztans[k] = wt[k]
			}
		}
		dAngles := make([]float64, n*nq)
		dTans := [][]float64{make([]float64, n*nq), nil, make([]float64, n*nq)}
		dTheta := make([]float64, circ.NumParams)
		(&PQC{Circ: circ}).Backward(ws, wz, gztans, dAngles, dTans, dTheta)

		const h = 1e-6
		const tol = 5e-5
		check := func(name string, buf []float64, grad []float64) {
			for i := range buf {
				orig := buf[i]
				buf[i] = orig + h
				fp := eval()
				buf[i] = orig - h
				fm := eval()
				buf[i] = orig
				num := (fp - fm) / (2 * h)
				if math.Abs(grad[i]-num) > tol*(1+math.Abs(num)) {
					t.Errorf("%v %s[%d]: grad %v vs fd %v", a, name, i, grad[i], num)
				}
			}
		}
		check("angles", angles, dAngles)
		check("theta", theta, dTheta)
		check("tan0", tans[0], dTans[0])
		check("tan2", tans[2], dTans[2])
	}
}

// TestLayerSlicePartition: layer slices tile the gate list exactly.
func TestLayerSlicePartition(t *testing.T) {
	for _, a := range AllAnsatze {
		circ := a.Build(5, 3)
		total := 0
		for l := 0; l < circ.Layers; l++ {
			total += len(circ.LayerSlice(l))
		}
		if total != len(circ.Gates) {
			t.Fatalf("%v: layer slices cover %d of %d gates", a, total, len(circ.Gates))
		}
	}
}
