package qsim

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// PQC executes a data-encoded parametrized quantum circuit as a
// differentiable layer: an RX angle-embedding per qubit (angles are network
// activations, possibly carrying forward tangents ∂/∂x, ∂/∂y, ∂/∂t),
// followed by the ansatz gates, followed by per-qubit Pauli-Z expectations.
//
// Differentiation uses the adjoint method with unitary recompute: the
// backward pass never stores intermediate statevectors — it walks the gate
// list in reverse, recovering each pre-gate state by applying the inverse
// gate, and accumulates Re⟨λ|∂U/∂θ|ψ⟩ terms on the fly. Tangent channels
// propagate through the same unitaries (ansatz angles carry no input
// tangents); only the embedding RX couples channels, contributing the
// closed-form second derivative d²RX/dφ² = −RX/4.
//
// Execution strategy is pluggable via Eng (see Engine): the default fused
// engine compiles the circuit once and streams it sample-block by
// sample-block; the legacy and naive engines are per-gate comparators.
type PQC struct {
	Circ *Circuit
	Eng  EngineKind

	prog *Program
}

// Forward runs the circuit on a batch using the selected engine. angles is
// n×nq row-major; angleTans[k] is the k-th tangent of the angles (nil for a
// structurally zero channel); theta are the ansatz parameters. It returns
// the Pauli-Z expectations z (n×nq) and their tangents ztans[k] (nil where
// the input tangent was nil). Returned slices are freshly allocated.
func (p *PQC) Forward(ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64) {
	sp := trace.BeginPass(trace.KForward)
	defer sp.End()
	defer recordForward(time.Now()) //torq:allow nondet -- telemetry timing only, never feeds the numerics
	return p.Eng.engine().Forward(p, ws, angles, angleTans, theta)
}

// Backward consumes upstream gradients gz (n×nq) and gztans[k] (nil where
// the tangent channel was absent) and accumulates into dAngles (n×nq),
// dAngleTans[k] (n×nq, may be nil) and dTheta. Forward must have been called
// on the same workspace; the workspace's states are destroyed.
func (p *PQC) Backward(ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64) {
	sp := trace.BeginPass(trace.KBackward)
	defer sp.End()
	defer recordBackward(time.Now()) //torq:allow nondet -- telemetry timing only, never feeds the numerics
	p.Eng.engine().Backward(p, ws, gz, gztans, dAngles, dAngleTans, dTheta)
}

// Program returns the compiled instruction stream for the current circuit
// and engine, compiling on first use. EngineFusedV1 compiles at fusion
// level 1 (the PR-1 compiler) and EngineFusedV2 at level 2 (the PR-2
// compiler); every other engine gets the full level-3 fusion. Not safe for
// concurrent first calls.
func (p *PQC) Program() *Program {
	level := 3
	switch p.Eng {
	case EngineFusedV1:
		level = 1
	case EngineFusedV2:
		level = 2
	}
	if p.prog == nil || p.prog.circ != p.Circ || p.prog.level != level {
		sp := trace.Begin(trace.KCompile, trace.CurrentPass())
		p.prog = CompileProgramLevel(p.Circ, level)
		sp.End()
	}
	return p.prog
}

// MaxTangents is the number of forward tangent channels supported (x, y, t).
const MaxTangents = 3

// Workspace owns the state buffers for one batch size. It is reused across
// training steps; Forward reconfigures it as needed. All per-sample scratch
// is indexed by absolute sample position, so engine workers operating on
// disjoint sample ranges share one workspace without synchronization.
type Workspace struct {
	n, nq int

	val  *State
	tan  [MaxTangents]*State
	lamV *State
	lamT [MaxTangents]*State
	scr1 *State
	scr2 *State

	// Saved forward inputs for the backward pass.
	angles    []float64
	angleTans [MaxTangents][]float64
	theta     []float64
	active    [MaxTangents]bool

	// Per-sample scratch.
	cbuf, sbuf, dA, dB, tmpN []float64
	wNegS, wNegB             []float64
	wbuf                     [1 + MaxTangents][]float64

	// Fused-engine scratch: program coefficient slots, the per-parameter
	// cos/sin table for the level-1 backward walk, the fused-block
	// derivative slots for the level-2 walk, and per-worker partials
	// (dTheta, fused-block gradient sums, fused-diagonal accumulators).
	coeff  []float64
	gch    []float64
	dcoef  []float64
	dthW   [][]float64
	diagTW [][]float64

	// Sharded-engine scratch: per-shard dTheta partials (stride NumParams)
	// and fused-diagonal accumulators (stride ndiag·dim), merged in shard
	// order so gradients are independent of the worker count.
	dthS  []float64
	diagS []float64
}

// NewWorkspace allocates buffers for batches of n samples over nq qubits.
func NewWorkspace(n, nq int) *Workspace {
	ws := &Workspace{n: n, nq: nq}
	ws.val = NewState(n, nq)
	ws.lamV = NewZeroState(n, nq)
	ws.scr1 = NewZeroState(n, nq)
	ws.scr2 = NewZeroState(n, nq)
	ws.cbuf = make([]float64, n)
	ws.sbuf = make([]float64, n)
	ws.dA = make([]float64, n)
	ws.dB = make([]float64, n)
	ws.tmpN = make([]float64, n)
	ws.angles = make([]float64, n*nq)
	ws.theta = nil
	return ws
}

func (ws *Workspace) ensureTangent(k int) {
	if ws.tan[k] == nil {
		ws.tan[k] = NewZeroState(ws.n, ws.nq)
		ws.lamT[k] = NewZeroState(ws.n, ws.nq)
		ws.angleTans[k] = make([]float64, ws.n*ws.nq)
	}
}

// saveInputs validates and copies the forward inputs into the workspace and
// activates the requested tangent channels. Every engine calls it first.
func (ws *Workspace) saveInputs(p *PQC, angles []float64, angleTans [][]float64, theta []float64) {
	n, nq := ws.n, ws.nq
	if len(angles) != n*nq {
		panic(fmt.Sprintf("qsim: angles %d ≠ %d×%d", len(angles), n, nq))
	}
	if len(theta) != p.Circ.NumParams {
		panic(fmt.Sprintf("qsim: theta %d ≠ %d", len(theta), p.Circ.NumParams))
	}
	copy(ws.angles, angles)
	ws.theta = append(ws.theta[:0], theta...)
	for k := 0; k < MaxTangents; k++ {
		ws.active[k] = k < len(angleTans) && angleTans[k] != nil
		if ws.active[k] {
			ws.ensureTangent(k)
			copy(ws.angleTans[k], angleTans[k])
		}
	}
}

// anyTan reports whether any tangent channel is active.
func (ws *Workspace) anyTan() bool {
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			return true
		}
	}
	return false
}

// loadHalfAnglesRange fills cbuf/sbuf with cos, sin of half the embedding
// angle for qubit q and dA/dB with the dU/dφ coefficients (−s/2, c/2), for
// samples [lo, hi).
func (ws *Workspace) loadHalfAnglesRange(q, lo, hi int) {
	for i := lo; i < hi; i++ {
		t := ws.angles[i*ws.nq+q] / 2
		c, s := cosSin(t)
		ws.cbuf[i], ws.sbuf[i] = c, s
		ws.dA[i], ws.dB[i] = -s/2, c/2
	}
}

// gatherTanRange extracts the per-sample tangent of the embedding angle on
// qubit q for channel k into tmpN over samples [lo, hi).
func (ws *Workspace) gatherTanRange(k, q, lo, hi int) {
	src := ws.angleTans[k]
	for i := lo; i < hi; i++ {
		ws.tmpN[i] = src[i*ws.nq+q]
	}
}

// negSinRange fills wNegS with −sin(φ/2) for samples [lo, hi) and returns
// it. wNegS must be pre-sized (see ensureScratch).
func (ws *Workspace) negSinRange(lo, hi int) []float64 {
	negS := ws.wNegS
	for i := lo; i < hi; i++ {
		negS[i] = -ws.sbuf[i]
	}
	return negS
}

// negDBRange fills wNegB with −dB for samples [lo, hi) and returns it.
func (ws *Workspace) negDBRange(lo, hi int) []float64 {
	negB := ws.wNegB
	for i := lo; i < hi; i++ {
		negB[i] = -ws.dB[i]
	}
	return negB
}

// ensureScratch sizes the lazily allocated per-sample scratch so parallel
// workers never allocate concurrently.
func (ws *Workspace) ensureScratch() {
	if cap(ws.wNegS) < ws.n {
		ws.wNegS = make([]float64, ws.n)
	}
	ws.wNegS = ws.wNegS[:ws.n]
	if cap(ws.wNegB) < ws.n {
		ws.wNegB = make([]float64, ws.n)
	}
	ws.wNegB = ws.wNegB[:ws.n]
}

// ensureW sizes (or clears) the per-basis-state weight buffer for one
// upstream-gradient slot without filling it.
func (ws *Workspace) ensureW(slot int, g []float64) {
	if g == nil {
		ws.wbuf[slot] = nil
		return
	}
	dim := 1 << ws.nq
	if cap(ws.wbuf[slot]) < ws.n*dim {
		ws.wbuf[slot] = make([]float64, ws.n*dim)
	}
	ws.wbuf[slot] = ws.wbuf[slot][:ws.n*dim]
}

// buildWRange expands per-qubit upstream gradients (n×nq) into per-basis-
// state weights w[i,j] = Σ_q sign_q(j)·g[i,q] for samples [lo, hi). The
// slot must have been sized by ensureW.
func (ws *Workspace) buildWRange(slot int, g []float64, lo, hi int) {
	nq := ws.nq
	dim := 1 << nq
	w := ws.wbuf[slot]
	for i := lo; i < hi; i++ {
		row := g[i*nq : (i+1)*nq]
		dst := w[i*dim : (i+1)*dim]
		for j := 0; j < dim; j++ {
			var sum float64
			for q := 0; q < nq; q++ {
				if j&(1<<q) == 0 {
					sum += row[q]
				} else {
					sum -= row[q]
				}
			}
			dst[j] = sum
		}
	}
}

// legacyEngine is the original execution strategy: every gate application is
// its own batchwide parallel sweep. Its gate primitives are pluggable so the
// naive engine can reuse the identical adjoint algorithm with dense
// 2^nq×2^nq matrix application (the losing architecture of Table 2).
type legacyEngine struct {
	kind  EngineKind
	hooks applyHooks
}

// applyHooks are the four gate-application primitives the per-gate adjoint
// algorithm is parameterized over.
type applyHooks struct {
	apply      func(g Gate, s *State, theta []float64)
	applyInv   func(g Gate, s *State, theta []float64)
	applyDeriv func(g Gate, s *State, theta []float64)
	applyIXPS  func(s *State, q int, a, b []float64)
}

// fastHooks apply gates through the batched stride kernels.
var fastHooks = applyHooks{
	apply:      func(g Gate, s *State, theta []float64) { g.apply(s, theta) },
	applyInv:   func(g Gate, s *State, theta []float64) { g.applyInverse(s, theta) },
	applyDeriv: func(g Gate, s *State, theta []float64) { g.applyDeriv(s, theta) },
	applyIXPS:  func(s *State, q int, a, b []float64) { s.ApplyIXPerSample(q, a, b) },
}

func (e *legacyEngine) Kind() EngineKind { return e.kind }

func (e *legacyEngine) Forward(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64) {
	ws.saveInputs(p, angles, angleTans, theta)
	n, nq := ws.n, ws.nq

	ws.val.Reset(false)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			ws.tan[k].Reset(true)
		}
	}

	// Data re-uploading (§6.2(c) extension): the embedding block repeats
	// before every ansatz layer; otherwise it runs once as a prefix.
	if p.Circ.Reupload && p.Circ.Layers > 0 {
		for l := 0; l < p.Circ.Layers; l++ {
			e.forwardEmbedding(ws)
			e.forwardGates(ws, p.Circ.LayerSlice(l), theta)
		}
	} else {
		e.forwardEmbedding(ws)
		e.forwardGates(ws, p.Circ.Gates, theta)
	}

	z = make([]float64, n*nq)
	ws.val.ExpZ(z)
	ztans = make([][]float64, MaxTangents)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			ztans[k] = make([]float64, n*nq)
			CrossZ(ws.val, ws.tan[k], ztans[k])
		}
	}
	return z, ztans
}

// forwardEmbedding applies RX(angle_q) per qubit, coupling tangent channels
// through t' = U·t + φ̇·(dU/dφ)·v.
func (e *legacyEngine) forwardEmbedding(ws *Workspace) {
	anyTan := ws.anyTan()
	for q := 0; q < ws.nq; q++ {
		ws.loadHalfAnglesRange(q, 0, ws.n)
		if anyTan {
			ws.scr1.CopyFrom(ws.val)
			e.hooks.applyIXPS(ws.scr1, q, ws.dA, ws.dB) // D·v_pre
		}
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			e.hooks.applyIXPS(ws.tan[k], q, ws.cbuf, ws.sbuf)
			ws.gatherTanRange(k, q, 0, ws.n)
			axpyState(ws.tan[k], ws.scr1, ws.tmpN)
		}
		e.hooks.applyIXPS(ws.val, q, ws.cbuf, ws.sbuf)
	}
}

// forwardGates applies ansatz gates: input-independent unitaries act
// identically on every channel.
func (e *legacyEngine) forwardGates(ws *Workspace, gates []Gate, theta []float64) {
	for _, g := range gates {
		e.hooks.apply(g, ws.val, theta)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				e.hooks.apply(g, ws.tan[k], theta)
			}
		}
	}
}

func (e *legacyEngine) Backward(p *PQC, ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64) {
	n := ws.n
	theta := ws.theta
	ws.ensureScratch()

	// Seed adjoints from the quadratic readout.
	// z_q = Σ_j sign·|v_j|²            → λv += 2·w_v ⊙ v
	// żₖ_q = 2Σ_j sign·Re(v_j* tₖ_j)   → λv += 2·w_tk ⊙ tₖ ; λtₖ += 2·w_tk ⊙ v
	ws.ensureW(0, gz)
	if gz != nil {
		ws.buildWRange(0, gz, 0, n)
	}
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			var g []float64
			if k < len(gztans) {
				g = gztans[k]
			}
			ws.ensureW(1+k, g)
			if g != nil {
				ws.buildWRange(1+k, g, 0, n)
			}
		}
	}
	dim := ws.val.Dim
	ws.lamV.Reset(true)
	seed := func(lam *State, w []float64, src *State, factor float64) {
		if w == nil {
			return
		}
		for i := 0; i < n*dim; i++ {
			lam.Re[i] += factor * w[i] * src.Re[i]
			lam.Im[i] += factor * w[i] * src.Im[i]
		}
	}
	seed(ws.lamV, ws.wbuf[0], ws.val, 2)
	for k := 0; k < MaxTangents; k++ {
		if !ws.active[k] {
			continue
		}
		ws.lamT[k].Reset(true)
		seed(ws.lamV, ws.wbuf[1+k], ws.tan[k], 2)
		seed(ws.lamT[k], ws.wbuf[1+k], ws.val, 2)
	}

	// Walk the circuit in reverse, mirroring the forward structure.
	if p.Circ.Reupload && p.Circ.Layers > 0 {
		for l := p.Circ.Layers - 1; l >= 0; l-- {
			e.reverseGates(ws, p.Circ.LayerSlice(l), theta, dTheta)
			e.reverseEmbedding(ws, dAngles, dAngleTans)
		}
	} else {
		e.reverseGates(ws, p.Circ.Gates, theta, dTheta)
		e.reverseEmbedding(ws, dAngles, dAngleTans)
	}
}

// reverseGates recovers pre-gate states via inverses, accumulates
// dθ = Σ_channels Re⟨λ, dU/dθ ψ_pre⟩, and propagates λ ← U†λ.
func (e *legacyEngine) reverseGates(ws *Workspace, gates []Gate, theta []float64, dTheta []float64) {
	for gi := len(gates) - 1; gi >= 0; gi-- {
		g := gates[gi]
		e.hooks.applyInv(g, ws.val, theta)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				e.hooks.applyInv(g, ws.tan[k], theta)
			}
		}
		if g.P >= 0 {
			grad := e.gateThetaGrad(ws, g, ws.lamV, ws.val)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					grad += e.gateThetaGrad(ws, g, ws.lamT[k], ws.tan[k])
				}
			}
			dTheta[g.P] += grad
		}
		e.hooks.applyInv(g, ws.lamV, theta)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				e.hooks.applyInv(g, ws.lamT[k], theta)
			}
		}
	}
}

// reverseEmbedding un-applies the embedding block (qubits in reverse order),
// accumulating angle and angle-tangent gradients including the closed-form
// second-derivative coupling term.
func (e *legacyEngine) reverseEmbedding(ws *Workspace, dAngles []float64, dAngleTans [][]float64) {
	n, nq := ws.n, ws.nq
	for q := nq - 1; q >= 0; q-- {
		ws.loadHalfAnglesRange(q, 0, n)

		// (c) second-derivative coupling needs the *post*-gate value state:
		// dφ += −¼ · φ̇ₖ · Re⟨λtₖ, U v_pre⟩ = −¼ · φ̇ₖ · Re⟨λtₖ, v_post⟩.
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			innerRe(ws.lamT[k], ws.val, ws.tmpN)
			for i := 0; i < n; i++ {
				dAngles[i*nq+q] -= 0.25 * ws.angleTans[k][i*nq+q] * ws.tmpN[i]
			}
		}

		// Recover v_pre and D·v_pre.
		negS := ws.negSinRange(0, n)
		e.hooks.applyIXPS(ws.val, q, ws.cbuf, negS) // U†: RX(−φ)
		ws.scr1.CopyFrom(ws.val)
		e.hooks.applyIXPS(ws.scr1, q, ws.dA, ws.dB) // D·v_pre

		// (a) dφ += Re⟨λv, D v_pre⟩ ; dφ̇ₖ += Re⟨λtₖ, D v_pre⟩.
		innerRe(ws.lamV, ws.scr1, ws.tmpN)
		for i := 0; i < n; i++ {
			dAngles[i*nq+q] += ws.tmpN[i]
		}
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			innerRe(ws.lamT[k], ws.scr1, ws.tmpN)
			if dAngleTans != nil && k < len(dAngleTans) && dAngleTans[k] != nil {
				for i := 0; i < n; i++ {
					dAngleTans[k][i*nq+q] += ws.tmpN[i]
				}
			}
		}

		// Recover tₖ_pre = U†(tₖ_post − φ̇ₖ·D v_pre), then
		// (b) dφ += Re⟨λtₖ, D tₖ_pre⟩.
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			for i := 0; i < n; i++ {
				ws.tmpN[i] = -ws.angleTans[k][i*nq+q]
			}
			axpyState(ws.tan[k], ws.scr1, ws.tmpN)
			e.hooks.applyIXPS(ws.tan[k], q, ws.cbuf, negS)
			ws.scr2.CopyFrom(ws.tan[k])
			e.hooks.applyIXPS(ws.scr2, q, ws.dA, ws.dB)
			innerRe(ws.lamT[k], ws.scr2, ws.tmpN)
			for i := 0; i < n; i++ {
				dAngles[i*nq+q] += ws.tmpN[i]
			}
		}

		// Propagate adjoints: λv ← U†λv + Σₖ φ̇ₖ·D†λtₖ ; λtₖ ← U†λtₖ.
		e.hooks.applyIXPS(ws.lamV, q, ws.cbuf, negS)
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			ws.scr2.CopyFrom(ws.lamT[k])
			e.hooks.applyIXPS(ws.scr2, q, ws.dA, ws.negDBRange(0, n)) // D†
			ws.gatherTanRange(k, q, 0, n)
			axpyState(ws.lamV, ws.scr2, ws.tmpN)
			e.hooks.applyIXPS(ws.lamT[k], q, ws.cbuf, negS)
		}
	}
}

// gateThetaGrad computes Σ_samples Re⟨λ, dU/dθ ψ⟩ for one ansatz gate.
func (e *legacyEngine) gateThetaGrad(ws *Workspace, g Gate, lam, psi *State) float64 {
	ws.scr1.CopyFrom(psi)
	e.hooks.applyDeriv(g, ws.scr1, ws.theta)
	innerRe(lam, ws.scr1, ws.tmpN)
	var sum float64
	for _, v := range ws.tmpN {
		sum += v
	}
	return sum
}

// cosSin returns cos(x), sin(x).
func cosSin(x float64) (float64, float64) {
	return cosHalf(2 * x), sinHalf(2 * x)
}
