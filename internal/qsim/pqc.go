package qsim

import "fmt"

// PQC executes a data-encoded parametrized quantum circuit as a
// differentiable layer: an RX angle-embedding per qubit (angles are network
// activations, possibly carrying forward tangents ∂/∂x, ∂/∂y, ∂/∂t),
// followed by the ansatz gates, followed by per-qubit Pauli-Z expectations.
//
// Differentiation uses the adjoint method with unitary recompute: the
// backward pass never stores intermediate statevectors — it walks the gate
// list in reverse, recovering each pre-gate state by applying the inverse
// gate, and accumulates Re⟨λ|∂U/∂θ|ψ⟩ terms on the fly. Tangent channels
// propagate through the same unitaries (ansatz angles carry no input
// tangents); only the embedding RX couples channels, contributing the
// closed-form second derivative d²RX/dφ² = −RX/4.
type PQC struct {
	Circ *Circuit
}

// MaxTangents is the number of forward tangent channels supported (x, y, t).
const MaxTangents = 3

// Workspace owns the state buffers for one batch size. It is reused across
// training steps; Forward reconfigures it as needed.
type Workspace struct {
	n, nq int

	val  *State
	tan  [MaxTangents]*State
	lamV *State
	lamT [MaxTangents]*State
	scr1 *State
	scr2 *State

	// Saved forward inputs for the backward pass.
	angles    []float64
	angleTans [MaxTangents][]float64
	theta     []float64
	active    [MaxTangents]bool

	// Per-sample scratch.
	cbuf, sbuf, dA, dB, tmpN []float64
	wNegS, wNegB             []float64
	wbuf                     [1 + MaxTangents][]float64
}

// NewWorkspace allocates buffers for batches of n samples over nq qubits.
func NewWorkspace(n, nq int) *Workspace {
	ws := &Workspace{n: n, nq: nq}
	ws.val = NewState(n, nq)
	ws.lamV = NewZeroState(n, nq)
	ws.scr1 = NewZeroState(n, nq)
	ws.scr2 = NewZeroState(n, nq)
	ws.cbuf = make([]float64, n)
	ws.sbuf = make([]float64, n)
	ws.dA = make([]float64, n)
	ws.dB = make([]float64, n)
	ws.tmpN = make([]float64, n)
	ws.angles = make([]float64, n*nq)
	ws.theta = nil
	return ws
}

func (ws *Workspace) ensureTangent(k int) {
	if ws.tan[k] == nil {
		ws.tan[k] = NewZeroState(ws.n, ws.nq)
		ws.lamT[k] = NewZeroState(ws.n, ws.nq)
		ws.angleTans[k] = make([]float64, ws.n*ws.nq)
	}
}

// Forward runs the circuit on a batch. angles is n×nq row-major;
// angleTans[k] is the k-th tangent of the angles (nil for a structurally
// zero channel); theta are the ansatz parameters. It returns the Pauli-Z
// expectations z (n×nq) and their tangents ztans[k] (nil where the input
// tangent was nil). Returned slices are freshly allocated.
func (p *PQC) Forward(ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64) {
	n, nq := ws.n, ws.nq
	if len(angles) != n*nq {
		panic(fmt.Sprintf("qsim: angles %d ≠ %d×%d", len(angles), n, nq))
	}
	if len(theta) != p.Circ.NumParams {
		panic(fmt.Sprintf("qsim: theta %d ≠ %d", len(theta), p.Circ.NumParams))
	}
	copy(ws.angles, angles)
	ws.theta = append(ws.theta[:0], theta...)
	for k := 0; k < MaxTangents; k++ {
		ws.active[k] = k < len(angleTans) && angleTans[k] != nil
		if ws.active[k] {
			ws.ensureTangent(k)
			copy(ws.angleTans[k], angleTans[k])
		}
	}

	ws.val.Reset(false)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			ws.tan[k].Reset(true)
		}
	}

	// Data re-uploading (§6.2(c) extension): the embedding block repeats
	// before every ansatz layer; otherwise it runs once as a prefix.
	if p.Circ.Reupload && p.Circ.Layers > 0 {
		for l := 0; l < p.Circ.Layers; l++ {
			p.forwardEmbedding(ws)
			p.forwardGates(ws, p.Circ.LayerSlice(l), theta)
		}
	} else {
		p.forwardEmbedding(ws)
		p.forwardGates(ws, p.Circ.Gates, theta)
	}

	z = make([]float64, n*nq)
	ws.val.ExpZ(z)
	ztans = make([][]float64, MaxTangents)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			ztans[k] = make([]float64, n*nq)
			CrossZ(ws.val, ws.tan[k], ztans[k])
		}
	}
	return z, ztans
}

// forwardEmbedding applies RX(angle_q) per qubit, coupling tangent channels
// through t' = U·t + φ̇·(dU/dφ)·v.
func (p *PQC) forwardEmbedding(ws *Workspace) {
	anyTan := false
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			anyTan = true
		}
	}
	for q := 0; q < ws.nq; q++ {
		ws.loadHalfAngles(q)
		if anyTan {
			ws.scr1.CopyFrom(ws.val)
			ws.scr1.ApplyIXPerSample(q, ws.dA, ws.dB) // D·v_pre
		}
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			ws.tan[k].ApplyIXPerSample(q, ws.cbuf, ws.sbuf)
			ws.gatherTan(k, q)
			axpyState(ws.tan[k], ws.scr1, ws.tmpN)
		}
		ws.val.ApplyIXPerSample(q, ws.cbuf, ws.sbuf)
	}
}

// forwardGates applies ansatz gates: input-independent unitaries act
// identically on every channel.
func (p *PQC) forwardGates(ws *Workspace, gates []Gate, theta []float64) {
	for _, g := range gates {
		g.apply(ws.val, theta)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				g.apply(ws.tan[k], theta)
			}
		}
	}
}

// loadHalfAngles fills cbuf/sbuf with cos, sin of half the embedding angle
// for qubit q and dA/dB with the dU/dφ coefficients (−s/2, c/2).
func (ws *Workspace) loadHalfAngles(q int) {
	for i := 0; i < ws.n; i++ {
		t := ws.angles[i*ws.nq+q] / 2
		c, s := cosSin(t)
		ws.cbuf[i], ws.sbuf[i] = c, s
		ws.dA[i], ws.dB[i] = -s/2, c/2
	}
}

// gatherTan extracts the per-sample tangent of the embedding angle on qubit
// q for channel k into tmpN.
func (ws *Workspace) gatherTan(k, q int) {
	src := ws.angleTans[k]
	for i := 0; i < ws.n; i++ {
		ws.tmpN[i] = src[i*ws.nq+q]
	}
}

// Backward consumes upstream gradients gz (n×nq) and gztans[k] (nil where
// the tangent channel was absent) and accumulates into dAngles (n×nq),
// dAngleTans[k] (n×nq, may be nil) and dTheta. Forward must have been called
// on the same workspace; the workspace's states are destroyed.
func (p *PQC) Backward(ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64) {
	n := ws.n
	theta := ws.theta

	// Seed adjoints from the quadratic readout.
	// z_q = Σ_j sign·|v_j|²            → λv += 2·w_v ⊙ v
	// żₖ_q = 2Σ_j sign·Re(v_j* tₖ_j)   → λv += 2·w_tk ⊙ tₖ ; λtₖ += 2·w_tk ⊙ v
	ws.buildW(0, gz)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			var g []float64
			if k < len(gztans) {
				g = gztans[k]
			}
			ws.buildW(1+k, g)
		}
	}
	dim := ws.val.Dim
	ws.lamV.Reset(true)
	seed := func(lam *State, w []float64, src *State, factor float64) {
		if w == nil {
			return
		}
		for i := 0; i < n*dim; i++ {
			lam.Re[i] += factor * w[i] * src.Re[i]
			lam.Im[i] += factor * w[i] * src.Im[i]
		}
	}
	seed(ws.lamV, ws.wbuf[0], ws.val, 2)
	for k := 0; k < MaxTangents; k++ {
		if !ws.active[k] {
			continue
		}
		ws.lamT[k].Reset(true)
		seed(ws.lamV, ws.wbuf[1+k], ws.tan[k], 2)
		seed(ws.lamT[k], ws.wbuf[1+k], ws.val, 2)
	}

	// Walk the circuit in reverse, mirroring the forward structure.
	if p.Circ.Reupload && p.Circ.Layers > 0 {
		for l := p.Circ.Layers - 1; l >= 0; l-- {
			p.reverseGates(ws, p.Circ.LayerSlice(l), theta, dTheta)
			p.reverseEmbedding(ws, dAngles, dAngleTans)
		}
	} else {
		p.reverseGates(ws, p.Circ.Gates, theta, dTheta)
		p.reverseEmbedding(ws, dAngles, dAngleTans)
	}
}

// reverseGates recovers pre-gate states via inverses, accumulates
// dθ = Σ_channels Re⟨λ, dU/dθ ψ_pre⟩, and propagates λ ← U†λ.
func (p *PQC) reverseGates(ws *Workspace, gates []Gate, theta []float64, dTheta []float64) {
	for gi := len(gates) - 1; gi >= 0; gi-- {
		g := gates[gi]
		g.applyInverse(ws.val, theta)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				g.applyInverse(ws.tan[k], theta)
			}
		}
		if g.P >= 0 {
			grad := ws.gateThetaGrad(g, ws.lamV, ws.val)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					grad += ws.gateThetaGrad(g, ws.lamT[k], ws.tan[k])
				}
			}
			dTheta[g.P] += grad
		}
		g.applyInverse(ws.lamV, theta)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				g.applyInverse(ws.lamT[k], theta)
			}
		}
	}
}

// reverseEmbedding un-applies the embedding block (qubits in reverse order),
// accumulating angle and angle-tangent gradients including the closed-form
// second-derivative coupling term.
func (p *PQC) reverseEmbedding(ws *Workspace, dAngles []float64, dAngleTans [][]float64) {
	n, nq := ws.n, ws.nq
	for q := nq - 1; q >= 0; q-- {
		ws.loadHalfAngles(q)

		// (c) second-derivative coupling needs the *post*-gate value state:
		// dφ += −¼ · φ̇ₖ · Re⟨λtₖ, U v_pre⟩ = −¼ · φ̇ₖ · Re⟨λtₖ, v_post⟩.
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			innerRe(ws.lamT[k], ws.val, ws.tmpN)
			for i := 0; i < n; i++ {
				dAngles[i*nq+q] -= 0.25 * ws.angleTans[k][i*nq+q] * ws.tmpN[i]
			}
		}

		// Recover v_pre and D·v_pre.
		negS := ws.dAasNegSin()
		ws.val.ApplyIXPerSample(q, ws.cbuf, negS) // U†: RX(−φ)
		ws.scr1.CopyFrom(ws.val)
		ws.scr1.ApplyIXPerSample(q, ws.dA, ws.dB) // D·v_pre

		// (a) dφ += Re⟨λv, D v_pre⟩ ; dφ̇ₖ += Re⟨λtₖ, D v_pre⟩.
		innerRe(ws.lamV, ws.scr1, ws.tmpN)
		for i := 0; i < n; i++ {
			dAngles[i*nq+q] += ws.tmpN[i]
		}
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			innerRe(ws.lamT[k], ws.scr1, ws.tmpN)
			if dAngleTans != nil && k < len(dAngleTans) && dAngleTans[k] != nil {
				for i := 0; i < n; i++ {
					dAngleTans[k][i*nq+q] += ws.tmpN[i]
				}
			}
		}

		// Recover tₖ_pre = U†(tₖ_post − φ̇ₖ·D v_pre), then
		// (b) dφ += Re⟨λtₖ, D tₖ_pre⟩.
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			ws.gatherTan(k, q)
			for i := 0; i < n; i++ {
				ws.tmpN[i] = -ws.tmpNCachePhiDot(k, q, i)
			}
			axpyState(ws.tan[k], ws.scr1, ws.tmpN)
			ws.tan[k].ApplyIXPerSample(q, ws.cbuf, negS)
			ws.scr2.CopyFrom(ws.tan[k])
			ws.scr2.ApplyIXPerSample(q, ws.dA, ws.dB)
			innerRe(ws.lamT[k], ws.scr2, ws.tmpN)
			for i := 0; i < n; i++ {
				dAngles[i*nq+q] += ws.tmpN[i]
			}
		}

		// Propagate adjoints: λv ← U†λv + Σₖ φ̇ₖ·D†λtₖ ; λtₖ ← U†λtₖ.
		ws.lamV.ApplyIXPerSample(q, ws.cbuf, negS)
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			ws.scr2.CopyFrom(ws.lamT[k])
			ws.applyDerivAdjoint(ws.scr2, q)
			ws.gatherTan(k, q)
			axpyState(ws.lamV, ws.scr2, ws.tmpN)
			ws.lamT[k].ApplyIXPerSample(q, ws.cbuf, negS)
		}
	}
}

// tmpNCachePhiDot returns φ̇ₖ for sample i on qubit q.
func (ws *Workspace) tmpNCachePhiDot(k, q, i int) float64 {
	return ws.angleTans[k][i*ws.nq+q]
}

// dAasNegSin returns a per-sample −sin(φ/2) slice (reuses dB's backing via a
// dedicated buffer to avoid clobbering dA/dB which hold derivative coeffs).
func (ws *Workspace) dAasNegSin() []float64 {
	if cap(ws.wNegS) < ws.n {
		ws.wNegS = make([]float64, ws.n)
	}
	negS := ws.wNegS[:ws.n]
	for i := 0; i < ws.n; i++ {
		negS[i] = -ws.sbuf[i]
	}
	return negS
}

// applyDerivAdjoint applies D† = −(s/2)I + i(c/2)X per sample on qubit q.
func (ws *Workspace) applyDerivAdjoint(s *State, q int) {
	if cap(ws.wNegB) < ws.n {
		ws.wNegB = make([]float64, ws.n)
	}
	negB := ws.wNegB[:ws.n]
	for i := 0; i < ws.n; i++ {
		negB[i] = -ws.dB[i]
	}
	s.ApplyIXPerSample(q, ws.dA, negB)
}

// gateThetaGrad computes Σ_samples Re⟨λ, dU/dθ ψ⟩ for one ansatz gate.
func (ws *Workspace) gateThetaGrad(g Gate, lam, psi *State) float64 {
	ws.scr1.CopyFrom(psi)
	g.applyDeriv(ws.scr1, ws.theta)
	innerRe(lam, ws.scr1, ws.tmpN)
	var sum float64
	for _, v := range ws.tmpN {
		sum += v
	}
	return sum
}

// buildW expands per-qubit upstream gradients (n×nq) into per-basis-state
// weights w[i,j] = Σ_q sign_q(j)·g[i,q], cached in wbuf[slot].
func (ws *Workspace) buildW(slot int, g []float64) {
	if g == nil {
		ws.wbuf[slot] = nil
		return
	}
	n, nq := ws.n, ws.nq
	dim := 1 << nq
	if cap(ws.wbuf[slot]) < n*dim {
		ws.wbuf[slot] = make([]float64, n*dim)
	}
	w := ws.wbuf[slot][:n*dim]
	ws.wbuf[slot] = w
	for i := 0; i < n; i++ {
		row := g[i*nq : (i+1)*nq]
		dst := w[i*dim : (i+1)*dim]
		for j := 0; j < dim; j++ {
			var sum float64
			for q := 0; q < nq; q++ {
				if j&(1<<q) == 0 {
					sum += row[q]
				} else {
					sum -= row[q]
				}
			}
			dst[j] = sum
		}
	}
}

// cosSin returns cos(x), sin(x).
func cosSin(x float64) (float64, float64) {
	return cosHalf(2 * x), sinHalf(2 * x)
}
