package qsim_test

import (
	"fmt"

	"repro/internal/qsim"
)

// ExampleAnsatzKind_Build shows how the paper's ansätze are constructed and
// how their trainable-parameter counts arise (Table 1's quantum column).
func ExampleAnsatzKind_Build() {
	for _, a := range []qsim.AnsatzKind{qsim.StronglyEntangling, qsim.CrossMesh, qsim.CrossMesh2Rot} {
		c := a.Build(7, 4)
		fmt.Printf("%s: %d parameters, %d gates\n", c.Name, c.NumParams, len(c.Gates))
	}
	// Output:
	// Strongly Entangling Layers: 84 parameters, 112 gates
	// Cross-Mesh: 196 parameters, 196 gates
	// Cross-Mesh-2-Rotations: 224 parameters, 224 gates
}

// ExampleEvalZ runs a bare RX-embedding circuit and shows the arccos
// scaling's identity transfer (paper Fig. 3a): ⟨Z⟩ = cos(arccos(a)) = a.
func ExampleEvalZ() {
	circ := qsim.NoEntanglement.Build(1, 0) // embedding + readout only
	for _, a := range []float64{-0.5, 0.0, 0.5} {
		z := qsim.EvalZ(circ, []float64{qsim.ScaleAcos.Apply(a)}, nil, 1)
		fmt.Printf("a=%+.1f ⟨Z⟩=%+.1f\n", a, z[0])
	}
	// Output:
	// a=-0.5 ⟨Z⟩=-0.5
	// a=+0.0 ⟨Z⟩=+0.0
	// a=+0.5 ⟨Z⟩=+0.5
}

// ExampleMeyerWallach anchors the entanglement measure on a Bell state.
func ExampleMeyerWallach() {
	bell := qsim.NewZeroState(1, 2)
	bell.Re[0] = 1 / 1.4142135623730951
	bell.Re[3] = 1 / 1.4142135623730951
	fmt.Printf("Q(Bell) = %.3f\n", qsim.MeyerWallach(bell))
	fmt.Printf("Q(|00⟩) = %.3f\n", qsim.MeyerWallach(qsim.NewState(1, 2)))
	// Output:
	// Q(Bell) = 1.000
	// Q(|00⟩) = 0.000
}
