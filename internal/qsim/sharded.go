package qsim

import "repro/internal/par"

// shardedEngine executes the level-3 compiled program as independent sample
// shards behind the same Engine seam as the fused executor. The batch is
// partitioned into fixed cache-resident shards — the partition depends only
// on the batch size and channel count, never on the worker bound — and each
// shard streams the whole instruction stream on the work-stealing scheduler
// (par.RunChunk), so shards with uneven cost rebalance across the pool
// instead of idling it. Every shard owns a private gradient accumulator;
// after the adjoint pass the shard partials merge in shard-index order, so
// dTheta is bit-identical for 1 and N workers and for both scheduler modes.
//
// The shard is also the distribution unit the ROADMAP's multi-process /
// remote executor will ship: its inputs are (coefficients, sample range) and
// its outputs are (z rows, per-shard gradient partials), with the same
// deterministic shard-order merge on the coordinator.
type shardedEngine struct{}

func (shardedEngine) Kind() EngineKind { return EngineSharded }

// shardCount reports how many shards a batch of n samples splits into at
// shard size blk.
func shardCount(n, blk int) int { return (n + blk - 1) / blk }

func (shardedEngine) Forward(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64) {
	prog, coeff, z, ztans, blk := prepForward(p, ws, angles, angleTans, theta)
	par.RunChunk(ws.n, blk, func(_, lo, hi int) {
		fwdBlock(ws, prog, coeff, lo, hi, z, ztans)
	})
	return z, ztans
}

//torq:ordered-merge
func (shardedEngine) Backward(p *PQC, ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64) {
	prog := p.Program() // always level 3 for the sharded engine
	n := ws.n
	np := p.Circ.NumParams
	ws.ensureScratch()
	refreshCoeffs(ws, prog, ws.theta)

	blk := prepBackward(ws, gz, gztans)
	ns := shardCount(n, blk)

	// Per-shard accumulators, flat with fixed strides. Unlike the fused
	// engine's per-worker slots these are indexed by shard, so the
	// accumulation sites — and therefore the floating-point reduction order —
	// are pinned by the shard partition alone.
	if cap(ws.dthS) < ns*np {
		ws.dthS = make([]float64, ns*np)
	}
	ws.dthS = ws.dthS[:ns*np]
	clear(ws.dthS)
	nt := prog.ndiag * ws.val.Dim
	if cap(ws.diagS) < ns*nt {
		ws.diagS = make([]float64, ns*nt)
	}
	ws.diagS = ws.diagS[:ns*nt]
	clear(ws.diagS)

	par.RunChunk(n, blk, func(_, lo, hi int) {
		s := lo / blk
		sc := bwdScratch{dth: ws.dthS[s*np : (s+1)*np]}
		if nt > 0 {
			sc.diagT = ws.diagS[s*nt : (s+1)*nt]
		}
		bwdBlockV2(ws, prog, lo, hi, gz, gztans, dAngles, dAngleTans, sc)
	})

	// Deterministic merge: shard order, independent of worker count and
	// scheduler. Fused-diagonal accumulators merge the same way and contract
	// against the sign tables once per pass.
	for s := 0; s < ns; s++ {
		part := ws.dthS[s*np : (s+1)*np]
		for i, v := range part {
			dTheta[i] += v
		}
	}
	if nt > 0 {
		acc := ws.diagS[:nt]
		for s := 1; s < ns; s++ {
			part := ws.diagS[s*nt : (s+1)*nt]
			for i, v := range part {
				acc[i] += v
			}
		}
		reduceDiagNGrads(prog, acc, dTheta, ws.val.Dim)
	}
}
