package qsim

import "math"

// ScalingKind selects one of the paper's five input-angle encodings
// (eqs. 29a–e), mapping tanh-bounded activations a ∈ [−1, 1] to embedding
// rotation angles.
type ScalingKind int

const (
	ScaleNone ScalingKind = iota // a            ∈ [−1, 1]
	ScalePi                      // a·π          ∈ [−π, π]
	ScaleBias                    // (a+1)/2·π    ∈ [0, π]
	ScaleAsin                    // asin(a)+π/2  ∈ [0, π]
	ScaleAcos                    // acos(a)      ∈ [0, π]
)

// AllScalings lists the ablation order used in Figs. 6–9.
var AllScalings = []ScalingKind{ScaleNone, ScalePi, ScaleAsin, ScaleAcos, ScaleBias}

func (s ScalingKind) String() string {
	switch s {
	case ScaleNone:
		return "scale_none"
	case ScalePi:
		return "scale_pi"
	case ScaleBias:
		return "scale_bias"
	case ScaleAsin:
		return "scale_asin"
	case ScaleAcos:
		return "scale_acos"
	}
	return "unknown"
}

// Apply maps one activation to an angle.
func (s ScalingKind) Apply(a float64) float64 {
	switch s {
	case ScaleNone:
		return a
	case ScalePi:
		return a * math.Pi
	case ScaleBias:
		return (a + 1) / 2 * math.Pi
	case ScaleAsin:
		return math.Asin(clampUnit(a)) + math.Pi/2
	case ScaleAcos:
		return math.Acos(clampUnit(a))
	}
	panic("qsim: unknown scaling")
}

func clampUnit(a float64) float64 {
	if a > 1 {
		return 1
	}
	if a < -1 {
		return -1
	}
	return a
}

// InitStrategy selects the quantum-parameter initialization of the §5.2
// black-hole study (Fig. 12).
type InitStrategy int

const (
	InitRegular InitStrategy = iota // uniform on [0, 2π] — the paper's default
	InitZeros
	InitPi
	InitHalfPi
)

func (s InitStrategy) String() string {
	switch s {
	case InitRegular:
		return "init_reg"
	case InitZeros:
		return "init_zeros"
	case InitPi:
		return "init_pi"
	case InitHalfPi:
		return "init_pi/2"
	}
	return "unknown"
}

// Fill writes initial ansatz parameters according to the strategy. rnd must
// produce uniform [0,1) variates for InitRegular; it may be nil otherwise.
func (s InitStrategy) Fill(theta []float64, uniform func() float64) {
	switch s {
	case InitRegular:
		for i := range theta {
			theta[i] = uniform() * 2 * math.Pi
		}
	case InitZeros:
		for i := range theta {
			theta[i] = 0
		}
	case InitPi:
		for i := range theta {
			theta[i] = math.Pi
		}
	case InitHalfPi:
		for i := range theta {
			theta[i] = math.Pi / 2
		}
	}
}
