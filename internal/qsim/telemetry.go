package qsim

import (
	"sync/atomic"
	"time"
)

// Pass telemetry: wall time and counts for every engine forward/backward
// pass, kept in plain atomics so the ftdc recorder can snapshot them without
// touching any engine state. Two clock reads and two atomic adds per pass —
// a pass streams whole statevector batches, so the cost is noise.
var (
	statFwdPasses atomic.Uint64
	statFwdNanos  atomic.Uint64
	statBwdPasses atomic.Uint64
	statBwdNanos  atomic.Uint64
	statEpochs    atomic.Uint64
	statEpochNano atomic.Uint64
)

// PassStats is a snapshot of the engine pass telemetry.
type PassStats struct {
	FwdPasses, FwdNanos uint64
	BwdPasses, BwdNanos uint64
	Epochs, EpochNanos  uint64
}

// EngineStats returns the cumulative pass/epoch telemetry since process
// start or the last ResetEngineStats. Counters are read individually, so a
// snapshot taken mid-pass is approximate.
//
//torq:nolock
func EngineStats() PassStats {
	return PassStats{
		FwdPasses:  statFwdPasses.Load(),
		FwdNanos:   statFwdNanos.Load(),
		BwdPasses:  statBwdPasses.Load(),
		BwdNanos:   statBwdNanos.Load(),
		Epochs:     statEpochs.Load(),
		EpochNanos: statEpochNano.Load(),
	}
}

// ResetEngineStats zeroes the pass/epoch telemetry.
//
//torq:nolock
func ResetEngineStats() {
	statFwdPasses.Store(0)
	statFwdNanos.Store(0)
	statBwdPasses.Store(0)
	statBwdNanos.Store(0)
	statEpochs.Store(0)
	statEpochNano.Store(0)
}

// RecordEpoch accounts one completed training/evaluation epoch of the given
// wall time. The trainer calls it once per epoch; ftdc samples the totals.
//
//torq:nolock
func RecordEpoch(d time.Duration) {
	statEpochs.Add(1)
	statEpochNano.Add(uint64(d.Nanoseconds()))
}

//torq:nolock
func recordForward(start time.Time) {
	statFwdPasses.Add(1)
	statFwdNanos.Add(uint64(time.Since(start).Nanoseconds())) //torq:allow nondet -- telemetry timing only
}

//torq:nolock
func recordBackward(start time.Time) {
	statBwdPasses.Add(1)
	statBwdNanos.Add(uint64(time.Since(start).Nanoseconds())) //torq:allow nondet -- telemetry timing only
}

// CollectTelemetry emits the engine pass counters in the flat name → int64
// form the ftdc recorder samples. Durations are nanosecond totals; readers
// derive per-pass means from the count series.
//
//torq:nolock
func CollectTelemetry(emit func(name string, value int64)) {
	s := EngineStats()
	emit("qsim.fwd_passes", int64(s.FwdPasses))
	emit("qsim.fwd_ns", int64(s.FwdNanos))
	emit("qsim.bwd_passes", int64(s.BwdPasses))
	emit("qsim.bwd_ns", int64(s.BwdNanos))
	emit("qsim.epochs", int64(s.Epochs))
	emit("qsim.epoch_ns", int64(s.EpochNanos))
}
