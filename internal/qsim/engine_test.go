package qsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/par"
)

// engineResult bundles everything one engine produces for a full
// forward+backward pass.
type engineResult struct {
	z, dAngles, dTheta []float64
	ztans, dTans       [][]float64
}

// runEngine executes one forward+backward pass of circ on the given engine
// with shared random inputs.
func runEngine(kind EngineKind, circ *Circuit, n int, angles []float64, tans [][]float64,
	theta, gz []float64, gztans [][]float64) engineResult {
	nq := circ.NumQubits
	pqc := &PQC{Circ: circ, Eng: kind}
	ws := NewWorkspace(n, nq)
	z, ztans := pqc.Forward(ws, angles, tans, theta)
	res := engineResult{
		z:       z,
		ztans:   ztans,
		dAngles: make([]float64, n*nq),
		dTheta:  make([]float64, circ.NumParams),
		dTans:   make([][]float64, MaxTangents),
	}
	for k := range tans {
		if tans[k] != nil {
			res.dTans[k] = make([]float64, n*nq)
		}
	}
	pqc.Backward(ws, gz, gztans, res.dAngles, res.dTans, res.dTheta)
	return res
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestEngineParity is the decisive cross-engine check: on randomized seeded
// circuits across every ansatz (with and without data re-uploading), the
// fused and naive engines must reproduce the legacy per-gate engine's
// expectations, tangents, and adjoint gradients to tight tolerance. The
// engines share no kernel code on the fused side (compiled instruction
// stream with gate fusion vs per-gate sweeps vs dense matrices), so
// agreement pins the whole compile/execute stack.
func TestEngineParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	const tol = 1e-10
	for _, a := range AllAnsatze {
		for _, reup := range []bool{false, true} {
			circ := a.Build(4, 2)
			if reup {
				circ = circ.WithReupload()
			}
			n, nq := 5, 4
			angles := randAngles(rng, n, nq)
			theta := randTheta(rng, circ.NumParams)
			// Two active tangent channels (one structurally absent), mirroring
			// how the PINN drives the layer.
			tans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}
			gz := randAngles(rng, n, nq)
			gztans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}

			ref := runEngine(EngineLegacy, circ, n, angles, tans, theta, gz, gztans)
			for _, kind := range []EngineKind{EngineFused, EngineSharded, EngineFusedV2, EngineFusedV1, EngineNaive} {
				got := runEngine(kind, circ, n, angles, tans, theta, gz, gztans)
				check := func(name string, want, have []float64) {
					if d := maxAbsDiff(want, have); d > tol {
						t.Errorf("%v reupload=%v engine=%v: %s diverges by %v", a, reup, kind, name, d)
					}
				}
				check("z", ref.z, got.z)
				check("dAngles", ref.dAngles, got.dAngles)
				check("dTheta", ref.dTheta, got.dTheta)
				for k := 0; k < MaxTangents; k++ {
					if ref.ztans[k] != nil {
						check("ztans", ref.ztans[k], got.ztans[k])
						check("dTans", ref.dTans[k], got.dTans[k])
					} else if got.ztans[k] != nil {
						t.Errorf("%v engine=%v: tangent channel %d unexpectedly present", a, kind, k)
					}
				}
			}
		}
	}
}

// TestEngineParityNoTangents covers the pure value path (no tangent
// channels, nil gradient buffers) the barren-plateau probe uses.
func TestEngineParityNoTangents(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	circ := StronglyEntangling.Build(5, 3)
	n, nq := 7, 5
	angles := randAngles(rng, n, nq)
	theta := randTheta(rng, circ.NumParams)
	gz := randAngles(rng, n, nq)

	run := func(kind EngineKind) ([]float64, []float64, []float64) {
		pqc := &PQC{Circ: circ, Eng: kind}
		ws := NewWorkspace(n, nq)
		z, _ := pqc.Forward(ws, angles, nil, theta)
		dA := make([]float64, n*nq)
		dTheta := make([]float64, circ.NumParams)
		pqc.Backward(ws, gz, nil, dA, nil, dTheta)
		return z, dA, dTheta
	}
	zL, daL, dtL := run(EngineLegacy)
	for _, kind := range []EngineKind{EngineFused, EngineSharded, EngineFusedV2, EngineFusedV1, EngineNaive} {
		z, da, dt := run(kind)
		//torq:allow maprange -- independent per-series assertions
		for name, pair := range map[string][2][]float64{
			"z": {zL, z}, "dAngles": {daL, da}, "dTheta": {dtL, dt},
		} {
			if d := maxAbsDiff(pair[0], pair[1]); d > 1e-10 {
				t.Errorf("engine=%v: %s diverges by %v", kind, name, d)
			}
		}
	}
}

// TestEngineParityRandomShapes: property-style sweep over random batch
// sizes, qubit counts and depths, fused vs legacy only (naive is covered
// above and is O(4^nq) per gate).
func TestEngineParityRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 25; trial++ {
		a := AllAnsatze[rng.Intn(len(AllAnsatze))]
		nq := 2 + rng.Intn(4)
		layers := 1 + rng.Intn(3)
		circ := a.Build(nq, layers)
		if rng.Intn(2) == 1 {
			circ = circ.WithReupload()
		}
		n := 1 + rng.Intn(9)
		angles := randAngles(rng, n, nq)
		theta := randTheta(rng, circ.NumParams)
		tans := make([][]float64, MaxTangents)
		gztans := make([][]float64, MaxTangents)
		for k := 0; k < MaxTangents; k++ {
			if rng.Intn(2) == 1 {
				tans[k] = randAngles(rng, n, nq)
				gztans[k] = randAngles(rng, n, nq)
			}
		}
		gz := randAngles(rng, n, nq)

		ref := runEngine(EngineLegacy, circ, n, angles, tans, theta, gz, gztans)
		for _, kind := range []EngineKind{EngineFused, EngineSharded, EngineFusedV2, EngineFusedV1} {
			got := runEngine(kind, circ, n, angles, tans, theta, gz, gztans)
			if d := maxAbsDiff(ref.z, got.z); d > 1e-10 {
				t.Fatalf("trial %d (%v nq=%d L=%d n=%d %v): z diverges by %v", trial, a, nq, layers, n, kind, d)
			}
			if d := maxAbsDiff(ref.dAngles, got.dAngles); d > 1e-10 {
				t.Fatalf("trial %d (%v nq=%d L=%d n=%d %v): dAngles diverges by %v", trial, a, nq, layers, n, kind, d)
			}
			if d := maxAbsDiff(ref.dTheta, got.dTheta); d > 1e-10 {
				t.Fatalf("trial %d (%v nq=%d L=%d n=%d %v): dTheta diverges by %v", trial, a, nq, layers, n, kind, d)
			}
			for k := 0; k < MaxTangents; k++ {
				if tans[k] == nil {
					continue
				}
				if d := maxAbsDiff(ref.ztans[k], got.ztans[k]); d > 1e-10 {
					t.Fatalf("trial %d %v: ztans[%d] diverges by %v", trial, kind, k, d)
				}
				if d := maxAbsDiff(ref.dTans[k], got.dTans[k]); d > 1e-10 {
					t.Fatalf("trial %d %v: dTans[%d] diverges by %v", trial, kind, k, d)
				}
			}
		}
	}
}

// TestEngineParityNilValueGradient: gradient flowing only through the
// tangent readouts (gz == nil) is a supported call shape on every engine.
func TestEngineParityNilValueGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	circ := BasicEntangling.Build(3, 2)
	n, nq := 4, 3
	angles := randAngles(rng, n, nq)
	theta := randTheta(rng, circ.NumParams)
	tans := [][]float64{randAngles(rng, n, nq), nil, nil}
	gztans := [][]float64{randAngles(rng, n, nq), nil, nil}

	ref := runEngine(EngineLegacy, circ, n, angles, tans, theta, nil, gztans)
	for _, kind := range []EngineKind{EngineFused, EngineSharded, EngineFusedV2, EngineFusedV1, EngineNaive} {
		got := runEngine(kind, circ, n, angles, tans, theta, nil, gztans)
		if d := maxAbsDiff(ref.dAngles, got.dAngles); d > 1e-10 {
			t.Errorf("engine=%v: dAngles diverges by %v", kind, d)
		}
		if d := maxAbsDiff(ref.dTheta, got.dTheta); d > 1e-10 {
			t.Errorf("engine=%v: dTheta diverges by %v", kind, d)
		}
	}
}

// TestEngineParityForcedParallel forces a multi-chunk par.Run region even
// on single-core hosts, exercising the fused engine's claim that workers on
// disjoint sample ranges share one workspace race-free (per-worker dTheta
// partials, per-sample scratch). Run under -race this is the engine's
// concurrency check.
func TestEngineParityForcedParallel(t *testing.T) {
	defer par.SetMaxWorkers(0)
	rng := rand.New(rand.NewSource(31337))
	// Cross-Mesh matters here beyond Strongly-Entangling: its CRZ meshes
	// compile to fused diagonals whose gradients contract once per worker
	// per pass — the exact epilogue a multi-call-per-worker scheduler can
	// double-count (caught live when the stealing scheduler landed).
	for _, a := range []AnsatzKind{StronglyEntangling, CrossMesh} {
		circ := a.Build(4, 3).WithReupload()
		n, nq := 37, 4 // odd batch: uneven chunks and partial tail blocks
		angles := randAngles(rng, n, nq)
		theta := randTheta(rng, circ.NumParams)
		tans := [][]float64{randAngles(rng, n, nq), randAngles(rng, n, nq), randAngles(rng, n, nq)}
		gz := randAngles(rng, n, nq)
		gztans := [][]float64{randAngles(rng, n, nq), randAngles(rng, n, nq), randAngles(rng, n, nq)}

		for _, kind := range []EngineKind{EngineFused, EngineSharded, EngineFusedV2, EngineFusedV1} {
			par.SetMaxWorkers(1)
			serial := runEngine(kind, circ, n, angles, tans, theta, gz, gztans)
			for _, workers := range []int{3, 8} {
				par.SetMaxWorkers(workers)
				got := runEngine(kind, circ, n, angles, tans, theta, gz, gztans)
				//torq:allow maprange -- independent per-series assertions
				for name, pair := range map[string][2][]float64{
					"z": {serial.z, got.z}, "dAngles": {serial.dAngles, got.dAngles},
					"dTheta": {serial.dTheta, got.dTheta},
				} {
					if d := maxAbsDiff(pair[0], pair[1]); d > 1e-12 {
						t.Errorf("%v %v workers=%d: %s diverges from serial by %v", a, kind, workers, name, d)
					}
				}
				for k := 0; k < MaxTangents; k++ {
					if d := maxAbsDiff(serial.ztans[k], got.ztans[k]); d > 1e-12 {
						t.Errorf("%v %v workers=%d: ztans[%d] diverges by %v", a, kind, workers, k, d)
					}
					if d := maxAbsDiff(serial.dTans[k], got.dTans[k]); d > 1e-12 {
						t.Errorf("%v %v workers=%d: dTans[%d] diverges by %v", a, kind, workers, k, d)
					}
				}
			}
		}
	}
}

// TestShardedDeterministicAcrossWorkerCounts pins the sharded engine's
// distinguishing guarantee: because gradient partials accumulate per shard
// (a partition fixed by the batch shape alone) and merge in shard order,
// outputs and gradients are BIT-identical — not merely within tolerance —
// for every worker bound and both scheduler modes. The fused engine cannot
// promise this: its per-worker partials make the reduction order follow the
// worker count.
func TestShardedDeterministicAcrossWorkerCounts(t *testing.T) {
	defer par.SetMaxWorkers(0)
	defer par.SetScheduler(par.SchedSteal)
	rng := rand.New(rand.NewSource(90210))
	for _, a := range []AnsatzKind{StronglyEntangling, CrossMesh, CrossMeshCNOT} {
		circ := a.Build(5, 3)
		n, nq := 41, 5 // odd batch: a partial tail shard
		angles := randAngles(rng, n, nq)
		theta := randTheta(rng, circ.NumParams)
		tans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}
		gz := randAngles(rng, n, nq)
		gztans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}

		par.SetMaxWorkers(1)
		ref := runEngine(EngineSharded, circ, n, angles, tans, theta, gz, gztans)
		for _, workers := range []int{2, 5, 16} {
			for _, sched := range []par.Scheduler{par.SchedSteal, par.SchedStatic} {
				par.SetScheduler(sched)
				par.SetMaxWorkers(workers)
				got := runEngine(EngineSharded, circ, n, angles, tans, theta, gz, gztans)
				//torq:allow maprange -- independent per-series assertions
				for name, pair := range map[string][2][]float64{
					"z": {ref.z, got.z}, "dAngles": {ref.dAngles, got.dAngles},
					"dTheta": {ref.dTheta, got.dTheta},
				} {
					if d := maxAbsDiff(pair[0], pair[1]); d != 0 {
						t.Errorf("%v workers=%d sched=%v: %s not bit-identical to serial (diff %v)", a, workers, sched, name, d)
					}
				}
				for k := 0; k < MaxTangents; k++ {
					if ref.ztans[k] == nil {
						continue
					}
					if d := maxAbsDiff(ref.ztans[k], got.ztans[k]); d != 0 {
						t.Errorf("%v workers=%d sched=%v: ztans[%d] not bit-identical (diff %v)", a, workers, sched, k, d)
					}
					if d := maxAbsDiff(ref.dTans[k], got.dTans[k]); d != 0 {
						t.Errorf("%v workers=%d sched=%v: dTans[%d] not bit-identical (diff %v)", a, workers, sched, k, d)
					}
				}
			}
		}
		par.SetMaxWorkers(1)
	}
}

// TestProgramFusionShrinksStream pins the pass-1 (level-1) fusion wins: the
// Rot-based ansätze collapse each RZ·RY·RZ triple into one U2 instruction,
// and Cross-Mesh-2-Rotations fuses its RX·RZ pairs.
func TestProgramFusionShrinksStream(t *testing.T) {
	cases := []struct {
		ansatz AnsatzKind
		nq, l  int
		want   int // embed ops + fused gate ops
	}{
		// 7 embeds + per layer (7 fused Rot + 7 CNOT) = 7 + 4*14
		{StronglyEntangling, 7, 4, 7 + 4*14},
		{BasicEntangling, 7, 4, 7 + 4*14},
		// 7 embeds + per layer (7 fused RX·RZ + 42 CRZ) = 7 + 4*49
		{CrossMesh2Rot, 7, 4, 7 + 4*49},
		// No fusion opportunities: 7 embeds + per layer (7 RX + 42 CRZ)
		{CrossMesh, 7, 4, 7 + 4*49},
		// 7 embeds + per layer 7 fused Rots
		{NoEntanglement, 7, 4, 7 + 4*7},
	}
	for _, c := range cases {
		prog := CompileProgramV1(c.ansatz.Build(c.nq, c.l))
		if got := prog.NumInstructions(); got != c.want {
			t.Errorf("%v: %d instructions, want %d", c.ansatz, got, c.want)
		}
	}
	// Fusion must not cross embedding boundaries under re-uploading.
	reup := CompileProgramV1(StronglyEntangling.Build(7, 4).WithReupload())
	if got, want := reup.NumInstructions(), 4*(7+14); got != want {
		t.Errorf("reupload: %d instructions, want %d", got, want)
	}
}

// TestProgramV2GoldenCounts pins the level-2 entangler-fusion wins per
// ansatz so a fusion regression fails loudly. The hand-derived structure at
// 7 qubits, 4 layers:
//   - CrossMesh / CrossMesh2Rot: each layer's 42-CRZ mesh collapses into ONE
//     full-register diagonal: 1 embed + 4·(7 rotations + 1 diagonal) = 33.
//   - BasicEntangling: each CNOT chain absorbs the neighbouring rotations
//     into 4×4 blocks: 1 + 4·(6 U4 + 1 lone CNOT) = 29.
//   - StronglyEntangling: as above, but the growing control-target gap lets
//     trailing lone CNOTs absorb the next layer's leading rotations
//     (cross-layer fusion), landing at 26.
//   - CrossMeshCNOT: the all-pairs CNOT mesh only pair-fuses its first
//     sweep: 1 + 4·(6 U4 + 36 CNOT) = 169.
//   - NoEntanglement: only the embedding fuses: 1 + 4·7 = 29.
//   - Re-uploading StronglyEntangling: embedding barriers stop cross-layer
//     fusion: 4·(1 embed + 7 blocks) = 32.
func TestProgramV2GoldenCounts(t *testing.T) {
	cases := []struct {
		ansatz AnsatzKind
		reup   bool
		want   int
	}{
		{CrossMesh, false, 33},
		{CrossMesh2Rot, false, 33},
		{CrossMeshCNOT, false, 169},
		{NoEntanglement, false, 29},
		{BasicEntangling, false, 29},
		{StronglyEntangling, false, 26},
		{StronglyEntangling, true, 32},
		{CrossMesh, true, 36},
	}
	for _, c := range cases {
		circ := c.ansatz.Build(7, 4)
		if c.reup {
			circ = circ.WithReupload()
		}
		prog := CompileProgramV2(circ)
		if got := prog.NumInstructions(); got != c.want {
			t.Errorf("%v reupload=%v: %d instructions, want %d", c.ansatz, c.reup, got, c.want)
		}
		if prog.Level() != 2 {
			t.Errorf("%v: CompileProgramV2 level = %d, want 2", c.ansatz, prog.Level())
		}
	}
}

// TestProgramV3GoldenCounts pins the level-3 fusion wins at 7 qubits,
// 4 layers. Relative to the level-2 stream:
//   - CrossMesh / CrossMesh2Rot: each layer's 7-rotation wall in front of
//     the fused diagonal mesh groups into two U2x3 triples + one U2:
//     1 + 4·(3 + 1 diagonal) = 17 (the ROADMAP target was ≤ 20).
//   - CrossMeshCNOT: the all-pairs CNOT mesh collapses 169 → 105 — the 147
//     surviving bare CNOTs become 64 zero-arithmetic basis permutations
//     (consecutive CNOTs sharing a control, two per opPerm8) plus 16 lone
//     CNOTs, while the rotation-bearing sweeps stay as 4×4 blocks (the cost
//     gate keeps them out of dense 8×8 form, which would cost more than the
//     instructions it absorbs).
//   - NoEntanglement: the 28 fused rotations group into 9 triples + 1: 11.
//   - BasicEntangling / StronglyEntangling: cyclic CNOT chains offer only
//     the occasional cost-justified triple: 29 → 27, 26 → 25.
//   - Re-uploading variants keep their embedding barriers; Cross-Mesh still
//     drops 36 → 20.
func TestProgramV3GoldenCounts(t *testing.T) {
	cases := []struct {
		ansatz AnsatzKind
		reup   bool
		want   int
	}{
		{CrossMesh, false, 17},
		{CrossMesh2Rot, false, 17},
		{CrossMeshCNOT, false, 105},
		{NoEntanglement, false, 11},
		{BasicEntangling, false, 27},
		{StronglyEntangling, false, 25},
		{StronglyEntangling, true, 32},
		{CrossMesh, true, 20},
	}
	for _, c := range cases {
		circ := c.ansatz.Build(7, 4)
		if c.reup {
			circ = circ.WithReupload()
		}
		prog := CompileProgram(circ)
		if got := prog.NumInstructions(); got != c.want {
			t.Errorf("%v reupload=%v: %d instructions, want %d", c.ansatz, c.reup, got, c.want)
		}
		if prog.Level() != 3 {
			t.Errorf("%v: CompileProgram level = %d, want 3", c.ansatz, prog.Level())
		}
	}
	// The acceptance bar this PR was cut against: Cross-Mesh at 7q/4L must
	// compile to at most 20 instructions under level 3.
	if got := CompileProgram(CrossMesh.Build(7, 4)).NumInstructions(); got > 20 {
		t.Errorf("CrossMesh level-3 instruction count %d exceeds the ≤20 target", got)
	}
}

// TestEngineKindRoundTrip covers flag parsing.
func TestEngineKindRoundTrip(t *testing.T) {
	// Every registered engine must round-trip through ParseEngine, and the
	// unknown-engine error must enumerate every registered name — a newly
	// landed engine that misses either breaks this table, not a user's flag.
	for _, k := range EngineKinds() {
		if k.String() == "unknown" {
			t.Errorf("engine %d has no canonical name", k)
			continue
		}
		got, err := ParseEngine(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	_, err := ParseEngine("gpu")
	if err == nil {
		t.Fatal("ParseEngine accepted unknown engine")
	}
	for _, k := range EngineKinds() {
		if !strings.Contains(err.Error(), k.String()) {
			t.Errorf("ParseEngine error %q omits engine %q", err, k)
		}
	}
	if k, err := ParseEngine(""); err != nil || k != EngineFused {
		t.Error("empty engine string should default to fused")
	}
}

// TestU2LogDerivFastPath pins the opU2 log-derivative adjoint fast path
// (single-parametrized-rotation blocks read their gradient off the recovered
// states) against the dense 2×2 adjoint outer-product path at 1e-10: the
// same program runs backward once with the compile-time logDeriv flags and
// once with them cleared, which re-routes those blocks through revU2Range
// and its derivative-slot contraction.
func TestU2LogDerivFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	const tol = 1e-10
	// Two isolated single-rotation gates on distinct qubits: too few qubits
	// for triple grouping and no two-qubit gates to absorb them, so both
	// compile to single-gate opU2 blocks eligible for the fast path.
	circ := &Circuit{
		Name: "isolated-rotations", NumQubits: 2, Layers: 1,
		Gates:     []Gate{{RX, 0, -1, 0}, {RY, 1, -1, 1}},
		NumParams: 2,
	}
	n, nq := 9, 2
	angles := randAngles(rng, n, nq)
	theta := randTheta(rng, circ.NumParams)
	tans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}
	gz := randAngles(rng, n, nq)
	gztans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}

	run := func(logDeriv bool) engineResult {
		pqc := &PQC{Circ: circ, Eng: EngineFused}
		prog := pqc.Program()
		flagged := 0
		for i := range prog.ins {
			if prog.ins[i].op == opU2 && prog.ins[i].logDeriv {
				if !logDeriv {
					prog.ins[i].logDeriv = false
				}
				flagged++
			}
		}
		if flagged != 2 {
			t.Fatalf("expected 2 log-derivative opU2 blocks, compiler produced %d", flagged)
		}
		ws := NewWorkspace(n, nq)
		z, ztans := pqc.Forward(ws, angles, tans, theta)
		res := engineResult{
			z: z, ztans: ztans,
			dAngles: make([]float64, n*nq),
			dTheta:  make([]float64, circ.NumParams),
			dTans:   [][]float64{make([]float64, n*nq), nil, make([]float64, n*nq)},
		}
		pqc.Backward(ws, gz, gztans, res.dAngles, res.dTans, res.dTheta)
		return res
	}

	fast := run(true)
	dense := run(false)
	check := func(name string, want, have []float64) {
		if d := maxAbsDiff(want, have); d > tol {
			t.Errorf("fast-vs-dense %s diverges by %v", name, d)
		}
	}
	check("z", dense.z, fast.z)
	check("dAngles", dense.dAngles, fast.dAngles)
	check("dTheta", dense.dTheta, fast.dTheta)
	for _, k := range []int{0, 2} {
		check("ztans", dense.ztans[k], fast.ztans[k])
		check("dTans", dense.dTans[k], fast.dTans[k])
	}

	// The legacy per-gate engine anchors both paths to the reference
	// adjoint, so the pair cannot agree on a mutually wrong answer.
	ref := runEngine(EngineLegacy, circ, n, angles, tans, theta, gz, gztans)
	check("dTheta vs legacy", ref.dTheta, fast.dTheta)
	check("dAngles vs legacy", ref.dAngles, fast.dAngles)
}

// TestU2LogDerivCoversAnsatzLeftovers asserts the fast path engages on real
// ansätze: Cross-Mesh at 7 qubits leaves one single-RX run per layer after
// triple grouping (7 mod 3), which must compile to a log-derivative opU2.
func TestU2LogDerivCoversAnsatzLeftovers(t *testing.T) {
	prog := CompileProgram(CrossMesh.Build(7, 2))
	got := 0
	for i := range prog.ins {
		if prog.ins[i].op == opU2 && prog.ins[i].logDeriv {
			got++
		}
	}
	if got == 0 {
		t.Fatal("Cross-Mesh 7q leftover rotations did not take the opU2 log-derivative fast path")
	}
}

// TestU4LogDerivFastPath pins the opU4 log-derivative adjoint fast path
// (entangler blocks with one parametrized rotation commuting with everything
// fused before it read their gradient off the recovered states) against the
// dense 4×4 adjoint outer-product path at 1e-10, with the legacy per-gate
// engine as the independent anchor. The two blocks cover both axis layouts:
// an RX on the block's high qubit behind a CNOT targeting it, and an RZ on
// the low qubit behind a CNOT controlled by it.
func TestU4LogDerivFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	const tol = 1e-10
	// Disjoint qubit pairs keep the two blocks from merging into one opU8
	// (union would span four qubits), so each compiles to a two-gate opU4
	// with exactly one parameter.
	circ := &Circuit{
		Name: "entangled-rotations", NumQubits: 4, Layers: 1,
		Gates: []Gate{
			{CNOT, 1, 0, -1}, {RX, 1, -1, 0},
			{CNOT, 3, 2, -1}, {RZ, 2, -1, 1},
		},
		NumParams: 2,
	}
	n, nq := 9, 4
	angles := randAngles(rng, n, nq)
	theta := randTheta(rng, circ.NumParams)
	tans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}
	gz := randAngles(rng, n, nq)
	gztans := [][]float64{randAngles(rng, n, nq), nil, randAngles(rng, n, nq)}

	run := func(logDeriv bool) engineResult {
		pqc := &PQC{Circ: circ, Eng: EngineFused}
		prog := pqc.Program()
		flagged := 0
		for i := range prog.ins {
			if prog.ins[i].op == opU4 && prog.ins[i].logDeriv {
				if !logDeriv {
					prog.ins[i].logDeriv = false
				}
				flagged++
			}
		}
		if flagged != 2 {
			t.Fatalf("expected 2 log-derivative opU4 blocks, compiler produced %d", flagged)
		}
		ws := NewWorkspace(n, nq)
		z, ztans := pqc.Forward(ws, angles, tans, theta)
		res := engineResult{
			z: z, ztans: ztans,
			dAngles: make([]float64, n*nq),
			dTheta:  make([]float64, circ.NumParams),
			dTans:   [][]float64{make([]float64, n*nq), nil, make([]float64, n*nq)},
		}
		pqc.Backward(ws, gz, gztans, res.dAngles, res.dTans, res.dTheta)
		return res
	}

	fast := run(true)
	dense := run(false)
	check := func(name string, want, have []float64) {
		if d := maxAbsDiff(want, have); d > tol {
			t.Errorf("fast-vs-dense %s diverges by %v", name, d)
		}
	}
	check("z", dense.z, fast.z)
	check("dAngles", dense.dAngles, fast.dAngles)
	check("dTheta", dense.dTheta, fast.dTheta)
	for _, k := range []int{0, 2} {
		check("ztans", dense.ztans[k], fast.ztans[k])
		check("dTans", dense.dTans[k], fast.dTans[k])
	}

	ref := runEngine(EngineLegacy, circ, n, angles, tans, theta, gz, gztans)
	check("dTheta vs legacy", ref.dTheta, fast.dTheta)
	check("dAngles vs legacy", ref.dAngles, fast.dAngles)
}

// TestU4LogDerivMarking pins the eligibility rule: the fast path requires a
// single parametrized single-qubit rotation whose generator commutes with
// every gate fused before it — never after it.
func TestU4LogDerivMarking(t *testing.T) {
	countFlagged := func(c *Circuit) (u4, flagged int) {
		prog := CompileProgram(c)
		for i := range prog.ins {
			if prog.ins[i].op == opU4 {
				u4++
				if prog.ins[i].logDeriv {
					flagged++
				}
			}
		}
		return
	}

	// RY behind a CNOT targeting its qubit anticommutes with the X branch,
	// so the block must stay on the dense oracle path.
	ry := &Circuit{
		Name: "ry-after-cnot", NumQubits: 2, Layers: 1,
		Gates:     []Gate{{CNOT, 1, 0, -1}, {RY, 1, -1, 0}},
		NumParams: 1,
	}
	if u4, flagged := countFlagged(ry); u4 != 1 || flagged != 0 {
		t.Errorf("RY behind CNOT: %d opU4 blocks, %d flagged; want 1 and 0", u4, flagged)
	}

	// The same rotation leading the block has nothing before it to commute
	// with, so it qualifies unconditionally.
	ryFirst := &Circuit{
		Name: "ry-before-cnot", NumQubits: 2, Layers: 1,
		Gates:     []Gate{{RY, 1, -1, 0}, {CNOT, 1, 0, -1}},
		NumParams: 1,
	}
	if u4, flagged := countFlagged(ryFirst); u4 != 1 || flagged != 1 {
		t.Errorf("RY before CNOT: %d opU4 blocks, %d flagged; want 1 and 1", u4, flagged)
	}

	// Two parametrized rotations in one block exceed the single-parameter
	// shape the scalar accumulator supports.
	multi := &Circuit{
		Name: "two-params", NumQubits: 2, Layers: 1,
		Gates:     []Gate{{RX, 1, -1, 0}, {CNOT, 1, 0, -1}, {RX, 0, -1, 1}},
		NumParams: 2,
	}
	if u4, flagged := countFlagged(multi); u4 != 1 || flagged != 0 {
		t.Errorf("two-parameter block: %d opU4 blocks, %d flagged; want 1 and 0", u4, flagged)
	}
}

// TestProgramDigestContent pins the digest the dist handshake relies on:
// identical compiles agree, and two circuits with identical shape counts but
// different content (or coefficient math) must disagree — shape-only
// summaries would wave a version-skewed worker through.
func TestProgramDigestContent(t *testing.T) {
	rx := &Circuit{Name: "rx", NumQubits: 1, Gates: []Gate{{RX, 0, -1, 0}}, NumParams: 1}
	ry := &Circuit{Name: "ry", NumQubits: 1, Gates: []Gate{{RY, 0, -1, 0}}, NumParams: 1}
	dA, dB := CompileProgram(rx).Digest(), CompileProgram(ry).Digest()
	if dA == dB {
		t.Fatal("RX and RY programs share a digest despite different content")
	}
	if got := CompileProgram(rx).Digest(); got != dA {
		t.Fatalf("digest not reproducible: %+v vs %+v", got, dA)
	}
	if dA.Instructions != dB.Instructions || dA.Coeffs != dB.Coeffs {
		t.Fatalf("test premise broken: shapes differ (%+v vs %+v), content hash untested", dA, dB)
	}
}

// TestEngineKindsClosed asserts EngineKinds covers every kind with a
// canonical name: an engine added to the String/Parse pair but forgotten in
// EngineKinds would otherwise silently vanish from flag help, the
// ParseEngine error, and the round-trip test that iterates EngineKinds.
func TestEngineKindsClosed(t *testing.T) {
	listed := map[EngineKind]bool{}
	for _, k := range EngineKinds() {
		listed[k] = true
	}
	for v := 0; v < 64; v++ {
		k := EngineKind(v)
		if k.String() != "unknown" && !listed[k] {
			t.Errorf("engine %v (=%d) has a name but is missing from EngineKinds()", k, v)
		}
	}
}
