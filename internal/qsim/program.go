package qsim

// This file is the compile stage of the compile/execute split: it lowers a
// Circuit plus its RX angle embedding into a flat instruction stream the
// fused engine can stream sample-block by sample-block. Lowering fuses runs
// of adjacent single-qubit gates on the same qubit into a single 2×2
// unitary, collapses all-diagonal runs (RZ chains) into one phase pair, and
// merges consecutive CRZ gates sharing a control/target pair. Instruction
// operands live in coefficient slots that are refreshed from theta once per
// pass — per-gate trigonometry is paid once per program execution, not once
// per sample.

// opcode enumerates fused-program instructions.
type opcode uint8

const (
	opEmbed    opcode = iota // per-sample RX embedding on qubit Q
	opU2                     // 2×2 unitary on Q; 8 coefficient floats
	opDiag                   // diag(p0, p1) on Q; 4 coefficient floats
	opCNOT                   // CNOT control C, target Q; no coefficients
	opCtrlDiag               // diag(p0, p1) on Q over control-set C; 4 floats
)

// instr is one fused instruction. Slot indexes the program's coefficient
// array; gates are the source gates the instruction was fused from, kept to
// refresh the slot when theta changes.
type instr struct {
	op    opcode
	q, c  int
	slot  int
	gates []Gate
}

// segment mirrors the forward phase structure at per-gate granularity for
// the adjoint backward walk, which cannot use fused instructions because it
// needs each parametrized gate's individual derivative and pre-gate state.
type segment struct {
	embed bool
	gates []Gate // nil for embedding segments
}

// Program is a compiled circuit: the fused forward instruction stream, the
// per-gate segment list for the backward walk, and the coefficient-slot
// count. Compilation depends only on circuit structure; coefficients are
// filled per pass by FillCoeffs.
type Program struct {
	circ  *Circuit
	ins   []instr
	segs  []segment
	ncoef int
}

// CompileProgram lowers circ (and its embedding placement, honouring data
// re-uploading) into a fused program.
func CompileProgram(circ *Circuit) *Program {
	p := &Program{circ: circ}
	if circ.Reupload && circ.Layers > 0 {
		for l := 0; l < circ.Layers; l++ {
			p.addEmbed()
			p.addGates(circ.LayerSlice(l))
		}
	} else {
		p.addEmbed()
		p.addGates(circ.Gates)
	}
	return p
}

// NumInstructions reports the fused forward stream length (embedding ops
// included) — the quantity gate fusion shrinks.
func (p *Program) NumInstructions() int { return len(p.ins) }

// NumCoeffs reports the coefficient-slot floats a pass must provide.
func (p *Program) NumCoeffs() int { return p.ncoef }

func (p *Program) addEmbed() {
	p.segs = append(p.segs, segment{embed: true})
	for q := 0; q < p.circ.NumQubits; q++ {
		p.ins = append(p.ins, instr{op: opEmbed, q: q, c: -1})
	}
}

func isSingleQubit(g Gate) bool {
	return g.Kind == RX || g.Kind == RY || g.Kind == RZ
}

func (p *Program) emit(op opcode, q, c, width int, gates []Gate) {
	p.ins = append(p.ins, instr{op: op, q: q, c: c, slot: p.ncoef, gates: gates})
	p.ncoef += width
}

func (p *Program) addGates(gates []Gate) {
	if len(gates) == 0 {
		return
	}
	p.segs = append(p.segs, segment{gates: gates})
	for i := 0; i < len(gates); {
		g := gates[i]
		switch {
		case isSingleQubit(g):
			j := i + 1
			for j < len(gates) && isSingleQubit(gates[j]) && gates[j].Q == g.Q {
				j++
			}
			run := gates[i:j]
			allDiag := true
			for _, r := range run {
				if r.Kind != RZ {
					allDiag = false
					break
				}
			}
			if allDiag {
				p.emit(opDiag, g.Q, -1, 4, run)
			} else {
				p.emit(opU2, g.Q, -1, 8, run)
			}
			i = j
		case g.Kind == CNOT:
			p.ins = append(p.ins, instr{op: opCNOT, q: g.Q, c: g.C})
			i++
		default: // CRZ
			j := i + 1
			for j < len(gates) && gates[j].Kind == CRZ && gates[j].Q == g.Q && gates[j].C == g.C {
				j++
			}
			p.emit(opCtrlDiag, g.Q, g.C, 4, gates[i:j])
			i = j
		}
	}
}

// mat2 is a 2×2 complex matrix as interleaved re/im pairs, row-major:
// [u00r, u00i, u01r, u01i, u10r, u10i, u11r, u11i].
type mat2 [8]float64

// gateMat2 returns the 2×2 matrix of a single-qubit rotation gate.
func gateMat2(g Gate, theta []float64) mat2 {
	c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
	switch g.Kind {
	case RX:
		return mat2{c, 0, 0, -s, 0, -s, c, 0}
	case RY:
		return mat2{c, 0, -s, 0, s, 0, c, 0}
	case RZ:
		return mat2{c, -s, 0, 0, 0, 0, c, s}
	}
	panic("qsim: gateMat2 on non-single-qubit gate")
}

// mul2 returns a·b.
func mul2(a, b mat2) mat2 {
	var out mat2
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			var re, im float64
			for k := 0; k < 2; k++ {
				ar, ai := a[r*4+k*2], a[r*4+k*2+1]
				br, bi := b[k*4+c*2], b[k*4+c*2+1]
				re += ar*br - ai*bi
				im += ar*bi + ai*br
			}
			out[r*4+c*2], out[r*4+c*2+1] = re, im
		}
	}
	return out
}

// FillCoeffs refreshes the coefficient slots for the given parameters; dst
// must have at least NumCoeffs elements. For a fused run g1, g2, …, gk (in
// application order) the slot holds the product U_k·…·U_2·U_1.
func (p *Program) FillCoeffs(theta, dst []float64) {
	for _, in := range p.ins {
		switch in.op {
		case opU2:
			u := gateMat2(in.gates[0], theta)
			for _, g := range in.gates[1:] {
				u = mul2(gateMat2(g, theta), u)
			}
			copy(dst[in.slot:in.slot+8], u[:])
		case opDiag, opCtrlDiag:
			// Product of diag(e^{−iθ/2}, e^{+iθ/2}) phases: half-angles add.
			var sum float64
			for _, g := range in.gates {
				sum += theta[g.P]
			}
			c, s := cosHalf(sum), sinHalf(sum)
			dst[in.slot] = c
			dst[in.slot+1] = -s
			dst[in.slot+2] = c
			dst[in.slot+3] = s
		}
	}
}
