package qsim

import (
	"math"
	"math/bits"
	"sort"
)

// This file is the compile stage of the compile/execute split: it lowers a
// Circuit plus its RX angle embedding into a flat instruction stream the
// fused engine can stream sample-block by sample-block.
//
// Lowering runs up to three fusion passes:
//
// Pass 1 (level ≥ 1) fuses runs of adjacent single-qubit gates on the same
// qubit into a single 2×2 unitary, collapses all-diagonal runs (RZ chains)
// into one phase pair, and merges consecutive CRZ gates sharing a
// control/target pair.
//
// Pass 2 (level ≥ 2) fuses entangler blocks. Consecutive runs of diagonal
// instructions — CRZ meshes, whatever their control/target pairs — collapse
// into one full-register diagonal super-op (opDiagN) whose per-basis phases
// and per-parameter derivative signs are laid out at compile time. Remaining
// two-qubit gates (CNOT-conjugated diagonals and adjacent two-qubit runs)
// greedily absorb the neighbouring single-qubit runs on their qubit pair
// into fused 4×4 super-ops (opU4). The per-qubit embedding walk is replaced
// by a single fused embedding instruction (opEmbedAll) so forward and
// adjoint passes stream one instruction sequence end-to-end.
//
// Pass 3 (level ≥ 3) widens both ideas. Diagonal absorption becomes
// commutation-aware: a fused diagonal group may absorb non-adjacent diagonal
// instructions by commuting them past intervening blocks with disjoint
// support (all diagonal operators commute with each other, so only the
// non-diagonal instructions in between constrain the move). Block fusion
// grows from qubit pairs to qubit triples: a two-qubit instruction sharing a
// qubit with an open pair block extends it to a dense 8×8 three-qubit
// super-op (opU8), collapsing the all-pairs CNOT sweeps that pair fusion
// leaves as bare instructions. Finally, leftover runs of single-qubit
// instructions on distinct qubits are grouped three at a time into a
// Kronecker-structured triple (opU2x3) that applies all three 2×2 factors in
// one pass over each 8-amplitude group — same arithmetic as three separate
// applications, one third of the memory passes and dispatches.
//
// Instruction operands live in coefficient slots that are refreshed from
// theta once per pass — per-gate trigonometry is paid once per program
// execution, not once per sample. Backward derivative operands (the dU/dθ
// matrices of fused unitaries) live in a separate slot array filled only
// when a gradient pass runs.

// opcode enumerates fused-program instructions.
type opcode uint8

const (
	opEmbed    opcode = iota // per-sample RX embedding on qubit Q (level-1)
	opEmbedAll               // fused whole-register embedding block (level-2)
	opU2                     // 2×2 unitary on Q; 8 coefficient floats
	opDiag                   // diag(p0, p1) on Q; 4 coefficient floats
	opCNOT                   // CNOT control C, target Q; no coefficients
	opCtrlDiag               // diag(p0, p1) on Q over control-set C; 4 floats
	opU4                     // 4×4 unitary on qubit pair (Q=low, C=high); 32 floats
	opDiagN                  // full-register diagonal; 2·dim floats
	opU8                     // 8×8 unitary on triple (Q<C<Q2); 128 floats (level-3)
	opU2x3                   // three independent 2×2 factors on (Q, C, Q2); 24 floats
	opPerm8                  // compile-time basis permutation on (Q, C, Q2); no floats
)

// instr is one fused instruction. slot indexes the program's forward
// coefficient array and dslot the backward derivative array; gates are the
// source gates the instruction was fused from, kept to refresh the slots
// when theta changes.
type instr struct {
	op     opcode
	q, c   int // primary/secondary qubit (meaning depends on op; -1 unused)
	q2     int // third qubit of three-qubit ops (q < c < q2); 0 otherwise
	slot   int
	dslot  int
	tslot  int      // opDiagN: index of this instr's gradient accumulator
	gates  []Gate   // source gates in application order
	params []int    // theta indices of parametrized source gates, in order
	signs  []int8   // opDiagN: per (param, basis) derivative sign in {-1,0,+1}
	perm   [8]uint8 // opPerm8: local basis map, new[perm[j]] = old[j]
	// opPerm8: the permutation's non-trivial cycles and their inverses, so
	// the kernels rotate only the amplitudes that actually move.
	cycles, invCycles [][]uint8
	// opU2x3: every factor is a single parametrized rotation, so the
	// adjoint can read each gradient off the recovered states through the
	// factor's logarithmic derivative (dU/dθ = U·dlogU) instead of
	// accumulating 2×2 adjoint outer products.
	logDeriv bool
}

// segment mirrors the forward phase structure at per-gate granularity for
// the level-1 adjoint backward walk, which runs per source gate. Level-2
// programs drive the backward from the fused instruction stream instead and
// carry no segments.
type segment struct {
	embed bool
	gates []Gate // nil for embedding segments
}

// Program is a compiled circuit: the fused instruction stream (driving both
// the forward and — at level 2 — the adjoint backward), the level-1 per-gate
// segment list, and the coefficient-slot layout. Compilation depends only on
// circuit structure; coefficients are filled per pass by FillCoeffs and
// FillDerivCoeffs.
type Program struct {
	circ   *Circuit
	level  int
	ins    []instr
	segs   []segment // level-1 backward walk only
	ncoef  int       // forward coefficient floats
	nderiv int       // backward derivative floats
	ndiag  int       // number of opDiagN instructions (gradient accumulators)
}

// CompileProgram lowers circ (and its embedding placement, honouring data
// re-uploading) into a fused program with full (level-3) fusion:
// commutation-aware diagonal absorption, three-qubit entangler super-ops,
// and grouped single-qubit triples.
func CompileProgram(circ *Circuit) *Program { return CompileProgramLevel(circ, 3) }

// CompileProgramV2 compiles with the pass-1 and pass-2 fusions only
// (consecutive diagonal runs, 4×4 entangler blocks) — the PR-2 compiler,
// kept as an A/B comparator behind EngineFusedV2.
func CompileProgramV2(circ *Circuit) *Program { return CompileProgramLevel(circ, 2) }

// CompileProgramV1 compiles with only the first fusion pass (single-qubit
// runs and same-pair diagonal merges) — the PR-1 compiler, kept as an A/B
// comparator behind EngineFusedV1.
func CompileProgramV1(circ *Circuit) *Program { return CompileProgramLevel(circ, 1) }

// CompileProgramLevel compiles circ at the given fusion level (1, 2 or 3).
func CompileProgramLevel(circ *Circuit, level int) *Program {
	p := &Program{circ: circ, level: level}
	if circ.Reupload && circ.Layers > 0 {
		for l := 0; l < circ.Layers; l++ {
			p.addEmbed()
			p.addGates(circ.LayerSlice(l))
		}
	} else {
		p.addEmbed()
		p.addGates(circ.Gates)
	}
	switch {
	case level >= 3:
		p.fuseDiagGroups()
		p.fuseBlocks(3)
		p.fuseSingleTriples()
	case level == 2:
		p.fuseDiagRuns()
		p.fuseBlocks(2)
	}
	if level >= 2 {
		p.markU2LogDeriv()
		p.markU4LogDeriv()
	}
	p.layout()
	return p
}

// markU2LogDeriv flags the opU2 blocks whose source is a single parametrized
// rotation: their adjoint reads the gradient off the recovered states via
// the rotation's logarithmic derivative instead of accumulating a 2×2
// adjoint outer product (see revU2LogDerivRange). Only instruction-driven
// (level ≥ 2) backward walks consult the flag. The derivative slots stay
// allocated so the dense outer-product path remains selectable as the
// parity oracle for the fast path.
func (p *Program) markU2LogDeriv() {
	for i := range p.ins {
		in := &p.ins[i]
		if in.op == opU2 && len(in.gates) == 1 && in.gates[0].P >= 0 && isSingleQubit(in.gates[0]) {
			in.logDeriv = true
		}
	}
}

// markU4LogDeriv flags the opU4 entangler blocks whose single parametrized
// source gate is a single-qubit rotation that commutes with everything fused
// before it. Writing the block U = A·G(θ)·B with [B, dlogG] = 0 gives
// dU/dθ = A·G·dlogG·B = U·(B†·dlogG·B), so
// Re⟨λ_post, dU·ψ_pre⟩ = Re⟨λ_pre, dlogG·ψ_pre⟩ — the gradient reads off
// the states the one U† traversal recovers anyway, with no 4×4 adjoint
// outer product and no derivative-slot contraction (see revU4LogDerivRange).
// The commutation condition only involves gates fused *before* G; blocks
// where the rotation leads (the common wall-then-entangle layering) qualify
// unconditionally. Like opU2 — and unlike opU2x3 — the derivative slots stay
// allocated so tests can clear the flag and replay the dense outer-product
// oracle on the same program.
func (p *Program) markU4LogDeriv() {
	for i := range p.ins {
		in := &p.ins[i]
		if in.op != opU4 {
			continue
		}
		pi := -1
		for gi, g := range in.gates {
			if g.P >= 0 {
				if pi >= 0 {
					pi = -1
					break
				}
				pi = gi
			}
		}
		if pi < 0 || !isSingleQubit(in.gates[pi]) {
			continue
		}
		ok := true
		for _, b := range in.gates[:pi] {
			if !commutesWithGenerator(b, in.gates[pi]) {
				ok = false
				break
			}
		}
		if ok {
			in.logDeriv = true
		}
	}
}

// commutesWithGenerator reports whether gate b commutes with the Pauli
// generator of the single-qubit rotation g (σ ∈ {X, Y, Z} on qubit g.Q).
// Conservative: false only means the fast path is skipped, never a wrong
// gradient.
func commutesWithGenerator(b, g Gate) bool {
	switch b.Kind {
	case RX, RY, RZ:
		// Disjoint supports always commute; same-qubit rotations share a
		// generator only on the same axis.
		return b.Q != g.Q || b.Kind == g.Kind
	case CNOT:
		if b.Q != g.Q && b.C != g.Q {
			return true
		}
		// CNOT = |0⟩⟨0|_c⊗I + |1⟩⟨1|_c⊗X_t commutes with X on its target
		// and Z on its control; every other Pauli on its qubits anticommutes
		// with one of the two projector branches.
		return (b.Q == g.Q && g.Kind == RX) || (b.C == g.Q && g.Kind == RZ)
	case CRZ:
		// Diagonal: commutes with Z generators anywhere, and with anything
		// off its own support.
		return g.Kind == RZ || (b.Q != g.Q && b.C != g.Q)
	}
	return false
}

// Level reports the fusion level the program was compiled at.
func (p *Program) Level() int { return p.level }

// NumInstructions reports the fused instruction stream length (embedding ops
// included) — the quantity gate fusion shrinks.
func (p *Program) NumInstructions() int { return len(p.ins) }

// NumCoeffs reports the forward coefficient-slot floats a pass must provide.
func (p *Program) NumCoeffs() int { return p.ncoef }

// NumDiagAccums reports the number of fused full-register diagonal
// instructions, each of which owns one per-basis gradient accumulator of
// 2^nq floats — the stride of the sharded and dist engines' diagT partials.
func (p *Program) NumDiagAccums() int { return p.ndiag }

// ProgramDigest summarizes a compiled program. Compilation is a pure
// function of (circuit, level), so two processes that compiled the same
// circuit at the same level and agree on the digest are executing the same
// instruction stream — the dist handshake exchanges it to pin coordinator
// and worker to identical programs before any shard is shipped. Beyond the
// shape counts, Hash fingerprints the instruction stream's content AND a
// coefficient probe (FillCoeffs/FillDerivCoeffs evaluated at a fixed theta),
// so a version-skewed worker whose compiler fuses differently or whose
// coefficient math drifted is refused at handshake instead of silently
// returning different numbers. (Amplitude-kernel drift is the one thing a
// compile-time digest cannot see; the cross-engine parity tests own that.)
type ProgramDigest struct {
	Level        int
	Instructions int
	Coeffs       int
	DerivCoeffs  int
	DiagAccums   int
	Hash         uint64
}

// Digest returns the program's summary for cross-process validation.
func (p *Program) Digest() ProgramDigest {
	return ProgramDigest{
		Level:        p.level,
		Instructions: len(p.ins),
		Coeffs:       p.ncoef,
		DerivCoeffs:  p.nderiv,
		DiagAccums:   p.ndiag,
		Hash:         p.contentHash(),
	}
}

// contentHash is an FNV-1a fingerprint of the compiled instruction stream
// (opcodes, operands, slot layout, source gates, sign tables, permutation
// cycles) followed by a numerical probe: the forward and derivative
// coefficient slots evaluated at a fixed, structure-independent theta, as
// raw IEEE bits. Everything hashed is a deterministic pure function of
// (circuit, level) — no map iteration, no addresses — so equal programs
// hash equal across processes and binaries.
func (p *Program) contentHash() uint64 {
	const (
		offset64 = 14695981039346844037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte1 := func(b byte) {
		h = (h ^ uint64(b)) * prime64
	}
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			byte1(byte(v >> (8 * i)))
		}
	}
	num := func(v int) { word(uint64(int64(v))) }
	num(p.level)
	num(p.circ.NumQubits)
	num(len(p.ins))
	for i := range p.ins {
		in := &p.ins[i]
		byte1(byte(in.op))
		num(in.q)
		num(in.c)
		num(in.q2)
		num(in.slot)
		num(in.dslot)
		num(in.tslot)
		if in.logDeriv {
			byte1(1)
		} else {
			byte1(0)
		}
		num(len(in.gates))
		for _, g := range in.gates {
			byte1(byte(g.Kind))
			num(g.Q)
			num(g.C)
			num(g.P)
		}
		num(len(in.params))
		for _, pi := range in.params {
			num(pi)
		}
		num(len(in.signs))
		for _, s := range in.signs {
			byte1(byte(s))
		}
		for _, b := range in.perm {
			byte1(b)
		}
		num(len(in.cycles))
		for _, cyc := range in.cycles {
			num(len(cyc))
			for _, b := range cyc {
				byte1(b)
			}
		}
	}
	// Coefficient probe at theta_i = sin(i+1): exercises every rotation's
	// trigonometry and every fused block's matrix products.
	theta := make([]float64, p.circ.NumParams)
	for i := range theta {
		theta[i] = math.Sin(float64(i + 1))
	}
	coeff := make([]float64, p.ncoef)
	p.FillCoeffs(theta, coeff)
	for _, v := range coeff {
		word(math.Float64bits(v))
	}
	if p.nderiv > 0 {
		dcoef := make([]float64, p.nderiv)
		p.FillDerivCoeffs(theta, dcoef)
		for _, v := range dcoef {
			word(math.Float64bits(v))
		}
	}
	return h
}

func (p *Program) addEmbed() {
	if p.level >= 2 {
		p.ins = append(p.ins, instr{op: opEmbedAll, q: -1, c: -1})
		return
	}
	p.segs = append(p.segs, segment{embed: true})
	for q := 0; q < p.circ.NumQubits; q++ {
		p.ins = append(p.ins, instr{op: opEmbed, q: q, c: -1})
	}
}

func isSingleQubit(g Gate) bool {
	return g.Kind == RX || g.Kind == RY || g.Kind == RZ
}

func (p *Program) addGates(gates []Gate) {
	if len(gates) == 0 {
		return
	}
	if p.level < 2 {
		p.segs = append(p.segs, segment{gates: gates})
	}
	for i := 0; i < len(gates); {
		g := gates[i]
		switch {
		case isSingleQubit(g):
			j := i + 1
			for j < len(gates) && isSingleQubit(gates[j]) && gates[j].Q == g.Q {
				j++
			}
			run := gates[i:j]
			allDiag := true
			for _, r := range run {
				if r.Kind != RZ {
					allDiag = false
					break
				}
			}
			if allDiag {
				p.ins = append(p.ins, instr{op: opDiag, q: g.Q, c: -1, gates: run})
			} else {
				p.ins = append(p.ins, instr{op: opU2, q: g.Q, c: -1, gates: run})
			}
			i = j
		case g.Kind == CNOT:
			p.ins = append(p.ins, instr{op: opCNOT, q: g.Q, c: g.C, gates: gates[i : i+1]})
			i++
		default: // CRZ
			j := i + 1
			for j < len(gates) && gates[j].Kind == CRZ && gates[j].Q == g.Q && gates[j].C == g.C {
				j++
			}
			p.ins = append(p.ins, instr{op: opCtrlDiag, q: g.Q, c: g.C, gates: gates[i:j]})
			i = j
		}
	}
}

// fuseDiagRuns collapses every run of ≥2 consecutive diagonal instructions
// (RZ chains, CRZ meshes — regardless of control/target pairs, since all
// diagonal operators commute) into one full-register diagonal super-op.
func (p *Program) fuseDiagRuns() {
	isDiag := func(op opcode) bool { return op == opDiag || op == opCtrlDiag }
	out := p.ins[:0:0]
	for i := 0; i < len(p.ins); {
		if !isDiag(p.ins[i].op) {
			out = append(out, p.ins[i])
			i++
			continue
		}
		j := i
		var gates []Gate
		for j < len(p.ins) && isDiag(p.ins[j].op) {
			gates = append(gates, p.ins[j].gates...)
			j++
		}
		if j-i >= 2 {
			out = append(out, instr{op: opDiagN, q: -1, c: -1, gates: gates})
		} else {
			out = append(out, p.ins[i])
		}
		i = j
	}
	p.ins = out
}

// fuseDiagGroups is the commutation-aware generalization of fuseDiagRuns
// (level ≥ 3): a group of diagonal instructions may absorb NON-adjacent
// members by commuting them backward past intervening blocks whose support
// is disjoint from the member being moved. Diagonal operators all commute
// with each other, so a diagonal instruction joins a group exactly when its
// support avoids the union of the supports of every non-diagonal instruction
// seen since the group opened (the group's blocked mask) — that guarantees
// it commutes past each obstacle individually and the move is exact. Groups
// of ≥ 2 members collapse into one full-register diagonal super-op emitted
// at the first member's position; singleton groups stay in place (and remain
// available to entangler-block fusion).
func (p *Program) fuseDiagGroups() {
	type group struct {
		members []int
		blocked int // union support mask of non-diagonal instrs since open
	}
	var groups, open []*group
	support := func(in *instr) int {
		m := 1 << in.q
		if in.c >= 0 {
			m |= 1 << in.c
		}
		return m
	}
	for idx := range p.ins {
		in := &p.ins[idx]
		switch in.op {
		case opDiag, opCtrlDiag:
			s := support(in)
			joined := false
			for _, g := range open {
				if g.blocked&s == 0 {
					g.members = append(g.members, idx)
					joined = true
					break
				}
			}
			if !joined {
				g := &group{members: []int{idx}}
				open = append(open, g)
				groups = append(groups, g)
			}
		case opEmbed, opEmbedAll: // embedding barriers close every group
			open = open[:0]
		default:
			s := support(in)
			for _, g := range open {
				g.blocked |= s
			}
		}
	}
	drop := make([]bool, len(p.ins))
	fused := make(map[int]instr)
	for _, g := range groups {
		if len(g.members) < 2 {
			continue
		}
		var gates []Gate
		for _, m := range g.members {
			gates = append(gates, p.ins[m].gates...)
		}
		fused[g.members[0]] = instr{op: opDiagN, q: -1, c: -1, gates: gates}
		for _, m := range g.members[1:] {
			drop[m] = true
		}
	}
	out := p.ins[:0:0]
	for idx := range p.ins {
		if drop[idx] {
			continue
		}
		if in, ok := fused[idx]; ok {
			out = append(out, in)
			continue
		}
		out = append(out, p.ins[idx])
	}
	p.ins = out
}

// instrCost is a rough per-amplitude execution-cost model (complex-multiply
// units) used to decide whether collapsing a three-qubit block into a dense
// 8×8 super-op pays: the dense forward costs 8 units per amplitude, so a
// block is only worth densifying when the instructions it replaces cost at
// least as much. CNOTs count 1 (a pure memory pass), diagonals 1, generic
// 2×2 unitaries 2.
func instrCost(op opcode) int {
	switch op {
	case opU2:
		return 2
	default: // opDiag, opCtrlDiag, opCNOT
		return 1
	}
}

// u8FuseCost is the minimum summed instrCost a mixed three-qubit block must
// replace before it is densified into an opU8. Below it, the dense 8×8
// forward (8 units/amp) and its K-outer-product adjoint would cost more
// than the instructions it absorbs, so the pass leaves the level-2 pair
// fusion in place instead. Pure-CNOT blocks are exempt: they compile to a
// zero-arithmetic basis permutation (opPerm8), which is cheaper than the
// swap passes it replaces at any size.
const u8FuseCost = 10

// fuseBlocks greedily fuses each two-qubit instruction with the neighbouring
// single-qubit runs on its qubits — and with adjacent two-qubit instructions
// sharing its qubits — into one super-op over at most maxQ qubits. With
// maxQ = 2 this is exactly the level-2 pair fusion (opU4). With maxQ = 3 a
// two-qubit instruction that shares one qubit with an open pair block may
// extend the block to a qubit triple, which is what collapses all-pairs
// CNOT meshes: consecutive CNOTs sharing a control land in one three-qubit
// block. Growth is gated by a cost model: CNOT-only blocks always grow
// (they emit as a compile-time basis permutation, opPerm8, one pass and no
// arithmetic), while mixed blocks grow only when the instructions they
// absorb cost at least as much as the dense 8×8 super-op (opU8) that
// replaces them.
//
// A fused block stays open while the stream touches none of its qubits; any
// instruction touching some but not all of the qubits it needs closes it.
// The fused instruction is emitted at the position of the block's last
// member. The move is exact: when a member is placed (joining, opening, or
// absorbed from a pending list or a grow), every non-member instruction
// between it and the emission point is known to touch none of that member's
// qubits — instructions touching an open block's qubits either join it or
// close it, and pending single-qubit instructions are absorbed or discarded
// the moment anything else touches their qubit — so each member commutes
// past the instructions it skips.
func (p *Program) fuseBlocks(maxQ int) {
	nq := p.circ.NumQubits
	type block struct {
		mask     int // qubit set; local bit order follows ascending qubit index
		members  []int
		cost     int  // summed instrCost of the members
		cnotOnly bool // every member is a bare CNOT
		open     bool
	}
	owner := make([]*block, nq)
	pend := make([][]int, nq)
	memberOf := make([]*block, len(p.ins))
	var blocks []*block
	closeBlk := func(b *block) {
		if b == nil || !b.open {
			return
		}
		b.open = false
		for q := 0; q < nq; q++ {
			if owner[q] == b {
				owner[q] = nil
			}
		}
	}
	// absorb attaches qubit q (and its pending single-qubit instructions)
	// to block b.
	absorb := func(b *block, q int) {
		b.mask |= 1 << q
		for _, m := range pend[q] {
			b.members = append(b.members, m)
			b.cost += instrCost(p.ins[m].op)
			b.cnotOnly = false
			memberOf[m] = b
		}
		pend[q] = pend[q][:0]
		owner[q] = b
	}
	addMember := func(b *block, idx int, op opcode) {
		b.members = append(b.members, idx)
		b.cost += instrCost(op)
		if op != opCNOT {
			b.cnotOnly = false
		}
		memberOf[idx] = b
	}
	pendCost := func(q int) int {
		c := 0
		for _, m := range pend[q] {
			c += instrCost(p.ins[m].op)
		}
		return c
	}
	triple := func(b *block) bool { return b != nil && bits.OnesCount(uint(b.mask)) >= 3 }
	for idx := range p.ins {
		in := &p.ins[idx]
		switch in.op {
		case opU2, opDiag:
			q := in.q
			b := owner[q]
			// A single-qubit instruction would turn a pure-CNOT triple into
			// a dense 8×8 block; close the cheap permutation instead.
			if b != nil && b.cnotOnly && triple(b) {
				closeBlk(b)
				b = nil
			}
			if b != nil {
				addMember(b, idx, in.op)
			} else {
				pend[q] = append(pend[q], idx)
			}
		case opCNOT, opCtrlDiag:
			a, b := in.q, in.c
			ba, bb := owner[a], owner[b]
			if ba != nil && ba == bb {
				// Keep pure-CNOT triples pure: a controlled diagonal joining
				// one would force densification, so it closes the block and
				// starts a fresh pair instead.
				if !(ba.cnotOnly && triple(ba) && in.op != opCNOT) {
					addMember(ba, idx, in.op)
					continue
				}
				closeBlk(ba)
				ba, bb = nil, nil
			}
			// Grow an open block by the unowned endpoint when the result
			// still fits in maxQ qubits (a no-op for maxQ = 2) AND the grown
			// block is worth emitting: as a zero-arithmetic permutation
			// (everything involved is a bare CNOT) or as a dense 8×8 block
			// replacing at least u8FuseCost of standalone work.
			grow := func(blk *block, other int) bool {
				if blk == nil || bits.OnesCount(uint(blk.mask))+1 > maxQ {
					return false
				}
				if blk.cnotOnly && in.op == opCNOT && len(pend[other]) == 0 {
					return true
				}
				return blk.cost+pendCost(other)+instrCost(in.op) >= u8FuseCost
			}
			if bb == nil && grow(ba, b) {
				absorb(ba, b)
				addMember(ba, idx, in.op)
				continue
			}
			if ba == nil && grow(bb, a) {
				absorb(bb, a)
				addMember(bb, idx, in.op)
				continue
			}
			closeBlk(ba)
			closeBlk(bb)
			nb := &block{open: true, cnotOnly: in.op == opCNOT}
			absorb(nb, a)
			absorb(nb, b)
			nb.members = append(nb.members, idx)
			nb.cost += instrCost(in.op)
			memberOf[idx] = nb
			blocks = append(blocks, nb)
		default: // opEmbed, opEmbedAll, opDiagN: full-width barriers
			for q := 0; q < nq; q++ {
				closeBlk(owner[q])
				pend[q] = pend[q][:0]
			}
		}
	}
	// Blocks that absorbed nothing stay in their original single-instr form,
	// as do CNOT-only pair blocks at level 3: a dense 4×4 costs more than
	// the swap passes it would replace, and the permutation path needs a
	// third qubit to pay off.
	for _, b := range blocks {
		if len(b.members) < 2 || (maxQ > 2 && b.cnotOnly && !triple(b)) {
			for _, m := range b.members {
				memberOf[m] = nil
			}
			b.members = b.members[:0]
		}
		sort.Ints(b.members)
	}
	out := p.ins[:0:0]
	for idx := range p.ins {
		b := memberOf[idx]
		if b == nil {
			out = append(out, p.ins[idx])
			continue
		}
		if idx != b.members[len(b.members)-1] {
			continue
		}
		var gates []Gate
		for _, m := range b.members {
			gates = append(gates, p.ins[m].gates...)
		}
		qs := maskQubits(b.mask)
		switch {
		case len(qs) == 2:
			out = append(out, instr{op: opU4, q: qs[0], c: qs[1], gates: gates})
		case b.cnotOnly:
			in := instr{
				op: opPerm8, q: qs[0], c: qs[1], q2: qs[2], gates: gates,
				perm: cnotPerm8(gates, qs[0], qs[1], qs[2]),
			}
			in.cycles, in.invCycles = permCycles(in.perm)
			out = append(out, in)
		default:
			out = append(out, instr{op: opU8, q: qs[0], c: qs[1], q2: qs[2], gates: gates})
		}
	}
	p.ins = out
}

// cnotPerm8 composes a CNOT sequence on the triple (qa, qb, qc) into one
// local basis permutation P with new[P[j]] = old[j].
func cnotPerm8(gates []Gate, qa, qb, qc int) [8]uint8 {
	var perm [8]uint8
	for j := range perm {
		perm[j] = uint8(j)
	}
	for _, g := range gates {
		pc, pt := localBit3(g.C, qa, qb, qc), localBit3(g.Q, qa, qb, qc)
		for j := range perm {
			if perm[j]&(1<<pc) != 0 {
				perm[j] ^= 1 << pt
			}
		}
	}
	return perm
}

// permCycles decomposes a local permutation into its non-trivial cycles
// (each cycle c satisfies perm[c[i]] = c[(i+1) mod len]) and the reversed
// cycles of the inverse permutation. Fixed points are omitted, so the
// execution kernels never touch amplitudes the block leaves in place.
func permCycles(perm [8]uint8) (cycles, inv [][]uint8) {
	var seen [8]bool
	for s := 0; s < 8; s++ {
		if seen[s] || int(perm[s]) == s {
			continue
		}
		var cyc []uint8
		for j := uint8(s); !seen[j]; j = perm[j] {
			seen[j] = true
			cyc = append(cyc, j)
		}
		cycles = append(cycles, cyc)
		rev := make([]uint8, len(cyc))
		for i, v := range cyc {
			rev[len(cyc)-1-i] = v
		}
		inv = append(inv, rev)
	}
	return cycles, inv
}

// maskQubits lists the set bits of a qubit mask in ascending order.
func maskQubits(mask int) []int {
	var qs []int
	for q := 0; mask != 0; q++ {
		if mask&1 != 0 {
			qs = append(qs, q)
		}
		mask >>= 1
	}
	return qs
}

// fuseSingleTriples groups consecutive surviving single-qubit instructions
// on three distinct qubits into one Kronecker-structured triple (opU2x3):
// the executor applies all three 2×2 factors during a single pass over each
// 8-amplitude group, trading nothing arithmetically (the factors act on
// disjoint qubits) for a 3× reduction in memory passes and dispatches. This
// is what collapses rotation layers that pair/triple entangler fusion cannot
// touch — e.g. Cross-Mesh's per-layer RX wall in front of the fused
// diagonal mesh. Runs shorter than three stay as-is.
func (p *Program) fuseSingleTriples() {
	out := p.ins[:0:0]
	var run []int // pending single-qubit instr indices on distinct qubits
	flush := func() {
		for _, m := range run {
			out = append(out, p.ins[m])
		}
		run = run[:0]
	}
	emit := func() {
		qs := []int{p.ins[run[0]].q, p.ins[run[1]].q, p.ins[run[2]].q}
		sort.Ints(qs)
		var gates []Gate
		logDeriv := true
		for _, m := range run {
			gates = append(gates, p.ins[m].gates...)
			if g := p.ins[m].gates; len(g) != 1 || g[0].P < 0 || !isSingleQubit(g[0]) {
				logDeriv = false
			}
		}
		out = append(out, instr{
			op: opU2x3, q: qs[0], c: qs[1], q2: qs[2], gates: gates, logDeriv: logDeriv,
		})
		run = run[:0]
	}
	for idx := range p.ins {
		in := &p.ins[idx]
		if in.op != opU2 && in.op != opDiag {
			flush()
			out = append(out, p.ins[idx])
			continue
		}
		for _, m := range run {
			if p.ins[m].q == in.q {
				flush() // same-qubit clash: close the run, start a new one
				break
			}
		}
		run = append(run, idx)
		if len(run) == 3 {
			emit()
		}
	}
	flush()
	p.ins = out
}

// layout assigns coefficient slots, derivative slots, parameter lists and —
// for full-register diagonals — the compile-time derivative sign tables.
func (p *Program) layout() {
	dim := 1 << p.circ.NumQubits
	for i := range p.ins {
		in := &p.ins[i]
		for _, g := range in.gates {
			if g.P >= 0 {
				in.params = append(in.params, g.P)
			}
		}
		switch in.op {
		case opU2:
			in.slot = p.ncoef
			p.ncoef += 8
			in.dslot = p.nderiv
			p.nderiv += 8 * len(in.params)
		case opDiag, opCtrlDiag:
			in.slot = p.ncoef
			p.ncoef += 4
		case opU4:
			in.slot = p.ncoef
			p.ncoef += 32
			in.dslot = p.nderiv
			p.nderiv += 32 * len(in.params)
		case opU8:
			in.slot = p.ncoef
			p.ncoef += 128
			in.dslot = p.nderiv
			p.nderiv += 128 * len(in.params)
		case opU2x3:
			// Three 2×2 factors in ascending-qubit order; each parameter's
			// derivative is the 2×2 derivative of its own factor. The
			// log-derivative adjoint reads gradients off the recovered
			// states instead, so those triples need no derivative slots.
			in.slot = p.ncoef
			p.ncoef += 24
			if !in.logDeriv {
				in.dslot = p.nderiv
				p.nderiv += 8 * len(in.params)
			}
		case opDiagN:
			in.slot = p.ncoef
			p.ncoef += 2 * dim
			in.tslot = p.ndiag
			p.ndiag++
			in.signs = make([]int8, len(in.params)*dim)
			pi := 0
			for _, g := range in.gates {
				if g.P < 0 {
					continue
				}
				row := in.signs[pi*dim : (pi+1)*dim]
				tMask := 1 << g.Q
				cMask := 0
				if g.Kind == CRZ {
					cMask = 1 << g.C
				}
				for j := 0; j < dim; j++ {
					if cMask != 0 && j&cMask == 0 {
						continue
					}
					if j&tMask == 0 {
						row[j] = 1
					} else {
						row[j] = -1
					}
				}
				pi++
			}
		}
	}
}

// mat2 is a 2×2 complex matrix as interleaved re/im pairs, row-major:
// [u00r, u00i, u01r, u01i, u10r, u10i, u11r, u11i].
type mat2 [8]float64

var ident2 = mat2{1, 0, 0, 0, 0, 0, 1, 0}

// gateMat2 returns the 2×2 matrix of a single-qubit rotation gate.
func gateMat2(g Gate, theta []float64) mat2 {
	c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
	switch g.Kind {
	case RX:
		return mat2{c, 0, 0, -s, 0, -s, c, 0}
	case RY:
		return mat2{c, 0, -s, 0, s, 0, c, 0}
	case RZ:
		return mat2{c, -s, 0, 0, 0, 0, c, s}
	}
	panic("qsim: gateMat2 on non-single-qubit gate")
}

// dgateMat2 returns dU/dθ of a single-qubit rotation gate.
func dgateMat2(g Gate, theta []float64) mat2 {
	c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
	switch g.Kind {
	case RX:
		return mat2{-s / 2, 0, 0, -c / 2, 0, -c / 2, -s / 2, 0}
	case RY:
		return mat2{-s / 2, 0, -c / 2, 0, c / 2, 0, -s / 2, 0}
	case RZ:
		return mat2{-s / 2, -c / 2, 0, 0, 0, 0, -s / 2, c / 2}
	}
	panic("qsim: dgateMat2 on non-single-qubit gate")
}

// mul2 returns a·b.
func mul2(a, b mat2) mat2 {
	var out mat2
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			var re, im float64
			for k := 0; k < 2; k++ {
				ar, ai := a[r*4+k*2], a[r*4+k*2+1]
				br, bi := b[k*4+c*2], b[k*4+c*2+1]
				re += ar*br - ai*bi
				im += ar*bi + ai*br
			}
			out[r*4+c*2], out[r*4+c*2+1] = re, im
		}
	}
	return out
}

// mat4 is a 4×4 complex matrix as interleaved re/im pairs, row-major; the
// local basis index of the 4-dim subspace has the pair's low qubit as bit 0.
type mat4 [32]float64

var ident4 = mat4{
	1, 0, 0, 0, 0, 0, 0, 0,
	0, 0, 1, 0, 0, 0, 0, 0,
	0, 0, 0, 0, 1, 0, 0, 0,
	0, 0, 0, 0, 0, 0, 1, 0,
}

// mul4 returns a·b.
func mul4(a, b mat4) mat4 {
	var out mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var re, im float64
			for k := 0; k < 4; k++ {
				ar, ai := a[(r*4+k)*2], a[(r*4+k)*2+1]
				br, bi := b[(k*4+c)*2], b[(k*4+c)*2+1]
				re += ar*br - ai*bi
				im += ar*bi + ai*br
			}
			out[(r*4+c)*2], out[(r*4+c)*2+1] = re, im
		}
	}
	return out
}

// embed2in4 lifts a 2×2 matrix acting on local bit pos (0 or 1) into the
// 4-dim pair subspace.
func embed2in4(u mat2, pos int) mat4 {
	var out mat4
	mask := 1 << pos
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if r&^mask != c&^mask {
				continue
			}
			rb, cb := (r>>pos)&1, (c>>pos)&1
			out[(r*4+c)*2] = u[rb*4+cb*2]
			out[(r*4+c)*2+1] = u[rb*4+cb*2+1]
		}
	}
	return out
}

// localBit returns the local bit position of qubit q within pair (qa, qb).
func localBit(q, qa, qb int) int {
	if q == qa {
		return 0
	}
	if q == qb {
		return 1
	}
	panic("qsim: gate qubit outside fused pair")
}

// mat8 is an 8×8 complex matrix as interleaved re/im pairs, row-major; the
// local basis index has the triple's lowest qubit as bit 0.
type mat8 [128]float64

var ident8 = func() mat8 {
	var m mat8
	for i := 0; i < 8; i++ {
		m[(i*8+i)*2] = 1
	}
	return m
}()

// mul8 returns a·b.
func mul8(a, b mat8) mat8 {
	var out mat8
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			var re, im float64
			for k := 0; k < 8; k++ {
				ar, ai := a[(r*8+k)*2], a[(r*8+k)*2+1]
				br, bi := b[(k*8+c)*2], b[(k*8+c)*2+1]
				re += ar*br - ai*bi
				im += ar*bi + ai*br
			}
			out[(r*8+c)*2], out[(r*8+c)*2+1] = re, im
		}
	}
	return out
}

// embed2in8 lifts a 2×2 matrix acting on local bit pos (0, 1 or 2) into the
// 8-dim triple subspace.
func embed2in8(u mat2, pos int) mat8 {
	var out mat8
	mask := 1 << pos
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if r&^mask != c&^mask {
				continue
			}
			rb, cb := (r>>pos)&1, (c>>pos)&1
			out[(r*8+c)*2] = u[rb*4+cb*2]
			out[(r*8+c)*2+1] = u[rb*4+cb*2+1]
		}
	}
	return out
}

// localBit3 returns the local bit position of qubit q within the triple
// (qa, qb, qc), qa < qb < qc.
func localBit3(q, qa, qb, qc int) int {
	switch q {
	case qa:
		return 0
	case qb:
		return 1
	case qc:
		return 2
	}
	panic("qsim: gate qubit outside fused triple")
}

// gateMat8 returns the 8×8 matrix of gate g within the triple (qa, qb, qc).
func gateMat8(g Gate, theta []float64, qa, qb, qc int) mat8 {
	switch g.Kind {
	case RX, RY, RZ:
		return embed2in8(gateMat2(g, theta), localBit3(g.Q, qa, qb, qc))
	case CNOT:
		pc, pt := localBit3(g.C, qa, qb, qc), localBit3(g.Q, qa, qb, qc)
		var m mat8
		for col := 0; col < 8; col++ {
			row := col
			if col&(1<<pc) != 0 {
				row = col ^ (1 << pt)
			}
			m[(row*8+col)*2] = 1
		}
		return m
	case CRZ:
		c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
		pc, pt := localBit3(g.C, qa, qb, qc), localBit3(g.Q, qa, qb, qc)
		var m mat8
		for j := 0; j < 8; j++ {
			switch {
			case j&(1<<pc) == 0:
				m[(j*8+j)*2] = 1
			case j&(1<<pt) == 0:
				m[(j*8+j)*2], m[(j*8+j)*2+1] = c, -s
			default:
				m[(j*8+j)*2], m[(j*8+j)*2+1] = c, s
			}
		}
		return m
	}
	panic("qsim: gateMat8 on unsupported gate")
}

// dgateMat8 returns dU/dθ of gate g within the triple (qa, qb, qc).
func dgateMat8(g Gate, theta []float64, qa, qb, qc int) mat8 {
	if g.Kind == CRZ {
		c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
		pc, pt := localBit3(g.C, qa, qb, qc), localBit3(g.Q, qa, qb, qc)
		var m mat8
		for j := 0; j < 8; j++ {
			if j&(1<<pc) == 0 {
				continue
			}
			if j&(1<<pt) == 0 {
				m[(j*8+j)*2], m[(j*8+j)*2+1] = -s/2, -c/2
			} else {
				m[(j*8+j)*2], m[(j*8+j)*2+1] = -s/2, c/2
			}
		}
		return m
	}
	return embed2in8(dgateMat2(g, theta), localBit3(g.Q, qa, qb, qc))
}

// gateMat4 returns the 4×4 matrix of gate g within the pair (qa, qb).
func gateMat4(g Gate, theta []float64, qa, qb int) mat4 {
	switch g.Kind {
	case RX, RY, RZ:
		return embed2in4(gateMat2(g, theta), localBit(g.Q, qa, qb))
	case CNOT:
		pc, pt := localBit(g.C, qa, qb), localBit(g.Q, qa, qb)
		var m mat4
		for col := 0; col < 4; col++ {
			row := col
			if col&(1<<pc) != 0 {
				row = col ^ (1 << pt)
			}
			m[(row*4+col)*2] = 1
		}
		return m
	case CRZ:
		c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
		pc, pt := localBit(g.C, qa, qb), localBit(g.Q, qa, qb)
		var m mat4
		for j := 0; j < 4; j++ {
			switch {
			case j&(1<<pc) == 0:
				m[(j*4+j)*2] = 1
			case j&(1<<pt) == 0:
				m[(j*4+j)*2], m[(j*4+j)*2+1] = c, -s
			default:
				m[(j*4+j)*2], m[(j*4+j)*2+1] = c, s
			}
		}
		return m
	}
	panic("qsim: gateMat4 on unsupported gate")
}

// dgateMat4 returns dU/dθ of gate g within the pair (qa, qb).
func dgateMat4(g Gate, theta []float64, qa, qb int) mat4 {
	if g.Kind == CRZ {
		c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
		pc, pt := localBit(g.C, qa, qb), localBit(g.Q, qa, qb)
		var m mat4
		for j := 0; j < 4; j++ {
			if j&(1<<pc) == 0 {
				continue
			}
			if j&(1<<pt) == 0 {
				m[(j*4+j)*2], m[(j*4+j)*2+1] = -s/2, -c/2
			} else {
				m[(j*4+j)*2], m[(j*4+j)*2+1] = -s/2, c/2
			}
		}
		return m
	}
	return embed2in4(dgateMat2(g, theta), localBit(g.Q, qa, qb))
}

// FillCoeffs refreshes the forward coefficient slots for the given
// parameters; dst must have at least NumCoeffs elements. For a fused run
// g1, g2, …, gk (in application order) the slot holds the product
// U_k·…·U_2·U_1.
func (p *Program) FillCoeffs(theta, dst []float64) {
	dim := 1 << p.circ.NumQubits
	for _, in := range p.ins {
		switch in.op {
		case opU2:
			u := gateMat2(in.gates[0], theta)
			for _, g := range in.gates[1:] {
				u = mul2(gateMat2(g, theta), u)
			}
			copy(dst[in.slot:in.slot+8], u[:])
		case opDiag, opCtrlDiag:
			// Product of diag(e^{−iθ/2}, e^{+iθ/2}) phases: half-angles add.
			var sum float64
			for _, g := range in.gates {
				sum += theta[g.P]
			}
			c, s := cosHalf(sum), sinHalf(sum)
			dst[in.slot] = c
			dst[in.slot+1] = -s
			dst[in.slot+2] = c
			dst[in.slot+3] = s
		case opU4:
			u := gateMat4(in.gates[0], theta, in.q, in.c)
			for _, g := range in.gates[1:] {
				u = mul4(gateMat4(g, theta, in.q, in.c), u)
			}
			copy(dst[in.slot:in.slot+32], u[:])
		case opU8:
			u := gateMat8(in.gates[0], theta, in.q, in.c, in.q2)
			for _, g := range in.gates[1:] {
				u = mul8(gateMat8(g, theta, in.q, in.c, in.q2), u)
			}
			copy(dst[in.slot:in.slot+128], u[:])
		case opU2x3:
			// Three independent factors: each is the product of the fused
			// run's gates on its own qubit (the factors commute, so splitting
			// the stream-ordered gate list per qubit is exact).
			for f, q := range [3]int{in.q, in.c, in.q2} {
				u := ident2
				for _, g := range in.gates {
					if g.Q == q {
						u = mul2(gateMat2(g, theta), u)
					}
				}
				copy(dst[in.slot+8*f:in.slot+8*f+8], u[:])
			}
		case opDiagN:
			// Per-basis half-angle accumulation via the sign table, then one
			// cos/sin per basis state: phase_j = exp(−i·Σ s_pj·θ_p/2).
			ph := dst[in.slot : in.slot+2*dim]
			for j := 0; j < dim; j++ {
				ph[2*j] = 0
			}
			for pi, pidx := range in.params {
				row := in.signs[pi*dim : (pi+1)*dim]
				half := theta[pidx] / 2
				for j := 0; j < dim; j++ {
					ph[2*j] += float64(row[j]) * half
				}
			}
			for j := 0; j < dim; j++ {
				a := ph[2*j]
				ph[2*j] = math.Cos(a)
				ph[2*j+1] = -math.Sin(a)
			}
		}
	}
}

// FillDerivCoeffs refreshes the backward derivative slots: for every
// parametrized source gate i of a fused unitary U = G_k·…·G_1 it stores
// dU/dθ_i = G_k·…·G_{i+1}·(dG_i/dθ)·G_{i-1}·…·G_1, so the adjoint kernel
// can take every gradient of a fused block in a single traversal. dst must
// have at least nderiv elements. Only gradient passes pay this cost.
func (p *Program) FillDerivCoeffs(theta, dst []float64) {
	for _, in := range p.ins {
		if len(in.params) == 0 {
			continue
		}
		switch in.op {
		case opU2:
			if in.logDeriv {
				continue // the adjoint fast path never reads these slots
			}
			k := len(in.gates)
			mats := make([]mat2, k)
			for i, g := range in.gates {
				mats[i] = gateMat2(g, theta)
			}
			suf := make([]mat2, k)
			suf[k-1] = ident2
			for i := k - 2; i >= 0; i-- {
				suf[i] = mul2(suf[i+1], mats[i+1])
			}
			pre := ident2
			di := 0
			for i, g := range in.gates {
				if g.P >= 0 {
					d := mul2(suf[i], mul2(dgateMat2(g, theta), pre))
					copy(dst[in.dslot+8*di:in.dslot+8*di+8], d[:])
					di++
				}
				pre = mul2(mats[i], pre)
			}
		case opU4:
			if in.logDeriv {
				continue // the adjoint fast path never reads these slots
			}
			k := len(in.gates)
			mats := make([]mat4, k)
			for i, g := range in.gates {
				mats[i] = gateMat4(g, theta, in.q, in.c)
			}
			suf := make([]mat4, k)
			suf[k-1] = ident4
			for i := k - 2; i >= 0; i-- {
				suf[i] = mul4(suf[i+1], mats[i+1])
			}
			pre := ident4
			di := 0
			for i, g := range in.gates {
				if g.P >= 0 {
					d := mul4(suf[i], mul4(dgateMat4(g, theta, in.q, in.c), pre))
					copy(dst[in.dslot+32*di:in.dslot+32*di+32], d[:])
					di++
				}
				pre = mul4(mats[i], pre)
			}
		case opU8:
			k := len(in.gates)
			mats := make([]mat8, k)
			for i, g := range in.gates {
				mats[i] = gateMat8(g, theta, in.q, in.c, in.q2)
			}
			suf := make([]mat8, k)
			suf[k-1] = ident8
			for i := k - 2; i >= 0; i-- {
				suf[i] = mul8(suf[i+1], mats[i+1])
			}
			pre := ident8
			di := 0
			for i, g := range in.gates {
				if g.P >= 0 {
					d := mul8(suf[i], mul8(dgateMat8(g, theta, in.q, in.c, in.q2), pre))
					copy(dst[in.dslot+128*di:in.dslot+128*di+128], d[:])
					di++
				}
				pre = mul8(mats[i], pre)
			}
		case opU2x3:
			if in.logDeriv {
				continue // the adjoint fast path never reads these slots
			}
			// Each parameter's derivative slot holds the 2×2 derivative of
			// its own factor, in the instruction's global parameter order
			// (the gate walk below matches how layout() collected params).
			for _, q := range [3]int{in.q, in.c, in.q2} {
				// Per-factor run derivative: same algorithm as opU2 but over
				// the subsequence of gates on qubit q.
				var fgates []Gate
				var ords []int
				di := 0
				for _, g := range in.gates {
					if g.Q == q {
						fgates = append(fgates, g)
						ords = append(ords, di)
					}
					if g.P >= 0 {
						di++
					}
				}
				k := len(fgates)
				if k == 0 {
					continue
				}
				mats := make([]mat2, k)
				for i, g := range fgates {
					mats[i] = gateMat2(g, theta)
				}
				suf := make([]mat2, k)
				suf[k-1] = ident2
				for i := k - 2; i >= 0; i-- {
					suf[i] = mul2(suf[i+1], mats[i+1])
				}
				pre := ident2
				for i, g := range fgates {
					if g.P >= 0 {
						d := mul2(suf[i], mul2(dgateMat2(g, theta), pre))
						copy(dst[in.dslot+8*ords[i]:in.dslot+8*ords[i]+8], d[:])
					}
					pre = mul2(mats[i], pre)
				}
			}
		}
	}
}
