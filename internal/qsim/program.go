package qsim

import (
	"math"
	"sort"
)

// This file is the compile stage of the compile/execute split: it lowers a
// Circuit plus its RX angle embedding into a flat instruction stream the
// fused engine can stream sample-block by sample-block.
//
// Lowering runs up to two fusion passes:
//
// Pass 1 (level ≥ 1) fuses runs of adjacent single-qubit gates on the same
// qubit into a single 2×2 unitary, collapses all-diagonal runs (RZ chains)
// into one phase pair, and merges consecutive CRZ gates sharing a
// control/target pair.
//
// Pass 2 (level ≥ 2) fuses entangler blocks. Consecutive runs of diagonal
// instructions — CRZ meshes, whatever their control/target pairs — collapse
// into one full-register diagonal super-op (opDiagN) whose per-basis phases
// and per-parameter derivative signs are laid out at compile time. Remaining
// two-qubit gates (CNOT-conjugated diagonals and adjacent two-qubit runs)
// greedily absorb the neighbouring single-qubit runs on their qubit pair
// into fused 4×4 super-ops (opU4). The per-qubit embedding walk is replaced
// by a single fused embedding instruction (opEmbedAll) so forward and
// adjoint passes stream one instruction sequence end-to-end.
//
// Instruction operands live in coefficient slots that are refreshed from
// theta once per pass — per-gate trigonometry is paid once per program
// execution, not once per sample. Backward derivative operands (the dU/dθ
// matrices of fused unitaries) live in a separate slot array filled only
// when a gradient pass runs.

// opcode enumerates fused-program instructions.
type opcode uint8

const (
	opEmbed    opcode = iota // per-sample RX embedding on qubit Q (level-1)
	opEmbedAll               // fused whole-register embedding block (level-2)
	opU2                     // 2×2 unitary on Q; 8 coefficient floats
	opDiag                   // diag(p0, p1) on Q; 4 coefficient floats
	opCNOT                   // CNOT control C, target Q; no coefficients
	opCtrlDiag               // diag(p0, p1) on Q over control-set C; 4 floats
	opU4                     // 4×4 unitary on qubit pair (Q=low, C=high); 32 floats
	opDiagN                  // full-register diagonal; 2·dim floats
)

// instr is one fused instruction. slot indexes the program's forward
// coefficient array and dslot the backward derivative array; gates are the
// source gates the instruction was fused from, kept to refresh the slots
// when theta changes.
type instr struct {
	op     opcode
	q, c   int // primary/secondary qubit (meaning depends on op; -1 unused)
	slot   int
	dslot  int
	tslot  int    // opDiagN: index of this instr's gradient accumulator
	gates  []Gate // source gates in application order
	params []int  // theta indices of parametrized source gates, in order
	signs  []int8 // opDiagN: per (param, basis) derivative sign in {-1,0,+1}
}

// segment mirrors the forward phase structure at per-gate granularity for
// the level-1 adjoint backward walk, which runs per source gate. Level-2
// programs drive the backward from the fused instruction stream instead and
// carry no segments.
type segment struct {
	embed bool
	gates []Gate // nil for embedding segments
}

// Program is a compiled circuit: the fused instruction stream (driving both
// the forward and — at level 2 — the adjoint backward), the level-1 per-gate
// segment list, and the coefficient-slot layout. Compilation depends only on
// circuit structure; coefficients are filled per pass by FillCoeffs and
// FillDerivCoeffs.
type Program struct {
	circ   *Circuit
	level  int
	ins    []instr
	segs   []segment // level-1 backward walk only
	ncoef  int       // forward coefficient floats
	nderiv int       // backward derivative floats
	ndiag  int       // number of opDiagN instructions (gradient accumulators)
}

// CompileProgram lowers circ (and its embedding placement, honouring data
// re-uploading) into a fused program with full (level-2) entangler fusion.
func CompileProgram(circ *Circuit) *Program { return CompileProgramLevel(circ, 2) }

// CompileProgramV1 compiles with only the first fusion pass (single-qubit
// runs and same-pair diagonal merges) — the PR-1 compiler, kept as an A/B
// comparator behind EngineFusedV1.
func CompileProgramV1(circ *Circuit) *Program { return CompileProgramLevel(circ, 1) }

// CompileProgramLevel compiles circ at the given fusion level (1 or 2).
func CompileProgramLevel(circ *Circuit, level int) *Program {
	p := &Program{circ: circ, level: level}
	if circ.Reupload && circ.Layers > 0 {
		for l := 0; l < circ.Layers; l++ {
			p.addEmbed()
			p.addGates(circ.LayerSlice(l))
		}
	} else {
		p.addEmbed()
		p.addGates(circ.Gates)
	}
	if level >= 2 {
		p.fuseDiagRuns()
		p.fusePairs()
	}
	p.layout()
	return p
}

// Level reports the fusion level the program was compiled at.
func (p *Program) Level() int { return p.level }

// NumInstructions reports the fused instruction stream length (embedding ops
// included) — the quantity gate fusion shrinks.
func (p *Program) NumInstructions() int { return len(p.ins) }

// NumCoeffs reports the forward coefficient-slot floats a pass must provide.
func (p *Program) NumCoeffs() int { return p.ncoef }

func (p *Program) addEmbed() {
	if p.level >= 2 {
		p.ins = append(p.ins, instr{op: opEmbedAll, q: -1, c: -1})
		return
	}
	p.segs = append(p.segs, segment{embed: true})
	for q := 0; q < p.circ.NumQubits; q++ {
		p.ins = append(p.ins, instr{op: opEmbed, q: q, c: -1})
	}
}

func isSingleQubit(g Gate) bool {
	return g.Kind == RX || g.Kind == RY || g.Kind == RZ
}

func (p *Program) addGates(gates []Gate) {
	if len(gates) == 0 {
		return
	}
	if p.level < 2 {
		p.segs = append(p.segs, segment{gates: gates})
	}
	for i := 0; i < len(gates); {
		g := gates[i]
		switch {
		case isSingleQubit(g):
			j := i + 1
			for j < len(gates) && isSingleQubit(gates[j]) && gates[j].Q == g.Q {
				j++
			}
			run := gates[i:j]
			allDiag := true
			for _, r := range run {
				if r.Kind != RZ {
					allDiag = false
					break
				}
			}
			if allDiag {
				p.ins = append(p.ins, instr{op: opDiag, q: g.Q, c: -1, gates: run})
			} else {
				p.ins = append(p.ins, instr{op: opU2, q: g.Q, c: -1, gates: run})
			}
			i = j
		case g.Kind == CNOT:
			p.ins = append(p.ins, instr{op: opCNOT, q: g.Q, c: g.C, gates: gates[i : i+1]})
			i++
		default: // CRZ
			j := i + 1
			for j < len(gates) && gates[j].Kind == CRZ && gates[j].Q == g.Q && gates[j].C == g.C {
				j++
			}
			p.ins = append(p.ins, instr{op: opCtrlDiag, q: g.Q, c: g.C, gates: gates[i:j]})
			i = j
		}
	}
}

// fuseDiagRuns collapses every run of ≥2 consecutive diagonal instructions
// (RZ chains, CRZ meshes — regardless of control/target pairs, since all
// diagonal operators commute) into one full-register diagonal super-op.
func (p *Program) fuseDiagRuns() {
	isDiag := func(op opcode) bool { return op == opDiag || op == opCtrlDiag }
	out := p.ins[:0:0]
	for i := 0; i < len(p.ins); {
		if !isDiag(p.ins[i].op) {
			out = append(out, p.ins[i])
			i++
			continue
		}
		j := i
		var gates []Gate
		for j < len(p.ins) && isDiag(p.ins[j].op) {
			gates = append(gates, p.ins[j].gates...)
			j++
		}
		if j-i >= 2 {
			out = append(out, instr{op: opDiagN, q: -1, c: -1, gates: gates})
		} else {
			out = append(out, p.ins[i])
		}
		i = j
	}
	p.ins = out
}

// fusePairs greedily fuses each two-qubit instruction with the neighbouring
// single-qubit runs on its qubit pair — and with adjacent two-qubit
// instructions on the same pair — into one 4×4 super-op. A fused block stays
// open while the stream touches neither of its qubits; any instruction
// touching exactly one of them closes it. The fused instruction is emitted
// at the position of the block's last member: every non-member between two
// members touches neither block qubit (or the block would have closed), so
// it commutes with the whole block and the move is exact.
func (p *Program) fusePairs() {
	nq := p.circ.NumQubits
	type block struct {
		qa, qb  int // qa < qb; qa is local bit 0 of the 4-dim subspace
		members []int
		open    bool
	}
	owner := make([]*block, nq)
	pend := make([][]int, nq)
	memberOf := make([]*block, len(p.ins))
	var blocks []*block
	closeBlk := func(b *block) {
		if b == nil || !b.open {
			return
		}
		b.open = false
		if owner[b.qa] == b {
			owner[b.qa] = nil
		}
		if owner[b.qb] == b {
			owner[b.qb] = nil
		}
	}
	for idx := range p.ins {
		in := &p.ins[idx]
		switch in.op {
		case opU2, opDiag:
			q := in.q
			if b := owner[q]; b != nil {
				b.members = append(b.members, idx)
				memberOf[idx] = b
			} else {
				pend[q] = append(pend[q], idx)
			}
		case opCNOT, opCtrlDiag:
			a, b := in.q, in.c
			if blk := owner[a]; blk != nil && blk == owner[b] {
				blk.members = append(blk.members, idx)
				memberOf[idx] = blk
				continue
			}
			closeBlk(owner[a])
			closeBlk(owner[b])
			nb := &block{qa: min(a, b), qb: max(a, b), open: true}
			nb.members = append(nb.members, pend[a]...)
			nb.members = append(nb.members, pend[b]...)
			sort.Ints(nb.members)
			nb.members = append(nb.members, idx)
			pend[a], pend[b] = pend[a][:0], pend[b][:0]
			for _, m := range nb.members {
				memberOf[m] = nb
			}
			owner[a], owner[b] = nb, nb
			blocks = append(blocks, nb)
		default: // opEmbed, opEmbedAll, opDiagN: full-width barriers
			for q := 0; q < nq; q++ {
				closeBlk(owner[q])
				pend[q] = pend[q][:0]
			}
		}
	}
	// Blocks that absorbed nothing stay in their original single-instr form.
	for _, b := range blocks {
		if len(b.members) < 2 {
			for _, m := range b.members {
				memberOf[m] = nil
			}
		}
	}
	out := p.ins[:0:0]
	for idx := range p.ins {
		b := memberOf[idx]
		if b == nil {
			out = append(out, p.ins[idx])
			continue
		}
		if idx != b.members[len(b.members)-1] {
			continue
		}
		var gates []Gate
		for _, m := range b.members {
			gates = append(gates, p.ins[m].gates...)
		}
		out = append(out, instr{op: opU4, q: b.qa, c: b.qb, gates: gates})
	}
	p.ins = out
}

// layout assigns coefficient slots, derivative slots, parameter lists and —
// for full-register diagonals — the compile-time derivative sign tables.
func (p *Program) layout() {
	dim := 1 << p.circ.NumQubits
	for i := range p.ins {
		in := &p.ins[i]
		for _, g := range in.gates {
			if g.P >= 0 {
				in.params = append(in.params, g.P)
			}
		}
		switch in.op {
		case opU2:
			in.slot = p.ncoef
			p.ncoef += 8
			in.dslot = p.nderiv
			p.nderiv += 8 * len(in.params)
		case opDiag, opCtrlDiag:
			in.slot = p.ncoef
			p.ncoef += 4
		case opU4:
			in.slot = p.ncoef
			p.ncoef += 32
			in.dslot = p.nderiv
			p.nderiv += 32 * len(in.params)
		case opDiagN:
			in.slot = p.ncoef
			p.ncoef += 2 * dim
			in.tslot = p.ndiag
			p.ndiag++
			in.signs = make([]int8, len(in.params)*dim)
			pi := 0
			for _, g := range in.gates {
				if g.P < 0 {
					continue
				}
				row := in.signs[pi*dim : (pi+1)*dim]
				tMask := 1 << g.Q
				cMask := 0
				if g.Kind == CRZ {
					cMask = 1 << g.C
				}
				for j := 0; j < dim; j++ {
					if cMask != 0 && j&cMask == 0 {
						continue
					}
					if j&tMask == 0 {
						row[j] = 1
					} else {
						row[j] = -1
					}
				}
				pi++
			}
		}
	}
}

// mat2 is a 2×2 complex matrix as interleaved re/im pairs, row-major:
// [u00r, u00i, u01r, u01i, u10r, u10i, u11r, u11i].
type mat2 [8]float64

var ident2 = mat2{1, 0, 0, 0, 0, 0, 1, 0}

// gateMat2 returns the 2×2 matrix of a single-qubit rotation gate.
func gateMat2(g Gate, theta []float64) mat2 {
	c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
	switch g.Kind {
	case RX:
		return mat2{c, 0, 0, -s, 0, -s, c, 0}
	case RY:
		return mat2{c, 0, -s, 0, s, 0, c, 0}
	case RZ:
		return mat2{c, -s, 0, 0, 0, 0, c, s}
	}
	panic("qsim: gateMat2 on non-single-qubit gate")
}

// dgateMat2 returns dU/dθ of a single-qubit rotation gate.
func dgateMat2(g Gate, theta []float64) mat2 {
	c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
	switch g.Kind {
	case RX:
		return mat2{-s / 2, 0, 0, -c / 2, 0, -c / 2, -s / 2, 0}
	case RY:
		return mat2{-s / 2, 0, -c / 2, 0, c / 2, 0, -s / 2, 0}
	case RZ:
		return mat2{-s / 2, -c / 2, 0, 0, 0, 0, -s / 2, c / 2}
	}
	panic("qsim: dgateMat2 on non-single-qubit gate")
}

// mul2 returns a·b.
func mul2(a, b mat2) mat2 {
	var out mat2
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			var re, im float64
			for k := 0; k < 2; k++ {
				ar, ai := a[r*4+k*2], a[r*4+k*2+1]
				br, bi := b[k*4+c*2], b[k*4+c*2+1]
				re += ar*br - ai*bi
				im += ar*bi + ai*br
			}
			out[r*4+c*2], out[r*4+c*2+1] = re, im
		}
	}
	return out
}

// mat4 is a 4×4 complex matrix as interleaved re/im pairs, row-major; the
// local basis index of the 4-dim subspace has the pair's low qubit as bit 0.
type mat4 [32]float64

var ident4 = mat4{
	1, 0, 0, 0, 0, 0, 0, 0,
	0, 0, 1, 0, 0, 0, 0, 0,
	0, 0, 0, 0, 1, 0, 0, 0,
	0, 0, 0, 0, 0, 0, 1, 0,
}

// mul4 returns a·b.
func mul4(a, b mat4) mat4 {
	var out mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var re, im float64
			for k := 0; k < 4; k++ {
				ar, ai := a[(r*4+k)*2], a[(r*4+k)*2+1]
				br, bi := b[(k*4+c)*2], b[(k*4+c)*2+1]
				re += ar*br - ai*bi
				im += ar*bi + ai*br
			}
			out[(r*4+c)*2], out[(r*4+c)*2+1] = re, im
		}
	}
	return out
}

// embed2in4 lifts a 2×2 matrix acting on local bit pos (0 or 1) into the
// 4-dim pair subspace.
func embed2in4(u mat2, pos int) mat4 {
	var out mat4
	mask := 1 << pos
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if r&^mask != c&^mask {
				continue
			}
			rb, cb := (r>>pos)&1, (c>>pos)&1
			out[(r*4+c)*2] = u[rb*4+cb*2]
			out[(r*4+c)*2+1] = u[rb*4+cb*2+1]
		}
	}
	return out
}

// localBit returns the local bit position of qubit q within pair (qa, qb).
func localBit(q, qa, qb int) int {
	if q == qa {
		return 0
	}
	if q == qb {
		return 1
	}
	panic("qsim: gate qubit outside fused pair")
}

// gateMat4 returns the 4×4 matrix of gate g within the pair (qa, qb).
func gateMat4(g Gate, theta []float64, qa, qb int) mat4 {
	switch g.Kind {
	case RX, RY, RZ:
		return embed2in4(gateMat2(g, theta), localBit(g.Q, qa, qb))
	case CNOT:
		pc, pt := localBit(g.C, qa, qb), localBit(g.Q, qa, qb)
		var m mat4
		for col := 0; col < 4; col++ {
			row := col
			if col&(1<<pc) != 0 {
				row = col ^ (1 << pt)
			}
			m[(row*4+col)*2] = 1
		}
		return m
	case CRZ:
		c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
		pc, pt := localBit(g.C, qa, qb), localBit(g.Q, qa, qb)
		var m mat4
		for j := 0; j < 4; j++ {
			switch {
			case j&(1<<pc) == 0:
				m[(j*4+j)*2] = 1
			case j&(1<<pt) == 0:
				m[(j*4+j)*2], m[(j*4+j)*2+1] = c, -s
			default:
				m[(j*4+j)*2], m[(j*4+j)*2+1] = c, s
			}
		}
		return m
	}
	panic("qsim: gateMat4 on unsupported gate")
}

// dgateMat4 returns dU/dθ of gate g within the pair (qa, qb).
func dgateMat4(g Gate, theta []float64, qa, qb int) mat4 {
	if g.Kind == CRZ {
		c, s := cosHalf(theta[g.P]), sinHalf(theta[g.P])
		pc, pt := localBit(g.C, qa, qb), localBit(g.Q, qa, qb)
		var m mat4
		for j := 0; j < 4; j++ {
			if j&(1<<pc) == 0 {
				continue
			}
			if j&(1<<pt) == 0 {
				m[(j*4+j)*2], m[(j*4+j)*2+1] = -s/2, -c/2
			} else {
				m[(j*4+j)*2], m[(j*4+j)*2+1] = -s/2, c/2
			}
		}
		return m
	}
	return embed2in4(dgateMat2(g, theta), localBit(g.Q, qa, qb))
}

// FillCoeffs refreshes the forward coefficient slots for the given
// parameters; dst must have at least NumCoeffs elements. For a fused run
// g1, g2, …, gk (in application order) the slot holds the product
// U_k·…·U_2·U_1.
func (p *Program) FillCoeffs(theta, dst []float64) {
	dim := 1 << p.circ.NumQubits
	for _, in := range p.ins {
		switch in.op {
		case opU2:
			u := gateMat2(in.gates[0], theta)
			for _, g := range in.gates[1:] {
				u = mul2(gateMat2(g, theta), u)
			}
			copy(dst[in.slot:in.slot+8], u[:])
		case opDiag, opCtrlDiag:
			// Product of diag(e^{−iθ/2}, e^{+iθ/2}) phases: half-angles add.
			var sum float64
			for _, g := range in.gates {
				sum += theta[g.P]
			}
			c, s := cosHalf(sum), sinHalf(sum)
			dst[in.slot] = c
			dst[in.slot+1] = -s
			dst[in.slot+2] = c
			dst[in.slot+3] = s
		case opU4:
			u := gateMat4(in.gates[0], theta, in.q, in.c)
			for _, g := range in.gates[1:] {
				u = mul4(gateMat4(g, theta, in.q, in.c), u)
			}
			copy(dst[in.slot:in.slot+32], u[:])
		case opDiagN:
			// Per-basis half-angle accumulation via the sign table, then one
			// cos/sin per basis state: phase_j = exp(−i·Σ s_pj·θ_p/2).
			ph := dst[in.slot : in.slot+2*dim]
			for j := 0; j < dim; j++ {
				ph[2*j] = 0
			}
			for pi, pidx := range in.params {
				row := in.signs[pi*dim : (pi+1)*dim]
				half := theta[pidx] / 2
				for j := 0; j < dim; j++ {
					ph[2*j] += float64(row[j]) * half
				}
			}
			for j := 0; j < dim; j++ {
				a := ph[2*j]
				ph[2*j] = math.Cos(a)
				ph[2*j+1] = -math.Sin(a)
			}
		}
	}
}

// FillDerivCoeffs refreshes the backward derivative slots: for every
// parametrized source gate i of a fused unitary U = G_k·…·G_1 it stores
// dU/dθ_i = G_k·…·G_{i+1}·(dG_i/dθ)·G_{i-1}·…·G_1, so the adjoint kernel
// can take every gradient of a fused block in a single traversal. dst must
// have at least nderiv elements. Only gradient passes pay this cost.
func (p *Program) FillDerivCoeffs(theta, dst []float64) {
	for _, in := range p.ins {
		if len(in.params) == 0 {
			continue
		}
		switch in.op {
		case opU2:
			k := len(in.gates)
			mats := make([]mat2, k)
			for i, g := range in.gates {
				mats[i] = gateMat2(g, theta)
			}
			suf := make([]mat2, k)
			suf[k-1] = ident2
			for i := k - 2; i >= 0; i-- {
				suf[i] = mul2(suf[i+1], mats[i+1])
			}
			pre := ident2
			di := 0
			for i, g := range in.gates {
				if g.P >= 0 {
					d := mul2(suf[i], mul2(dgateMat2(g, theta), pre))
					copy(dst[in.dslot+8*di:in.dslot+8*di+8], d[:])
					di++
				}
				pre = mul2(mats[i], pre)
			}
		case opU4:
			k := len(in.gates)
			mats := make([]mat4, k)
			for i, g := range in.gates {
				mats[i] = gateMat4(g, theta, in.q, in.c)
			}
			suf := make([]mat4, k)
			suf[k-1] = ident4
			for i := k - 2; i >= 0; i-- {
				suf[i] = mul4(suf[i+1], mats[i+1])
			}
			pre := ident4
			di := 0
			for i, g := range in.gates {
				if g.P >= 0 {
					d := mul4(suf[i], mul4(dgateMat4(g, theta, in.q, in.c), pre))
					copy(dst[in.dslot+32*di:in.dslot+32*di+32], d[:])
					di++
				}
				pre = mul4(mats[i], pre)
			}
		}
	}
}
