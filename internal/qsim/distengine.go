package qsim

import (
	"math"

	"repro/internal/trace"
)

// This file is the qsim half of the multi-process executor: the
// coordinator-side distEngine that partitions a pass into the same fixed
// cache-block shards as the in-process sharded engine and merges results in
// shard order, and the worker-side ShardRunner that executes one shard
// bit-identically to one sharded-engine chunk. The transport between them —
// process spawning, the framed wire protocol, worker death and re-dispatch —
// lives in repro/internal/dist, which plugs in through RegisterDistBackend.
// Keeping all numerics (shard partition, execution, reduction order) in this
// package is what makes the bit-identity guarantee auditable: the dist
// subsystem only moves bytes.

// PassSpec describes one forward or backward pass to a DistBackend. All
// batch-wide arrays are full-batch, row-major n×nq (except Theta); the
// backend slices per-shard rows out with Shard. Slices may alias the
// engine's workspace and are only valid until RunPass returns.
type PassSpec struct {
	Circ *Circuit
	Prog *Program
	// Backward selects the adjoint pass; GZ/GZTans are nil on forward.
	Backward bool
	N, NQ    int
	// Block is the shard size in samples. Backward passes use the in-process
	// sharded engine's cache-block partition, so the shard-order reduction
	// is bit-compatible between the two engines; forward passes reuse the
	// same backward partition (see distEngine.Forward) so a training step's
	// forward and backward shards align 1:1 for forward-state affinity.
	Block  int
	Active [MaxTangents]bool
	Theta  []float64
	Angles []float64
	// AngleTans[k] is non-nil exactly when Active[k].
	AngleTans [MaxTangents][]float64
	GZ        []float64
	GZTans    [MaxTangents][]float64
}

// NumShards reports how many shards the pass partitions into.
func (s *PassSpec) NumShards() int { return shardCount(s.N, s.Block) }

// Shard returns the sample range [lo, hi) of shard i.
func (s *PassSpec) Shard(i int) (lo, hi int) {
	lo = i * s.Block
	hi = min(lo+s.Block, s.N)
	return lo, hi
}

// ShardResult is one shard's output. Forward fills Z/ZTans; backward fills
// the gradient fields. Row arrays cover the shard's samples only; DTheta and
// DiagT are whole-parameter-space partials that the coordinator merges in
// shard-index order.
type ShardResult struct {
	Z          []float64
	ZTans      [MaxTangents][]float64
	DAngles    []float64
	DAngleTans [MaxTangents][]float64
	DTheta     []float64
	DiagT      []float64
}

// DistBackend executes the shards of one pass on worker processes and
// returns one result per shard, indexed by shard. A backend must tolerate
// worker death by re-dispatching the dead worker's outstanding shards; it
// returns an error only when no worker can make progress.
type DistBackend interface {
	RunPass(spec *PassSpec) ([]ShardResult, error)
}

// distBackend is the registered transport. The Engine seam selects engines
// by value (EngineKind), so registration is how the dist subsystem attaches
// without qsim importing it.
var distBackend DistBackend

// RegisterDistBackend installs the transport behind EngineDist. Called from
// repro/internal/dist's init; last registration wins.
func RegisterDistBackend(b DistBackend) { distBackend = b }

// distEngine is the coordinator side of the multi-process executor. It
// reuses the sharded engine's pass preparation so the shard partition — and
// therefore the floating-point reduction order — is pinned to the same
// cache-block layout, then delegates shard execution to the registered
// DistBackend and merges results in shard order.
type distEngine struct{}

func (distEngine) Kind() EngineKind { return EngineDist }

func runDistPass(spec *PassSpec) []ShardResult {
	if distBackend == nil {
		panic(`qsim: engine "dist" selected but no transport is registered (link repro/internal/dist — it registers itself via RegisterDistBackend)`)
	}
	res, err := distBackend.RunPass(spec)
	if err != nil {
		panic("qsim: dist pass failed: " + err.Error())
	}
	return res
}

//torq:ordered-merge
func (distEngine) Forward(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64) {
	prog, _, z, ztans, _ := prepForward(p, ws, angles, angleTans, theta)
	// Partition the forward with the BACKWARD pass's block size, not the
	// forward's own: forward z/ztans are strictly per-sample (no cross-sample
	// reduction), so the partition never affects forward values, while the
	// backward partition pins the gradient reduction order. Sharing it makes
	// forward and backward shards of one training step align 1:1 by index,
	// which is what lets the transport route each backward shard to the
	// worker holding that exact shard's cached forward states.
	spec := &PassSpec{
		Circ: p.Circ, Prog: prog,
		N: ws.n, NQ: ws.nq, Block: backwardBlock(ws),
		Active: ws.active, Theta: ws.theta, Angles: ws.angles,
	}
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			spec.AngleTans[k] = ws.angleTans[k]
		}
	}
	nq := ws.nq
	results := runDistPass(spec)
	msp := trace.Begin(trace.KMerge, trace.CurrentPass())
	for s, r := range results {
		lo, hi := spec.Shard(s)
		copy(z[lo*nq:hi*nq], r.Z)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				copy(ztans[k][lo*nq:hi*nq], r.ZTans[k])
			}
		}
	}
	msp.End()
	return z, ztans
}

//torq:ordered-merge
func (distEngine) Backward(p *PQC, ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64) {
	prog := p.Program() // always level 3, like the sharded engine
	spec := &PassSpec{
		Circ: p.Circ, Prog: prog, Backward: true,
		N: ws.n, NQ: ws.nq, Block: backwardBlock(ws),
		Active: ws.active, Theta: ws.theta, Angles: ws.angles,
		GZ: gz,
	}
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			spec.AngleTans[k] = ws.angleTans[k]
			if k < len(gztans) {
				spec.GZTans[k] = gztans[k]
			}
		}
	}
	results := runDistPass(spec)
	msp := trace.Begin(trace.KMerge, trace.CurrentPass())

	// Per-sample gradients: each row belongs to exactly one shard, so the
	// worker's zero-initialized partial adds back as the same value the
	// in-process engine accumulated in place (0 + Σterms is exact).
	nq := ws.nq
	for s, r := range results {
		lo, _ := spec.Shard(s)
		for i, v := range r.DAngles {
			dAngles[lo*nq+i] += v
		}
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] || dAngleTans == nil || k >= len(dAngleTans) || dAngleTans[k] == nil {
				continue
			}
			for i, v := range r.DAngleTans[k] {
				dAngleTans[k][lo*nq+i] += v
			}
		}
	}
	// Deterministic merge, mirroring shardedEngine.Backward: dTheta partials
	// in shard order, then the fused-diagonal accumulators in shard order
	// contracted against the sign tables once per pass.
	for _, r := range results {
		for i, v := range r.DTheta {
			dTheta[i] += v
		}
	}
	if nt := prog.ndiag * ws.val.Dim; nt > 0 {
		acc := make([]float64, nt)
		for _, r := range results {
			for i, v := range r.DiagT {
				acc[i] += v
			}
		}
		reduceDiagNGrads(prog, acc, dTheta, ws.val.Dim)
	}
	msp.End()
}

// ShardRunner executes single shards of a circuit's level-3 program inside a
// worker process, bit-identically to the corresponding sharded-engine chunk:
// a shard's per-sample state evolution depends only on its own rows, and its
// partial accumulators visit samples in the same order whether the shard
// lives at batch offset lo in a big workspace or at offset 0 in a private
// one. Backward shards recompute the shard's forward states first — shards
// stay stateless between passes, which is what makes a dead worker's shard
// re-dispatchable to any survivor.
type ShardRunner struct {
	pqc  PQC
	free map[int]*shardState

	// Forward-state affinity cache: snapshots of the forward ψ-states (and
	// the exact inputs that produced them) retained by ForwardShardRetain,
	// keyed by shard index and pinned to one forward pass id. A matching
	// BackwardShardCached skips the forward recompute; SetForwardPass drops
	// every snapshot the moment the pass id moves on, so stale-pass states
	// can never leak into a later step's gradients.
	fwdPass  uint64
	fwdSnaps map[uint32]*fwdSnapshot
	snapPool []*fwdSnapshot

	// Coefficient cache: FillCoeffs/FillDerivCoeffs depend only on theta (the
	// compiled program is fixed per runner), yet one pass splits into dozens
	// of cache-block shards that all share one theta. Filling per shard would
	// redo the fused matrix products O(shards) times per pass — the dominant
	// worker overhead over the in-process engine, which fills once. The
	// runner instead fills once per distinct theta (bit-compared, so any
	// change refills) and shares the tables across every shard workspace.
	coeff      []float64
	dcoef      []float64
	coeffTheta []float64
	coeffOK    bool
	derivOK    bool
}

// fwdSnapshot is one shard's retained forward execution: deep copies of the
// post-embedding evolved states and of every input that produced them. The
// input copies make the cache self-validating — BackwardShardCached replays
// a snapshot only when the backward shard's inputs match bit for bit, so a
// mispaired pass id degrades to a recompute, never to a wrong gradient.
type fwdSnapshot struct {
	n         int
	active    [MaxTangents]bool
	angles    []float64
	angleTans [MaxTangents][]float64
	theta     []float64
	valRe     []float64
	valIm     []float64
	tanRe     [MaxTangents][]float64
	tanIm     [MaxTangents][]float64
}

// shardState is the runner's reusable per-shard-size state: the workspace
// plus every output buffer a shard produces. Shards arrive sequentially per
// session and results are copied to the wire before the next shard runs, so
// reusing the buffers keeps the per-shard hot path allocation-free instead
// of feeding the GC one garbage generation per shard.
type shardState struct {
	ws      *Workspace
	z       []float64
	ztans   [][]float64
	dAngles []float64
	dat     [][]float64
	dTheta  []float64
	diagT   []float64

	// Reused [][]float64 view headers, so the steady-state shard loop never
	// re-allocates them: tanView widens fixed tangent arrays for the engine
	// entry points, ztView carries the forward output views, datView the
	// gradient accumulator views. Each call overwrites every slot.
	tanView [][]float64
	ztView  [][]float64
	datView [][]float64
}

// NewShardRunner compiles circ at level 3 and prepares a per-shard-size
// state cache.
func NewShardRunner(circ *Circuit) *ShardRunner {
	r := &ShardRunner{
		pqc:      PQC{Circ: circ, Eng: EngineDist},
		free:     make(map[int]*shardState),
		fwdSnaps: make(map[uint32]*fwdSnapshot),
	}
	r.pqc.Program()
	return r
}

// SetForwardPass pins the forward pass the affinity cache serves. Any pass
// id change — a new forward pass opening, or a backward pass naming the
// forward it pairs with — drops every snapshot from other passes, so the
// cache holds states of at most one forward pass at a time.
func (r *ShardRunner) SetForwardPass(pass uint64) {
	if pass == r.fwdPass {
		return
	}
	//torq:allow maprange -- whole-map drain; pool recycling order never reaches results
	for s, snap := range r.fwdSnaps {
		r.snapPool = append(r.snapPool, snap)
		delete(r.fwdSnaps, s)
	}
	r.fwdPass = pass
}

// CachedForwardShards reports how many forward-state snapshots the runner
// currently holds (test and introspection hook).
func (r *ShardRunner) CachedForwardShards() int { return len(r.fwdSnaps) }

// Circuit returns the runner's circuit.
func (r *ShardRunner) Circuit() *Circuit { return r.pqc.Circ }

// Digest returns the compiled program's digest for handshake validation.
func (r *ShardRunner) Digest() ProgramDigest { return r.pqc.Program().Digest() }

func (r *ShardRunner) state(n int) *shardState {
	if s := r.free[n]; s != nil {
		return s
	}
	nq := r.pqc.Circ.NumQubits
	prog := r.pqc.Program()
	s := &shardState{
		ws:      NewWorkspace(n, nq),
		z:       make([]float64, n*nq),
		ztans:   make([][]float64, MaxTangents),
		dAngles: make([]float64, n*nq),
		dat:     make([][]float64, MaxTangents),
		dTheta:  make([]float64, r.pqc.Circ.NumParams),
		diagT:   make([]float64, prog.ndiag*(1<<nq)),
		tanView: make([][]float64, MaxTangents),
		ztView:  make([][]float64, MaxTangents),
		datView: make([][]float64, MaxTangents),
	}
	for k := 0; k < MaxTangents; k++ {
		s.ztans[k] = make([]float64, n*nq)
		s.dat[k] = make([]float64, n*nq)
	}
	r.free[n] = s
	return s
}

// ensureCoeffs installs the coefficient tables for theta into the shard
// workspace, refilling them only when theta's bit pattern differs from the
// cached fill. Shards of one session run sequentially, so the runner-owned
// tables can back every shard workspace at once; the derivative slots are
// filled lazily on the first backward shard of a theta.
func (r *ShardRunner) ensureCoeffs(ws *Workspace, theta []float64, deriv bool) (prog *Program, coeff []float64) {
	prog = r.pqc.Program()
	if !r.coeffOK || !bitsEqualF64(r.coeffTheta, theta) {
		if cap(r.coeff) < prog.ncoef {
			r.coeff = make([]float64, prog.ncoef)
		}
		prog.FillCoeffs(theta, r.coeff[:prog.ncoef])
		r.coeffTheta = append(r.coeffTheta[:0], theta...)
		r.coeffOK, r.derivOK = true, false
	}
	coeff = r.coeff[:prog.ncoef]
	ws.coeff = coeff
	if deriv && prog.nderiv > 0 {
		if !r.derivOK {
			if cap(r.dcoef) < prog.nderiv {
				r.dcoef = make([]float64, prog.nderiv)
			}
			prog.FillDerivCoeffs(theta, r.dcoef[:prog.nderiv])
			r.derivOK = true
		}
		ws.dcoef = r.dcoef[:prog.nderiv]
	}
	return prog, coeff
}

// tanSlices widens a fixed tangent array to the [][]float64 shape the engine
// entry points take, keeping nil for inactive channels. The returned header
// is s.tanView: each call overwrites the previous one, which is safe because
// no two results are live at once — saveInputs copies what it needs before
// the adjoint path builds its own view.
func (s *shardState) tanSlices(active [MaxTangents]bool, t [MaxTangents][]float64) [][]float64 {
	out := s.tanView
	for k := 0; k < MaxTangents; k++ {
		if active[k] {
			out[k] = t[k]
		} else {
			out[k] = nil
		}
	}
	return out
}

// outputs assembles the z/ztans views for one forward execution: the full
// sample-major kernels overwrite every element in range, so the reused
// buffers need no zeroing.
func (s *shardState) outputs(active [MaxTangents]bool) (z []float64, ztans [][]float64) {
	ztans = s.ztView
	for k := 0; k < MaxTangents; k++ {
		if active[k] {
			ztans[k] = s.ztans[k]
		} else {
			ztans[k] = nil
		}
	}
	return s.z, ztans
}

// ForwardShard runs the forward pass over one shard of n samples and returns
// the shard's z rows and tangent rows (nil for inactive channels). Returned
// slices are owned by the runner and valid until the next *Shard call.
//
//torq:hotpath
func (r *ShardRunner) ForwardShard(n int, active [MaxTangents]bool, angles []float64, angleTans [MaxTangents][]float64, theta []float64) (z []float64, ztans [MaxTangents][]float64) {
	s := r.state(n)
	s.ws.saveInputs(&r.pqc, angles, s.tanSlices(active, angleTans), theta)
	prog, coeff := r.ensureCoeffs(s.ws, theta, false)
	zb, ztb := s.outputs(active)
	fwdBlock(s.ws, prog, coeff, 0, n, zb, ztb)
	z = zb
	for k := 0; k < MaxTangents; k++ {
		ztans[k] = ztb[k]
	}
	return z, ztans
}

// BackwardShard recomputes the shard's forward states and runs the adjoint
// pass over it, returning gradient partials: per-sample dAngles/dAngleTans
// rows, the per-parameter dTheta partial, and the raw fused-diagonal
// accumulator (contracted by the coordinator after the shard-order merge,
// exactly as the in-process sharded engine does). Returned slices are owned
// by the runner and valid until the next *Shard call.
//
//torq:hotpath
func (r *ShardRunner) BackwardShard(n int, active [MaxTangents]bool, angles []float64, angleTans [MaxTangents][]float64, theta, gz []float64, gztans [MaxTangents][]float64) (dAngles []float64, dAngleTans [MaxTangents][]float64, dTheta, diagT []float64) {
	s := r.state(n)
	ws := s.ws
	ws.saveInputs(&r.pqc, angles, s.tanSlices(active, angleTans), theta)
	prog, coeff := r.ensureCoeffs(ws, theta, false)
	zb, ztb := s.outputs(active)
	fwdBlock(ws, prog, coeff, 0, n, zb, ztb)
	return r.runAdjoint(s, prog, n, active, theta, gz, gztans)
}

// runAdjoint runs the adjoint walk over a workspace whose forward states are
// already in place — freshly recomputed (BackwardShard) or restored from a
// snapshot (BackwardShardCached) — and returns the shard's gradient partials.
//
//torq:hotpath
func (r *ShardRunner) runAdjoint(s *shardState, prog *Program, n int, active [MaxTangents]bool, theta, gz []float64, gztans [MaxTangents][]float64) (dAngles []float64, dAngleTans [MaxTangents][]float64, dTheta, diagT []float64) {
	ws := s.ws
	ws.ensureScratch()
	r.ensureCoeffs(ws, theta, true)
	gzt := s.tanSlices(active, gztans)
	prepBackward(ws, gz, gzt)

	// The adjoint walk accumulates (+=) into every gradient buffer, so the
	// reused ones must start zeroed.
	dAngles = s.dAngles
	clear(dAngles)
	dat := s.datView
	for k := 0; k < MaxTangents; k++ {
		dat[k] = nil
		if active[k] {
			dAngleTans[k] = s.dat[k]
			clear(dAngleTans[k])
			dat[k] = dAngleTans[k]
		}
	}
	dTheta = s.dTheta
	clear(dTheta)
	diagT = s.diagT
	clear(diagT)
	bwdBlockV2(ws, prog, 0, n, gz, gzt, dAngles, dat, bwdScratch{dth: dTheta, diagT: diagT})
	return dAngles, dAngleTans, dTheta, diagT
}

// ForwardShardRetain is ForwardShard plus a snapshot of the evolved states
// and their inputs under the given shard index, for a later
// BackwardShardCached of the same pass to replay.
func (r *ShardRunner) ForwardShardRetain(shard uint32, n int, active [MaxTangents]bool, angles []float64, angleTans [MaxTangents][]float64, theta []float64) (z []float64, ztans [MaxTangents][]float64) {
	z, ztans = r.ForwardShard(n, active, angles, angleTans, theta)
	ws := r.free[n].ws
	var snap *fwdSnapshot
	if len(r.snapPool) > 0 {
		snap = r.snapPool[len(r.snapPool)-1]
		r.snapPool = r.snapPool[:len(r.snapPool)-1]
	} else {
		snap = &fwdSnapshot{}
	}
	snap.n = n
	snap.active = active
	snap.angles = append(snap.angles[:0], angles...)
	snap.theta = append(snap.theta[:0], theta...)
	snap.valRe = append(snap.valRe[:0], ws.val.Re...)
	snap.valIm = append(snap.valIm[:0], ws.val.Im...)
	for k := 0; k < MaxTangents; k++ {
		if active[k] {
			snap.angleTans[k] = append(snap.angleTans[k][:0], angleTans[k]...)
			snap.tanRe[k] = append(snap.tanRe[k][:0], ws.tan[k].Re...)
			snap.tanIm[k] = append(snap.tanIm[k][:0], ws.tan[k].Im...)
		} else {
			snap.angleTans[k] = snap.angleTans[k][:0]
			snap.tanRe[k] = snap.tanRe[k][:0]
			snap.tanIm[k] = snap.tanIm[k][:0]
		}
	}
	r.fwdSnaps[shard] = snap
	return z, ztans
}

// bitsEqualF64 compares two float slices by IEEE bit pattern — the cache
// validity predicate. Bit equality (not ==) keeps the check total: two
// bit-identical inputs always reproduce bit-identical forward states, NaN
// payloads included.
func bitsEqualF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// BackwardShardCached is BackwardShard minus the forward recompute: it
// restores the shard's forward states from the snapshot ForwardShardRetain
// took under the same shard index, then runs the adjoint walk on them. The
// restored states are the exact bits the recompute would produce (the
// snapshot is validated against the backward shard's full inputs before
// use), so the gradients are bit-identical either way. ok is false — and
// nothing is computed — when no valid snapshot exists: the caller falls back
// to the stateless BackwardShard.
//
//torq:hotpath
func (r *ShardRunner) BackwardShardCached(shard uint32, n int, active [MaxTangents]bool, angles []float64, angleTans [MaxTangents][]float64, theta, gz []float64, gztans [MaxTangents][]float64) (dAngles []float64, dAngleTans [MaxTangents][]float64, dTheta, diagT []float64, ok bool) {
	snap := r.fwdSnaps[shard]
	if snap == nil || snap.n != n || snap.active != active ||
		!bitsEqualF64(snap.angles, angles) || !bitsEqualF64(snap.theta, theta) {
		return dAngles, dAngleTans, dTheta, diagT, false
	}
	for k := 0; k < MaxTangents; k++ {
		if active[k] && !bitsEqualF64(snap.angleTans[k], angleTans[k]) {
			return dAngles, dAngleTans, dTheta, diagT, false
		}
	}
	s := r.state(n)
	ws := s.ws
	// Restore the saved inputs the adjoint reads from the workspace (angles
	// for the reverse embedding, theta for the log-derivative fast paths) and
	// the evolved states themselves.
	ws.saveInputs(&r.pqc, angles, s.tanSlices(active, angleTans), theta)
	copy(ws.val.Re, snap.valRe)
	copy(ws.val.Im, snap.valIm)
	for k := 0; k < MaxTangents; k++ {
		if active[k] {
			copy(ws.tan[k].Re, snap.tanRe[k])
			copy(ws.tan[k].Im, snap.tanIm[k])
		}
	}
	dAngles, dAngleTans, dTheta, diagT = r.runAdjoint(s, r.pqc.Program(), n, active, theta, gz, gztans)
	return dAngles, dAngleTans, dTheta, diagT, true
}
