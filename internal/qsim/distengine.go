package qsim

// This file is the qsim half of the multi-process executor: the
// coordinator-side distEngine that partitions a pass into the same fixed
// cache-block shards as the in-process sharded engine and merges results in
// shard order, and the worker-side ShardRunner that executes one shard
// bit-identically to one sharded-engine chunk. The transport between them —
// process spawning, the framed wire protocol, worker death and re-dispatch —
// lives in repro/internal/dist, which plugs in through RegisterDistBackend.
// Keeping all numerics (shard partition, execution, reduction order) in this
// package is what makes the bit-identity guarantee auditable: the dist
// subsystem only moves bytes.

// PassSpec describes one forward or backward pass to a DistBackend. All
// batch-wide arrays are full-batch, row-major n×nq (except Theta); the
// backend slices per-shard rows out with Shard. Slices may alias the
// engine's workspace and are only valid until RunPass returns.
type PassSpec struct {
	Circ *Circuit
	Prog *Program
	// Backward selects the adjoint pass; GZ/GZTans are nil on forward.
	Backward bool
	N, NQ    int
	// Block is the shard size in samples — identical to the in-process
	// sharded engine's cache-block partition for this pass shape, so the
	// shard-order reduction is bit-compatible between the two engines.
	Block  int
	Active [MaxTangents]bool
	Theta  []float64
	Angles []float64
	// AngleTans[k] is non-nil exactly when Active[k].
	AngleTans [MaxTangents][]float64
	GZ        []float64
	GZTans    [MaxTangents][]float64
}

// NumShards reports how many shards the pass partitions into.
func (s *PassSpec) NumShards() int { return shardCount(s.N, s.Block) }

// Shard returns the sample range [lo, hi) of shard i.
func (s *PassSpec) Shard(i int) (lo, hi int) {
	lo = i * s.Block
	hi = min(lo+s.Block, s.N)
	return lo, hi
}

// ShardResult is one shard's output. Forward fills Z/ZTans; backward fills
// the gradient fields. Row arrays cover the shard's samples only; DTheta and
// DiagT are whole-parameter-space partials that the coordinator merges in
// shard-index order.
type ShardResult struct {
	Z          []float64
	ZTans      [MaxTangents][]float64
	DAngles    []float64
	DAngleTans [MaxTangents][]float64
	DTheta     []float64
	DiagT      []float64
}

// DistBackend executes the shards of one pass on worker processes and
// returns one result per shard, indexed by shard. A backend must tolerate
// worker death by re-dispatching the dead worker's outstanding shards; it
// returns an error only when no worker can make progress.
type DistBackend interface {
	RunPass(spec *PassSpec) ([]ShardResult, error)
}

// distBackend is the registered transport. The Engine seam selects engines
// by value (EngineKind), so registration is how the dist subsystem attaches
// without qsim importing it.
var distBackend DistBackend

// RegisterDistBackend installs the transport behind EngineDist. Called from
// repro/internal/dist's init; last registration wins.
func RegisterDistBackend(b DistBackend) { distBackend = b }

// distEngine is the coordinator side of the multi-process executor. It
// reuses the sharded engine's pass preparation so the shard partition — and
// therefore the floating-point reduction order — is pinned to the same
// cache-block layout, then delegates shard execution to the registered
// DistBackend and merges results in shard order.
type distEngine struct{}

func (distEngine) Kind() EngineKind { return EngineDist }

func runDistPass(spec *PassSpec) []ShardResult {
	if distBackend == nil {
		panic(`qsim: engine "dist" selected but no transport is registered (link repro/internal/dist — it registers itself via RegisterDistBackend)`)
	}
	res, err := distBackend.RunPass(spec)
	if err != nil {
		panic("qsim: dist pass failed: " + err.Error())
	}
	return res
}

func (distEngine) Forward(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64) {
	prog, _, z, ztans, blk := prepForward(p, ws, angles, angleTans, theta)
	spec := &PassSpec{
		Circ: p.Circ, Prog: prog,
		N: ws.n, NQ: ws.nq, Block: blk,
		Active: ws.active, Theta: ws.theta, Angles: ws.angles,
	}
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			spec.AngleTans[k] = ws.angleTans[k]
		}
	}
	nq := ws.nq
	for s, r := range runDistPass(spec) {
		lo, hi := spec.Shard(s)
		copy(z[lo*nq:hi*nq], r.Z)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				copy(ztans[k][lo*nq:hi*nq], r.ZTans[k])
			}
		}
	}
	return z, ztans
}

func (distEngine) Backward(p *PQC, ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64) {
	prog := p.Program() // always level 3, like the sharded engine
	spec := &PassSpec{
		Circ: p.Circ, Prog: prog, Backward: true,
		N: ws.n, NQ: ws.nq, Block: backwardBlock(ws),
		Active: ws.active, Theta: ws.theta, Angles: ws.angles,
		GZ: gz,
	}
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			spec.AngleTans[k] = ws.angleTans[k]
			if k < len(gztans) {
				spec.GZTans[k] = gztans[k]
			}
		}
	}
	results := runDistPass(spec)

	// Per-sample gradients: each row belongs to exactly one shard, so the
	// worker's zero-initialized partial adds back as the same value the
	// in-process engine accumulated in place (0 + Σterms is exact).
	nq := ws.nq
	for s, r := range results {
		lo, _ := spec.Shard(s)
		for i, v := range r.DAngles {
			dAngles[lo*nq+i] += v
		}
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] || dAngleTans == nil || k >= len(dAngleTans) || dAngleTans[k] == nil {
				continue
			}
			for i, v := range r.DAngleTans[k] {
				dAngleTans[k][lo*nq+i] += v
			}
		}
	}
	// Deterministic merge, mirroring shardedEngine.Backward: dTheta partials
	// in shard order, then the fused-diagonal accumulators in shard order
	// contracted against the sign tables once per pass.
	for _, r := range results {
		for i, v := range r.DTheta {
			dTheta[i] += v
		}
	}
	if nt := prog.ndiag * ws.val.Dim; nt > 0 {
		acc := make([]float64, nt)
		for _, r := range results {
			for i, v := range r.DiagT {
				acc[i] += v
			}
		}
		reduceDiagNGrads(prog, acc, dTheta, ws.val.Dim)
	}
}

// ShardRunner executes single shards of a circuit's level-3 program inside a
// worker process, bit-identically to the corresponding sharded-engine chunk:
// a shard's per-sample state evolution depends only on its own rows, and its
// partial accumulators visit samples in the same order whether the shard
// lives at batch offset lo in a big workspace or at offset 0 in a private
// one. Backward shards recompute the shard's forward states first — shards
// stay stateless between passes, which is what makes a dead worker's shard
// re-dispatchable to any survivor.
type ShardRunner struct {
	pqc  PQC
	free map[int]*shardState
}

// shardState is the runner's reusable per-shard-size state: the workspace
// plus every output buffer a shard produces. Shards arrive sequentially per
// session and results are copied to the wire before the next shard runs, so
// reusing the buffers keeps the per-shard hot path allocation-free instead
// of feeding the GC one garbage generation per shard.
type shardState struct {
	ws      *Workspace
	z       []float64
	ztans   [][]float64
	dAngles []float64
	dat     [][]float64
	dTheta  []float64
	diagT   []float64
}

// NewShardRunner compiles circ at level 3 and prepares a per-shard-size
// state cache.
func NewShardRunner(circ *Circuit) *ShardRunner {
	r := &ShardRunner{pqc: PQC{Circ: circ, Eng: EngineDist}, free: make(map[int]*shardState)}
	r.pqc.Program()
	return r
}

// Circuit returns the runner's circuit.
func (r *ShardRunner) Circuit() *Circuit { return r.pqc.Circ }

// Digest returns the compiled program's digest for handshake validation.
func (r *ShardRunner) Digest() ProgramDigest { return r.pqc.Program().Digest() }

func (r *ShardRunner) state(n int) *shardState {
	if s := r.free[n]; s != nil {
		return s
	}
	nq := r.pqc.Circ.NumQubits
	prog := r.pqc.Program()
	s := &shardState{
		ws:      NewWorkspace(n, nq),
		z:       make([]float64, n*nq),
		ztans:   make([][]float64, MaxTangents),
		dAngles: make([]float64, n*nq),
		dat:     make([][]float64, MaxTangents),
		dTheta:  make([]float64, r.pqc.Circ.NumParams),
		diagT:   make([]float64, prog.ndiag*(1<<nq)),
	}
	for k := 0; k < MaxTangents; k++ {
		s.ztans[k] = make([]float64, n*nq)
		s.dat[k] = make([]float64, n*nq)
	}
	r.free[n] = s
	return s
}

// tanSlices widens a fixed tangent array to the [][]float64 shape the engine
// entry points take, keeping nil for inactive channels.
func tanSlices(active [MaxTangents]bool, t [MaxTangents][]float64) [][]float64 {
	out := make([][]float64, MaxTangents)
	for k := 0; k < MaxTangents; k++ {
		if active[k] {
			out[k] = t[k]
		}
	}
	return out
}

// outputs assembles the z/ztans views for one forward execution: the full
// sample-major kernels overwrite every element in range, so the reused
// buffers need no zeroing.
func (s *shardState) outputs(active [MaxTangents]bool) (z []float64, ztans [][]float64) {
	ztans = make([][]float64, MaxTangents)
	for k := 0; k < MaxTangents; k++ {
		if active[k] {
			ztans[k] = s.ztans[k]
		}
	}
	return s.z, ztans
}

// ForwardShard runs the forward pass over one shard of n samples and returns
// the shard's z rows and tangent rows (nil for inactive channels). Returned
// slices are owned by the runner and valid until the next *Shard call.
func (r *ShardRunner) ForwardShard(n int, active [MaxTangents]bool, angles []float64, angleTans [MaxTangents][]float64, theta []float64) (z []float64, ztans [MaxTangents][]float64) {
	s := r.state(n)
	prog, coeff, _ := prepPass(&r.pqc, s.ws, angles, tanSlices(active, angleTans), theta)
	zb, ztb := s.outputs(active)
	fwdBlock(s.ws, prog, coeff, 0, n, zb, ztb)
	z = zb
	for k := 0; k < MaxTangents; k++ {
		ztans[k] = ztb[k]
	}
	return z, ztans
}

// BackwardShard recomputes the shard's forward states and runs the adjoint
// pass over it, returning gradient partials: per-sample dAngles/dAngleTans
// rows, the per-parameter dTheta partial, and the raw fused-diagonal
// accumulator (contracted by the coordinator after the shard-order merge,
// exactly as the in-process sharded engine does). Returned slices are owned
// by the runner and valid until the next *Shard call.
func (r *ShardRunner) BackwardShard(n int, active [MaxTangents]bool, angles []float64, angleTans [MaxTangents][]float64, theta, gz []float64, gztans [MaxTangents][]float64) (dAngles []float64, dAngleTans [MaxTangents][]float64, dTheta, diagT []float64) {
	s := r.state(n)
	ws := s.ws
	tans := tanSlices(active, angleTans)
	prog, coeff, _ := prepPass(&r.pqc, ws, angles, tans, theta)
	zb, ztb := s.outputs(active)
	fwdBlock(ws, prog, coeff, 0, n, zb, ztb)

	ws.ensureScratch()
	refreshCoeffs(ws, prog, theta)
	gzt := tanSlices(active, gztans)
	prepBackward(ws, gz, gzt)

	// The adjoint walk accumulates (+=) into every gradient buffer, so the
	// reused ones must start zeroed.
	dAngles = s.dAngles
	clear(dAngles)
	dat := make([][]float64, MaxTangents)
	for k := 0; k < MaxTangents; k++ {
		if active[k] {
			dAngleTans[k] = s.dat[k]
			clear(dAngleTans[k])
			dat[k] = dAngleTans[k]
		}
	}
	dTheta = s.dTheta
	clear(dTheta)
	diagT = s.diagT
	clear(diagT)
	bwdBlockV2(ws, prog, 0, n, gz, gzt, dAngles, dat, bwdScratch{dth: dTheta, diagT: diagT})
	return dAngles, dAngleTans, dTheta, diagT
}
