package qsim

import "math"

// This file implements the two losing architectures of the paper's Table 2,
// used both as performance comparators and as brute-force references in the
// test suite.
//
// NaiveSimulator mirrors PennyLane's default.qubit execution model: every
// gate is expanded to a dense 2^n×2^n matrix via Kronecker products and
// applied sample-by-sample with a matrix–vector product. KronSimulator
// mirrors the full-unitary pipeline (Qiskit-style operator composition):
// the whole circuit is first composed into one dense unitary with 2^n×2^n
// matrix–matrix products, then applied per sample.

// cvec is a dense complex vector.
type cvec []complex128

// cmat is a dense row-major complex matrix.
type cmat struct {
	n    int
	data []complex128
}

func newCmat(n int) cmat { return cmat{n: n, data: make([]complex128, n*n)} }

func eye(n int) cmat {
	m := newCmat(n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

func (m cmat) at(i, j int) complex128     { return m.data[i*m.n+j] }
func (m cmat) set(i, j int, v complex128) { m.data[i*m.n+j] = v }

// mul returns a·b for dense complex matrices.
func (a cmat) mul(b cmat) cmat {
	n := a.n
	out := newCmat(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := a.data[i*n+k]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.data[i*n+j] += av * b.data[k*n+j]
			}
		}
	}
	return out
}

// matvec applies m to v.
func (m cmat) matvec(v cvec) cvec {
	out := make(cvec, m.n)
	for i := 0; i < m.n; i++ {
		var s complex128
		row := m.data[i*m.n : (i+1)*m.n]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}

// gateMatrix2 returns the 2×2 matrix of a single-qubit rotation.
func gateMatrix2(kind GateKind, theta float64) [2][2]complex128 {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	switch kind {
	case RX:
		return [2][2]complex128{{complex(c, 0), complex(0, -s)}, {complex(0, -s), complex(c, 0)}}
	case RY:
		return [2][2]complex128{{complex(c, 0), complex(-s, 0)}, {complex(s, 0), complex(c, 0)}}
	case RZ:
		return [2][2]complex128{{complex(c, -s), 0}, {0, complex(c, s)}}
	}
	panic("qsim: not a single-qubit rotation")
}

// place1Q embeds a 2×2 matrix acting on qubit q into the full-dimension
// matrix m via Kronecker-product placement.
func place1Q(m cmat, q int, u [2][2]complex128) {
	dim := m.n
	mask := 1 << q
	for j := 0; j < dim; j++ {
		jb := (j >> q) & 1
		for _, tb := range []int{0, 1} {
			i := (j &^ mask) | (tb << q)
			m.data[i*dim+j] += u[tb][jb]
		}
	}
}

// expand builds the full 2^nq × 2^nq matrix of gate g via Kronecker-product
// placement — the deliberately naive construction.
func expand(g Gate, theta []float64, nq int) cmat {
	var angle float64
	if g.P >= 0 {
		angle = theta[g.P]
	}
	return expandAngle(g, angle, nq)
}

// expandAngle is expand with the rotation angle already resolved, so the
// naive engine can build inverse matrices by negating it.
func expandAngle(g Gate, angle float64, nq int) cmat {
	dim := 1 << nq
	m := newCmat(dim)
	switch g.Kind {
	case RX, RY, RZ:
		place1Q(m, g.Q, gateMatrix2(g.Kind, angle))
	case CNOT:
		cMask, tMask := 1<<g.C, 1<<g.Q
		for j := 0; j < dim; j++ {
			i := j
			if j&cMask != 0 {
				i = j ^ tMask
			}
			m.data[i*dim+j] = 1
		}
	case CRZ:
		c, s := math.Cos(angle/2), math.Sin(angle/2)
		cMask, tMask := 1<<g.C, 1<<g.Q
		for j := 0; j < dim; j++ {
			switch {
			case j&cMask == 0:
				m.data[j*dim+j] = 1
			case j&tMask == 0:
				m.data[j*dim+j] = complex(c, -s)
			default:
				m.data[j*dim+j] = complex(c, s)
			}
		}
	}
	return m
}

// embedMatrix returns the full matrix of the RX embedding on qubit q.
func embedMatrix(q int, angle float64, nq int) cmat {
	return expand(Gate{Kind: RX, Q: q, C: -1, P: 0}, []float64{angle}, nq)
}

// NaiveSimulator runs the circuit sample-by-sample, expanding each gate to a
// dense matrix at every application (PennyLane default.qubit-style).
type NaiveSimulator struct {
	Circ *Circuit
}

// Run returns per-qubit ⟨Z⟩ for each sample (n×nq row-major).
func (ns *NaiveSimulator) Run(angles []float64, theta []float64, n int) []float64 {
	nq := ns.Circ.NumQubits
	dim := 1 << nq
	out := make([]float64, n*nq)
	for i := 0; i < n; i++ {
		v := make(cvec, dim)
		v[0] = 1
		for q := 0; q < nq; q++ {
			v = embedMatrix(q, angles[i*nq+q], nq).matvec(v)
		}
		for _, g := range ns.Circ.Gates {
			v = expand(g, theta, nq).matvec(v)
		}
		writeExpZ(v, nq, out[i*nq:(i+1)*nq])
	}
	return out
}

// KronSimulator composes the entire circuit into a single dense unitary and
// applies it per sample. Because the embedding angles differ per sample, the
// unitary is recomposed for every sample — the architectural cost this
// comparator is meant to expose.
type KronSimulator struct {
	Circ *Circuit
}

// Run returns per-qubit ⟨Z⟩ for each sample (n×nq row-major).
func (ks *KronSimulator) Run(angles []float64, theta []float64, n int) []float64 {
	nq := ks.Circ.NumQubits
	dim := 1 << nq
	out := make([]float64, n*nq)
	for i := 0; i < n; i++ {
		u := eye(dim)
		for q := 0; q < nq; q++ {
			u = embedMatrix(q, angles[i*nq+q], nq).mul(u)
		}
		for _, g := range ks.Circ.Gates {
			u = expand(g, theta, nq).mul(u)
		}
		v := make(cvec, dim)
		v[0] = 1
		v = u.matvec(v)
		writeExpZ(v, nq, out[i*nq:(i+1)*nq])
	}
	return out
}

func writeExpZ(v cvec, nq int, out []float64) {
	for q := range out {
		out[q] = 0
	}
	for j, a := range v {
		p := real(a)*real(a) + imag(a)*imag(a)
		for q := 0; q < nq; q++ {
			if j&(1<<q) == 0 {
				out[q] += p
			} else {
				out[q] -= p
			}
		}
	}
}

// expandDeriv builds the dense matrix of dU/dθ for a parametrized gate —
// the CRZ derivative is zero on the control-unset subspace, so no separate
// masking step is needed in the dense path.
func expandDeriv(g Gate, angle float64, nq int) cmat {
	dim := 1 << nq
	m := newCmat(dim)
	c, s := math.Cos(angle/2), math.Sin(angle/2)
	switch g.Kind {
	case RX:
		place1Q(m, g.Q, [2][2]complex128{
			{complex(-s/2, 0), complex(0, -c/2)},
			{complex(0, -c/2), complex(-s/2, 0)}})
	case RY:
		place1Q(m, g.Q, [2][2]complex128{
			{complex(-s/2, 0), complex(-c/2, 0)},
			{complex(c/2, 0), complex(-s/2, 0)}})
	case RZ:
		place1Q(m, g.Q, [2][2]complex128{
			{complex(-s/2, -c/2), 0},
			{0, complex(-s/2, c/2)}})
	case CRZ:
		cMask, tMask := 1<<g.C, 1<<g.Q
		for j := 0; j < dim; j++ {
			if j&cMask == 0 {
				continue
			}
			if j&tMask == 0 {
				m.data[j*dim+j] = complex(-s/2, -c/2)
			} else {
				m.data[j*dim+j] = complex(-s/2, c/2)
			}
		}
	default:
		panic("qsim: derivative of non-parametrized gate")
	}
	return m
}

// denseApplySample applies m to one sample's statevector in place.
func denseApplySample(s *State, smp int, m cmat) {
	dim := s.Dim
	off := smp * dim
	v := make(cvec, dim)
	for j := 0; j < dim; j++ {
		v[j] = complex(s.Re[off+j], s.Im[off+j])
	}
	w := m.matvec(v)
	for j := 0; j < dim; j++ {
		s.Re[off+j], s.Im[off+j] = real(w[j]), imag(w[j])
	}
}

// denseApplyAll applies m to every sample of the batch.
func denseApplyAll(s *State, m cmat) {
	for smp := 0; smp < s.N; smp++ {
		denseApplySample(s, smp, m)
	}
}

// naiveHooks route the adjoint algorithm's gate primitives through dense
// per-sample matrix application: the EngineNaive comparator, architecturally
// equivalent to running PennyLane's default.qubit inside the PINN.
var naiveHooks = applyHooks{
	apply: func(g Gate, s *State, theta []float64) {
		denseApplyAll(s, expand(g, theta, s.NQ))
	},
	applyInv: func(g Gate, s *State, theta []float64) {
		var angle float64
		if g.P >= 0 {
			angle = -theta[g.P]
		}
		denseApplyAll(s, expandAngle(g, angle, s.NQ))
	},
	applyDeriv: func(g Gate, s *State, theta []float64) {
		denseApplyAll(s, expandDeriv(g, theta[g.P], s.NQ))
	},
	applyIXPS: func(s *State, q int, a, b []float64) {
		dim := s.Dim
		for smp := 0; smp < s.N; smp++ {
			m := newCmat(dim)
			place1Q(m, q, [2][2]complex128{
				{complex(a[smp], 0), complex(0, -b[smp])},
				{complex(0, -b[smp]), complex(a[smp], 0)}})
			denseApplySample(s, smp, m)
		}
	},
}

// instrMatrix expands one compiled non-embedding instruction into its dense
// 2^nq×2^nq matrix from the filled coefficient slots — the brute-force
// oracle the compiler-level parity tests use to check that every fusion
// pass (single-qubit runs, diagonal merges, entangler blocks, full-register
// diagonals) preserves the circuit's net unitary exactly.
func (p *Program) instrMatrix(in instr, coeff []float64) cmat {
	nq := p.circ.NumQubits
	dim := 1 << nq
	m := newCmat(dim)
	switch in.op {
	case opU2:
		u := coeff[in.slot : in.slot+8]
		place1Q(m, in.q, [2][2]complex128{
			{complex(u[0], u[1]), complex(u[2], u[3])},
			{complex(u[4], u[5]), complex(u[6], u[7])},
		})
	case opDiag:
		u := coeff[in.slot : in.slot+4]
		tMask := 1 << in.q
		for j := 0; j < dim; j++ {
			if j&tMask == 0 {
				m.data[j*dim+j] = complex(u[0], u[1])
			} else {
				m.data[j*dim+j] = complex(u[2], u[3])
			}
		}
	case opCtrlDiag:
		u := coeff[in.slot : in.slot+4]
		cMask, tMask := 1<<in.c, 1<<in.q
		for j := 0; j < dim; j++ {
			switch {
			case j&cMask == 0:
				m.data[j*dim+j] = 1
			case j&tMask == 0:
				m.data[j*dim+j] = complex(u[0], u[1])
			default:
				m.data[j*dim+j] = complex(u[2], u[3])
			}
		}
	case opCNOT:
		return expandAngle(in.gates[0], 0, nq)
	case opU4:
		u := coeff[in.slot : in.slot+32]
		qa, qb := in.q, in.c
		for col := 0; col < dim; col++ {
			la := (col >> qa) & 1
			lb := (col >> qb) & 1
			lc := la | lb<<1
			base := col &^ (1<<qa | 1<<qb)
			for lr := 0; lr < 4; lr++ {
				row := base | (lr&1)<<qa | (lr>>1)<<qb
				m.data[row*dim+col] = complex(u[(lr*4+lc)*2], u[(lr*4+lc)*2+1])
			}
		}
	case opU8:
		u := coeff[in.slot : in.slot+128]
		qa, qb, qc := in.q, in.c, in.q2
		for col := 0; col < dim; col++ {
			lc := (col>>qa)&1 | ((col>>qb)&1)<<1 | ((col>>qc)&1)<<2
			base := col &^ (1<<qa | 1<<qb | 1<<qc)
			for lr := 0; lr < 8; lr++ {
				row := base | (lr&1)<<qa | ((lr>>1)&1)<<qb | (lr>>2)<<qc
				m.data[row*dim+col] = complex(u[(lr*8+lc)*2], u[(lr*8+lc)*2+1])
			}
		}
	case opPerm8:
		qa, qb, qc := in.q, in.c, in.q2
		for col := 0; col < dim; col++ {
			lc := (col>>qa)&1 | ((col>>qb)&1)<<1 | ((col>>qc)&1)<<2
			lr := int(in.perm[lc])
			row := col&^(1<<qa|1<<qb|1<<qc) | (lr&1)<<qa | ((lr>>1)&1)<<qb | (lr>>2)<<qc
			m.data[row*dim+col] = 1
		}
	case opU2x3:
		u := coeff[in.slot : in.slot+24]
		m = eye(dim)
		for f, q := range [3]int{in.q, in.c, in.q2} {
			mf := newCmat(dim)
			place1Q(mf, q, [2][2]complex128{
				{complex(u[f*8], u[f*8+1]), complex(u[f*8+2], u[f*8+3])},
				{complex(u[f*8+4], u[f*8+5]), complex(u[f*8+6], u[f*8+7])},
			})
			m = mf.mul(m)
		}
	case opDiagN:
		u := coeff[in.slot : in.slot+2*dim]
		for j := 0; j < dim; j++ {
			m.data[j*dim+j] = complex(u[2*j], u[2*j+1])
		}
	default:
		panic("qsim: instrMatrix on embedding instruction")
	}
	return m
}

// MemoryPerPoint reports bytes of statevector storage per collocation point
// for each simulator architecture, used for the Table 2 "largest grid"
// comparison: the adjoint simulator keeps O(channels) statevectors, the
// naive one a full dense gate matrix, the kron one a full circuit unitary.
func MemoryPerPoint(nq, channels int) (adjoint, naive, kron int) {
	dim := 1 << nq
	const f = 16                                 // complex128 bytes
	adjoint = 2 * (2*channels + 2) * dim * f / 2 // states + adjoints + 2 scratch (re+im planes)
	naive = (dim + dim*dim) * f                  // vector + one expanded gate matrix
	kron = (dim + 2*dim*dim) * f                 // vector + accumulated unitary + gate matrix
	return
}
