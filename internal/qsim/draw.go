package qsim

import (
	"fmt"
	"io"
	"strings"
)

// Draw renders the circuit as ASCII art (one line per qubit), the terminal
// rendition of the paper's Fig. 4 schematics. The embedding layer is shown
// as RX(x_q); parametrized gates show their parameter index.
func Draw(w io.Writer, c *Circuit) {
	nq := c.NumQubits
	lines := make([]*strings.Builder, nq)
	for q := range lines {
		lines[q] = &strings.Builder{}
		fmt.Fprintf(lines[q], "q%d: ", q)
	}
	pad := func() {
		maxLen := 0
		for _, l := range lines {
			if l.Len() > maxLen {
				maxLen = l.Len()
			}
		}
		for _, l := range lines {
			for l.Len() < maxLen {
				l.WriteByte('-')
			}
		}
	}
	// Embedding column.
	for q := 0; q < nq; q++ {
		fmt.Fprintf(lines[q], "-[RX(x%d)]", q)
	}
	pad()
	for _, g := range c.Gates {
		switch g.Kind {
		case RX, RY, RZ:
			fmt.Fprintf(lines[g.Q], "-[%s(θ%d)]", g.Kind, g.P)
		case CNOT:
			pad()
			fmt.Fprintf(lines[g.C], "---●---")
			fmt.Fprintf(lines[g.Q], "---⊕---")
			pad()
		case CRZ:
			pad()
			fmt.Fprintf(lines[g.C], "---●-------")
			fmt.Fprintf(lines[g.Q], "-[RZ(θ%d)]", g.P)
			pad()
		}
	}
	pad()
	fmt.Fprintf(w, "%s  (%d qubits, %d layers, %d parameters)\n", c.Name, nq, c.Layers, c.NumParams)
	for q := 0; q < nq; q++ {
		fmt.Fprintf(w, "%s-[⟨Z⟩]\n", lines[q].String())
	}
}
