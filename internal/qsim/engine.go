package qsim

import (
	"fmt"

	"repro/internal/par"
)

// EngineKind selects the circuit-execution strategy behind PQC.
type EngineKind uint8

const (
	// EngineFused compiles the circuit into a fused instruction stream and
	// executes it sample-block by sample-block inside a single parallel
	// region per pass — the default and fastest engine.
	EngineFused EngineKind = iota
	// EngineLegacy executes one batchwide parallel sweep per gate
	// application — the original execution model, kept as a comparator.
	EngineLegacy
	// EngineNaive runs the identical adjoint algorithm but applies every
	// gate as a dense 2^nq×2^nq matrix per sample (the default.qubit-style
	// losing architecture of Table 2).
	EngineNaive
)

func (k EngineKind) String() string {
	switch k {
	case EngineFused:
		return "fused"
	case EngineLegacy:
		return "legacy"
	case EngineNaive:
		return "naive"
	}
	return "unknown"
}

// ParseEngine maps a flag value to an EngineKind.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "fused", "":
		return EngineFused, nil
	case "legacy":
		return EngineLegacy, nil
	case "naive":
		return EngineNaive, nil
	}
	return EngineFused, fmt.Errorf("qsim: unknown engine %q (want fused|legacy|naive)", s)
}

// Engine is the pluggable execution strategy for a PQC pass: it owns how
// the embedding, ansatz gates, readout, and adjoint backward traverse the
// batch. All engines are numerically interchangeable (see the parity tests)
// and differ only in architecture — the axis the paper's Table 2 measures.
type Engine interface {
	Kind() EngineKind
	Forward(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64)
	Backward(p *PQC, ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64)
}

var (
	engineFused  Engine = fusedEngine{}
	engineLegacy Engine = &legacyEngine{kind: EngineLegacy, hooks: fastHooks}
	engineNaive  Engine = &legacyEngine{kind: EngineNaive, hooks: naiveHooks}
)

func (k EngineKind) engine() Engine {
	switch k {
	case EngineLegacy:
		return engineLegacy
	case EngineNaive:
		return engineNaive
	}
	return engineFused
}

// blockSamples picks how many samples one worker streams through the whole
// instruction stream at a time: small enough that all live channel states
// of the block stay cache-resident across every instruction, large enough
// to amortize instruction dispatch.
func blockSamples(dim, channels int) int {
	const targetBytes = 64 << 10 // L1/L2-resident working set per worker
	per := dim * 16 * channels   // re+im float64 planes per sample per channel
	b := targetBytes / per
	if b < 1 {
		return 1
	}
	if b > 64 {
		return 64
	}
	return b
}

// fusedEngine executes a compiled Program sample-block by sample-block: the
// outer parallel region splits the batch once per pass (par.Run), and each
// worker streams every instruction through one small block of samples while
// those samples' amplitudes stay cache-resident. A forward+backward pass
// costs two fork/joins total, against two per gate application for the
// legacy engine.
type fusedEngine struct{}

func (fusedEngine) Kind() EngineKind { return EngineFused }

func (fusedEngine) Forward(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64) {
	ws.saveInputs(p, angles, angleTans, theta)
	prog := p.Program()
	if cap(ws.coeff) < prog.ncoef {
		ws.coeff = make([]float64, prog.ncoef)
	}
	coeff := ws.coeff[:prog.ncoef]
	prog.FillCoeffs(theta, coeff)

	n, nq := ws.n, ws.nq
	z = make([]float64, n*nq)
	ztans = make([][]float64, MaxTangents)
	channels := 1
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			ztans[k] = make([]float64, n*nq)
			channels++
		}
	}
	if ws.anyTan() {
		channels++ // scr1 holds D·v during the embedding
	}
	blk := blockSamples(ws.val.Dim, channels)
	par.Run(n, func(_, lo, hi int) {
		for b := lo; b < hi; b += blk {
			fwdBlock(ws, prog, coeff, b, min(b+blk, hi), z, ztans)
		}
	})
	return z, ztans
}

// fwdBlock streams the whole program through samples [lo, hi): state init,
// every instruction, then the ⟨Z⟩ and tangent readouts while the block is
// still hot.
func fwdBlock(ws *Workspace, prog *Program, coeff []float64, lo, hi int, z []float64, ztans [][]float64) {
	ws.val.resetRange(lo, hi, false)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			ws.tan[k].resetRange(lo, hi, true)
		}
	}
	for _, in := range prog.ins {
		switch in.op {
		case opEmbed:
			embedRange(ws, in.q, lo, hi)
		case opU2:
			u := (*[8]float64)(coeff[in.slot : in.slot+8])
			ws.val.applyU2Range(lo, hi, in.q, u)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyU2Range(lo, hi, in.q, u)
				}
			}
		case opDiag:
			c := coeff[in.slot:]
			ws.val.applyDiagRange(lo, hi, in.q, c[0], c[1], c[2], c[3])
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyDiagRange(lo, hi, in.q, c[0], c[1], c[2], c[3])
				}
			}
		case opCNOT:
			ws.val.applyCNOTRange(lo, hi, in.c, in.q)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyCNOTRange(lo, hi, in.c, in.q)
				}
			}
		case opCtrlDiag:
			c := coeff[in.slot:]
			ws.val.applyCtrlDiagRange(lo, hi, in.c, in.q, c[0], c[1], c[2], c[3])
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyCtrlDiagRange(lo, hi, in.c, in.q, c[0], c[1], c[2], c[3])
				}
			}
		}
	}
	ws.val.expZRange(lo, hi, z)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			crossZRange(ws.val, ws.tan[k], ztans[k], lo, hi)
		}
	}
}

// embedRange applies the RX(angle_q) embedding on qubit q for samples
// [lo, hi), coupling tangent channels through t' = U·t + φ̇·(dU/dφ)·v.
func embedRange(ws *Workspace, q, lo, hi int) {
	ws.loadHalfAnglesRange(q, lo, hi)
	if ws.anyTan() {
		ws.scr1.copyRange(ws.val, lo, hi)
		ws.scr1.applyIXPerSampleRange(lo, hi, q, ws.dA, ws.dB) // D·v_pre
	}
	for k := 0; k < MaxTangents; k++ {
		if !ws.active[k] {
			continue
		}
		ws.tan[k].applyIXPerSampleRange(lo, hi, q, ws.cbuf, ws.sbuf)
		ws.gatherTanRange(k, q, lo, hi)
		axpyRange(ws.tan[k], ws.scr1, ws.tmpN, lo, hi)
	}
	ws.val.applyIXPerSampleRange(lo, hi, q, ws.cbuf, ws.sbuf)
}

func (fusedEngine) Backward(p *PQC, ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64) {
	prog := p.Program()
	n := ws.n
	theta := ws.theta
	ws.ensureScratch()

	// Per-parameter half-angle table: trigonometry once per pass, not once
	// per block. Parameter indices are unique per gate across all ansätze.
	np := p.Circ.NumParams
	if cap(ws.gch) < 2*np {
		ws.gch = make([]float64, 2*np)
	}
	gch := ws.gch[:2*np]
	for _, g := range p.Circ.Gates {
		if g.P >= 0 {
			gch[2*g.P] = cosHalf(theta[g.P])
			gch[2*g.P+1] = sinHalf(theta[g.P])
		}
	}

	// Size the upstream-weight buffers before the region (workers only fill
	// their own sample ranges).
	ws.ensureW(0, gz)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			var g []float64
			if k < len(gztans) {
				g = gztans[k]
			}
			ws.ensureW(1+k, g)
		}
	}

	// Per-worker dTheta partials: reduced in worker order after the region
	// so results are deterministic for a fixed worker bound.
	nw := par.MaxWorkers()
	if len(ws.dthW) < nw {
		ws.dthW = make([][]float64, nw)
	}
	for w := 0; w < nw; w++ {
		if cap(ws.dthW[w]) < np {
			ws.dthW[w] = make([]float64, np)
		}
		ws.dthW[w] = ws.dthW[w][:np]
		for i := range ws.dthW[w] {
			ws.dthW[w][i] = 0
		}
	}

	channels := 2 // val + λv
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			channels += 2
		}
	}
	channels += 2 // scr1 + scr2
	blk := blockSamples(ws.val.Dim, channels)
	par.Run(n, func(w, lo, hi int) {
		dth := ws.dthW[w]
		for b := lo; b < hi; b += blk {
			bwdBlock(ws, prog, gch, b, min(b+blk, hi), gz, gztans, dAngles, dAngleTans, dth)
		}
	})
	for w := 0; w < nw; w++ {
		for i, v := range ws.dthW[w] {
			dTheta[i] += v
		}
	}
}

// bwdBlock runs the complete adjoint pass — readout seeding, reverse gate
// walk with per-parameter gradient accumulation, and reverse embedding —
// over samples [lo, hi).
func bwdBlock(ws *Workspace, prog *Program, gch []float64, lo, hi int, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dth []float64) {
	dim := ws.val.Dim

	// Seed adjoints from the quadratic readout (see legacyEngine.Backward).
	if ws.wbuf[0] != nil {
		ws.buildWRange(0, gz, lo, hi)
	}
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] && ws.wbuf[1+k] != nil {
			ws.buildWRange(1+k, gztans[k], lo, hi)
		}
	}
	ws.lamV.resetRange(lo, hi, true)
	seed := func(lam *State, w []float64, src *State) {
		if w == nil {
			return
		}
		for i := lo * dim; i < hi*dim; i++ {
			lam.Re[i] += 2 * w[i] * src.Re[i]
			lam.Im[i] += 2 * w[i] * src.Im[i]
		}
	}
	seed(ws.lamV, ws.wbuf[0], ws.val)
	for k := 0; k < MaxTangents; k++ {
		if !ws.active[k] {
			continue
		}
		ws.lamT[k].resetRange(lo, hi, true)
		seed(ws.lamV, ws.wbuf[1+k], ws.tan[k])
		seed(ws.lamT[k], ws.wbuf[1+k], ws.val)
	}

	// Walk the program segments in reverse at per-gate granularity: the
	// adjoint needs each parametrized gate's individual derivative and
	// pre-gate state, so fused instructions don't apply here.
	for si := len(prog.segs) - 1; si >= 0; si-- {
		seg := prog.segs[si]
		if seg.embed {
			reverseEmbedRange(ws, lo, hi, dAngles, dAngleTans)
		} else {
			reverseGatesRange(ws, seg.gates, gch, lo, hi, dth)
		}
	}
}

// reverseStepRange performs one adjoint step for one (ψ, λ) channel pair in
// a single traversal: ψ ← U†ψ, λ ← U†λ, and — for parametrized gates — the
// returned gradient contribution Σ Re⟨λ_pre, (d log U/dθ)·ψ_pre⟩. The
// logarithmic-derivative form (dU/dθ = U·dlogU with dlogU = −i/2·{X, Y, Z})
// lets the gradient read the freshly recovered pre-gate states, so the
// legacy engine's three full-state passes per gate per channel (inverse,
// derivative scratch copy, inner product) collapse into one.
func reverseStepRange(g Gate, c, s float64, psi, lam *State, lo, hi int) float64 {
	dim := psi.Dim
	pr, pim := psi.Re, psi.Im
	lr, lim := lam.Re, lam.Im
	var sum float64
	switch g.Kind {
	case RX:
		// U† = c·I + i·s·X ; dlogU = −i/2·X.
		stride := 1 << g.Q
		step := stride << 1
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0, r1, i1 := pr[j], pim[j], pr[k], pim[k]
					pr[j] = c*r0 - s*i1
					pim[j] = c*i0 + s*r1
					pr[k] = -s*i0 + c*r1
					pim[k] = s*r0 + c*i1
					r0, i0, r1, i1 = lr[j], lim[j], lr[k], lim[k]
					lr[j] = c*r0 - s*i1
					lim[j] = c*i0 + s*r1
					lr[k] = -s*i0 + c*r1
					lim[k] = s*r0 + c*i1
					sum += 0.5 * (lr[j]*pim[k] - lim[j]*pr[k] + lr[k]*pim[j] - lim[k]*pr[j])
				}
			}
		}
	case RY:
		// U† = [[c, s], [−s, c]] ; dlogU = [[0, −1/2], [1/2, 0]].
		stride := 1 << g.Q
		step := stride << 1
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0, r1, i1 := pr[j], pim[j], pr[k], pim[k]
					pr[j] = c*r0 + s*r1
					pim[j] = c*i0 + s*i1
					pr[k] = -s*r0 + c*r1
					pim[k] = -s*i0 + c*i1
					r0, i0, r1, i1 = lr[j], lim[j], lr[k], lim[k]
					lr[j] = c*r0 + s*r1
					lim[j] = c*i0 + s*i1
					lr[k] = -s*r0 + c*r1
					lim[k] = -s*i0 + c*i1
					sum += 0.5 * (lr[k]*pr[j] + lim[k]*pim[j] - lr[j]*pr[k] - lim[j]*pim[k])
				}
			}
		}
	case RZ:
		// U† = diag(e^{+iθ/2}, e^{−iθ/2}) ; dlogU = diag(−i/2, +i/2).
		stride := 1 << g.Q
		step := stride << 1
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0 := pr[j], pim[j]
					pr[j] = c*r0 - s*i0
					pim[j] = c*i0 + s*r0
					r1, i1 := pr[k], pim[k]
					pr[k] = c*r1 + s*i1
					pim[k] = c*i1 - s*r1
					r0, i0 = lr[j], lim[j]
					lr[j] = c*r0 - s*i0
					lim[j] = c*i0 + s*r0
					r1, i1 = lr[k], lim[k]
					lr[k] = c*r1 + s*i1
					lim[k] = c*i1 - s*r1
					sum += 0.5 * (lr[j]*pim[j] - lim[j]*pr[j] - lr[k]*pim[k] + lim[k]*pr[k])
				}
			}
		}
	case CNOT:
		// Self-inverse swap on both states; no gradient.
		strideT := 1 << g.Q
		stepT := strideT << 1
		cMask := 1 << g.C
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += stepT {
				for j := blk; j < blk+strideT; j++ {
					if j&cMask == 0 {
						continue
					}
					a, b := off+j, off+j+strideT
					pr[a], pr[b] = pr[b], pr[a]
					pim[a], pim[b] = pim[b], pim[a]
					lr[a], lr[b] = lr[b], lr[a]
					lim[a], lim[b] = lim[b], lim[a]
				}
			}
		}
	case CRZ:
		// RZ step on the control-set subspace; the derivative is zero on the
		// control-unset subspace, so it contributes no gradient.
		strideT := 1 << g.Q
		stepT := strideT << 1
		cMask := 1 << g.C
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += stepT {
				for j := blk; j < blk+strideT; j++ {
					if j&cMask == 0 {
						continue
					}
					a, b := off+j, off+j+strideT
					r0, i0 := pr[a], pim[a]
					pr[a] = c*r0 - s*i0
					pim[a] = c*i0 + s*r0
					r1, i1 := pr[b], pim[b]
					pr[b] = c*r1 + s*i1
					pim[b] = c*i1 - s*r1
					r0, i0 = lr[a], lim[a]
					lr[a] = c*r0 - s*i0
					lim[a] = c*i0 + s*r0
					r1, i1 = lr[b], lim[b]
					lr[b] = c*r1 + s*i1
					lim[b] = c*i1 - s*r1
					sum += 0.5 * (lr[a]*pim[a] - lim[a]*pr[a] - lr[b]*pim[b] + lim[b]*pr[b])
				}
			}
		}
	}
	return sum
}

// reverseGatesRange is the blocked analogue of legacyEngine.reverseGates:
// one fused inverse+gradient traversal per channel pair per gate.
func reverseGatesRange(ws *Workspace, gates []Gate, gch []float64, lo, hi int, dth []float64) {
	for gi := len(gates) - 1; gi >= 0; gi-- {
		g := gates[gi]
		var c, s float64
		if g.P >= 0 {
			c, s = gch[2*g.P], gch[2*g.P+1]
		}
		grad := reverseStepRange(g, c, s, ws.val, ws.lamV, lo, hi)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				grad += reverseStepRange(g, c, s, ws.tan[k], ws.lamT[k], lo, hi)
			}
		}
		if g.P >= 0 {
			dth[g.P] += grad
		}
	}
}

// reverseEmbedRange is the blocked analogue of legacyEngine.reverseEmbedding;
// see that method for the derivation of terms (a)–(c).
func reverseEmbedRange(ws *Workspace, lo, hi int, dAngles []float64, dAngleTans [][]float64) {
	nq := ws.nq
	for q := nq - 1; q >= 0; q-- {
		ws.loadHalfAnglesRange(q, lo, hi)

		// (c) second-derivative coupling on the post-gate value state.
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			innerReRange(ws.lamT[k], ws.val, ws.tmpN, lo, hi)
			for i := lo; i < hi; i++ {
				dAngles[i*nq+q] -= 0.25 * ws.angleTans[k][i*nq+q] * ws.tmpN[i]
			}
		}

		// Recover v_pre and D·v_pre.
		negS := ws.negSinRange(lo, hi)
		ws.val.applyIXPerSampleRange(lo, hi, q, ws.cbuf, negS) // U†: RX(−φ)
		ws.scr1.copyRange(ws.val, lo, hi)
		ws.scr1.applyIXPerSampleRange(lo, hi, q, ws.dA, ws.dB) // D·v_pre

		// (a) dφ += Re⟨λv, D v_pre⟩ ; dφ̇ₖ += Re⟨λtₖ, D v_pre⟩.
		innerReRange(ws.lamV, ws.scr1, ws.tmpN, lo, hi)
		for i := lo; i < hi; i++ {
			dAngles[i*nq+q] += ws.tmpN[i]
		}
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			innerReRange(ws.lamT[k], ws.scr1, ws.tmpN, lo, hi)
			if dAngleTans != nil && k < len(dAngleTans) && dAngleTans[k] != nil {
				for i := lo; i < hi; i++ {
					dAngleTans[k][i*nq+q] += ws.tmpN[i]
				}
			}
		}

		// Recover tₖ_pre = U†(tₖ_post − φ̇ₖ·D v_pre), then
		// (b) dφ += Re⟨λtₖ, D tₖ_pre⟩.
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			for i := lo; i < hi; i++ {
				ws.tmpN[i] = -ws.angleTans[k][i*nq+q]
			}
			axpyRange(ws.tan[k], ws.scr1, ws.tmpN, lo, hi)
			ws.tan[k].applyIXPerSampleRange(lo, hi, q, ws.cbuf, negS)
			ws.scr2.copyRange(ws.tan[k], lo, hi)
			ws.scr2.applyIXPerSampleRange(lo, hi, q, ws.dA, ws.dB)
			innerReRange(ws.lamT[k], ws.scr2, ws.tmpN, lo, hi)
			for i := lo; i < hi; i++ {
				dAngles[i*nq+q] += ws.tmpN[i]
			}
		}

		// Propagate adjoints: λv ← U†λv + Σₖ φ̇ₖ·D†λtₖ ; λtₖ ← U†λtₖ.
		ws.lamV.applyIXPerSampleRange(lo, hi, q, ws.cbuf, negS)
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			ws.scr2.copyRange(ws.lamT[k], lo, hi)
			ws.scr2.applyIXPerSampleRange(lo, hi, q, ws.dA, ws.negDBRange(lo, hi)) // D†
			ws.gatherTanRange(k, q, lo, hi)
			axpyRange(ws.lamV, ws.scr2, ws.tmpN, lo, hi)
			ws.lamT[k].applyIXPerSampleRange(lo, hi, q, ws.cbuf, negS)
		}
	}
}
