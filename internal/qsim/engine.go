package qsim

import (
	"fmt"
	"strings"

	"repro/internal/par"
)

// EngineKind selects the circuit-execution strategy behind PQC.
type EngineKind uint8

const (
	// EngineFused compiles the circuit into a fused instruction stream with
	// the full level-3 fusion (three-qubit super-ops, commutation-aware
	// diagonal absorption, grouped single-qubit triples) and executes it
	// sample-block by sample-block inside a single parallel region per pass
	// — the default and fastest engine.
	EngineFused EngineKind = iota
	// EngineLegacy executes one batchwide parallel sweep per gate
	// application — the original execution model, kept as a comparator.
	EngineLegacy
	// EngineNaive runs the identical adjoint algorithm but applies every
	// gate as a dense 2^nq×2^nq matrix per sample (the default.qubit-style
	// losing architecture of Table 2).
	EngineNaive
	// EngineFusedV1 is the fused executor running the PR-1 compiler (pass-1
	// fusion only: single-qubit runs and same-pair diagonal merges, per-gate
	// backward walk) — the oldest A/B comparator.
	EngineFusedV1
	// EngineFusedV2 is the fused executor running the PR-2 compiler
	// (consecutive diagonal runs, 4×4 entangler blocks) — the A/B comparator
	// for the v3 three-qubit fusion.
	EngineFusedV2
	// EngineSharded executes the level-3 compiled program as independent
	// sample shards on the work-stealing scheduler: each shard streams the
	// whole instruction stream through one cache-resident block and owns a
	// private gradient accumulator, and shard partials merge in shard order
	// after the adjoint pass — so gradients are bit-identical for every
	// worker count, and uneven per-shard costs rebalance across the pool.
	// This is the single-process form of the ROADMAP's multi-node sharding:
	// a shard is exactly the unit a remote executor would ship.
	EngineSharded
	// EngineDist executes the same fixed cache-block shards as EngineSharded
	// but ships them to worker *processes* (local subprocesses or remote
	// torq-worker instances) over a framed binary protocol, merging results
	// in shard order so gradients and z rows stay bit-identical to the
	// in-process sharded engine for any worker count. The transport and
	// worker lifecycle live in repro/internal/dist, which registers itself
	// through RegisterDistBackend; selecting "dist" in a binary that does
	// not link that package panics with instructions.
	EngineDist
)

func (k EngineKind) String() string {
	switch k {
	case EngineFused:
		return "fused"
	case EngineLegacy:
		return "legacy"
	case EngineNaive:
		return "naive"
	case EngineFusedV1:
		return "fused1"
	case EngineFusedV2:
		return "fused2"
	case EngineSharded:
		return "sharded"
	case EngineDist:
		return "dist"
	}
	return "unknown"
}

// EngineKinds lists every registered engine in presentation order — the
// single source of truth for flag help, ParseEngine's error text, and the
// name round-trip test, so a newly landed engine cannot be omitted from any
// of them.
func EngineKinds() []EngineKind {
	return []EngineKind{
		EngineFused, EngineSharded, EngineDist,
		EngineFusedV2, EngineFusedV1, EngineLegacy, EngineNaive,
	}
}

// EngineNames returns the canonical flag names of every registered engine,
// "|"-separated, for flag usage strings and error messages.
func EngineNames() string {
	kinds := EngineKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return strings.Join(names, "|")
}

// ParseEngine maps a flag value to an EngineKind.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "fused", "":
		return EngineFused, nil
	case "fused2", "fused-v2":
		return EngineFusedV2, nil
	case "fused1", "fused-v1":
		return EngineFusedV1, nil
	case "sharded":
		return EngineSharded, nil
	case "dist":
		return EngineDist, nil
	case "legacy":
		return EngineLegacy, nil
	case "naive":
		return EngineNaive, nil
	}
	return EngineFused, fmt.Errorf("qsim: unknown engine %q (want %s)", s, EngineNames())
}

// Engine is the pluggable execution strategy for a PQC pass: it owns how
// the embedding, ansatz gates, readout, and adjoint backward traverse the
// batch. All engines are numerically interchangeable (see the parity tests)
// and differ only in architecture — the axis the paper's Table 2 measures.
type Engine interface {
	Kind() EngineKind
	Forward(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64)
	Backward(p *PQC, ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64)
}

var (
	engineFused   Engine = fusedEngine{}
	engineSharded Engine = shardedEngine{}
	engineDist    Engine = distEngine{}
	engineLegacy  Engine = &legacyEngine{kind: EngineLegacy, hooks: fastHooks}
	engineNaive   Engine = &legacyEngine{kind: EngineNaive, hooks: naiveHooks}
)

func (k EngineKind) engine() Engine {
	switch k {
	case EngineSharded:
		return engineSharded
	case EngineDist:
		return engineDist
	case EngineLegacy:
		return engineLegacy
	case EngineNaive:
		return engineNaive
	}
	return engineFused // the fused kinds differ only in compile level
}

// blockSamples picks how many samples one worker streams through the whole
// instruction stream at a time: small enough that all live channel states
// of the block stay cache-resident across every instruction, large enough
// to amortize instruction dispatch.
func blockSamples(dim, channels int) int {
	const targetBytes = 64 << 10 // L1/L2-resident working set per worker
	per := dim * 16 * channels   // re+im float64 planes per sample per channel
	b := targetBytes / per
	if b < 1 {
		return 1
	}
	if b > 64 {
		return 64
	}
	return b
}

// fusedEngine executes a compiled Program sample-block by sample-block: the
// outer parallel region splits the batch once per pass (par.RunChunk,
// chunked on the cache-block size), and each worker streams every
// instruction through one small block of samples while those samples'
// amplitudes stay cache-resident. A forward+backward pass costs two
// fork/joins total, against two per gate application for the legacy engine.
type fusedEngine struct{}

func (fusedEngine) Kind() EngineKind { return EngineFused }

func (fusedEngine) Forward(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (z []float64, ztans [][]float64) {
	prog, coeff, z, ztans, blk := prepForward(p, ws, angles, angleTans, theta)
	// Chunk on the cache-block size so scheduler ranges never split a block:
	// an arbitrary chunk would re-walk the instruction stream over partial
	// blocks at every chunk tail.
	par.RunChunk(ws.n, blk, func(_, lo, hi int) {
		fwdBlock(ws, prog, coeff, lo, hi, z, ztans)
	})
	return z, ztans
}

// prepForward performs the per-pass setup every program-streaming engine
// shares: save inputs, compile/fill the coefficient slots, allocate the
// outputs, and size the cache-resident sample block for the live channel
// count.
func prepForward(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (prog *Program, coeff []float64, z []float64, ztans [][]float64, blk int) {
	prog, coeff, blk = prepPass(p, ws, angles, angleTans, theta)
	n, nq := ws.n, ws.nq
	z = make([]float64, n*nq)
	ztans = make([][]float64, MaxTangents)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			ztans[k] = make([]float64, n*nq)
		}
	}
	return prog, coeff, z, ztans, blk
}

// prepPass is prepForward without the output allocation, for callers that
// own reusable output buffers (the dist ShardRunner, whose results are
// copied to the wire immediately): save inputs, fill the coefficient slots,
// and size the cache-resident sample block for the live channel count.
func prepPass(p *PQC, ws *Workspace, angles []float64, angleTans [][]float64, theta []float64) (prog *Program, coeff []float64, blk int) {
	ws.saveInputs(p, angles, angleTans, theta)
	prog = p.Program()
	if cap(ws.coeff) < prog.ncoef {
		ws.coeff = make([]float64, prog.ncoef)
	}
	coeff = ws.coeff[:prog.ncoef]
	prog.FillCoeffs(theta, coeff)

	channels := 1
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			channels++
		}
	}
	if ws.anyTan() {
		channels++ // scr1 holds D·v during the embedding
	}
	blk = blockSamples(ws.val.Dim, channels)
	return prog, coeff, blk
}

// fwdBlock streams the whole program through samples [lo, hi): state init,
// every instruction, then the ⟨Z⟩ and tangent readouts while the block is
// still hot.
//
//torq:hotpath
func fwdBlock(ws *Workspace, prog *Program, coeff []float64, lo, hi int, z []float64, ztans [][]float64) {
	ws.val.resetRange(lo, hi, false)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			ws.tan[k].resetRange(lo, hi, true)
		}
	}
	for _, in := range prog.ins {
		switch in.op {
		case opEmbed:
			embedRange(ws, in.q, lo, hi)
		case opEmbedAll:
			embedAllRange(ws, lo, hi)
		case opU4:
			u := (*[32]float64)(coeff[in.slot : in.slot+32])
			ws.val.applyU4Range(lo, hi, in.q, in.c, u)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyU4Range(lo, hi, in.q, in.c, u)
				}
			}
		case opU8:
			u := (*[128]float64)(coeff[in.slot : in.slot+128])
			ws.val.applyU8Range(lo, hi, in.q, in.c, in.q2, u)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyU8Range(lo, hi, in.q, in.c, in.q2, u)
				}
			}
		case opU2x3:
			u := (*[24]float64)(coeff[in.slot : in.slot+24])
			ws.val.applyU2x3Range(lo, hi, in.q, in.c, in.q2, u)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyU2x3Range(lo, hi, in.q, in.c, in.q2, u)
				}
			}
		case opPerm8:
			ws.val.applyPerm8Range(lo, hi, in.q, in.c, in.q2, in.cycles)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyPerm8Range(lo, hi, in.q, in.c, in.q2, in.cycles)
				}
			}
		case opDiagN:
			ph := coeff[in.slot : in.slot+2*ws.val.Dim]
			ws.val.applyDiagNRange(lo, hi, ph)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyDiagNRange(lo, hi, ph)
				}
			}
		case opU2:
			u := (*[8]float64)(coeff[in.slot : in.slot+8])
			ws.val.applyU2Range(lo, hi, in.q, u)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyU2Range(lo, hi, in.q, u)
				}
			}
		case opDiag:
			c := coeff[in.slot:]
			ws.val.applyDiagRange(lo, hi, in.q, c[0], c[1], c[2], c[3])
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyDiagRange(lo, hi, in.q, c[0], c[1], c[2], c[3])
				}
			}
		case opCNOT:
			ws.val.applyCNOTRange(lo, hi, in.c, in.q)
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyCNOTRange(lo, hi, in.c, in.q)
				}
			}
		case opCtrlDiag:
			c := coeff[in.slot:]
			ws.val.applyCtrlDiagRange(lo, hi, in.c, in.q, c[0], c[1], c[2], c[3])
			for k := 0; k < MaxTangents; k++ {
				if ws.active[k] {
					ws.tan[k].applyCtrlDiagRange(lo, hi, in.c, in.q, c[0], c[1], c[2], c[3])
				}
			}
		}
	}
	ws.val.expZRange(lo, hi, z)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			crossZRange(ws.val, ws.tan[k], ztans[k], lo, hi)
		}
	}
}

// embedAllRange is the fused embedding instruction: it applies the whole
// RX(angle_q) embedding block sample-major — every qubit of one sample
// before moving to the next — so the sample's amplitudes and its per-qubit
// trigonometry stay hot across the entire block. Tangent channels couple
// through t' = U·t + φ̇·(dU/dφ)·v exactly as in the per-qubit walk.
func embedAllRange(ws *Workspace, lo, hi int) {
	nq := ws.nq
	anyTan := ws.anyTan()
	for smp := lo; smp < hi; smp++ {
		for q := 0; q < nq; q++ {
			c, s := cosSin(ws.angles[smp*nq+q] / 2)
			if anyTan {
				ws.scr1.copySample(ws.val, smp)
				ws.scr1.applyIXSample(smp, q, -s/2, c/2) // D·v_pre
			}
			for k := 0; k < MaxTangents; k++ {
				if !ws.active[k] {
					continue
				}
				ws.tan[k].applyIXSample(smp, q, c, s)
				axpySample(ws.tan[k], ws.scr1, ws.angleTans[k][smp*nq+q], smp)
			}
			ws.val.applyIXSample(smp, q, c, s)
		}
	}
}

// embedRange applies the RX(angle_q) embedding on qubit q for samples
// [lo, hi), coupling tangent channels through t' = U·t + φ̇·(dU/dφ)·v.
func embedRange(ws *Workspace, q, lo, hi int) {
	ws.loadHalfAnglesRange(q, lo, hi)
	if ws.anyTan() {
		ws.scr1.copyRange(ws.val, lo, hi)
		ws.scr1.applyIXPerSampleRange(lo, hi, q, ws.dA, ws.dB) // D·v_pre
	}
	for k := 0; k < MaxTangents; k++ {
		if !ws.active[k] {
			continue
		}
		ws.tan[k].applyIXPerSampleRange(lo, hi, q, ws.cbuf, ws.sbuf)
		ws.gatherTanRange(k, q, lo, hi)
		axpyRange(ws.tan[k], ws.scr1, ws.tmpN, lo, hi)
	}
	ws.val.applyIXPerSampleRange(lo, hi, q, ws.cbuf, ws.sbuf)
}

func (fusedEngine) Backward(p *PQC, ws *Workspace, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dTheta []float64) {
	prog := p.Program()
	n := ws.n
	theta := ws.theta
	ws.ensureScratch()

	np := p.Circ.NumParams
	var gch []float64
	if prog.level < 2 {
		// Per-parameter half-angle table for the level-1 per-gate walk:
		// trigonometry once per pass, not once per block. Parameter indices
		// are unique per gate across all ansätze.
		if cap(ws.gch) < 2*np {
			ws.gch = make([]float64, 2*np)
		}
		gch = ws.gch[:2*np]
		for _, g := range p.Circ.Gates {
			if g.P >= 0 {
				gch[2*g.P] = cosHalf(theta[g.P])
				gch[2*g.P+1] = sinHalf(theta[g.P])
			}
		}
	} else {
		refreshCoeffs(ws, prog, theta)
	}

	blk := prepBackward(ws, gz, gztans)

	// Per-worker dTheta partials (and level-2 fused-block gradient scratch):
	// reduced in worker order after the region. Under SchedStatic this is
	// deterministic for a fixed worker bound; under the default stealing
	// scheduler the set of blocks each worker executes varies run to run, so
	// gradients are reproducible only to FP-reassociation level (~1e-15) —
	// callers needing bit-exact, worker-count-independent gradients use
	// EngineSharded, whose partials are per-shard instead of per-worker.
	nw := par.MaxWorkers() //torq:allow nondet -- sizes per-worker scratch only; reassociation caveat documented above
	if len(ws.dthW) < nw {
		ws.dthW = make([][]float64, nw)
	}
	for w := 0; w < nw; w++ {
		if cap(ws.dthW[w]) < np {
			ws.dthW[w] = make([]float64, np)
		}
		ws.dthW[w] = ws.dthW[w][:np]
		for i := range ws.dthW[w] {
			ws.dthW[w][i] = 0
		}
	}
	if prog.level >= 2 {
		if len(ws.diagTW) < nw {
			ws.diagTW = make([][]float64, nw)
		}
		nt := prog.ndiag * ws.val.Dim
		for w := 0; w < nw; w++ {
			if cap(ws.diagTW[w]) < nt {
				ws.diagTW[w] = make([]float64, nt)
			}
			ws.diagTW[w] = ws.diagTW[w][:nt]
			for i := range ws.diagTW[w] {
				ws.diagTW[w][i] = 0
			}
		}
	}

	// The chunk is the cache block, so each callback covers exactly one
	// block; the worker cap is the same nw the accumulator slots were sized
	// from, so a concurrent SetMaxWorkers increase cannot hand out a worker
	// id past them.
	par.RunChunkBounded(n, blk, nw, func(w, lo, hi int) {
		if prog.level >= 2 {
			sc := bwdScratch{dth: ws.dthW[w], diagT: ws.diagTW[w]}
			bwdBlockV2(ws, prog, lo, hi, gz, gztans, dAngles, dAngleTans, sc)
			return
		}
		bwdBlock(ws, prog, gch, lo, hi, gz, gztans, dAngles, dAngleTans, ws.dthW[w])
	})
	for w := 0; w < nw; w++ {
		if prog.level >= 2 {
			// Fused-diagonal gradients are linear in the per-basis adjoint
			// products, so each worker accumulates them across every range it
			// executed and the contraction against the sign tables runs once
			// per worker per pass — here, after the join, NOT inside the
			// region callback: the stealing scheduler may invoke the callback
			// several times for one worker, and contracting the cumulative
			// accumulator each time double-counts earlier ranges.
			reduceDiagNGrads(prog, ws.diagTW[w], ws.dthW[w], ws.val.Dim)
		}
		for i, v := range ws.dthW[w] {
			dTheta[i] += v
		}
	}
}

// refreshCoeffs prepares a level ≥ 2 backward walk of the fused instruction
// stream: refresh the forward coefficients (don't rely on ws.coeff surviving
// from Forward — the program may have been recompiled if the engine changed
// between passes) and the dU/dθ matrices of fused unitaries, once per pass.
func refreshCoeffs(ws *Workspace, prog *Program, theta []float64) {
	if cap(ws.coeff) < prog.ncoef {
		ws.coeff = make([]float64, prog.ncoef)
	}
	prog.FillCoeffs(theta, ws.coeff[:prog.ncoef])
	if prog.nderiv > 0 {
		if cap(ws.dcoef) < prog.nderiv {
			ws.dcoef = make([]float64, prog.nderiv)
		}
		ws.dcoef = ws.dcoef[:prog.nderiv]
		prog.FillDerivCoeffs(theta, ws.dcoef)
	}
}

// prepBackward sizes the upstream-weight buffers before the backward region
// (workers only fill their own sample ranges) and returns the cache-resident
// sample block for the live backward channel count.
func prepBackward(ws *Workspace, gz []float64, gztans [][]float64) (blk int) {
	ws.ensureW(0, gz)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			var g []float64
			if k < len(gztans) {
				g = gztans[k]
			}
			ws.ensureW(1+k, g)
		}
	}
	return backwardBlock(ws)
}

// backwardBlock sizes the cache-resident sample block for the backward
// channel count — val + λv, one (tangent, adjoint) pair per active channel,
// and the two scratch states. It is the shard size of the sharded engine's
// backward partition, shared with the dist coordinator so both produce the
// identical shard-order reduction.
func backwardBlock(ws *Workspace) int {
	channels := 4 // val + λv + scr1 + scr2
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			channels += 2
		}
	}
	return blockSamples(ws.val.Dim, channels)
}

// bwdScratch bundles one worker's (or, for the sharded engine, one shard's)
// private accumulation buffers for the level-2 backward walk.
type bwdScratch struct {
	dth   []float64 // per-parameter gradient partials
	diagT []float64 // per-(opDiagN, basis) adjoint-product accumulators
}

// seedAdjointsRange seeds the adjoint states from the quadratic readout for
// samples [lo, hi) (see legacyEngine.Backward for the derivation).
func seedAdjointsRange(ws *Workspace, lo, hi int, gz []float64, gztans [][]float64) {
	dim := ws.val.Dim
	if ws.wbuf[0] != nil {
		ws.buildWRange(0, gz, lo, hi)
	}
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] && ws.wbuf[1+k] != nil {
			ws.buildWRange(1+k, gztans[k], lo, hi)
		}
	}
	ws.lamV.resetRange(lo, hi, true)
	seed := func(lam *State, w []float64, src *State) {
		if w == nil {
			return
		}
		for i := lo * dim; i < hi*dim; i++ {
			lam.Re[i] += 2 * w[i] * src.Re[i]
			lam.Im[i] += 2 * w[i] * src.Im[i]
		}
	}
	seed(ws.lamV, ws.wbuf[0], ws.val)
	for k := 0; k < MaxTangents; k++ {
		if !ws.active[k] {
			continue
		}
		ws.lamT[k].resetRange(lo, hi, true)
		seed(ws.lamV, ws.wbuf[1+k], ws.tan[k])
		seed(ws.lamT[k], ws.wbuf[1+k], ws.val)
	}
}

// forChannelPairs runs f over every live (state, adjoint) channel pair.
func (ws *Workspace) forChannelPairs(f func(psi, lam *State)) {
	f(ws.val, ws.lamV)
	for k := 0; k < MaxTangents; k++ {
		if ws.active[k] {
			f(ws.tan[k], ws.lamT[k])
		}
	}
}

// bwdBlock runs the complete level-1 adjoint pass — readout seeding, reverse
// gate walk with per-parameter gradient accumulation, and reverse embedding —
// over samples [lo, hi).
func bwdBlock(ws *Workspace, prog *Program, gch []float64, lo, hi int, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, dth []float64) {
	seedAdjointsRange(ws, lo, hi, gz, gztans)

	// Walk the program segments in reverse at per-gate granularity: the
	// level-1 adjoint needs each parametrized gate's individual derivative
	// and pre-gate state, so fused instructions don't apply here.
	for si := len(prog.segs) - 1; si >= 0; si-- {
		seg := prog.segs[si]
		if seg.embed {
			reverseEmbedRange(ws, lo, hi, dAngles, dAngleTans)
		} else {
			reverseGatesRange(ws, seg.gates, gch, lo, hi, dth)
		}
	}
}

// bwdBlockV2 runs the level-2 adjoint pass over samples [lo, hi): it walks
// the fused instruction stream itself in reverse, so every fused block pays
// one inverse+gradient traversal instead of one per source gate, and the
// embedding un-applies as a single fused instruction.
//
//torq:hotpath
func bwdBlockV2(ws *Workspace, prog *Program, lo, hi int, gz []float64, gztans [][]float64, dAngles []float64, dAngleTans [][]float64, sc bwdScratch) {
	seedAdjointsRange(ws, lo, hi, gz, gztans)
	coeff := ws.coeff[:prog.ncoef]
	for i := len(prog.ins) - 1; i >= 0; i-- {
		in := &prog.ins[i]
		switch in.op {
		case opEmbedAll:
			reverseEmbedAllRange(ws, lo, hi, dAngles, dAngleTans)
		case opCNOT:
			g := in.gates[0]
			//torq:allow hotalloc -- forChannelPairs and this literal fully inline (-m shows no escape)
			ws.forChannelPairs(func(psi, lam *State) {
				reverseStepRange(g, 0, 0, psi, lam, lo, hi)
			})
		case opU2:
			if in.logDeriv {
				revU2LogDerivRange(ws, in, lo, hi, sc)
			} else {
				revU2Range(ws, in, coeff, ws.dcoef, lo, hi, sc)
			}
		case opU4:
			if in.logDeriv {
				revU4LogDerivRange(ws, in, coeff, lo, hi, sc)
			} else {
				revU4Range(ws, in, coeff, ws.dcoef, lo, hi, sc)
			}
		case opU8:
			revU8Range(ws, in, coeff, ws.dcoef, lo, hi, sc)
		case opU2x3:
			if in.logDeriv {
				revU2x3LogDerivRange(ws, in, coeff, lo, hi, sc)
			} else {
				revU2x3Range(ws, in, coeff, ws.dcoef, lo, hi, sc)
			}
		case opPerm8:
			// Un-apply the compile-time permutation on both states; a
			// CNOT-only block carries no parameters, so there is no gradient.
			//torq:allow hotalloc -- forChannelPairs and this literal fully inline (-m shows no escape)
			ws.forChannelPairs(func(psi, lam *State) {
				psi.applyPerm8Range(lo, hi, in.q, in.c, in.q2, in.invCycles)
				lam.applyPerm8Range(lo, hi, in.q, in.c, in.q2, in.invCycles)
			})
		case opDiag:
			revDiagRange(ws, in, coeff, lo, hi, sc)
		case opCtrlDiag:
			revCtrlDiagRange(ws, in, coeff, lo, hi, sc)
		case opDiagN:
			revDiagNRange(ws, in, coeff, lo, hi, sc)
		}
	}
}

// reverseStepRange performs one adjoint step for one (ψ, λ) channel pair in
// a single traversal: ψ ← U†ψ, λ ← U†λ, and — for parametrized gates — the
// returned gradient contribution Σ Re⟨λ_pre, (d log U/dθ)·ψ_pre⟩. The
// logarithmic-derivative form (dU/dθ = U·dlogU with dlogU = −i/2·{X, Y, Z})
// lets the gradient read the freshly recovered pre-gate states, so the
// legacy engine's three full-state passes per gate per channel (inverse,
// derivative scratch copy, inner product) collapse into one.
func reverseStepRange(g Gate, c, s float64, psi, lam *State, lo, hi int) float64 {
	dim := psi.Dim
	pr, pim := psi.Re, psi.Im
	lr, lim := lam.Re, lam.Im
	var sum float64
	switch g.Kind {
	case RX:
		// U† = c·I + i·s·X ; dlogU = −i/2·X.
		stride := 1 << g.Q
		step := stride << 1
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0, r1, i1 := pr[j], pim[j], pr[k], pim[k]
					pr[j] = c*r0 - s*i1
					pim[j] = c*i0 + s*r1
					pr[k] = -s*i0 + c*r1
					pim[k] = s*r0 + c*i1
					r0, i0, r1, i1 = lr[j], lim[j], lr[k], lim[k]
					lr[j] = c*r0 - s*i1
					lim[j] = c*i0 + s*r1
					lr[k] = -s*i0 + c*r1
					lim[k] = s*r0 + c*i1
					sum += 0.5 * (lr[j]*pim[k] - lim[j]*pr[k] + lr[k]*pim[j] - lim[k]*pr[j])
				}
			}
		}
	case RY:
		// U† = [[c, s], [−s, c]] ; dlogU = [[0, −1/2], [1/2, 0]].
		stride := 1 << g.Q
		step := stride << 1
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0, r1, i1 := pr[j], pim[j], pr[k], pim[k]
					pr[j] = c*r0 + s*r1
					pim[j] = c*i0 + s*i1
					pr[k] = -s*r0 + c*r1
					pim[k] = -s*i0 + c*i1
					r0, i0, r1, i1 = lr[j], lim[j], lr[k], lim[k]
					lr[j] = c*r0 + s*r1
					lim[j] = c*i0 + s*i1
					lr[k] = -s*r0 + c*r1
					lim[k] = -s*i0 + c*i1
					sum += 0.5 * (lr[k]*pr[j] + lim[k]*pim[j] - lr[j]*pr[k] - lim[j]*pim[k])
				}
			}
		}
	case RZ:
		// U† = diag(e^{+iθ/2}, e^{−iθ/2}) ; dlogU = diag(−i/2, +i/2).
		stride := 1 << g.Q
		step := stride << 1
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0 := pr[j], pim[j]
					pr[j] = c*r0 - s*i0
					pim[j] = c*i0 + s*r0
					r1, i1 := pr[k], pim[k]
					pr[k] = c*r1 + s*i1
					pim[k] = c*i1 - s*r1
					r0, i0 = lr[j], lim[j]
					lr[j] = c*r0 - s*i0
					lim[j] = c*i0 + s*r0
					r1, i1 = lr[k], lim[k]
					lr[k] = c*r1 + s*i1
					lim[k] = c*i1 - s*r1
					sum += 0.5 * (lr[j]*pim[j] - lim[j]*pr[j] - lr[k]*pim[k] + lim[k]*pr[k])
				}
			}
		}
	case CNOT:
		// Self-inverse swap on both states; no gradient.
		strideT := 1 << g.Q
		stepT := strideT << 1
		cMask := 1 << g.C
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += stepT {
				for j := blk; j < blk+strideT; j++ {
					if j&cMask == 0 {
						continue
					}
					a, b := off+j, off+j+strideT
					pr[a], pr[b] = pr[b], pr[a]
					pim[a], pim[b] = pim[b], pim[a]
					lr[a], lr[b] = lr[b], lr[a]
					lim[a], lim[b] = lim[b], lim[a]
				}
			}
		}
	case CRZ:
		// RZ step on the control-set subspace; the derivative is zero on the
		// control-unset subspace, so it contributes no gradient.
		strideT := 1 << g.Q
		stepT := strideT << 1
		cMask := 1 << g.C
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += stepT {
				for j := blk; j < blk+strideT; j++ {
					if j&cMask == 0 {
						continue
					}
					a, b := off+j, off+j+strideT
					r0, i0 := pr[a], pim[a]
					pr[a] = c*r0 - s*i0
					pim[a] = c*i0 + s*r0
					r1, i1 := pr[b], pim[b]
					pr[b] = c*r1 + s*i1
					pim[b] = c*i1 - s*r1
					r0, i0 = lr[a], lim[a]
					lr[a] = c*r0 - s*i0
					lim[a] = c*i0 + s*r0
					r1, i1 = lr[b], lim[b]
					lr[b] = c*r1 + s*i1
					lim[b] = c*i1 - s*r1
					sum += 0.5 * (lr[a]*pim[a] - lim[a]*pr[a] - lr[b]*pim[b] + lim[b]*pr[b])
				}
			}
		}
	}
	return sum
}

// reverseGatesRange is the blocked analogue of legacyEngine.reverseGates:
// one fused inverse+gradient traversal per channel pair per gate.
func reverseGatesRange(ws *Workspace, gates []Gate, gch []float64, lo, hi int, dth []float64) {
	for gi := len(gates) - 1; gi >= 0; gi-- {
		g := gates[gi]
		var c, s float64
		if g.P >= 0 {
			c, s = gch[2*g.P], gch[2*g.P+1]
		}
		grad := reverseStepRange(g, c, s, ws.val, ws.lamV, lo, hi)
		for k := 0; k < MaxTangents; k++ {
			if ws.active[k] {
				grad += reverseStepRange(g, c, s, ws.tan[k], ws.lamT[k], lo, hi)
			}
		}
		if g.P >= 0 {
			dth[g.P] += grad
		}
	}
}

// reverseEmbedRange is the blocked analogue of legacyEngine.reverseEmbedding;
// see that method for the derivation of terms (a)–(c).
func reverseEmbedRange(ws *Workspace, lo, hi int, dAngles []float64, dAngleTans [][]float64) {
	nq := ws.nq
	for q := nq - 1; q >= 0; q-- {
		ws.loadHalfAnglesRange(q, lo, hi)

		// (c) second-derivative coupling on the post-gate value state.
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			innerReRange(ws.lamT[k], ws.val, ws.tmpN, lo, hi)
			for i := lo; i < hi; i++ {
				dAngles[i*nq+q] -= 0.25 * ws.angleTans[k][i*nq+q] * ws.tmpN[i]
			}
		}

		// Recover v_pre and D·v_pre.
		negS := ws.negSinRange(lo, hi)
		ws.val.applyIXPerSampleRange(lo, hi, q, ws.cbuf, negS) // U†: RX(−φ)
		ws.scr1.copyRange(ws.val, lo, hi)
		ws.scr1.applyIXPerSampleRange(lo, hi, q, ws.dA, ws.dB) // D·v_pre

		// (a) dφ += Re⟨λv, D v_pre⟩ ; dφ̇ₖ += Re⟨λtₖ, D v_pre⟩.
		innerReRange(ws.lamV, ws.scr1, ws.tmpN, lo, hi)
		for i := lo; i < hi; i++ {
			dAngles[i*nq+q] += ws.tmpN[i]
		}
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			innerReRange(ws.lamT[k], ws.scr1, ws.tmpN, lo, hi)
			if dAngleTans != nil && k < len(dAngleTans) && dAngleTans[k] != nil {
				for i := lo; i < hi; i++ {
					dAngleTans[k][i*nq+q] += ws.tmpN[i]
				}
			}
		}

		// Recover tₖ_pre = U†(tₖ_post − φ̇ₖ·D v_pre), then
		// (b) dφ += Re⟨λtₖ, D tₖ_pre⟩.
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			for i := lo; i < hi; i++ {
				ws.tmpN[i] = -ws.angleTans[k][i*nq+q]
			}
			axpyRange(ws.tan[k], ws.scr1, ws.tmpN, lo, hi)
			ws.tan[k].applyIXPerSampleRange(lo, hi, q, ws.cbuf, negS)
			ws.scr2.copyRange(ws.tan[k], lo, hi)
			ws.scr2.applyIXPerSampleRange(lo, hi, q, ws.dA, ws.dB)
			innerReRange(ws.lamT[k], ws.scr2, ws.tmpN, lo, hi)
			for i := lo; i < hi; i++ {
				dAngles[i*nq+q] += ws.tmpN[i]
			}
		}

		// Propagate adjoints: λv ← U†λv + Σₖ φ̇ₖ·D†λtₖ ; λtₖ ← U†λtₖ.
		ws.lamV.applyIXPerSampleRange(lo, hi, q, ws.cbuf, negS)
		for k := 0; k < MaxTangents; k++ {
			if !ws.active[k] {
				continue
			}
			ws.scr2.copyRange(ws.lamT[k], lo, hi)
			ws.scr2.applyIXPerSampleRange(lo, hi, q, ws.dA, ws.negDBRange(lo, hi)) // D†
			ws.gatherTanRange(k, q, lo, hi)
			axpyRange(ws.lamV, ws.scr2, ws.tmpN, lo, hi)
			ws.lamT[k].applyIXPerSampleRange(lo, hi, q, ws.cbuf, negS)
		}
	}
}

// reverseEmbedAllRange is the fused embedding adjoint: the sample-major
// analogue of reverseEmbedRange, un-applying the whole embedding block for
// one sample — qubits in reverse order — before moving to the next, so the
// sample's value, tangent, and adjoint amplitudes stay cache-hot across the
// entire per-qubit sequence and the per-qubit scratch copies shrink to one
// sample. See legacyEngine.reverseEmbedding for the derivation of the
// gradient terms (a)–(c).
func reverseEmbedAllRange(ws *Workspace, lo, hi int, dAngles []float64, dAngleTans [][]float64) {
	nq := ws.nq
	for smp := lo; smp < hi; smp++ {
		for q := nq - 1; q >= 0; q-- {
			c, s := cosSin(ws.angles[smp*nq+q] / 2)

			// (c) second-derivative coupling on the post-gate value state.
			for k := 0; k < MaxTangents; k++ {
				if !ws.active[k] {
					continue
				}
				t := innerReSample(ws.lamT[k], ws.val, smp)
				dAngles[smp*nq+q] -= 0.25 * ws.angleTans[k][smp*nq+q] * t
			}

			// Recover v_pre and D·v_pre.
			ws.val.applyIXSample(smp, q, c, -s) // U†: RX(−φ)
			ws.scr1.copySample(ws.val, smp)
			ws.scr1.applyIXSample(smp, q, -s/2, c/2) // D·v_pre

			// (a) dφ += Re⟨λv, D v_pre⟩ ; dφ̇ₖ += Re⟨λtₖ, D v_pre⟩.
			dAngles[smp*nq+q] += innerReSample(ws.lamV, ws.scr1, smp)
			for k := 0; k < MaxTangents; k++ {
				if !ws.active[k] {
					continue
				}
				g := innerReSample(ws.lamT[k], ws.scr1, smp)
				if dAngleTans != nil && k < len(dAngleTans) && dAngleTans[k] != nil {
					dAngleTans[k][smp*nq+q] += g
				}
			}

			// Recover tₖ_pre = U†(tₖ_post − φ̇ₖ·D v_pre), then
			// (b) dφ += Re⟨λtₖ, D tₖ_pre⟩.
			for k := 0; k < MaxTangents; k++ {
				if !ws.active[k] {
					continue
				}
				axpySample(ws.tan[k], ws.scr1, -ws.angleTans[k][smp*nq+q], smp)
				ws.tan[k].applyIXSample(smp, q, c, -s)
				ws.scr2.copySample(ws.tan[k], smp)
				ws.scr2.applyIXSample(smp, q, -s/2, c/2)
				dAngles[smp*nq+q] += innerReSample(ws.lamT[k], ws.scr2, smp)
			}

			// Propagate adjoints: λv ← U†λv + Σₖ φ̇ₖ·D†λtₖ ; λtₖ ← U†λtₖ.
			ws.lamV.applyIXSample(smp, q, c, -s)
			for k := 0; k < MaxTangents; k++ {
				if !ws.active[k] {
					continue
				}
				ws.scr2.copySample(ws.lamT[k], smp)
				ws.scr2.applyIXSample(smp, q, -s/2, -c/2) // D†
				axpySample(ws.lamV, ws.scr2, ws.angleTans[k][smp*nq+q], smp)
				ws.lamT[k].applyIXSample(smp, q, c, -s)
			}
		}
	}
}

// revU2Range is the fused adjoint step for one opU2 block over samples
// [lo, hi): one traversal per channel pair recovers ψ_pre = U†ψ, propagates
// λ ← U†λ, and accumulates the adjoint outer product
// K[r,c] = Σ ψ_pre_c·conj(λ_post_r). Every source-gate gradient is linear
// in K — Re⟨λ_post, (dU/dθᵢ)·ψ_pre⟩ = Re Σ (dU/dθᵢ)[r,c]·K[r,c] — so the
// per-parameter work collapses to one tiny matrix contraction per block
// instead of one state traversal per source gate.
func revU2Range(ws *Workspace, in *instr, coeff, dcoef []float64, lo, hi int, sc bwdScratch) {
	u := coeff[in.slot : in.slot+8]
	// U† (conjugate transpose).
	ar, ai := u[0], -u[1]
	br, bi := u[4], -u[5]
	cr, ci := u[2], -u[3]
	dr, di := u[6], -u[7]
	var K [8]float64
	stride := 1 << in.q
	step := stride << 1
	dim := ws.val.Dim
	ws.forChannelPairs(func(psi, lam *State) {
		pr, pim := psi.Re, psi.Im
		lr, lim := lam.Re, lam.Im
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					r0, i0, r1, i1 := pr[j], pim[j], pr[k], pim[k]
					p0r := ar*r0 - ai*i0 + br*r1 - bi*i1
					p0i := ar*i0 + ai*r0 + br*i1 + bi*r1
					p1r := cr*r0 - ci*i0 + dr*r1 - di*i1
					p1i := cr*i0 + ci*r0 + dr*i1 + di*r1
					l0r, l0i, l1r, l1i := lr[j], lim[j], lr[k], lim[k]
					K[0] += p0r*l0r + p0i*l0i
					K[1] += p0i*l0r - p0r*l0i
					K[2] += p1r*l0r + p1i*l0i
					K[3] += p1i*l0r - p1r*l0i
					K[4] += p0r*l1r + p0i*l1i
					K[5] += p0i*l1r - p0r*l1i
					K[6] += p1r*l1r + p1i*l1i
					K[7] += p1i*l1r - p1r*l1i
					lr[j] = ar*l0r - ai*l0i + br*l1r - bi*l1i
					lim[j] = ar*l0i + ai*l0r + br*l1i + bi*l1r
					lr[k] = cr*l0r - ci*l0i + dr*l1r - di*l1i
					lim[k] = cr*l0i + ci*l0r + dr*l1i + di*l1r
					pr[j], pim[j], pr[k], pim[k] = p0r, p0i, p1r, p1i
				}
			}
		}
	})
	for t, p := range in.params {
		d := dcoef[in.dslot+8*t : in.dslot+8*t+8]
		sc.dth[p] += d[0]*K[0] - d[1]*K[1] + d[2]*K[2] - d[3]*K[3] +
			d[4]*K[4] - d[5]*K[5] + d[6]*K[6] - d[7]*K[7]
	}
}

// revU2LogDerivRange is the adjoint fast path for opU2 blocks whose source
// is a single parametrized rotation — the opU2 analogue of the opU2x3
// log-derivative path. The rotation's inverse recovers ψ_pre and λ_pre in
// one structured traversal, and the gradient reads directly off the
// recovered pair through the logarithmic derivative
// (Re⟨λ_post, dU·ψ_pre⟩ = Re⟨λ_pre, dlogU·ψ_pre⟩ with dlogU = −i/2·{X,Y,Z}),
// so the hot loop carries one scalar accumulator instead of a 2×2 adjoint
// outer product and the derivative coefficient slots are never contracted.
// reverseStepRange is exactly that fused inverse+gradient kernel.
func revU2LogDerivRange(ws *Workspace, in *instr, lo, hi int, sc bwdScratch) {
	g := in.gates[0]
	c, s := cosHalf(ws.theta[g.P]), sinHalf(ws.theta[g.P])
	var grad float64
	ws.forChannelPairs(func(psi, lam *State) {
		grad += reverseStepRange(g, c, s, psi, lam, lo, hi)
	})
	sc.dth[g.P] += grad
}

// revU4Range is the fused adjoint step for one opU4 entangler block: the
// 4×4 analogue of revU2Range over the block's qubit pair, with the same
// outer-product trick so per-group cost is independent of how many
// parametrized gates the block fused.
func revU4Range(ws *Workspace, in *instr, coeff, dcoef []float64, lo, hi int, sc bwdScratch) {
	u := coeff[in.slot : in.slot+32]
	var ud [32]float64 // U†
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			ud[(r*4+c)*2] = u[(c*4+r)*2]
			ud[(r*4+c)*2+1] = -u[(c*4+r)*2+1]
		}
	}
	var K [32]float64
	sa, sb := 1<<in.q, 1<<in.c
	dim := ws.val.Dim
	ws.forChannelPairs(func(psi, lam *State) {
		pr, pim := psi.Re, psi.Im
		lr, lim := lam.Re, lam.Im
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for b1 := 0; b1 < dim; b1 += sb << 1 {
				for b2 := b1; b2 < b1+sb; b2 += sa << 1 {
					for j := b2; j < b2+sa; j++ {
						i0 := off + j
						i1, i2, i3 := i0+sa, i0+sb, i0+sa+sb
						x0r, x0i := pr[i0], pim[i0]
						x1r, x1i := pr[i1], pim[i1]
						x2r, x2i := pr[i2], pim[i2]
						x3r, x3i := pr[i3], pim[i3]
						l0r, l0i := lr[i0], lim[i0]
						l1r, l1i := lr[i1], lim[i1]
						l2r, l2i := lr[i2], lim[i2]
						l3r, l3i := lr[i3], lim[i3]
						// ψ_pre = U†·ψ_post
						p0r := ud[0]*x0r - ud[1]*x0i + ud[2]*x1r - ud[3]*x1i + ud[4]*x2r - ud[5]*x2i + ud[6]*x3r - ud[7]*x3i
						p0i := ud[0]*x0i + ud[1]*x0r + ud[2]*x1i + ud[3]*x1r + ud[4]*x2i + ud[5]*x2r + ud[6]*x3i + ud[7]*x3r
						p1r := ud[8]*x0r - ud[9]*x0i + ud[10]*x1r - ud[11]*x1i + ud[12]*x2r - ud[13]*x2i + ud[14]*x3r - ud[15]*x3i
						p1i := ud[8]*x0i + ud[9]*x0r + ud[10]*x1i + ud[11]*x1r + ud[12]*x2i + ud[13]*x2r + ud[14]*x3i + ud[15]*x3r
						p2r := ud[16]*x0r - ud[17]*x0i + ud[18]*x1r - ud[19]*x1i + ud[20]*x2r - ud[21]*x2i + ud[22]*x3r - ud[23]*x3i
						p2i := ud[16]*x0i + ud[17]*x0r + ud[18]*x1i + ud[19]*x1r + ud[20]*x2i + ud[21]*x2r + ud[22]*x3i + ud[23]*x3r
						p3r := ud[24]*x0r - ud[25]*x0i + ud[26]*x1r - ud[27]*x1i + ud[28]*x2r - ud[29]*x2i + ud[30]*x3r - ud[31]*x3i
						p3i := ud[24]*x0i + ud[25]*x0r + ud[26]*x1i + ud[27]*x1r + ud[28]*x2i + ud[29]*x2r + ud[30]*x3i + ud[31]*x3r
						// K[r,c] += ψ_pre_c·conj(λ_post_r)
						K[0] += p0r*l0r + p0i*l0i
						K[1] += p0i*l0r - p0r*l0i
						K[2] += p1r*l0r + p1i*l0i
						K[3] += p1i*l0r - p1r*l0i
						K[4] += p2r*l0r + p2i*l0i
						K[5] += p2i*l0r - p2r*l0i
						K[6] += p3r*l0r + p3i*l0i
						K[7] += p3i*l0r - p3r*l0i
						K[8] += p0r*l1r + p0i*l1i
						K[9] += p0i*l1r - p0r*l1i
						K[10] += p1r*l1r + p1i*l1i
						K[11] += p1i*l1r - p1r*l1i
						K[12] += p2r*l1r + p2i*l1i
						K[13] += p2i*l1r - p2r*l1i
						K[14] += p3r*l1r + p3i*l1i
						K[15] += p3i*l1r - p3r*l1i
						K[16] += p0r*l2r + p0i*l2i
						K[17] += p0i*l2r - p0r*l2i
						K[18] += p1r*l2r + p1i*l2i
						K[19] += p1i*l2r - p1r*l2i
						K[20] += p2r*l2r + p2i*l2i
						K[21] += p2i*l2r - p2r*l2i
						K[22] += p3r*l2r + p3i*l2i
						K[23] += p3i*l2r - p3r*l2i
						K[24] += p0r*l3r + p0i*l3i
						K[25] += p0i*l3r - p0r*l3i
						K[26] += p1r*l3r + p1i*l3i
						K[27] += p1i*l3r - p1r*l3i
						K[28] += p2r*l3r + p2i*l3i
						K[29] += p2i*l3r - p2r*l3i
						K[30] += p3r*l3r + p3i*l3i
						K[31] += p3i*l3r - p3r*l3i
						// λ_pre = U†·λ_post
						lr[i0] = ud[0]*l0r - ud[1]*l0i + ud[2]*l1r - ud[3]*l1i + ud[4]*l2r - ud[5]*l2i + ud[6]*l3r - ud[7]*l3i
						lim[i0] = ud[0]*l0i + ud[1]*l0r + ud[2]*l1i + ud[3]*l1r + ud[4]*l2i + ud[5]*l2r + ud[6]*l3i + ud[7]*l3r
						lr[i1] = ud[8]*l0r - ud[9]*l0i + ud[10]*l1r - ud[11]*l1i + ud[12]*l2r - ud[13]*l2i + ud[14]*l3r - ud[15]*l3i
						lim[i1] = ud[8]*l0i + ud[9]*l0r + ud[10]*l1i + ud[11]*l1r + ud[12]*l2i + ud[13]*l2r + ud[14]*l3i + ud[15]*l3r
						lr[i2] = ud[16]*l0r - ud[17]*l0i + ud[18]*l1r - ud[19]*l1i + ud[20]*l2r - ud[21]*l2i + ud[22]*l3r - ud[23]*l3i
						lim[i2] = ud[16]*l0i + ud[17]*l0r + ud[18]*l1i + ud[19]*l1r + ud[20]*l2i + ud[21]*l2r + ud[22]*l3i + ud[23]*l3r
						lr[i3] = ud[24]*l0r - ud[25]*l0i + ud[26]*l1r - ud[27]*l1i + ud[28]*l2r - ud[29]*l2i + ud[30]*l3r - ud[31]*l3i
						lim[i3] = ud[24]*l0i + ud[25]*l0r + ud[26]*l1i + ud[27]*l1r + ud[28]*l2i + ud[29]*l2r + ud[30]*l3i + ud[31]*l3r
						pr[i0], pim[i0] = p0r, p0i
						pr[i1], pim[i1] = p1r, p1i
						pr[i2], pim[i2] = p2r, p2i
						pr[i3], pim[i3] = p3r, p3i
					}
				}
			}
		}
	})
	for t, p := range in.params {
		d := dcoef[in.dslot+32*t : in.dslot+32*t+32]
		var g float64
		for i := 0; i < 32; i += 2 {
			g += d[i]*K[i] - d[i+1]*K[i+1]
		}
		sc.dth[p] += g
	}
}

// revU4LogDerivRange is the adjoint fast path for opU4 entangler blocks
// whose single parametrized source gate is a single-qubit rotation commuting
// with everything fused before it (markU4LogDeriv). With U = A·G(θ)·B and
// [B, dlogG] = 0, Re⟨λ_post, dU·ψ_pre⟩ = Re⟨λ_pre, dlogG·ψ_pre⟩, so after
// the same U† traversal revU4Range pays anyway — recovering ψ_pre and
// λ_pre — the gradient is a per-group scalar read along the rotation's own
// qubit axis instead of a 32-slot adjoint outer product plus derivative
// contraction.
func revU4LogDerivRange(ws *Workspace, in *instr, coeff []float64, lo, hi int, sc bwdScratch) {
	u := coeff[in.slot : in.slot+32]
	var ud [32]float64 // U†
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			ud[(r*4+c)*2] = u[(c*4+r)*2]
			ud[(r*4+c)*2+1] = -u[(c*4+r)*2+1]
		}
	}
	g := in.gates[0]
	for _, cand := range in.gates {
		if cand.P >= 0 {
			g = cand
		}
	}
	// The rotation lives on one of the block's two qubits: its axis pairs
	// the four local amplitudes as (0,1),(2,3) when it sits on in.q (stride
	// sa) and (0,2),(1,3) when on in.c (stride sb).
	onLow := g.Q == in.q
	kind := g.Kind
	var grad float64
	sa, sb := 1<<in.q, 1<<in.c
	dim := ws.val.Dim
	ws.forChannelPairs(func(psi, lam *State) {
		pr, pim := psi.Re, psi.Im
		lr, lim := lam.Re, lam.Im
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for b1 := 0; b1 < dim; b1 += sb << 1 {
				for b2 := b1; b2 < b1+sb; b2 += sa << 1 {
					for j := b2; j < b2+sa; j++ {
						i0 := off + j
						i1, i2, i3 := i0+sa, i0+sb, i0+sa+sb
						x0r, x0i := pr[i0], pim[i0]
						x1r, x1i := pr[i1], pim[i1]
						x2r, x2i := pr[i2], pim[i2]
						x3r, x3i := pr[i3], pim[i3]
						l0r, l0i := lr[i0], lim[i0]
						l1r, l1i := lr[i1], lim[i1]
						l2r, l2i := lr[i2], lim[i2]
						l3r, l3i := lr[i3], lim[i3]
						// ψ_pre = U†·ψ_post
						p0r := ud[0]*x0r - ud[1]*x0i + ud[2]*x1r - ud[3]*x1i + ud[4]*x2r - ud[5]*x2i + ud[6]*x3r - ud[7]*x3i
						p0i := ud[0]*x0i + ud[1]*x0r + ud[2]*x1i + ud[3]*x1r + ud[4]*x2i + ud[5]*x2r + ud[6]*x3i + ud[7]*x3r
						p1r := ud[8]*x0r - ud[9]*x0i + ud[10]*x1r - ud[11]*x1i + ud[12]*x2r - ud[13]*x2i + ud[14]*x3r - ud[15]*x3i
						p1i := ud[8]*x0i + ud[9]*x0r + ud[10]*x1i + ud[11]*x1r + ud[12]*x2i + ud[13]*x2r + ud[14]*x3i + ud[15]*x3r
						p2r := ud[16]*x0r - ud[17]*x0i + ud[18]*x1r - ud[19]*x1i + ud[20]*x2r - ud[21]*x2i + ud[22]*x3r - ud[23]*x3i
						p2i := ud[16]*x0i + ud[17]*x0r + ud[18]*x1i + ud[19]*x1r + ud[20]*x2i + ud[21]*x2r + ud[22]*x3i + ud[23]*x3r
						p3r := ud[24]*x0r - ud[25]*x0i + ud[26]*x1r - ud[27]*x1i + ud[28]*x2r - ud[29]*x2i + ud[30]*x3r - ud[31]*x3i
						p3i := ud[24]*x0i + ud[25]*x0r + ud[26]*x1i + ud[27]*x1r + ud[28]*x2i + ud[29]*x2r + ud[30]*x3i + ud[31]*x3r
						// λ_pre = U†·λ_post
						q0r := ud[0]*l0r - ud[1]*l0i + ud[2]*l1r - ud[3]*l1i + ud[4]*l2r - ud[5]*l2i + ud[6]*l3r - ud[7]*l3i
						q0i := ud[0]*l0i + ud[1]*l0r + ud[2]*l1i + ud[3]*l1r + ud[4]*l2i + ud[5]*l2r + ud[6]*l3i + ud[7]*l3r
						q1r := ud[8]*l0r - ud[9]*l0i + ud[10]*l1r - ud[11]*l1i + ud[12]*l2r - ud[13]*l2i + ud[14]*l3r - ud[15]*l3i
						q1i := ud[8]*l0i + ud[9]*l0r + ud[10]*l1i + ud[11]*l1r + ud[12]*l2i + ud[13]*l2r + ud[14]*l3i + ud[15]*l3r
						q2r := ud[16]*l0r - ud[17]*l0i + ud[18]*l1r - ud[19]*l1i + ud[20]*l2r - ud[21]*l2i + ud[22]*l3r - ud[23]*l3i
						q2i := ud[16]*l0i + ud[17]*l0r + ud[18]*l1i + ud[19]*l1r + ud[20]*l2i + ud[21]*l2r + ud[22]*l3i + ud[23]*l3r
						q3r := ud[24]*l0r - ud[25]*l0i + ud[26]*l1r - ud[27]*l1i + ud[28]*l2r - ud[29]*l2i + ud[30]*l3r - ud[31]*l3i
						q3i := ud[24]*l0i + ud[25]*l0r + ud[26]*l1i + ud[27]*l1r + ud[28]*l2i + ud[29]*l2r + ud[30]*l3i + ud[31]*l3r
						lr[i0], lim[i0] = q0r, q0i
						lr[i1], lim[i1] = q1r, q1i
						lr[i2], lim[i2] = q2r, q2i
						lr[i3], lim[i3] = q3r, q3i
						pr[i0], pim[i0] = p0r, p0i
						pr[i1], pim[i1] = p1r, p1i
						pr[i2], pim[i2] = p2r, p2i
						pr[i3], pim[i3] = p3r, p3i
						// Re⟨λ_pre, dlogG·ψ_pre⟩ over the two axis pairs.
						aJr, aJi, aKr, aKi := p0r, p0i, p1r, p1i
						bJr, bJi, bKr, bKi := p2r, p2i, p3r, p3i
						lJr, lJi, lKr, lKi := q0r, q0i, q1r, q1i
						mJr, mJi, mKr, mKi := q2r, q2i, q3r, q3i
						if !onLow {
							aKr, aKi, bJr, bJi = p2r, p2i, p1r, p1i
							lKr, lKi, mJr, mJi = q2r, q2i, q1r, q1i
						}
						switch kind {
						case RX:
							grad += 0.5 * (lJr*aKi - lJi*aKr + lKr*aJi - lKi*aJr)
							grad += 0.5 * (mJr*bKi - mJi*bKr + mKr*bJi - mKi*bJr)
						case RY:
							grad += 0.5 * (lKr*aJr + lKi*aJi - lJr*aKr - lJi*aKi)
							grad += 0.5 * (mKr*bJr + mKi*bJi - mJr*bKr - mJi*bKi)
						case RZ:
							grad += 0.5 * (lJr*aJi - lJi*aJr - lKr*aKi + lKi*aKr)
							grad += 0.5 * (mJr*bJi - mJi*bJr - mKr*bKi + mKi*bKr)
						}
					}
				}
			}
		}
	})
	sc.dth[g.P] += grad
}

// revU8Range is the fused adjoint step for one opU8 three-qubit block: the
// 8×8 analogue of revU4Range, with the same adjoint outer-product trick —
// one traversal per channel pair recovers ψ_pre = U†ψ, propagates λ ← U†λ,
// and accumulates K[r,c] = Σ ψ_pre_c·conj(λ_post_r), from which every fused
// parameter's gradient is one 8×8 contraction against its dU/dθ slot.
func revU8Range(ws *Workspace, in *instr, coeff, dcoef []float64, lo, hi int, sc bwdScratch) {
	u := coeff[in.slot : in.slot+128]
	var ud [128]float64 // U†
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			ud[(r*8+c)*2] = u[(c*8+r)*2]
			ud[(r*8+c)*2+1] = -u[(c*8+r)*2+1]
		}
	}
	var K [128]float64
	za, zb, zc := 1<<in.q, 1<<in.c, 1<<in.q2
	dim := ws.val.Dim
	ws.forChannelPairs(func(psi, lam *State) {
		pr, pim := psi.Re, psi.Im
		lr, lim := lam.Re, lam.Im
		var idx [8]int
		var xr, xi, yr, yi, gr, gi [8]float64
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for b1 := 0; b1 < dim; b1 += zc << 1 {
				for b2 := b1; b2 < b1+zc; b2 += zb << 1 {
					for b3 := b2; b3 < b2+zb; b3 += za << 1 {
						for j := b3; j < b3+za; j++ {
							i0 := off + j
							idx[0] = i0
							idx[1] = i0 + za
							idx[2] = i0 + zb
							idx[3] = i0 + za + zb
							idx[4] = i0 + zc
							idx[5] = i0 + za + zc
							idx[6] = i0 + zb + zc
							idx[7] = i0 + za + zb + zc
							for t := 0; t < 8; t++ {
								xr[t], xi[t] = pr[idx[t]], pim[idx[t]]
								gr[t], gi[t] = lr[idx[t]], lim[idx[t]]
							}
							// ψ_pre = U†·ψ_post
							for r := 0; r < 8; r++ {
								var sumR, sumI float64
								row := ud[r*16 : r*16+16]
								for k := 0; k < 8; k++ {
									ar, ai := row[2*k], row[2*k+1]
									sumR += ar*xr[k] - ai*xi[k]
									sumI += ar*xi[k] + ai*xr[k]
								}
								yr[r], yi[r] = sumR, sumI
							}
							// K[r,c] += ψ_pre_c·conj(λ_post_r)
							for r := 0; r < 8; r++ {
								l0r, l0i := gr[r], gi[r]
								krow := K[r*16 : r*16+16]
								for c := 0; c < 8; c++ {
									krow[2*c] += yr[c]*l0r + yi[c]*l0i
									krow[2*c+1] += yi[c]*l0r - yr[c]*l0i
								}
							}
							// λ_pre = U†·λ_post
							for r := 0; r < 8; r++ {
								var sumR, sumI float64
								row := ud[r*16 : r*16+16]
								for k := 0; k < 8; k++ {
									ar, ai := row[2*k], row[2*k+1]
									sumR += ar*gr[k] - ai*gi[k]
									sumI += ar*gi[k] + ai*gr[k]
								}
								lr[idx[r]], lim[idx[r]] = sumR, sumI
							}
							for t := 0; t < 8; t++ {
								pr[idx[t]], pim[idx[t]] = yr[t], yi[t]
							}
						}
					}
				}
			}
		}
	})
	for t, p := range in.params {
		d := dcoef[in.dslot+128*t : in.dslot+128*t+128]
		var g float64
		for i := 0; i < 128; i += 2 {
			g += d[i]*K[i] - d[i+1]*K[i+1]
		}
		sc.dth[p] += g
	}
}

// revU2x3LogDerivRange is the adjoint fast path for triples whose three
// factors are each a single parametrized rotation — the shape every
// data-parallel rotation wall compiles to. After inverting factor f on both
// the state and the adjoint, the factor's gradient is read directly off the
// recovered pair through its logarithmic derivative
// (Re⟨λ, dU·ψ_pre⟩ = Re⟨U†λ, dlogU·U†ψ⟩ with dlogU = −i/2·{X, Y, Z}),
// so the traversal carries one scalar accumulator per factor instead of a
// 2×2 adjoint outer product, and the derivative coefficient slots are never
// touched.
func revU2x3LogDerivRange(ws *Workspace, in *instr, coeff []float64, lo, hi int, sc2 bwdScratch) {
	u := coeff[in.slot : in.slot+24]
	// Per-factor U† (conjugate transpose of each 2×2 block).
	var ud [24]float64
	for f := 0; f < 3; f++ {
		ud[f*8+0], ud[f*8+1] = u[f*8+0], -u[f*8+1]
		ud[f*8+2], ud[f*8+3] = u[f*8+4], -u[f*8+5]
		ud[f*8+4], ud[f*8+5] = u[f*8+2], -u[f*8+3]
		ud[f*8+6], ud[f*8+7] = u[f*8+6], -u[f*8+7]
	}
	aar, aai := ud[0], ud[0+1]
	abr, abi := ud[0+2], ud[0+3]
	acr, aci := ud[0+4], ud[0+5]
	adr, adi := ud[0+6], ud[0+7]
	bar, bai := ud[8], ud[8+1]
	bbr, bbi := ud[8+2], ud[8+3]
	bcr, bci := ud[8+4], ud[8+5]
	bdr, bdi := ud[8+6], ud[8+7]
	car, cai := ud[16], ud[16+1]
	cbr, cbi := ud[16+2], ud[16+3]
	ccr, cci := ud[16+4], ud[16+5]
	cdr, cdi := ud[16+6], ud[16+7]
	var kinds [3]GateKind
	var prm [3]int
	for _, g := range in.gates {
		f := localBit3(g.Q, in.q, in.c, in.q2)
		kinds[f], prm[f] = g.Kind, g.P
	}
	k0, k1, k2 := kinds[0], kinds[1], kinds[2]
	var gA, gB, gC float64
	sa, sb, sc := 1<<in.q, 1<<in.c, 1<<in.q2
	dim := ws.val.Dim
	ws.forChannelPairs(func(psi, lam *State) {
		pr, pim := psi.Re, psi.Im
		lr, lim := lam.Re, lam.Im
		var t0r, t0i, t1r, t1i float64
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for b1 := 0; b1 < dim; b1 += sc << 1 {
				for b2 := b1; b2 < b1+sc; b2 += sb << 1 {
					for b3 := b2; b3 < b2+sb; b3 += sa << 1 {
						for j := b3; j < b3+sa; j++ {
							i0 := off + j
							i1 := i0 + sa
							i2 := i0 + sb
							i3 := i2 + sa
							i4 := i0 + sc
							i5 := i4 + sa
							i6 := i4 + sb
							i7 := i6 + sa
							x0r, x0i := pr[i0], pim[i0]
							x1r, x1i := pr[i1], pim[i1]
							x2r, x2i := pr[i2], pim[i2]
							x3r, x3i := pr[i3], pim[i3]
							x4r, x4i := pr[i4], pim[i4]
							x5r, x5i := pr[i5], pim[i5]
							x6r, x6i := pr[i6], pim[i6]
							x7r, x7i := pr[i7], pim[i7]
							g0r, g0i := lr[i0], lim[i0]
							g1r, g1i := lr[i1], lim[i1]
							g2r, g2i := lr[i2], lim[i2]
							g3r, g3i := lr[i3], lim[i3]
							g4r, g4i := lr[i4], lim[i4]
							g5r, g5i := lr[i5], lim[i5]
							g6r, g6i := lr[i6], lim[i6]
							g7r, g7i := lr[i7], lim[i7]
							t0r = aar*x0r - aai*x0i + abr*x1r - abi*x1i
							t0i = aar*x0i + aai*x0r + abr*x1i + abi*x1r
							t1r = acr*x0r - aci*x0i + adr*x1r - adi*x1i
							t1i = acr*x0i + aci*x0r + adr*x1i + adi*x1r
							x0r, x0i, x1r, x1i = t0r, t0i, t1r, t1i
							t0r = aar*x2r - aai*x2i + abr*x3r - abi*x3i
							t0i = aar*x2i + aai*x2r + abr*x3i + abi*x3r
							t1r = acr*x2r - aci*x2i + adr*x3r - adi*x3i
							t1i = acr*x2i + aci*x2r + adr*x3i + adi*x3r
							x2r, x2i, x3r, x3i = t0r, t0i, t1r, t1i
							t0r = aar*x4r - aai*x4i + abr*x5r - abi*x5i
							t0i = aar*x4i + aai*x4r + abr*x5i + abi*x5r
							t1r = acr*x4r - aci*x4i + adr*x5r - adi*x5i
							t1i = acr*x4i + aci*x4r + adr*x5i + adi*x5r
							x4r, x4i, x5r, x5i = t0r, t0i, t1r, t1i
							t0r = aar*x6r - aai*x6i + abr*x7r - abi*x7i
							t0i = aar*x6i + aai*x6r + abr*x7i + abi*x7r
							t1r = acr*x6r - aci*x6i + adr*x7r - adi*x7i
							t1i = acr*x6i + aci*x6r + adr*x7i + adi*x7r
							x6r, x6i, x7r, x7i = t0r, t0i, t1r, t1i
							t0r = aar*g0r - aai*g0i + abr*g1r - abi*g1i
							t0i = aar*g0i + aai*g0r + abr*g1i + abi*g1r
							t1r = acr*g0r - aci*g0i + adr*g1r - adi*g1i
							t1i = acr*g0i + aci*g0r + adr*g1i + adi*g1r
							g0r, g0i, g1r, g1i = t0r, t0i, t1r, t1i
							t0r = aar*g2r - aai*g2i + abr*g3r - abi*g3i
							t0i = aar*g2i + aai*g2r + abr*g3i + abi*g3r
							t1r = acr*g2r - aci*g2i + adr*g3r - adi*g3i
							t1i = acr*g2i + aci*g2r + adr*g3i + adi*g3r
							g2r, g2i, g3r, g3i = t0r, t0i, t1r, t1i
							t0r = aar*g4r - aai*g4i + abr*g5r - abi*g5i
							t0i = aar*g4i + aai*g4r + abr*g5i + abi*g5r
							t1r = acr*g4r - aci*g4i + adr*g5r - adi*g5i
							t1i = acr*g4i + aci*g4r + adr*g5i + adi*g5r
							g4r, g4i, g5r, g5i = t0r, t0i, t1r, t1i
							t0r = aar*g6r - aai*g6i + abr*g7r - abi*g7i
							t0i = aar*g6i + aai*g6r + abr*g7i + abi*g7r
							t1r = acr*g6r - aci*g6i + adr*g7r - adi*g7i
							t1i = acr*g6i + aci*g6r + adr*g7i + adi*g7r
							g6r, g6i, g7r, g7i = t0r, t0i, t1r, t1i
							switch k0 {
							case RX:
								gA += g0r*x1i - g0i*x1r + g1r*x0i - g1i*x0r
								gA += g2r*x3i - g2i*x3r + g3r*x2i - g3i*x2r
								gA += g4r*x5i - g4i*x5r + g5r*x4i - g5i*x4r
								gA += g6r*x7i - g6i*x7r + g7r*x6i - g7i*x6r
							case RY:
								gA += g1r*x0r + g1i*x0i - g0r*x1r - g0i*x1i
								gA += g3r*x2r + g3i*x2i - g2r*x3r - g2i*x3i
								gA += g5r*x4r + g5i*x4i - g4r*x5r - g4i*x5i
								gA += g7r*x6r + g7i*x6i - g6r*x7r - g6i*x7i
							default: // RZ
								gA += g0r*x0i - g0i*x0r - g1r*x1i + g1i*x1r
								gA += g2r*x2i - g2i*x2r - g3r*x3i + g3i*x3r
								gA += g4r*x4i - g4i*x4r - g5r*x5i + g5i*x5r
								gA += g6r*x6i - g6i*x6r - g7r*x7i + g7i*x7r
							}
							t0r = bar*x0r - bai*x0i + bbr*x2r - bbi*x2i
							t0i = bar*x0i + bai*x0r + bbr*x2i + bbi*x2r
							t1r = bcr*x0r - bci*x0i + bdr*x2r - bdi*x2i
							t1i = bcr*x0i + bci*x0r + bdr*x2i + bdi*x2r
							x0r, x0i, x2r, x2i = t0r, t0i, t1r, t1i
							t0r = bar*x1r - bai*x1i + bbr*x3r - bbi*x3i
							t0i = bar*x1i + bai*x1r + bbr*x3i + bbi*x3r
							t1r = bcr*x1r - bci*x1i + bdr*x3r - bdi*x3i
							t1i = bcr*x1i + bci*x1r + bdr*x3i + bdi*x3r
							x1r, x1i, x3r, x3i = t0r, t0i, t1r, t1i
							t0r = bar*x4r - bai*x4i + bbr*x6r - bbi*x6i
							t0i = bar*x4i + bai*x4r + bbr*x6i + bbi*x6r
							t1r = bcr*x4r - bci*x4i + bdr*x6r - bdi*x6i
							t1i = bcr*x4i + bci*x4r + bdr*x6i + bdi*x6r
							x4r, x4i, x6r, x6i = t0r, t0i, t1r, t1i
							t0r = bar*x5r - bai*x5i + bbr*x7r - bbi*x7i
							t0i = bar*x5i + bai*x5r + bbr*x7i + bbi*x7r
							t1r = bcr*x5r - bci*x5i + bdr*x7r - bdi*x7i
							t1i = bcr*x5i + bci*x5r + bdr*x7i + bdi*x7r
							x5r, x5i, x7r, x7i = t0r, t0i, t1r, t1i
							t0r = bar*g0r - bai*g0i + bbr*g2r - bbi*g2i
							t0i = bar*g0i + bai*g0r + bbr*g2i + bbi*g2r
							t1r = bcr*g0r - bci*g0i + bdr*g2r - bdi*g2i
							t1i = bcr*g0i + bci*g0r + bdr*g2i + bdi*g2r
							g0r, g0i, g2r, g2i = t0r, t0i, t1r, t1i
							t0r = bar*g1r - bai*g1i + bbr*g3r - bbi*g3i
							t0i = bar*g1i + bai*g1r + bbr*g3i + bbi*g3r
							t1r = bcr*g1r - bci*g1i + bdr*g3r - bdi*g3i
							t1i = bcr*g1i + bci*g1r + bdr*g3i + bdi*g3r
							g1r, g1i, g3r, g3i = t0r, t0i, t1r, t1i
							t0r = bar*g4r - bai*g4i + bbr*g6r - bbi*g6i
							t0i = bar*g4i + bai*g4r + bbr*g6i + bbi*g6r
							t1r = bcr*g4r - bci*g4i + bdr*g6r - bdi*g6i
							t1i = bcr*g4i + bci*g4r + bdr*g6i + bdi*g6r
							g4r, g4i, g6r, g6i = t0r, t0i, t1r, t1i
							t0r = bar*g5r - bai*g5i + bbr*g7r - bbi*g7i
							t0i = bar*g5i + bai*g5r + bbr*g7i + bbi*g7r
							t1r = bcr*g5r - bci*g5i + bdr*g7r - bdi*g7i
							t1i = bcr*g5i + bci*g5r + bdr*g7i + bdi*g7r
							g5r, g5i, g7r, g7i = t0r, t0i, t1r, t1i
							switch k1 {
							case RX:
								gB += g0r*x2i - g0i*x2r + g2r*x0i - g2i*x0r
								gB += g1r*x3i - g1i*x3r + g3r*x1i - g3i*x1r
								gB += g4r*x6i - g4i*x6r + g6r*x4i - g6i*x4r
								gB += g5r*x7i - g5i*x7r + g7r*x5i - g7i*x5r
							case RY:
								gB += g2r*x0r + g2i*x0i - g0r*x2r - g0i*x2i
								gB += g3r*x1r + g3i*x1i - g1r*x3r - g1i*x3i
								gB += g6r*x4r + g6i*x4i - g4r*x6r - g4i*x6i
								gB += g7r*x5r + g7i*x5i - g5r*x7r - g5i*x7i
							default: // RZ
								gB += g0r*x0i - g0i*x0r - g2r*x2i + g2i*x2r
								gB += g1r*x1i - g1i*x1r - g3r*x3i + g3i*x3r
								gB += g4r*x4i - g4i*x4r - g6r*x6i + g6i*x6r
								gB += g5r*x5i - g5i*x5r - g7r*x7i + g7i*x7r
							}
							t0r = car*x0r - cai*x0i + cbr*x4r - cbi*x4i
							t0i = car*x0i + cai*x0r + cbr*x4i + cbi*x4r
							t1r = ccr*x0r - cci*x0i + cdr*x4r - cdi*x4i
							t1i = ccr*x0i + cci*x0r + cdr*x4i + cdi*x4r
							x0r, x0i, x4r, x4i = t0r, t0i, t1r, t1i
							t0r = car*x1r - cai*x1i + cbr*x5r - cbi*x5i
							t0i = car*x1i + cai*x1r + cbr*x5i + cbi*x5r
							t1r = ccr*x1r - cci*x1i + cdr*x5r - cdi*x5i
							t1i = ccr*x1i + cci*x1r + cdr*x5i + cdi*x5r
							x1r, x1i, x5r, x5i = t0r, t0i, t1r, t1i
							t0r = car*x2r - cai*x2i + cbr*x6r - cbi*x6i
							t0i = car*x2i + cai*x2r + cbr*x6i + cbi*x6r
							t1r = ccr*x2r - cci*x2i + cdr*x6r - cdi*x6i
							t1i = ccr*x2i + cci*x2r + cdr*x6i + cdi*x6r
							x2r, x2i, x6r, x6i = t0r, t0i, t1r, t1i
							t0r = car*x3r - cai*x3i + cbr*x7r - cbi*x7i
							t0i = car*x3i + cai*x3r + cbr*x7i + cbi*x7r
							t1r = ccr*x3r - cci*x3i + cdr*x7r - cdi*x7i
							t1i = ccr*x3i + cci*x3r + cdr*x7i + cdi*x7r
							x3r, x3i, x7r, x7i = t0r, t0i, t1r, t1i
							t0r = car*g0r - cai*g0i + cbr*g4r - cbi*g4i
							t0i = car*g0i + cai*g0r + cbr*g4i + cbi*g4r
							t1r = ccr*g0r - cci*g0i + cdr*g4r - cdi*g4i
							t1i = ccr*g0i + cci*g0r + cdr*g4i + cdi*g4r
							g0r, g0i, g4r, g4i = t0r, t0i, t1r, t1i
							t0r = car*g1r - cai*g1i + cbr*g5r - cbi*g5i
							t0i = car*g1i + cai*g1r + cbr*g5i + cbi*g5r
							t1r = ccr*g1r - cci*g1i + cdr*g5r - cdi*g5i
							t1i = ccr*g1i + cci*g1r + cdr*g5i + cdi*g5r
							g1r, g1i, g5r, g5i = t0r, t0i, t1r, t1i
							t0r = car*g2r - cai*g2i + cbr*g6r - cbi*g6i
							t0i = car*g2i + cai*g2r + cbr*g6i + cbi*g6r
							t1r = ccr*g2r - cci*g2i + cdr*g6r - cdi*g6i
							t1i = ccr*g2i + cci*g2r + cdr*g6i + cdi*g6r
							g2r, g2i, g6r, g6i = t0r, t0i, t1r, t1i
							t0r = car*g3r - cai*g3i + cbr*g7r - cbi*g7i
							t0i = car*g3i + cai*g3r + cbr*g7i + cbi*g7r
							t1r = ccr*g3r - cci*g3i + cdr*g7r - cdi*g7i
							t1i = ccr*g3i + cci*g3r + cdr*g7i + cdi*g7r
							g3r, g3i, g7r, g7i = t0r, t0i, t1r, t1i
							switch k2 {
							case RX:
								gC += g0r*x4i - g0i*x4r + g4r*x0i - g4i*x0r
								gC += g1r*x5i - g1i*x5r + g5r*x1i - g5i*x1r
								gC += g2r*x6i - g2i*x6r + g6r*x2i - g6i*x2r
								gC += g3r*x7i - g3i*x7r + g7r*x3i - g7i*x3r
							case RY:
								gC += g4r*x0r + g4i*x0i - g0r*x4r - g0i*x4i
								gC += g5r*x1r + g5i*x1i - g1r*x5r - g1i*x5i
								gC += g6r*x2r + g6i*x2i - g2r*x6r - g2i*x6i
								gC += g7r*x3r + g7i*x3i - g3r*x7r - g3i*x7i
							default: // RZ
								gC += g0r*x0i - g0i*x0r - g4r*x4i + g4i*x4r
								gC += g1r*x1i - g1i*x1r - g5r*x5i + g5i*x5r
								gC += g2r*x2i - g2i*x2r - g6r*x6i + g6i*x6r
								gC += g3r*x3i - g3i*x3r - g7r*x7i + g7i*x7r
							}
							pr[i0], pim[i0] = x0r, x0i
							pr[i1], pim[i1] = x1r, x1i
							pr[i2], pim[i2] = x2r, x2i
							pr[i3], pim[i3] = x3r, x3i
							pr[i4], pim[i4] = x4r, x4i
							pr[i5], pim[i5] = x5r, x5i
							pr[i6], pim[i6] = x6r, x6i
							pr[i7], pim[i7] = x7r, x7i
							lr[i0], lim[i0] = g0r, g0i
							lr[i1], lim[i1] = g1r, g1i
							lr[i2], lim[i2] = g2r, g2i
							lr[i3], lim[i3] = g3r, g3i
							lr[i4], lim[i4] = g4r, g4i
							lr[i5], lim[i5] = g5r, g5i
							lr[i6], lim[i6] = g6r, g6i
							lr[i7], lim[i7] = g7r, g7i
						}
					}
				}
			}
		}
	})
	sc2.dth[prm[0]] += 0.5 * gA
	sc2.dth[prm[1]] += 0.5 * gB
	sc2.dth[prm[2]] += 0.5 * gC
}

// revU2x3Range is the fused adjoint step for a Kronecker-structured triple:
// one traversal per channel pair processes the three independent 2×2
// factors in sequence on each 8-amplitude group. For factor f the 2×2
// adjoint product K_f is taken between the ψ side with factors ≤ f already
// inverted and the λ side with factors < f inverted — exactly the pairing
// that makes Re⟨λ_post, (···⊗dU_f⊗···)ψ_pre⟩ equal the 2×2 contraction of
// dU_f against K_f, because the untouched unitary factors cancel through
// ⟨Ux, Uy⟩ = ⟨x, y⟩. Arithmetic matches three separate revU2Range steps;
// the memory passes collapse to one. The stages are unrolled over the
// group's pair structure, and the K products accumulate into per-pair
// scalars flushed once per channel pair, keeping the hot loop free of
// memory read-modify-writes.
func revU2x3Range(ws *Workspace, in *instr, coeff, dcoef []float64, lo, hi int, sc2 bwdScratch) {
	u := coeff[in.slot : in.slot+24]
	// Per-factor U† (conjugate transpose of each 2×2 block).
	var ud [24]float64
	for f := 0; f < 3; f++ {
		ud[f*8+0], ud[f*8+1] = u[f*8+0], -u[f*8+1]
		ud[f*8+2], ud[f*8+3] = u[f*8+4], -u[f*8+5]
		ud[f*8+4], ud[f*8+5] = u[f*8+2], -u[f*8+3]
		ud[f*8+6], ud[f*8+7] = u[f*8+6], -u[f*8+7]
	}
	aar, aai := ud[0], ud[0+1]
	abr, abi := ud[0+2], ud[0+3]
	acr, aci := ud[0+4], ud[0+5]
	adr, adi := ud[0+6], ud[0+7]
	bar, bai := ud[8], ud[8+1]
	bbr, bbi := ud[8+2], ud[8+3]
	bcr, bci := ud[8+4], ud[8+5]
	bdr, bdi := ud[8+6], ud[8+7]
	car, cai := ud[16], ud[16+1]
	cbr, cbi := ud[16+2], ud[16+3]
	ccr, cci := ud[16+4], ud[16+5]
	cdr, cdi := ud[16+6], ud[16+7]
	var K [3][8]float64
	sa, sb, sc := 1<<in.q, 1<<in.c, 1<<in.q2
	dim := ws.val.Dim
	ws.forChannelPairs(func(psi, lam *State) {
		pr, pim := psi.Re, psi.Im
		lr, lim := lam.Re, lam.Im
		var t0r, t0i, t1r, t1i float64
		var ka0, ka1, ka2, ka3, ka4, ka5, ka6, ka7 float64
		var kb0, kb1, kb2, kb3, kb4, kb5, kb6, kb7 float64
		var kc0, kc1, kc2, kc3, kc4, kc5, kc6, kc7 float64
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for b1 := 0; b1 < dim; b1 += sc << 1 {
				for b2 := b1; b2 < b1+sc; b2 += sb << 1 {
					for b3 := b2; b3 < b2+sb; b3 += sa << 1 {
						for j := b3; j < b3+sa; j++ {
							i0 := off + j
							i1 := i0 + sa
							i2 := i0 + sb
							i3 := i2 + sa
							i4 := i0 + sc
							i5 := i4 + sa
							i6 := i4 + sb
							i7 := i6 + sa
							x0r, x0i := pr[i0], pim[i0]
							x1r, x1i := pr[i1], pim[i1]
							x2r, x2i := pr[i2], pim[i2]
							x3r, x3i := pr[i3], pim[i3]
							x4r, x4i := pr[i4], pim[i4]
							x5r, x5i := pr[i5], pim[i5]
							x6r, x6i := pr[i6], pim[i6]
							x7r, x7i := pr[i7], pim[i7]
							g0r, g0i := lr[i0], lim[i0]
							g1r, g1i := lr[i1], lim[i1]
							g2r, g2i := lr[i2], lim[i2]
							g3r, g3i := lr[i3], lim[i3]
							g4r, g4i := lr[i4], lim[i4]
							g5r, g5i := lr[i5], lim[i5]
							g6r, g6i := lr[i6], lim[i6]
							g7r, g7i := lr[i7], lim[i7]
							t0r = aar*x0r - aai*x0i + abr*x1r - abi*x1i
							t0i = aar*x0i + aai*x0r + abr*x1i + abi*x1r
							t1r = acr*x0r - aci*x0i + adr*x1r - adi*x1i
							t1i = acr*x0i + aci*x0r + adr*x1i + adi*x1r
							x0r, x0i, x1r, x1i = t0r, t0i, t1r, t1i
							t0r = aar*x2r - aai*x2i + abr*x3r - abi*x3i
							t0i = aar*x2i + aai*x2r + abr*x3i + abi*x3r
							t1r = acr*x2r - aci*x2i + adr*x3r - adi*x3i
							t1i = acr*x2i + aci*x2r + adr*x3i + adi*x3r
							x2r, x2i, x3r, x3i = t0r, t0i, t1r, t1i
							t0r = aar*x4r - aai*x4i + abr*x5r - abi*x5i
							t0i = aar*x4i + aai*x4r + abr*x5i + abi*x5r
							t1r = acr*x4r - aci*x4i + adr*x5r - adi*x5i
							t1i = acr*x4i + aci*x4r + adr*x5i + adi*x5r
							x4r, x4i, x5r, x5i = t0r, t0i, t1r, t1i
							t0r = aar*x6r - aai*x6i + abr*x7r - abi*x7i
							t0i = aar*x6i + aai*x6r + abr*x7i + abi*x7r
							t1r = acr*x6r - aci*x6i + adr*x7r - adi*x7i
							t1i = acr*x6i + aci*x6r + adr*x7i + adi*x7r
							x6r, x6i, x7r, x7i = t0r, t0i, t1r, t1i
							ka0 += x0r*g0r + x0i*g0i
							ka1 += x0i*g0r - x0r*g0i
							ka2 += x1r*g0r + x1i*g0i
							ka3 += x1i*g0r - x1r*g0i
							ka4 += x0r*g1r + x0i*g1i
							ka5 += x0i*g1r - x0r*g1i
							ka6 += x1r*g1r + x1i*g1i
							ka7 += x1i*g1r - x1r*g1i
							ka0 += x2r*g2r + x2i*g2i
							ka1 += x2i*g2r - x2r*g2i
							ka2 += x3r*g2r + x3i*g2i
							ka3 += x3i*g2r - x3r*g2i
							ka4 += x2r*g3r + x2i*g3i
							ka5 += x2i*g3r - x2r*g3i
							ka6 += x3r*g3r + x3i*g3i
							ka7 += x3i*g3r - x3r*g3i
							ka0 += x4r*g4r + x4i*g4i
							ka1 += x4i*g4r - x4r*g4i
							ka2 += x5r*g4r + x5i*g4i
							ka3 += x5i*g4r - x5r*g4i
							ka4 += x4r*g5r + x4i*g5i
							ka5 += x4i*g5r - x4r*g5i
							ka6 += x5r*g5r + x5i*g5i
							ka7 += x5i*g5r - x5r*g5i
							ka0 += x6r*g6r + x6i*g6i
							ka1 += x6i*g6r - x6r*g6i
							ka2 += x7r*g6r + x7i*g6i
							ka3 += x7i*g6r - x7r*g6i
							ka4 += x6r*g7r + x6i*g7i
							ka5 += x6i*g7r - x6r*g7i
							ka6 += x7r*g7r + x7i*g7i
							ka7 += x7i*g7r - x7r*g7i
							t0r = aar*g0r - aai*g0i + abr*g1r - abi*g1i
							t0i = aar*g0i + aai*g0r + abr*g1i + abi*g1r
							t1r = acr*g0r - aci*g0i + adr*g1r - adi*g1i
							t1i = acr*g0i + aci*g0r + adr*g1i + adi*g1r
							g0r, g0i, g1r, g1i = t0r, t0i, t1r, t1i
							t0r = aar*g2r - aai*g2i + abr*g3r - abi*g3i
							t0i = aar*g2i + aai*g2r + abr*g3i + abi*g3r
							t1r = acr*g2r - aci*g2i + adr*g3r - adi*g3i
							t1i = acr*g2i + aci*g2r + adr*g3i + adi*g3r
							g2r, g2i, g3r, g3i = t0r, t0i, t1r, t1i
							t0r = aar*g4r - aai*g4i + abr*g5r - abi*g5i
							t0i = aar*g4i + aai*g4r + abr*g5i + abi*g5r
							t1r = acr*g4r - aci*g4i + adr*g5r - adi*g5i
							t1i = acr*g4i + aci*g4r + adr*g5i + adi*g5r
							g4r, g4i, g5r, g5i = t0r, t0i, t1r, t1i
							t0r = aar*g6r - aai*g6i + abr*g7r - abi*g7i
							t0i = aar*g6i + aai*g6r + abr*g7i + abi*g7r
							t1r = acr*g6r - aci*g6i + adr*g7r - adi*g7i
							t1i = acr*g6i + aci*g6r + adr*g7i + adi*g7r
							g6r, g6i, g7r, g7i = t0r, t0i, t1r, t1i
							t0r = bar*x0r - bai*x0i + bbr*x2r - bbi*x2i
							t0i = bar*x0i + bai*x0r + bbr*x2i + bbi*x2r
							t1r = bcr*x0r - bci*x0i + bdr*x2r - bdi*x2i
							t1i = bcr*x0i + bci*x0r + bdr*x2i + bdi*x2r
							x0r, x0i, x2r, x2i = t0r, t0i, t1r, t1i
							t0r = bar*x1r - bai*x1i + bbr*x3r - bbi*x3i
							t0i = bar*x1i + bai*x1r + bbr*x3i + bbi*x3r
							t1r = bcr*x1r - bci*x1i + bdr*x3r - bdi*x3i
							t1i = bcr*x1i + bci*x1r + bdr*x3i + bdi*x3r
							x1r, x1i, x3r, x3i = t0r, t0i, t1r, t1i
							t0r = bar*x4r - bai*x4i + bbr*x6r - bbi*x6i
							t0i = bar*x4i + bai*x4r + bbr*x6i + bbi*x6r
							t1r = bcr*x4r - bci*x4i + bdr*x6r - bdi*x6i
							t1i = bcr*x4i + bci*x4r + bdr*x6i + bdi*x6r
							x4r, x4i, x6r, x6i = t0r, t0i, t1r, t1i
							t0r = bar*x5r - bai*x5i + bbr*x7r - bbi*x7i
							t0i = bar*x5i + bai*x5r + bbr*x7i + bbi*x7r
							t1r = bcr*x5r - bci*x5i + bdr*x7r - bdi*x7i
							t1i = bcr*x5i + bci*x5r + bdr*x7i + bdi*x7r
							x5r, x5i, x7r, x7i = t0r, t0i, t1r, t1i
							kb0 += x0r*g0r + x0i*g0i
							kb1 += x0i*g0r - x0r*g0i
							kb2 += x2r*g0r + x2i*g0i
							kb3 += x2i*g0r - x2r*g0i
							kb4 += x0r*g2r + x0i*g2i
							kb5 += x0i*g2r - x0r*g2i
							kb6 += x2r*g2r + x2i*g2i
							kb7 += x2i*g2r - x2r*g2i
							kb0 += x1r*g1r + x1i*g1i
							kb1 += x1i*g1r - x1r*g1i
							kb2 += x3r*g1r + x3i*g1i
							kb3 += x3i*g1r - x3r*g1i
							kb4 += x1r*g3r + x1i*g3i
							kb5 += x1i*g3r - x1r*g3i
							kb6 += x3r*g3r + x3i*g3i
							kb7 += x3i*g3r - x3r*g3i
							kb0 += x4r*g4r + x4i*g4i
							kb1 += x4i*g4r - x4r*g4i
							kb2 += x6r*g4r + x6i*g4i
							kb3 += x6i*g4r - x6r*g4i
							kb4 += x4r*g6r + x4i*g6i
							kb5 += x4i*g6r - x4r*g6i
							kb6 += x6r*g6r + x6i*g6i
							kb7 += x6i*g6r - x6r*g6i
							kb0 += x5r*g5r + x5i*g5i
							kb1 += x5i*g5r - x5r*g5i
							kb2 += x7r*g5r + x7i*g5i
							kb3 += x7i*g5r - x7r*g5i
							kb4 += x5r*g7r + x5i*g7i
							kb5 += x5i*g7r - x5r*g7i
							kb6 += x7r*g7r + x7i*g7i
							kb7 += x7i*g7r - x7r*g7i
							t0r = bar*g0r - bai*g0i + bbr*g2r - bbi*g2i
							t0i = bar*g0i + bai*g0r + bbr*g2i + bbi*g2r
							t1r = bcr*g0r - bci*g0i + bdr*g2r - bdi*g2i
							t1i = bcr*g0i + bci*g0r + bdr*g2i + bdi*g2r
							g0r, g0i, g2r, g2i = t0r, t0i, t1r, t1i
							t0r = bar*g1r - bai*g1i + bbr*g3r - bbi*g3i
							t0i = bar*g1i + bai*g1r + bbr*g3i + bbi*g3r
							t1r = bcr*g1r - bci*g1i + bdr*g3r - bdi*g3i
							t1i = bcr*g1i + bci*g1r + bdr*g3i + bdi*g3r
							g1r, g1i, g3r, g3i = t0r, t0i, t1r, t1i
							t0r = bar*g4r - bai*g4i + bbr*g6r - bbi*g6i
							t0i = bar*g4i + bai*g4r + bbr*g6i + bbi*g6r
							t1r = bcr*g4r - bci*g4i + bdr*g6r - bdi*g6i
							t1i = bcr*g4i + bci*g4r + bdr*g6i + bdi*g6r
							g4r, g4i, g6r, g6i = t0r, t0i, t1r, t1i
							t0r = bar*g5r - bai*g5i + bbr*g7r - bbi*g7i
							t0i = bar*g5i + bai*g5r + bbr*g7i + bbi*g7r
							t1r = bcr*g5r - bci*g5i + bdr*g7r - bdi*g7i
							t1i = bcr*g5i + bci*g5r + bdr*g7i + bdi*g7r
							g5r, g5i, g7r, g7i = t0r, t0i, t1r, t1i
							t0r = car*x0r - cai*x0i + cbr*x4r - cbi*x4i
							t0i = car*x0i + cai*x0r + cbr*x4i + cbi*x4r
							t1r = ccr*x0r - cci*x0i + cdr*x4r - cdi*x4i
							t1i = ccr*x0i + cci*x0r + cdr*x4i + cdi*x4r
							x0r, x0i, x4r, x4i = t0r, t0i, t1r, t1i
							t0r = car*x1r - cai*x1i + cbr*x5r - cbi*x5i
							t0i = car*x1i + cai*x1r + cbr*x5i + cbi*x5r
							t1r = ccr*x1r - cci*x1i + cdr*x5r - cdi*x5i
							t1i = ccr*x1i + cci*x1r + cdr*x5i + cdi*x5r
							x1r, x1i, x5r, x5i = t0r, t0i, t1r, t1i
							t0r = car*x2r - cai*x2i + cbr*x6r - cbi*x6i
							t0i = car*x2i + cai*x2r + cbr*x6i + cbi*x6r
							t1r = ccr*x2r - cci*x2i + cdr*x6r - cdi*x6i
							t1i = ccr*x2i + cci*x2r + cdr*x6i + cdi*x6r
							x2r, x2i, x6r, x6i = t0r, t0i, t1r, t1i
							t0r = car*x3r - cai*x3i + cbr*x7r - cbi*x7i
							t0i = car*x3i + cai*x3r + cbr*x7i + cbi*x7r
							t1r = ccr*x3r - cci*x3i + cdr*x7r - cdi*x7i
							t1i = ccr*x3i + cci*x3r + cdr*x7i + cdi*x7r
							x3r, x3i, x7r, x7i = t0r, t0i, t1r, t1i
							kc0 += x0r*g0r + x0i*g0i
							kc1 += x0i*g0r - x0r*g0i
							kc2 += x4r*g0r + x4i*g0i
							kc3 += x4i*g0r - x4r*g0i
							kc4 += x0r*g4r + x0i*g4i
							kc5 += x0i*g4r - x0r*g4i
							kc6 += x4r*g4r + x4i*g4i
							kc7 += x4i*g4r - x4r*g4i
							kc0 += x1r*g1r + x1i*g1i
							kc1 += x1i*g1r - x1r*g1i
							kc2 += x5r*g1r + x5i*g1i
							kc3 += x5i*g1r - x5r*g1i
							kc4 += x1r*g5r + x1i*g5i
							kc5 += x1i*g5r - x1r*g5i
							kc6 += x5r*g5r + x5i*g5i
							kc7 += x5i*g5r - x5r*g5i
							kc0 += x2r*g2r + x2i*g2i
							kc1 += x2i*g2r - x2r*g2i
							kc2 += x6r*g2r + x6i*g2i
							kc3 += x6i*g2r - x6r*g2i
							kc4 += x2r*g6r + x2i*g6i
							kc5 += x2i*g6r - x2r*g6i
							kc6 += x6r*g6r + x6i*g6i
							kc7 += x6i*g6r - x6r*g6i
							kc0 += x3r*g3r + x3i*g3i
							kc1 += x3i*g3r - x3r*g3i
							kc2 += x7r*g3r + x7i*g3i
							kc3 += x7i*g3r - x7r*g3i
							kc4 += x3r*g7r + x3i*g7i
							kc5 += x3i*g7r - x3r*g7i
							kc6 += x7r*g7r + x7i*g7i
							kc7 += x7i*g7r - x7r*g7i
							t0r = car*g0r - cai*g0i + cbr*g4r - cbi*g4i
							t0i = car*g0i + cai*g0r + cbr*g4i + cbi*g4r
							t1r = ccr*g0r - cci*g0i + cdr*g4r - cdi*g4i
							t1i = ccr*g0i + cci*g0r + cdr*g4i + cdi*g4r
							g0r, g0i, g4r, g4i = t0r, t0i, t1r, t1i
							t0r = car*g1r - cai*g1i + cbr*g5r - cbi*g5i
							t0i = car*g1i + cai*g1r + cbr*g5i + cbi*g5r
							t1r = ccr*g1r - cci*g1i + cdr*g5r - cdi*g5i
							t1i = ccr*g1i + cci*g1r + cdr*g5i + cdi*g5r
							g1r, g1i, g5r, g5i = t0r, t0i, t1r, t1i
							t0r = car*g2r - cai*g2i + cbr*g6r - cbi*g6i
							t0i = car*g2i + cai*g2r + cbr*g6i + cbi*g6r
							t1r = ccr*g2r - cci*g2i + cdr*g6r - cdi*g6i
							t1i = ccr*g2i + cci*g2r + cdr*g6i + cdi*g6r
							g2r, g2i, g6r, g6i = t0r, t0i, t1r, t1i
							t0r = car*g3r - cai*g3i + cbr*g7r - cbi*g7i
							t0i = car*g3i + cai*g3r + cbr*g7i + cbi*g7r
							t1r = ccr*g3r - cci*g3i + cdr*g7r - cdi*g7i
							t1i = ccr*g3i + cci*g3r + cdr*g7i + cdi*g7r
							g3r, g3i, g7r, g7i = t0r, t0i, t1r, t1i
							pr[i0], pim[i0] = x0r, x0i
							pr[i1], pim[i1] = x1r, x1i
							pr[i2], pim[i2] = x2r, x2i
							pr[i3], pim[i3] = x3r, x3i
							pr[i4], pim[i4] = x4r, x4i
							pr[i5], pim[i5] = x5r, x5i
							pr[i6], pim[i6] = x6r, x6i
							pr[i7], pim[i7] = x7r, x7i
							lr[i0], lim[i0] = g0r, g0i
							lr[i1], lim[i1] = g1r, g1i
							lr[i2], lim[i2] = g2r, g2i
							lr[i3], lim[i3] = g3r, g3i
							lr[i4], lim[i4] = g4r, g4i
							lr[i5], lim[i5] = g5r, g5i
							lr[i6], lim[i6] = g6r, g6i
							lr[i7], lim[i7] = g7r, g7i
						}
					}
				}
			}
		}
		K[0][0] += ka0
		K[0][1] += ka1
		K[0][2] += ka2
		K[0][3] += ka3
		K[0][4] += ka4
		K[0][5] += ka5
		K[0][6] += ka6
		K[0][7] += ka7
		K[1][0] += kb0
		K[1][1] += kb1
		K[1][2] += kb2
		K[1][3] += kb3
		K[1][4] += kb4
		K[1][5] += kb5
		K[1][6] += kb6
		K[1][7] += kb7
		K[2][0] += kc0
		K[2][1] += kc1
		K[2][2] += kc2
		K[2][3] += kc3
		K[2][4] += kc4
		K[2][5] += kc5
		K[2][6] += kc6
		K[2][7] += kc7
	})
	pi := 0
	for _, g := range in.gates {
		if g.P < 0 {
			continue
		}
		f := localBit3(g.Q, in.q, in.c, in.q2)
		d := dcoef[in.dslot+8*pi : in.dslot+8*pi+8]
		kv := &K[f]
		sc2.dth[g.P] += d[0]*kv[0] - d[1]*kv[1] + d[2]*kv[2] - d[3]*kv[3] +
			d[4]*kv[4] - d[5]*kv[5] + d[6]*kv[6] - d[7]*kv[7]
		pi++
	}
}

// revDiagRange is the fused adjoint step for an opDiag RZ chain: all chain
// members share the same logarithmic derivative diag(−i/2, +i/2), and the
// per-basis adjoint product Re⟨λ, −i·ψ⟩ is invariant under the diagonal
// inverse, so one traversal yields the common gradient T and un-applies the
// phases for every channel pair.
func revDiagRange(ws *Workspace, in *instr, coeff []float64, lo, hi int, sc bwdScratch) {
	cc, ss := coeff[in.slot], coeff[in.slot+3] // p0 = c − i·s, p1 = c + i·s
	stride := 1 << in.q
	step := stride << 1
	dim := ws.val.Dim
	var T float64
	ws.forChannelPairs(func(psi, lam *State) {
		pr, pim := psi.Re, psi.Im
		lr, lim := lam.Re, lam.Im
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += step {
				base := off + blk
				for j := base; j < base+stride; j++ {
					k := j + stride
					T += 0.5 * (lr[j]*pim[j] - lim[j]*pr[j] - lr[k]*pim[k] + lim[k]*pr[k])
					// Inverse phases: conj(p0) = c + i·s, conj(p1) = c − i·s.
					r0, i0 := pr[j], pim[j]
					pr[j] = cc*r0 - ss*i0
					pim[j] = cc*i0 + ss*r0
					r1, i1 := pr[k], pim[k]
					pr[k] = cc*r1 + ss*i1
					pim[k] = cc*i1 - ss*r1
					r0, i0 = lr[j], lim[j]
					lr[j] = cc*r0 - ss*i0
					lim[j] = cc*i0 + ss*r0
					r1, i1 = lr[k], lim[k]
					lr[k] = cc*r1 + ss*i1
					lim[k] = cc*i1 - ss*r1
				}
			}
		}
	})
	for _, p := range in.params {
		sc.dth[p] += T
	}
}

// revCtrlDiagRange is revDiagRange restricted to the control-set subspace
// (fused CRZ chains sharing one control/target pair).
func revCtrlDiagRange(ws *Workspace, in *instr, coeff []float64, lo, hi int, sc bwdScratch) {
	cc, ss := coeff[in.slot], coeff[in.slot+3]
	strideT := 1 << in.q
	stepT := strideT << 1
	cMask := 1 << in.c
	dim := ws.val.Dim
	var T float64
	ws.forChannelPairs(func(psi, lam *State) {
		pr, pim := psi.Re, psi.Im
		lr, lim := lam.Re, lam.Im
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for blk := 0; blk < dim; blk += stepT {
				for j := blk; j < blk+strideT; j++ {
					if j&cMask == 0 {
						continue
					}
					a, b := off+j, off+j+strideT
					T += 0.5 * (lr[a]*pim[a] - lim[a]*pr[a] - lr[b]*pim[b] + lim[b]*pr[b])
					r0, i0 := pr[a], pim[a]
					pr[a] = cc*r0 - ss*i0
					pim[a] = cc*i0 + ss*r0
					r1, i1 := pr[b], pim[b]
					pr[b] = cc*r1 + ss*i1
					pim[b] = cc*i1 - ss*r1
					r0, i0 = lr[a], lim[a]
					lr[a] = cc*r0 - ss*i0
					lim[a] = cc*i0 + ss*r0
					r1, i1 = lr[b], lim[b]
					lr[b] = cc*r1 + ss*i1
					lim[b] = cc*i1 - ss*r1
				}
			}
		}
	})
	for _, p := range in.params {
		sc.dth[p] += T
	}
}

// revDiagNRange is the fused adjoint step for a full-register diagonal
// super-op: one traversal per channel pair accumulates the per-basis
// adjoint products T_j = Σ Re⟨λ_j, −i·ψ_j⟩ into the worker's accumulator
// and un-applies the conjugate phases. The per-parameter gradients are the
// sign-table contractions of T, deferred to reduceDiagNGrads so each worker
// pays them once per pass instead of once per sample block.
func revDiagNRange(ws *Workspace, in *instr, coeff []float64, lo, hi int, sc bwdScratch) {
	dim := ws.val.Dim
	ph := coeff[in.slot : in.slot+2*dim]
	T := sc.diagT[in.tslot*dim : (in.tslot+1)*dim]
	ws.forChannelPairs(func(psi, lam *State) {
		pr, pim := psi.Re, psi.Im
		lr, lim := lam.Re, lam.Im
		for smp := lo; smp < hi; smp++ {
			off := smp * dim
			for j := 0; j < dim; j++ {
				a := off + j
				T[j] += lr[a]*pim[a] - lim[a]*pr[a]
				cr, ci := ph[2*j], -ph[2*j+1] // conj phase
				r, i := pr[a], pim[a]
				pr[a] = cr*r - ci*i
				pim[a] = cr*i + ci*r
				r, i = lr[a], lim[a]
				lr[a] = cr*r - ci*i
				lim[a] = cr*i + ci*r
			}
		}
	})
}

// reduceDiagNGrads contracts one worker's fused-diagonal accumulators
// against the compile-time sign tables: dθ_p += ½·Σ_j s_pj·T_j.
func reduceDiagNGrads(prog *Program, diagT, dth []float64, dim int) {
	if prog.ndiag == 0 {
		return
	}
	for i := range prog.ins {
		in := &prog.ins[i]
		if in.op != opDiagN {
			continue
		}
		T := diagT[in.tslot*dim : (in.tslot+1)*dim]
		for t, p := range in.params {
			row := in.signs[t*dim : (t+1)*dim]
			var g float64
			for j, s := range row {
				g += float64(s) * T[j]
			}
			dth[p] += 0.5 * g
		}
	}
}
