package maxwell

import (
	"repro/internal/ad"
	"repro/internal/dual"
	"repro/internal/par"
)

// FieldsDual is the model output at a batch of points, split into the three
// TEz components, each an N×1 dual (value + ∂/∂x, ∂/∂y, ∂/∂t tangents).
type FieldsDual struct {
	Ez, Hx, Hy dual.D
}

// Split converts a raw N×3 model output into named components.
func Split(tp *ad.Tape, out dual.D) FieldsDual {
	return FieldsDual{
		Ez: dual.Col(tp, out, 0),
		Hx: dual.Col(tp, out, 1),
		Hy: dual.Col(tp, out, 2),
	}
}

// Forward evaluates the model on a coordinate batch. withTangents requests
// the input-derivative channels (needed for PDE and energy losses; the IC
// and symmetry losses use values only). The maxwell package is agnostic to
// the architecture behind this closure.
type Forward func(tp *ad.Tape, coords []float64, n int, withTangents bool) FieldsDual

// Config selects the loss composition of one training run.
type Config struct {
	UseEnergy    bool
	UseSymmetry  bool
	UseIntuitive bool // §5.1: eq. 37 instead of eq. 14 in the dielectric case

	WIC, WSym, WEnergy float64 // eq. 26 weights (10 each in the paper)

	TimeWeights []float64 // per-bin curriculum weights; nil = uniform
}

// PaperConfig returns the eq. 26 weighting.
func PaperConfig(energy bool, symmetry bool) Config {
	return Config{UseEnergy: energy, UseSymmetry: symmetry, WIC: 10, WSym: 10, WEnergy: 10}
}

// Terms are the scalar loss components of one step (tape values), plus
// plain-float diagnostics.
type Terms struct {
	Phys, IC, Sym, Energy, Total ad.Value
	// BinResiduals are the unweighted mean squared PDE residuals per time
	// bin, used by the adaptive temporal weighting curriculum.
	BinResiduals []float64
}

// residuals computes the three PDE residuals (N×1 tape values) for the
// normalized TEz system:
//
//	res1 = ∂Ez/∂t − s·(∂Hy/∂x − ∂Hx/∂y)   (s = 1 or 1/ε_r depending on variant)
//	res2 = ∂Hx/∂t + ∂Ez/∂y
//	res3 = ∂Hy/∂t − ∂Ez/∂x
func residuals(tp *ad.Tape, f FieldsDual) (curlPart, res2, res3 ad.Value) {
	curlPart = tp.Sub(f.Hy.T[0], f.Hx.T[1]) // ∂Hy/∂x − ∂Hx/∂y
	res2 = tp.Add(f.Hx.T[2], f.Ez.T[1])
	res3 = tp.Sub(f.Hy.T[2], f.Ez.T[0])
	return
}

// Build assembles the complete training loss for one step. It runs the
// model over the collocation set (with tangents), the IC set, and — when the
// symmetry loss is enabled — the two mirrored batches (values only).
func Build(tp *ad.Tape, model Forward, p Problem, c *Collocation, cfg Config) Terms {
	var t Terms
	f := model(tp, c.Coords, c.N, true)

	curl, res2, res3 := residuals(tp, f)
	res1vac := tp.Sub(f.Ez.T[2], curl)

	w := cfg.TimeWeights
	var weightVec []float64
	if w != nil {
		weightVec = make([]float64, c.N)
		par.For(c.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				weightVec[i] = w[c.BinOf[i]]
			}
		})
	}

	switch {
	case p.Case != DielectricCase:
		// Eq. 13: three plain MSE residual terms.
		t.Phys = tp.AddScalars(
			weightedMSE(tp, res1vac, weightVec),
			weightedMSE(tp, res2, weightVec),
			weightedMSE(tp, res3, weightVec),
		)
	case cfg.UseIntuitive:
		// Eq. 37: one residual with pointwise 1/ε(x), all points weighted equally.
		invEps := make([]float64, c.N)
		par.For(c.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				invEps[i] = 1 / c.Eps[i]
			}
		})
		scaledCurl := tp.Mul(curl, tp.Const(c.N, 1, invEps))
		res1 := tp.Sub(f.Ez.T[2], scaledCurl)
		t.Phys = tp.AddScalars(
			weightedMSE(tp, res1, weightVec),
			weightedMSE(tp, res2, weightVec),
			weightedMSE(tp, res3, weightVec),
		)
	default:
		// Eq. 14: separate MSEs over the vacuum and dielectric partitions,
		// weighting both regions equally regardless of point counts — the
		// non-homogeneous loss that §5.1 credits with preventing the BH
		// collapse in the dielectric case.
		epsR := epsOfDielectric(c)
		res1d := tp.Sub(f.Ez.T[2], tp.Scale(curl, 1/epsR))
		t.Phys = tp.AddScalars(
			weightedMSESubset(tp, res1vac, c.VacIdx, weightVec),
			weightedMSESubset(tp, res1d, c.DielIdx, weightVec),
			weightedMSE(tp, res2, weightVec),
			weightedMSE(tp, res3, weightVec),
		)
	}

	t.BinResiduals = binResiduals(c, res1vac, res2, res3)

	// Initial-condition loss (eq. 19), values only.
	fic := model(tp, c.ICCoords, c.ICN, false)
	ez0 := tp.Const(c.ICN, 1, c.ICEz0)
	t.IC = tp.AddScalars(
		tp.MSE(tp.Sub(fic.Ez.V, ez0)),
		tp.MSE(fic.Hx.V),
		tp.MSE(fic.Hy.V),
	)

	terms := []ad.Value{t.Phys, tp.Scale(t.IC, cfg.WIC)}

	// Symmetry loss (eq. 20): mirror batches share the collocation points.
	if cfg.UseSymmetry && (p.UseSymX || p.UseSymY) {
		var symTerms []ad.Value
		if p.UseSymX {
			fm := model(tp, c.MirrorX, c.N, false)
			symTerms = append(symTerms,
				tp.MSE(tp.Sub(f.Ez.V, fm.Ez.V)), // Ez even in x
				tp.MSE(tp.Sub(f.Hx.V, fm.Hx.V)), // Hx even in x
				tp.MSE(tp.Add(f.Hy.V, fm.Hy.V)), // Hy odd in x
			)
		}
		if p.UseSymY {
			fm := model(tp, c.MirrorY, c.N, false)
			symTerms = append(symTerms,
				tp.MSE(tp.Sub(f.Ez.V, fm.Ez.V)), // Ez even in y
				tp.MSE(tp.Add(f.Hx.V, fm.Hx.V)), // Hx odd in y
				tp.MSE(tp.Sub(f.Hy.V, fm.Hy.V)), // Hy even in y
			)
		}
		t.Sym = tp.AddScalars(symTerms...)
		terms = append(terms, tp.Scale(t.Sym, cfg.WSym))
	}

	// Energy-conservation loss (eq. 25): the Poynting residual
	// ∂u/∂t + ∇·S with u = ½(ε Ez² + Hx² + Hy²), S = (−Ez·Hy, Ez·Hx).
	if cfg.UseEnergy {
		epsVec := tp.Const(c.N, 1, c.Eps)
		dudt := tp.Add(
			tp.Add(
				tp.Mul(tp.Mul(epsVec, f.Ez.V), f.Ez.T[2]),
				tp.Mul(f.Hx.V, f.Hx.T[2]),
			),
			tp.Mul(f.Hy.V, f.Hy.T[2]),
		)
		divSx := tp.Add(tp.Mul(f.Ez.T[0], f.Hy.V), tp.Mul(f.Ez.V, f.Hy.T[0]))
		divSy := tp.Add(tp.Mul(f.Ez.T[1], f.Hx.V), tp.Mul(f.Ez.V, f.Hx.T[1]))
		res := tp.Add(tp.Sub(dudt, divSx), divSy)
		t.Energy = tp.MSE(res)
		terms = append(terms, tp.Scale(t.Energy, cfg.WEnergy))
	}

	t.Total = tp.AddScalars(terms...)
	return t
}

// epsOfDielectric returns the (constant) ε_r of the dielectric partition.
func epsOfDielectric(c *Collocation) float64 {
	if len(c.DielIdx) == 0 {
		return 1
	}
	return c.Eps[c.DielIdx[0]]
}

// weightedMSE is MSE(res) or, with a weight vector, mean(w ⊙ res²).
func weightedMSE(tp *ad.Tape, res ad.Value, w []float64) ad.Value {
	if w == nil {
		return tp.MSE(res)
	}
	n := res.Rows()
	return tp.MeanAll(tp.RowScale(tp.Square(res), tp.Const(n, 1, w)))
}

// weightedMSESubset restricts the (weighted) MSE to a row subset.
func weightedMSESubset(tp *ad.Tape, res ad.Value, idx []int, w []float64) ad.Value {
	if len(idx) == 0 {
		return tp.ConstScalar(0)
	}
	sub := tp.SelectRows(res, idx)
	if w == nil {
		return tp.MSE(sub)
	}
	ws := make([]float64, len(idx))
	for j, i := range idx {
		ws[j] = w[i]
	}
	return tp.MeanAll(tp.RowScale(tp.Square(sub), tp.Const(len(idx), 1, ws)))
}

// binResiduals averages the unweighted squared residuals per time bin
// (plain floats; feeds the curriculum update, not the gradient). The
// accumulation runs as a par.RunChunk region — one fork/join for all
// residual vectors — with per-CHUNK bin partials merged in chunk order.
// Because the chunk partition depends only on (N, chunk), the result is
// bit-identical for every worker bound and scheduler mode, so the
// curriculum weights (and with EngineSharded, the whole training loop) stay
// worker-count-independent.
//
//torq:ordered-merge
func binResiduals(c *Collocation, rs ...ad.Value) []float64 {
	out := make([]float64, c.Bins)
	datas := make([][]float64, len(rs))
	for i, r := range rs {
		datas[i] = r.Data()
	}
	const chunk = 2048
	nch := (c.N + chunk - 1) / chunk
	parts := make([]float64, nch*c.Bins)
	par.RunChunk(c.N, chunk, func(_, lo, hi int) {
		p := parts[(lo/chunk)*c.Bins : (lo/chunk+1)*c.Bins]
		for _, d := range datas {
			for i := lo; i < hi; i++ {
				v := d[i]
				p[c.BinOf[i]] += v * v
			}
		}
	})
	for s := 0; s < nch; s++ {
		for b := 0; b < c.Bins; b++ {
			out[b] += parts[s*c.Bins+b]
		}
	}
	for b := range out {
		if cnt := len(c.BinIdx[b]); cnt > 0 {
			out[b] /= float64(cnt)
		}
	}
	return out
}
