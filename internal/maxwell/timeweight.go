package maxwell

import (
	"fmt"
	"math"
)

// TimeCurriculum implements the adaptive temporal weighting of §2.2: the
// collocation points are split into M time bins; later bins start with low
// residual weights that grow as the earlier bins converge, so the network
// learns the dynamics in a causality-respecting order (Wang et al.).
//
// The weight of bin m is exp(−κ·Σ_{k<m} L_k) where L_k is the current mean
// squared PDE residual of bin k — small early-time residuals "unlock" the
// later bins. Bin 0 always has weight 1.
type TimeCurriculum struct {
	Bins    int
	Kappa   float64
	weights []float64
}

// NewTimeCurriculum creates the paper's 5-bin curriculum with gain κ.
func NewTimeCurriculum(bins int, kappa float64) *TimeCurriculum {
	tc := &TimeCurriculum{Bins: bins, Kappa: kappa, weights: make([]float64, bins)}
	tc.weights[0] = 1
	for i := 1; i < bins; i++ {
		tc.weights[i] = 0 // later bins start effectively off
	}
	return tc
}

// Weights returns the current per-bin weights (live slice; do not mutate).
func (tc *TimeCurriculum) Weights() []float64 { return tc.weights }

// Restore replaces the current weights with a previously captured snapshot
// (a copy of Weights), so a warm-restarted run resumes the curriculum where
// it left off instead of re-locking the later time bins. len(w) must equal
// Bins.
func (tc *TimeCurriculum) Restore(w []float64) error {
	if len(w) != tc.Bins {
		return fmt.Errorf("maxwell: curriculum snapshot has %d bins, want %d", len(w), tc.Bins)
	}
	copy(tc.weights, w)
	return nil
}

// Update recomputes the weights from the latest per-bin residuals.
func (tc *TimeCurriculum) Update(binResiduals []float64) {
	var cum float64
	tc.weights[0] = 1
	for m := 1; m < tc.Bins; m++ {
		cum += binResiduals[m-1]
		tc.weights[m] = math.Exp(-tc.Kappa * cum)
	}
}

// Converged reports whether every bin is fully active (all weights ≈ 1),
// i.e. the curriculum has handed over to plain uniform training.
func (tc *TimeCurriculum) Converged(tol float64) bool {
	for _, w := range tc.weights {
		if w < 1-tol {
			return false
		}
	}
	return true
}
