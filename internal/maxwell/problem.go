// Package maxwell encodes the physics of the paper's two benchmark
// problems: the TEz Maxwell residuals (eqs. 9–12), the initial-condition,
// symmetry and Poynting energy-conservation losses (eqs. 19, 20, 25), the
// vacuum/dielectric physics-loss weightings (eqs. 13, 14 and the §5.1
// "intuitive" variant, eq. 37), the total loss (eq. 26), and the adaptive
// temporal weighting curriculum.
package maxwell

import (
	"repro/internal/refsol"
)

// Case selects the benchmark problem.
type Case int

const (
	VacuumCase Case = iota
	DielectricCase
	AsymmetricCase // appendix A: off-center stretched pulse in vacuum
)

func (c Case) String() string {
	switch c {
	case VacuumCase:
		return "vacuum"
	case DielectricCase:
		return "dielectric"
	case AsymmetricCase:
		return "asymmetric"
	}
	return "unknown"
}

// Problem bundles the domain, medium and initial condition of one case.
type Problem struct {
	Case   Case
	TMax   float64
	Medium refsol.Medium
	Pulse  refsol.Pulse
	// Symmetry-loss configuration (§2.2): vacuum keeps both mirror
	// families; the dielectric slab breaks x-mirror symmetry; the
	// asymmetric case has no symmetry loss at all.
	UseSymX, UseSymY bool
}

// NewProblem constructs the paper's configuration for each case.
func NewProblem(c Case) Problem {
	switch c {
	case VacuumCase:
		return Problem{Case: c, TMax: 1.5, Medium: refsol.Vacuum{}, Pulse: refsol.CenteredPulse(), UseSymX: true, UseSymY: true}
	case DielectricCase:
		return Problem{Case: c, TMax: 0.7, Medium: refsol.PaperSlab(), Pulse: refsol.CenteredPulse(), UseSymX: false, UseSymY: true}
	case AsymmetricCase:
		return Problem{Case: c, TMax: 1.5, Medium: refsol.Vacuum{}, Pulse: refsol.AsymmetricPulse()}
	}
	panic("maxwell: unknown case")
}

// Collocation is the training point set: an equally spaced G³ grid over
// (x, y, t) as in §2.2, with region and time-bin bookkeeping.
type Collocation struct {
	N      int
	Grid   int
	Coords []float64 // N×3 (x, y, t)

	// Region partition (dielectric case; VacIdx covers everything in vacuum).
	VacIdx, DielIdx []int
	Eps             []float64 // ε_r per point

	// Time-curriculum bins (M bins over [0, TMax]).
	Bins   int
	BinOf  []int
	BinIdx [][]int
	// Mirrored batches for the symmetry loss.
	MirrorX, MirrorY []float64

	// Initial-condition set: the G² spatial grid at t = 0 with target Ez.
	ICCoords []float64
	ICEz0    []float64
	ICN      int
}

// NewCollocation builds the grid for problem p: g points per coordinate
// (x, y periodic in [−1, 1), t equally spread over [0, TMax]) and bins time
// bins.
func NewCollocation(p Problem, g, bins int) *Collocation {
	n := g * g * g
	c := &Collocation{N: n, Grid: g, Bins: bins}
	c.Coords = make([]float64, n*3)
	c.MirrorX = make([]float64, n*3)
	c.MirrorY = make([]float64, n*3)
	c.Eps = make([]float64, n)
	c.BinOf = make([]int, n)
	c.BinIdx = make([][]int, bins)

	slab, isSlab := p.Medium.(refsol.Slab)
	i := 0
	for it := 0; it < g; it++ {
		t := p.TMax * float64(it) / float64(g-1)
		bin := it * bins / g
		if bin >= bins {
			bin = bins - 1
		}
		for iy := 0; iy < g; iy++ {
			y := refsol.Coord(iy, g)
			for ix := 0; ix < g; ix++ {
				x := refsol.Coord(ix, g)
				c.Coords[i*3+0] = x
				c.Coords[i*3+1] = y
				c.Coords[i*3+2] = t
				c.MirrorX[i*3+0] = -x
				c.MirrorX[i*3+1] = y
				c.MirrorX[i*3+2] = t
				c.MirrorY[i*3+0] = x
				c.MirrorY[i*3+1] = -y
				c.MirrorY[i*3+2] = t
				c.Eps[i] = p.Medium.EpsAt(x, y)
				c.BinOf[i] = bin
				c.BinIdx[bin] = append(c.BinIdx[bin], i)
				if isSlab && slab.IsDielectric(x, y) {
					c.DielIdx = append(c.DielIdx, i)
				} else {
					c.VacIdx = append(c.VacIdx, i)
				}
				i++
			}
		}
	}

	c.ICN = g * g
	c.ICCoords = make([]float64, c.ICN*3)
	c.ICEz0 = make([]float64, c.ICN)
	j := 0
	for iy := 0; iy < g; iy++ {
		y := refsol.Coord(iy, g)
		for ix := 0; ix < g; ix++ {
			x := refsol.Coord(ix, g)
			c.ICCoords[j*3+0] = x
			c.ICCoords[j*3+1] = y
			c.ICCoords[j*3+2] = 0
			c.ICEz0[j] = p.Pulse.At(x, y)
			j++
		}
	}
	return c
}

// NewSmokeProblem is the laptop-scale variant of NewProblem: the same PDE,
// domain, medium and loss structure, but with the Gaussian pulse widened 2×
// (exp(−25r²/4) instead of exp(−25r²)). The paper's pulse carries spatial
// modes up to k ≈ 7π, which a sub-16³ collocation grid cannot resolve —
// under-resolved residuals let spuriously decaying fields through. Halving
// the spectral content keeps every qualitative phenomenon (propagation,
// reflections, BH collapse, energy balance) representable on smoke grids.
// DESIGN.md records this substitution.
func NewSmokeProblem(c Case) Problem {
	p := NewProblem(c)
	p.Pulse.SX *= 2
	p.Pulse.SY *= 2
	return p
}
