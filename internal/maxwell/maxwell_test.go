package maxwell

import (
	"math"
	"testing"

	"repro/internal/ad"
	"repro/internal/dual"
	"repro/internal/refsol"
)

// exactForward wraps the spectral solution as a maxwell.Forward: fields and
// their derivatives enter the tape as constants. Feeding the exact solution
// into the loss machinery must produce (near-)zero physics, IC, symmetry
// and energy losses — the strongest self-consistency check available.
func exactForward(sp *refsol.Spectral) Forward {
	return func(tp *ad.Tape, coords []float64, n int, withTangents bool) FieldsDual {
		mk := func() (vals []float64, tans [3][]float64) {
			vals = make([]float64, n)
			for k := range tans {
				tans[k] = make([]float64, n)
			}
			return
		}
		ezV, ezT := mk()
		hxV, hxT := mk()
		hyV, hyT := mk()
		for i := 0; i < n; i++ {
			x, y, t := coords[i*3], coords[i*3+1], coords[i*3+2]
			ez, hx, hy := sp.EvalPoint(x, y, t)
			ezV[i], hxV[i], hyV[i] = ez.V, hx.V, hy.V
			ezT[0][i], ezT[1][i], ezT[2][i] = ez.Dx, ez.Dy, ez.Dt
			hxT[0][i], hxT[1][i], hxT[2][i] = hx.Dx, hx.Dy, hx.Dt
			hyT[0][i], hyT[1][i], hyT[2][i] = hy.Dx, hy.Dy, hy.Dt
		}
		wrap := func(v []float64, t3 [3][]float64) dual.D {
			d := dual.FromValue(tp.Const(n, 1, v))
			if withTangents {
				for k := 0; k < 3; k++ {
					d.T[k] = tp.Const(n, 1, t3[k])
				}
			}
			return d
		}
		return FieldsDual{Ez: wrap(ezV, ezT), Hx: wrap(hxV, hxT), Hy: wrap(hyV, hyT)}
	}
}

func TestExactSolutionHasNearZeroLosses(t *testing.T) {
	p := NewProblem(VacuumCase)
	c := NewCollocation(p, 8, 5)
	sp := refsol.NewSpectral(refsol.CenteredPulse().InitFields(32))
	tp := ad.NewTape()
	cfg := PaperConfig(true, true)
	terms := Build(tp, exactForward(sp), p, c, cfg)

	check := func(name string, v ad.Value, tol float64) {
		if !v.Valid() {
			t.Fatalf("%s missing", name)
		}
		if s := v.Scalar(); s > tol {
			t.Errorf("%s = %v, want < %v", name, s, tol)
		}
	}
	check("phys", terms.Phys, 1e-6)
	check("ic", terms.IC, 1e-9)
	check("sym", terms.Sym, 1e-9)
	check("energy", terms.Energy, 1e-6)
	check("total", terms.Total, 1e-5)
}

// TestZeroFieldLossAnatomy: the trivial solution (all fields ≡ 0) satisfies
// the PDE exactly but violates the IC — the loss structure that defines the
// black-hole attractor (§5): L_phys = 0 while L_IC stays pinned at the IC's
// mean square.
func TestZeroFieldLossAnatomy(t *testing.T) {
	p := NewProblem(VacuumCase)
	c := NewCollocation(p, 6, 5)
	zero := func(tp *ad.Tape, coords []float64, n int, withTangents bool) FieldsDual {
		wrap := func() dual.D {
			d := dual.FromValue(tp.Const(n, 1, make([]float64, n)))
			if withTangents {
				for k := 0; k < 3; k++ {
					d.T[k] = tp.Const(n, 1, make([]float64, n))
				}
			}
			return d
		}
		return FieldsDual{Ez: wrap(), Hx: wrap(), Hy: wrap()}
	}
	tp := ad.NewTape()
	terms := Build(tp, zero, p, c, PaperConfig(true, true))
	if terms.Phys.Scalar() > 1e-15 {
		t.Errorf("trivial solution must satisfy the PDE, phys = %v", terms.Phys.Scalar())
	}
	var wantIC float64
	for _, v := range c.ICEz0 {
		wantIC += v * v
	}
	wantIC /= float64(c.ICN)
	if math.Abs(terms.IC.Scalar()-wantIC) > 1e-12 {
		t.Errorf("IC loss = %v, want %v", terms.IC.Scalar(), wantIC)
	}
	if terms.Energy.Scalar() > 1e-15 {
		t.Errorf("trivial solution also zeroes the energy residual, got %v", terms.Energy.Scalar())
	}
}

func TestCollocationPartition(t *testing.T) {
	p := NewProblem(DielectricCase)
	g := 8
	c := NewCollocation(p, g, 5)
	if c.N != g*g*g {
		t.Fatalf("N = %d", c.N)
	}
	if len(c.VacIdx)+len(c.DielIdx) != c.N {
		t.Fatal("partition does not cover the grid")
	}
	if len(c.DielIdx) == 0 {
		t.Fatal("dielectric partition empty")
	}
	// ε labels must match the region classification.
	for _, i := range c.DielIdx {
		if c.Eps[i] != 4 {
			t.Fatalf("dielectric point %d has ε = %v", i, c.Eps[i])
		}
	}
	for _, i := range c.VacIdx {
		if c.Eps[i] != 1 {
			t.Fatalf("vacuum point %d has ε = %v", i, c.Eps[i])
		}
	}
	// Fewer dielectric than vacuum points (slab at x ≥ 0.35), which is why
	// eq. 14's equal region weighting differs from eq. 37.
	if len(c.DielIdx) >= len(c.VacIdx) {
		t.Fatal("expected minority dielectric partition")
	}
	// Time bins partition all points.
	var total int
	for _, idx := range c.BinIdx {
		total += len(idx)
	}
	if total != c.N {
		t.Fatalf("bins cover %d of %d", total, c.N)
	}
}

func TestMirrorBatches(t *testing.T) {
	p := NewProblem(VacuumCase)
	c := NewCollocation(p, 4, 2)
	differ := func(a, b float64) bool { return math.Float64bits(a) != math.Float64bits(b) }
	for i := 0; i < c.N; i++ {
		if differ(c.MirrorX[i*3], -c.Coords[i*3]) || differ(c.MirrorX[i*3+1], c.Coords[i*3+1]) || differ(c.MirrorX[i*3+2], c.Coords[i*3+2]) {
			t.Fatal("x-mirror batch wrong")
		}
		if differ(c.MirrorY[i*3], c.Coords[i*3]) || differ(c.MirrorY[i*3+1], -c.Coords[i*3+1]) {
			t.Fatal("y-mirror batch wrong")
		}
	}
}

// TestSymmetryLossDetectsAsymmetry: a field violating the parity relations
// produces a positive symmetry loss; the exact (symmetric) solution does not.
func TestSymmetryLossDetectsAsymmetry(t *testing.T) {
	p := NewProblem(VacuumCase)
	c := NewCollocation(p, 6, 3)
	skew := func(tp *ad.Tape, coords []float64, n int, withTangents bool) FieldsDual {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = coords[i*3] // Ez = x is odd in x: violates (i)
		}
		wrap := func(data []float64) dual.D {
			d := dual.FromValue(tp.Const(n, 1, data))
			if withTangents {
				for k := 0; k < 3; k++ {
					d.T[k] = tp.Const(n, 1, make([]float64, n))
				}
			}
			return d
		}
		return FieldsDual{Ez: wrap(v), Hx: wrap(make([]float64, n)), Hy: wrap(make([]float64, n))}
	}
	tp := ad.NewTape()
	terms := Build(tp, skew, p, c, PaperConfig(false, true))
	if terms.Sym.Scalar() <= 0.01 {
		t.Fatalf("symmetry loss = %v, expected clearly positive", terms.Sym.Scalar())
	}
}

// TestDielectricCasesDropXSymmetry: the dielectric problem only uses the
// y-mirror family.
func TestDielectricCasesDropXSymmetry(t *testing.T) {
	if p := NewProblem(DielectricCase); p.UseSymX || !p.UseSymY {
		t.Fatal("dielectric case must keep only y-symmetry")
	}
	if p := NewProblem(AsymmetricCase); p.UseSymX || p.UseSymY {
		t.Fatal("asymmetric case must disable the symmetry loss")
	}
}

func TestTimeCurriculum(t *testing.T) {
	tc := NewTimeCurriculum(5, 10)
	w := tc.Weights()
	if w[0] != 1 {
		t.Fatal("bin 0 must start at weight 1")
	}
	for _, wm := range w[1:] {
		if wm != 0 {
			t.Fatal("later bins must start at 0")
		}
	}
	// Large early residuals keep later bins suppressed.
	tc.Update([]float64{1, 1, 1, 1, 1})
	if tc.Weights()[1] > 1e-4 || tc.Converged(1e-3) {
		t.Fatal("curriculum unlocked too early")
	}
	// Converged early bins unlock everything.
	tc.Update([]float64{1e-9, 1e-9, 1e-9, 1e-9, 1e-9})
	for m, wm := range tc.Weights() {
		if wm < 0.99 {
			t.Fatalf("bin %d weight %v after convergence", m, wm)
		}
	}
	if !tc.Converged(1e-2) {
		t.Fatal("curriculum should report convergence")
	}
}

// TestIntuitiveVsRegionWeightedLossesDiffer: eq. 37 and eq. 14 weight the
// dielectric region differently, so for a field with region-dependent
// residuals the two losses must differ (§5.1's stabilization mechanism).
func TestIntuitiveVsRegionWeightedLossesDiffer(t *testing.T) {
	p := NewProblem(DielectricCase)
	c := NewCollocation(p, 6, 3)
	// A field whose Ez time-derivative is 1 everywhere: res1 differs between
	// regions because of the 1/ε scaling of the curl (which is zero here),
	// so res1 = 1 in both — but region weighting changes the MSE mix only
	// when region residuals differ; make them differ via Hy gradient.
	f := func(tp *ad.Tape, coords []float64, n int, withTangents bool) FieldsDual {
		ones := make([]float64, n)
		xs := make([]float64, n)
		for i := 0; i < n; i++ {
			ones[i] = 1
			xs[i] = coords[i*3]
		}
		d := func(v []float64, t0, t1, t2 []float64) dual.D {
			out := dual.FromValue(tp.Const(n, 1, v))
			if withTangents {
				out.T[0] = tp.Const(n, 1, t0)
				out.T[1] = tp.Const(n, 1, t1)
				out.T[2] = tp.Const(n, 1, t2)
			}
			return out
		}
		zero := make([]float64, n)
		// Ez = 0; Hx = 0; Hy with ∂Hy/∂x = x (varies across regions).
		return FieldsDual{
			Ez: d(zero, zero, zero, zero),
			Hx: d(zero, zero, zero, zero),
			Hy: d(zero, xs, zero, zero),
		}
	}
	cfgRegion := PaperConfig(false, false)
	cfgIntuitive := cfgRegion
	cfgIntuitive.UseIntuitive = true
	tp1 := ad.NewTape()
	l1 := Build(tp1, f, p, c, cfgRegion).Phys.Scalar()
	tp2 := ad.NewTape()
	l2 := Build(tp2, f, p, c, cfgIntuitive).Phys.Scalar()
	if math.Abs(l1-l2) < 1e-9 {
		t.Fatalf("region-weighted (%v) and intuitive (%v) losses should differ", l1, l2)
	}
}

// TestTimeWeightsSuppressLateResiduals: with only bin 0 active, residuals at
// late times do not contribute to the physics loss.
func TestTimeWeightsSuppressLateResiduals(t *testing.T) {
	p := NewProblem(VacuumCase)
	c := NewCollocation(p, 6, 3)
	// Residual only at late times: Ez with ∂Ez/∂t = t.
	f := func(tp *ad.Tape, coords []float64, n int, withTangents bool) FieldsDual {
		ts := make([]float64, n)
		for i := 0; i < n; i++ {
			ts[i] = coords[i*3+2]
		}
		zero := make([]float64, n)
		d := func(t2 []float64) dual.D {
			out := dual.FromValue(tp.Const(n, 1, zero))
			if withTangents {
				out.T[0] = tp.Const(n, 1, zero)
				out.T[1] = tp.Const(n, 1, zero)
				out.T[2] = tp.Const(n, 1, t2)
			}
			return out
		}
		return FieldsDual{Ez: d(ts), Hx: d(zero), Hy: d(zero)}
	}
	cfg := PaperConfig(false, false)
	cfg.TimeWeights = []float64{1, 0, 0}
	tp := ad.NewTape()
	terms := Build(tp, f, p, c, cfg)
	// Bin 0 covers t near 0 where the residual ≈ t is small.
	uniform := PaperConfig(false, false)
	tp2 := ad.NewTape()
	full := Build(tp2, f, p, c, uniform)
	if terms.Phys.Scalar() >= full.Phys.Scalar()/2 {
		t.Fatalf("curriculum weighting did not suppress late residuals: %v vs %v",
			terms.Phys.Scalar(), full.Phys.Scalar())
	}
}
