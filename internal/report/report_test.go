package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	tb := NewTable("T", "name", "value")
	tb.Row("a", 1.5)
	tb.Row("longer-name", math.NaN())
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "longer-name") || !strings.Contains(out, "1.5") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "—") {
		t.Fatal("NaN must render as an em dash")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// All table lines (after the title) must have equal width.
	w := len([]rune(lines[1]))
	for _, l := range lines[2:] {
		if len([]rune(l)) != w {
			t.Fatalf("misaligned row %q", l)
		}
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	CSV(&sb, []string{"a", "b"}, []float64{1, 2, 3}, []float64{4, 5})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	if lines[3] != "3," {
		t.Fatalf("ragged column handling: %q", lines[3])
	}
}

func TestLinePlotRendersAllSeries(t *testing.T) {
	var sb strings.Builder
	LinePlot(&sb, "plot", 20, 6, true, map[string][]float64{
		"up":   {1, 10, 100},
		"down": {100, 10, 1},
	})
	out := sb.String()
	if !strings.Contains(out, "down") || !strings.Contains(out, "up") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "log10(y)") {
		t.Fatal("log axis label missing")
	}
	// Zero/negative values in log mode must not panic.
	var sb2 strings.Builder
	LinePlot(&sb2, "p", 10, 4, true, map[string][]float64{"z": {0, -1, 1}})
}

func TestPGMFormat(t *testing.T) {
	var sb strings.Builder
	PGM(&sb, []float64{-1, 0, 0, 1}, 2, 1)
	out := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if out[0] != "P2" || out[1] != "2 2" || out[2] != "255" {
		t.Fatalf("bad header %v", out[:3])
	}
	// Row order: top row = max y = second grid row.
	if out[3] != "127 255" || out[4] != "0 127" {
		t.Fatalf("bad pixels %v", out[3:])
	}
}

func TestHistogramCountsAllValues(t *testing.T) {
	var sb strings.Builder
	vals := []float64{0, 0.1, 0.9, 1.0, 0.5}
	Histogram(&sb, "h", vals, 2, 10)
	out := sb.String()
	if !strings.Contains(out, "n=5") {
		t.Fatalf("missing count:\n%s", out)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 {
		t.Fatalf("mean %v", m)
	}
	if math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std %v", s)
	}
	if m, s = MeanStd([]float64{3}); m != 3 || s != 0 {
		t.Fatalf("singleton %v %v", m, s)
	}
	if m, _ = MeanStd(nil); !math.IsNaN(m) {
		t.Fatalf("empty mean %v", m)
	}
}
