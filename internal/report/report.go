// Package report renders experiment outputs: aligned ASCII tables matching
// the paper's table layouts, CSV series for the figure data, terminal line
// plots for loss curves, and PGM images for field contours.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; values are formatted with %v (floats via %.6g).
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if math.IsNaN(v) {
				row[i] = "—"
			} else {
				row[i] = fmt.Sprintf("%.6g", v)
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Headers)
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if n := w - len([]rune(s)); n > 0 {
		return s + strings.Repeat(" ", n)
	}
	return s
}

// CSV writes series as comma-separated columns with a header row.
func CSV(w io.Writer, headers []string, cols ...[]float64) {
	fmt.Fprintln(w, strings.Join(headers, ","))
	n := 0
	for _, c := range cols {
		if len(c) > n {
			n = len(c)
		}
	}
	for i := 0; i < n; i++ {
		parts := make([]string, len(cols))
		for j, c := range cols {
			if i < len(c) {
				parts[j] = fmt.Sprintf("%.8g", c[i])
			}
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
}

// LinePlot renders series as an ASCII chart (log-scale optional), the
// terminal rendition of the paper's loss-curve figures.
func LinePlot(w io.Writer, title string, width, height int, logY bool, series map[string][]float64) {
	fmt.Fprintf(w, "%s\n", title)
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	tf := func(v float64) float64 {
		if logY {
			if v <= 0 {
				return math.NaN()
			}
			return math.Log10(v)
		}
		return v
	}
	//torq:allow maprange -- min/max/len reduction, order-insensitive
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
		for _, v := range s {
			y := tf(v)
			if math.IsNaN(y) {
				continue
			}
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	//torq:allow floateq -- degenerate-range guard, exact equality intended
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+o#@%&"
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for si, name := range names {
		s := series[name]
		m := marks[si%len(marks)]
		for i, v := range s {
			y := tf(v)
			if math.IsNaN(y) {
				continue
			}
			col := i * (width - 1) / max(maxLen-1, 1)
			row := height - 1 - int((y-lo)/(hi-lo)*float64(height-1)+0.5)
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	axis := "y"
	if logY {
		axis = "log10(y)"
	}
	fmt.Fprintf(w, "%s range [%.3g, %.3g]\n", axis, lo, hi)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", string(row))
	}
	for si, name := range names {
		fmt.Fprintf(w, "  %c = %s\n", marks[si%len(marks)], name)
	}
}

// PGM writes a grayscale P2 image of a field grid (n×n), normalizing to
// [0, 255] over [-absMax, absMax] (symmetric colormap like the paper's
// contour plots). absMax ≤ 0 autoscales.
func PGM(w io.Writer, field []float64, n int, absMax float64) {
	if absMax <= 0 {
		for _, v := range field {
			if a := math.Abs(v); a > absMax {
				absMax = a
			}
		}
		if absMax == 0 {
			absMax = 1
		}
	}
	fmt.Fprintf(w, "P2\n%d %d\n255\n", n, n)
	for iy := n - 1; iy >= 0; iy-- { // top row = max y
		parts := make([]string, n)
		for ix := 0; ix < n; ix++ {
			v := field[iy*n+ix]
			g := int((v/absMax + 1) / 2 * 255)
			if g < 0 {
				g = 0
			}
			if g > 255 {
				g = 255
			}
			parts[ix] = fmt.Sprintf("%d", g)
		}
		fmt.Fprintln(w, strings.Join(parts, " "))
	}
}

// Histogram renders value counts over equal-width bins — the Fig. 3d /
// Fig. 12 distribution panels.
func Histogram(w io.Writer, title string, values []float64, bins int, width int) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	//torq:allow floateq -- degenerate-range guard, exact equality intended
	if hi == lo {
		hi = lo + 1e-12
	}
	counts := make([]int, bins)
	for _, v := range values {
		b := int((v - lo) / (hi - lo) * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxC := 1
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	fmt.Fprintf(w, "%s  (n=%d, range [%.3f, %.3f])\n", title, len(values), lo, hi)
	for b, c := range counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(w, "  %8.3f %s %d\n", lo+(hi-lo)*(float64(b)+0.5)/float64(bins), bar, c)
	}
}

// MeanStd returns the mean and standard deviation of a sample.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	if len(xs) > 1 {
		std = math.Sqrt(std / float64(len(xs)-1))
	} else {
		std = 0
	}
	return
}
