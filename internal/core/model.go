// Package core assembles the paper's networks — the classical PINN baseline
// in its three depths and the hybrid QPINN with its six ansätze and five
// input scalings — and provides the training loop that ties together the
// physics losses, the Adam optimizer, the temporal curriculum, and the
// black-hole diagnostics. This is the paper's primary contribution layer.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/ad"
	"repro/internal/dual"
	"repro/internal/maxwell"
	"repro/internal/nn"
	"repro/internal/qsim"
)

// Arch selects a network architecture from Table 1.
type Arch int

const (
	ClassicalRegular Arch = iota // 4 hidden layers
	ClassicalReduced             // 3 hidden layers
	ClassicalExtra               // 5 hidden layers
	QPINN                        // 3 hidden layers + adapter + PQC
	ClassicalTrig                // QPINN topology with a fixed trig basis instead of the PQC (§6.2 control)
)

func (a Arch) String() string {
	switch a {
	case ClassicalRegular:
		return "Classical - regular"
	case ClassicalReduced:
		return "Classical - reduced layer"
	case ClassicalExtra:
		return "Classical - extra layer"
	case QPINN:
		return "QPINN"
	case ClassicalTrig:
		return "Classical - trig control"
	}
	return "unknown"
}

// ModelConfig sizes a model. The paper's scale is Hidden=128, RFFFeatures=128,
// NumQubits=7, QLayers=4; smoke presets shrink Hidden/RFFFeatures only, which
// preserves every architectural relationship of Table 1.
type ModelConfig struct {
	Arch        Arch
	Hidden      int
	RFFFeatures int
	RFFSigma    float64
	NumQubits   int
	QLayers     int
	Ansatz      qsim.AnsatzKind
	Scaling     qsim.ScalingKind
	Init        qsim.InitStrategy
	Engine      qsim.EngineKind // circuit-execution engine (zero value: fused)
	Reupload    bool            // §6.2(c): repeat the angle embedding before every ansatz layer
	TimePeriod  float64         // initial learned period
	Seed        int64
}

// PaperModel returns the paper-scale configuration.
func PaperModel(arch Arch, ansatz qsim.AnsatzKind, scaling qsim.ScalingKind) ModelConfig {
	return ModelConfig{
		Arch: arch, Hidden: 128, RFFFeatures: 128, RFFSigma: 1,
		NumQubits: 7, QLayers: 4, Ansatz: ansatz, Scaling: scaling,
		Init: qsim.InitRegular, TimePeriod: 4, Seed: 1,
	}
}

// SmokeModel returns a laptop-scale configuration with the same topology.
func SmokeModel(arch Arch, ansatz qsim.AnsatzKind, scaling qsim.ScalingKind) ModelConfig {
	m := PaperModel(arch, ansatz, scaling)
	m.Hidden = 32
	m.RFFFeatures = 24
	m.RFFSigma = 2
	m.NumQubits = 4
	m.QLayers = 2
	return m
}

// Model is an assembled network implementing maxwell.Forward.
type Model struct {
	Cfg     ModelConfig
	Reg     *nn.Registry
	Layers  []nn.Layer
	Quantum *nn.Quantum // nil for classical architectures
	Circ    *qsim.Circuit

	// TrainState carries the optimizer/curriculum state across warm restarts
	// (nil until the model has been trained or restored from a v2
	// checkpoint). See core.TrainState.
	TrainState *TrainState
}

// NewModel builds the network. Layer sizes follow §2.2/§2.3: input (x,y,t) →
// periodic embedding (6 features, one learned period parameter) → RFF
// (2·RFFFeatures sinusoidal features, fixed) → hidden tanh layers of width
// Hidden → output (Ez, Hx, Hy). The QPINN replaces the last hidden layer
// with an adapter to NumQubits activations, the PQC, and a NumQubits→3
// output layer — reproducing Table 1's parameter counts exactly at paper
// scale.
func NewModel(cfg ModelConfig) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reg := &nn.Registry{}
	m := &Model{Cfg: cfg, Reg: reg}

	m.Layers = append(m.Layers, nn.NewPeriodic(reg, 2, 2, cfg.TimePeriod))
	m.Layers = append(m.Layers, nn.NewRFF(rng, 6, cfg.RFFFeatures, cfg.RFFSigma))
	in := 2 * cfg.RFFFeatures
	h := cfg.Hidden

	hidden := map[Arch]int{ClassicalRegular: 4, ClassicalReduced: 3, ClassicalExtra: 5, QPINN: 3, ClassicalTrig: 3}[cfg.Arch]
	for i := 0; i < hidden; i++ {
		m.Layers = append(m.Layers, nn.NewDense(reg, rng, fmt.Sprintf("h%d", i+1), in, h, true))
		in = h
	}

	switch cfg.Arch {
	case QPINN:
		m.Layers = append(m.Layers, nn.NewDense(reg, rng, "adapter", in, cfg.NumQubits, true))
		m.Circ = cfg.Ansatz.Build(cfg.NumQubits, cfg.QLayers)
		if cfg.Reupload {
			m.Circ = m.Circ.WithReupload()
		}
		m.Quantum = nn.NewQuantum(reg, rng, m.Circ, cfg.Scaling, cfg.Init, cfg.Engine)
		m.Layers = append(m.Layers, m.Quantum)
		in = cfg.NumQubits
	case ClassicalTrig:
		m.Layers = append(m.Layers, nn.NewDense(reg, rng, "adapter", in, cfg.NumQubits, true))
		m.Layers = append(m.Layers, nn.NewTrig(cfg.Scaling))
		in = cfg.NumQubits
	}
	m.Layers = append(m.Layers, nn.NewDense(reg, rng, "out", in, 3, false))
	return m
}

// ParamCounts returns (classical, quantum, total) trainable parameters.
func (m *Model) ParamCounts() (classical, quantum, total int) {
	for _, p := range m.Reg.Params {
		if p.Name == "quantum.theta" {
			quantum += len(p.W)
		} else {
			classical += len(p.W)
		}
	}
	return classical, quantum, classical + quantum
}

// Forward implements maxwell.Forward: it binds nothing (the caller binds the
// registry once per tape) and evaluates the network on a coordinate batch.
func (m *Model) Forward(tp *ad.Tape, coords []float64, n int, withTangents bool) maxwell.FieldsDual {
	x := dual.FromValue(tp.Leaf(n, 3, coords, false))
	if withTangents {
		for k := 0; k < 3; k++ {
			tan := make([]float64, n*3)
			for i := 0; i < n; i++ {
				tan[i*3+k] = 1
			}
			x.T[k] = tp.Const(n, 3, tan)
		}
	}
	for _, l := range m.Layers {
		x = l.Forward(tp, x)
	}
	return maxwell.Split(tp, x)
}

// EvalEz evaluates only the Ez component (no gradients, no tangents) over a
// coordinate batch — the L2-metric path.
func (m *Model) EvalEz(coords []float64, n int) []float64 {
	tp := ad.NewTape()
	m.Reg.Bind(tp, false)
	f := m.Forward(tp, coords, n, false)
	return append([]float64(nil), f.Ez.V.Data()...)
}

// EvalFields evaluates all three components without gradients.
func (m *Model) EvalFields(coords []float64, n int) (ez, hx, hy []float64) {
	tp := ad.NewTape()
	m.Reg.Bind(tp, false)
	f := m.Forward(tp, coords, n, false)
	return append([]float64(nil), f.Ez.V.Data()...),
		append([]float64(nil), f.Hx.V.Data()...),
		append([]float64(nil), f.Hy.V.Data()...)
}

// PenultimateActivations returns the outputs of the second-to-last layer
// (the quantum layer for QPINNs, the last tanh for classical nets) at the
// given points — the Fig. 12 initialization study's observable.
func (m *Model) PenultimateActivations(coords []float64, n int) []float64 {
	tp := ad.NewTape()
	m.Reg.Bind(tp, false)
	x := dual.FromValue(tp.Leaf(n, 3, coords, false))
	for _, l := range m.Layers[:len(m.Layers)-1] {
		x = l.Forward(tp, x)
	}
	return append([]float64(nil), x.V.Data()...)
}

// PenultimateQuantumAngles evaluates the network up to the quantum layer's
// scaled embedding angles (QPINN only). The registry must already be bound
// to tp.
func (m *Model) PenultimateQuantumAngles(tp *ad.Tape, coords []float64, n int) []float64 {
	if m.Quantum == nil {
		panic("core: PenultimateQuantumAngles on a classical model")
	}
	x := dual.FromValue(tp.Leaf(n, 3, coords, false))
	for _, l := range m.Layers {
		if l == nn.Layer(m.Quantum) {
			break
		}
		x = l.Forward(tp, x)
	}
	angles := m.Quantum.ScaleOnly(tp, x)
	return append([]float64(nil), angles.V.Data()...)
}
