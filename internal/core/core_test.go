package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/maxwell"
	"repro/internal/opt"
	"repro/internal/par"
	"repro/internal/qsim"
	"repro/internal/refsol"
)

// TestTable1ParameterCounts reproduces the paper's Table 1 digit-for-digit
// at paper scale (Hidden=128, RFF=128, 7 qubits, 4 layers).
func TestTable1ParameterCounts(t *testing.T) {
	cases := []struct {
		arch               Arch
		ansatz             qsim.AnsatzKind
		classical, quantum int
	}{
		{ClassicalRegular, qsim.BasicEntangling, 82820, 0},
		{ClassicalReduced, qsim.BasicEntangling, 66308, 0},
		{ClassicalExtra, qsim.BasicEntangling, 99332, 0},
		{QPINN, qsim.CrossMesh, 66848, 196},
		{QPINN, qsim.CrossMesh2Rot, 66848, 224},
		{QPINN, qsim.CrossMeshCNOT, 66848, 84},
		{QPINN, qsim.NoEntanglement, 66848, 84},
		{QPINN, qsim.BasicEntangling, 66848, 84},
		{QPINN, qsim.StronglyEntangling, 66848, 84},
	}
	for _, c := range cases {
		m := NewModel(PaperModel(c.arch, c.ansatz, qsim.ScaleAsin))
		cl, qu, tot := m.ParamCounts()
		if cl != c.classical || qu != c.quantum {
			t.Errorf("%v/%v: got %d classical + %d quantum, want %d + %d",
				c.arch, c.ansatz, cl, qu, c.classical, c.quantum)
		}
		if tot != c.classical+c.quantum {
			t.Errorf("%v: total %d inconsistent", c.arch, tot)
		}
	}
}

// TestClassicalTrainingReducesLoss: a short classical run must cut the total
// loss substantially and beat an untrained model on L2.
func TestClassicalTrainingReducesLoss(t *testing.T) {
	p := maxwell.NewProblem(maxwell.VacuumCase)
	mcfg := SmokeModel(ClassicalRegular, qsim.BasicEntangling, qsim.ScaleNone)
	mcfg.Seed = 7
	tcfg := SmokeTrain(60, maxwell.PaperConfig(false, true))
	tcfg.Grid = 8
	ref := NewReference(p, 12, []float64{0, 0.5, 1.0, 1.5}, 32)

	before := NewModel(mcfg)
	l2Before, _ := Evaluate(before, ref)

	res := Train(p, mcfg, tcfg, ref)
	first := res.History[0].Total
	last := res.History[len(res.History)-1].Total
	if last >= first*0.5 {
		t.Fatalf("loss did not halve: %v → %v", first, last)
	}
	if res.FinalL2 >= l2Before {
		t.Fatalf("L2 did not improve: %v → %v", l2Before, res.FinalL2)
	}
}

// TestQuantumTrainingRuns: the QPINN path must train end-to-end (loss drops)
// with every tangent channel flowing through the PQC.
func TestQuantumTrainingRuns(t *testing.T) {
	p := maxwell.NewProblem(maxwell.VacuumCase)
	mcfg := SmokeModel(QPINN, qsim.StronglyEntangling, qsim.ScaleAcos)
	mcfg.Seed = 3
	tcfg := SmokeTrain(25, maxwell.PaperConfig(true, true))
	tcfg.Grid = 6
	tcfg.QuantumDiagnostics = true
	ref := NewReference(p, 8, []float64{0, 0.75, 1.5}, 32)

	res := Train(p, mcfg, tcfg, ref)
	first := res.History[0].Total
	last := res.History[len(res.History)-1].Total
	if !(last < first) {
		t.Fatalf("QPINN loss did not decrease: %v → %v", first, last)
	}
	if math.IsNaN(res.FinalL2) || math.IsInf(res.FinalL2, 0) {
		t.Fatalf("bad final L2 %v", res.FinalL2)
	}
	// Meyer–Wallach was tracked and lies in [0, 1].
	foundMW := false
	for _, st := range res.History {
		if !math.IsNaN(st.MW) {
			foundMW = true
			if st.MW < -1e-9 || st.MW > 1+1e-9 {
				t.Fatalf("MW out of range: %v", st.MW)
			}
		}
	}
	if !foundMW {
		t.Fatal("quantum diagnostics never recorded")
	}
}

// TestDielectricTrainingRuns: region-weighted loss path end-to-end.
func TestDielectricTrainingRuns(t *testing.T) {
	p := maxwell.NewProblem(maxwell.DielectricCase)
	mcfg := SmokeModel(ClassicalRegular, qsim.BasicEntangling, qsim.ScaleNone)
	tcfg := SmokeTrain(30, maxwell.PaperConfig(false, true))
	tcfg.Grid = 6
	ref := NewReference(p, 8, []float64{0, 0.35, 0.7}, 32)
	res := Train(p, mcfg, tcfg, ref)
	if !(res.History[len(res.History)-1].Total < res.History[0].Total) {
		t.Fatal("dielectric training did not reduce loss")
	}
}

// TestEvaluateOnExactReference: a hypothetical perfect model (the reference
// itself) has L2 = 0 and I_BH ≈ 0 — anchor for the metrics.
func TestEvaluateOnExactReference(t *testing.T) {
	p := maxwell.NewProblem(maxwell.VacuumCase)
	ref := NewReference(p, 10, []float64{0, 0.4, 0.8}, 32)
	if l2 := ref.L2Of(ref.Ez); l2 != 0 {
		t.Fatalf("reference self-L2 = %v", l2)
	}
	// Reference energy is conserved: I_BH on the reference series ≈ 0.
	if len(ref.RefEnergy) > 0 {
		min := ref.RefEnergy[0]
		for _, u := range ref.RefEnergy {
			if u < min {
				min = u
			}
		}
		if 1-min/ref.RefEnergy[0] > 0.05 {
			t.Fatalf("reference energy not conserved: %v", ref.RefEnergy)
		}
	}
}

// TestSeedDeterminism: identical seeds give identical models and training.
func TestSeedDeterminism(t *testing.T) {
	mcfg := SmokeModel(QPINN, qsim.CrossMesh, qsim.ScaleNone)
	mcfg.Seed = 11
	a := NewModel(mcfg)
	b := NewModel(mcfg)
	for i := range a.Reg.Params {
		pa, pb := a.Reg.Params[i], b.Reg.Params[i]
		for j := range pa.W {
			if math.Float64bits(pa.W[j]) != math.Float64bits(pb.W[j]) {
				t.Fatalf("seeded init differs at %s[%d]", pa.Name, j)
			}
		}
	}
	mcfg.Seed = 12
	c := NewModel(mcfg)
	same := true
	for i := range a.Reg.Params {
		pa, pc := a.Reg.Params[i], c.Reg.Params[i]
		for j := range pa.W {
			if math.Float64bits(pa.W[j]) != math.Float64bits(pc.W[j]) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical parameters")
	}
}

// TestPenultimateActivations: classical nets expose tanh outputs in [−1,1];
// QPINNs expose Pauli-Z expectations in [−1,1].
func TestPenultimateActivations(t *testing.T) {
	coords := []float64{0.1, -0.2, 0.3, -0.4, 0.5, 0.6}
	for _, arch := range []Arch{ClassicalRegular, QPINN} {
		m := NewModel(SmokeModel(arch, qsim.StronglyEntangling, qsim.ScaleNone))
		acts := m.PenultimateActivations(coords, 2)
		for i, a := range acts {
			if a < -1-1e-9 || a > 1+1e-9 {
				t.Fatalf("%v activation[%d] = %v out of [−1,1]", arch, i, a)
			}
		}
	}
}

// TestCheckpointRoundTrip: a trained model restored from its checkpoint
// produces bit-identical predictions.
func TestCheckpointRoundTrip(t *testing.T) {
	p := maxwell.NewSmokeProblem(maxwell.VacuumCase)
	mcfg := SmokeModel(QPINN, qsim.CrossMesh2Rot, qsim.ScaleAsin)
	mcfg.Seed = 99
	tcfg := SmokeTrain(5, maxwell.PaperConfig(true, true))
	tcfg.Grid = 5
	res := Train(p, mcfg, tcfg, nil)

	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	coords := []float64{0.1, -0.4, 0.7, -0.6, 0.2, 1.1}
	a := res.Model.EvalEz(coords, 2)
	b := restored.EvalEz(coords, 2)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("prediction %d differs after reload: %v vs %v", i, a[i], b[i])
		}
	}
	// Truncated stream must fail loudly, not load garbage.
	if _, err := Load(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("truncated checkpoint loaded without error")
	}
}

// TestTrainEvalEveryZero: a hand-built TrainConfig that leaves EvalEvery at
// its zero value used to crash on epoch%EvalEvery; it must instead train and
// evaluate only at the final epoch.
func TestTrainEvalEveryZero(t *testing.T) {
	p := maxwell.NewSmokeProblem(maxwell.VacuumCase)
	mcfg := SmokeModel(ClassicalReduced, qsim.BasicEntangling, qsim.ScaleNone)
	tcfg := TrainConfig{
		Epochs: 3, Schedule: opt.PaperSchedule(), Grid: 4, TimeBins: 2,
		Kappa: 2, Loss: maxwell.PaperConfig(false, true),
		// EvalEvery deliberately left zero.
	}
	ref := NewReference(p, 6, []float64{0, 0.75}, 32)
	res := Train(p, mcfg, tcfg, ref)
	for i, st := range res.History[:len(res.History)-1] {
		if !math.IsNaN(st.L2) {
			t.Errorf("epoch %d evaluated L2 (%v) despite EvalEvery=0", i, st.L2)
		}
	}
	if last := res.History[len(res.History)-1]; math.IsNaN(last.L2) {
		t.Error("final epoch not evaluated under EvalEvery=0")
	}
}

// TestWarmRestartEquivalence: training k1 epochs, checkpointing, and resuming
// from the restored model must match continuing the in-memory model
// bit-for-bit — i.e. the checkpoint carries the Adam moments, step count,
// schedule position, and curriculum weights, not just the parameters. The
// worker bound is pinned to 1 so both continuations see identical
// floating-point reduction orders.
func TestWarmRestartEquivalence(t *testing.T) {
	defer par.SetMaxWorkers(0)
	par.SetMaxWorkers(1)

	p := maxwell.NewSmokeProblem(maxwell.VacuumCase)
	mcfg := SmokeModel(QPINN, qsim.StronglyEntangling, qsim.ScaleAcos)
	mcfg.Seed = 21
	phase1 := SmokeTrain(6, maxwell.PaperConfig(false, true))
	phase1.Grid = 4
	phase2 := SmokeTrain(4, maxwell.PaperConfig(false, true))
	phase2.Grid = 4

	model := NewModel(mcfg)
	TrainModel(model, p, phase1, nil)
	if model.TrainState == nil || model.TrainState.Opt.Step != 6 || model.TrainState.Epochs != 6 {
		t.Fatalf("training did not record state: %+v", model.TrainState)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.TrainState == nil || restored.TrainState.Opt.Step != 6 {
		t.Fatalf("checkpoint dropped optimizer state: %+v", restored.TrainState)
	}

	resMem := TrainModel(model, p, phase2, nil)
	resCkpt := TrainModel(restored, p, phase2, nil)

	for i := range model.Reg.Params {
		a, b := model.Reg.Params[i], restored.Reg.Params[i]
		for j := range a.W {
			if math.Float64bits(a.W[j]) != math.Float64bits(b.W[j]) {
				t.Fatalf("resumed parameter %s[%d] differs: %v vs %v", a.Name, j, a.W[j], b.W[j])
			}
		}
	}
	for i := range resMem.History {
		if math.Float64bits(resMem.History[i].Total) != math.Float64bits(resCkpt.History[i].Total) {
			t.Fatalf("epoch %d loss differs after restore: %v vs %v",
				i, resMem.History[i].Total, resCkpt.History[i].Total)
		}
		// The resumed history continues the global epoch numbering.
		if want := 6 + i; resMem.History[i].Epoch != want {
			t.Fatalf("resumed epoch numbered %d, want %d", resMem.History[i].Epoch, want)
		}
	}
}

// TestWarmRestartChangesFirstStep guards the original bug directly: the
// first post-restore update must use the restored Adam moments, so it must
// differ from the update a cold optimizer would take from the same
// parameters.
func TestWarmRestartChangesFirstStep(t *testing.T) {
	defer par.SetMaxWorkers(0)
	par.SetMaxWorkers(1)

	p := maxwell.NewSmokeProblem(maxwell.VacuumCase)
	mcfg := SmokeModel(ClassicalReduced, qsim.BasicEntangling, qsim.ScaleNone)
	mcfg.Seed = 5
	phase1 := SmokeTrain(5, maxwell.PaperConfig(false, true))
	phase1.Grid = 4
	phase2 := SmokeTrain(1, maxwell.PaperConfig(false, true))
	phase2.Grid = 4

	model := NewModel(mcfg)
	TrainModel(model, p, phase1, nil)
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	warm, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cold.TrainState = nil // simulate the old parameters-only restore

	TrainModel(warm, p, phase2, nil)
	TrainModel(cold, p, phase2, nil)
	same := true
	for i := range warm.Reg.Params {
		a, b := warm.Reg.Params[i], cold.Reg.Params[i]
		for j := range a.W {
			if math.Float64bits(a.W[j]) != math.Float64bits(b.W[j]) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("warm and cold restarts took identical first steps — optimizer state had no effect")
	}
}

// TestCheckpointV1StillLoads: a parameters-only stream in the pre-version
// layout (no Version/opt fields) must still load — with no training state
// attached — so existing checkpoints survive the format change.
func TestCheckpointV1StillLoads(t *testing.T) {
	mcfg := SmokeModel(ClassicalReduced, qsim.BasicEntangling, qsim.ScaleNone)
	mcfg.Seed = 17
	model := NewModel(mcfg)

	// Encode the historical struct shape: Cfg + Params only.
	v1 := struct {
		Cfg    ModelConfig
		Params map[string][]float64
	}{Cfg: mcfg, Params: map[string][]float64{}}
	for _, p := range model.Reg.Params {
		v1.Params[p.Name] = append([]float64(nil), p.W...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v1); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatalf("v1 checkpoint failed to load: %v", err)
	}
	if restored.TrainState != nil {
		t.Fatal("v1 checkpoint conjured optimizer state from nowhere")
	}
	coords := []float64{0.2, -0.1, 0.4, -0.3, 0.6, 0.9}
	a := model.EvalEz(coords, 2)
	b := restored.EvalEz(coords, 2)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("v1-restored prediction %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestTrigControlArchitecture: the §6.2(b) control has the QPINN's
// classical parameter count exactly (PQC params replaced by zero).
func TestTrigControlArchitecture(t *testing.T) {
	m := NewModel(PaperModel(ClassicalTrig, qsim.StronglyEntangling, qsim.ScaleAcos))
	cl, qu, _ := m.ParamCounts()
	if cl != 66848 || qu != 0 {
		t.Fatalf("trig control params %d/%d, want 66848/0", cl, qu)
	}
	// It must also train (loss decreases).
	p := maxwell.NewSmokeProblem(maxwell.VacuumCase)
	mcfg := SmokeModel(ClassicalTrig, qsim.StronglyEntangling, qsim.ScaleAcos)
	tcfg := SmokeTrain(20, maxwell.PaperConfig(false, true))
	tcfg.Grid = 5
	res := Train(p, mcfg, tcfg, nil)
	if !(res.History[len(res.History)-1].Total < res.History[0].Total) {
		t.Fatal("trig control did not train")
	}
}

// TestBilinearSamplerAnchors: sampling exactly at grid nodes returns grid
// values; sampling respects periodic wrap at the domain edge.
func TestBilinearSamplerAnchors(t *testing.T) {
	n := 8
	f := refsol.NewFields(n)
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			f.Ez[iy*n+ix] = float64(iy*n + ix)
		}
	}
	for _, probe := range [][2]int{{0, 0}, {3, 5}, {7, 7}} {
		iy, ix := probe[0], probe[1]
		got := sampleBilinear(f, refsol.Coord(ix, n), refsol.Coord(iy, n))
		want := f.Ez[iy*n+ix]
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("node (%d,%d): %v want %v", iy, ix, got, want)
		}
	}
	// A point beyond the last node interpolates toward the periodic image.
	x := refsol.Coord(n-1, n) + 0.5*refsol.L/float64(n)
	got := sampleBilinear(f, x, refsol.Coord(0, n))
	want := 0.5*f.Ez[n-1] + 0.5*f.Ez[0]
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("periodic wrap: %v want %v", got, want)
	}
}

// TestReferenceCoordsLayout: the probe set enumerates each time slice as a
// full spatial grid, matching EnergySeries' slice bookkeeping.
func TestReferenceCoordsLayout(t *testing.T) {
	p := maxwell.NewSmokeProblem(maxwell.VacuumCase)
	times := []float64{0, 0.5, 1.0}
	g := 6
	ref := NewReference(p, g, times, 32)
	if ref.PerSlice != g*g || len(ref.Ez) != g*g*len(times) {
		t.Fatalf("layout: PerSlice=%d len=%d", ref.PerSlice, len(ref.Ez))
	}
	for s, tt := range times {
		for j := 0; j < ref.PerSlice; j++ {
			if math.Float64bits(ref.Coords[(s*ref.PerSlice+j)*3+2]) != math.Float64bits(tt) {
				t.Fatalf("slice %d point %d has t=%v want %v", s, j,
					ref.Coords[(s*ref.PerSlice+j)*3+2], tt)
			}
		}
	}
	// The t=0 slice of the reference is the initial condition.
	for j := 0; j < ref.PerSlice; j++ {
		x, y := ref.Coords[j*3], ref.Coords[j*3+1]
		if math.Abs(ref.Ez[j]-p.Pulse.At(x, y)) > 0.02 {
			t.Fatalf("IC slice mismatch at %d: %v vs %v", j, ref.Ez[j], p.Pulse.At(x, y))
		}
	}
}
