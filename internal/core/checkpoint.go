package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// checkpoint is the serialized form of a trained model: the configuration
// (architecture is reconstructed from it) and every parameter buffer by
// name. The fixed RFF projection is regenerated from the seed, so the
// config seed fully determines the non-trainable state.
type checkpoint struct {
	Cfg    ModelConfig
	Params map[string][]float64
}

// Save writes the model's configuration and parameters.
func (m *Model) Save(w io.Writer) error {
	ck := checkpoint{Cfg: m.Cfg, Params: make(map[string][]float64, len(m.Reg.Params))}
	for _, p := range m.Reg.Params {
		ck.Params[p.Name] = append([]float64(nil), p.W...)
	}
	return gob.NewEncoder(w).Encode(ck)
}

// SaveFile writes a checkpoint to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// Load reconstructs a model from a checkpoint: the architecture is rebuilt
// from the stored configuration, then parameters are restored by name.
func Load(r io.Reader) (*Model, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, err
	}
	m := NewModel(ck.Cfg)
	for _, p := range m.Reg.Params {
		saved, ok := ck.Params[p.Name]
		if !ok {
			return nil, fmt.Errorf("core: checkpoint missing parameter %q", p.Name)
		}
		if len(saved) != len(p.W) {
			return nil, fmt.Errorf("core: parameter %q has %d values, model expects %d",
				p.Name, len(saved), len(p.W))
		}
		copy(p.W, saved)
	}
	return m, nil
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
