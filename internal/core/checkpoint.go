package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/opt"
)

// checkpointVersion is the current serialization version. Version 1 streams
// (parameters only) predate the field and decode with Version == 0; version
// 2 adds the optimizer and curriculum state, so a restored model warm-starts
// instead of silently resetting Adam moments, the step count, and the
// time-curriculum weights.
const checkpointVersion = 2

// checkpoint is the serialized form of a trained model: the configuration
// (architecture is reconstructed from it), every parameter buffer by name,
// and — since version 2 — the training state a warm restart needs. The fixed
// RFF projection is regenerated from the seed, so the config seed fully
// determines the non-trainable state. gob decodes by field name, so version-1
// streams simply leave the newer fields zero and still load.
type checkpoint struct {
	Cfg    ModelConfig
	Params map[string][]float64

	Version    int
	OptM, OptV map[string][]float64 // Adam moments keyed like Params
	OptStep    int
	Curriculum []float64
	Epochs     int
}

// Save writes the model's configuration, parameters, and (when the model has
// been trained) its warm-restart training state.
func (m *Model) Save(w io.Writer) error {
	ck := checkpoint{
		Cfg:     m.Cfg,
		Params:  make(map[string][]float64, len(m.Reg.Params)),
		Version: checkpointVersion,
	}
	for _, p := range m.Reg.Params {
		ck.Params[p.Name] = append([]float64(nil), p.W...)
	}
	if st := m.TrainState; st != nil && len(st.Opt.M) == len(m.Reg.Params) {
		ck.OptM = make(map[string][]float64, len(m.Reg.Params))
		ck.OptV = make(map[string][]float64, len(m.Reg.Params))
		for i, p := range m.Reg.Params {
			ck.OptM[p.Name] = append([]float64(nil), st.Opt.M[i]...)
			ck.OptV[p.Name] = append([]float64(nil), st.Opt.V[i]...)
		}
		ck.OptStep = st.Opt.Step
		ck.Curriculum = append([]float64(nil), st.Curriculum...)
		ck.Epochs = st.Epochs
	}
	return gob.NewEncoder(w).Encode(ck)
}

// SaveFile writes a checkpoint to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// Load reconstructs a model from a checkpoint: the architecture is rebuilt
// from the stored configuration, parameters are restored by name, and a
// version-2 checkpoint's training state is reattached so TrainModel resumes
// the optimizer rather than cold-starting it. Version-1 checkpoints load
// with TrainState nil.
func Load(r io.Reader) (*Model, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, err
	}
	if ck.Version > checkpointVersion {
		// A future format could keep its state in fields this version does
		// not know about; loading it "successfully" would silently cold-start
		// the optimizer — the exact state loss version 2 exists to prevent.
		return nil, fmt.Errorf("core: checkpoint version %d is newer than supported version %d", ck.Version, checkpointVersion)
	}
	m := NewModel(ck.Cfg)
	for _, p := range m.Reg.Params {
		saved, ok := ck.Params[p.Name]
		if !ok {
			return nil, fmt.Errorf("core: checkpoint missing parameter %q", p.Name)
		}
		if len(saved) != len(p.W) {
			return nil, fmt.Errorf("core: parameter %q has %d values, model expects %d",
				p.Name, len(saved), len(p.W))
		}
		copy(p.W, saved)
	}
	if ck.OptM != nil {
		st := &TrainState{
			Opt:        opt.AdamState{Step: ck.OptStep},
			Curriculum: ck.Curriculum,
			Epochs:     ck.Epochs,
		}
		for _, p := range m.Reg.Params {
			mBuf, okM := ck.OptM[p.Name]
			vBuf, okV := ck.OptV[p.Name]
			if !okM || !okV {
				return nil, fmt.Errorf("core: checkpoint missing optimizer state for %q", p.Name)
			}
			if len(mBuf) != len(p.W) || len(vBuf) != len(p.W) {
				return nil, fmt.Errorf("core: optimizer state for %q has %d/%d values, model expects %d",
					p.Name, len(mBuf), len(vBuf), len(p.W))
			}
			st.Opt.M = append(st.Opt.M, mBuf)
			st.Opt.V = append(st.Opt.V, vBuf)
		}
		m.TrainState = st
	}
	return m, nil
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
