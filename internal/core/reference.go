package core

import (
	"math"

	"repro/internal/maxwell"
	"repro/internal/refsol"
)

// Reference is a precomputed ground-truth evaluation set: Ez (and the full
// fields, for energy diagnostics) at a space–time probe grid. Vacuum cases
// use the exact spectral solution; the dielectric case uses the 4th-order
// Padé compact scheme, matching the paper's choice of reference.
type Reference struct {
	Coords    []float64 // M×3
	Ez        []float64
	Times     []float64
	PerSlice  int // points per time slice
	SliceEps  []float64
	RefEnergy []float64 // reference total energy per slice (vacuum: constant)
}

// NewReference builds the probe set: a g×g spatial grid at each of the
// requested times. solverGrid controls the reference solver resolution.
func NewReference(p maxwell.Problem, g int, times []float64, solverGrid int) *Reference {
	r := &Reference{Times: times, PerSlice: g * g}
	m := r.PerSlice * len(times)
	r.Coords = make([]float64, m*3)
	r.Ez = make([]float64, m)
	r.SliceEps = make([]float64, r.PerSlice)

	for iy := 0; iy < g; iy++ {
		y := refsol.Coord(iy, g)
		for ix := 0; ix < g; ix++ {
			r.SliceEps[iy*g+ix] = p.Medium.EpsAt(refsol.Coord(ix, g), y)
		}
	}

	init := p.Pulse.InitFields(solverGrid)
	var snaps []*refsol.Fields
	if p.Case == maxwell.DielectricCase {
		med := refsol.SmoothSlab(2 * refsol.L / float64(solverGrid))
		snaps = refsol.NewPade(solverGrid, med).Solve(init, times)
	} else {
		snaps = refsol.NewSpectral(init).Series(times)
	}

	i := 0
	for s, t := range times {
		f := snaps[s]
		for iy := 0; iy < g; iy++ {
			y := refsol.Coord(iy, g)
			for ix := 0; ix < g; ix++ {
				x := refsol.Coord(ix, g)
				r.Coords[i*3+0] = x
				r.Coords[i*3+1] = y
				r.Coords[i*3+2] = t
				r.Ez[i] = sampleBilinear(f, x, y)
				i++
			}
		}
	}
	for _, f := range snaps {
		r.RefEnergy = append(r.RefEnergy, refsol.TotalEnergy(f, p.Medium))
	}
	return r
}

// sampleBilinear interpolates a field grid at a physical point (periodic).
func sampleBilinear(f *refsol.Fields, x, y float64) float64 {
	n := f.N
	fx := (x - refsol.XMin) / refsol.L * float64(n)
	fy := (y - refsol.XMin) / refsol.L * float64(n)
	ix, iy := int(math.Floor(fx)), int(math.Floor(fy))
	ax, ay := fx-float64(ix), fy-float64(iy)
	wrap := func(i int) int { return ((i % n) + n) % n }
	v00 := f.Ez[wrap(iy)*n+wrap(ix)]
	v01 := f.Ez[wrap(iy)*n+wrap(ix+1)]
	v10 := f.Ez[wrap(iy+1)*n+wrap(ix)]
	v11 := f.Ez[wrap(iy+1)*n+wrap(ix+1)]
	return (1-ay)*((1-ax)*v00+ax*v01) + ay*((1-ax)*v10+ax*v11)
}

// L2Of computes the paper's eq. 32 metric for a model prediction over the
// probe set.
func (r *Reference) L2Of(predEz []float64) float64 {
	var num, den float64
	for i, ref := range r.Ez {
		d := predEz[i] - ref
		num += d * d
		den += ref * ref
	}
	if den == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// EnergySeries computes the model's total energy per probe time slice
// (eq. 33 discretized on the probe grid) from full field predictions.
func (r *Reference) EnergySeries(ez, hx, hy []float64) []float64 {
	out := make([]float64, len(r.Times))
	for s := range r.Times {
		var u float64
		for j := 0; j < r.PerSlice; j++ {
			i := s*r.PerSlice + j
			u += 0.5 * (r.SliceEps[j]*ez[i]*ez[i] + hx[i]*hx[i] + hy[i]*hy[i])
		}
		out[s] = u
	}
	return out
}
