package core

import (
	"math"
	"math/rand"

	"repro/internal/ad"
	"repro/internal/diag"
	"repro/internal/maxwell"
	"repro/internal/opt"
	"repro/internal/qsim"
)

// TrainConfig controls one training run.
type TrainConfig struct {
	Epochs   int
	Schedule opt.ExpDecay
	Grid     int // collocation points per coordinate (paper: 64)
	TimeBins int // temporal curriculum bins (paper: 5)
	Kappa    float64

	Loss maxwell.Config

	EvalEvery          int  // epochs between L2/energy evaluations
	QuantumDiagnostics bool // track Meyer–Wallach during training
}

// SmokeTrain returns a laptop-scale training configuration.
func SmokeTrain(epochs int, loss maxwell.Config) TrainConfig {
	return TrainConfig{
		Epochs: epochs, Schedule: opt.PaperSchedule(), Grid: 10, TimeBins: 5,
		Kappa: 2, Loss: loss, EvalEvery: max(1, epochs/40),
	}
}

// PaperTrain returns the paper-scale configuration (§2.2): 64³ grid,
// 25 000 epochs.
func PaperTrain(loss maxwell.Config) TrainConfig {
	return TrainConfig{
		Epochs: 25000, Schedule: opt.PaperSchedule(), Grid: 64, TimeBins: 5,
		Kappa: 8, Loss: loss, EvalEvery: 250,
	}
}

// EpochStats is one row of the training history.
type EpochStats struct {
	Epoch    int
	Total    float64
	Phys     float64
	IC       float64
	Sym      float64
	Energy   float64
	GradNorm float64
	GradVar  float64
	L2       float64 // NaN when not evaluated this epoch
	IBH      float64 // NaN when not evaluated
	MW       float64 // Meyer–Wallach; NaN unless quantum diagnostics enabled
}

// RunResult is the outcome of one training run.
type RunResult struct {
	History   []EpochStats
	FinalL2   float64
	FinalIBH  float64
	Collapsed bool
	Model     *Model
}

// Train runs the full loop: build collocation, iterate epochs (bind params,
// assemble the eq. 26 loss, backprop, Adam step, curriculum update), and
// evaluate the L2 error and black-hole index against the reference.
func Train(p maxwell.Problem, mcfg ModelConfig, tcfg TrainConfig, ref *Reference) *RunResult {
	model := NewModel(mcfg)
	return TrainModel(model, p, tcfg, ref)
}

// TrainModel trains an existing model (exposed for warm starts and tests).
func TrainModel(model *Model, p maxwell.Problem, tcfg TrainConfig, ref *Reference) *RunResult {
	coll := maxwell.NewCollocation(p, tcfg.Grid, tcfg.TimeBins)
	curriculum := maxwell.NewTimeCurriculum(tcfg.TimeBins, tcfg.Kappa)
	adam := opt.NewAdam(tcfg.Schedule.LR0, model.Reg.Buffers(), model.Reg.Grads)

	res := &RunResult{Model: model}
	tp := ad.NewTape()

	// Fixed probe set for Meyer–Wallach tracking.
	var mwProbe []float64
	if tcfg.QuantumDiagnostics && model.Quantum != nil {
		rng := rand.New(rand.NewSource(977))
		mwProbe = make([]float64, 64*3)
		for i := range mwProbe {
			mwProbe[i] = rng.Float64()*2 - 1
		}
	}

	for epoch := 0; epoch < tcfg.Epochs; epoch++ {
		adam.LR = tcfg.Schedule.At(epoch)

		cfg := tcfg.Loss
		if !curriculum.Converged(1e-3) {
			cfg.TimeWeights = curriculum.Weights()
		}

		tp.Reset()
		model.Reg.Bind(tp, true)
		terms := maxwell.Build(tp, model.Forward, p, coll, cfg)
		tp.Backward(terms.Total)
		model.Reg.PullGrads()
		adam.Step()
		curriculum.Update(terms.BinResiduals)

		st := EpochStats{
			Epoch: epoch,
			Total: terms.Total.Scalar(),
			Phys:  terms.Phys.Scalar(),
			IC:    terms.IC.Scalar(),
			L2:    math.NaN(), IBH: math.NaN(), MW: math.NaN(),
		}
		if terms.Sym.Valid() {
			st.Sym = terms.Sym.Scalar()
		}
		if terms.Energy.Valid() {
			st.Energy = terms.Energy.Scalar()
		}
		st.GradNorm, st.GradVar = model.Reg.GradNormAndVar()

		if ref != nil && (epoch%tcfg.EvalEvery == 0 || epoch == tcfg.Epochs-1) {
			st.L2, st.IBH = Evaluate(model, ref)
		}
		if mwProbe != nil && epoch%tcfg.EvalEvery == 0 {
			st.MW = modelMeyerWallach(model, mwProbe, 64)
		}
		res.History = append(res.History, st)
	}

	if ref != nil {
		res.FinalL2, res.FinalIBH = Evaluate(model, ref)
		res.Collapsed = diag.Collapsed(res.FinalIBH)
	}
	return res
}

// Evaluate computes the L2 error (eq. 32) and the black-hole index I_BH
// (eq. 35) of the model against the reference probe set.
func Evaluate(model *Model, ref *Reference) (l2, ibh float64) {
	n := len(ref.Ez)
	ez, hx, hy := model.EvalFields(ref.Coords, n)
	l2 = ref.L2Of(ez)
	energy := ref.EnergySeries(ez, hx, hy)
	ibh = diag.IBH(energy, 1)
	return
}

// modelMeyerWallach runs the quantum layer's circuit on the activations the
// network currently feeds it at a fixed probe batch.
func modelMeyerWallach(model *Model, probe []float64, n int) float64 {
	// Forward up to (and including) the adapter, then scale and run the
	// circuit directly.
	tp := ad.NewTape()
	model.Reg.Bind(tp, false)
	acts := model.PenultimateQuantumAngles(tp, probe, n)
	st := qsim.FinalState(model.Circ, acts, model.Quantum.Theta.W, n)
	return qsim.MeyerWallach(st)
}
