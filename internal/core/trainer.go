package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/ad"
	"repro/internal/diag"
	"repro/internal/maxwell"
	"repro/internal/opt"
	"repro/internal/qsim"
)

// TrainConfig controls one training run.
type TrainConfig struct {
	Epochs   int
	Schedule opt.ExpDecay
	Grid     int // collocation points per coordinate (paper: 64)
	TimeBins int // temporal curriculum bins (paper: 5)
	Kappa    float64

	Loss maxwell.Config

	EvalEvery          int  // epochs between L2/energy evaluations; <= 0 evaluates only at the final epoch
	QuantumDiagnostics bool // track Meyer–Wallach during training
}

// SmokeTrain returns a laptop-scale training configuration.
func SmokeTrain(epochs int, loss maxwell.Config) TrainConfig {
	return TrainConfig{
		Epochs: epochs, Schedule: opt.PaperSchedule(), Grid: 10, TimeBins: 5,
		Kappa: 2, Loss: loss, EvalEvery: max(1, epochs/40),
	}
}

// PaperTrain returns the paper-scale configuration (§2.2): 64³ grid,
// 25 000 epochs.
func PaperTrain(loss maxwell.Config) TrainConfig {
	return TrainConfig{
		Epochs: 25000, Schedule: opt.PaperSchedule(), Grid: 64, TimeBins: 5,
		Kappa: 8, Loss: loss, EvalEvery: 250,
	}
}

// EpochStats is one row of the training history.
type EpochStats struct {
	Epoch    int
	Total    float64
	Phys     float64
	IC       float64
	Sym      float64
	Energy   float64
	GradNorm float64
	GradVar  float64
	L2       float64 // NaN when not evaluated this epoch
	IBH      float64 // NaN when not evaluated
	MW       float64 // Meyer–Wallach; NaN unless quantum diagnostics enabled
}

// RunResult is the outcome of one training run.
type RunResult struct {
	History   []EpochStats
	FinalL2   float64
	FinalIBH  float64
	Collapsed bool
	Model     *Model
}

// TrainState is the mutable cross-epoch training state a warm restart needs
// beyond the parameter buffers: the Adam moments and step count, the
// temporal-curriculum weights, and the number of epochs completed (so the
// learning-rate schedule resumes instead of rewinding). TrainModel populates
// it on the model after every run and resumes from it when present;
// checkpoints persist it (version 2).
type TrainState struct {
	Opt        opt.AdamState
	Curriculum []float64
	Epochs     int
}

// Train runs the full loop: build collocation, iterate epochs (bind params,
// assemble the eq. 26 loss, backprop, Adam step, curriculum update), and
// evaluate the L2 error and black-hole index against the reference.
func Train(p maxwell.Problem, mcfg ModelConfig, tcfg TrainConfig, ref *Reference) *RunResult {
	model := NewModel(mcfg)
	return TrainModel(model, p, tcfg, ref)
}

// TrainModel trains an existing model (exposed for warm starts and tests).
// A model carrying TrainState — one previously trained in this process, or
// restored from a version-2 checkpoint — resumes with its Adam moments, step
// count, curriculum weights, and schedule position intact; a fresh model
// cold-starts all of them.
func TrainModel(model *Model, p maxwell.Problem, tcfg TrainConfig, ref *Reference) *RunResult {
	coll := maxwell.NewCollocation(p, tcfg.Grid, tcfg.TimeBins)
	curriculum := maxwell.NewTimeCurriculum(tcfg.TimeBins, tcfg.Kappa)
	adam := opt.NewAdam(tcfg.Schedule.LR0, model.Reg.Buffers(), model.Reg.Grads)

	// Warm-restart policy: optimizer state must match the model's parameter
	// shapes — a mismatch cannot come from Load (which validates against the
	// rebuilt model), only from hand-built state, so it fails loudly.
	// Curriculum weights, by contrast, legitimately stop applying when the
	// new run changes TimeBins (old per-bin weights are meaningless for a
	// different binning), so that case deliberately cold-starts instead.
	startEpoch := 0
	if st := model.TrainState; st != nil {
		if st.Opt.M != nil {
			if err := adam.Restore(st.Opt); err != nil {
				panic(fmt.Sprintf("core: warm restart with mismatched optimizer state: %v", err))
			}
		}
		if len(st.Curriculum) == tcfg.TimeBins {
			if err := curriculum.Restore(st.Curriculum); err != nil {
				panic(fmt.Sprintf("core: warm restart curriculum: %v", err)) // unreachable: length checked above
			}
		}
		startEpoch = st.Epochs
	}

	res := &RunResult{Model: model}
	tp := ad.NewTape()

	// Fixed probe set for Meyer–Wallach tracking.
	var mwProbe []float64
	if tcfg.QuantumDiagnostics && model.Quantum != nil {
		rng := rand.New(rand.NewSource(977))
		mwProbe = make([]float64, 64*3)
		for i := range mwProbe {
			mwProbe[i] = rng.Float64()*2 - 1
		}
	}

	for epoch := 0; epoch < tcfg.Epochs; epoch++ {
		epochStart := time.Now()
		adam.LR = tcfg.Schedule.At(startEpoch + epoch)

		cfg := tcfg.Loss
		if !curriculum.Converged(1e-3) {
			cfg.TimeWeights = curriculum.Weights()
		}

		tp.Reset()
		model.Reg.Bind(tp, true)
		terms := maxwell.Build(tp, model.Forward, p, coll, cfg)
		tp.Backward(terms.Total)
		model.Reg.PullGrads()
		adam.Step()
		curriculum.Update(terms.BinResiduals)

		st := EpochStats{
			Epoch: startEpoch + epoch,
			Total: terms.Total.Scalar(),
			Phys:  terms.Phys.Scalar(),
			IC:    terms.IC.Scalar(),
			L2:    math.NaN(), IBH: math.NaN(), MW: math.NaN(),
		}
		if terms.Sym.Valid() {
			st.Sym = terms.Sym.Scalar()
		}
		if terms.Energy.Valid() {
			st.Energy = terms.Energy.Scalar()
		}
		st.GradNorm, st.GradVar = model.Reg.GradNormAndVar()

		// EvalEvery <= 0 (a hand-built config) means "evaluate only at the
		// final epoch" — the modulo below would otherwise divide by zero.
		evalNow := epoch == tcfg.Epochs-1 || (tcfg.EvalEvery > 0 && epoch%tcfg.EvalEvery == 0)
		if ref != nil && evalNow {
			st.L2, st.IBH = Evaluate(model, ref)
		}
		if mwProbe != nil && evalNow {
			st.MW = modelMeyerWallach(model, mwProbe, 64)
		}
		res.History = append(res.History, st)
		qsim.RecordEpoch(time.Since(epochStart))
	}

	model.TrainState = &TrainState{
		Opt:        adam.Export(),
		Curriculum: append([]float64(nil), curriculum.Weights()...),
		Epochs:     startEpoch + tcfg.Epochs,
	}

	if ref != nil {
		res.FinalL2, res.FinalIBH = Evaluate(model, ref)
		res.Collapsed = diag.Collapsed(res.FinalIBH)
	}
	return res
}

// Evaluate computes the L2 error (eq. 32) and the black-hole index I_BH
// (eq. 35) of the model against the reference probe set.
func Evaluate(model *Model, ref *Reference) (l2, ibh float64) {
	n := len(ref.Ez)
	ez, hx, hy := model.EvalFields(ref.Coords, n)
	l2 = ref.L2Of(ez)
	energy := ref.EnergySeries(ez, hx, hy)
	ibh = diag.IBH(energy, 1)
	return
}

// modelMeyerWallach runs the quantum layer's circuit on the activations the
// network currently feeds it at a fixed probe batch.
func modelMeyerWallach(model *Model, probe []float64, n int) float64 {
	// Forward up to (and including) the adapter, then scale and run the
	// circuit directly.
	tp := ad.NewTape()
	model.Reg.Bind(tp, false)
	acts := model.PenultimateQuantumAngles(tp, probe, n)
	st := qsim.FinalState(model.Circ, acts, model.Quantum.Theta.W, n)
	return qsim.MeyerWallach(st)
}
