package trace

import (
	"sync"
	"testing"
)

func TestDisabledSpansAreFree(t *testing.T) {
	SetEnabled(false)
	Reset()
	sp := Begin(KShard, 42)
	if sp.ID != 0 {
		t.Fatalf("disabled Begin returned live span %+v", sp)
	}
	sp.End() // must be a no-op
	if pass := BeginPass(KForward); pass.ID != 0 {
		t.Fatalf("disabled BeginPass returned live span %+v", pass)
	}
	if got := CurrentPass(); got != 0 {
		t.Fatalf("CurrentPass = %d after disabled BeginPass, want 0", got)
	}
	if got := ContextID(); got != 0 {
		t.Fatalf("ContextID = %d while disabled, want 0", got)
	}
	if n := len(Snapshot()); n != 0 {
		t.Fatalf("disabled tracing recorded %d spans", n)
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	Reset()

	pass := BeginPass(KForward)
	if pass.ID == 0 {
		t.Fatal("enabled BeginPass returned the zero span")
	}
	if got := CurrentPass(); got != pass.ID {
		t.Fatalf("CurrentPass = %d, want %d", got, pass.ID)
	}
	if got := ContextID(); got == 0 {
		t.Fatal("ContextID = 0 while enabled")
	}
	sh := Begin(KShard, pass.ID)
	sh.Shard = 7
	sh.Worker = 3
	rec := sh.Finish()
	if rec.ID != sh.ID || rec.Parent != pass.ID || rec.Shard != 7 || rec.Worker != 3 {
		t.Fatalf("Finish record %+v does not match span %+v", rec, sh)
	}
	if rec.End < rec.Start {
		t.Fatalf("span ends (%d) before it starts (%d)", rec.End, rec.Start)
	}
	pass.End()

	got := Snapshot()
	if len(got) != 2 {
		t.Fatalf("Snapshot returned %d spans, want 2", len(got))
	}
	if got[0] != rec {
		t.Fatalf("Snapshot[0] = %+v, want the shard record %+v", got[0], rec)
	}
	if got[1].ID != pass.ID || got[1].Kind != KForward || got[1].Parent != 0 {
		t.Fatalf("Snapshot[1] = %+v, want the pass root", got[1])
	}
}

func TestIngestStampsThrough(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	Reset()
	in := SpanRec{ID: 0xdeadbeef, Parent: 0xcafe, Kind: KShard, Worker: 5, Shard: 11, Start: 100, End: 250}
	Ingest(in)
	got := Snapshot()
	if len(got) != 1 || got[0] != in {
		t.Fatalf("Snapshot after Ingest = %+v, want [%+v]", got, in)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	Reset()
	total := ringSize + 100
	for i := 0; i < total; i++ {
		Ingest(SpanRec{ID: uint64(i + 1), Kind: KShard, Start: int64(i), End: int64(i + 1)})
	}
	got := Snapshot()
	if len(got) != ringSize {
		t.Fatalf("Snapshot returned %d spans, want the full ring %d", len(got), ringSize)
	}
	if got[0].ID != uint64(total-ringSize+1) || got[len(got)-1].ID != uint64(total) {
		t.Fatalf("ring window [%d, %d], want [%d, %d]",
			got[0].ID, got[len(got)-1].ID, total-ringSize+1, total)
	}
}

func TestConcurrentPublishSnapshot(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	Reset()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				sp := Begin(KShard, uint64(g+1))
				sp.Shard = int32(i)
				sp.End()
			}
		}(g)
	}
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range Snapshot() {
				// A torn slot would surface as a span whose id or bounds are
				// inconsistent; the seqlock must never let one out.
				if r.ID == 0 || r.End < r.Start {
					t.Errorf("torn span escaped the seqlock: %+v", r)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
}

func TestSpanIDsAreUniqueAndNonzero(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		sp := Begin(KBatch, 0)
		if sp.ID == 0 {
			t.Fatal("enabled Begin returned id 0")
		}
		if seen[sp.ID] {
			t.Fatalf("span id %d issued twice", sp.ID)
		}
		seen[sp.ID] = true
	}
}

// TestHotPathZeroAllocs pins the span-ring hot path at 0 steady-state
// allocations per Begin/End cycle — the invariant that lets tracing run
// inside the shard loops without perturbing the numbers it measures.
func TestHotPathZeroAllocs(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	Reset()
	cycle := func() {
		pass := BeginPass(KForward)
		sp := BeginForced(KShard, pass.ID)
		sp.Shard = 3
		rec := sp.Finish()
		Ingest(rec)
		pass.End()
	}
	cycle() // warm
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("span hot path allocates %v times per cycle, want 0", n)
	}
	SetEnabled(false)
	if n := testing.AllocsPerRun(100, func() {
		sp := Begin(KShard, 1)
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled span path allocates %v times per cycle, want 0", n)
	}
}
