// Package trace is the span recorder behind the live observability plane:
// a fixed ring of pre-sized span slots that records the per-pass tree —
// compile → theta broadcast → per-batch send/recv → per-shard execute →
// merge — on the coordinator, inside worker processes, and across the two
// (worker spans travel back inside dist result frames and are stitched
// under their coordinator parents by span id).
//
// Recording is opt-in: the TORQ_TRACE environment variable (any value but
// "" or "0") or SetEnabled arms the process-local gate, and the dist
// coordinator forces workers on per pass through the frame protocol's
// trace-context fields, so a traced coordinator traces its whole fleet.
// Disabled, Begin returns the zero Span and End is a no-op — two atomic
// loads on the hot path and nothing else.
//
// # Invariants
//
//   - Lock-free and zero-alloc: Begin/End/publish are //torq:nolock and
//     //torq:hotpath — atomics and clock reads only, no locks, maps,
//     channels, or allocations, proven by torq-lint's nolocktelemetry and
//     hotalloc analyzers and pinned by an AllocsPerRun test. Tracing can
//     therefore run inside the shard hot loops and the ftdc sampling
//     goroutine without perturbing either.
//   - Bit-invisible to gradients: tracing reads clocks and writes slots; it
//     never touches numeric state. The dist parity suite re-runs its
//     bit-identity matrix (including kill-recovery) with tracing forced on.
//   - Publish-on-End: a slot is claimed and written only when a span ends,
//     under a seqlock (odd while writing, ticket-even when stable), so
//     Snapshot — the cold reader behind the /trace endpoint — can run
//     concurrently with recording and simply skips slots it catches
//     mid-write or already lapped.
//   - Span ids are unique across coordinator and worker processes: the high
//     32 bits derive from the process start time, the low 32 count spans.
package trace

import (
	"os"
	"sync/atomic"
	"time"
)

// Kind classifies a span within the per-pass tree.
type Kind uint8

const (
	KUnknown   Kind = iota
	KCompile        // circuit → fused instruction stream compilation
	KForward        // one forward pass, root of its tree
	KBackward       // one backward pass, root of its tree
	KBroadcast      // theta/pass broadcast to one worker
	KBatch          // one shard batch's send→recv round trip
	KShard          // one shard's execution on a worker
	KMerge          // ordered merge of shard results into pass outputs
)

// String names the kind for the /trace exposition (Chrome trace events).
func (k Kind) String() string {
	switch k {
	case KCompile:
		return "compile"
	case KForward:
		return "forward"
	case KBackward:
		return "backward"
	case KBroadcast:
		return "broadcast"
	case KBatch:
		return "batch"
	case KShard:
		return "shard"
	case KMerge:
		return "merge"
	}
	return "unknown"
}

// Span is an in-flight span. It is a plain value — Begin hands it out on
// the stack, End publishes it into the ring — so tracing allocates nothing.
// The zero Span (ID 0) is the disabled span; all its methods are no-ops.
type Span struct {
	ID     uint64
	Parent uint64
	Kind   Kind
	Worker int32 // coordinator-side worker id; 0 = the local process
	Shard  int32 // shard index for KShard spans; -1 otherwise
	start  int64
}

// SpanRec is one completed span as stored in the ring, shipped inside dist
// result frames, and returned by Snapshot.
type SpanRec struct {
	ID     uint64
	Parent uint64
	Kind   Kind
	Worker int32
	Shard  int32
	Start  int64 // unix nanoseconds
	End    int64 // unix nanoseconds
}

// ringSize is the span-slot count (power of two). The ring holds the most
// recent ~4096 completed spans; older ones are overwritten, which is the
// right bias for a live debug plane — /trace shows the recent window.
const (
	ringSize = 1 << 12
	ringMask = ringSize - 1
)

// slot is one pre-sized ring entry. Every field is atomic: writers store
// fields individually under the seqlock, and Snapshot validates seq before
// and after reading, so a torn read is detected and skipped, never returned.
// kindWS packs kind (8 bits) | worker (24 bits) | shard (32 bits, two's
// complement) into one word.
type slot struct {
	seq    atomic.Uint64 // 2t+1 while writing ticket t, 2t+2 when stable
	id     atomic.Uint64
	parent atomic.Uint64
	kindWS atomic.Uint64
	start  atomic.Int64
	end    atomic.Int64
}

var (
	ring [ringSize]slot
	head atomic.Uint64 // total spans ever published; next ticket

	enabled     atomic.Bool
	currentPass atomic.Uint64

	// idHi seeds span ids with process-start entropy so coordinator and
	// worker processes never collide; |1 keeps every id nonzero.
	idHi  = (uint64(uint32(time.Now().UnixNano())) | 1) << 32
	idCtr atomic.Uint32
)

func init() {
	if v := os.Getenv("TORQ_TRACE"); v != "" && v != "0" {
		enabled.Store(true)
	}
}

// SetEnabled arms or disarms the process-local recording gate.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the process-local gate is armed.
//
//torq:nolock
//torq:hotpath
func Enabled() bool { return enabled.Load() }

// ContextID is the process-unique trace context the coordinator stamps into
// pass broadcasts: nonzero exactly when tracing is enabled, so a worker can
// gate per-shard recording on the coordinator's setting rather than its own
// environment.
//
//torq:nolock
//torq:hotpath
func ContextID() uint64 {
	if !enabled.Load() {
		return 0
	}
	return idHi
}

//torq:nolock
//torq:hotpath
func newID() uint64 { return idHi | uint64(idCtr.Add(1)) }

// Begin starts a span when the process-local gate is armed, returning the
// zero Span otherwise. parent of 0 means a root span.
//
//torq:nolock
//torq:hotpath
func Begin(kind Kind, parent uint64) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{ID: newID(), Parent: parent, Kind: kind, Shard: -1, start: time.Now().UnixNano()}
}

// BeginForced starts a span regardless of the process-local gate — the
// worker-side entry point, gated instead by the nonzero trace context the
// coordinator sent in the pass broadcast.
//
//torq:nolock
//torq:hotpath
func BeginForced(kind Kind, parent uint64) Span {
	return Span{ID: newID(), Parent: parent, Kind: kind, Shard: -1, start: time.Now().UnixNano()}
}

// BeginPass starts a pass-root span and publishes its id as the current
// pass, parenting subsequent compile/broadcast/merge spans.
//
//torq:nolock
//torq:hotpath
func BeginPass(kind Kind) Span {
	sp := Begin(kind, 0)
	currentPass.Store(sp.ID)
	return sp
}

// CurrentPass is the span id of the innermost pass-root span, 0 when no
// traced pass is active.
//
//torq:nolock
//torq:hotpath
func CurrentPass() uint64 { return currentPass.Load() }

// End publishes the span into the ring. No-op on the zero Span.
//
//torq:nolock
//torq:hotpath
func (s Span) End() {
	if s.ID == 0 {
		return
	}
	publish(SpanRec{ID: s.ID, Parent: s.Parent, Kind: s.Kind, Worker: s.Worker,
		Shard: s.Shard, Start: s.start, End: time.Now().UnixNano()})
}

// Finish publishes the span and returns its record — the worker-side exit
// point, whose records additionally travel back to the coordinator inside
// the result frame's span section.
//
//torq:nolock
//torq:hotpath
func (s Span) Finish() SpanRec {
	if s.ID == 0 {
		return SpanRec{}
	}
	r := SpanRec{ID: s.ID, Parent: s.Parent, Kind: s.Kind, Worker: s.Worker,
		Shard: s.Shard, Start: s.start, End: time.Now().UnixNano()}
	publish(r)
	return r
}

// Ingest publishes a span recorded elsewhere — the coordinator calls it for
// each worker span decoded from a result frame, after stamping the worker
// id (workers do not know their coordinator-side ids).
//
//torq:nolock
//torq:hotpath
func Ingest(r SpanRec) { publish(r) }

// publish claims the next ring ticket and writes r into its slot under the
// seqlock. Concurrent publishers claim distinct tickets; a reader that
// catches the slot mid-write, or after a faster writer lapped it, sees a
// seq other than 2t+2 and skips it.
//
//torq:nolock
//torq:hotpath
func publish(r SpanRec) {
	t := head.Add(1) - 1
	s := &ring[t&ringMask]
	s.seq.Store(2*t + 1)
	s.id.Store(r.ID)
	s.parent.Store(r.Parent)
	s.kindWS.Store(uint64(uint8(r.Kind)) | uint64(uint32(r.Worker)&0xffffff)<<8 | uint64(uint32(r.Shard))<<32)
	s.start.Store(r.Start)
	s.end.Store(r.End)
	s.seq.Store(2*t + 2)
}

// Snapshot returns the completed spans currently in the ring, oldest first.
// Cold path (it allocates); safe to call while recording is live.
func Snapshot() []SpanRec {
	n := head.Load()
	lo := uint64(0)
	if n > ringSize {
		lo = n - ringSize
	}
	out := make([]SpanRec, 0, n-lo)
	for t := lo; t < n; t++ {
		s := &ring[t&ringMask]
		want := 2*t + 2
		if s.seq.Load() != want {
			continue
		}
		r := SpanRec{
			ID:     s.id.Load(),
			Parent: s.parent.Load(),
			Start:  s.start.Load(),
			End:    s.end.Load(),
		}
		kws := s.kindWS.Load()
		r.Kind = Kind(uint8(kws))
		r.Worker = int32(uint32(kws>>8) & 0xffffff)
		r.Shard = int32(uint32(kws >> 32))
		if s.seq.Load() != want {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Reset drops every recorded span and the current-pass marker (tests and
// A/B runs). Not safe against concurrent publishers — quiesce first.
func Reset() {
	head.Store(0)
	currentPass.Store(0)
	for i := range ring {
		ring[i].seq.Store(0)
	}
}
