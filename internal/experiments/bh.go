package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/maxwell"
	"repro/internal/qsim"
	"repro/internal/report"
)

// Fig10 regenerates the black-hole anatomy study: the vacuum QPINN
// (Strongly Entangling, the paper's collapse-prone configuration) trained
// with and without the energy-conservation loss, tracking L2 error, total
// loss, gradient norm, gradient variance, and the Meyer–Wallach
// entanglement measure per epoch.
func Fig10(o Options) error {
	p := o.problem(maxwell.VacuumCase)
	ref := o.reference(p)

	type trace struct {
		l2, loss, gnorm, gvar, mw []float64
		ibh                       float64
	}
	run := func(energy bool) trace {
		var tr trace
		for seed := 0; seed < o.seeds(); seed++ {
			mcfg := o.model(core.QPINN, qsim.StronglyEntangling, qsim.ScaleAcos, int64(2000+seed))
			tcfg := o.train(maxwell.PaperConfig(energy, true))
			tcfg.QuantumDiagnostics = true
			res := core.Train(p, mcfg, tcfg, ref)
			if seed == 0 {
				for _, h := range res.History {
					tr.loss = append(tr.loss, h.Total)
					tr.gnorm = append(tr.gnorm, h.GradNorm)
					tr.gvar = append(tr.gvar, h.GradVar)
					if !math.IsNaN(h.L2) {
						tr.l2 = append(tr.l2, h.L2)
					}
					if !math.IsNaN(h.MW) {
						tr.mw = append(tr.mw, h.MW)
					}
				}
			}
			tr.ibh += res.FinalIBH / float64(o.seeds())
		}
		return tr
	}

	with := run(true)
	without := run(false)

	report.LinePlot(o.Out, "Fig 10a: L2(t=T) vs evaluation point", 72, 14, false,
		map[string][]float64{"with energy": with.l2, "without energy": without.l2})
	fmt.Fprintln(o.Out)
	report.LinePlot(o.Out, "Fig 10b: training loss (log)", 72, 14, true,
		map[string][]float64{"with energy": with.loss, "without energy": without.loss})
	fmt.Fprintln(o.Out)
	report.LinePlot(o.Out, "Fig 10c: gradient norm (log)", 72, 14, true,
		map[string][]float64{"with energy": with.gnorm, "without energy": without.gnorm})
	fmt.Fprintln(o.Out)
	report.LinePlot(o.Out, "Fig 10d: gradient variance (log)", 72, 14, true,
		map[string][]float64{"with energy": with.gvar, "without energy": without.gvar})
	fmt.Fprintln(o.Out)
	report.LinePlot(o.Out, "Fig 10e: Meyer-Wallach entanglement measure", 72, 12, false,
		map[string][]float64{"with energy": with.mw, "without energy": without.mw})

	fmt.Fprintf(o.Out, "\nI_BH (mean over %d seeds): with energy %.3f, without energy %.3f\n",
		o.seeds(), with.ibh, without.ibh)
	fmt.Fprintln(o.Out, "Paper shape: without the energy term the loss suddenly drops as fields fade")
	fmt.Fprintln(o.Out, "to the trivial solution (I_BH → 1) while gradients collapse; the Meyer-")
	fmt.Fprintln(o.Out, "Wallach measure stays flat through the collapse (it is not an entanglement")
	fmt.Fprintln(o.Out, "phenomenon); with the energy term training converges and I_BH stays small.")
	return nil
}

// Fig11 trains the collapse-prone configuration without the energy term and
// reports the field amplitudes at t = 0, 0.3 and T, rendering the Ez
// snapshots as PGM images when FigDir is set.
func Fig11(o Options) error {
	p := o.problem(maxwell.VacuumCase)
	ref := o.reference(p)
	mcfg := o.model(core.QPINN, qsim.StronglyEntangling, qsim.ScaleAcos, 2024)
	tcfg := o.train(maxwell.PaperConfig(false, true))
	res := core.Train(p, mcfg, tcfg, ref)

	g := 24
	times := []float64{0, 0.3, p.TMax}
	t := report.NewTable("Fig 11: field amplitude after training WITHOUT the energy loss",
		"t", "max |Ez|", "mean |Ez|", "slice energy")
	for _, tt := range times {
		coords := make([]float64, g*g*3)
		i := 0
		for iy := 0; iy < g; iy++ {
			for ix := 0; ix < g; ix++ {
				coords[i*3+0] = -1 + 2*float64(ix)/float64(g)
				coords[i*3+1] = -1 + 2*float64(iy)/float64(g)
				coords[i*3+2] = tt
				i++
			}
		}
		ez, hx, hy := res.Model.EvalFields(coords, g*g)
		var maxA, meanA, energy float64
		for j := range ez {
			a := math.Abs(ez[j])
			if a > maxA {
				maxA = a
			}
			meanA += a
			energy += 0.5 * (ez[j]*ez[j] + hx[j]*hx[j] + hy[j]*hy[j])
		}
		meanA /= float64(len(ez))
		t.Row(fmt.Sprintf("%.2f", tt), maxA, meanA, energy)
		if o.FigDir != "" {
			writePGM(o, fmt.Sprintf("fig11_ez_t%.1f.pgm", tt), ez, g)
		}
	}
	t.Render(o.Out)
	fmt.Fprintf(o.Out, "\nFinal I_BH = %.3f (collapse threshold 0.9; paper: amplitudes ≈ 0 for t > 0)\n", res.FinalIBH)
	return nil
}

// Fig12 reproduces the §5.2 initialization study: the distribution of the
// second-to-last layer's outputs at initialization for a classical network
// and for quantum layers across (ansatz, scaling, init-strategy) choices.
func Fig12(o Options) error {
	rng := rand.New(rand.NewSource(121))
	n := 4000
	coords := make([]float64, n*3)
	for i := range coords {
		coords[i] = rng.Float64()*2 - 1
	}

	classical := core.NewModel(o.model(core.ClassicalRegular, qsim.BasicEntangling, qsim.ScaleNone, 9))
	report.Histogram(o.Out, "Fig 12a: classical — last tanh outputs at init",
		classical.PenultimateActivations(coords, n), 24, 40)

	combos := []struct {
		ansatz  qsim.AnsatzKind
		scaling qsim.ScalingKind
		init    qsim.InitStrategy
	}{
		{qsim.StronglyEntangling, qsim.ScaleNone, qsim.InitRegular},
		{qsim.StronglyEntangling, qsim.ScaleAsin, qsim.InitRegular},
		{qsim.StronglyEntangling, qsim.ScaleNone, qsim.InitZeros},
		{qsim.StronglyEntangling, qsim.ScaleNone, qsim.InitPi},
		{qsim.StronglyEntangling, qsim.ScaleNone, qsim.InitHalfPi},
		{qsim.NoEntanglement, qsim.ScaleNone, qsim.InitZeros},
		{qsim.NoEntanglement, qsim.ScaleNone, qsim.InitRegular},
		{qsim.NoEntanglement, qsim.ScaleAsin, qsim.InitRegular},
	}
	for _, c := range combos {
		mcfg := o.model(core.QPINN, c.ansatz, c.scaling, 9)
		mcfg.Init = c.init
		m := core.NewModel(mcfg)
		acts := m.PenultimateActivations(coords, n)
		fmt.Fprintln(o.Out)
		report.Histogram(o.Out,
			fmt.Sprintf("Fig 12: %v - %v - %v — Pauli-Z outputs at init", c.ansatz, c.scaling, c.init),
			acts, 24, 40)
	}
	fmt.Fprintln(o.Out, "\nPaper shape: PQC outputs cluster near zero under init_reg (Haar-like")
	fmt.Fprintln(o.Out, "concentration of traceless observables), spread to ±1 under init_pi, and")
	fmt.Fprintln(o.Out, "pile at +1 under init_zeros; the classical tanh outputs spread much wider.")
	fmt.Fprintln(o.Out, "§5.2's conclusion: these init spreads do NOT change BH behaviour.")
	return nil
}

// IBHTable summarizes the I_BH index (eqs. 33–35) across the BH-relevant
// configurations, applying the §5 operational collapse criterion.
func IBHTable(o Options) error {
	t := report.NewTable("I_BH index (eq. 35) and collapse verdicts",
		"Case", "Config", "Energy loss", "mean I_BH", "Collapsed seeds", "BH phenomenon")
	type cfg struct {
		c      maxwell.Case
		arch   core.Arch
		energy bool
	}
	for _, c := range []cfg{
		{maxwell.VacuumCase, core.QPINN, false},
		{maxwell.VacuumCase, core.QPINN, true},
		{maxwell.VacuumCase, core.ClassicalRegular, false},
		{maxwell.DielectricCase, core.QPINN, false},
	} {
		p := o.problem(c.c)
		ref := o.reference(p)
		st := runConfig(o, p, c.arch, qsim.StronglyEntangling, qsim.ScaleAcos,
			maxwell.PaperConfig(c.energy, c.c != maxwell.AsymmetricCase), ref)
		mean, _ := report.MeanStd(st.IBHs)
		t.Row(c.c.String(), c.arch.String(), c.energy, mean,
			fmt.Sprintf("%d/%d", st.Collapsed, o.seeds()), diag.BHOccurred(st.IBHs))
	}
	t.Render(o.Out)
	fmt.Fprintf(o.Out, "\nC_loss cost-model estimate for the TEz loss (§2.1): %.0f\n", diag.MaxwellLossCost())
	return nil
}
