package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/maxwell"
	"repro/internal/qsim"
	"repro/internal/refsol"
	"repro/internal/report"
)

// Fig5 regenerates the field-contour figure: the shared initial condition
// and the final-time Ez of both cases from the reference solvers and from a
// trained QPINN. PGM images are written when FigDir is set; summary
// statistics are printed either way.
func Fig5(o Options) error {
	g := 64
	t := report.NewTable("Fig 5: field snapshots", "Panel", "Source", "t", "max Ez", "min Ez")

	// (a) Initial condition.
	ic := refsol.CenteredPulse().InitFields(g)
	t.Row("a (IC)", "analytic", 0.0, maxOf(ic.Ez), minOf(ic.Ez))
	writePGM(o, "fig5a_ic.pgm", ic.Ez, g)

	// (b) Vacuum final time, reference.
	vac := refsol.NewSpectral(ic).At(1.5)
	t.Row("b (vacuum)", "spectral reference", 1.5, maxOf(vac.Ez), minOf(vac.Ez))
	writePGM(o, "fig5b_vacuum_ref.pgm", vac.Ez, g)

	// (c) Dielectric final time, reference.
	med := refsol.SmoothSlab(2 * refsol.L / float64(g))
	diel := refsol.NewPade(g, med).Solve(ic, []float64{0.7})[0]
	t.Row("c (dielectric)", "Padé reference", 0.7, maxOf(diel.Ez), minOf(diel.Ez))
	writePGM(o, "fig5c_dielectric_ref.pgm", diel.Ez, g)

	// QPINN renditions (best vacuum combo).
	p := o.problem(maxwell.VacuumCase)
	ref := o.reference(p)
	mcfg := o.model(core.QPINN, qsim.StronglyEntangling, qsim.ScaleAcos, 5)
	res := core.Train(p, mcfg, o.train(maxwell.PaperConfig(true, true)), ref)
	gm := 32
	coords := sliceCoords(gm, 1.5)
	ez, _, _ := res.Model.EvalFields(coords, gm*gm)
	t.Row("b (vacuum)", fmt.Sprintf("QPINN (L2=%.3g)", res.FinalL2), 1.5, maxOf(ez), minOf(ez))
	writePGM(o, "fig5b_vacuum_qpinn.pgm", ez, gm)

	t.Render(o.Out)
	return nil
}

// Fig14 regenerates the appendix-A asymmetric-pulse study: the Strongly
// Entangling + scale_acos QPINN and the regular classical PINN, each with
// and without the energy-conservation loss.
func Fig14(o Options) error {
	p := o.problem(maxwell.AsymmetricCase)
	ref := o.reference(p)

	curves := map[string][]float64{}
	t := report.NewTable("Fig 14b: asymmetric-pulse L2 errors (mean ± std)",
		"Model", "Energy loss", "L2", "±", "Collapsed", "I_BH")
	type cfgT struct {
		name   string
		arch   core.Arch
		energy bool
	}
	for _, c := range []cfgT{
		{"Classical", core.ClassicalRegular, false},
		{"Classical", core.ClassicalRegular, true},
		{"Strongly Entangling", core.QPINN, false},
		{"Strongly Entangling", core.QPINN, true},
	} {
		st := runConfig(o, p, c.arch, qsim.StronglyEntangling, qsim.ScaleAcos,
			maxwell.PaperConfig(c.energy, false), ref)
		m, s := report.MeanStd(st.L2s)
		ibh, _ := report.MeanStd(st.IBHs)
		t.Row(c.name, c.energy, m, s, fmt.Sprintf("%d/%d", st.Collapsed, o.seeds()), ibh)
		curves[fmt.Sprintf("%s energy=%v", c.name, c.energy)] = meanCurve(st.Curves)
	}
	t.Render(o.Out)
	fmt.Fprintln(o.Out)
	report.LinePlot(o.Out, "Fig 14a: mean training loss (log scale)", 72, 16, true, curves)
	fmt.Fprintln(o.Out, "\nPaper shape: same as the symmetric vacuum case — QPINN without the energy")
	fmt.Fprintln(o.Out, "loss collapses (✗ in the paper's figure); with it, the QPINN beats both")
	fmt.Fprintln(o.Out, "classical variants; the classical net is better WITHOUT the energy term.")
	fmt.Fprintln(o.Out, "(No symmetry loss is used here — the initial condition breaks both parities.)")
	return nil
}

// Sec51 regenerates the §5.1 stabilization study: the dielectric case under
// the region-weighted physics loss (eq. 14) versus the "intuitive" pointwise
// loss (eq. 37), each with and without the energy term.
func Sec51(o Options) error {
	p := o.problem(maxwell.DielectricCase)
	ref := o.reference(p)
	t := report.NewTable("§5.1: dielectric physics-loss variants (QPINN, Strongly Entangling + scale_asin)",
		"Physics loss", "Energy loss", "L2", "±", "Collapsed", "mean I_BH")
	for _, intuitive := range []bool{false, true} {
		for _, energy := range []bool{false, true} {
			cfg := maxwell.PaperConfig(energy, true)
			cfg.UseIntuitive = intuitive
			st := runConfig(o, p, core.QPINN, qsim.StronglyEntangling, qsim.ScaleAsin, cfg, ref)
			m, s := report.MeanStd(st.L2s)
			ibh, _ := report.MeanStd(st.IBHs)
			name := "eq.14 region-weighted"
			if intuitive {
				name = "eq.37 intuitive"
			}
			t.Row(name, energy, m, s, fmt.Sprintf("%d/%d", st.Collapsed, o.seeds()), ibh)
		}
	}
	t.Render(o.Out)
	fmt.Fprintln(o.Out, "\nPaper shape: with the intuitive loss the dielectric runs behave like the")
	fmt.Fprintln(o.Out, "vacuum QPINNs (collapse without energy loss, converge with it, but worse")
	fmt.Fprintln(o.Out, "overall); the region-weighted eq. 14 loss avoids BH without the energy term.")
	return nil
}

func sliceCoords(g int, t float64) []float64 {
	coords := make([]float64, g*g*3)
	i := 0
	for iy := 0; iy < g; iy++ {
		for ix := 0; ix < g; ix++ {
			coords[i*3+0] = -1 + 2*float64(ix)/float64(g)
			coords[i*3+1] = -1 + 2*float64(iy)/float64(g)
			coords[i*3+2] = t
			i++
		}
	}
	return coords
}

func writePGM(o Options, name string, field []float64, n int) {
	if o.FigDir == "" {
		return
	}
	if err := os.MkdirAll(o.FigDir, 0o755); err != nil {
		fmt.Fprintf(o.Out, "(fig dir: %v)\n", err)
		return
	}
	f, err := os.Create(filepath.Join(o.FigDir, name))
	if err != nil {
		fmt.Fprintf(o.Out, "(fig write: %v)\n", err)
		return
	}
	defer f.Close()
	report.PGM(f, field, n, 0)
	fmt.Fprintf(o.Out, "wrote %s\n", filepath.Join(o.FigDir, name))
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
