package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/qsim"
)

func tinyOptions(buf *strings.Builder) Options {
	return Options{
		Preset:   Smoke,
		Seeds:    1,
		Epochs:   3,
		Out:      buf,
		Ansatze:  []qsim.AnsatzKind{qsim.StronglyEntangling},
		Scalings: []qsim.ScalingKind{qsim.ScaleAcos},
	}
}

// TestRegistryComplete: every table and figure of the paper's evaluation has
// a registered regenerator.
func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig14", "sec51", "ibh", "bp", "trig", "reup"}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
}

// TestFastExperimentsRun: the deterministic (non-training) experiments must
// produce their headline content.
func TestFastExperimentsRun(t *testing.T) {
	cases := []struct {
		name     string
		contains []string
	}{
		{"table1", []string{"82820", "66848", "66932", "67044", "67072"}},
		{"fig3", []string{"scale_asin", "Pauli-Z distribution"}},
		{"fig4", []string{"Strongly Entangling Layers", "⟨Z⟩", "●"}},
		{"fig12", []string{"init_zeros", "init_pi", "classical"}},
	}
	for _, c := range cases {
		var buf strings.Builder
		r, _ := Lookup(c.name)
		if err := r.Run(tinyOptions(&buf)); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, want := range c.contains {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("%s output missing %q", c.name, want)
			}
		}
	}
}

// TestTrainingExperimentsSmoke: the training-based experiments run end to
// end at a 3-epoch micro scale without error and emit their tables.
func TestTrainingExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiments skipped in -short mode")
	}
	for _, name := range []string{"fig11", "sec51"} {
		var buf strings.Builder
		r, _ := Lookup(name)
		o := tinyOptions(&buf)
		if err := r.Run(o); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "|") {
			t.Errorf("%s produced no table", name)
		}
	}
}

// TestAblationRespectsFilters: a restricted sweep only trains the requested
// combinations (checked via the output rows).
func TestAblationRespectsFilters(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiments skipped in -short mode")
	}
	var buf strings.Builder
	r, _ := Lookup("fig6")
	o := tinyOptions(&buf)
	if err := r.Run(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Strongly Entangling Layers") {
		t.Error("requested ansatz missing from sweep output")
	}
	if strings.Contains(out, "Cross-Mesh-CNOT") {
		t.Error("filtered-out ansatz appeared in sweep output")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Preset: Smoke}
	if o.seeds() != 2 || o.epochs() != 200 {
		t.Fatalf("smoke defaults: %d seeds, %d epochs", o.seeds(), o.epochs())
	}
	o = Options{Preset: Paper}
	if o.seeds() != 5 || o.epochs() != 25000 {
		t.Fatalf("paper defaults: %d seeds, %d epochs", o.seeds(), o.epochs())
	}
	o = Options{Preset: Smoke, Seeds: 3, Epochs: 77}
	if o.seeds() != 3 || o.epochs() != 77 {
		t.Fatal("overrides ignored")
	}
	if got := len(Options{}.ansatze()); got != 6 {
		t.Fatalf("default ansatz sweep size %d", got)
	}
	if got := len(Options{}.scalings()); got != 5 {
		t.Fatalf("default scaling sweep size %d", got)
	}
}

// TestSmokeProblemWidensPulse: the documented smoke substitution halves the
// pulse's spectral content without touching the paper preset.
func TestSmokeProblemWidensPulse(t *testing.T) {
	smoke := Options{Preset: Smoke}
	paper := Options{Preset: Paper}
	ps := smoke.problem(0)
	pp := paper.problem(0)
	if math.Float64bits(ps.Pulse.SX) != math.Float64bits(2*pp.Pulse.SX) {
		t.Fatalf("smoke pulse SX %v vs paper %v", ps.Pulse.SX, pp.Pulse.SX)
	}
	if math.Float64bits(ps.TMax) != math.Float64bits(pp.TMax) {
		t.Fatal("smoke preset must not change the time horizon")
	}
}
