package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/maxwell"
	"repro/internal/qsim"
	"repro/internal/report"
)

// BarrenPlateau implements the §6.2 follow-up (e): probe the
// expressivity–trainability trade-off by measuring the variance of
// ∂⟨Z₀⟩/∂θ over random parameter initializations as a function of circuit
// depth and qubit count. The McClean-et-al. barren-plateau signature is a
// variance that decays exponentially with qubit count for expressive
// (2-design-like) ansätze; the paper's §5 argues its "black hole" collapse
// is a distinct phenomenon — this probe supplies the baseline BP curves
// that argument needs.
func BarrenPlateau(o Options) error {
	seeds := 24
	if o.Preset == Paper {
		seeds = 200
	}
	gradVar := func(a qsim.AnsatzKind, nq, layers int) float64 {
		circ := a.Build(nq, layers)
		var sum, sumSq float64
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(int64(7000 + s)))
			n := 4
			angles := make([]float64, n*nq)
			for i := range angles {
				angles[i] = rng.Float64()*2 - 1
			}
			theta := make([]float64, circ.NumParams)
			qsim.InitRegular.Fill(theta, rng.Float64)
			ws := qsim.NewWorkspace(n, nq)
			pqc := &qsim.PQC{Circ: circ}
			pqc.Forward(ws, angles, nil, theta)
			gz := make([]float64, n*nq)
			for i := 0; i < n; i++ {
				gz[i*nq] = 1 // L = Σ_samples ⟨Z₀⟩
			}
			dA := make([]float64, n*nq)
			dTheta := make([]float64, circ.NumParams)
			pqc.Backward(ws, gz, nil, dA, nil, dTheta)
			g := dTheta[0] / float64(n)
			sum += g
			sumSq += g * g
		}
		mean := sum / float64(seeds)
		return sumSq/float64(seeds) - mean*mean
	}

	td := report.NewTable("Gradient variance vs circuit depth (7 qubits, Var[∂⟨Z0⟩/∂θ0] over inits)",
		"Layers", "Strongly Entangling", "No Entanglement")
	for _, l := range []int{1, 2, 3, 4, 6, 8} {
		td.Row(l, gradVar(qsim.StronglyEntangling, 7, l), gradVar(qsim.NoEntanglement, 7, l))
	}
	td.Render(o.Out)
	fmt.Fprintln(o.Out)

	tq := report.NewTable("Gradient variance vs qubit count (4 layers)",
		"Qubits", "Strongly Entangling", "No Entanglement")
	for _, nq := range []int{2, 3, 4, 5, 6, 7} {
		tq.Row(nq, gradVar(qsim.StronglyEntangling, nq, 4), gradVar(qsim.NoEntanglement, nq, 4))
	}
	tq.Render(o.Out)
	fmt.Fprintln(o.Out, "\nExpected shape (McClean et al.): the entangling ansatz's variance decays")
	fmt.Fprintln(o.Out, "with qubit count and saturates with depth; the product-state ansatz does")
	fmt.Fprintln(o.Out, "not — distinguishing ordinary barren plateaus from the §5 BH collapse,")
	fmt.Fprintln(o.Out, "which appears *after* an initial period of successful descent.")
	return nil
}

// Reupload implements the §6.2 follow-up (c): train the QPINN with and
// without data re-uploading cycles (the embedding repeated before every
// ansatz layer — Pérez-Salinas et al.'s construction, which enlarges the
// circuit's accessible Fourier spectrum at zero extra parameters) and
// compare accuracy and parameter efficiency.
func Reupload(o Options) error {
	p := o.problem(maxwell.VacuumCase)
	ref := o.reference(p)
	t := report.NewTable("§6.2(c): data re-uploading (vacuum, Strongly Entangling + acos, energy loss)",
		"Circuit", "Params", "L2", "±", "I_BH")
	for _, reup := range []bool{false, true} {
		var st runStats
		for seed := 0; seed < o.seeds(); seed++ {
			mcfg := o.model(core.QPINN, qsim.StronglyEntangling, qsim.ScaleAcos, int64(3000+seed))
			mcfg.Reupload = reup
			res := core.Train(p, mcfg, o.train(maxwell.PaperConfig(true, true)), ref)
			st.L2s = append(st.L2s, res.FinalL2)
			st.IBHs = append(st.IBHs, res.FinalIBH)
		}
		m, sd := report.MeanStd(st.L2s)
		ibh, _ := report.MeanStd(st.IBHs)
		name := "single embedding"
		if reup {
			name = "re-uploading (per layer)"
		}
		mdl := core.NewModel(o.model(core.QPINN, qsim.StronglyEntangling, qsim.ScaleAcos, 1))
		_, _, tot := mdl.ParamCounts()
		t.Row(name, tot, m, sd, ibh)
	}
	t.Render(o.Out)
	fmt.Fprintln(o.Out, "\nRe-uploading changes no parameter counts; any L2 gap is pure encoding")
	fmt.Fprintln(o.Out, "expressivity (Schuld et al.: richer accessible Fourier spectrum).")
	return nil
}

// TrigControl implements the §6.2 follow-up (b): a head-to-head between the
// QPINN and the classical control that replaces the PQC with an equal-size
// fixed trigonometric basis (cos of the identically scaled activations).
// If the control matches the QPINN, the quantum layer's benefit is "just
// periodic features"; a gap isolates the trainable entangling circuit's
// contribution.
func TrigControl(o Options) error {
	p := o.problem(maxwell.VacuumCase)
	ref := o.reference(p)
	t := report.NewTable("§6.2(b) control: QPINN vs fixed-trig penultimate layer (vacuum case)",
		"Model", "Params", "L2", "±", "I_BH")
	for _, c := range []struct {
		name string
		arch core.Arch
	}{
		{"QPINN (Strongly Entangling + acos)", core.QPINN},
		{"Classical trig control (acos)", core.ClassicalTrig},
		{"Classical regular", core.ClassicalRegular},
	} {
		st := runConfig(o, p, c.arch, qsim.StronglyEntangling, qsim.ScaleAcos,
			maxwell.PaperConfig(c.arch == core.QPINN, true), ref)
		m, s := report.MeanStd(st.L2s)
		ibh, _ := report.MeanStd(st.IBHs)
		mdl := core.NewModel(o.model(c.arch, qsim.StronglyEntangling, qsim.ScaleAcos, 1))
		_, _, tot := mdl.ParamCounts()
		t.Row(c.name, tot, m, s, ibh)
	}
	t.Render(o.Out)
	return nil
}
