package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/qsim"
	"repro/internal/report"
)

// Table1 reproduces the parameter-count table exactly (it is resolution
// independent: counts are computed at paper scale regardless of preset).
func Table1(o Options) error {
	t := report.NewTable("Table 1: learnable parameters per architecture (paper scale)",
		"Ansatz / network", "# Classical", "# Quantum", "# Total")
	rows := []struct {
		name   string
		arch   core.Arch
		ansatz qsim.AnsatzKind
	}{
		{"Classical - regular", core.ClassicalRegular, qsim.BasicEntangling},
		{"Classical - reduced layer", core.ClassicalReduced, qsim.BasicEntangling},
		{"Classical - extra layer", core.ClassicalExtra, qsim.BasicEntangling},
		{"Cross-Mesh", core.QPINN, qsim.CrossMesh},
		{"Cross-Mesh-2-Rotations", core.QPINN, qsim.CrossMesh2Rot},
		{"Cross-Mesh-CNOT", core.QPINN, qsim.CrossMeshCNOT},
		{"No Entanglement Ansatz", core.QPINN, qsim.NoEntanglement},
		{"Basic Entangling Layers", core.QPINN, qsim.BasicEntangling},
		{"Strongly Entangling Layers", core.QPINN, qsim.StronglyEntangling},
	}
	for _, r := range rows {
		m := core.NewModel(core.PaperModel(r.arch, r.ansatz, qsim.ScaleAsin))
		cl, qu, tot := m.ParamCounts()
		t.Row(r.name, cl, qu, tot)
	}
	t.Render(o.Out)
	fmt.Fprintln(o.Out, "\nPaper values: 82820/66308/99332 classical-only; 66848 classical in every")
	fmt.Fprintln(o.Out, "QPINN; 196/224/84/84/84/84 quantum — reproduced exactly (see unit tests).")
	return nil
}

// Table2 reproduces the simulator comparison. The paper measured TorQ
// against PennyLane's default.qubit (per-sample dense gate expansion) and
// lightning (adjoint on GPU); our substitutes implement the same
// architectures in-repo (see DESIGN.md). Reported: seconds per epoch
// (forward + adjoint backward for the batched simulator; forward-only for
// the naive baselines, which is already slower) and statevector memory per
// collocation point.
func Table2(o Options) error {
	nq, layers := 7, 4
	circ := qsim.StronglyEntangling.Build(nq, layers)
	theta := make([]float64, circ.NumParams)
	rng := rand.New(rand.NewSource(5))
	for i := range theta {
		theta[i] = rng.Float64() * 6.28
	}

	grids := []int{8, 12, 16}
	naiveGrid, kronGrid := 4, 3
	if o.Preset == Paper {
		grids = []int{20, 32, 40}
		naiveGrid, kronGrid = 8, 5
	}
	if o.Engine == qsim.EngineNaive {
		// Dense per-sample gate application: keep the batched rows at the
		// same laptop scale as the other dense baselines.
		grids = []int{naiveGrid, naiveGrid + 2, naiveGrid + 4}
	}

	t := report.NewTable("Table 2: simulator comparison (7 qubits, 4 Strongly-Entangling layers)",
		"Simulator", "Diff. method", "Grid", "Points", "Sec/epoch", "µs/point", "State bytes/point")
	adjBytes, naiveBytes, kronBytes := qsim.MemoryPerPoint(nq, 4)

	timeBatched := func(g int) (float64, int) {
		n := g * g * g
		angles := make([]float64, n*nq)
		tans := make([][]float64, 3)
		for k := range tans {
			tans[k] = make([]float64, n*nq)
		}
		for i := range angles {
			angles[i] = rng.Float64()*2 - 1
			for k := range tans {
				tans[k][i] = rng.Float64()*2 - 1
			}
		}
		ws := qsim.NewWorkspace(n, nq)
		pqc := &qsim.PQC{Circ: circ, Eng: o.Engine}
		gz := make([]float64, n*nq)
		for i := range gz {
			gz[i] = 1
		}
		dA := make([]float64, n*nq)
		dT := [][]float64{make([]float64, n*nq), make([]float64, n*nq), make([]float64, n*nq)}
		dTheta := make([]float64, circ.NumParams)
		start := time.Now()
		_, ztans := pqc.Forward(ws, angles, tans, theta)
		gzt := [][]float64{gz, gz, gz}
		_ = ztans
		pqc.Backward(ws, gz, gzt, dA, dT, dTheta)
		return time.Since(start).Seconds(), n
	}

	for _, g := range grids {
		sec, n := timeBatched(g)
		t.Row(fmt.Sprintf("TorQ-analogue (batched adjoint, %v engine)", o.Engine),
			"adjoint+tangents", fmt.Sprintf("%d^3", g), n,
			sec, sec/float64(n)*1e6, adjBytes)
	}

	// Naive per-sample dense-gate simulator (PennyLane default.qubit-style).
	{
		n := naiveGrid * naiveGrid * naiveGrid
		angles := make([]float64, n*nq)
		for i := range angles {
			angles[i] = rng.Float64()*2 - 1
		}
		start := time.Now()
		(&qsim.NaiveSimulator{Circ: circ}).Run(angles, theta, n)
		sec := time.Since(start).Seconds()
		t.Row("Naive per-sample (default.qubit-like)", "forward only", fmt.Sprintf("%d^3", naiveGrid), n,
			sec, sec/float64(n)*1e6, naiveBytes)
	}
	// Full-unitary composition (operator-pipeline style).
	{
		n := kronGrid * kronGrid * kronGrid
		angles := make([]float64, n*nq)
		for i := range angles {
			angles[i] = rng.Float64()*2 - 1
		}
		start := time.Now()
		(&qsim.KronSimulator{Circ: circ}).Run(angles, theta, n)
		sec := time.Since(start).Seconds()
		t.Row("Full-unitary composition (kron)", "forward only", fmt.Sprintf("%d^3", kronGrid), n,
			sec, sec/float64(n)*1e6, kronBytes)
	}
	t.Render(o.Out)
	fmt.Fprintf(o.Out, "\nMemory headroom: naive/adjoint = %.1f×, kron/adjoint = %.1f× per point —\n",
		float64(naiveBytes)/float64(adjBytes), float64(kronBytes)/float64(adjBytes))
	fmt.Fprintln(o.Out, "the architectural gap behind the paper's 87^3-vs-43^3 largest-grid result.")

	// Largest-grid projection at the paper's GPU memory budget (48 GB L40s):
	// grid³ · bytes-per-point ≤ budget, the paper's 87³-vs-43³ comparison.
	const budget = 48 << 30
	side := func(bytesPerPoint int) int {
		return int(math.Cbrt(float64(budget) / float64(bytesPerPoint)))
	}
	lg := report.NewTable("Largest collocation grid within a 48 GB statevector budget",
		"Simulator", "Bytes/point", "Max grid")
	lg.Row("Batched adjoint (TorQ analogue)", adjBytes, fmt.Sprintf("%d^3", side(adjBytes)))
	lg.Row("Naive per-sample (default.qubit-like)", naiveBytes, fmt.Sprintf("%d^3", side(naiveBytes)))
	lg.Row("Full-unitary composition", kronBytes, fmt.Sprintf("%d^3", side(kronBytes)))
	lg.Render(o.Out)
	fmt.Fprintln(o.Out, "Paper: TorQ 87^3 vs default.qubit 43^3 (ratio ≈ 2.0 per side, ≈ 8× points);")
	fmt.Fprintf(o.Out, "measured ratio per side: %.2f.\n",
		float64(side(adjBytes))/float64(side(naiveBytes)))
	fmt.Fprintln(o.Out, "Paper shape to verify: batched ≫ per-sample in µs/point (>50× at paper scale).")
	return nil
}
